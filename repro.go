// Package repro is a from-scratch Go reproduction of "Understanding
// Capacity-Driven Scale-Out Neural Recommendation Inference" (Lui et al.,
// ISPASS 2021): a distributed inference runtime for DLRM-style
// recommendation models whose embedding tables exceed a single server's
// memory, together with the paper's three capacity-driven sharding
// strategies, its cross-layer distributed tracing framework, and a
// benchmark harness regenerating every table and figure of its
// evaluation.
//
// The root package holds only the benchmark harness (bench_test.go); the
// implementation lives under internal/ (see DESIGN.md for the system
// inventory) and runnable entry points under cmd/ and examples/.
package repro
