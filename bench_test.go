// Benchmarks regenerating every table and figure of the paper's
// evaluation. Each benchmark drives the corresponding experiment through
// the shared runner; the rendered artifact is printed once per process so
//
//	go test -bench=. -benchmem
//
// emits the full set of reproduced tables/figures alongside timings.
// Measurement runs are memoized within the process (figures share
// configuration replays exactly as the paper's analysis shares traces),
// so the first iteration of each benchmark carries the real cost.
//
// Environment knobs: REPRO_BENCH_REQUESTS overrides the per-configuration
// request count (default 48).
package repro

import (
	"fmt"
	"io"
	"math/rand"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/frontend"
	"repro/internal/nn"
	"repro/internal/obs"
	"repro/internal/tensor"
	"repro/internal/trace"
)

var (
	benchMu      sync.Mutex
	benchRunner  *experiments.Runner
	benchPrinted = map[string]bool{}
)

func runner() *experiments.Runner {
	if benchRunner == nil {
		requests := 48
		if v := os.Getenv("REPRO_BENCH_REQUESTS"); v != "" {
			if n, err := strconv.Atoi(v); err == nil && n > 0 {
				requests = n
			}
		}
		benchRunner = experiments.NewRunner(experiments.Params{
			Requests: requests, Warmup: 6, Seed: 12345,
		})
	}
	return benchRunner
}

// runExperiment executes one experiment; the first execution in the
// process prints the rendered artifact.
func runExperiment(b *testing.B, id string) {
	b.Helper()
	benchMu.Lock()
	defer benchMu.Unlock()
	e, err := experiments.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	var out io.Writer = io.Discard
	if !benchPrinted[id] {
		benchPrinted[id] = true
		out = os.Stdout
	}
	for i := 0; i < b.N; i++ {
		if err := e.Run(runner(), out); err != nil {
			b.Fatal(err)
		}
		out = io.Discard
	}
}

// BenchmarkFig1ModelGrowth regenerates Fig. 1 (historical model growth,
// synthetic trend per DESIGN.md's substitution table).
func BenchmarkFig1ModelGrowth(b *testing.B) { runExperiment(b, "fig1") }

// BenchmarkFig3ExampleTrace regenerates Fig. 3 (an example distributed
// trace rendered as a shard-sliced timeline).
func BenchmarkFig3ExampleTrace(b *testing.B) { runExperiment(b, "fig3") }

// BenchmarkFig4OperatorAttribution regenerates Fig. 4 (operator compute
// attribution for DRM1/DRM2/DRM3 under the singular configuration).
func BenchmarkFig4OperatorAttribution(b *testing.B) { runExperiment(b, "fig4") }

// BenchmarkFig5TableSizes regenerates Fig. 5 (embedding-table size
// distributions).
func BenchmarkFig5TableSizes(b *testing.B) { runExperiment(b, "fig5") }

// BenchmarkTable2ShardingResults regenerates Table II (per-shard
// capacity / table count / pooling under every sharding configuration).
func BenchmarkTable2ShardingResults(b *testing.B) { runExperiment(b, "tab2") }

// BenchmarkFig6Overheads regenerates Fig. 6 (P50/P90/P99 latency and
// compute overheads vs singular for DRM1 and DRM2, serial requests).
func BenchmarkFig6Overheads(b *testing.B) { runExperiment(b, "fig6") }

// BenchmarkFig7DRM3Overheads regenerates Fig. 7 (DRM3 overheads:
// sharding does not help a single-dominating-table model).
func BenchmarkFig7DRM3Overheads(b *testing.B) { runExperiment(b, "fig7") }

// BenchmarkFig8LatencyStacks regenerates Fig. 8 (P50 E2E latency stacks
// and embedded-portion stacks by configuration).
func BenchmarkFig8LatencyStacks(b *testing.B) { runExperiment(b, "fig8") }

// BenchmarkFig9CPUStacks regenerates Fig. 9 (P50 aggregate CPU stacks).
func BenchmarkFig9CPUStacks(b *testing.B) { runExperiment(b, "fig9") }

// BenchmarkFig10PerShardByNet regenerates Fig. 10 (DRM1 per-shard
// operator latency by net: load-balanced vs NSBP at 8 shards).
func BenchmarkFig10PerShardByNet(b *testing.B) { runExperiment(b, "fig10") }

// BenchmarkFig11DRM3PerShard regenerates Fig. 11 (DRM3 per-shard
// latencies and embedded stacks).
func BenchmarkFig11DRM3PerShard(b *testing.B) { runExperiment(b, "fig11") }

// BenchmarkFig12PerShardByStrategy regenerates Fig. 12 (DRM1 per-shard
// operator latency under all strategies at 8 shards).
func BenchmarkFig12PerShardByStrategy(b *testing.B) { runExperiment(b, "fig12") }

// BenchmarkFig13BatchingLatency regenerates Fig. 13 (default- vs
// single-batch latency stacks).
func BenchmarkFig13BatchingLatency(b *testing.B) { runExperiment(b, "fig13") }

// BenchmarkFig14BatchingCPU regenerates Fig. 14 (default- vs
// single-batch CPU stacks).
func BenchmarkFig14BatchingCPU(b *testing.B) { runExperiment(b, "fig14") }

// BenchmarkFig15PlatformEfficiency regenerates Fig. 15 (per-shard
// operator latency on SC-Large vs SC-Small).
func BenchmarkFig15PlatformEfficiency(b *testing.B) { runExperiment(b, "fig15") }

// BenchmarkFig16HighQPS regenerates Fig. 16 (DRM1 overheads under
// open-loop high-QPS load).
func BenchmarkFig16HighQPS(b *testing.B) { runExperiment(b, "fig16") }

// BenchmarkTable3Compression regenerates Table III (quantization and
// pruning on DRM1).
func BenchmarkTable3Compression(b *testing.B) { runExperiment(b, "tab3") }

// BenchmarkReplicationEconomics regenerates the Section VII-C analysis
// (fleet sizing and memory at equal QPS, singular vs distributed).
func BenchmarkReplicationEconomics(b *testing.B) { runExperiment(b, "repl") }

// BenchmarkFrontierServing sweeps the SLA-aware serving frontend's batch
// window against offered QPS (throughput/P99/fallback frontier).
func BenchmarkFrontierServing(b *testing.B) { runExperiment(b, "front") }

// BenchmarkReshardOnline regenerates the online-resharding sweep: load
// drift × move budget, with the mid-migration score-identity check.
func BenchmarkReshardOnline(b *testing.B) { runExperiment(b, "reshard") }

// BenchmarkTieredStorage regenerates the tiered-storage sweep: cache
// budget × cold precision × row skew, the paired equal-QPS verdict, and
// the migration identity check with the hot-row cache enabled.
func BenchmarkTieredStorage(b *testing.B) { runExperiment(b, "tiered") }

// BenchmarkDenseEngine regenerates the dense-engine sweep: blocked GEMM
// GFLOP/s across batch × parallelism × MLP shape with the bitwise
// serial/parallel identity check, plus e2e latency at both settings.
func BenchmarkDenseEngine(b *testing.B) { runExperiment(b, "dense") }

// BenchmarkFaultTolerance regenerates the replica-failure sweep: kills ×
// replica count × hedge delay with health ejection on/off, the SLA and
// rebuild/rejoin timings, and the degraded-fleet score-identity check.
func BenchmarkFaultTolerance(b *testing.B) { runExperiment(b, "fault") }

// denseOperands builds deterministic GEMM operands for the dense-path
// benchmarks.
func denseOperands(m, k, n int) (a, b *tensor.Matrix) {
	rng := rand.New(rand.NewSource(1234))
	a, b = tensor.New(m, k), tensor.New(k, n)
	for i := range a.Data {
		a.Data[i] = rng.Float32()*2 - 1
	}
	for i := range b.Data {
		b.Data[i] = rng.Float32()*2 - 1
	}
	return a, b
}

// BenchmarkDenseGEMM measures the blocked GEMM on a coalesced-batch
// serving shape (64 rows through DRM1's 418->256 top layer). The
// serial/parallel pair runs whatever kernel auto-dispatch resolves;
// the generic/vector pair pins each kernel family explicitly so the
// bench gate can assert the vectorized micro-kernel actually beats the
// scalar one (benchcheck -assert-faster), and the *-tail pair repeats
// the comparison on a deliberately awkward shape (61x419x253: row,
// column, and k tails all non-empty) where the SIMD kernels hand the
// leftovers to their scalar epilogues. Every arm must produce bitwise
// identical outputs; only the wall clock may differ.
func BenchmarkDenseGEMM(b *testing.B) {
	a, w := denseOperands(64, 418, 256)
	at, wt := denseOperands(61, 419, 253)
	for _, tc := range []struct {
		name string
		par  int
		kern tensor.Kernel
		a, w *tensor.Matrix
	}{
		{"serial", 1, tensor.KernelAuto, a, w},
		{"parallel", 0, tensor.KernelAuto, a, w},
		{"generic", 1, tensor.KernelGeneric, a, w},
		{"vector", 1, tensor.KernelVector, a, w},
		{"generic-tail", 1, tensor.KernelGeneric, at, wt},
		{"vector-tail", 1, tensor.KernelVector, at, wt},
	} {
		b.Run(tc.name, func(b *testing.B) {
			m, k, n := tc.a.Rows, tc.a.Cols, tc.w.Cols
			out := tensor.New(m, n)
			tensor.SetParallelism(tc.par)
			tensor.SetKernel(tc.kern)
			defer tensor.SetParallelism(0)
			defer tensor.SetKernel(tensor.KernelAuto)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				tensor.MatMul(out, tc.a, tc.w)
			}
			flops := 2 * m * k * n
			b.ReportMetric(float64(flops)*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFLOP/s")
		})
	}
}

// BenchmarkFusedFC compares the fused FC+bias+ReLU operator against the
// unfused FC → Activation pair it replaced in the engine's compiled MLP
// stacks, at a batch-64 serving shape.
func BenchmarkFusedFC(b *testing.B) {
	in, w := denseOperands(64, 418, 256)
	bias := make([]float32, 256)
	ws := nn.NewWorkspace()
	ws.SetBlob("in", in)
	fused := &nn.FusedFC{OpName: "f", W: w, B: bias, Act: nn.ActReLU, Input: "in", Output: "out"}
	fc := &nn.FC{OpName: "fc", W: w, B: bias, Input: "in", Output: "out"}
	act := &nn.Activation{OpName: "act", Func: nn.ActReLU, Blob: "out"}
	b.Run("fused", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := fused.Run(ws); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("unfused", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := fc.Run(ws); err != nil {
				b.Fatal(err)
			}
			if err := act.Run(ws); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// nopExec is a zero-cost executor isolating the serving frontend's own
// hot path (queue, gather, admission, demux) from engine time.
type nopExec struct{}

func (nopExec) Validate(*core.RankingRequest) error { return nil }

func (nopExec) ExecuteBatch(items []core.BatchItem) ([][]float32, error) {
	out := make([][]float32, len(items))
	for i, it := range items {
		out[i] = make([]float32, it.Req.Items)
	}
	return out, nil
}

// BenchmarkFrontendBatcher measures the dynamic batcher's hot path:
// concurrent submits coalescing through the queue into no-op executions.
// The custom reqs/batch metric shows the coalescing the contention level
// actually achieves.
func BenchmarkFrontendBatcher(b *testing.B) {
	f := frontend.New(nopExec{}, frontend.Config{MaxQueue: 4096, MaxBatchRequests: 64})
	defer f.Close()
	req := &core.RankingRequest{ID: 1, Items: 8}
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := f.Submit(trace.Context{TraceID: 1}, req); err != nil {
				b.Error(err)
				return
			}
		}
	})
	st := f.Stats()
	if st.Batches > 0 {
		b.ReportMetric(float64(st.BatchedRequests)/float64(st.Batches), "reqs/batch")
	}
}

// BenchmarkFrontendAdmission measures the admission-control path: every
// submit prices its SLA budget against the estimator before queueing.
func BenchmarkFrontendAdmission(b *testing.B) {
	f := frontend.New(nopExec{}, frontend.Config{
		MaxQueue: 4096, MaxBatchRequests: 64, Budget: time.Second,
	})
	defer f.Close()
	req := &core.RankingRequest{ID: 1, Items: 8}
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := f.Submit(trace.Context{TraceID: 1}, req); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

// BenchmarkObsOverhead prices the telemetry tentpole: the serving
// frontend's hot path (queue, admission, gather, demux over a no-op
// executor, so instrumentation is the signal rather than engine time)
// with the discarding registry — every handle nil, the uninstrumented
// baseline — against a live registry plus 1-in-16 sampled tracing. The
// benchcheck gate holds both arms to the recorded baseline, so an
// obs-path regression (or an accidentally hot discard path) fails CI.
func BenchmarkObsOverhead(b *testing.B) {
	for _, tc := range []struct {
		name   string
		reg    *obs.Registry
		sample int
	}{
		{"discard", obs.Discard(), 0},
		{"live", obs.NewRegistry(), 16},
	} {
		b.Run(tc.name, func(b *testing.B) {
			cfg := frontend.Config{
				MaxQueue: 4096, MaxBatchRequests: 64, Budget: time.Second,
				Obs: tc.reg,
			}
			if tc.sample > 0 {
				cfg.Tracer = obs.NewTracer(tc.reg, obs.TracerConfig{SampleEvery: tc.sample})
			}
			f := frontend.New(nopExec{}, cfg)
			defer f.Close()
			req := &core.RankingRequest{ID: 1, Items: 8}
			var id atomic.Uint64
			b.ReportAllocs()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					if _, err := f.Submit(trace.Context{TraceID: id.Add(1)}, req); err != nil {
						b.Error(err)
						return
					}
				}
			})
		})
	}
}

// TestExperimentRegistryComplete pins the experiment inventory to the
// paper's artifact list so a new figure cannot silently go missing.
func TestExperimentRegistryComplete(t *testing.T) {
	want := []string{
		"fig1", "fig3", "fig4", "fig5", "tab2", "fig6", "fig7", "fig8", "fig9",
		"fig10", "fig11", "fig12", "fig13", "fig14", "fig15", "fig16", "tab3",
		"repl", "front", "reshard", "tiered", "dense", "fault", "coserve",
		"fresh",
	}
	all := experiments.All()
	if len(all) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(all), len(want))
	}
	for i, id := range want {
		if all[i].ID != id {
			t.Errorf("experiment %d = %s, want %s", i, all[i].ID, id)
		}
	}
	if _, err := experiments.ByID("nope"); err == nil {
		t.Error("unknown id should error")
	}
	fmt.Fprintln(io.Discard) // keep fmt imported for future debugging
}
