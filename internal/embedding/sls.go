package embedding

import "fmt"

// BagAccumulator is implemented by table backends with an amortized
// whole-bag pooling path (the tiered store: one lock pair per bag
// instead of per row). Implementations must pool in strict index order
// and bounds-check like SLS does, so swapping a backend in or out never
// changes results or panics.
type BagAccumulator interface {
	AccumulateBag(acc []float32, indices []int32)
}

// Bag is one pooled lookup: a set of row indices in a table whose
// embedding vectors are summed (the paper's pooling operation). One
// inference example contributes one bag per sparse feature; the number of
// indices in the bag is that feature's pooling factor for the example.
type Bag struct {
	Indices []int32
}

// SLS executes SparseLengthsSum over a table: for each bag, it sums the
// indexed rows into one output vector of length table.Dim(). out must be
// len(bags)*dim long (row-major, one row per bag). Rows are pre-zeroed.
//
// This mirrors Caffe2's SparseLengthsSum, the operator family the paper
// reports as "SLS" and which dominates sparse-shard compute.
func SLS(out []float32, table Table, bags []Bag) {
	dim := table.Dim()
	if len(out) != len(bags)*dim {
		panic(fmt.Sprintf("embedding: SLS out length %d != %d bags × dim %d", len(out), len(bags), dim))
	}
	for i := range out {
		out[i] = 0
	}
	if ba, ok := table.(BagAccumulator); ok {
		for b, bag := range bags {
			ba.AccumulateBag(out[b*dim:(b+1)*dim], bag.Indices)
		}
		return
	}
	rows := table.NumRows()
	for b, bag := range bags {
		acc := out[b*dim : (b+1)*dim]
		for _, idx := range bag.Indices {
			if idx < 0 || int(idx) >= rows {
				panic(fmt.Sprintf("embedding: SLS index %d out of range [0,%d)", idx, rows))
			}
			table.AccumulateRow(acc, int(idx))
		}
	}
}

// SLSMean is the mean-pooled variant: each output vector is the average of
// the indexed rows (empty bags produce zero vectors).
func SLSMean(out []float32, table Table, bags []Bag) {
	SLS(out, table, bags)
	dim := table.Dim()
	for b, bag := range bags {
		n := len(bag.Indices)
		if n <= 1 {
			continue
		}
		inv := 1 / float32(n)
		acc := out[b*dim : (b+1)*dim]
		for i := range acc {
			acc[i] *= inv
		}
	}
}

// TotalLookups returns the total pooling work (number of row accesses)
// across bags — the quantity the load-balanced sharding strategy budgets.
func TotalLookups(bags []Bag) int {
	n := 0
	for _, b := range bags {
		n += len(b.Indices)
	}
	return n
}
