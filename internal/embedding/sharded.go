package embedding

import (
	"fmt"
	"math/rand"
)

// Part is one row-partition of a larger logical table. Logical row r lives
// in part r % NumParts at local row r / NumParts — the paper's "simple
// modulus operator" partition. Because the pooling operation is a sum,
// pooling each part's hits independently and summing the partial results
// reproduces the unsharded pooling exactly; that algebraic identity is what
// makes modulus row-sharding transparent to the model.
type Part struct {
	// Index is this part's position in [0, NumParts).
	Index int
	// NumParts is the total number of partitions of the logical table.
	NumParts int
	// Local stores this part's rows compactly.
	Local *Dense
}

// PartitionRows splits a logical table of logicalRows×dim into numParts
// modulus partitions, each backed by its own Dense storage filled from
// src. src may be nil, in which case parts are zero-initialized.
func PartitionRows(src *Dense, numParts int) []*Part {
	if numParts <= 0 {
		panic(fmt.Sprintf("embedding: numParts %d <= 0", numParts))
	}
	parts := make([]*Part, numParts)
	rows, dim := src.NumRows(), src.Dim()
	for p := 0; p < numParts; p++ {
		localRows := rows / numParts
		if p < rows%numParts {
			localRows++
		}
		if localRows == 0 {
			localRows = 1 // keep backend valid for parts with no rows
		}
		parts[p] = &Part{Index: p, NumParts: numParts, Local: NewDense(localRows, dim)}
	}
	for r := 0; r < rows; r++ {
		p := r % numParts
		copy(parts[p].Local.Row(r/numParts), src.Row(r))
	}
	return parts
}

// LocalRow converts a logical row index into this part's local index. It
// panics if the logical row does not belong to this part.
func (p *Part) LocalRow(logical int) int {
	if logical%p.NumParts != p.Index {
		panic(fmt.Sprintf("embedding: row %d does not belong to part %d/%d", logical, p.Index, p.NumParts))
	}
	return logical / p.NumParts
}

// SplitBags routes each bag's logical indices to per-part bags with local
// indices, preserving bag positions so per-part SLS outputs align. The
// returned slice has numParts entries, each with len(bags) bags (possibly
// empty). This is the ID-splitting step the RPC operator performs before
// fanning out to the shards that hold a partitioned table.
func SplitBags(bags []Bag, numParts int) [][]Bag {
	out := make([][]Bag, numParts)
	for p := range out {
		out[p] = make([]Bag, len(bags))
	}
	for b, bag := range bags {
		for _, idx := range bag.Indices {
			p := int(idx) % numParts
			local := idx / int32(numParts)
			out[p][b].Indices = append(out[p][b].Indices, local)
		}
	}
	return out
}

// MergePartial sums per-part SLS outputs into one pooled result. Each
// partial must be len(out) long; parts with no hits contribute zeros.
func MergePartial(out []float32, partials [][]float32) {
	for i := range out {
		out[i] = 0
	}
	for _, part := range partials {
		if len(part) != len(out) {
			panic(fmt.Sprintf("embedding: partial length %d != out %d", len(part), len(out)))
		}
		for i, v := range part {
			out[i] += v
		}
	}
}

// NewDenseRandomRows is a convenience used by tests and model builders: it
// creates a table whose row values encode the row index, making lookup
// provenance checkable.
func NewDenseRandomRows(rng *rand.Rand, rows, dim int) *Dense {
	t := NewDense(rows, dim)
	for r := 0; r < rows; r++ {
		base := rng.Float32()
		row := t.Row(r)
		for c := range row {
			row[c] = base + float32(r)*1e-4 + float32(c)*1e-6
		}
	}
	return t
}
