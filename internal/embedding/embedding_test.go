package embedding

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/quant"
)

func TestDenseBasics(t *testing.T) {
	tab := NewDense(4, 3)
	if tab.NumRows() != 4 || tab.Dim() != 3 || tab.Bytes() != 48 {
		t.Fatalf("shape wrong: %+v", tab)
	}
	tab.Row(2)[1] = 5
	acc := make([]float32, 3)
	tab.AccumulateRow(acc, 2)
	if acc[1] != 5 {
		t.Errorf("AccumulateRow: %v", acc)
	}
}

func TestNewDensePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewDense(0, 4)
}

func TestSLSKnown(t *testing.T) {
	tab := NewDense(3, 2)
	copy(tab.Data, []float32{1, 2, 10, 20, 100, 200})
	bags := []Bag{
		{Indices: []int32{0, 2}}, // rows 0+2 = {101, 202}
		{Indices: []int32{1}},    // row 1 = {10, 20}
		{},                       // empty bag = zeros
	}
	out := make([]float32, 6)
	SLS(out, tab, bags)
	want := []float32{101, 202, 10, 20, 0, 0}
	for i, w := range want {
		if out[i] != w {
			t.Errorf("out[%d] = %v, want %v", i, out[i], w)
		}
	}
}

func TestSLSZeroesOutput(t *testing.T) {
	tab := NewDense(1, 2)
	out := []float32{9, 9}
	SLS(out, tab, []Bag{{}})
	if out[0] != 0 || out[1] != 0 {
		t.Errorf("SLS must zero output first: %v", out)
	}
}

func TestSLSPanicsOnBadIndex(t *testing.T) {
	tab := NewDense(2, 2)
	out := make([]float32, 2)
	defer func() {
		if recover() == nil {
			t.Error("expected panic for out-of-range index")
		}
	}()
	SLS(out, tab, []Bag{{Indices: []int32{5}}})
}

func TestSLSPanicsOnBadOutLen(t *testing.T) {
	tab := NewDense(2, 2)
	defer func() {
		if recover() == nil {
			t.Error("expected panic for bad out length")
		}
	}()
	SLS(make([]float32, 3), tab, []Bag{{}})
}

func TestSLSMean(t *testing.T) {
	tab := NewDense(2, 2)
	copy(tab.Data, []float32{2, 4, 6, 8})
	out := make([]float32, 2)
	SLSMean(out, tab, []Bag{{Indices: []int32{0, 1}}})
	if out[0] != 4 || out[1] != 6 {
		t.Errorf("SLSMean = %v, want [4 6]", out)
	}
	// Single-index and empty bags are unscaled.
	SLSMean(out, tab, []Bag{{Indices: []int32{1}}})
	if out[0] != 6 || out[1] != 8 {
		t.Errorf("SLSMean single = %v", out)
	}
}

func TestTotalLookups(t *testing.T) {
	bags := []Bag{{Indices: []int32{1, 2}}, {}, {Indices: []int32{3}}}
	if got := TotalLookups(bags); got != 3 {
		t.Errorf("TotalLookups = %d, want 3", got)
	}
}

func TestQuantizedTableMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	tab := NewDenseRandom(rng, 50, 16, 1)
	qt := tab.Quantize(quant.Bits8)
	if qt.NumRows() != 50 || qt.Dim() != 16 {
		t.Fatalf("quantized shape wrong")
	}
	bags := []Bag{{Indices: []int32{0, 7, 31}}}
	dense := make([]float32, 16)
	quantized := make([]float32, 16)
	SLS(dense, tab, bags)
	SLS(quantized, qt, bags)
	for i := range dense {
		// 3 lookups × per-row bound (half step + fp16 header rounding).
		if diff := math.Abs(float64(dense[i] - quantized[i])); diff > 0.03 {
			t.Errorf("quantized SLS diverges at %d: %v vs %v", i, quantized[i], dense[i])
		}
	}
	if qt.Bytes() >= tab.Bytes() {
		t.Errorf("quantized table should be smaller: %d vs %d", qt.Bytes(), tab.Bytes())
	}
}

func TestPartitionRowsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	src := NewDenseRandomRows(rng, 17, 4) // odd row count exercises remainders
	parts := PartitionRows(src, 4)
	if len(parts) != 4 {
		t.Fatalf("got %d parts", len(parts))
	}
	for r := 0; r < src.NumRows(); r++ {
		p := parts[r%4]
		local := p.LocalRow(r)
		got := p.Local.Row(local)
		want := src.Row(r)
		for c := range want {
			if got[c] != want[c] {
				t.Fatalf("row %d mismatch at col %d", r, c)
			}
		}
	}
}

func TestLocalRowPanicsOnWrongPart(t *testing.T) {
	src := NewDense(8, 2)
	parts := PartitionRows(src, 2)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	parts[0].LocalRow(3) // 3 % 2 == 1, belongs to part 1
}

func TestPartitionPanicsOnBadParts(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	PartitionRows(NewDense(4, 2), 0)
}

func TestPartitionMorePartsThanRows(t *testing.T) {
	src := NewDense(2, 2)
	parts := PartitionRows(src, 5)
	for _, p := range parts {
		if p.Local.NumRows() < 1 {
			t.Errorf("part %d has no backing rows", p.Index)
		}
	}
}

func TestSplitBagsPreservesPositions(t *testing.T) {
	bags := []Bag{
		{Indices: []int32{0, 1, 2, 3}},
		{Indices: []int32{5}},
	}
	split := SplitBags(bags, 2)
	if len(split) != 2 || len(split[0]) != 2 || len(split[1]) != 2 {
		t.Fatalf("split shape wrong: %v", split)
	}
	// Part 0 gets even indices with local = idx/2.
	if got := split[0][0].Indices; len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Errorf("part0 bag0 = %v", got)
	}
	if got := split[1][1].Indices; len(got) != 1 || got[0] != 2 {
		t.Errorf("part1 bag1 = %v (want local index 5/2=2)", got)
	}
}

// TestShardedSLSEquivalence is the core invariant of row-sharding: SLS on
// the full table equals the sum of per-part SLS results routed through
// SplitBags. This is what makes modulus partitioning transparent.
func TestShardedSLSEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	src := NewDenseRandom(rng, 64, 8, 1)
	bags := make([]Bag, 5)
	for b := range bags {
		n := rng.Intn(10)
		for i := 0; i < n; i++ {
			bags[b].Indices = append(bags[b].Indices, int32(rng.Intn(64)))
		}
	}
	full := make([]float32, len(bags)*8)
	SLS(full, src, bags)

	for _, numParts := range []int{1, 2, 3, 7} {
		parts := PartitionRows(src, numParts)
		split := SplitBags(bags, numParts)
		partials := make([][]float32, numParts)
		for p := 0; p < numParts; p++ {
			partials[p] = make([]float32, len(bags)*8)
			SLS(partials[p], parts[p].Local, split[p])
		}
		merged := make([]float32, len(bags)*8)
		MergePartial(merged, partials)
		for i := range full {
			if diff := math.Abs(float64(full[i] - merged[i])); diff > 1e-4 {
				t.Fatalf("numParts=%d: sharded SLS diverges at %d: %v vs %v", numParts, i, merged[i], full[i])
			}
		}
	}
}

func TestShardedSLSEquivalenceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows := 8 + rng.Intn(56)
		dim := 1 + rng.Intn(8)
		numParts := 1 + rng.Intn(6)
		src := NewDenseRandom(rng, rows, dim, 1)
		bags := make([]Bag, 1+rng.Intn(4))
		for b := range bags {
			for i, n := 0, rng.Intn(8); i < n; i++ {
				bags[b].Indices = append(bags[b].Indices, int32(rng.Intn(rows)))
			}
		}
		full := make([]float32, len(bags)*dim)
		SLS(full, src, bags)
		parts := PartitionRows(src, numParts)
		split := SplitBags(bags, numParts)
		partials := make([][]float32, numParts)
		for p := range parts {
			partials[p] = make([]float32, len(bags)*dim)
			SLS(partials[p], parts[p].Local, split[p])
		}
		merged := make([]float32, len(bags)*dim)
		MergePartial(merged, partials)
		for i := range full {
			if math.Abs(float64(full[i]-merged[i])) > 1e-3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestMergePartialPanicsOnLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	MergePartial(make([]float32, 4), [][]float32{make([]float32, 3)})
}
