package embedding

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

func writeTempPaged(t testing.TB, src *Dense) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "table.drmp")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := WritePagedTable(f, src); err != nil {
		f.Close()
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestPagedTableMatchesResident(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	src := NewDenseRandom(rng, 512, 16, 1)
	paged, err := OpenPagedTable(writeTempPaged(t, src))
	if err != nil {
		t.Fatal(err)
	}
	defer paged.Close()
	if paged.NumRows() != 512 || paged.Dim() != 16 {
		t.Fatalf("paged shape %dx%d", paged.NumRows(), paged.Dim())
	}
	for i := 0; i < 200; i++ {
		idx := rng.Intn(512)
		a := make([]float32, 16)
		b := make([]float32, 16)
		src.AccumulateRow(a, idx)
		paged.AccumulateRow(b, idx)
		for c := range a {
			if a[c] != b[c] {
				t.Fatalf("row %d col %d differs: %v vs %v", idx, c, b[c], a[c])
			}
		}
	}
	if paged.Reads() != 200 {
		t.Errorf("Reads = %d, want 200", paged.Reads())
	}
	// The point of paging: negligible resident bytes vs full storage.
	if paged.Bytes() >= src.Bytes()/10 {
		t.Errorf("paged resident bytes %d should be tiny vs %d", paged.Bytes(), src.Bytes())
	}
	if paged.StorageBytes() != src.Bytes() {
		t.Errorf("storage bytes %d != source %d", paged.StorageBytes(), src.Bytes())
	}
}

func TestPagedTableWithSLS(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	src := NewDenseRandom(rng, 64, 8, 1)
	paged, err := OpenPagedTable(writeTempPaged(t, src))
	if err != nil {
		t.Fatal(err)
	}
	defer paged.Close()
	bags := []Bag{{Indices: []int32{1, 5, 9}}, {Indices: []int32{60}}}
	want := make([]float32, 16)
	got := make([]float32, 16)
	SLS(want, src, bags)
	SLS(got, paged, bags)
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("paged SLS differs at %d", i)
		}
	}
}

func TestPagedTableBehindCache(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	src := NewDenseRandom(rng, 256, 8, 1)
	paged, err := OpenPagedTable(writeTempPaged(t, src))
	if err != nil {
		t.Fatal(err)
	}
	defer paged.Close()
	cached := NewCachedTable(paged, 32)
	acc := make([]float32, 8)
	// Hot loop over 16 rows: after the cold pass, no storage reads.
	for pass := 0; pass < 10; pass++ {
		for idx := 0; idx < 16; idx++ {
			cached.AccumulateRow(acc, idx)
		}
	}
	if paged.Reads() != 16 {
		t.Errorf("storage reads = %d, want 16 (cache absorbs the rest)", paged.Reads())
	}
	if hr := cached.HitRate(); hr < 0.89 {
		t.Errorf("hit rate %.3f, want ≥ 0.9", hr)
	}
}

func TestOpenPagedTableRejectsBadFiles(t *testing.T) {
	dir := t.TempDir()
	// Not a paged table.
	bogus := filepath.Join(dir, "bogus")
	if err := os.WriteFile(bogus, []byte("hello world, definitely not a table"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenPagedTable(bogus); err == nil {
		t.Error("bogus file accepted")
	}
	// Truncated file.
	src := NewDense(16, 4)
	path := writeTempPaged(t, src)
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	trunc := filepath.Join(dir, "trunc")
	if err := os.WriteFile(trunc, full[:len(full)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenPagedTable(trunc); err == nil {
		t.Error("truncated file accepted")
	}
	// Missing file.
	if _, err := OpenPagedTable(filepath.Join(dir, "nope")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestPagedTableOutOfRangePanics(t *testing.T) {
	src := NewDense(8, 2)
	paged, err := OpenPagedTable(writeTempPaged(t, src))
	if err != nil {
		t.Fatal(err)
	}
	defer paged.Close()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	paged.AccumulateRow(make([]float32, 2), 8)
}

// BenchmarkPagedVsResident quantifies the paper's intro argument: paging
// trades DRAM for per-lookup storage latency, so its viability is a
// device property. Three points: resident fp32, paged (OS page cache
// hot), and paged behind a DRAM row cache.
func BenchmarkPagedVsResident(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	src := NewDenseRandom(rng, 1<<16, 16, 1)
	idx := make([]int, 4096)
	for i := range idx {
		idx[i] = rng.Intn(1 << 16)
	}
	b.Run("resident-fp32", func(b *testing.B) {
		acc := make([]float32, 16)
		for i := 0; i < b.N; i++ {
			src.AccumulateRow(acc, idx[i%len(idx)])
		}
	})
	path := writeTempPaged(b, src)
	paged, err := OpenPagedTable(path)
	if err != nil {
		b.Fatal(err)
	}
	defer paged.Close()
	b.Run("paged", func(b *testing.B) {
		acc := make([]float32, 16)
		for i := 0; i < b.N; i++ {
			paged.AccumulateRow(acc, idx[i%len(idx)])
		}
	})
	b.Run("paged+cache", func(b *testing.B) {
		cached := NewCachedTable(paged, 8192)
		acc := make([]float32, 16)
		for i := 0; i < b.N; i++ {
			cached.AccumulateRow(acc, idx[i%len(idx)])
		}
	})
}
