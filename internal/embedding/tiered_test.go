package embedding

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/quant"
)

func tieredBackends(t *testing.T) map[string]Table {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	dense := NewDenseRandom(rng, 512, 24, 0.1)
	return map[string]Table{
		"fp32": dense,
		"fp16": dense.ToFP16(),
		"int8": dense.Quantize(quant.Bits8),
		"int4": dense.Quantize(quant.Bits4),
	}
}

// TestTieredHitMissBitIdentity pins the tiered store's core contract:
// the terms a pooled sum receives are bitwise identical whether a row
// comes from the hot cache, the cold tier's fused accumulate, or a
// decoded copy — for every cold backend. If this breaks, the migration
// identity guarantee breaks with it.
func TestTieredHitMissBitIdentity(t *testing.T) {
	for name, cold := range tieredBackends(t) {
		dec := cold.(RowDecoder)
		dim := cold.Dim()
		for idx := 0; idx < cold.NumRows(); idx += 37 {
			// Decoded copy, then added — the cache-hit arithmetic.
			row := make([]float32, dim)
			dec.DecodeRow(row, idx)
			viaDecode := make([]float32, dim)
			for i, v := range row {
				viaDecode[i] += v
			}
			// Fused accumulate — the cache-miss (and uncached) arithmetic.
			viaAccum := make([]float32, dim)
			cold.AccumulateRow(viaAccum, idx)
			for i := range viaDecode {
				if math.Float32bits(viaDecode[i]) != math.Float32bits(viaAccum[i]) {
					t.Fatalf("%s row %d col %d: decode+add %x != accumulate %x",
						name, idx, i, math.Float32bits(viaDecode[i]), math.Float32bits(viaAccum[i]))
				}
			}
		}
	}
}

// TestTieredPoolingMatchesCold replays the same bags through the cold
// backend and through a tiered wrapper (twice, so the second pass mixes
// hits into the same stream) and requires bitwise-equal pooled outputs.
func TestTieredPoolingMatchesCold(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for name, cold := range tieredBackends(t) {
		tiered := NewTiered(cold, 128)
		bags := make([]Bag, 32)
		for b := range bags {
			idx := make([]int32, 1+rng.Intn(20))
			for i := range idx {
				// Zipf-ish reuse so the cache actually admits and hits.
				idx[i] = int32(rng.Intn(64))
			}
			bags[b].Indices = idx
		}
		want := make([]float32, len(bags)*cold.Dim())
		SLS(want, cold, bags)
		for pass := 0; pass < 3; pass++ {
			got := make([]float32, len(bags)*cold.Dim())
			SLS(got, tiered, bags)
			for i := range want {
				if math.Float32bits(got[i]) != math.Float32bits(want[i]) {
					t.Fatalf("%s pass %d: output %d = %x, want %x", name, pass, i,
						math.Float32bits(got[i]), math.Float32bits(want[i]))
				}
			}
		}
		st := tiered.Stats()
		if st.Hits == 0 {
			t.Fatalf("%s: repeated replay produced no cache hits (%+v)", name, st)
		}
	}
}

func TestTieredAdmissionByFrequency(t *testing.T) {
	cold := NewDenseRandom(rand.New(rand.NewSource(1)), 256, 8, 0.1)
	tt := NewTiered(cold, 64)
	acc := make([]float32, 8)
	// A row seen once must not be admitted; seen admitAfter times it must.
	tt.AccumulateRow(acc, 7)
	if tt.CachedRows() != 0 {
		t.Fatalf("one touch admitted a row (cached %d)", tt.CachedRows())
	}
	for i := 0; i < admitAfter; i++ {
		tt.AccumulateRow(acc, 7)
	}
	if tt.CachedRows() != 1 {
		t.Fatalf("row not admitted after %d touches (cached %d)", admitAfter+1, tt.CachedRows())
	}
	st := tt.Stats()
	if st.Hits == 0 || st.Admits != 1 {
		t.Fatalf("unexpected stats %+v", st)
	}
}

func TestTieredSetCapacityAndInvalidate(t *testing.T) {
	cold := NewDenseRandom(rand.New(rand.NewSource(2)), 256, 8, 0.1)
	tt := NewTiered(cold, 100)
	if got := tt.Capacity(); got != 64 {
		t.Fatalf("capacity floors to a power of two: got %d, want 64", got)
	}
	acc := make([]float32, 8)
	for pass := 0; pass < 4; pass++ {
		for idx := 0; idx < 32; idx++ {
			tt.AccumulateRow(acc, idx)
		}
	}
	if tt.CachedRows() == 0 {
		t.Fatal("no rows cached after repeated access")
	}
	warm := tt.CachedRows()
	// Growing rehashes the warm entries instead of dropping them.
	tt.SetCapacity(256)
	if tt.Capacity() != 256 {
		t.Fatalf("capacity = %d, want 256", tt.Capacity())
	}
	if tt.CachedRows() == 0 || tt.CachedRows() > warm {
		t.Fatalf("resize lost the warm set: %d -> %d", warm, tt.CachedRows())
	}
	if tt.CacheBytes() != int64(256*8*4) {
		t.Fatalf("cache backing bytes = %d, want %d", tt.CacheBytes(), 256*8*4)
	}
	if want := cold.Bytes() + tt.CacheBytes(); tt.Bytes() != want {
		t.Fatalf("Bytes() = %d, want %d", tt.Bytes(), want)
	}
	tt.Invalidate()
	if tt.CachedRows() != 0 {
		t.Fatalf("invalidate left %d rows", tt.CachedRows())
	}
	// Capacity 0 disables the cache entirely.
	tt.SetCapacity(0)
	if tt.Capacity() != 0 || tt.CacheBytes() != 0 {
		t.Fatalf("capacity 0 not disabled: cap %d bytes %d", tt.Capacity(), tt.CacheBytes())
	}
	tt.AccumulateRow(acc, 3) // must not panic with the cache disabled
}

func TestTieredOutOfRangePanics(t *testing.T) {
	cold := NewDenseRandom(rand.New(rand.NewSource(3)), 16, 4, 0.1)
	tt := NewTiered(cold, 8)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range index did not panic")
		}
	}()
	tt.AccumulateRow(make([]float32, 4), 16)
}

// TestTieredConcurrentPooling hammers one tiered table from many
// goroutines (the -race job turns this into the coherence check).
func TestTieredConcurrentPooling(t *testing.T) {
	cold := NewDenseRandom(rand.New(rand.NewSource(4)), 1024, 16, 0.1).Quantize(quant.Bits8)
	tt := NewTiered(cold, 256)
	want := make([]float32, 16)
	cold.AccumulateRow(want, 11)

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			acc := make([]float32, 16)
			bag := make([]int32, 12)
			for i := 0; i < 300; i++ {
				for j := range bag {
					bag[j] = int32(rng.Intn(64))
				}
				tt.AccumulateBag(acc, bag)
				if i%17 == 0 {
					tt.SetCapacity(128 + (i%3)*128)
				}
				if i%43 == 0 {
					tt.Invalidate()
				}
				// Single-row identity under concurrency.
				one := make([]float32, 16)
				tt.AccumulateRow(one, 11)
				for c := range one {
					if math.Float32bits(one[c]) != math.Float32bits(want[c]) {
						t.Errorf("concurrent read returned wrong bits at col %d", c)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
}
