package embedding

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"sync"
)

// PagedTable serves embedding rows from secondary storage instead of
// DRAM — the alternative the paper weighs against distributed inference:
// "On demand paging of the model from higher capacity storage is another
// solution, but this requires fast solid-state drives (SSD) to meet
// latency constraints" (Section I), and §X lists "paging-from-disk" as a
// design-space expansion. Rows are read on demand with ReadAt; wrap a
// PagedTable in a CachedTable to model the DRAM cache such a deployment
// would run in front of the SSD.
//
// The ablation benchmark (BenchmarkPagedVsResident) quantifies exactly
// the trade-off the paper calls out: per-lookup latency is storage-bound,
// so the viability of paging hinges on the device, not the software.
type PagedTable struct {
	f    *os.File
	rows int
	dim  int
	// off is the byte offset of row 0 within the file.
	off int64

	mu      sync.Mutex
	scratch []byte
	// reads counts storage accesses (for tests and capacity planning).
	reads int64
}

// pagedMagic guards against pointing a PagedTable at arbitrary files.
const pagedMagic = "DRMP"

// WritePagedTable serializes a dense table into the paged on-disk layout:
// magic, rows, dim, then row-major float32 data.
func WritePagedTable(w io.Writer, t *Dense) error {
	hdr := make([]byte, 4+4+4)
	copy(hdr, pagedMagic)
	binary.LittleEndian.PutUint32(hdr[4:], uint32(t.RowsN))
	binary.LittleEndian.PutUint32(hdr[8:], uint32(t.DimN))
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	buf := make([]byte, 4*t.DimN)
	for r := 0; r < t.RowsN; r++ {
		row := t.Row(r)
		for c, v := range row {
			binary.LittleEndian.PutUint32(buf[4*c:], math.Float32bits(v))
		}
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

// OpenPagedTable opens a file written by WritePagedTable. The caller owns
// closing the returned table.
func OpenPagedTable(path string) (*PagedTable, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	hdr := make([]byte, 12)
	if _, err := io.ReadFull(f, hdr); err != nil {
		f.Close()
		return nil, fmt.Errorf("embedding: paged table header: %w", err)
	}
	if string(hdr[:4]) != pagedMagic {
		f.Close()
		return nil, fmt.Errorf("embedding: %s is not a paged table", path)
	}
	rows := int(binary.LittleEndian.Uint32(hdr[4:]))
	dim := int(binary.LittleEndian.Uint32(hdr[8:]))
	if rows <= 0 || dim <= 0 {
		f.Close()
		return nil, fmt.Errorf("embedding: paged table has invalid shape %dx%d", rows, dim)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if want := int64(12) + int64(rows)*int64(dim)*4; st.Size() < want {
		f.Close()
		return nil, fmt.Errorf("embedding: paged table truncated (%d bytes, want %d)", st.Size(), want)
	}
	return &PagedTable{f: f, rows: rows, dim: dim, off: 12, scratch: make([]byte, 4*dim)}, nil
}

// Close releases the backing file.
func (t *PagedTable) Close() error { return t.f.Close() }

// NumRows implements Table.
func (t *PagedTable) NumRows() int { return t.rows }

// Dim implements Table.
func (t *PagedTable) Dim() int { return t.dim }

// Bytes implements Table: resident bytes are just the scratch buffer —
// the point of paging is that the table itself does not occupy DRAM.
func (t *PagedTable) Bytes() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return int64(len(t.scratch))
}

// StorageBytes reports the on-disk footprint.
func (t *PagedTable) StorageBytes() int64 { return int64(t.rows) * int64(t.dim) * 4 }

// Reads returns the number of storage accesses performed.
func (t *PagedTable) Reads() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.reads
}

// AccumulateRow implements Table by reading the row from storage.
func (t *PagedTable) AccumulateRow(acc []float32, idx int) {
	if idx < 0 || idx >= t.rows {
		panic(fmt.Sprintf("embedding: paged row %d out of range [0,%d)", idx, t.rows))
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.reads++
	off := t.off + int64(idx)*int64(t.dim)*4
	if _, err := t.f.ReadAt(t.scratch, off); err != nil {
		// A storage fault mid-inference has no recovery at this layer;
		// the process-level answer (as in serving) is failing the request
		// via the panic→error boundary of the operator runner.
		panic(fmt.Sprintf("embedding: paged read row %d: %v", idx, err))
	}
	for c := 0; c < t.dim; c++ {
		acc[c] += math.Float32frombits(binary.LittleEndian.Uint32(t.scratch[4*c:]))
	}
}
