package embedding

import (
	"container/list"
	"sync"
)

// CachedTable wraps a Table with an LRU cache of decoded rows. The paper
// points at exactly this direction for follow-on work (Section IX:
// "Because embedding table behavior is the dominating design factor in
// large models, explorations [of] table placement and frequency-based
// caching are also valuable directions", citing Bandana). Sparse-feature
// accesses are heavily skewed in production, so a small cache of hot rows
// absorbs most lookups; for quantized backends it also amortizes
// dequantization.
//
// The cache is safe for concurrent readers of the underlying table but
// serializes its own bookkeeping; shard-level request parallelism remains
// (each request's lookups hit the mutex briefly). Capacity is in rows.
type CachedTable struct {
	backing Table
	cap     int

	mu    sync.Mutex
	rows  map[int]*list.Element
	order *list.List // front = most recent

	hits, misses int64
}

type cacheEntry struct {
	idx int
	row []float32
}

// NewCachedTable wraps backing with an LRU of capacity rows. A capacity
// of 0 or less disables caching (lookups pass through).
func NewCachedTable(backing Table, capacity int) *CachedTable {
	return &CachedTable{
		backing: backing,
		cap:     capacity,
		rows:    make(map[int]*list.Element),
		order:   list.New(),
	}
}

// NumRows implements Table.
func (c *CachedTable) NumRows() int { return c.backing.NumRows() }

// Dim implements Table.
func (c *CachedTable) Dim() int { return c.backing.Dim() }

// Bytes implements Table: backing storage plus cached rows.
func (c *CachedTable) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.backing.Bytes() + int64(len(c.rows))*int64(c.Dim())*4
}

// AccumulateRow implements Table, serving hot rows from the cache.
func (c *CachedTable) AccumulateRow(acc []float32, idx int) {
	if c.cap <= 0 {
		c.backing.AccumulateRow(acc, idx)
		return
	}
	c.mu.Lock()
	if el, ok := c.rows[idx]; ok {
		c.order.MoveToFront(el)
		row := el.Value.(*cacheEntry).row
		c.hits++
		c.mu.Unlock()
		for i, v := range row {
			acc[i] += v
		}
		return
	}
	c.misses++
	c.mu.Unlock()

	// Decode outside the lock: misses dominate only on cold/unskewed
	// workloads, and concurrent misses of the same row are benign (last
	// insert wins).
	row := make([]float32, c.Dim())
	c.backing.AccumulateRow(row, idx)
	for i, v := range row {
		acc[i] += v
	}

	c.mu.Lock()
	if _, dup := c.rows[idx]; !dup {
		el := c.order.PushFront(&cacheEntry{idx: idx, row: row})
		c.rows[idx] = el
		if c.order.Len() > c.cap {
			old := c.order.Back()
			c.order.Remove(old)
			delete(c.rows, old.Value.(*cacheEntry).idx)
		}
	}
	c.mu.Unlock()
}

// Stats returns cumulative hit/miss counts.
func (c *CachedTable) Stats() (hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// HitRate returns the cumulative cache hit rate (0 when unused).
func (c *CachedTable) HitRate() float64 {
	h, m := c.Stats()
	if h+m == 0 {
		return 0
	}
	return float64(h) / float64(h+m)
}

// Len returns the number of cached rows.
func (c *CachedTable) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.rows)
}
