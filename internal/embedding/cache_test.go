package embedding

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/quant"
)

func TestCachedTableMatchesBacking(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	backing := NewDenseRandom(rng, 128, 8, 1)
	cached := NewCachedTable(backing, 16)
	for i := 0; i < 500; i++ {
		idx := rng.Intn(128)
		a := make([]float32, 8)
		b := make([]float32, 8)
		backing.AccumulateRow(a, idx)
		cached.AccumulateRow(b, idx)
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("lookup %d row %d differs", i, idx)
			}
		}
	}
	if cached.Len() > 16 {
		t.Errorf("cache grew past capacity: %d", cached.Len())
	}
}

func TestCachedTableHitRateOnSkewedAccess(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	backing := NewDenseRandom(rng, 10000, 8, 1)
	cached := NewCachedTable(backing, 100)
	acc := make([]float32, 8)
	// Zipf-ish: 90% of lookups hit 50 hot rows.
	for i := 0; i < 5000; i++ {
		var idx int
		if rng.Float64() < 0.9 {
			idx = rng.Intn(50)
		} else {
			idx = rng.Intn(10000)
		}
		cached.AccumulateRow(acc, idx)
	}
	if hr := cached.HitRate(); hr < 0.8 {
		t.Errorf("hit rate %.3f on 90/50 skew, want ≥0.8", hr)
	}
	hits, misses := cached.Stats()
	if hits+misses != 5000 {
		t.Errorf("stats don't sum: %d + %d", hits, misses)
	}
}

func TestCachedTableLRUEviction(t *testing.T) {
	backing := NewDense(8, 2)
	for r := 0; r < 8; r++ {
		backing.Row(r)[0] = float32(r)
	}
	cached := NewCachedTable(backing, 2)
	acc := make([]float32, 2)
	cached.AccumulateRow(acc, 0) // cache: [0]
	cached.AccumulateRow(acc, 1) // cache: [1 0]
	cached.AccumulateRow(acc, 0) // cache: [0 1] (0 refreshed)
	cached.AccumulateRow(acc, 2) // evicts 1 → [2 0]
	h0, _ := cached.Stats()
	cached.AccumulateRow(acc, 0)
	h1, _ := cached.Stats()
	if h1 != h0+1 {
		t.Error("row 0 should still be cached after LRU refresh")
	}
	cached.AccumulateRow(acc, 1)
	_, m := cached.Stats()
	if m != 4 { // 0, 1, 2 cold + 1 re-fetch after eviction
		t.Errorf("misses = %d, want 4", m)
	}
}

func TestCachedTableZeroCapacityPassThrough(t *testing.T) {
	backing := NewDense(4, 2)
	backing.Row(3)[1] = 7
	cached := NewCachedTable(backing, 0)
	acc := make([]float32, 2)
	cached.AccumulateRow(acc, 3)
	if acc[1] != 7 {
		t.Error("pass-through broken")
	}
	if h, m := cached.Stats(); h != 0 || m != 0 {
		t.Error("disabled cache should not count")
	}
}

func TestCachedQuantizedTable(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	dense := NewDenseRandom(rng, 64, 16, 1)
	qt := dense.Quantize(quant.Bits4)
	cached := NewCachedTable(qt, 32)
	a := make([]float32, 16)
	b := make([]float32, 16)
	for i := 0; i < 100; i++ {
		idx := rng.Intn(64)
		for j := range a {
			a[j], b[j] = 0, 0
		}
		qt.AccumulateRow(a, idx)
		cached.AccumulateRow(b, idx)
		for j := range a {
			if math.Abs(float64(a[j]-b[j])) > 1e-6 {
				t.Fatalf("cached quantized lookup differs at %d", j)
			}
		}
	}
	if cached.HitRate() == 0 {
		t.Error("repeated lookups should hit")
	}
}

func TestCachedTableConcurrent(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	backing := NewDenseRandom(rng, 256, 4, 1)
	cached := NewCachedTable(backing, 64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			acc := make([]float32, 4)
			for i := 0; i < 2000; i++ {
				cached.AccumulateRow(acc, r.Intn(256))
			}
		}(int64(g))
	}
	wg.Wait()
	if cached.Len() > 64 {
		t.Errorf("capacity exceeded under concurrency: %d", cached.Len())
	}
}

// BenchmarkCachedVsDirectLookup is the ablation for the frequency-cache
// extension: hot-row lookups through the cache vs straight dequantized
// lookups on a 4-bit table.
func BenchmarkCachedVsDirectLookup(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	dense := NewDenseRandom(rng, 100000, 16, 1)
	qt := dense.Quantize(quant.Bits4)
	hot := make([]int, 256)
	for i := range hot {
		hot[i] = rng.Intn(100000)
	}
	b.Run("direct-4bit", func(b *testing.B) {
		acc := make([]float32, 16)
		for i := 0; i < b.N; i++ {
			qt.AccumulateRow(acc, hot[i%len(hot)])
		}
	})
	b.Run("cached-4bit", func(b *testing.B) {
		cached := NewCachedTable(qt, 512)
		acc := make([]float32, 16)
		for i := 0; i < b.N; i++ {
			cached.AccumulateRow(acc, hot[i%len(hot)])
		}
	})
}
