// Package embedding implements the sparse-parameter substrate of the
// recommendation models: embedding tables, the SparseLengthsSum (SLS)
// family of lookup-and-pool operators, quantized table backends, and
// row-sharded table views used when a single table is partitioned across
// multiple sparse shards (paper Section III-A1: "the sparse feature IDs
// are split and sent to the appropriate RPC operator based on a hashing
// function ... implemented by partitioning embedding table rows with a
// simple modulus operator across shards").
package embedding

import (
	"fmt"
	"math/rand"

	"repro/internal/quant"
)

// Table is the interface shared by all embedding-table backends: dense
// fp32, quantized, and row-sharded views. A table is a Rows×Dim matrix of
// learned sparse parameters addressed by row index.
type Table interface {
	// NumRows returns the number of hash buckets.
	NumRows() int
	// Dim returns the embedding vector dimension.
	Dim() int
	// AccumulateRow adds row idx into acc (len(acc) == Dim()).
	AccumulateRow(acc []float32, idx int)
	// Bytes returns the storage footprint in bytes.
	Bytes() int64
}

// Dense is an uncompressed float32 embedding table.
type Dense struct {
	RowsN, DimN int
	Data        []float32
}

// NewDense allocates a zeroed rows×dim table.
func NewDense(rows, dim int) *Dense {
	if rows <= 0 || dim <= 0 {
		panic(fmt.Sprintf("embedding: invalid table shape %dx%d", rows, dim))
	}
	return &Dense{RowsN: rows, DimN: dim, Data: make([]float32, rows*dim)}
}

// NewDenseRandom allocates a rows×dim table with values drawn uniformly
// from [-scale, scale) using rng. Deterministic given the rng seed.
func NewDenseRandom(rng *rand.Rand, rows, dim int, scale float32) *Dense {
	t := NewDense(rows, dim)
	for i := range t.Data {
		t.Data[i] = (rng.Float32()*2 - 1) * scale
	}
	return t
}

// NumRows implements Table.
func (t *Dense) NumRows() int { return t.RowsN }

// Dim implements Table.
func (t *Dense) Dim() int { return t.DimN }

// Row returns a view of row idx.
func (t *Dense) Row(idx int) []float32 {
	return t.Data[idx*t.DimN : (idx+1)*t.DimN]
}

// AccumulateRow implements Table.
func (t *Dense) AccumulateRow(acc []float32, idx int) {
	row := t.Row(idx)
	_ = acc[len(row)-1]
	for i, v := range row {
		acc[i] += v
	}
}

// Bytes implements Table.
func (t *Dense) Bytes() int64 { return int64(len(t.Data)) * 4 }

// Quantize returns a quantized backend encoding this table at the given
// width, leaving the receiver unmodified.
func (t *Dense) Quantize(bits quant.Bits) *Quantized {
	return &Quantized{enc: quant.QuantizeRows(t.Data, t.RowsN, t.DimN, bits)}
}

// ToFP16 returns a half-precision backend encoding this table, leaving
// the receiver unmodified — the fp16 cold tier of the tiered store.
func (t *Dense) ToFP16() *FP16 {
	return &FP16{enc: quant.EncodeFP16Rows(t.Data, t.RowsN, t.DimN)}
}

// RowDecoder is implemented by backends that can materialize one decoded
// row directly (no accumulate). The tiered store's hot-row cache requires
// it: a cached row must hold the exact decoded values, so a cache hit and
// a cache miss contribute bitwise-identical terms to the pooling sum.
type RowDecoder interface {
	// DecodeRow writes row idx into dst (len(dst) == Dim()).
	DecodeRow(dst []float32, idx int)
}

// DecodeRow implements RowDecoder.
func (t *Dense) DecodeRow(dst []float32, idx int) { copy(dst, t.Row(idx)) }

// FP16 is an embedding table backed by half-precision storage. Lookups
// decode on the fly, fused into pooling.
type FP16 struct {
	enc *quant.FP16Rows
}

// NumRows implements Table.
func (t *FP16) NumRows() int { return t.enc.Rows }

// Dim implements Table.
func (t *FP16) Dim() int { return t.enc.Cols }

// AccumulateRow implements Table.
func (t *FP16) AccumulateRow(acc []float32, idx int) { t.enc.AccumulateRow(acc, idx) }

// DecodeRow implements RowDecoder.
func (t *FP16) DecodeRow(dst []float32, idx int) { t.enc.DequantizeRowInto(dst, idx) }

// Bytes implements Table.
func (t *FP16) Bytes() int64 { return t.enc.Bytes() }

// Encoding exposes the underlying fp16 storage (for serialization and
// migration streaming).
func (t *FP16) Encoding() *quant.FP16Rows { return t.enc }

// FP16FromEncoding wraps reconstructed fp16 storage as a table.
func FP16FromEncoding(enc *quant.FP16Rows) *FP16 { return &FP16{enc: enc} }

// Quantized is an embedding table backed by row-wise linear quantized
// storage. Lookups dequantize on the fly, fused into pooling.
type Quantized struct {
	enc *quant.RowQuantized
}

// NumRows implements Table.
func (t *Quantized) NumRows() int { return t.enc.Rows }

// Dim implements Table.
func (t *Quantized) Dim() int { return t.enc.Cols }

// AccumulateRow implements Table.
func (t *Quantized) AccumulateRow(acc []float32, idx int) {
	t.enc.AccumulateRow(acc, idx)
}

// AccumulateBag implements BagAccumulator: the whole bag pools through
// one quant call that resolves kernel dispatch (scalar vs word-wide
// decode) once instead of per row. Index order and per-element
// arithmetic match the per-row path exactly, so results are bitwise
// identical to SLS's generic loop.
func (t *Quantized) AccumulateBag(acc []float32, indices []int32) {
	rows := t.enc.Rows
	for _, idx := range indices {
		if idx < 0 || int(idx) >= rows {
			panic(fmt.Sprintf("embedding: SLS index %d out of range [0,%d)", idx, rows))
		}
	}
	t.enc.AccumulateBag(acc, indices)
}

// Bytes implements Table.
func (t *Quantized) Bytes() int64 { return t.enc.Bytes() }

// DecodeRow implements RowDecoder.
func (t *Quantized) DecodeRow(dst []float32, idx int) { t.enc.DequantizeRowInto(dst, idx) }

// Encoding exposes the underlying row-quantized encoding (for
// serialization).
func (t *Quantized) Encoding() *quant.RowQuantized { return t.enc }

// QuantizedFromEncoding reconstructs a quantized table from serialized
// components.
func QuantizedFromEncoding(rows, cols, bits int, scales, biases []uint16, packed []byte) (*Quantized, error) {
	enc, err := quant.NewFromParts(rows, cols, quant.Bits(bits), scales, biases, packed)
	if err != nil {
		return nil, err
	}
	return &Quantized{enc: enc}, nil
}
