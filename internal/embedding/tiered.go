package embedding

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// TieredTable is the serving-path tiered store for one table (or one
// row-partition): a bounded cache of decoded hot rows in front of a cold
// tier (fp32 Dense, fp16, or row-wise int8/int4 storage). The paper's
// scale-out is capacity-driven — tables are sharded because they do not
// fit one node — so shrinking resident bytes (quantized cold tier) and
// dodging repeated dequantization of skewed-hot rows (the cache) both
// attack the quantity that sets shard count.
//
// The cache is direct-mapped with all row storage inline in one flat
// backing array: a hit is an array index, an int compare, and the add.
// Anything heavier — a map lookup, a per-row lock, LRU bookkeeping, or a
// heap object per cached row whose GC mark cost surfaces as tail spikes —
// costs more than the dequantization the cache saves. Locking is
// per-*bag*, not per-row: a pooling pass takes one shared read lock for
// the whole bag, and its admissions take one exclusive lock, so lock
// traffic amortizes over the pooling factor.
//
// Admission is by measured per-row hit frequency: a miss records the row
// in a compact decaying sketch, and the row is admitted only once its
// estimated frequency reaches the admission threshold *and* at least
// ties the resident it would displace, so one-shot scans cannot flush
// the hot set — the failure mode of recency-only caches under the long
// uniform tail of embedding accesses.
//
// Correctness contract: AccumulateRow/AccumulateBag contribute bitwise-
// identical terms whether a row is served from the cache or decoded from
// the cold tier. Both paths add the row's *decoded* values (RowDecoder
// materializes them; the cache stores that exact copy), so enabling,
// resizing, or invalidating the cache can never change a pooled result —
// the property the migration identity guarantee leans on.
type TieredTable struct {
	cold    Table
	decoder RowDecoder

	// mu guards the slot generation's contents: shared for pooling reads,
	// exclusive for admissions and resizes.
	mu sync.RWMutex
	// slots is the live direct-mapped generation; nil while the cache is
	// disabled. Swapped wholesale on SetCapacity/Invalidate.
	slots *tierSlots

	// freq is a tiny saturating-counter sketch (TinyLFU-style): counters
	// indexed by a cheap hash of the row index, halved every aging window
	// of misses so stale popularity decays. Guarded by mu (exclusive).
	freq    []uint8
	touches int

	hits, misses, admits atomic.Int64
}

// tierSlots is one generation of the direct-mapped cache: slot i caches
// row idx[i] (-1 when empty) at rows[i*dim : (i+1)*dim]. ref[i] is the
// slot's reference bit: set by hits (atomically, under the shared lock),
// cleared when a challenger tries to take the slot — a resident that was
// hit since the last challenge survives it, so the cache's hot set is
// protected by *observed hits*, not by the miss-fed sketch alone (a
// popular resident stops missing, so its sketch count goes stale).
type tierSlots struct {
	mask   uint32
	dim    int
	idx    []int32
	ref    []atomic.Bool
	rows   []float32
	cached int // occupied slots
}

func newTierSlots(slotCount, dim int) *tierSlots {
	ts := &tierSlots{
		mask: uint32(slotCount - 1),
		dim:  dim,
		idx:  make([]int32, slotCount),
		ref:  make([]atomic.Bool, slotCount),
		rows: make([]float32, slotCount*dim),
	}
	for i := range ts.idx {
		ts.idx[i] = -1
	}
	return ts
}

// admitAfter is the sketch count a row needs before it may occupy a
// slot: seen at least this many times within the aging window. Together
// with maxAdmitPerBag and missSample it bounds admission churn — every
// admission decodes a row under the exclusive lock, so the long Zipf
// tail re-qualifying over and over would otherwise stall readers and
// show up exactly where the cache is supposed to help: the tail.
const admitAfter = 3

// maxAdmitPerBag caps how many rows one pooling pass may admit.
const maxAdmitPerBag = 4

// missSample caps how many of a bag's misses feed the admission pass
// (and the sketch). Sampling keeps the miss path allocation-free — the
// sample lives on the caller's stack — and TinyLFU-style sketches are
// estimates by construction, so sampled touches lose nothing the decay
// window wasn't already losing.
const missSample = 16

// NewTiered wraps cold with a hot-row cache of capacity rows. The cold
// backend must implement RowDecoder (Dense, FP16, and Quantized all do).
// A capacity of 0 disables caching until SetCapacity raises it.
func NewTiered(cold Table, capacity int) *TieredTable {
	dec, ok := cold.(RowDecoder)
	if !ok {
		panic(fmt.Sprintf("embedding: tiered cold tier %T cannot decode rows", cold))
	}
	t := &TieredTable{cold: cold, decoder: dec}
	t.SetCapacity(capacity)
	return t
}

// slotCountFor floors a row budget to a power of two (so residency never
// exceeds the apportioned budget), with 0 disabling the cache.
func slotCountFor(capacity int) int {
	if capacity < 1 {
		return 0
	}
	n := 1
	for n*2 <= capacity {
		n *= 2
	}
	return n
}

// SetCapacity resizes the cache to (the floor power of two of) capacity
// rows, rehashing surviving entries into the new generation. The shard's
// tier controller calls this when the measured load summary re-apportions
// the shard-wide cache byte budget; an unchanged slot count is a no-op,
// so small load drifts do not disturb a warm cache.
func (t *TieredTable) SetCapacity(capacity int) {
	want := slotCountFor(capacity)
	t.mu.Lock()
	defer t.mu.Unlock()
	old := t.slots
	if (old == nil && want == 0) || (old != nil && len(old.idx) == want) {
		return
	}
	// Size the sketch alongside: a few counters per slot, floor 256.
	w := 256
	for w < 4*want {
		w <<= 1
	}
	if len(t.freq) != w {
		t.freq = make([]uint8, w)
		t.touches = 0
	}
	if want == 0 {
		t.slots = nil
		return
	}
	fresh := newTierSlots(want, t.cold.Dim())
	if old != nil {
		// Keep the cache warm across a resize: rehash entries that still
		// fit (first occupant of a slot wins).
		for i, ix := range old.idx {
			if ix < 0 {
				continue
			}
			s := uint32(ix) & fresh.mask
			if fresh.idx[s] == -1 {
				fresh.idx[s] = ix
				copy(fresh.rows[int(s)*fresh.dim:(int(s)+1)*fresh.dim], old.rows[i*old.dim:(i+1)*old.dim])
				fresh.cached++
			}
		}
	}
	t.slots = fresh
}

// Capacity returns the cache's current slot count.
func (t *TieredTable) Capacity() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if t.slots != nil {
		return len(t.slots.idx)
	}
	return 0
}

// Invalidate drops every cached row (frequency history survives: the
// rows are still hot, the copies are just gone).
func (t *TieredTable) Invalidate() {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.slots != nil {
		t.slots = newTierSlots(len(t.slots.idx), t.slots.dim)
	}
}

// Cold exposes the cold-tier backend (migration streams its encoding).
func (t *TieredTable) Cold() Table { return t.cold }

// NumRows implements Table.
func (t *TieredTable) NumRows() int { return t.cold.NumRows() }

// Dim implements Table.
func (t *TieredTable) Dim() int { return t.cold.Dim() }

// CachedRows returns the number of live cached rows.
func (t *TieredTable) CachedRows() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if t.slots != nil {
		return t.slots.cached
	}
	return 0
}

// Bytes implements Table: cold storage plus the cache's allocated
// backing — the shard's true resident footprint (the backing is
// allocated eagerly, so it counts whether or not every slot is full).
func (t *TieredTable) Bytes() int64 {
	return t.cold.Bytes() + t.CacheBytes()
}

// CacheBytes returns the cache backing's allocated footprint.
func (t *TieredTable) CacheBytes() int64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if t.slots != nil {
		return int64(len(t.slots.rows)) * 4
	}
	return 0
}

// sketchSlot hashes a row index into the frequency sketch.
func (t *TieredTable) sketchSlot(idx int32) int {
	h := uint32(idx) * 2654435761 // Knuth multiplicative hash
	return int(h) & (len(t.freq) - 1)
}

// touchLocked records one miss and returns the row's estimated
// frequency; callers hold mu exclusively. Counters halve once the window
// has seen 8× the slot count of misses, so popularity tracks the recent
// workload.
func (t *TieredTable) touchLocked(idx int32, slotCount int) uint8 {
	slot := t.sketchSlot(idx)
	if t.freq[slot] < 255 {
		t.freq[slot]++
	}
	t.touches++
	if window := 8 * (slotCount + 1); t.touches >= window {
		for i := range t.freq {
			t.freq[i] >>= 1
		}
		t.touches = 0
	}
	return t.freq[slot]
}

// AccumulateRow implements Table, serving hot rows from the cache and
// decoding cold ones on demand. Hit or miss, the terms added to acc are
// the row's decoded values — bitwise identical either way.
func (t *TieredTable) AccumulateRow(acc []float32, idx int) {
	one := [1]int32{int32(idx)}
	t.AccumulateBag(acc, one[:])
}

// AccumulateBag pools one bag's rows into acc in strict index order —
// the amortized serving path: one shared lock for the bag's lookups, at
// most one exclusive lock for its admissions. Order never depends on the
// hit/miss mix, so two deployments with different cache states still sum
// identically.
func (t *TieredTable) AccumulateBag(acc []float32, indices []int32) {
	rows := t.cold.NumRows()
	// missBuf samples this bag's cold rows for the admission pass without
	// heap allocation; the all-hit steady state never touches it.
	var missBuf [missSample]int32
	missed := missBuf[:0]
	misses := 0

	hits := 0
	t.mu.RLock()
	ts := t.slots
	for _, ix := range indices {
		if ix < 0 || int(ix) >= rows {
			t.mu.RUnlock()
			panic(fmt.Sprintf("embedding: SLS index %d out of range [0,%d)", ix, rows))
		}
		if ts != nil {
			if s := uint32(ix) & ts.mask; ts.idx[s] == ix {
				hits++
				// Mark the resident referenced (store only when clear, so
				// the hot path stays read-mostly on the slot's cache line).
				if !ts.ref[s].Load() {
					ts.ref[s].Store(true)
				}
				for i, v := range ts.rows[int(s)*ts.dim : (int(s)+1)*ts.dim] {
					acc[i] += v
				}
				continue
			}
			misses++
			if len(missed) < missSample {
				missed = append(missed, ix)
			}
		}
		// Cold rows use the backend's fused accumulate — the same code the
		// uncached path runs. It rounds the decoded value to float32
		// before the add exactly as DecodeRow does, so hit and miss terms
		// stay bitwise identical (pinned by TestTieredHitMissBitIdentity).
		t.cold.AccumulateRow(acc, int(ix))
	}
	t.mu.RUnlock()
	if hits > 0 {
		t.hits.Add(int64(hits))
	}
	if ts == nil || misses == 0 {
		return
	}
	t.misses.Add(int64(misses))

	// Admission pass: one exclusive lock for the bag's misses. A row is
	// admitted once its sketch frequency reaches the threshold and at
	// least ties the resident it would displace (so two hot rows
	// colliding in the direct map cannot thrash each other on every
	// alternation). Admitted rows are decoded again into the slot's
	// backing — rare after warmup; the steady state pays only the sketch
	// updates.
	t.mu.Lock()
	if t.slots != ts {
		// Resized or invalidated underneath us; skip this bag's admissions.
		t.mu.Unlock()
		return
	}
	admitted := 0
	for _, ix := range missed {
		f := t.touchLocked(ix, len(ts.idx))
		if f < admitAfter || admitted >= maxAdmitPerBag {
			continue
		}
		s := uint32(ix) & ts.mask
		cur := ts.idx[s]
		if cur == ix {
			continue // lost a concurrent-miss race; the winner's copy serves
		}
		if cur >= 0 {
			if ts.ref[s].Load() {
				// The resident was hit since the last challenge: it keeps
				// the slot and loses its protection — a second-chance
				// policy on observed hits, which the miss-fed sketch
				// cannot see (popular residents stop missing).
				ts.ref[s].Store(false)
				continue
			}
			if t.freq[t.sketchSlot(cur)] >= f {
				// The unreferenced resident still at least ties on sketch
				// frequency: keep it. The tie goes to the resident
				// deliberately — two equally hot rows colliding in the
				// direct map would otherwise alternate on every miss, and
				// each alternation is an exclusive-lock decode.
				continue
			}
		}
		if cur == -1 {
			ts.cached++
		}
		ts.idx[s] = ix
		t.decoder.DecodeRow(ts.rows[int(s)*ts.dim:(int(s)+1)*ts.dim], int(ix))
		t.admits.Add(1)
		admitted++
	}
	t.mu.Unlock()
}

// TieredStats is a snapshot of one tiered table's cache behavior.
type TieredStats struct {
	Hits, Misses, Admits int64
	CachedRows, Capacity int
}

// Stats snapshots the counters.
func (t *TieredTable) Stats() TieredStats {
	return TieredStats{
		Hits: t.hits.Load(), Misses: t.misses.Load(), Admits: t.admits.Load(),
		CachedRows: t.CachedRows(), Capacity: t.Capacity(),
	}
}

// HitRate returns the cumulative cache hit rate (0 when unused).
func (s TieredStats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}
