package embedding

import (
	"math/rand"
	"testing"

	"repro/internal/quant"
)

// Pooling benchmarks for the tiered store: the cache must beat (or at
// worst match) the cold tier it fronts, per row-popularity profile.

func benchBags(rng *rand.Rand, rows, bags, pooling int, zipf bool) []Bag {
	var z *rand.Zipf
	if zipf {
		z = rand.NewZipf(rng, 1.2, 1, uint64(rows-1))
	}
	out := make([]Bag, bags)
	for b := range out {
		idx := make([]int32, pooling)
		for i := range idx {
			if z != nil {
				idx[i] = int32(z.Uint64())
			} else {
				idx[i] = int32(rng.Intn(rows))
			}
		}
		out[b].Indices = idx
	}
	return out
}

func benchPooling(b *testing.B, table Table, zipf bool) {
	b.Helper()
	rng := rand.New(rand.NewSource(7))
	bags := benchBags(rng, table.NumRows(), 64, 24, zipf)
	out := make([]float32, len(bags)*table.Dim())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SLS(out, table, bags)
	}
}

func BenchmarkPoolingDense(b *testing.B) {
	t := NewDenseRandom(rand.New(rand.NewSource(1)), 1<<16, 64, 0.1)
	benchPooling(b, t, true)
}

func BenchmarkPoolingInt8(b *testing.B) {
	t := NewDenseRandom(rand.New(rand.NewSource(1)), 1<<16, 64, 0.1).Quantize(quant.Bits8)
	benchPooling(b, t, true)
}

func BenchmarkPoolingFP16(b *testing.B) {
	t := NewDenseRandom(rand.New(rand.NewSource(1)), 1<<16, 64, 0.1).ToFP16()
	benchPooling(b, t, true)
}

func BenchmarkPoolingTieredInt8Zipf(b *testing.B) {
	cold := NewDenseRandom(rand.New(rand.NewSource(1)), 1<<16, 64, 0.1).Quantize(quant.Bits8)
	benchPooling(b, NewTiered(cold, 1<<13), true)
}

func BenchmarkPoolingTieredInt8Uniform(b *testing.B) {
	cold := NewDenseRandom(rand.New(rand.NewSource(1)), 1<<16, 64, 0.1).Quantize(quant.Bits8)
	benchPooling(b, NewTiered(cold, 1<<13), false)
}
