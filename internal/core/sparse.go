package core

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/embedding"
	"repro/internal/model"
	"repro/internal/nn"
	"repro/internal/sharding"
	"repro/internal/trace"
)

// tableKey addresses a whole table (part 0 of 1) or one row-partition.
type tableKey struct {
	id   int
	part int
}

// SparseShard serves pooled embedding lookups for the tables (and table
// partitions) a sharding plan assigns to it. It is stateless across
// requests — the property Section III-A1 requires so shards can be
// replicated and restarted freely — holding only immutable table storage.
type SparseShard struct {
	// ShardName labels spans ("sparse3").
	ShardName string
	rec       *trace.Recorder
	tables    map[tableKey]embedding.Table
	// OpComputeScale stretches sparse-op time to model slower platforms
	// (burned as real CPU); 0 or 1 means no scaling.
	OpComputeScale float64
}

// NewSparseShard returns an empty shard recording to rec.
func NewSparseShard(name string, rec *trace.Recorder) *SparseShard {
	return &SparseShard{ShardName: name, rec: rec, tables: make(map[tableKey]embedding.Table)}
}

// AddTable installs a whole table.
func (s *SparseShard) AddTable(id int, t embedding.Table) {
	s.tables[tableKey{id: id, part: 0}] = t
}

// AddPart installs one row-partition of a table.
func (s *SparseShard) AddPart(id, part int, t embedding.Table) {
	s.tables[tableKey{id: id, part: part}] = t
}

// NumTables reports how many tables/parts the shard holds.
func (s *SparseShard) NumTables() int { return len(s.tables) }

// Bytes reports the shard's embedding storage footprint.
func (s *SparseShard) Bytes() int64 {
	var n int64
	for _, t := range s.tables {
		n += t.Bytes()
	}
	return n
}

// Handle implements rpc.Handler: it decodes a SparseRequest, runs the
// pooling net under the shard's tracer, and encodes the pooled results.
func (s *SparseShard) Handle(ctx trace.Context, method string, body []byte) ([]byte, error) {
	if method != "sparse.run" {
		return nil, fmt.Errorf("core: %s: unknown method %q", s.ShardName, method)
	}
	// Deserialize (RPC Ser/De at the sparse shard).
	desStart := s.rec.Now()
	req, err := DecodeSparseRequest(body)
	s.rec.Record(trace.Span{
		TraceID: ctx.TraceID, CallID: ctx.CallID, Layer: trace.LayerSerDe,
		Net: "", Name: "sparse/decode", Start: desStart, Dur: s.rec.Now().Sub(desStart),
	})
	if err != nil {
		return nil, fmt.Errorf("core: %s: %w", s.ShardName, err)
	}

	// Build and run the pooling net: one fused SLS over the requested
	// entries, executed through the framework so Net Overhead and
	// operator spans are attributed exactly like the main shard's.
	ws := nn.NewWorkspace()
	sls := &nn.MultiSLS{OpName: "sls_" + s.ShardName}
	for i, e := range req.Entries {
		key := tableKey{id: int(e.TableID), part: int(e.PartIndex)}
		tab, ok := s.tables[key]
		if !ok {
			return nil, fmt.Errorf("core: %s does not hold table %d part %d", s.ShardName, e.TableID, e.PartIndex)
		}
		bagsName := fmt.Sprintf("bags_%d", i)
		ws.SetBags(bagsName, e.Bags)
		sls.Entries = append(sls.Entries, nn.SLSEntry{
			Table:     tab,
			InputBags: bagsName,
			Output:    fmt.Sprintf("pooled_%d", i),
		})
	}
	obs := &trace.NetObserver{R: s.rec, Ctx: ctx}
	net := &nn.Net{NetName: req.Net, Ops: []nn.Op{sls}}
	opStart := time.Now()
	if err := net.Run(ws, obs); err != nil {
		return nil, fmt.Errorf("core: %s: %w", s.ShardName, err)
	}
	if s.OpComputeScale > 1 {
		burnFor(time.Duration(float64(time.Since(opStart)) * (s.OpComputeScale - 1)))
	}

	// Serialize (RPC Ser/De at the sparse shard).
	encStart := s.rec.Now()
	resp := &SparseResponse{}
	for i, e := range req.Entries {
		m, err := ws.Blob(fmt.Sprintf("pooled_%d", i))
		if err != nil {
			return nil, err
		}
		resp.Entries = append(resp.Entries, PooledEntry{
			TableID:   e.TableID,
			PartIndex: e.PartIndex,
			Rows:      int32(m.Rows),
			Cols:      int32(m.Cols),
			Data:      m.Data,
		})
	}
	out := EncodeSparseResponse(resp)
	s.rec.Record(trace.Span{
		TraceID: ctx.TraceID, CallID: ctx.CallID, Layer: trace.LayerSerDe,
		Name: "sparse/encode", Start: encStart, Dur: s.rec.Now().Sub(encStart),
	})
	return out, nil
}

// MaterializeShards builds the sparse shards' table storage from a model
// and a distributed plan. Row-partitioned tables are partitioned once and
// the parts handed to their shards. Only fp32 Dense tables can be
// partitioned (quantized models are served whole-table, as in the paper's
// compression experiment which is singular-only).
func MaterializeShards(m *model.Model, plan *sharding.Plan, recs []*trace.Recorder) ([]*SparseShard, error) {
	if !plan.IsDistributed() {
		return nil, fmt.Errorf("core: cannot materialize shards for a singular plan")
	}
	if len(recs) != plan.NumShards {
		return nil, fmt.Errorf("core: %d recorders for %d shards", len(recs), plan.NumShards)
	}
	shards := make([]*SparseShard, plan.NumShards)
	for i := range shards {
		shards[i] = NewSparseShard(ServiceName(i+1), recs[i])
	}
	// Partition each split table exactly once.
	var partsMu sync.Mutex
	parts := make(map[int][]*embedding.Part)
	partsOf := func(id, numParts int) ([]*embedding.Part, error) {
		partsMu.Lock()
		defer partsMu.Unlock()
		if p, ok := parts[id]; ok {
			if p[0].NumParts != numParts {
				return nil, fmt.Errorf("core: table %d partitioned twice with different counts", id)
			}
			return p, nil
		}
		dense, ok := m.Tables[id].(*embedding.Dense)
		if !ok {
			return nil, fmt.Errorf("core: table %d is not fp32 dense; cannot row-partition", id)
		}
		p := embedding.PartitionRows(dense, numParts)
		parts[id] = p
		return p, nil
	}
	for i := range plan.Shards {
		a := &plan.Shards[i]
		sh := shards[a.Shard-1]
		for _, id := range a.Tables {
			sh.AddTable(id, m.Tables[id])
		}
		for _, pr := range a.Parts {
			p, err := partsOf(pr.TableID, pr.NumParts)
			if err != nil {
				return nil, err
			}
			sh.AddPart(pr.TableID, pr.PartIndex, p[pr.PartIndex].Local)
		}
	}
	return shards, nil
}

// HandleRank is the shared wire handling for the "rank" method: decode
// and encode with the serde spans the paper attributes to the main
// shard, around any scoring function. Both the direct MainService and
// the serving frontend's Service route through it, so fronted and
// unfronted deployments record identical serde attribution.
func HandleRank(rec *trace.Recorder, ctx trace.Context, method string, body []byte,
	run func(trace.Context, *RankingRequest) ([]float32, error)) ([]byte, error) {
	if method != "rank" {
		return nil, fmt.Errorf("core: main shard: unknown method %q", method)
	}
	desStart := rec.Now()
	req, err := DecodeRankingRequest(body)
	rec.Record(trace.Span{
		TraceID: ctx.TraceID, Layer: trace.LayerSerDe,
		Name: "rank/decode", Start: desStart, Dur: rec.Now().Sub(desStart),
	})
	if err != nil {
		return nil, err
	}
	scores, err := run(ctx, req)
	if err != nil {
		return nil, err
	}
	encStart := rec.Now()
	out := EncodeRankingResponse(&RankingResponse{Scores: scores})
	rec.Record(trace.Span{
		TraceID: ctx.TraceID, Layer: trace.LayerSerDe,
		Name: "rank/encode", Start: encStart, Dur: rec.Now().Sub(encStart),
	})
	return out, nil
}

// MainService adapts an Engine to rpc.Handler for the "rank" method,
// recording the request/response serde spans the paper attributes to the
// main shard.
type MainService struct {
	Engine *Engine
	Rec    *trace.Recorder
}

// Handle implements rpc.Handler.
func (s *MainService) Handle(ctx trace.Context, method string, body []byte) ([]byte, error) {
	return HandleRank(s.Rec, ctx, method, body, s.Engine.Execute)
}
