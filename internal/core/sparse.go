package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/embedding"
	"repro/internal/model"
	"repro/internal/nn"
	"repro/internal/obs"
	"repro/internal/rpc"
	"repro/internal/sharding"
	"repro/internal/trace"
)

// tableKey addresses a whole table (part 0 of 1) or one row-partition.
type tableKey struct {
	id   int
	part int
}

func (k tableKey) loadKey() sharding.TableLoadKey {
	return sharding.TableLoadKey{TableID: k.id, PartIndex: k.part}
}

// forwardTarget routes lookups for a migrated-away table to the shard
// that now holds it.
type forwardTarget struct {
	service string
	caller  rpc.Caller
}

// SparseShard serves pooled embedding lookups for the tables (and table
// partitions) a sharding plan assigns to it. Table storage is immutable
// once installed — the property Section III-A1 requires so shards can be
// replicated and restarted freely — but the *set* of tables a shard
// holds changes under online resharding: the migration protocol streams
// row ranges into a staging area, commits them at a new forwarding
// epoch, and the source either double-reads its retained copy or
// forwards stragglers, so lookups in flight across a cutover are never
// wrong.
type SparseShard struct {
	// ShardName labels spans ("sparse3").
	ShardName string
	rec       *trace.Recorder
	// OpComputeScale stretches sparse-op time to model slower platforms
	// (burned as real CPU); 0 or 1 means no scaling.
	OpComputeScale float64
	// DialForward overrides how the shard connects to a forward
	// destination (tests inject in-process callers); nil uses rpc.Dial.
	DialForward func(addr string) (rpc.Caller, error)

	mu       sync.RWMutex
	tables   map[tableKey]embedding.Table
	staging  map[tableKey]*stagedTable
	forwards map[tableKey]*forwardTarget
	// updates holds per-version freshness staging (sparse.update.*):
	// cloned cold tiers with delta rows overlaid, committed as a set.
	updates map[uint64]map[tableKey]*stagedTable
	// tier, when non-nil, enables the tiered store: tables install behind
	// a hot-row cache over a (possibly quantized) cold tier. Guarded by mu.
	tier *TierConfig
	// fwdClients caches dialed forward callers per address so N moved
	// tables to one destination share one connection pool.
	fwdClients map[string]rpc.Caller

	epoch atomic.Uint64
	// modelVersion is the highest committed update version — the
	// freshness gauge exported as "<shard>.model_version".
	modelVersion atomic.Uint64

	// met holds the shard's metric handles (nil no-ops until SetObs).
	met shardMetrics

	loadMu sync.Mutex
	load   *sharding.LoadSummary
	// lastLoad retains the most recent collected (and reset) window so
	// the tier controller keeps apportioning the cache budget from a full
	// window right after a rebalance pass wipes the live accumulator.
	lastLoad *sharding.LoadSummary
}

// NewSparseShard returns an empty shard recording to rec.
func NewSparseShard(name string, rec *trace.Recorder) *SparseShard {
	return &SparseShard{
		ShardName:  name,
		rec:        rec,
		tables:     make(map[tableKey]embedding.Table),
		staging:    make(map[tableKey]*stagedTable),
		forwards:   make(map[tableKey]*forwardTarget),
		updates:    make(map[uint64]map[tableKey]*stagedTable),
		fwdClients: make(map[string]rpc.Caller),
		load:       sharding.NewLoadSummary(),
	}
}

// shardMetrics is a sparse shard's live-telemetry handle set, under the
// "<shard>." namespace. All handles are nil (free no-ops) before SetObs.
type shardMetrics struct {
	runCalls *obs.Counter   // sparse.run requests served
	runNs    *obs.Histogram // full handleRun duration (decode → encode)
	opNs     *obs.Histogram // local pooling-net execution time
	forwards *obs.Counter   // forward calls issued to destination shards

	migrateBegins  *obs.Counter
	migrateChunks  *obs.Counter
	migrateBytes   *obs.Counter // streamed chunk payload bytes received
	migrateCommits *obs.Counter
	snapshotReads  *obs.Counter // migrate/snapshot row-range reads served

	updateBegins  *obs.Counter
	updateRows    *obs.Counter
	updateBytes   *obs.Counter // delta row payload bytes received
	updateCommits *obs.Counter
}

// SetObs attaches a metrics registry: counters and histograms under the
// shard's name ("sparse1.sparse.run_ns", "sparse1.migrate.chunks", ...)
// plus a probe group exporting the tiered store's state at snapshot
// time. Call before serving begins.
func (s *SparseShard) SetObs(reg *obs.Registry) {
	p := s.ShardName + "."
	s.met = shardMetrics{
		runCalls:       reg.Counter(p + "sparse.calls"),
		runNs:          reg.Histogram(p + "sparse.run_ns"),
		opNs:           reg.Histogram(p + "sparse.op_ns"),
		forwards:       reg.Counter(p + "sparse.forwards"),
		migrateBegins:  reg.Counter(p + "migrate.begins"),
		migrateChunks:  reg.Counter(p + "migrate.chunks"),
		migrateBytes:   reg.Counter(p + "migrate.bytes"),
		migrateCommits: reg.Counter(p + "migrate.commits"),
		snapshotReads:  reg.Counter(p + "snapshot.reads"),
		updateBegins:   reg.Counter(p + "update.begins"),
		updateRows:     reg.Counter(p + "update.rows"),
		updateBytes:    reg.Counter(p + "update.bytes"),
		updateCommits:  reg.Counter(p + "update.commits"),
	}
	reg.RegisterProbeGroup(func(emit func(string, int64)) {
		ts := s.TierSnapshot()
		emit(p+"tier.tables", int64(ts.Tables))
		emit(p+"tier.cold_bytes", ts.ColdBytes)
		emit(p+"tier.cache_bytes", ts.CacheBytes)
		emit(p+"tier.cache_cap_bytes", ts.CacheCapBytes)
		emit(p+"tier.hits", ts.Hits)
		emit(p+"tier.misses", ts.Misses)
		emit(p+"tier.admits", ts.Admits)
		emit(p+"epoch", int64(s.Epoch()))
		emit(p+"model_version", int64(s.ModelVersion()))
	})
}

// AddTable installs a whole table.
func (s *SparseShard) AddTable(id int, t embedding.Table) {
	s.InstallTable(id, 0, t)
}

// AddPart installs one row-partition of a table.
func (s *SparseShard) AddPart(id, part int, t embedding.Table) {
	s.InstallTable(id, part, t)
}

// InstallTable activates table storage under (id, part), clears any
// forward for the key (this shard is authoritative again), and bumps the
// forwarding epoch. Under a tier config the table is wrapped on the way
// in (cold-tier encoding plus a fresh, empty hot-row cache) and the
// shard's cache budget is re-apportioned.
func (s *SparseShard) InstallTable(id, part int, t embedding.Table) {
	s.mu.Lock()
	key := tableKey{id: id, part: part}
	s.tables[key] = s.tierWrap(id, t)
	delete(s.forwards, key)
	delete(s.staging, key)
	s.mu.Unlock()
	s.epoch.Add(1)
	s.retier()
}

// BeginForward routes future lookups for (id, part) to caller (serving
// the named destination shard). When release is set the local copy is
// dropped immediately; otherwise the shard keeps double-reading its
// retained copy — byte-identical to the destination's, since storage is
// immutable — until ReleaseTable.
func (s *SparseShard) BeginForward(id, part int, service string, caller rpc.Caller, release bool) {
	s.mu.Lock()
	key := tableKey{id: id, part: part}
	s.forwards[key] = &forwardTarget{service: service, caller: caller}
	if release {
		delete(s.tables, key)
	}
	s.mu.Unlock()
	s.epoch.Add(1)
	if release {
		// The released copy's cache died with it; what remains of the
		// budget redistributes over the tables still held.
		s.retier()
	}
}

// ReleaseTable drops the local copy of (id, part), leaving any forward
// in place — the end of a double-read grace window.
func (s *SparseShard) ReleaseTable(id, part int) {
	s.mu.Lock()
	delete(s.tables, tableKey{id: id, part: part})
	s.mu.Unlock()
	s.epoch.Add(1)
	s.retier()
}

// Epoch returns the shard's forwarding epoch: it advances on every
// install, forward, and release, so two reads bracketing a lookup prove
// no cutover interleaved.
func (s *SparseShard) Epoch() uint64 { return s.epoch.Load() }

// NumTables reports how many tables/parts the shard holds.
func (s *SparseShard) NumTables() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.tables)
}

// Bytes reports the shard's embedding storage footprint.
func (s *SparseShard) Bytes() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var n int64
	for _, t := range s.tables {
		n += t.Bytes()
	}
	return n
}

// LoadSnapshot returns a copy of the shard's accumulated load summary;
// reset additionally clears the live accumulator.
func (s *SparseShard) LoadSnapshot(reset bool) *sharding.LoadSummary {
	s.loadMu.Lock()
	defer s.loadMu.Unlock()
	out := s.load.Clone()
	if reset {
		if len(out.Tables) > 0 {
			s.lastLoad = out
		}
		s.load = sharding.NewLoadSummary()
	}
	return out
}

// Close releases any forward-client connections the shard dialed.
func (s *SparseShard) Close() {
	s.mu.Lock()
	clients := s.fwdClients
	s.fwdClients = make(map[string]rpc.Caller)
	s.mu.Unlock()
	for _, c := range clients {
		c.Close()
	}
}

// Handle implements rpc.Handler: the serving path ("sparse.run") plus
// the online-resharding control plane (load collection and the live
// migration protocol).
func (s *SparseShard) Handle(ctx trace.Context, method string, body []byte) ([]byte, error) {
	switch method {
	case MethodSparseRun:
		return s.handleRun(ctx, body)
	case MethodSparseLoad:
		return s.handleLoad(body)
	case MethodMigrateBegin:
		return s.handleMigrateBegin(ctx, body)
	case MethodMigrateRead:
		return s.handleMigrateRead(ctx, body)
	case MethodMigrateChunk:
		return s.handleMigrateChunk(ctx, body)
	case MethodMigrateCommit:
		return s.handleMigrateCommit(ctx, body)
	case MethodMigrateAbort:
		return s.handleMigrateAbort(body)
	case MethodMigrateForward:
		return s.handleMigrateForward(body)
	case MethodUpdateBegin:
		return s.handleUpdateBegin(ctx, body)
	case MethodUpdateRows:
		return s.handleUpdateRows(ctx, body)
	case MethodUpdateCommit:
		return s.handleUpdateCommit(ctx, body)
	case MethodUpdateAbort:
		return s.handleUpdateAbort(body)
	case MethodSnapshotList:
		return s.handleSnapshotList(body)
	case MethodSnapshotRead:
		// Snapshot reads are migration reads over the whole table set:
		// same codec, same encoding-aware row streaming.
		return s.handleMigrateRead(ctx, body)
	}
	return nil, fmt.Errorf("core: %s: unknown method %q", s.ShardName, method)
}

// runEntry is one sparse-request entry resolved against the shard's
// current table set: served locally, or forwarded to the shard that now
// holds the table.
type runEntry struct {
	idx     int // position in the request (response order)
	entry   SparseEntry
	table   embedding.Table // non-nil → serve locally
	forward *forwardTarget  // used when table is nil
}

func (s *SparseShard) handleRun(ctx trace.Context, body []byte) ([]byte, error) {
	s.met.runCalls.Inc()
	runStart := time.Now() //lint:allow determinism stage latency histogram; never reaches response bytes
	defer func() { s.met.runNs.Observe(int64(time.Since(runStart))) }()

	// Deserialize (RPC Ser/De at the sparse shard).
	desStart := s.rec.Now()
	req, err := DecodeSparseRequest(body)
	s.rec.Record(trace.Span{
		TraceID: ctx.TraceID, CallID: ctx.CallID, Layer: trace.LayerSerDe,
		Net: "", Name: "sparse/decode", Start: desStart, Dur: s.rec.Now().Sub(desStart),
	})
	if err != nil {
		return nil, fmt.Errorf("core: %s: %w", s.ShardName, err)
	}

	// Resolve every entry against one consistent snapshot of the table
	// set: a cutover landing mid-request flips routing for the *next*
	// request, never within one.
	local := make([]runEntry, 0, len(req.Entries))
	var forwarded []runEntry
	s.mu.RLock()
	for i, e := range req.Entries {
		key := tableKey{id: int(e.TableID), part: int(e.PartIndex)}
		if tab, ok := s.tables[key]; ok {
			local = append(local, runEntry{idx: i, entry: e, table: tab})
			continue
		}
		if fwd, ok := s.forwards[key]; ok {
			forwarded = append(forwarded, runEntry{idx: i, entry: e, forward: fwd})
			continue
		}
		s.mu.RUnlock()
		return nil, fmt.Errorf("core: %s does not hold table %d part %d", s.ShardName, e.TableID, e.PartIndex)
	}
	s.mu.RUnlock()

	results := make([]PooledEntry, len(req.Entries))

	// Issue forwarded entries first so the destination pools while this
	// shard runs its local net.
	fwdCall := s.issueForwards(ctx, req.Net, forwarded)

	if len(local) > 0 {
		// Build and run the pooling net: one fused SLS over the locally
		// held entries, executed through the framework so Net Overhead and
		// operator spans are attributed exactly like the main shard's.
		ws := nn.NewWorkspace()
		sls := &nn.MultiSLS{OpName: "sls_" + s.ShardName}
		for _, le := range local {
			bagsName := fmt.Sprintf("bags_%d", le.idx)
			ws.SetBags(bagsName, le.entry.Bags)
			sls.Entries = append(sls.Entries, nn.SLSEntry{
				Table:     le.table,
				InputBags: bagsName,
				Output:    fmt.Sprintf("pooled_%d", le.idx),
			})
		}
		netObs := &trace.NetObserver{R: s.rec, Ctx: ctx}
		net := &nn.Net{NetName: req.Net, Ops: []nn.Op{sls}}
		opStart := time.Now() //lint:allow determinism op wall time feeds compute-scale burn and load stats, not results
		if err := net.Run(ws, netObs); err != nil {
			return nil, fmt.Errorf("core: %s: %w", s.ShardName, err)
		}
		if s.OpComputeScale > 1 {
			burnFor(time.Duration(float64(time.Since(opStart)) * (s.OpComputeScale - 1))) //lint:allow determinism scaled burn models a slower platform; results unchanged
		}
		opDur := time.Since(opStart) //lint:allow determinism measured latency goes to histograms and load accounting only
		s.met.opNs.Observe(int64(opDur))
		s.accountLoad(local, opDur)

		for _, le := range local {
			m, err := ws.Blob(fmt.Sprintf("pooled_%d", le.idx))
			if err != nil {
				return nil, err
			}
			results[le.idx] = PooledEntry{
				TableID:   le.entry.TableID,
				PartIndex: le.entry.PartIndex,
				Rows:      int32(m.Rows),
				Cols:      int32(m.Cols),
				Data:      m.Data,
			}
		}
	}

	if fwdCall != nil {
		if err := fwdCall(results); err != nil {
			return nil, err
		}
	}

	// Serialize (RPC Ser/De at the sparse shard).
	encStart := s.rec.Now()
	out := EncodeSparseResponse(&SparseResponse{Entries: results})
	s.rec.Record(trace.Span{
		TraceID: ctx.TraceID, CallID: ctx.CallID, Layer: trace.LayerSerDe,
		Name: "sparse/encode", Start: encStart, Dur: s.rec.Now().Sub(encStart),
	})
	return out, nil
}

// accountLoad folds one call's locally served entries into the live load
// summary, apportioning the call's sparse-op time by lookup share.
func (s *SparseShard) accountLoad(local []runEntry, opDur time.Duration) {
	total := 0
	lookups := make([]int, len(local))
	for i, le := range local {
		lookups[i] = embedding.TotalLookups(le.entry.Bags)
		total += lookups[i]
	}
	s.loadMu.Lock()
	defer s.loadMu.Unlock()
	for i, le := range local {
		var svc time.Duration
		if total > 0 {
			svc = time.Duration(float64(opDur) * float64(lookups[i]) / float64(total))
		}
		key := tableKey{id: int(le.entry.TableID), part: int(le.entry.PartIndex)}
		s.load.Add(key.loadKey(), sharding.TableLoad{
			Lookups: int64(lookups[i]), ServiceTime: svc, Calls: 1,
		})
	}
}

// issueForwards sends forwarded entries to their destination shards and
// returns a wait function that splices the pooled results into the
// response slice, or nil when nothing was forwarded.
func (s *SparseShard) issueForwards(ctx trace.Context, net string, forwarded []runEntry) func([]PooledEntry) error {
	if len(forwarded) == 0 {
		return nil
	}
	// Group entries per destination caller so one straggler batch costs
	// one hop per destination.
	type group struct {
		target  *forwardTarget
		entries []runEntry
	}
	var groups []group
	byCaller := make(map[rpc.Caller]int)
	for _, fe := range forwarded {
		gi, ok := byCaller[fe.forward.caller]
		if !ok {
			gi = len(groups)
			byCaller[fe.forward.caller] = gi
			groups = append(groups, group{target: fe.forward})
		}
		groups[gi].entries = append(groups[gi].entries, fe)
	}
	type pending struct {
		g     group
		call  *rpc.Call
		issue time.Time
	}
	calls := make([]pending, 0, len(groups))
	for _, g := range groups {
		sreq := &SparseRequest{Net: net}
		for _, fe := range g.entries {
			sreq.Entries = append(sreq.Entries, fe.entry)
		}
		issue := s.rec.Now()
		call := g.target.caller.Go(&rpc.Request{
			Method: MethodSparseRun, TraceID: ctx.TraceID, CallID: s.rec.NextID(),
			Body: EncodeSparseRequest(sreq),
		})
		s.met.forwards.Inc()
		calls = append(calls, pending{g: g, call: call, issue: issue})
	}
	return func(results []PooledEntry) error {
		for _, p := range calls {
			<-p.call.Done
			s.rec.Record(trace.Span{
				TraceID: ctx.TraceID, CallID: p.call.Req.CallID, Layer: trace.LayerMigration,
				Net: net, Name: "forward/" + p.g.target.service,
				Start: p.issue, Dur: s.rec.Now().Sub(p.issue),
			})
			if p.call.Err != nil {
				return fmt.Errorf("core: %s forwarding to %s: %w", s.ShardName, p.g.target.service, p.call.Err)
			}
			resp, err := DecodeSparseResponse(p.call.Resp.Body)
			if err != nil {
				return fmt.Errorf("core: %s forwarding to %s: %w", s.ShardName, p.g.target.service, err)
			}
			if len(resp.Entries) != len(p.g.entries) {
				return fmt.Errorf("core: %s forward returned %d entries for %d", s.ShardName, len(resp.Entries), len(p.g.entries))
			}
			for i, fe := range p.g.entries {
				results[fe.idx] = resp.Entries[i]
			}
		}
		return nil
	}
}

func (s *SparseShard) handleLoad(body []byte) ([]byte, error) {
	req, err := DecodeLoadRequest(body)
	if err != nil {
		return nil, fmt.Errorf("core: %s: %w", s.ShardName, err)
	}
	out := EncodeLoadSummary(s.LoadSnapshot(req.Reset))
	if req.Reset {
		// A reset collection marks a rebalance window boundary: the
		// just-collected window is the freshest full picture of per-table
		// heat, so re-apportion the cache budget from it — the periodic
		// retier that lets a recently migrated-in table earn a real share.
		s.retier()
	}
	return out, nil
}

func (s *SparseShard) handleMigrateBegin(ctx trace.Context, body []byte) ([]byte, error) {
	m, err := DecodeMigrateBegin(body)
	if err != nil {
		return nil, err
	}
	if m.Rows <= 0 || m.Dim <= 0 {
		return nil, fmt.Errorf("core: %s: migrate begin with shape %dx%d", s.ShardName, m.Rows, m.Dim)
	}
	start := s.rec.Now()
	stage, err := newStaged(m.Enc, m.Rows, m.Dim)
	if err != nil {
		return nil, fmt.Errorf("core: %s: %w", s.ShardName, err)
	}
	s.mu.Lock()
	s.staging[tableKey{id: int(m.TableID), part: int(m.PartIndex)}] = stage
	s.mu.Unlock()
	s.rec.Record(trace.Span{
		TraceID: ctx.TraceID, CallID: ctx.CallID, Layer: trace.LayerMigration,
		Name:  fmt.Sprintf("migrate/begin/t%d.%d", m.TableID, m.PartIndex),
		Start: start, Dur: s.rec.Now().Sub(start),
	})
	s.met.migrateBegins.Inc()
	return nil, nil
}

func (s *SparseShard) handleMigrateRead(ctx trace.Context, body []byte) ([]byte, error) {
	m, err := DecodeMigrateRead(body)
	if err != nil {
		return nil, err
	}
	s.mu.RLock()
	tab, ok := s.tables[tableKey{id: int(m.TableID), part: int(m.PartIndex)}]
	s.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("core: %s does not hold table %d part %d", s.ShardName, m.TableID, m.PartIndex)
	}
	cold := coldOf(tab)
	enc, err := tableEnc(tab)
	if err != nil {
		return nil, fmt.Errorf("core: %s: table %d part %d: %w", s.ShardName, m.TableID, m.PartIndex, err)
	}
	resp := &MigrateReadResponse{Rows: int32(cold.NumRows()), Dim: int32(cold.Dim()), Enc: enc}
	if m.RowCount > 0 {
		lo, hi := int(m.RowStart), int(m.RowStart+m.RowCount)
		if lo < 0 || hi > cold.NumRows() || lo >= hi {
			return nil, fmt.Errorf("core: %s: migrate read rows [%d, %d) of %d", s.ShardName, lo, hi, cold.NumRows())
		}
		start := s.rec.Now()
		// Stream the cold tier's native encoding: fp32 rows as float32
		// payload (the original protocol), encoded tiers as verbatim
		// bytes, so the destination's copy is bit-identical.
		switch ct := cold.(type) {
		case *embedding.Dense:
			resp.Data = append([]float32(nil), ct.Data[lo*ct.Dim():hi*ct.Dim()]...)
		case *embedding.FP16:
			resp.Raw = ct.Encoding().AppendRowRange(nil, lo, hi)
		case *embedding.Quantized:
			resp.Raw = ct.Encoding().AppendRowRange(nil, lo, hi)
		}
		s.rec.Record(trace.Span{
			TraceID: ctx.TraceID, CallID: ctx.CallID, Layer: trace.LayerMigration,
			Name:  fmt.Sprintf("migrate/read/t%d.%d", m.TableID, m.PartIndex),
			Start: start, Dur: s.rec.Now().Sub(start),
		})
		s.met.snapshotReads.Inc()
	}
	return EncodeMigrateReadResponse(resp), nil
}

func (s *SparseShard) handleMigrateChunk(ctx trace.Context, body []byte) ([]byte, error) {
	m, err := DecodeMigrateChunk(body)
	if err != nil {
		return nil, err
	}
	key := tableKey{id: int(m.TableID), part: int(m.PartIndex)}
	s.mu.RLock()
	stage, ok := s.staging[key]
	s.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("core: %s: migrate chunk for table %d part %d without begin", s.ShardName, m.TableID, m.PartIndex)
	}
	if int(m.Dim) != stage.dim() {
		return nil, fmt.Errorf("core: %s: migrate chunk dim %d for staged dim %d", s.ShardName, m.Dim, stage.dim())
	}
	if m.Enc != stage.enc {
		return nil, fmt.Errorf("core: %s: migrate chunk encoding %d for staged encoding %d", s.ShardName, m.Enc, stage.enc)
	}
	start := s.rec.Now()
	// Chunks target disjoint row ranges of preallocated staging storage,
	// so copies need no lock; the staging map itself is read-locked.
	if stage.enc == TierEncFP32 {
		if err := stage.writeF32(int(m.RowStart), m.Data); err != nil {
			return nil, fmt.Errorf("core: %s: %w", s.ShardName, err)
		}
	} else if _, err := stage.writeRaw(int(m.RowStart), m.Raw); err != nil {
		return nil, fmt.Errorf("core: %s: %w", s.ShardName, err)
	}
	s.rec.Record(trace.Span{
		TraceID: ctx.TraceID, CallID: ctx.CallID, Layer: trace.LayerMigration,
		Name:  fmt.Sprintf("migrate/chunk/t%d.%d", m.TableID, m.PartIndex),
		Start: start, Dur: s.rec.Now().Sub(start),
	})
	s.met.migrateChunks.Inc()
	s.met.migrateBytes.Add(int64(4*len(m.Data) + len(m.Raw)))
	return nil, nil
}

func (s *SparseShard) handleMigrateCommit(ctx trace.Context, body []byte) ([]byte, error) {
	m, err := DecodeMigrateCommit(body)
	if err != nil {
		return nil, err
	}
	key := tableKey{id: int(m.TableID), part: int(m.PartIndex)}
	s.mu.Lock()
	stage, ok := s.staging[key]
	var tab embedding.Table
	if ok {
		var err error
		if tab, err = stage.table(); err != nil {
			s.mu.Unlock()
			return nil, fmt.Errorf("core: %s: migrate commit: %w", s.ShardName, err)
		}
		delete(s.staging, key)
		// The committed copy starts with a cold cache: tierWrap fronts it
		// with an empty one (nothing from the source's cache can leak in),
		// and keeps the streamed encoding as-is.
		s.tables[key] = s.tierWrap(key.id, tab)
		delete(s.forwards, key)
	}
	s.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("core: %s: migrate commit for table %d part %d without begin", s.ShardName, m.TableID, m.PartIndex)
	}
	epoch := s.epoch.Add(1)
	s.retier()
	s.met.migrateCommits.Inc()
	s.rec.Record(trace.Span{
		TraceID: ctx.TraceID, CallID: ctx.CallID, Layer: trace.LayerMigration,
		Name:  fmt.Sprintf("migrate/commit/t%d.%d", m.TableID, m.PartIndex),
		Start: s.rec.Now(),
	})
	return EncodeEpochResponse(&EpochResponse{Epoch: epoch}), nil
}

// handleMigrateAbort discards staged storage for a move the
// orchestrator gave up on, so a failed stream does not strand a
// table-sized staging buffer. Aborting a key that was never begun (or
// already committed) is a no-op, making the cleanup safe to fire
// unconditionally.
func (s *SparseShard) handleMigrateAbort(body []byte) ([]byte, error) {
	m, err := DecodeMigrateCommit(body)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	delete(s.staging, tableKey{id: int(m.TableID), part: int(m.PartIndex)})
	s.mu.Unlock()
	return nil, nil
}

func (s *SparseShard) handleMigrateForward(body []byte) ([]byte, error) {
	m, err := DecodeMigrateForward(body)
	if err != nil {
		return nil, err
	}
	caller, err := s.forwardCaller(m.Addr)
	if err != nil {
		return nil, fmt.Errorf("core: %s: dialing forward %s (%s): %w", s.ShardName, m.Service, m.Addr, err)
	}
	s.BeginForward(int(m.TableID), int(m.PartIndex), m.Service, caller, m.Release)
	return EncodeEpochResponse(&EpochResponse{Epoch: s.Epoch()}), nil
}

// forwardCaller returns a cached (or freshly dialed) caller for a
// forward destination address. The dial happens outside s.mu: an
// unreachable destination must stall only this control-plane call, not
// every sparse.run blocked behind the table lock.
func (s *SparseShard) forwardCaller(addr string) (rpc.Caller, error) {
	s.mu.RLock()
	c, ok := s.fwdClients[addr]
	s.mu.RUnlock()
	if ok {
		return c, nil
	}
	dial := s.DialForward
	if dial == nil {
		dial = func(a string) (rpc.Caller, error) { return rpc.Dial(a, nil) }
	}
	fresh, err := dial(addr)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	if c, ok := s.fwdClients[addr]; ok {
		// Lost the dial race; keep the first connection.
		s.mu.Unlock()
		fresh.Close()
		return c, nil
	}
	s.fwdClients[addr] = fresh
	s.mu.Unlock()
	return fresh, nil
}

// MaterializeShards builds the sparse shards' table storage from a model
// and a distributed plan. Row-partitioned tables are partitioned once and
// the parts handed to their shards. Only fp32 Dense tables can be
// partitioned (quantized models are served whole-table, as in the paper's
// compression experiment which is singular-only).
func MaterializeShards(m *model.Model, plan *sharding.Plan, recs []*trace.Recorder) ([]*SparseShard, error) {
	return MaterializeShardsTiered(m, plan, recs, nil)
}

// MaterializeShardsTiered is MaterializeShards with a tiered-store
// config: each shard encodes its tables' cold tier to the planned
// precision at install and fronts them with hot-row caches under the
// shard-wide byte budget. A nil tier keeps plain fp32 serving.
func MaterializeShardsTiered(m *model.Model, plan *sharding.Plan, recs []*trace.Recorder, tier *TierConfig) ([]*SparseShard, error) {
	if !plan.IsDistributed() {
		return nil, fmt.Errorf("core: cannot materialize shards for a singular plan")
	}
	if len(recs) != plan.NumShards {
		return nil, fmt.Errorf("core: %d recorders for %d shards", len(recs), plan.NumShards)
	}
	shards := make([]*SparseShard, plan.NumShards)
	for i := range shards {
		shards[i] = NewSparseShard(ServiceName(i+1), recs[i])
	}
	// Partition each split table exactly once.
	var partsMu sync.Mutex
	parts := make(map[int][]*embedding.Part)
	partsOf := func(id, numParts int) ([]*embedding.Part, error) {
		partsMu.Lock()
		defer partsMu.Unlock()
		if p, ok := parts[id]; ok {
			if p[0].NumParts != numParts {
				return nil, fmt.Errorf("core: table %d partitioned twice with different counts", id)
			}
			return p, nil
		}
		dense, ok := m.Tables[id].(*embedding.Dense)
		if !ok {
			return nil, fmt.Errorf("core: table %d is not fp32 dense; cannot row-partition", id)
		}
		p := embedding.PartitionRows(dense, numParts)
		parts[id] = p
		return p, nil
	}
	for i := range plan.Shards {
		a := &plan.Shards[i]
		sh := shards[a.Shard-1]
		for _, id := range a.Tables {
			sh.AddTable(id, m.Tables[id])
		}
		for _, pr := range a.Parts {
			p, err := partsOf(pr.TableID, pr.NumParts)
			if err != nil {
				return nil, err
			}
			sh.AddPart(pr.TableID, pr.PartIndex, p[pr.PartIndex].Local)
		}
	}
	if tier != nil {
		// Tier after the full install, not per table: SetTier wraps the
		// whole set and apportions the cache budget once, instead of T
		// re-apportionments (each a table-set scan plus cache resizes)
		// while the set is still filling.
		for _, sh := range shards {
			sh.SetTier(tier)
		}
	}
	return shards, nil
}

// RankMethod is the main shard's scoring method name. A co-served
// deployment routes per model with RankMethodFor; HandleRank itself
// always sees the bare method (the router strips the suffix).
const RankMethod = "rank"

// RankMethodFor returns the wire method addressing one model of a
// multi-model deployment ("rank@DRM1"). An empty model yields the bare
// method, so single-model callers need no special case.
func RankMethodFor(model string) string {
	if model == "" {
		return RankMethod
	}
	return RankMethod + "@" + model
}

// SplitRankMethod parses a rank method into its model selector: bare
// "rank" yields ("", true), "rank@m" yields ("m", true), anything else
// is not a rank method.
func SplitRankMethod(method string) (model string, ok bool) {
	if method == RankMethod {
		return "", true
	}
	const pfx = RankMethod + "@"
	if len(method) > len(pfx) && method[:len(pfx)] == pfx {
		return method[len(pfx):], true
	}
	return "", false
}

// HandleRank is the shared wire handling for the "rank" method: decode
// and encode with the serde spans the paper attributes to the main
// shard, around any scoring function. Both the direct MainService and
// the serving frontend's Service route through it, so fronted and
// unfronted deployments record identical serde attribution.
func HandleRank(rec *trace.Recorder, ctx trace.Context, method string, body []byte,
	run func(trace.Context, *RankingRequest) ([]float32, error)) ([]byte, error) {
	if method != "rank" {
		return nil, fmt.Errorf("core: main shard: unknown method %q", method)
	}
	desStart := rec.Now()
	req, err := DecodeRankingRequest(body)
	rec.Record(trace.Span{
		TraceID: ctx.TraceID, Layer: trace.LayerSerDe,
		Name: "rank/decode", Start: desStart, Dur: rec.Now().Sub(desStart),
	})
	if err != nil {
		return nil, err
	}
	scores, err := run(ctx, req)
	if err != nil {
		return nil, err
	}
	encStart := rec.Now()
	out := EncodeRankingResponse(&RankingResponse{Scores: scores})
	rec.Record(trace.Span{
		TraceID: ctx.TraceID, Layer: trace.LayerSerDe,
		Name: "rank/encode", Start: encStart, Dur: rec.Now().Sub(encStart),
	})
	return out, nil
}

// MainService adapts an Engine to rpc.Handler for the "rank" method,
// recording the request/response serde spans the paper attributes to the
// main shard.
type MainService struct {
	Engine *Engine
	Rec    *trace.Recorder
	// Tracer, when set, finishes each request's live trace with its
	// measured service latency (unfronted deployments; the frontend
	// finishes traces itself).
	Tracer *obs.Tracer
}

// Handle implements rpc.Handler.
func (s *MainService) Handle(ctx trace.Context, method string, body []byte) ([]byte, error) {
	start := time.Now() //lint:allow determinism end-to-end latency is tracer telemetry
	out, err := HandleRank(s.Rec, ctx, method, body, s.Engine.Execute)
	s.Tracer.Finish(ctx.TraceID, time.Since(start), err != nil) //lint:allow determinism e2e latency recorded for tracing only
	return out, err
}
