package core

import (
	"bytes"
	"testing"

	"repro/internal/model"
	"repro/internal/sharding"
)

// FuzzImportShard hammers the shard-file importers — both the v1
// row-stream format and the v2 page-aligned persistent format — with
// arbitrary bytes. Any input must either be rejected with an error or
// parse into tables that are fully servable: no panics, no unbounded
// allocations, no table whose lookup path crashes. The seed corpus
// (testdata/fuzz/FuzzImportShard) commits real exports of both
// versions so exploration starts from deep inside the format.
func FuzzImportShard(f *testing.F) {
	// Shrink far below tinyConfig: seed inputs bound mutation cost, and
	// the format's structure is fully represented at this size.
	cfg := tinyConfig()
	cfg.Tables = cfg.Tables[:6]
	for i := range cfg.Tables {
		cfg.Tables[i].Rows = 8
		cfg.Tables[i].Dim = 4
	}
	m := model.Build(cfg)
	plan, err := sharding.CapacityBalanced(&cfg, 2)
	if err != nil {
		f.Fatal(err)
	}
	var v1, v2, v2q bytes.Buffer
	if err := ExportShard(m, plan, 1, &v1); err != nil {
		f.Fatal(err)
	}
	if err := ExportShardV2(m, plan, 1, &v2, nil); err != nil {
		f.Fatal(err)
	}
	tier := sharding.PlanTiers(&cfg, sharding.TierOptions{
		ColdPrecision: sharding.PrecisionInt8, MinTableBytes: 1,
	})
	if err := ExportShardV2(m, plan, 2, &v2q, tier); err != nil {
		f.Fatal(err)
	}
	f.Add(v1.Bytes())
	f.Add(v2.Bytes())
	f.Add(v2q.Bytes())
	f.Add(v2.Bytes()[:len(v2.Bytes())/2]) // mid-section truncation
	f.Add([]byte("DRSH"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, b []byte) {
		sf, err := LoadShardFile(b)
		if err != nil {
			return
		}
		if sf.Shard < 1 {
			t.Fatalf("accepted shard number %d", sf.Shard)
		}
		for i, st := range sf.Tables {
			if st.Rows <= 0 || st.Dim <= 0 || st.Table == nil {
				t.Fatalf("entry %d: accepted unservable table %dx%d (%v)", i, st.Rows, st.Dim, st.Table)
			}
			if st.Table.NumRows() != st.Rows || st.Table.Dim() != st.Dim {
				t.Fatalf("entry %d: directory says %dx%d, table is %dx%d",
					i, st.Rows, st.Dim, st.Table.NumRows(), st.Table.Dim())
			}
			// Drive the serving path on the boundary rows: a table that
			// parsed but cannot answer lookups is the crash class this
			// fuzzer exists to catch.
			acc := make([]float32, st.Dim)
			st.Table.AccumulateRow(acc, 0)
			st.Table.AccumulateRow(acc, st.Rows-1)
		}
	})
}
