package core

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/embedding"
	"repro/internal/model"
	"repro/internal/sharding"
	"repro/internal/trace"
)

// shardLookup runs one sparse.run lookup and returns the pooled vector —
// the bitwise fingerprint the identity tests compare across boot paths.
func shardLookup(t *testing.T, sh *SparseShard, net string, tableID, partIndex, numParts int, idx []int32) []float32 {
	t.Helper()
	req := &SparseRequest{Net: net, Entries: []SparseEntry{{
		TableID: int32(tableID), PartIndex: int32(partIndex), NumParts: int32(numParts),
		Bags: []embedding.Bag{{Indices: idx}},
	}}}
	out, err := sh.Handle(trace.Context{TraceID: 7, CallID: 1}, "sparse.run", EncodeSparseRequest(req))
	if err != nil {
		t.Fatalf("lookup table %d part %d: %v", tableID, partIndex, err)
	}
	resp, err := DecodeSparseResponse(out)
	if err != nil {
		t.Fatal(err)
	}
	return resp.Entries[0].Data
}

// compareShards asserts two shards answer bitwise-identical lookups for
// every placement unit of the assignment.
func compareShards(t *testing.T, cfg *model.Config, a *sharding.Assignment, got, want *SparseShard) {
	t.Helper()
	for _, id := range a.Tables {
		idx := []int32{0, int32(cfg.Tables[id].Rows - 1)}
		g := shardLookup(t, got, cfg.Tables[id].Net, id, 0, 1, idx)
		w := shardLookup(t, want, cfg.Tables[id].Net, id, 0, 1, idx)
		if !bitsEqual(g, w) {
			t.Fatalf("table %d: lookup differs between boot paths", id)
		}
	}
	for _, pr := range a.Parts {
		g := shardLookup(t, got, cfg.Tables[pr.TableID].Net, pr.TableID, pr.PartIndex, pr.NumParts, []int32{0})
		w := shardLookup(t, want, cfg.Tables[pr.TableID].Net, pr.TableID, pr.PartIndex, pr.NumParts, []int32{0})
		if !bitsEqual(g, w) {
			t.Fatalf("table %d part %d: lookup differs between boot paths", pr.TableID, pr.PartIndex)
		}
	}
}

func bitsEqual(a, b []float32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestExportImportShardV2Identity proves a v2 import serves bitwise the
// same lookups as in-memory materialization at every cold precision,
// over both whole tables and row partitions.
func TestExportImportShardV2Identity(t *testing.T) {
	cfg := model.DRM3()
	cfg.Tables[0].Rows = 512
	for i := 1; i < len(cfg.Tables); i++ {
		cfg.Tables[i].Rows = 16
	}
	m := model.Build(cfg)
	plan, err := sharding.NSBP(&cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, prec := range []sharding.Precision{sharding.PrecisionFP32, sharding.PrecisionFP16, sharding.PrecisionInt8} {
		t.Run(string(prec), func(t *testing.T) {
			tier := tierConfigFor(&cfg, prec, 0)
			recs := make([]*trace.Recorder, plan.NumShards)
			for i := range recs {
				recs[i] = trace.NewRecorder(ServiceName(i+1), 64)
			}
			want, err := MaterializeShardsTiered(m, plan, recs, tier)
			if err != nil {
				t.Fatal(err)
			}
			for shard := 1; shard <= plan.NumShards; shard++ {
				var buf bytes.Buffer
				if err := ExportShardV2(m, plan, shard, &buf, tier.Plan); err != nil {
					t.Fatal(err)
				}
				sh, gotShard, err := ImportShard(bytes.NewReader(buf.Bytes()), trace.NewRecorder("x", 64))
				if err != nil {
					t.Fatal(err)
				}
				if gotShard != shard {
					t.Fatalf("imported shard %d, want %d", gotShard, shard)
				}
				compareShards(t, &cfg, &plan.Shards[shard-1], sh, want[shard-1])
			}
		})
	}
}

// TestOpenShardFileMmap proves the zero-copy mmap boot path serves the
// same bytes as the heap import, for both file versions.
func TestOpenShardFileMmap(t *testing.T) {
	cfg := tinyConfig()
	m := model.Build(cfg)
	plan, err := sharding.CapacityBalanced(&cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	tier := tierConfigFor(&cfg, sharding.PrecisionInt8, 0)
	dir := t.TempDir()

	v2path := filepath.Join(dir, "v2.shard1")
	f, err := os.Create(v2path)
	if err != nil {
		t.Fatal(err)
	}
	if err := ExportShardV2(m, plan, 1, f, tier.Plan); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(v2path)
	if err != nil {
		t.Fatal(err)
	}
	heap, _, err := ImportShard(bytes.NewReader(raw), trace.NewRecorder("x", 64))
	if err != nil {
		t.Fatal(err)
	}
	sh, shard, closer, err := OpenShardFile(v2path, trace.NewRecorder("x", 64))
	if err != nil {
		t.Fatal(err)
	}
	defer closer.Close()
	if shard != 1 {
		t.Fatalf("opened shard %d, want 1", shard)
	}
	compareShards(t, &cfg, &plan.Shards[0], sh, heap)

	// v1 files open through the same entry point (heap decode).
	v1path := filepath.Join(dir, "v1.shard2")
	f, err = os.Create(v1path)
	if err != nil {
		t.Fatal(err)
	}
	if err := ExportShard(m, plan, 2, f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	shV1, shardV1, closerV1, err := OpenShardFile(v1path, trace.NewRecorder("x", 64))
	if err != nil {
		t.Fatal(err)
	}
	defer closerV1.Close()
	if shardV1 != 2 {
		t.Fatalf("opened shard %d, want 2", shardV1)
	}
	var buf bytes.Buffer
	if err := ExportShard(m, plan, 2, &buf); err != nil {
		t.Fatal(err)
	}
	heapV1, _, err := ImportShard(&buf, trace.NewRecorder("x", 64))
	if err != nil {
		t.Fatal(err)
	}
	compareShards(t, &cfg, &plan.Shards[1], shV1, heapV1)
}

// TestShardFileV2RejectsCorruption flips bytes across the file and
// checks the parser refuses each damaged image (checksums for section
// bytes, bounds checks for the directory).
func TestShardFileV2RejectsCorruption(t *testing.T) {
	cfg := tinyConfig()
	m := model.Build(cfg)
	plan, err := sharding.CapacityBalanced(&cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	tier := tierConfigFor(&cfg, sharding.PrecisionFP16, 0)
	var buf bytes.Buffer
	if err := ExportShardV2(m, plan, 1, &buf, tier.Plan); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	rec := trace.NewRecorder("x", 4)

	if _, err := LoadShardFile(full); err != nil {
		t.Fatalf("pristine file rejected: %v", err)
	}
	// Flip one byte in the last data section (past the last directory
	// entry), in the middle of the directory, and in the version field.
	for _, pos := range []int{len(full) - 1, 16 + shardDirEntrySize/2, 5} {
		bad := append([]byte(nil), full...)
		bad[pos] ^= 0xff
		if _, err := LoadShardFile(bad); err == nil {
			t.Errorf("corruption at byte %d accepted", pos)
		}
		if _, _, err := ImportShard(bytes.NewReader(bad), rec); err == nil {
			t.Errorf("ImportShard accepted corruption at byte %d", pos)
		}
	}
	for _, cut := range []int{15, 40, shardAlign + 5, len(full) - 3} {
		if _, err := LoadShardFile(full[:cut]); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
}

// TestLoadShardFileVersions checks the tooling loader reads both
// versions into the same structured form.
func TestLoadShardFileVersions(t *testing.T) {
	cfg := tinyConfig()
	m := model.Build(cfg)
	plan, err := sharding.CapacityBalanced(&cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	var v1, v2 bytes.Buffer
	if err := ExportShard(m, plan, 1, &v1); err != nil {
		t.Fatal(err)
	}
	if err := ExportShardV2(m, plan, 1, &v2, nil); err != nil {
		t.Fatal(err)
	}
	a, err := LoadShardFile(v1.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	b, err := LoadShardFile(v2.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if a.Shard != b.Shard || len(a.Tables) != len(b.Tables) {
		t.Fatalf("v1 %d tables shard %d, v2 %d tables shard %d", len(a.Tables), a.Shard, len(b.Tables), b.Shard)
	}
	for i := range a.Tables {
		ta, tb := a.Tables[i], b.Tables[i]
		if ta.TableID != tb.TableID || ta.Rows != tb.Rows || ta.Dim != tb.Dim || ta.Enc != tb.Enc {
			t.Fatalf("entry %d differs: %+v vs %+v", i, ta, tb)
		}
		da := ta.Table.(*embedding.Dense)
		db := tb.Table.(*embedding.Dense)
		if !bitsEqual(da.Data, db.Data) {
			t.Fatalf("entry %d rows differ between versions", i)
		}
	}
}
