package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/embedding"
	"repro/internal/tensor"
)

func randomBags(rng *rand.Rand, n int) []embedding.Bag {
	bags := make([]embedding.Bag, n)
	for i := range bags {
		for j, k := 0, rng.Intn(5); j < k; j++ {
			bags[i].Indices = append(bags[i].Indices, int32(rng.Intn(1<<20)))
		}
	}
	return bags
}

func bagsEqual(a, b []embedding.Bag) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i].Indices) != len(b[i].Indices) {
			return false
		}
		for j := range a[i].Indices {
			if a[i].Indices[j] != b[i].Indices[j] {
				return false
			}
		}
	}
	return true
}

func TestSparseRequestRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	req := &SparseRequest{
		Net: "net1",
		Entries: []SparseEntry{
			{TableID: 3, PartIndex: 0, NumParts: 1, Bags: randomBags(rng, 4)},
			{TableID: 9, PartIndex: 2, NumParts: 4, Bags: randomBags(rng, 4)},
			{TableID: 11, PartIndex: 0, NumParts: 1, Bags: []embedding.Bag{{}, {}}},
		},
	}
	got, err := DecodeSparseRequest(EncodeSparseRequest(req))
	if err != nil {
		t.Fatal(err)
	}
	if got.Net != req.Net || len(got.Entries) != len(req.Entries) {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	for i := range req.Entries {
		a, b := req.Entries[i], got.Entries[i]
		if a.TableID != b.TableID || a.PartIndex != b.PartIndex || a.NumParts != b.NumParts || !bagsEqual(a.Bags, b.Bags) {
			t.Errorf("entry %d mismatch", i)
		}
	}
}

func TestSparseResponseRoundTrip(t *testing.T) {
	resp := &SparseResponse{Entries: []PooledEntry{
		{TableID: 1, PartIndex: 0, Rows: 2, Cols: 3, Data: []float32{1, 2, 3, 4, 5, 6}},
		{TableID: 7, PartIndex: 1, Rows: 1, Cols: 2, Data: []float32{-1, 0.5}},
	}}
	got, err := DecodeSparseResponse(EncodeSparseResponse(resp))
	if err != nil {
		t.Fatal(err)
	}
	for i := range resp.Entries {
		a, b := resp.Entries[i], got.Entries[i]
		if a.TableID != b.TableID || a.Rows != b.Rows || a.Cols != b.Cols {
			t.Fatalf("entry %d header mismatch", i)
		}
		for j := range a.Data {
			if a.Data[j] != b.Data[j] {
				t.Fatalf("entry %d data mismatch at %d", i, j)
			}
		}
	}
}

func TestRankingRequestRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	dense := tensor.New(3, 4)
	for i := range dense.Data {
		dense.Data[i] = rng.Float32()
	}
	req := &RankingRequest{
		ID: 77, Items: 3,
		Dense: map[string]*tensor.Matrix{"net1": dense},
		Bags:  map[int32][]embedding.Bag{0: randomBags(rng, 3), 5: randomBags(rng, 3)},
	}
	got, err := DecodeRankingRequest(EncodeRankingRequest(req))
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != 77 || got.Items != 3 {
		t.Fatalf("header mismatch: %+v", got)
	}
	gd := got.Dense["net1"]
	if gd.Rows != 3 || gd.Cols != 4 {
		t.Fatalf("dense shape %dx%d", gd.Rows, gd.Cols)
	}
	for i := range dense.Data {
		if gd.Data[i] != dense.Data[i] {
			t.Fatal("dense data mismatch")
		}
	}
	if !bagsEqual(got.Bags[0], req.Bags[0]) || !bagsEqual(got.Bags[5], req.Bags[5]) {
		t.Error("bags mismatch")
	}
}

func TestRankingResponseRoundTrip(t *testing.T) {
	resp := &RankingResponse{Scores: []float32{0.1, 0.9, 0.5}}
	got, err := DecodeRankingResponse(EncodeRankingResponse(resp))
	if err != nil {
		t.Fatal(err)
	}
	for i := range resp.Scores {
		if got.Scores[i] != resp.Scores[i] {
			t.Fatal("scores mismatch")
		}
	}
}

func TestDecodeRejectsTruncation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	req := &SparseRequest{Net: "n", Entries: []SparseEntry{{TableID: 1, NumParts: 1, Bags: randomBags(rng, 2)}}}
	full := EncodeSparseRequest(req)
	for cut := 1; cut < len(full); cut += 3 {
		if _, err := DecodeSparseRequest(full[:cut]); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
	resp := &SparseResponse{Entries: []PooledEntry{{Rows: 1, Cols: 2, Data: []float32{1, 2}}}}
	fullR := EncodeSparseResponse(resp)
	for cut := 1; cut < len(fullR); cut += 3 {
		if _, err := DecodeSparseResponse(fullR[:cut]); err == nil {
			t.Errorf("response truncation at %d accepted", cut)
		}
	}
}

func TestSparseRequestPropertyRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		req := &SparseRequest{Net: "net2"}
		for i, n := 0, rng.Intn(5); i < n; i++ {
			req.Entries = append(req.Entries, SparseEntry{
				TableID:   int32(rng.Intn(100)),
				PartIndex: int32(rng.Intn(4)),
				NumParts:  int32(1 + rng.Intn(4)),
				Bags:      randomBags(rng, rng.Intn(4)),
			})
		}
		got, err := DecodeSparseRequest(EncodeSparseRequest(req))
		if err != nil || got.Net != req.Net || len(got.Entries) != len(req.Entries) {
			return false
		}
		for i := range req.Entries {
			if !bagsEqual(req.Entries[i].Bags, got.Entries[i].Bags) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestPooledEntryShapeValidation(t *testing.T) {
	resp := &SparseResponse{Entries: []PooledEntry{{Rows: 2, Cols: 2, Data: []float32{1, 2, 3, 4}}}}
	buf := EncodeSparseResponse(resp)
	// Corrupt the Rows field (offset: 4 count + 4 tid + 4 part = 12).
	buf[12] = 9
	if _, err := DecodeSparseResponse(buf); err == nil {
		t.Error("shape mismatch should be rejected")
	}
}
