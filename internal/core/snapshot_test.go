package core

import (
	"bytes"
	"testing"

	"repro/internal/sharding"
	"repro/internal/trace"
)

func TestSnapshotListRoundTrip(t *testing.T) {
	in := &SnapshotList{Entries: []SnapshotEntry{
		{TableID: 3, PartIndex: 0, Rows: 128, Dim: 16, Enc: TierEncFP32},
		{TableID: 7, PartIndex: 2, Rows: 64, Dim: 32, Enc: TierEncInt8},
	}}
	out, err := DecodeSnapshotList(EncodeSnapshotList(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Entries) != len(in.Entries) {
		t.Fatalf("entries = %d, want %d", len(out.Entries), len(in.Entries))
	}
	for i := range in.Entries {
		if out.Entries[i] != in.Entries[i] {
			t.Errorf("entry %d = %+v, want %+v", i, out.Entries[i], in.Entries[i])
		}
	}
	empty, err := DecodeSnapshotList(EncodeSnapshotList(&SnapshotList{}))
	if err != nil || len(empty.Entries) != 0 {
		t.Fatalf("empty round trip = %+v, %v", empty, err)
	}
	if _, err := DecodeSnapshotList([]byte{1, 2}); err == nil {
		t.Error("truncated manifest must not decode")
	}
}

// rebuildFixture rebuilds a fresh, empty replacement shard from shard 1
// of the fixture via the snapshot protocol (in-process caller) and
// returns it.
func rebuildFromShard(t *testing.T, peer *SparseShard, tier *TierConfig, chunkRows int) (*SparseShard, RebuildStats) {
	t.Helper()
	fresh := NewSparseShard(peer.ShardName, trace.NewRecorder(peer.ShardName+"-rebuilt", 1<<14))
	if tier != nil {
		fresh.SetTier(tier)
	}
	t.Cleanup(fresh.Close)
	st, err := fresh.RebuildFromPeer(&localCaller{h: peer}, chunkRows)
	if err != nil {
		t.Fatal(err)
	}
	return fresh, st
}

// snapshotReadAll streams a shard's full content for one manifest entry.
func snapshotReadAll(t *testing.T, sh *SparseShard, e SnapshotEntry) *MigrateReadResponse {
	t.Helper()
	out, err := sh.Handle(trace.Context{}, MethodSnapshotRead, EncodeMigrateRead(&MigrateRead{
		TableID: e.TableID, PartIndex: e.PartIndex, RowCount: e.Rows,
	}))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := DecodeMigrateReadResponse(out)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// requireShardsByteIdentical compares two shards' full table sets via
// the snapshot surface.
func requireShardsByteIdentical(t *testing.T, a, b *SparseShard) {
	t.Helper()
	am, err := a.Handle(trace.Context{}, MethodSnapshotList, nil)
	if err != nil {
		t.Fatal(err)
	}
	bm, err := b.Handle(trace.Context{}, MethodSnapshotList, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(am, bm) {
		t.Fatalf("manifests differ:\n%x\n%x", am, bm)
	}
	list, err := DecodeSnapshotList(am)
	if err != nil {
		t.Fatal(err)
	}
	if len(list.Entries) == 0 {
		t.Fatal("empty manifest proves nothing")
	}
	for _, e := range list.Entries {
		ra, rb := snapshotReadAll(t, a, e), snapshotReadAll(t, b, e)
		if ra.Enc != rb.Enc {
			t.Fatalf("table %d part %d: enc %d vs %d", e.TableID, e.PartIndex, ra.Enc, rb.Enc)
		}
		if !bytes.Equal(float32Bits(ra.Data), float32Bits(rb.Data)) || !bytes.Equal(ra.Raw, rb.Raw) {
			t.Fatalf("table %d part %d: row data differs after rebuild", e.TableID, e.PartIndex)
		}
	}
}

func float32Bits(xs []float32) []byte {
	var w buffer
	w.f32s(xs)
	return w.b
}

// TestRebuildFromPeerFP32 rebuilds an fp32 shard and checks the
// replacement's table set is byte-identical and serves identical pooled
// results.
func TestRebuildFromPeerFP32(t *testing.T) {
	f := newMigrationFixture(t)
	src := f.shards[0]
	// A small chunk size forces multi-chunk streams.
	rebuilt, st := rebuildFromShard(t, src, nil, 7)
	if st.Tables != src.NumTables() || st.Bytes == 0 {
		t.Fatalf("stats = %+v for %d tables", st, src.NumTables())
	}
	requireShardsByteIdentical(t, src, rebuilt)

	// Serving equivalence: the same sparse.run request pools to the same
	// bytes on the replacement.
	req := f.runRequest(t, 99)
	want, err := src.Handle(trace.Context{TraceID: 1, CallID: 1}, MethodSparseRun, req)
	if err != nil {
		t.Fatal(err)
	}
	got, err := rebuilt.Handle(trace.Context{TraceID: 2, CallID: 2}, MethodSparseRun, req)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, got) {
		t.Fatal("rebuilt shard pooled different bytes")
	}
}

// TestRebuildFromPeerEncodedTiers rebuilds a tiered (int8 cold tier +
// hot-row cache) shard: encoded rows must stream verbatim and the
// replacement must rejoin cold-cached.
func TestRebuildFromPeerEncodedTiers(t *testing.T) {
	f := newTieredMigrationFixture(t, sharding.PrecisionInt8, 0.25)
	src := f.shards[0]
	cfg := tinyConfig()
	rebuilt, _ := rebuildFromShard(t, src, tierConfigFor(&cfg, sharding.PrecisionInt8, 0.25), 5)
	requireShardsByteIdentical(t, src, rebuilt)

	ts := rebuilt.TierSnapshot()
	if ts.Int8 != ts.Tables || ts.Tables == 0 {
		t.Fatalf("rebuilt tier snapshot = %+v, want all-int8", ts)
	}
	if ts.CacheBytes != 0 || ts.Hits != 0 {
		t.Fatalf("replacement must start cold-cached: %+v", ts)
	}

	// And it serves: identical request, identical bytes (the cache warms
	// on the way but admission never changes results).
	req := f.runRequest(t, 42)
	want, err := src.Handle(trace.Context{TraceID: 1, CallID: 1}, MethodSparseRun, req)
	if err != nil {
		t.Fatal(err)
	}
	got, err := rebuilt.Handle(trace.Context{TraceID: 2, CallID: 2}, MethodSparseRun, req)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, got) {
		t.Fatal("rebuilt tiered shard pooled different bytes")
	}
}

// TestRebuildFromPeerErrors covers the failure paths: a peer that does
// not hold a requested table, and a manifest from an empty peer.
func TestRebuildFromPeerErrors(t *testing.T) {
	empty := NewSparseShard("sparse9", trace.NewRecorder("sparse9", 1<<12))
	defer empty.Close()
	fresh := NewSparseShard("sparse9", trace.NewRecorder("sparse9b", 1<<12))
	defer fresh.Close()
	st, err := fresh.RebuildFromPeer(&localCaller{h: empty}, 0)
	if err != nil || st.Tables != 0 {
		t.Fatalf("empty-peer rebuild = %+v, %v", st, err)
	}

	// A read for a table the peer dropped mid-rebuild must surface an
	// error, not a partial install.
	if _, err := empty.Handle(trace.Context{}, MethodSnapshotRead, EncodeMigrateRead(&MigrateRead{TableID: 3, RowCount: 4})); err == nil {
		t.Error("snapshot read of an absent table must fail")
	}
}
