package core

import (
	"errors"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/embedding"
	"repro/internal/model"
	"repro/internal/nn"
	"repro/internal/sharding"
	"repro/internal/tensor"
	"repro/internal/trace"
	"repro/internal/workload"
)

func tinyConfig() model.Config {
	cfg := model.DRM2()
	for i := range cfg.Tables {
		cfg.Tables[i].Rows = 32
		cfg.Tables[i].PoolingFactor = 2
	}
	cfg.MeanItems = 4
	cfg.DefaultBatch = 2
	return cfg
}

func TestCollectorSingleSourceIntoEmb(t *testing.T) {
	asm := newEmbAssembler(2, 5, 1)
	inter := nn.NewFuture()
	c := newCollector(1, 2, 3, asm, 1, inter)
	m := tensor.FromSlice(2, 3, []float32{1, 2, 3, 4, 5, 6})
	c.deliver(m, nil)
	emb, err := asm.future.Wait()
	if err != nil {
		t.Fatal(err)
	}
	// Columns [1,4) of each row must hold the pooled values.
	if emb.At(0, 1) != 1 || emb.At(0, 3) != 3 || emb.At(1, 2) != 5 {
		t.Fatalf("emb = %v", emb.Data)
	}
	if emb.At(0, 0) != 0 || emb.At(0, 4) != 0 {
		t.Fatal("columns outside the table range must stay zero")
	}
	got, err := inter.Wait()
	if err != nil || got != m {
		t.Fatalf("interact future: %v, %v", got, err)
	}
}

func TestCollectorMergesPartials(t *testing.T) {
	asm := newEmbAssembler(1, 2, 1)
	c := newCollector(3, 1, 2, asm, 0, nil)
	c.deliver(tensor.FromSlice(1, 2, []float32{1, 10}), nil)
	c.deliver(nil, nil) // skipped source contributes zeros
	c.deliver(tensor.FromSlice(1, 2, []float32{2, 20}), nil)
	emb, err := asm.future.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if emb.Data[0] != 3 || emb.Data[1] != 30 {
		t.Errorf("merged = %v", emb.Data)
	}
}

func TestCollectorAllSkippedZeroFills(t *testing.T) {
	asm := newEmbAssembler(3, 4, 1)
	c := newCollector(2, 3, 4, asm, 0, nil)
	c.deliver(nil, nil)
	c.deliver(nil, nil)
	emb, err := asm.future.Wait()
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range emb.Data {
		if v != 0 {
			t.Fatal("zero-fill should be zeros")
		}
	}
}

func TestCollectorErrorWins(t *testing.T) {
	asm := newEmbAssembler(1, 1, 1)
	inter := nn.NewFuture()
	c := newCollector(2, 1, 1, asm, 0, inter)
	c.deliver(nil, errors.New("shard down"))
	c.deliver(tensor.New(1, 1), nil) // late success ignored
	if _, err := asm.future.Wait(); err == nil {
		t.Fatal("error should propagate to the emb future")
	}
	if _, err := inter.Wait(); err == nil {
		t.Fatal("error should propagate to the interact future")
	}
}

func TestCollectorShapeMismatch(t *testing.T) {
	asm := newEmbAssembler(1, 2, 1)
	c := newCollector(2, 1, 2, asm, 0, nil)
	c.deliver(tensor.New(1, 3), nil)
	if _, err := asm.future.Wait(); err == nil {
		t.Fatal("shape mismatch should fail")
	}
}

func TestEmbAssemblerWaitsForAllTables(t *testing.T) {
	asm := newEmbAssembler(1, 4, 2)
	c1 := newCollector(1, 1, 2, asm, 0, nil)
	c2 := newCollector(1, 1, 2, asm, 2, nil)
	c1.deliver(tensor.FromSlice(1, 2, []float32{1, 2}), nil)
	select {
	case <-futureDone(asm.future):
		t.Fatal("emb future completed before all tables delivered")
	default:
	}
	c2.deliver(tensor.FromSlice(1, 2, []float32{3, 4}), nil)
	emb, err := asm.future.Wait()
	if err != nil {
		t.Fatal(err)
	}
	want := []float32{1, 2, 3, 4}
	for i, w := range want {
		if emb.Data[i] != w {
			t.Fatalf("emb = %v", emb.Data)
		}
	}
}

// futureDone adapts Future.Wait into a selectable channel.
func futureDone(f *nn.Future) <-chan struct{} {
	ch := make(chan struct{})
	go func() {
		f.Wait()
		close(ch)
	}()
	return ch
}

func TestLocalizeBags(t *testing.T) {
	bags := []embedding.Bag{
		{Indices: []int32{0, 1, 2, 3, 4, 5}},
		{Indices: []int32{7}},
	}
	out := localizeBags(bags, 1, 3) // indices ≡1 mod 3: 1, 4, 7
	if len(out) != 2 {
		t.Fatal("bag count changed")
	}
	if got := out[0].Indices; len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Errorf("bag0 = %v (want local [0 1] from 1,4)", got)
	}
	if got := out[1].Indices; len(got) != 1 || got[0] != 2 {
		t.Errorf("bag1 = %v (want [2] from 7)", got)
	}
}

func TestSparseShardHandle(t *testing.T) {
	rec := trace.NewRecorder("sparse1", 1024)
	sh := NewSparseShard("sparse1", rec)
	tab := embedding.NewDense(8, 2)
	for r := 0; r < 8; r++ {
		tab.Row(r)[0] = float32(r)
	}
	sh.AddTable(5, tab)
	if sh.NumTables() != 1 || sh.Bytes() != tab.Bytes() {
		t.Fatal("shard accounting wrong")
	}

	req := &SparseRequest{Net: "net1", Entries: []SparseEntry{{
		TableID: 5, NumParts: 1,
		Bags: []embedding.Bag{{Indices: []int32{1, 2}}, {Indices: []int32{7}}},
	}}}
	out, err := sh.Handle(trace.Context{TraceID: 9, CallID: 4}, "sparse.run", EncodeSparseRequest(req))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := DecodeSparseResponse(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Entries) != 1 || resp.Entries[0].Rows != 2 || resp.Entries[0].Cols != 2 {
		t.Fatalf("resp shape wrong: %+v", resp.Entries)
	}
	if resp.Entries[0].Data[0] != 3 { // rows 1+2 pooled
		t.Errorf("pooled = %v", resp.Entries[0].Data)
	}
	// Spans carry the call context for cross-layer attribution.
	var sawSerde, sawOp bool
	for _, sp := range rec.Spans() {
		if sp.TraceID != 9 || sp.CallID != 4 {
			t.Errorf("span missing context: %+v", sp)
		}
		switch sp.Layer {
		case trace.LayerSerDe:
			sawSerde = true
		case trace.LayerOp:
			sawOp = true
			if sp.Kind != "Sparse" {
				t.Errorf("op span kind = %s", sp.Kind)
			}
		}
	}
	if !sawSerde || !sawOp {
		t.Error("missing serde/op spans")
	}
}

func TestSparseShardRejectsUnknownTable(t *testing.T) {
	sh := NewSparseShard("s", trace.NewRecorder("s", 64))
	req := &SparseRequest{Net: "n", Entries: []SparseEntry{{TableID: 1, NumParts: 1, Bags: []embedding.Bag{{}}}}}
	if _, err := sh.Handle(trace.Context{}, "sparse.run", EncodeSparseRequest(req)); err == nil || !strings.Contains(err.Error(), "does not hold") {
		t.Errorf("err = %v", err)
	}
	if _, err := sh.Handle(trace.Context{}, "bogus", nil); err == nil {
		t.Error("unknown method should fail")
	}
	if _, err := sh.Handle(trace.Context{}, "sparse.run", []byte{1}); err == nil {
		t.Error("garbage body should fail")
	}
}

func TestMaterializeShards(t *testing.T) {
	cfg := tinyConfig()
	m := model.Build(cfg)
	plan, err := sharding.CapacityBalanced(&cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	recs := []*trace.Recorder{
		trace.NewRecorder("sparse1", 8), trace.NewRecorder("sparse2", 8), trace.NewRecorder("sparse3", 8),
	}
	shards, err := MaterializeShards(m, plan, recs)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	var bytes int64
	for _, sh := range shards {
		total += sh.NumTables()
		bytes += sh.Bytes()
	}
	if total != len(cfg.Tables) {
		t.Errorf("%d tables materialized, want %d", total, len(cfg.Tables))
	}
	if bytes != m.SparseTableBytes() {
		t.Errorf("shard bytes %d != model %d", bytes, m.SparseTableBytes())
	}
}

func TestMaterializeShardsWithPartitions(t *testing.T) {
	cfg := model.DRM3()
	for i := range cfg.Tables {
		if i == 0 {
			cfg.Tables[i].Rows = 1024
		} else {
			cfg.Tables[i].Rows = 16
		}
	}
	m := model.Build(cfg)
	plan, err := sharding.NSBP(&cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	recs := make([]*trace.Recorder, 4)
	for i := range recs {
		recs[i] = trace.NewRecorder(ServiceName(i+1), 8)
	}
	shards, err := MaterializeShards(m, plan, recs)
	if err != nil {
		t.Fatal(err)
	}
	// Partitioned rows must sum to the original table.
	var partRows int
	for _, sh := range shards {
		for key, tab := range shardTables(sh) {
			if key.id == 0 {
				partRows += tab.NumRows()
			}
		}
	}
	if partRows < 1024 {
		t.Errorf("partition rows %d < original 1024", partRows)
	}
}

// shardTables exposes the private map for the materialization test.
func shardTables(s *SparseShard) map[tableKey]embedding.Table { return s.tables }

func TestMaterializeErrors(t *testing.T) {
	cfg := tinyConfig()
	m := model.Build(cfg)
	if _, err := MaterializeShards(m, sharding.Singular(&cfg), nil); err == nil {
		t.Error("singular plan should fail")
	}
	plan, _ := sharding.CapacityBalanced(&cfg, 2)
	if _, err := MaterializeShards(m, plan, []*trace.Recorder{trace.NewRecorder("x", 1)}); err == nil {
		t.Error("recorder count mismatch should fail")
	}
}

func TestEngineValidation(t *testing.T) {
	cfg := tinyConfig()
	m := model.Build(cfg)
	if _, err := NewEngine(m, sharding.Singular(&cfg), EngineConfig{}); err == nil {
		t.Error("missing recorder should fail")
	}
	rec := trace.NewRecorder("main", 64)
	plan, _ := sharding.CapacityBalanced(&cfg, 2)
	if _, err := NewEngine(m, plan, EngineConfig{Recorder: rec}); err == nil {
		t.Error("distributed plan without ClientFor should fail")
	}
	bad := &sharding.Plan{ModelName: cfg.Name, Strategy: sharding.StrategyCapacity, NumShards: 1}
	if _, err := NewEngine(m, bad, EngineConfig{Recorder: rec}); err == nil {
		t.Error("invalid plan should fail")
	}
}

func TestEngineRejectsMalformedRequests(t *testing.T) {
	cfg := tinyConfig()
	m := model.Build(cfg)
	rec := trace.NewRecorder("main", 1<<14)
	eng, err := NewEngine(m, sharding.Singular(&cfg), EngineConfig{Recorder: rec})
	if err != nil {
		t.Fatal(err)
	}
	gen := workload.NewGenerator(cfg, 1)
	good := FromWorkload(gen.Next())

	// Zero items.
	bad := *good
	bad.Items = 0
	if _, err := eng.Execute(trace.Context{TraceID: 1}, &bad); err == nil {
		t.Error("zero items should fail")
	}
	// Missing dense net.
	bad2 := *good
	bad2.Dense = map[string]*tensor.Matrix{}
	if _, err := eng.Execute(trace.Context{TraceID: 2}, &bad2); err == nil {
		t.Error("missing dense should fail")
	}
	// Bags length mismatch.
	bad3 := *good
	bad3.Bags = map[int32][]embedding.Bag{}
	if _, err := eng.Execute(trace.Context{TraceID: 3}, &bad3); err == nil {
		t.Error("missing bags should fail")
	}
}

func TestEngineSingularDeterministic(t *testing.T) {
	cfg := tinyConfig()
	m := model.Build(cfg)
	rec := trace.NewRecorder("main", 1<<16)
	eng, err := NewEngine(m, sharding.Singular(&cfg), EngineConfig{Recorder: rec})
	if err != nil {
		t.Fatal(err)
	}
	req := FromWorkload(workload.NewGenerator(cfg, 2).Next())
	s1, err := eng.Execute(trace.Context{TraceID: 1}, req)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := eng.Execute(trace.Context{TraceID: 2}, req)
	if err != nil {
		t.Fatal(err)
	}
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatal("same request must score identically")
		}
	}
	for _, s := range s1 {
		if s < 0 || s > 1 {
			t.Errorf("score %v outside sigmoid range", s)
		}
	}
}

func TestEngineBatchSplitEquivalence(t *testing.T) {
	// Scores must not depend on the batch size.
	cfg := tinyConfig()
	m := model.Build(cfg)
	req := FromWorkload(workload.NewGenerator(cfg, 3).Next())
	var ref []float32
	for _, b := range []int{1, 2, 100} {
		rec := trace.NewRecorder("main", 1<<16)
		eng, err := NewEngine(m, sharding.Singular(&cfg), EngineConfig{Recorder: rec, BatchSize: b})
		if err != nil {
			t.Fatal(err)
		}
		got, err := eng.Execute(trace.Context{TraceID: uint64(b)}, req)
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = got
			continue
		}
		for i := range got {
			if got[i] != ref[i] {
				t.Fatalf("batch %d: score %d differs: %v vs %v", b, i, got[i], ref[i])
			}
		}
	}
}

func TestPickInteract(t *testing.T) {
	tables := []model.TableSpec{
		{ID: 0, Dim: 16}, {ID: 1, Dim: 8}, {ID: 2, Dim: 8}, {ID: 3, Dim: 8},
	}
	got := pickInteract(tables, 2)
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("pickInteract = %v, want [1 2] (tail dim 8)", got)
	}
	if pickInteract(nil, 3) != nil {
		t.Error("empty tables should yield nil")
	}
	if pickInteract(tables, 0) != nil {
		t.Error("k=0 should yield nil")
	}
}

func TestFromWorkload(t *testing.T) {
	cfg := tinyConfig()
	req := workload.NewGenerator(cfg, 4).Next()
	wire := FromWorkload(req)
	if wire.ID != req.ID || int(wire.Items) != req.Items {
		t.Fatal("header mismatch")
	}
	if len(wire.Bags) != len(req.Bags) {
		t.Fatal("bags mismatch")
	}
	rng := rand.New(rand.NewSource(1))
	_ = rng
}

func TestServiceName(t *testing.T) {
	if ServiceName(3) != "sparse3" {
		t.Errorf("ServiceName(3) = %q", ServiceName(3))
	}
}

func TestExecuteBatchMatchesExecute(t *testing.T) {
	// A coalesced execution must demux to exactly the scores each request
	// gets through the unbatched path.
	cfg := tinyConfig()
	m := model.Build(cfg)
	rec := trace.NewRecorder("main", 1<<16)
	eng, err := NewEngine(m, sharding.Singular(&cfg), EngineConfig{Recorder: rec})
	if err != nil {
		t.Fatal(err)
	}
	gen := workload.NewGenerator(cfg, 5)
	var items []BatchItem
	var want [][]float32
	for i := 0; i < 5; i++ {
		req := FromWorkload(gen.Next())
		scores, err := eng.Execute(trace.Context{TraceID: uint64(100 + i)}, req)
		if err != nil {
			t.Fatal(err)
		}
		items = append(items, BatchItem{Ctx: trace.Context{TraceID: uint64(i + 1)}, Req: req})
		want = append(want, scores)
	}
	got, err := eng.ExecuteBatch(items)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(items) {
		t.Fatalf("demuxed %d outputs for %d requests", len(got), len(items))
	}
	for i := range got {
		if len(got[i]) != int(items[i].Req.Items) {
			t.Fatalf("request %d: %d scores for %d items", i, len(got[i]), items[i].Req.Items)
		}
		for j := range got[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("request %d item %d: batched %v != unbatched %v", i, j, got[i][j], want[i][j])
			}
		}
	}
	// Each coalesced request must carry its own execution span.
	var coalesced int
	for _, s := range rec.Spans() {
		if s.Name == "rank/coalesced" {
			coalesced++
		}
	}
	if coalesced != len(items) {
		t.Errorf("recorded %d rank/coalesced spans, want %d", coalesced, len(items))
	}
}

func TestExecuteBatchEdgeCases(t *testing.T) {
	cfg := tinyConfig()
	m := model.Build(cfg)
	rec := trace.NewRecorder("main", 1<<16)
	eng, err := NewEngine(m, sharding.Singular(&cfg), EngineConfig{Recorder: rec})
	if err != nil {
		t.Fatal(err)
	}
	if out, err := eng.ExecuteBatch(nil); out != nil || err != nil {
		t.Errorf("empty batch = %v, %v", out, err)
	}
	req := FromWorkload(workload.NewGenerator(cfg, 6).Next())
	single, err := eng.ExecuteBatch([]BatchItem{{Ctx: trace.Context{TraceID: 1}, Req: req}})
	if err != nil || len(single) != 1 || len(single[0]) != int(req.Items) {
		t.Fatalf("single-item batch = %v, %v", single, err)
	}
	bad := &RankingRequest{ID: 99, Items: 0}
	if _, err := eng.ExecuteBatch([]BatchItem{{Req: req}, {Req: bad}}); err == nil {
		t.Error("malformed member must fail batch validation")
	}
}
