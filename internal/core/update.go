package core

import (
	"fmt"
	"sort"

	"repro/internal/embedding"
	"repro/internal/quant"
	"repro/internal/trace"
)

// Shard-side model freshness: versioned delta staging and atomic commit.
// An update version stages a *clone* of each touched table's cold tier
// (so untouched rows carry over bit-exactly, and mmap-backed storage is
// never written through), overlays the delta rows, and cuts the whole
// set over in one epoch bump. Table storage stays immutable: readers in
// flight keep the old copy, the next request sees the new one.

// cloneStaged copies a table's cold tier into fresh staging storage in
// the same encoding. The source may be mmap-backed; the clone is heap.
func cloneStaged(t embedding.Table) (*stagedTable, error) {
	switch cold := coldOf(t).(type) {
	case *embedding.Dense:
		st, err := newStaged(TierEncFP32, int32(cold.NumRows()), int32(cold.Dim()))
		if err != nil {
			return nil, err
		}
		copy(st.dense.Data, cold.Data)
		return st, nil
	case *embedding.FP16:
		enc := cold.Encoding()
		st, err := newStaged(TierEncFP16, int32(enc.Rows), int32(enc.Cols))
		if err != nil {
			return nil, err
		}
		copy(st.fp16.Data, enc.Data)
		return st, nil
	case *embedding.Quantized:
		enc := cold.Encoding()
		e := TierEncInt8
		if enc.Bits == quant.Bits4 {
			e = TierEncInt4
		}
		st, err := newStaged(e, int32(enc.Rows), int32(enc.Cols))
		if err != nil {
			return nil, err
		}
		copy(st.q.Scales, enc.Scales)
		copy(st.q.Biases, enc.Biases)
		copy(st.q.Packed, enc.Packed)
		return st, nil
	}
	return nil, fmt.Errorf("core: cannot stage updates over %T", t)
}

// ModelVersion returns the highest committed update version (0 before
// any publish) — the freshness gauge the publisher's lag probe reads.
func (s *SparseShard) ModelVersion() uint64 { return s.modelVersion.Load() }

func (s *SparseShard) handleUpdateBegin(ctx trace.Context, body []byte) ([]byte, error) {
	m, err := DecodeUpdateBegin(body)
	if err != nil {
		return nil, err
	}
	key := tableKey{id: int(m.TableID), part: int(m.PartIndex)}
	s.mu.RLock()
	tab, ok := s.tables[key]
	s.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("core: %s: update begin for table %d part %d not held", s.ShardName, m.TableID, m.PartIndex)
	}
	cold := coldOf(tab)
	enc, err := tableEnc(tab)
	if err != nil {
		return nil, fmt.Errorf("core: %s: %w", s.ShardName, err)
	}
	if int(m.Rows) != cold.NumRows() || int(m.Dim) != cold.Dim() || m.Enc != enc {
		return nil, fmt.Errorf("core: %s: update begin %dx%d enc %d for table %d part %d held as %dx%d enc %d",
			s.ShardName, m.Rows, m.Dim, m.Enc, m.TableID, m.PartIndex, cold.NumRows(), cold.Dim(), enc)
	}
	start := s.rec.Now()
	// Clone outside the lock: storage is immutable, so the copy is
	// consistent even while lookups proceed.
	stage, err := cloneStaged(tab)
	if err != nil {
		return nil, fmt.Errorf("core: %s: %w", s.ShardName, err)
	}
	s.mu.Lock()
	if cur, held := s.tables[key]; !held || cur != tab {
		// A migration or concurrent commit replaced the copy mid-clone;
		// the clone may be stale. The publisher retries against the new
		// table set.
		s.mu.Unlock()
		return nil, fmt.Errorf("core: %s: table %d part %d changed during update begin; retry", s.ShardName, m.TableID, m.PartIndex)
	}
	vm := s.updates[m.Version]
	if vm == nil {
		vm = make(map[tableKey]*stagedTable)
		s.updates[m.Version] = vm
	}
	vm[key] = stage
	s.mu.Unlock()
	s.rec.Record(trace.Span{
		TraceID: ctx.TraceID, CallID: ctx.CallID, Layer: trace.LayerMigration,
		Name:  fmt.Sprintf("update/begin/v%d/t%d.%d", m.Version, m.TableID, m.PartIndex),
		Start: start, Dur: s.rec.Now().Sub(start),
	})
	s.met.updateBegins.Inc()
	return nil, nil
}

func (s *SparseShard) handleUpdateRows(ctx trace.Context, body []byte) ([]byte, error) {
	m, err := DecodeUpdateRows(body)
	if err != nil {
		return nil, err
	}
	c := &m.Chunk
	key := tableKey{id: int(c.TableID), part: int(c.PartIndex)}
	s.mu.RLock()
	stage := s.updates[m.Version][key]
	s.mu.RUnlock()
	if stage == nil {
		return nil, fmt.Errorf("core: %s: update rows v%d for table %d part %d without begin", s.ShardName, m.Version, c.TableID, c.PartIndex)
	}
	if int(c.Dim) != stage.dim() {
		return nil, fmt.Errorf("core: %s: update rows dim %d for staged dim %d", s.ShardName, c.Dim, stage.dim())
	}
	if c.Enc != stage.enc {
		return nil, fmt.Errorf("core: %s: update rows encoding %d for staged encoding %d", s.ShardName, c.Enc, stage.enc)
	}
	start := s.rec.Now()
	// Row ranges of one version/table arrive sequentially from the
	// publisher and land in preallocated staging, so writes need no lock.
	if stage.enc == TierEncFP32 {
		if err := stage.writeF32(int(c.RowStart), c.Data); err != nil {
			return nil, fmt.Errorf("core: %s: %w", s.ShardName, err)
		}
	} else if _, err := stage.writeRaw(int(c.RowStart), c.Raw); err != nil {
		return nil, fmt.Errorf("core: %s: %w", s.ShardName, err)
	}
	s.rec.Record(trace.Span{
		TraceID: ctx.TraceID, CallID: ctx.CallID, Layer: trace.LayerMigration,
		Name:  fmt.Sprintf("update/rows/v%d/t%d.%d", m.Version, c.TableID, c.PartIndex),
		Start: start, Dur: s.rec.Now().Sub(start),
	})
	s.met.updateRows.Inc()
	s.met.updateBytes.Add(int64(4*len(c.Data) + len(c.Raw)))
	return nil, nil
}

func (s *SparseShard) handleUpdateCommit(ctx trace.Context, body []byte) ([]byte, error) {
	m, err := DecodeUpdateCommit(body)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	vm, ok := s.updates[m.Version]
	if !ok {
		s.mu.Unlock()
		return nil, fmt.Errorf("core: %s: update commit v%d without begin", s.ShardName, m.Version)
	}
	delete(s.updates, m.Version)
	keys := make([]tableKey, 0, len(vm))
	for key := range vm {
		keys = append(keys, key)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].id != keys[j].id {
			return keys[i].id < keys[j].id
		}
		return keys[i].part < keys[j].part
	})
	installed := 0
	for _, key := range keys {
		if _, held := s.tables[key]; !held {
			// Migrated away (or released) since begin: the delta reaches
			// the new holder through its own replica stream; installing
			// here would resurrect a dropped copy.
			continue
		}
		tab, err := vm[key].table()
		if err != nil {
			s.mu.Unlock()
			return nil, fmt.Errorf("core: %s: update commit v%d: %w", s.ShardName, m.Version, err)
		}
		// Fresh rows enter the cold tier; the hot-row cache restarts
		// empty with the new copy (a cache belongs to one table copy).
		s.tables[key] = s.tierWrap(key.id, tab)
		installed++
	}
	s.mu.Unlock()
	epoch := s.epoch.Add(1)
	for {
		cur := s.modelVersion.Load()
		if m.Version <= cur || s.modelVersion.CompareAndSwap(cur, m.Version) {
			break
		}
	}
	s.retier()
	s.met.updateCommits.Inc()
	s.rec.Record(trace.Span{
		TraceID: ctx.TraceID, CallID: ctx.CallID, Layer: trace.LayerMigration,
		Name:  fmt.Sprintf("update/commit/v%d", m.Version),
		Start: s.rec.Now(),
	})
	return EncodeUpdateCommitResponse(&UpdateCommitResponse{
		Epoch: epoch, Version: s.modelVersion.Load(), Tables: int32(installed),
	}), nil
}

// handleUpdateAbort discards a version's staged tables — the cleanup a
// publisher fires when a stream fails partway. Aborting an unknown
// version is a no-op so cleanup is safe to fire unconditionally.
func (s *SparseShard) handleUpdateAbort(body []byte) ([]byte, error) {
	m, err := DecodeUpdateCommit(body)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	delete(s.updates, m.Version)
	s.mu.Unlock()
	return nil, nil
}
