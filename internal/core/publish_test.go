package core

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/rpc"
	"repro/internal/trace"
	"repro/internal/workload"
)

// publisherFixture wires a Publisher over the migration fixture's live
// 2-shard RPC deployment plus a distributed engine routed through the
// same connections.
func publisherFixture(t *testing.T) (*migrationFixture, *Engine, *Publisher, *obs.Registry) {
	t.Helper()
	f := newMigrationFixture(t)
	rec := trace.NewRecorder("main", 1<<14)
	eng, err := NewEngine(f.m, f.plan, EngineConfig{Recorder: rec, ClientFor: func(service string) (rpc.Caller, error) {
		for i, sh := range f.shards {
			if sh.ShardName == service {
				return f.calls[i], nil
			}
		}
		return nil, fmt.Errorf("no client for %s", service)
	}})
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	pub := &Publisher{
		Engine: eng, Rec: rec, Obs: reg, ChunkRows: 2,
		Shards: map[int][]ShardEndpoint{
			1: {{Service: f.shards[0].ShardName, Addr: f.srvs[0].Addr(), Caller: f.calls[0]}},
			2: {{Service: f.shards[1].ShardName, Addr: f.srvs[1].Addr(), Caller: f.calls[1]}},
		},
	}
	return f, eng, pub, reg
}

// modelRows reads logical rows out of the model's fp32 tables — delta
// payloads are always fp32, whatever the shards' encoding.
func modelRows(m *model.Model, id int, rows []int32) []float32 {
	tab := m.Tables[id]
	out := make([]float32, 0, len(rows)*tab.Dim())
	buf := make([]float32, tab.Dim())
	for _, r := range rows {
		for i := range buf {
			buf[i] = 0
		}
		tab.AccumulateRow(buf, int(r))
		out = append(out, buf...)
	}
	return out
}

// TestPublisherStreamsAndCommits drives the full publish path against
// live shard servers: identity deltas for one table per shard, chunked
// at 2 rows to force run splitting, must commit on both endpoints,
// advance their epochs and model versions, move the publish gauges, and
// leave engine scores byte-identical.
func TestPublisherStreamsAndCommits(t *testing.T) {
	f, eng, pub, reg := publisherFixture(t)

	gen := workload.NewGenerator(f.m.Config, 7)
	req := FromWorkload(gen.Next())
	before, err := eng.Execute(trace.Context{TraceID: 1}, req)
	if err != nil {
		t.Fatal(err)
	}

	ds := &DeltaSet{Version: 3}
	for si := range f.plan.Shards {
		id := f.plan.Shards[si].Tables[0]
		// Non-consecutive logical rows split the stream into several
		// update.rows runs under ChunkRows=2.
		rows := []int32{0, 1, 2, 4, int32(f.m.Config.Tables[id].Rows - 1)}
		ds.Tables = append(ds.Tables, TableDelta{TableID: id, Rows: rows, Data: modelRows(f.m, id, rows)})
	}
	report, err := pub.Publish(ds)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Events) != 2 {
		t.Fatalf("publish hit %d endpoints, want 2: %v", len(report.Events), report)
	}
	if report.RowsSent != 10 || report.Bytes == 0 {
		t.Fatalf("report rows/bytes off: %v", report)
	}
	if report.DenseSwapped {
		t.Fatalf("no dense payload, but DenseSwapped: %v", report)
	}
	if !strings.Contains(report.String(), "publish v3: 2 endpoints") {
		t.Fatalf("report string: %q", report.String())
	}
	for i, ev := range report.Events {
		if ev.Version != 3 || ev.Tables != 1 || ev.RowsSent != 5 || ev.Epoch == 0 {
			t.Fatalf("event %d: %+v", i, ev)
		}
	}
	for _, sh := range f.shards {
		if sh.ModelVersion() != 3 {
			t.Fatalf("%s model version %d, want 3", sh.ShardName, sh.ModelVersion())
		}
	}
	snap := reg.Snapshot()
	if snap.Gauge("publish.version") != 3 || snap.Counter("publish.count") != 1 || snap.Counter("publish.rows") != 10 {
		t.Fatalf("publish gauges: version=%d count=%d rows=%d",
			snap.Gauge("publish.version"), snap.Counter("publish.count"), snap.Counter("publish.rows"))
	}

	after, err := eng.Execute(trace.Context{TraceID: 2}, req)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(float32sBytes(before), float32sBytes(after)) {
		t.Fatal("identity publish changed scores")
	}

	// A dense swap with the engine's own parameters rides version 4 and
	// must also leave scores untouched.
	dense := &DeltaSet{Version: 4, Dense: f.m.NetParams}
	report, err = pub.Publish(dense)
	if err != nil {
		t.Fatal(err)
	}
	if !report.DenseSwapped || len(report.Events) != 0 {
		t.Fatalf("dense-only publish: %v", report)
	}
	swapped, err := eng.Execute(trace.Context{TraceID: 3}, req)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(float32sBytes(before), float32sBytes(swapped)) {
		t.Fatal("identity dense swap changed scores")
	}
}

// TestPublisherRejectsMalformedDeltas covers the routing and shape
// guards: unplaced tables, ragged payloads, out-of-range rows, and dim
// mismatches must all fail without committing a version.
func TestPublisherRejectsMalformedDeltas(t *testing.T) {
	f, _, pub, _ := publisherFixture(t)
	id := f.plan.Shards[0].Tables[0]
	dim := f.m.Tables[id].Dim()
	cases := []struct {
		name string
		ds   *DeltaSet
		want string
	}{
		{"unplaced table", &DeltaSet{Version: 9, Tables: []TableDelta{
			{TableID: 9999, Rows: []int32{0}, Data: make([]float32, dim)},
		}}, "not placed"},
		{"ragged payload", &DeltaSet{Version: 9, Tables: []TableDelta{
			{TableID: id, Rows: []int32{0, 1}, Data: make([]float32, dim+1)},
		}}, "values for"},
		{"row out of range", &DeltaSet{Version: 9, Tables: []TableDelta{
			{TableID: id, Rows: []int32{int32(f.m.Config.Tables[id].Rows)}, Data: make([]float32, dim)},
		}}, "outside"},
		{"dim mismatch", &DeltaSet{Version: 9, Tables: []TableDelta{
			{TableID: id, Rows: []int32{0}, Data: make([]float32, dim*2)},
		}}, "dim"},
	}
	for _, tc := range cases {
		if _, err := pub.Publish(tc.ds); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: got %v, want %q", tc.name, err, tc.want)
		}
	}
	for _, sh := range f.shards {
		if sh.ModelVersion() != 0 {
			t.Fatalf("%s committed version %d from a rejected delta", sh.ShardName, sh.ModelVersion())
		}
	}
}
