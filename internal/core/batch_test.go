package core

import (
	"sync"
	"testing"

	"repro/internal/sharding"
	"repro/internal/trace"
	"repro/internal/workload"

	"repro/internal/model"
)

// TestExecuteBatchResponsesIndependentlyMutable is the demux-aliasing
// regression: each coalesced response must own its storage, so a caller
// mutating (or growing) one response cannot corrupt a neighbor's scores,
// and retaining one response does not pin the whole batch's array.
func TestExecuteBatchResponsesIndependentlyMutable(t *testing.T) {
	cfg := tinyConfig()
	m := model.Build(cfg)
	rec := trace.NewRecorder("main", 1<<16)
	eng, err := NewEngine(m, sharding.Singular(&cfg), EngineConfig{Recorder: rec})
	if err != nil {
		t.Fatal(err)
	}
	gen := workload.NewGenerator(cfg, 11)
	var items []BatchItem
	for i := 0; i < 4; i++ {
		items = append(items, BatchItem{Ctx: trace.Context{TraceID: uint64(i + 1)}, Req: FromWorkload(gen.Next())})
	}
	got, err := eng.ExecuteBatch(items)
	if err != nil {
		t.Fatal(err)
	}
	want := make([][]float32, len(got))
	for i := range got {
		want[i] = append([]float32(nil), got[i]...)
	}

	// Stomp response 0 in place and grow it to (what would be) its
	// neighbor's region under full-capacity aliasing.
	for j := range got[0] {
		got[0][j] = -1e30
	}
	got[0] = append(got[0], -2e30, -2e30)

	for i := 1; i < len(got); i++ {
		for j := range got[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("response %d item %d corrupted by writes to response 0: %v != %v",
					i, j, got[i][j], want[i][j])
			}
		}
	}
}

// TestArenaReuseNoLiveAliasing runs consecutive (and concurrent)
// executions through one engine: scores returned by an earlier execution
// must not change when later executions reuse the pooled arenas — the
// no-live-blob-aliasing contract, and a -race target for the arena
// lifecycle.
func TestArenaReuseNoLiveAliasing(t *testing.T) {
	cfg := tinyConfig()
	m := model.Build(cfg)
	rec := trace.NewRecorder("main", 1<<16)
	eng, err := NewEngine(m, sharding.Singular(&cfg), EngineConfig{Recorder: rec})
	if err != nil {
		t.Fatal(err)
	}
	gen := workload.NewGenerator(cfg, 12)
	reqA := FromWorkload(gen.Next())
	reqB := FromWorkload(gen.Next())

	first, err := eng.Execute(trace.Context{TraceID: 1}, reqA)
	if err != nil {
		t.Fatal(err)
	}
	snapshot := append([]float32(nil), first...)
	for i := 0; i < 8; i++ {
		if _, err := eng.Execute(trace.Context{TraceID: uint64(2 + i)}, reqB); err != nil {
			t.Fatal(err)
		}
	}
	for i := range first {
		if first[i] != snapshot[i] {
			t.Fatalf("score %d changed from %v to %v after later executions reused the arena",
				i, snapshot[i], first[i])
		}
	}

	// Concurrent executions each draw their own arena from the pool.
	var wg sync.WaitGroup
	results := make([][]float32, 8)
	for g := 0; g < len(results); g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			out, err := eng.Execute(trace.Context{TraceID: uint64(100 + g)}, reqA)
			if err != nil {
				t.Error(err)
				return
			}
			results[g] = out
		}(g)
	}
	wg.Wait()
	for g, out := range results {
		for i := range out {
			if out[i] != snapshot[i] {
				t.Fatalf("concurrent execution %d score %d = %v, want %v", g, i, out[i], snapshot[i])
			}
		}
	}
}

// TestBlobScheduleBuiltAndPacked pins that compilation produces an arena
// schedule covering the dense stack (packing behavior itself is covered
// by the nn arena tests).
func TestBlobScheduleBuiltAndPacked(t *testing.T) {
	cfg := tinyConfig()
	m := model.Build(cfg)
	rec := trace.NewRecorder("main", 1<<14)
	eng, err := NewEngine(m, sharding.Singular(&cfg), EngineConfig{Recorder: rec})
	if err != nil {
		t.Fatal(err)
	}
	prog := eng.prog.Load()
	if prog.arenas == nil {
		t.Fatal("compiled program has no arena pool")
	}
	sched, err := buildSchedule(prog)
	if err != nil {
		t.Fatal(err)
	}
	if sched.Slots() < 5 {
		t.Errorf("schedule covers %d blobs; expected the dense stack (>=5)", sched.Slots())
	}
	a := prog.arenas.Get(4)
	if a == nil {
		t.Fatal("arena pool returned nil")
	}
	prog.arenas.Put(a)
}
