package core

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/embedding"
	"repro/internal/model"
	"repro/internal/quant"
	"repro/internal/rpc"
	"repro/internal/sharding"
	"repro/internal/trace"
)

// localCaller adapts a Handler into an in-process rpc.Caller so forward
// hops in these tests need no TCP server.
type localCaller struct{ h rpc.Handler }

func (l *localCaller) Go(req *rpc.Request) *rpc.Call {
	call := &rpc.Call{Req: req, Done: make(chan struct{})}
	body, err := l.h.Handle(trace.Context{TraceID: req.TraceID, CallID: req.CallID}, req.Method, req.Body)
	if err != nil {
		call.Err = err
	} else {
		call.Resp = &rpc.Response{CallID: req.CallID, Body: body}
	}
	close(call.Done)
	return call
}

func (l *localCaller) Close() error { return nil }

// tierConfigFor builds a shard tier config that quantizes every table of
// the tiny model (whose tables are all below the planner's default
// MinTableBytes) at the given precision.
func tierConfigFor(cfg *model.Config, prec sharding.Precision, cacheMB float64) *TierConfig {
	return &TierConfig{
		CacheMB: cacheMB,
		Plan:    sharding.PlanTiers(cfg, sharding.TierOptions{ColdPrecision: prec, MinTableBytes: 1}),
	}
}

// newTieredMigrationFixture is newMigrationFixture with the tiered store
// enabled on both shards.
func newTieredMigrationFixture(t *testing.T, prec sharding.Precision, cacheMB float64) *migrationFixture {
	t.Helper()
	cfg := tinyConfig()
	m := model.Build(cfg)
	plan, err := sharding.LoadBalanced(&cfg, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	recs := []*trace.Recorder{trace.NewRecorder("sparse1", 1<<14), trace.NewRecorder("sparse2", 1<<14)}
	shards, err := MaterializeShardsTiered(m, plan, recs, tierConfigFor(&cfg, prec, cacheMB))
	if err != nil {
		t.Fatal(err)
	}
	f := &migrationFixture{m: m, plan: plan, shards: shards}
	t.Cleanup(func() {
		for _, sh := range f.shards {
			sh.Close()
		}
	})
	return f
}

// migrateTableEnc drives the full wire protocol for one whole table from
// shard 1 to shard 2, carrying the source's cold-tier encoding.
func (f *migrationFixture) migrateTableEnc(t *testing.T, id int) {
	t.Helper()
	src, dst := f.shards[0], f.shards[1]
	ctx := trace.Context{}
	probe, err := src.Handle(ctx, MethodMigrateRead, EncodeMigrateRead(&MigrateRead{TableID: int32(id)}))
	if err != nil {
		t.Fatal(err)
	}
	shape, err := DecodeMigrateReadResponse(probe)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dst.Handle(ctx, MethodMigrateBegin, EncodeMigrateBegin(&MigrateBegin{
		TableID: int32(id), NumParts: 1, Rows: shape.Rows, Dim: shape.Dim, Enc: shape.Enc,
	})); err != nil {
		t.Fatal(err)
	}
	const chunk = 5 // deliberately not a divisor of Rows
	for row := int32(0); row < shape.Rows; row += chunk {
		count := int32(chunk)
		if row+count > shape.Rows {
			count = shape.Rows - row
		}
		out, err := src.Handle(ctx, MethodMigrateRead, EncodeMigrateRead(&MigrateRead{
			TableID: int32(id), RowStart: row, RowCount: count,
		}))
		if err != nil {
			t.Fatal(err)
		}
		rr, err := DecodeMigrateReadResponse(out)
		if err != nil {
			t.Fatal(err)
		}
		if rr.Enc != shape.Enc {
			t.Fatalf("encoding changed mid-stream: %d -> %d", shape.Enc, rr.Enc)
		}
		if _, err := dst.Handle(ctx, MethodMigrateChunk, EncodeMigrateChunk(&MigrateChunk{
			TableID: int32(id), RowStart: row, Dim: shape.Dim, Enc: shape.Enc,
			Data: rr.Data, Raw: rr.Raw,
		})); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := dst.Handle(ctx, MethodMigrateCommit, EncodeMigrateCommit(&MigrateCommit{TableID: int32(id)})); err != nil {
		t.Fatal(err)
	}
}

// TestTieredMigrationIdentity walks an encoded (int8 + cached) table
// through the cutover states and requires byte-identical pooled results
// throughout: encoded rows stream verbatim, the committed copy starts
// with a cold cache, and the double-read window serves from the
// retained tiered copy.
func TestTieredMigrationIdentity(t *testing.T) {
	for _, prec := range []sharding.Precision{sharding.PrecisionFP32, sharding.PrecisionFP16, sharding.PrecisionInt8} {
		t.Run(string(prec), func(t *testing.T) {
			f := newTieredMigrationFixture(t, prec, 1)
			src, dst := f.shards[0], f.shards[1]
			id := f.plan.Shards[0].Tables[0]
			ctx := trace.Context{TraceID: 11}
			body := f.runRequest(t, 42)

			// Warm the source cache so migration must cope with live
			// cached state.
			before, err := src.Handle(ctx, MethodSparseRun, body)
			if err != nil {
				t.Fatal(err)
			}
			if again, err := src.Handle(ctx, MethodSparseRun, body); err != nil || !bytes.Equal(before, again) {
				t.Fatalf("warm-cache replay diverged (err %v)", err)
			}

			f.migrateTableEnc(t, id)

			// The committed copy's encoding must match the source's.
			srcStats, dstStats := src.TierSnapshot(), dst.TierSnapshot()
			switch prec {
			case sharding.PrecisionInt8:
				if dstStats.Int8 == 0 {
					t.Fatalf("destination has no int8 tables after migration: %+v", dstStats)
				}
			case sharding.PrecisionFP16:
				if dstStats.FP16 == 0 {
					t.Fatalf("destination has no fp16 tables after migration: %+v", dstStats)
				}
			}
			_ = srcStats

			// Double-read window: source still serves identically.
			during, err := src.Handle(ctx, MethodSparseRun, body)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(before, during) {
				t.Fatal("double-read during cutover diverged")
			}

			// Source forwards to the destination; results still identical.
			caller := &localCaller{h: dst}
			src.BeginForward(id, 0, "sparse2", caller, true)
			after, err := src.Handle(ctx, MethodSparseRun, body)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(before, after) {
				t.Fatal("forwarded result diverged from pre-migration result")
			}
		})
	}
}

// TestTieredShardMatchesPlainFP32 pins that enabling the cache over an
// fp32 cold tier changes nothing: a tiered shard and a plain shard
// serve byte-identical responses.
func TestTieredShardMatchesPlainFP32(t *testing.T) {
	cfg := tinyConfig()
	m := model.Build(cfg)
	plan, err := sharding.LoadBalanced(&cfg, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	recs := func() []*trace.Recorder {
		return []*trace.Recorder{trace.NewRecorder("sparse1", 1<<14), trace.NewRecorder("sparse2", 1<<14)}
	}
	plain, err := MaterializeShards(m, plan, recs())
	if err != nil {
		t.Fatal(err)
	}
	tiered, err := MaterializeShardsTiered(m, plan, recs(), &TierConfig{CacheMB: 1})
	if err != nil {
		t.Fatal(err)
	}
	f := &migrationFixture{m: m, plan: plan, shards: plain}
	body := f.runRequest(t, 7)
	ctx := trace.Context{}
	want, err := plain[0].Handle(ctx, MethodSparseRun, body)
	if err != nil {
		t.Fatal(err)
	}
	for pass := 0; pass < 3; pass++ { // later passes serve from the cache
		got, err := tiered[0].Handle(ctx, MethodSparseRun, body)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(want, got) {
			t.Fatalf("pass %d: tiered fp32 shard diverged from plain shard", pass)
		}
	}
	if st := tiered[0].TierSnapshot(); st.Hits == 0 {
		t.Fatalf("replays produced no cache hits: %+v", st)
	}
}

// TestSetTierWrapsImportedTables covers drmserve's shard-file path:
// import plain fp32 tables, then SetTier encodes and caches them.
func TestSetTierWrapsImportedTables(t *testing.T) {
	cfg := tinyConfig()
	m := model.Build(cfg)
	sh := NewSparseShard("sparse1", trace.NewRecorder("sparse1", 1<<14))
	for id, tab := range m.Tables {
		sh.AddTable(id, tab)
	}
	before := sh.Bytes()
	sh.SetTier(tierConfigFor(&cfg, sharding.PrecisionInt8, 0.01))
	st := sh.TierSnapshot()
	if st.Int8 != len(m.Tables) {
		t.Fatalf("SetTier quantized %d of %d tables", st.Int8, len(m.Tables))
	}
	if st.ColdBytes >= before {
		t.Fatalf("tiering did not shrink cold bytes: %d -> %d", before, st.ColdBytes)
	}
	if st.CacheCapBytes == 0 {
		t.Fatal("cache budget not apportioned")
	}
	budgetMB := 0.01
	if budget := int64(budgetMB * float64(1<<20)); st.CacheCapBytes > budget {
		t.Fatalf("cache backing %d exceeds the %d-byte budget", st.CacheCapBytes, budget)
	}
}

// TestRetierFollowsLoad pins the budget apportionment: after skewed
// traffic, the hot table's cache capacity must exceed a cold one's.
func TestRetierFollowsLoad(t *testing.T) {
	cfg := tinyConfig()
	m := model.Build(cfg)
	sh := NewSparseShard("sparse1", trace.NewRecorder("sparse1", 1<<14))
	// A deliberately scarce budget: the apportionment must choose, so the
	// hot table's share visibly beats a cold one's.
	sh.SetTier(tierConfigFor(&cfg, sharding.PrecisionInt8, 0.002))
	for id, tab := range m.Tables {
		sh.AddTable(id, tab)
	}
	// Fold skewed measured load straight into the accumulator: table 0
	// carries 100× the lookups of the rest.
	sh.loadMu.Lock()
	for id := range m.Tables {
		lookups := int64(10)
		if id == 0 {
			lookups = 1000
		}
		sh.load.Add(sharding.TableLoadKey{TableID: id}, sharding.TableLoad{Lookups: lookups, Calls: 1})
	}
	sh.loadMu.Unlock()
	sh.retier()

	capOf := func(id int) int {
		sh.mu.RLock()
		defer sh.mu.RUnlock()
		tt, ok := sh.tables[tableKey{id: id}].(*embedding.TieredTable)
		if !ok {
			t.Fatalf("table %d not tiered", id)
		}
		return tt.Capacity()
	}
	hot, cold := capOf(0), capOf(1)
	if hot <= cold {
		t.Fatalf("hot table capacity %d not above cold %d", hot, cold)
	}
}

// TestRetierFloorSeedsNewcomer pins the migrated-table case: a table
// that just arrived has zero measured load on this shard — it moved
// because it was hot at the *source* — and must still be seeded with a
// bytes-proportional slice of the cache budget instead of starting (and
// staying) cacheless.
func TestRetierFloorSeedsNewcomer(t *testing.T) {
	cfg := tinyConfig()
	m := model.Build(cfg)
	sh := NewSparseShard("sparse1", trace.NewRecorder("sparse1", 1<<14))
	sh.SetTier(tierConfigFor(&cfg, sharding.PrecisionInt8, 0.05))
	for id, tab := range m.Tables {
		sh.AddTable(id, tab)
	}
	// Existing tables carry measured load; the newcomer will not.
	sh.loadMu.Lock()
	for id := range m.Tables {
		sh.load.Add(sharding.TableLoadKey{TableID: id}, sharding.TableLoad{Lookups: 500, Calls: 1})
	}
	sh.loadMu.Unlock()

	newcomer := len(m.Tables)
	sh.InstallTable(newcomer, 0, embedding.NewDense(64, 16))
	sh.mu.RLock()
	tt, ok := sh.tables[tableKey{id: newcomer}].(*embedding.TieredTable)
	sh.mu.RUnlock()
	if !ok {
		t.Fatal("newcomer not tiered")
	}
	if tt.Capacity() == 0 {
		t.Fatal("zero-load newcomer received no cache capacity (bytes floor missing)")
	}
}

// TestStagedTableErrors covers the staging guards: unknown encodings,
// chunk encoding mismatches, and raw writes against fp32 staging.
// TestRetierDeterministic pins the cache-budget split to table order:
// building the same shard with the same measured load must size every
// cache identically run after run, not drift with map iteration order
// of the table set.
func TestRetierDeterministic(t *testing.T) {
	cfg := tinyConfig()
	build := func() map[int]int {
		m := model.Build(cfg)
		sh := NewSparseShard("sparse1", trace.NewRecorder("sparse1", 1<<14))
		sh.SetTier(tierConfigFor(&cfg, sharding.PrecisionInt8, 0.002))
		for id, tab := range m.Tables {
			sh.AddTable(id, tab)
		}
		sh.loadMu.Lock()
		for id := range m.Tables {
			sh.load.Add(sharding.TableLoadKey{TableID: id},
				sharding.TableLoad{Lookups: int64(100 * (id + 1)), Calls: 1})
		}
		sh.loadMu.Unlock()
		sh.retier()
		caps := make(map[int]int)
		sh.mu.RLock()
		defer sh.mu.RUnlock()
		for key, tab := range sh.tables {
			if tt, ok := tab.(*embedding.TieredTable); ok {
				caps[key.id] = tt.Capacity()
			}
		}
		return caps
	}
	base := build()
	if len(base) == 0 {
		t.Fatal("no tiered tables built")
	}
	for run := 0; run < 8; run++ {
		caps := build()
		for id, c := range caps {
			if c != base[id] {
				t.Fatalf("run %d: table %d capacity %d, first run gave %d", run, id, c, base[id])
			}
		}
	}
}

func TestStagedTableErrors(t *testing.T) {
	if _, err := newStaged(99, 4, 4); err == nil {
		t.Fatal("unknown encoding accepted")
	}
	st, err := newStaged(TierEncFP32, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.writeRaw(0, make([]byte, 8)); err == nil {
		t.Fatal("raw write into fp32 staging accepted")
	}
	qst, err := newStaged(TierEncInt8, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := qst.writeF32(0, make([]float32, 4)); err == nil {
		t.Fatal("fp32 write into int8 staging accepted")
	}

	// Wire-level: a chunk whose encoding disagrees with begin is refused.
	f := newTieredMigrationFixture(t, sharding.PrecisionInt8, 0)
	dst := f.shards[1]
	id := f.plan.Shards[0].Tables[0]
	ctx := trace.Context{}
	probe, err := f.shards[0].Handle(ctx, MethodMigrateRead, EncodeMigrateRead(&MigrateRead{TableID: int32(id)}))
	if err != nil {
		t.Fatal(err)
	}
	shape, err := DecodeMigrateReadResponse(probe)
	if err != nil {
		t.Fatal(err)
	}
	if shape.Enc != TierEncInt8 {
		t.Fatalf("int8 fixture reports encoding %d", shape.Enc)
	}
	if _, err := dst.Handle(ctx, MethodMigrateBegin, EncodeMigrateBegin(&MigrateBegin{
		TableID: int32(id), NumParts: 1, Rows: shape.Rows, Dim: shape.Dim, Enc: shape.Enc,
	})); err != nil {
		t.Fatal(err)
	}
	_, err = dst.Handle(ctx, MethodMigrateChunk, EncodeMigrateChunk(&MigrateChunk{
		TableID: int32(id), RowStart: 0, Dim: shape.Dim, Enc: TierEncFP32,
		Data: make([]float32, int(shape.Dim)),
	}))
	if err == nil || !strings.Contains(err.Error(), "encoding") {
		t.Fatalf("mismatched chunk encoding accepted (err %v)", err)
	}
}

// TestTableEncClassification covers the wire encoding classifier.
func TestTableEncClassification(t *testing.T) {
	d := embedding.NewDense(4, 4)
	cases := []struct {
		tab  embedding.Table
		want int32
	}{
		{d, TierEncFP32},
		{d.ToFP16(), TierEncFP16},
		{d.Quantize(quant.Bits8), TierEncInt8},
		{d.Quantize(quant.Bits4), TierEncInt4},
		{embedding.NewTiered(d.Quantize(quant.Bits8), 2), TierEncInt8},
	}
	for i, c := range cases {
		got, err := tableEnc(c.tab)
		if err != nil || got != c.want {
			t.Fatalf("case %d: enc %d err %v, want %d", i, got, err, c.want)
		}
	}
	if _, err := tierEncStride(TierEncFP32, 4); err == nil {
		t.Fatal("fp32 has no raw stride")
	}
	if s, err := tierEncStride(TierEncInt4, 5); err != nil || s != 4+3 {
		t.Fatalf("int4 stride %d err %v", s, err)
	}
}
