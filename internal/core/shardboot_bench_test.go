package core

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/model"
	"repro/internal/sharding"
	"repro/internal/trace"
)

// BenchmarkShardBoot compares the two ways a sparse shard comes up:
// regenerating its tables from the model definition (build parameters,
// encode tiers) versus memory-mapping a v2 shard file exported ahead of
// time. The CI bench gate asserts mmap stays strictly faster — that
// ordering is the entire point of the persistent format, and a change
// that quietly forces the mmap path through a heap decode would pass a
// plain ns/op gate on a fast runner but fail the ordering.
func BenchmarkShardBoot(b *testing.B) {
	cfg := model.DRM2()
	for i := range cfg.Tables {
		cfg.Tables[i].Rows = 2048
	}
	m := model.Build(cfg)
	plan, err := sharding.CapacityBalanced(&cfg, 2)
	if err != nil {
		b.Fatal(err)
	}
	tier := &TierConfig{Plan: sharding.PlanTiers(&cfg, sharding.TierOptions{
		ColdPrecision: sharding.PrecisionInt8, MinTableBytes: 1,
	})}
	path := filepath.Join(b.TempDir(), "bench.shard1")
	f, err := os.Create(path)
	if err != nil {
		b.Fatal(err)
	}
	if err := ExportShardV2(m, plan, 1, f, tier.Plan); err != nil {
		b.Fatal(err)
	}
	if err := f.Close(); err != nil {
		b.Fatal(err)
	}

	b.Run("regen", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			// The regenerate path pays model materialization plus the
			// per-shard tier encode — what a shard server does today when
			// it boots without a shard file.
			fresh := model.Build(cfg)
			recs := []*trace.Recorder{trace.NewRecorder("bench", 64), trace.NewRecorder("bench", 64)}
			shards, err := MaterializeShardsTiered(fresh, plan, recs, tier)
			if err != nil {
				b.Fatal(err)
			}
			_ = shards
		}
	})

	b.Run("mmap", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sh, shard, closer, err := OpenShardFile(path, trace.NewRecorder("bench", 64))
			if err != nil {
				b.Fatal(err)
			}
			if shard != 1 {
				b.Fatalf("opened shard %d", shard)
			}
			sh.SetTier(tier)
			if err := closer.Close(); err != nil {
				b.Fatal(err)
			}
		}
	})
}
