package core

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/embedding"
	"repro/internal/model"
	"repro/internal/rpc"
	"repro/internal/sharding"
	"repro/internal/trace"
	"repro/internal/workload"
)

// migrationFixture materializes a 2-shard deployment of the tiny model
// with a live RPC server per shard, returning the shards, per-shard
// callers, and a sparse request exercising every table of shard 1.
type migrationFixture struct {
	m      *model.Model
	plan   *sharding.Plan
	shards []*SparseShard
	srvs   []*rpc.Server
	calls  []*rpc.Client
}

func newMigrationFixture(t *testing.T) *migrationFixture {
	t.Helper()
	cfg := tinyConfig()
	m := model.Build(cfg)
	plan, err := sharding.LoadBalanced(&cfg, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	recs := []*trace.Recorder{trace.NewRecorder("sparse1", 1<<14), trace.NewRecorder("sparse2", 1<<14)}
	shards, err := MaterializeShards(m, plan, recs)
	if err != nil {
		t.Fatal(err)
	}
	f := &migrationFixture{m: m, plan: plan, shards: shards}
	for i, sh := range shards {
		srv, err := rpc.NewServer("127.0.0.1:0", sh, rpc.ServerConfig{Recorder: recs[i]})
		if err != nil {
			t.Fatal(err)
		}
		f.srvs = append(f.srvs, srv)
		cl, err := rpc.Dial(srv.Addr(), nil)
		if err != nil {
			t.Fatal(err)
		}
		f.calls = append(f.calls, cl)
	}
	t.Cleanup(func() {
		for _, c := range f.calls {
			c.Close()
		}
		for _, s := range f.srvs {
			s.Close()
		}
		for _, sh := range f.shards {
			sh.Close()
		}
	})
	return f
}

// runRequest builds a sparse request for every whole table of shard 1
// using a deterministic workload draw.
func (f *migrationFixture) runRequest(t *testing.T, seed int64) []byte {
	t.Helper()
	gen := workload.NewGenerator(f.m.Config, seed)
	wreq := gen.Next()
	req := &SparseRequest{Net: f.m.Config.Nets[0].Name}
	for _, id := range f.plan.Shards[0].Tables {
		if f.m.Config.Tables[id].Net != req.Net {
			continue
		}
		req.Entries = append(req.Entries, SparseEntry{
			TableID: int32(id), NumParts: 1, Bags: hashBags(wreq.Bags[id], f.m.Config.Tables[id].Rows),
		})
	}
	if len(req.Entries) == 0 {
		t.Fatal("fixture: shard 1 holds no tables of net1")
	}
	return EncodeSparseRequest(req)
}

// hashBags maps raw workload IDs into table buckets (the main shard's
// Hash operator, inlined for the test).
func hashBags(bags []embedding.Bag, rows int) []embedding.Bag {
	out := make([]embedding.Bag, len(bags))
	for i, b := range bags {
		for _, idx := range b.Indices {
			out[i].Indices = append(out[i].Indices, idx%int32(rows))
		}
	}
	return out
}

// migrateTable drives the full wire protocol for one whole table from
// shard 1 to shard 2.
func (f *migrationFixture) migrateTable(t *testing.T, id int) {
	t.Helper()
	src, dst := f.shards[0], f.shards[1]
	ctx := trace.Context{}
	probe, err := src.Handle(ctx, MethodMigrateRead, EncodeMigrateRead(&MigrateRead{TableID: int32(id)}))
	if err != nil {
		t.Fatal(err)
	}
	shape, err := DecodeMigrateReadResponse(probe)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dst.Handle(ctx, MethodMigrateBegin, EncodeMigrateBegin(&MigrateBegin{
		TableID: int32(id), NumParts: 1, Rows: shape.Rows, Dim: shape.Dim,
	})); err != nil {
		t.Fatal(err)
	}
	const chunk = 7 // deliberately not a divisor of Rows
	for row := int32(0); row < shape.Rows; row += chunk {
		count := int32(chunk)
		if row+count > shape.Rows {
			count = shape.Rows - row
		}
		out, err := src.Handle(ctx, MethodMigrateRead, EncodeMigrateRead(&MigrateRead{
			TableID: int32(id), RowStart: row, RowCount: count,
		}))
		if err != nil {
			t.Fatal(err)
		}
		rr, err := DecodeMigrateReadResponse(out)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := dst.Handle(ctx, MethodMigrateChunk, EncodeMigrateChunk(&MigrateChunk{
			TableID: int32(id), RowStart: row, Dim: shape.Dim, Data: rr.Data,
		})); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := dst.Handle(ctx, MethodMigrateCommit, EncodeMigrateCommit(&MigrateCommit{TableID: int32(id)})); err != nil {
		t.Fatal(err)
	}
}

// TestMigrationMidCutoverIdentity walks one table through every cutover
// state — pre-migration, staged-but-uncommitted, committed with the
// source double-reading, and released with the source forwarding — and
// requires byte-identical pooled results throughout.
func TestMigrationMidCutoverIdentity(t *testing.T) {
	f := newMigrationFixture(t)
	src, dst := f.shards[0], f.shards[1]
	id := f.plan.Shards[0].Tables[0]
	ctx := trace.Context{TraceID: 7}
	body := f.runRequest(t, 99)

	before, err := src.Handle(ctx, MethodSparseRun, body)
	if err != nil {
		t.Fatal(err)
	}

	epoch0 := dst.Epoch()
	f.migrateTable(t, id)
	if dst.Epoch() <= epoch0 {
		t.Fatal("commit must advance the destination epoch")
	}

	// Committed at the destination, source still authoritative for its
	// in-flight traffic: the retained copy double-reads identically.
	during, err := src.Handle(ctx, MethodSparseRun, body)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, during) {
		t.Fatal("double-read during cutover diverged from pre-migration result")
	}

	// Source releases and forwards: lookups still land at the source
	// (stale routing) but are answered by the destination.
	srcEpoch := src.Epoch()
	src.BeginForward(id, 0, "sparse2", f.calls[1], true)
	if src.Epoch() <= srcEpoch {
		t.Fatal("forward must advance the source epoch")
	}
	after, err := src.Handle(ctx, MethodSparseRun, body)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Fatal("forwarded lookup diverged from pre-migration result")
	}

	// The destination also serves the table directly (new routing).
	direct, err := dst.Handle(ctx, MethodSparseRun, body)
	if err == nil {
		_ = direct
	} else if !strings.Contains(err.Error(), "does not hold") {
		// Other tables of the request still live on the source, so a
		// direct full-request hit on the destination correctly rejects;
		// anything else is a protocol bug.
		t.Fatalf("unexpected destination error: %v", err)
	}
}

// TestMigrationForwardOverWire installs the forward via the RPC control
// plane (dial-by-address), as the Migrator does between processes.
func TestMigrationForwardOverWire(t *testing.T) {
	f := newMigrationFixture(t)
	src := f.shards[0]
	id := f.plan.Shards[0].Tables[0]
	ctx := trace.Context{TraceID: 8}
	body := f.runRequest(t, 123)

	before, err := src.Handle(ctx, MethodSparseRun, body)
	if err != nil {
		t.Fatal(err)
	}
	f.migrateTable(t, id)
	out, err := src.Handle(ctx, MethodMigrateForward, EncodeMigrateForward(&MigrateForward{
		TableID: int32(id), Service: "sparse2", Addr: f.srvs[1].Addr(), Release: true,
	}))
	if err != nil {
		t.Fatal(err)
	}
	if ep, err := DecodeEpochResponse(out); err != nil || ep.Epoch == 0 {
		t.Fatalf("epoch response = %v, %v", ep, err)
	}
	after, err := src.Handle(ctx, MethodSparseRun, body)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Fatal("wire-forwarded lookup diverged from pre-migration result")
	}
}

// TestMigrationProtocolErrors pins the control plane's failure modes.
func TestMigrationProtocolErrors(t *testing.T) {
	f := newMigrationFixture(t)
	src, dst := f.shards[0], f.shards[1]
	id := f.plan.Shards[0].Tables[0]
	ctx := trace.Context{}

	if _, err := dst.Handle(ctx, MethodMigrateChunk, EncodeMigrateChunk(&MigrateChunk{
		TableID: int32(id), Dim: 4, Data: make([]float32, 4),
	})); err == nil || !strings.Contains(err.Error(), "without begin") {
		t.Fatalf("chunk without begin: %v", err)
	}
	if _, err := dst.Handle(ctx, MethodMigrateCommit, EncodeMigrateCommit(&MigrateCommit{TableID: int32(id)})); err == nil || !strings.Contains(err.Error(), "without begin") {
		t.Fatalf("commit without begin: %v", err)
	}
	if _, err := src.Handle(ctx, MethodMigrateRead, EncodeMigrateRead(&MigrateRead{
		TableID: int32(id), RowStart: 1 << 20, RowCount: 8,
	})); err == nil {
		t.Fatal("out-of-range read must fail")
	}
	if _, err := src.Handle(ctx, MethodMigrateRead, EncodeMigrateRead(&MigrateRead{TableID: 9999})); err == nil {
		t.Fatal("read of unheld table must fail")
	}
	if _, err := src.Handle(ctx, "sparse.nope", nil); err == nil || !strings.Contains(err.Error(), "unknown method") {
		t.Fatalf("unknown method: %v", err)
	}

	// Abort drops staged storage: a commit after begin+abort must fail
	// exactly like a commit that was never begun, and aborting an
	// unknown key is a no-op.
	if _, err := dst.Handle(ctx, MethodMigrateAbort, EncodeMigrateCommit(&MigrateCommit{TableID: int32(id)})); err != nil {
		t.Fatalf("abort of unknown key must be a no-op: %v", err)
	}
	if _, err := dst.Handle(ctx, MethodMigrateBegin, EncodeMigrateBegin(&MigrateBegin{
		TableID: int32(id), NumParts: 1, Rows: 8, Dim: 4,
	})); err != nil {
		t.Fatal(err)
	}
	if _, err := dst.Handle(ctx, MethodMigrateAbort, EncodeMigrateCommit(&MigrateCommit{TableID: int32(id)})); err != nil {
		t.Fatal(err)
	}
	if _, err := dst.Handle(ctx, MethodMigrateCommit, EncodeMigrateCommit(&MigrateCommit{TableID: int32(id)})); err == nil || !strings.Contains(err.Error(), "without begin") {
		t.Fatalf("commit after abort: %v", err)
	}
}

// TestSparseLoadAccounting checks the shard's mergeable summary: lookup
// counts match the request, service time lands on the pooled tables,
// and the wire collection round-trips with reset semantics.
func TestSparseLoadAccounting(t *testing.T) {
	f := newMigrationFixture(t)
	src := f.shards[0]
	ctx := trace.Context{TraceID: 9}
	body := f.runRequest(t, 7)
	req, err := DecodeSparseRequest(body)
	if err != nil {
		t.Fatal(err)
	}
	wantLookups := make(map[sharding.TableLoadKey]int64)
	var total int64
	for _, e := range req.Entries {
		n := int64(embedding.TotalLookups(e.Bags))
		wantLookups[sharding.TableLoadKey{TableID: int(e.TableID)}] += n
		total += n
	}
	if total == 0 {
		t.Fatal("fixture request has no lookups")
	}

	if _, err := src.Handle(ctx, MethodSparseRun, body); err != nil {
		t.Fatal(err)
	}
	out, err := src.Handle(ctx, MethodSparseLoad, EncodeLoadRequest(&LoadRequest{Reset: true}))
	if err != nil {
		t.Fatal(err)
	}
	sum, err := DecodeLoadSummary(out)
	if err != nil {
		t.Fatal(err)
	}
	if got := sum.TotalLookups(); got != total {
		t.Fatalf("summary lookups = %d, want %d", got, total)
	}
	for k, want := range wantLookups {
		got := sum.Tables[k]
		if got.Lookups != want {
			t.Errorf("table %v lookups = %d, want %d", k, got.Lookups, want)
		}
		if want > 0 && got.Calls != 1 {
			t.Errorf("table %v calls = %d, want 1", k, got.Calls)
		}
	}

	// Reset semantics: the next snapshot is empty.
	out, err = src.Handle(ctx, MethodSparseLoad, EncodeLoadRequest(&LoadRequest{}))
	if err != nil {
		t.Fatal(err)
	}
	sum, err = DecodeLoadSummary(out)
	if err != nil {
		t.Fatal(err)
	}
	if sum.TotalLookups() != 0 {
		t.Fatalf("post-reset summary still holds %d lookups", sum.TotalLookups())
	}
}

// TestEngineRerouteSwapsPlan checks the atomic program swap: scores are
// identical before and after a reroute that relocates tables, and the
// engine reports the new plan.
func TestEngineRerouteSwapsPlan(t *testing.T) {
	cfg := tinyConfig()
	m := model.Build(cfg)
	plan := sharding.Singular(&cfg)
	rec := trace.NewRecorder("main", 1<<14)
	eng, err := NewEngine(m, plan, EngineConfig{Recorder: rec})
	if err != nil {
		t.Fatal(err)
	}
	gen := workload.NewGenerator(cfg, 5)
	req := FromWorkload(gen.Next())
	before, err := eng.Execute(trace.Context{TraceID: 1}, req)
	if err != nil {
		t.Fatal(err)
	}
	// Reroute singular -> singular (a fresh compile) must preserve
	// results; a distributed reroute without ClientFor must fail and
	// leave the old program serving.
	if err := eng.Reroute(sharding.Singular(&cfg)); err != nil {
		t.Fatal(err)
	}
	after, err := eng.Execute(trace.Context{TraceID: 2}, req)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(float32sBytes(before), float32sBytes(after)) {
		t.Fatal("reroute changed scores")
	}
	dist, err := sharding.LoadBalanced(&cfg, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Reroute(dist); err == nil {
		t.Fatal("distributed reroute without ClientFor must fail")
	}
	if eng.Plan().IsDistributed() {
		t.Fatal("failed reroute must not swap the program")
	}
	if _, err := eng.Execute(trace.Context{TraceID: 3}, req); err != nil {
		t.Fatalf("engine must keep serving after failed reroute: %v", err)
	}
}

func float32sBytes(xs []float32) []byte {
	out := EncodeRankingResponse(&RankingResponse{Scores: xs})
	return out
}
