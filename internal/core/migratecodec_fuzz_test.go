package core

import (
	"bytes"
	"math"
	"reflect"
	"testing"
	"time"

	"repro/internal/sharding"
)

// f32sBitEqual compares float slices bit for bit: the codecs must
// preserve payloads exactly, including NaN bit patterns, which ==/
// DeepEqual would reject.
func f32sBitEqual(a, b []float32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float32bits(a[i]) != math.Float32bits(b[i]) {
			return false
		}
	}
	return true
}

// Round-trip fuzzers for the migration control-plane codecs: any byte
// string either fails to decode, or decodes to a message whose re-encoding
// decodes to the same message (decode∘encode is the identity on the image
// of decode). Panics and unbounded allocations are the bugs these hunt —
// the control plane reads these payloads off the wire from peers.

func FuzzMigrateBeginRoundTrip(f *testing.F) {
	f.Add(EncodeMigrateBegin(&MigrateBegin{TableID: 3, PartIndex: 1, NumParts: 4, Rows: 100, Dim: 16, Enc: TierEncInt8}))
	f.Add(EncodeMigrateBegin(&MigrateBegin{Rows: 1, Dim: 1}))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, b []byte) {
		m, err := DecodeMigrateBegin(b)
		if err != nil {
			return
		}
		again, err := DecodeMigrateBegin(EncodeMigrateBegin(m))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if *again != *m {
			t.Fatalf("round trip changed message: %+v != %+v", again, m)
		}
	})
}

func FuzzMigrateReadRoundTrip(f *testing.F) {
	f.Add(EncodeMigrateRead(&MigrateRead{TableID: 9, PartIndex: 2, RowStart: 128, RowCount: 64}))
	f.Add([]byte("short"))
	f.Fuzz(func(t *testing.T, b []byte) {
		m, err := DecodeMigrateRead(b)
		if err != nil {
			return
		}
		again, err := DecodeMigrateRead(EncodeMigrateRead(m))
		if err != nil || *again != *m {
			t.Fatalf("round trip: %+v -> %+v (err %v)", m, again, err)
		}
	})
}

func FuzzMigrateReadResponseRoundTrip(f *testing.F) {
	f.Add(EncodeMigrateReadResponse(&MigrateReadResponse{Rows: 10, Dim: 4, Enc: TierEncFP32, Data: []float32{1, 2, 3, 4}}))
	f.Add(EncodeMigrateReadResponse(&MigrateReadResponse{Rows: 10, Dim: 4, Enc: TierEncFP16, Raw: []byte{1, 2, 3, 4, 5, 6, 7, 8}}))
	f.Fuzz(func(t *testing.T, b []byte) {
		m, err := DecodeMigrateReadResponse(b)
		if err != nil {
			return
		}
		again, err := DecodeMigrateReadResponse(EncodeMigrateReadResponse(m))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if again.Rows != m.Rows || again.Dim != m.Dim || again.Enc != m.Enc ||
			!f32sBitEqual(again.Data, m.Data) || !bytes.Equal(again.Raw, m.Raw) {
			t.Fatalf("round trip changed message")
		}
	})
}

func FuzzMigrateChunkRoundTrip(f *testing.F) {
	f.Add(EncodeMigrateChunk(&MigrateChunk{TableID: 1, RowStart: 8, Dim: 2, Enc: TierEncFP32, Data: []float32{1, 2, 3, 4}}))
	f.Add(EncodeMigrateChunk(&MigrateChunk{TableID: 1, RowStart: 8, Dim: 2, Enc: TierEncInt8, Raw: []byte{1, 2, 3, 4, 5, 6}}))
	f.Add(EncodeMigrateChunk(&MigrateChunk{Dim: 3, Enc: TierEncInt4, Raw: make([]byte, 12)}))
	f.Fuzz(func(t *testing.T, b []byte) {
		m, err := DecodeMigrateChunk(b)
		if err != nil {
			return
		}
		// Decode enforces the shape invariants; they must hold on the image.
		if m.Enc == TierEncFP32 && m.Dim > 0 && int32(len(m.Data))%m.Dim != 0 {
			t.Fatalf("decoded fp32 chunk violates alignment: %d values, dim %d", len(m.Data), m.Dim)
		}
		again, err := DecodeMigrateChunk(EncodeMigrateChunk(m))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if again.TableID != m.TableID || again.PartIndex != m.PartIndex || again.RowStart != m.RowStart ||
			again.Dim != m.Dim || again.Enc != m.Enc ||
			!f32sBitEqual(again.Data, m.Data) || !bytes.Equal(again.Raw, m.Raw) {
			t.Fatalf("round trip changed message")
		}
	})
}

func FuzzMigrateForwardRoundTrip(f *testing.F) {
	f.Add(EncodeMigrateForward(&MigrateForward{TableID: 7, PartIndex: 1, Service: "sparse2", Addr: "127.0.0.1:7102", Release: true}))
	f.Add(EncodeMigrateForward(&MigrateForward{Service: "", Addr: ""}))
	f.Fuzz(func(t *testing.T, b []byte) {
		m, err := DecodeMigrateForward(b)
		if err != nil {
			return
		}
		again, err := DecodeMigrateForward(EncodeMigrateForward(m))
		if err != nil || *again != *m {
			t.Fatalf("round trip: %+v -> %+v (err %v)", m, again, err)
		}
	})
}

func FuzzLoadSummaryRoundTrip(f *testing.F) {
	s := sharding.NewLoadSummary()
	s.Add(sharding.TableLoadKey{TableID: 1}, sharding.TableLoad{Lookups: 10, ServiceTime: time.Millisecond, Calls: 2})
	s.Add(sharding.TableLoadKey{TableID: 2, PartIndex: 1}, sharding.TableLoad{Lookups: 5, Calls: 1})
	f.Add(EncodeLoadSummary(s))
	f.Add(EncodeLoadSummary(sharding.NewLoadSummary()))
	f.Fuzz(func(t *testing.T, b []byte) {
		m, err := DecodeLoadSummary(b)
		if err != nil {
			return
		}
		again, err := DecodeLoadSummary(EncodeLoadSummary(m))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !reflect.DeepEqual(again.Tables, m.Tables) {
			t.Fatalf("round trip changed summary: %+v != %+v", again.Tables, m.Tables)
		}
	})
}
