package core

import (
	"fmt"
	"time"

	"repro/internal/sharding"
)

// Wire codecs for the online-resharding control plane: load-summary
// collection and the live row-range migration protocol. Same minimal
// little-endian framing as the serving codecs in codec.go — the control
// plane rides the ordinary RPC channel, so a standalone deployment
// (drmserve processes) reshards exactly like the in-process cluster.

// Migration control-plane methods served by SparseShard.Handle.
const (
	MethodSparseRun      = "sparse.run"
	MethodSparseLoad     = "sparse.load"
	MethodMigrateBegin   = "sparse.migrate.begin"
	MethodMigrateRead    = "sparse.migrate.read"
	MethodMigrateChunk   = "sparse.migrate.chunk"
	MethodMigrateCommit  = "sparse.migrate.commit"
	MethodMigrateAbort   = "sparse.migrate.abort"
	MethodMigrateForward = "sparse.migrate.forward"
)

// LoadRequest asks a shard for its load summary; Reset additionally
// clears the live accumulator so the next collection window starts
// fresh.
type LoadRequest struct {
	Reset bool
}

// MigrateBegin tells the destination to allocate staging storage for an
// incoming table (or row-partition) of Rows×Dim in the source's
// cold-tier encoding (TierEnc*): staging matches the wire encoding so
// the committed table is bit-identical to the source's.
type MigrateBegin struct {
	TableID   int32
	PartIndex int32
	NumParts  int32
	Rows      int32
	Dim       int32
	Enc       int32
}

// MigrateRead asks the source for RowCount rows of a held table starting
// at RowStart. RowCount 0 probes shape only.
type MigrateRead struct {
	TableID   int32
	PartIndex int32
	RowStart  int32
	RowCount  int32
}

// MigrateReadResponse returns the requested row range plus the table's
// full shape and cold-tier encoding so the orchestrator can size the
// stream (and allocate matching staging) without a separate metadata
// call. Fp32 tables travel in Data; encoded tiers travel verbatim in Raw
// (RowCount rows of the encoding's wire stride).
type MigrateReadResponse struct {
	Rows int32 // total rows held at the source
	Dim  int32
	Enc  int32
	Data []float32 // fp32: RowCount×Dim values starting at RowStart
	Raw  []byte    // encoded tiers: RowCount rows of encoded bytes
}

// MigrateChunk delivers one row range into the destination's staging
// table, in the encoding MigrateBegin declared.
type MigrateChunk struct {
	TableID   int32
	PartIndex int32
	RowStart  int32
	Dim       int32
	Enc       int32
	Data      []float32
	Raw       []byte
}

// MigrateCommit activates the staged table at the destination; the
// response carries the destination's new forwarding epoch. The same
// message body addresses sparse.migrate.abort, which discards the
// staged storage of a failed move instead.
type MigrateCommit struct {
	TableID   int32
	PartIndex int32
}

// MigrateForward tells the source the destination is authoritative: the
// source installs a forwarding entry (dialing Addr for service Service)
// and, when Release is set, drops its local copy. Until released, the
// source keeps double-reading its retained copy — byte-identical to the
// destination's, since table storage is immutable.
type MigrateForward struct {
	TableID   int32
	PartIndex int32
	Service   string
	Addr      string
	Release   bool
}

// EpochResponse carries a shard's forwarding epoch after a cutover step.
type EpochResponse struct {
	Epoch uint64
}

func encodeBool(w *buffer, v bool) {
	if v {
		w.u32(1)
	} else {
		w.u32(0)
	}
}

func decodeBool(r *reader) (bool, error) {
	v, err := r.u32()
	return v != 0, err
}

// EncodeLoadRequest serializes a load-summary request.
func EncodeLoadRequest(req *LoadRequest) []byte {
	var w buffer
	encodeBool(&w, req.Reset)
	return w.b
}

// DecodeLoadRequest parses a load-summary request.
func DecodeLoadRequest(b []byte) (*LoadRequest, error) {
	r := reader{b: b}
	reset, err := decodeBool(&r)
	if err != nil {
		return nil, err
	}
	return &LoadRequest{Reset: reset}, nil
}

// EncodeLoadSummary serializes a load summary in deterministic key
// order.
func EncodeLoadSummary(s *sharding.LoadSummary) []byte {
	var w buffer
	keys := s.Keys()
	w.u32(uint32(len(keys)))
	for _, k := range keys {
		l := s.Tables[k]
		w.u32(uint32(k.TableID))
		w.u32(uint32(k.PartIndex))
		w.u64(uint64(l.Lookups))
		w.u64(uint64(l.ServiceTime))
		w.u64(uint64(l.Calls))
	}
	return w.b
}

// DecodeLoadSummary parses a load summary.
func DecodeLoadSummary(b []byte) (*sharding.LoadSummary, error) {
	r := reader{b: b}
	n, err := r.u32()
	if err != nil {
		return nil, err
	}
	out := sharding.NewLoadSummary()
	for i := uint32(0); i < n; i++ {
		var tid, part uint32
		var lookups, svc, calls uint64
		if tid, err = r.u32(); err != nil {
			return nil, err
		}
		if part, err = r.u32(); err != nil {
			return nil, err
		}
		if lookups, err = r.u64(); err != nil {
			return nil, err
		}
		if svc, err = r.u64(); err != nil {
			return nil, err
		}
		if calls, err = r.u64(); err != nil {
			return nil, err
		}
		out.Add(sharding.TableLoadKey{TableID: int(tid), PartIndex: int(part)}, sharding.TableLoad{
			Lookups: int64(lookups), ServiceTime: time.Duration(svc), Calls: int64(calls),
		})
	}
	return out, nil
}

// EncodeMigrateBegin serializes a staging-allocation request.
func EncodeMigrateBegin(m *MigrateBegin) []byte {
	var w buffer
	w.u32(uint32(m.TableID))
	w.u32(uint32(m.PartIndex))
	w.u32(uint32(m.NumParts))
	w.u32(uint32(m.Rows))
	w.u32(uint32(m.Dim))
	w.u32(uint32(m.Enc))
	return w.b
}

// DecodeMigrateBegin parses a staging-allocation request.
func DecodeMigrateBegin(b []byte) (*MigrateBegin, error) {
	r := reader{b: b}
	out := &MigrateBegin{}
	for _, dst := range []*int32{&out.TableID, &out.PartIndex, &out.NumParts, &out.Rows, &out.Dim, &out.Enc} {
		v, err := r.u32()
		if err != nil {
			return nil, err
		}
		*dst = int32(v)
	}
	return out, nil
}

// EncodeMigrateRead serializes a row-range read request.
func EncodeMigrateRead(m *MigrateRead) []byte {
	var w buffer
	w.u32(uint32(m.TableID))
	w.u32(uint32(m.PartIndex))
	w.u32(uint32(m.RowStart))
	w.u32(uint32(m.RowCount))
	return w.b
}

// DecodeMigrateRead parses a row-range read request.
func DecodeMigrateRead(b []byte) (*MigrateRead, error) {
	r := reader{b: b}
	out := &MigrateRead{}
	for _, dst := range []*int32{&out.TableID, &out.PartIndex, &out.RowStart, &out.RowCount} {
		v, err := r.u32()
		if err != nil {
			return nil, err
		}
		*dst = int32(v)
	}
	return out, nil
}

// EncodeMigrateReadResponse serializes a row-range read response.
func EncodeMigrateReadResponse(m *MigrateReadResponse) []byte {
	var w buffer
	w.u32(uint32(m.Rows))
	w.u32(uint32(m.Dim))
	w.u32(uint32(m.Enc))
	w.f32s(m.Data)
	w.bytes(m.Raw)
	return w.b
}

// DecodeMigrateReadResponse parses a row-range read response.
func DecodeMigrateReadResponse(b []byte) (*MigrateReadResponse, error) {
	r := reader{b: b}
	out := &MigrateReadResponse{}
	for _, dst := range []*int32{&out.Rows, &out.Dim, &out.Enc} {
		v, err := r.u32()
		if err != nil {
			return nil, err
		}
		*dst = int32(v)
	}
	var err error
	if out.Data, err = r.f32s(); err != nil {
		return nil, err
	}
	if out.Raw, err = r.bytes(); err != nil {
		return nil, err
	}
	return out, nil
}

// EncodeMigrateChunk serializes a row-range delivery.
func EncodeMigrateChunk(m *MigrateChunk) []byte {
	var w buffer
	w.u32(uint32(m.TableID))
	w.u32(uint32(m.PartIndex))
	w.u32(uint32(m.RowStart))
	w.u32(uint32(m.Dim))
	w.u32(uint32(m.Enc))
	w.f32s(m.Data)
	w.bytes(m.Raw)
	return w.b
}

// DecodeMigrateChunk parses a row-range delivery.
func DecodeMigrateChunk(b []byte) (*MigrateChunk, error) {
	r := reader{b: b}
	out := &MigrateChunk{}
	for _, dst := range []*int32{&out.TableID, &out.PartIndex, &out.RowStart, &out.Dim, &out.Enc} {
		v, err := r.u32()
		if err != nil {
			return nil, err
		}
		*dst = int32(v)
	}
	var err error
	if out.Data, err = r.f32s(); err != nil {
		return nil, err
	}
	if out.Raw, err = r.bytes(); err != nil {
		return nil, err
	}
	if out.Enc == TierEncFP32 && out.Dim > 0 && int32(len(out.Data))%out.Dim != 0 {
		return nil, fmt.Errorf("core: migrate chunk has %d values for dim %d", len(out.Data), out.Dim)
	}
	if out.Enc != TierEncFP32 && out.Dim > 0 {
		stride, serr := tierEncStride(out.Enc, out.Dim)
		if serr != nil {
			return nil, serr
		}
		if len(out.Raw)%stride != 0 {
			return nil, fmt.Errorf("core: migrate chunk has %d raw bytes for row stride %d", len(out.Raw), stride)
		}
	}
	return out, nil
}

// EncodeMigrateCommit serializes a cutover request.
func EncodeMigrateCommit(m *MigrateCommit) []byte {
	var w buffer
	w.u32(uint32(m.TableID))
	w.u32(uint32(m.PartIndex))
	return w.b
}

// DecodeMigrateCommit parses a cutover request.
func DecodeMigrateCommit(b []byte) (*MigrateCommit, error) {
	r := reader{b: b}
	tid, err := r.u32()
	if err != nil {
		return nil, err
	}
	part, err := r.u32()
	if err != nil {
		return nil, err
	}
	return &MigrateCommit{TableID: int32(tid), PartIndex: int32(part)}, nil
}

// EncodeMigrateForward serializes a forward-installation request.
func EncodeMigrateForward(m *MigrateForward) []byte {
	var w buffer
	w.u32(uint32(m.TableID))
	w.u32(uint32(m.PartIndex))
	w.str(m.Service)
	w.str(m.Addr)
	encodeBool(&w, m.Release)
	return w.b
}

// DecodeMigrateForward parses a forward-installation request.
func DecodeMigrateForward(b []byte) (*MigrateForward, error) {
	r := reader{b: b}
	tid, err := r.u32()
	if err != nil {
		return nil, err
	}
	part, err := r.u32()
	if err != nil {
		return nil, err
	}
	out := &MigrateForward{TableID: int32(tid), PartIndex: int32(part)}
	if out.Service, err = r.str(); err != nil {
		return nil, err
	}
	if out.Addr, err = r.str(); err != nil {
		return nil, err
	}
	if out.Release, err = decodeBool(&r); err != nil {
		return nil, err
	}
	return out, nil
}

// EncodeEpochResponse serializes an epoch acknowledgement.
func EncodeEpochResponse(m *EpochResponse) []byte {
	var w buffer
	w.u64(m.Epoch)
	return w.b
}

// DecodeEpochResponse parses an epoch acknowledgement.
func DecodeEpochResponse(b []byte) (*EpochResponse, error) {
	r := reader{b: b}
	e, err := r.u64()
	if err != nil {
		return nil, err
	}
	return &EpochResponse{Epoch: e}, nil
}
