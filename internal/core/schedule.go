package core

import (
	"repro/internal/nn"
)

// buildSchedule compiles the program's dense-blob liveness into an
// nn.BlobSchedule so batch execution draws output blobs from a pooled
// arena instead of allocating. It walks the exact op sequence runBatch
// assembles (preOps, then the in-line SLS or the per-batch RPC ops plus
// their wait, then postOps, per net in order), records for every
// statically-shaped dense blob the op index that defines it and the last
// index that reads it, and lets the interval packer overlap dead blobs.
//
// Blobs whose shape or producer is not static — the fused embedding and
// per-table pooled blobs delivered by RPC futures in distributed plans —
// simply never enter the schedule; the ops that consume them are
// unaffected, and any op whose output cannot be scheduled falls back to
// a fresh allocation at run time.
func buildSchedule(prog *engineProgram) (*nn.BlobSchedule, error) {
	type binfo struct {
		cols, def, last int
	}
	infos := make(map[string]*binfo)
	alias := make(map[string]string)
	var order []string

	resolve := func(name string) string {
		if src, ok := alias[name]; ok {
			return src
		}
		return name
	}
	idx := 0
	define := func(name string, cols int) {
		if cols <= 0 {
			return
		}
		if _, dup := infos[name]; dup {
			return
		}
		infos[name] = &binfo{cols: cols, def: idx, last: idx}
		order = append(order, name)
	}
	use := func(name string) {
		if b, ok := infos[resolve(name)]; ok {
			b.last = idx
		}
	}
	colsOf := func(name string) int {
		if b, ok := infos[resolve(name)]; ok {
			return b.cols
		}
		return -1
	}

	// The per-net dense inputs are copied into the workspace before any
	// op runs: alive from index -1.
	for _, np := range prog.nets {
		name := "dense_" + np.spec.Name
		infos[name] = &binfo{cols: np.spec.DenseDim, def: -1, last: -1}
		order = append(order, name)
	}

	scan := func(op nn.Op) {
		switch o := op.(type) {
		case *nn.ScaleClip:
			use(o.Blob)
		case *nn.Activation:
			use(o.Blob)
		case *nn.FC:
			use(o.Input)
			define(o.Output, o.W.Cols)
		case *nn.FusedFC:
			use(o.Input)
			define(o.Output, o.W.Cols)
		case *nn.ConcatOp:
			cols := 0
			for _, in := range o.Inputs {
				use(in)
				if c := colsOf(in); c < 0 || cols < 0 {
					cols = -1
				} else {
					cols += c
				}
			}
			if cols > 0 {
				define(o.Output, cols)
			}
		case *nn.SplitBlob:
			use(o.Input)
			define(o.Output, o.ToCol-o.FromCol)
		case *nn.AllocEmb:
			define(o.Output, o.Cols)
		case *nn.FusedSLS:
			use(o.Output)
			for i := range o.Entries {
				if e := &o.Entries[i]; e.CopyOut != "" {
					define(e.CopyOut, e.Table.Dim())
				}
			}
		case *nn.Interaction:
			for _, f := range o.Features {
				use(f)
			}
			use(o.Passthrough)
			if pc := colsOf(o.Passthrough); pc >= 0 {
				f := len(o.Features)
				define(o.Output, pc+f*(f-1)/2)
			}
		case *renameOp:
			// The alias shares the source's storage: future reads of the
			// alias must keep the source alive.
			use(o.from)
			alias[o.to] = resolve(o.from)
		}
		idx++
	}

	for _, np := range prog.nets {
		for _, op := range np.preOps {
			scan(op)
		}
		if np.slsOp != nil {
			scan(np.slsOp)
		} else {
			// Per-batch RPC ops plus their wait op occupy these indices at
			// run time; they define future-backed blobs the schedule
			// ignores.
			idx += len(np.remote) + 1
		}
		for _, op := range np.postOps {
			scan(op)
		}
	}

	// The final net's output is read after the run (score extraction):
	// pin it past the last op so nothing overlaps it.
	if n := len(prog.nets); n > 0 {
		if b, ok := infos[resolve(prog.nets[n-1].outBlob)]; ok {
			b.last = idx
		}
	}

	specs := make([]nn.BlobSpec, 0, len(order))
	for _, name := range order {
		b := infos[name]
		specs = append(specs, nn.BlobSpec{Name: name, Cols: b.cols, Def: b.def, LastUse: b.last})
	}
	return nn.NewBlobSchedule(specs)
}
