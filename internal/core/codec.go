// Package core implements the distributed inference runtime: the main
// shard engine that executes dense layers and replaces sparse operators
// with asynchronous RPC operators, the sparse shard service that serves
// embedding lookups, and the binary payload codecs between them.
//
// This is the Go analogue of the paper's customized Thrift + Caffe2 stack
// (Section III-C): the engine compiles a model.Model plus a sharding.Plan
// into per-net programs; requests are split into batches executed in
// parallel; each batch's RPC operators fan out asynchronously to the
// sparse shards holding that net's tables and the pooled results are
// merged (for row-partitioned tables, partial pools are summed — exact,
// because sum pooling distributes over row partitions).
package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/embedding"
	"repro/internal/tensor"
)

// SparseEntry identifies one table (or one row-partition of a table) in a
// sparse RPC, together with the bags to pool. PartIndex/NumParts are
// (0, 1) for whole tables; for partitions, bag indices are already
// localized (logical/NumParts) by the caller.
type SparseEntry struct {
	TableID   int32
	PartIndex int32
	NumParts  int32
	Bags      []embedding.Bag
}

// SparseRequest asks one sparse shard to pool a set of entries belonging
// to one net.
type SparseRequest struct {
	Net     string
	Entries []SparseEntry
}

// PooledEntry is one pooled (or partially pooled) result: a bags×dim
// matrix for the table.
type PooledEntry struct {
	TableID   int32
	PartIndex int32
	Rows      int32
	Cols      int32
	Data      []float32
}

// SparseResponse carries pooled results for every requested entry, in
// request order.
type SparseResponse struct {
	Entries []PooledEntry
}

// RankingRequest is the wire form of a workload request hitting the main
// shard: per-net dense features plus per-table raw sparse ID bags.
type RankingRequest struct {
	ID    uint64
	Items int32
	// Dense holds one matrix per net, keyed by net name.
	Dense map[string]*tensor.Matrix
	// Bags holds raw sparse IDs per table ID.
	Bags map[int32][]embedding.Bag
}

// RankingResponse carries one score per item.
type RankingResponse struct {
	Scores []float32
}

var errTruncated = errors.New("core: truncated payload")

// buffer is a minimal append-only encoder.
type buffer struct{ b []byte }

func (w *buffer) u32(v uint32) {
	var tmp [4]byte
	binary.LittleEndian.PutUint32(tmp[:], v)
	w.b = append(w.b, tmp[:]...)
}
func (w *buffer) u64(v uint64) {
	var tmp [8]byte
	binary.LittleEndian.PutUint64(tmp[:], v)
	w.b = append(w.b, tmp[:]...)
}
func (w *buffer) str(s string) {
	w.u32(uint32(len(s)))
	w.b = append(w.b, s...)
}
func (w *buffer) f32s(xs []float32) {
	w.u32(uint32(len(xs)))
	off := len(w.b)
	w.b = append(w.b, make([]byte, 4*len(xs))...)
	for i, x := range xs {
		binary.LittleEndian.PutUint32(w.b[off+4*i:], math.Float32bits(x))
	}
}
func (w *buffer) i32s(xs []int32) {
	w.u32(uint32(len(xs)))
	off := len(w.b)
	w.b = append(w.b, make([]byte, 4*len(xs))...)
	for i, x := range xs {
		binary.LittleEndian.PutUint32(w.b[off+4*i:], uint32(x))
	}
}
func (w *buffer) bytes(b []byte) {
	w.u32(uint32(len(b)))
	w.b = append(w.b, b...)
}
func (w *buffer) bags(bags []embedding.Bag) {
	w.u32(uint32(len(bags)))
	for _, bag := range bags {
		w.i32s(bag.Indices)
	}
}

// reader is the matching decoder.
type reader struct{ b []byte }

func (r *reader) u32() (uint32, error) {
	if len(r.b) < 4 {
		return 0, errTruncated
	}
	v := binary.LittleEndian.Uint32(r.b)
	r.b = r.b[4:]
	return v, nil
}
func (r *reader) u64() (uint64, error) {
	if len(r.b) < 8 {
		return 0, errTruncated
	}
	v := binary.LittleEndian.Uint64(r.b)
	r.b = r.b[8:]
	return v, nil
}
func (r *reader) str() (string, error) {
	n, err := r.u32()
	if err != nil || uint32(len(r.b)) < n {
		return "", errTruncated
	}
	s := string(r.b[:n])
	r.b = r.b[n:]
	return s, nil
}
func (r *reader) f32s() ([]float32, error) {
	n, err := r.u32()
	if err != nil || uint64(len(r.b)) < uint64(n)*4 {
		return nil, errTruncated
	}
	out := make([]float32, n)
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(r.b[4*i:]))
	}
	r.b = r.b[4*n:]
	return out, nil
}
func (r *reader) i32s() ([]int32, error) {
	n, err := r.u32()
	if err != nil || uint64(len(r.b)) < uint64(n)*4 {
		return nil, errTruncated
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(r.b[4*i:]))
	}
	r.b = r.b[4*n:]
	return out, nil
}
func (r *reader) bytes() ([]byte, error) {
	n, err := r.u32()
	if err != nil || uint32(len(r.b)) < n {
		return nil, errTruncated
	}
	out := append([]byte(nil), r.b[:n]...)
	r.b = r.b[n:]
	return out, nil
}
func (r *reader) bags() ([]embedding.Bag, error) {
	n, err := r.u32()
	if err != nil {
		return nil, err
	}
	out := make([]embedding.Bag, n)
	for i := range out {
		idx, err := r.i32s()
		if err != nil {
			return nil, err
		}
		if len(idx) > 0 {
			out[i].Indices = idx
		}
	}
	return out, nil
}

// EncodeSparseRequest serializes a sparse RPC request.
func EncodeSparseRequest(req *SparseRequest) []byte {
	var w buffer
	w.str(req.Net)
	w.u32(uint32(len(req.Entries)))
	for _, e := range req.Entries {
		w.u32(uint32(e.TableID))
		w.u32(uint32(e.PartIndex))
		w.u32(uint32(e.NumParts))
		w.bags(e.Bags)
	}
	return w.b
}

// DecodeSparseRequest parses a sparse RPC request.
func DecodeSparseRequest(b []byte) (*SparseRequest, error) {
	r := reader{b: b}
	net, err := r.str()
	if err != nil {
		return nil, fmt.Errorf("core: sparse request net: %w", err)
	}
	n, err := r.u32()
	if err != nil {
		return nil, err
	}
	out := &SparseRequest{Net: net, Entries: make([]SparseEntry, n)}
	for i := range out.Entries {
		e := &out.Entries[i]
		var v uint32
		if v, err = r.u32(); err != nil {
			return nil, err
		}
		e.TableID = int32(v)
		if v, err = r.u32(); err != nil {
			return nil, err
		}
		e.PartIndex = int32(v)
		if v, err = r.u32(); err != nil {
			return nil, err
		}
		e.NumParts = int32(v)
		if e.Bags, err = r.bags(); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// EncodeSparseResponse serializes pooled results.
func EncodeSparseResponse(resp *SparseResponse) []byte {
	var w buffer
	w.u32(uint32(len(resp.Entries)))
	for _, e := range resp.Entries {
		w.u32(uint32(e.TableID))
		w.u32(uint32(e.PartIndex))
		w.u32(uint32(e.Rows))
		w.u32(uint32(e.Cols))
		w.f32s(e.Data)
	}
	return w.b
}

// DecodeSparseResponse parses pooled results.
func DecodeSparseResponse(b []byte) (*SparseResponse, error) {
	r := reader{b: b}
	n, err := r.u32()
	if err != nil {
		return nil, err
	}
	out := &SparseResponse{Entries: make([]PooledEntry, n)}
	for i := range out.Entries {
		e := &out.Entries[i]
		var v uint32
		if v, err = r.u32(); err != nil {
			return nil, err
		}
		e.TableID = int32(v)
		if v, err = r.u32(); err != nil {
			return nil, err
		}
		e.PartIndex = int32(v)
		if v, err = r.u32(); err != nil {
			return nil, err
		}
		e.Rows = int32(v)
		if v, err = r.u32(); err != nil {
			return nil, err
		}
		e.Cols = int32(v)
		if e.Data, err = r.f32s(); err != nil {
			return nil, err
		}
		if int32(len(e.Data)) != e.Rows*e.Cols {
			return nil, fmt.Errorf("core: pooled entry %d has %d values for %dx%d", i, len(e.Data), e.Rows, e.Cols)
		}
	}
	return out, nil
}

// EncodeRankingRequest serializes a ranking request.
func EncodeRankingRequest(req *RankingRequest) []byte {
	var w buffer
	w.u64(req.ID)
	w.u32(uint32(req.Items))
	w.u32(uint32(len(req.Dense)))
	for _, name := range sortedKeys(req.Dense) {
		m := req.Dense[name]
		w.str(name)
		w.u32(uint32(m.Rows))
		w.u32(uint32(m.Cols))
		w.f32s(m.Data)
	}
	w.u32(uint32(len(req.Bags)))
	for _, tid := range sortedBagKeys(req.Bags) {
		w.u32(uint32(tid))
		w.bags(req.Bags[tid])
	}
	return w.b
}

// DecodeRankingRequest parses a ranking request.
func DecodeRankingRequest(b []byte) (*RankingRequest, error) {
	r := reader{b: b}
	id, err := r.u64()
	if err != nil {
		return nil, err
	}
	items, err := r.u32()
	if err != nil {
		return nil, err
	}
	out := &RankingRequest{ID: id, Items: int32(items), Dense: map[string]*tensor.Matrix{}, Bags: map[int32][]embedding.Bag{}}
	nd, err := r.u32()
	if err != nil {
		return nil, err
	}
	for i := uint32(0); i < nd; i++ {
		name, err := r.str()
		if err != nil {
			return nil, err
		}
		rows, err := r.u32()
		if err != nil {
			return nil, err
		}
		cols, err := r.u32()
		if err != nil {
			return nil, err
		}
		data, err := r.f32s()
		if err != nil {
			return nil, err
		}
		if uint32(len(data)) != rows*cols {
			return nil, fmt.Errorf("core: dense %q has %d values for %dx%d", name, len(data), rows, cols)
		}
		out.Dense[name] = tensor.FromSlice(int(rows), int(cols), data)
	}
	nb, err := r.u32()
	if err != nil {
		return nil, err
	}
	for i := uint32(0); i < nb; i++ {
		tid, err := r.u32()
		if err != nil {
			return nil, err
		}
		bags, err := r.bags()
		if err != nil {
			return nil, err
		}
		out.Bags[int32(tid)] = bags
	}
	return out, nil
}

// EncodeRankingResponse serializes scores.
func EncodeRankingResponse(resp *RankingResponse) []byte {
	var w buffer
	w.f32s(resp.Scores)
	return w.b
}

// DecodeRankingResponse parses scores.
func DecodeRankingResponse(b []byte) (*RankingResponse, error) {
	r := reader{b: b}
	scores, err := r.f32s()
	if err != nil {
		return nil, err
	}
	return &RankingResponse{Scores: scores}, nil
}

func sortedKeys(m map[string]*tensor.Matrix) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func sortedBagKeys(m map[int32][]embedding.Bag) []int32 {
	out := make([]int32, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
