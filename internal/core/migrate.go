package core

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/rpc"
	"repro/internal/sharding"
	"repro/internal/trace"
)

// Migrator drives online resharding over the ordinary RPC channel: it
// collects measured load summaries from every sparse shard, asks the
// rebalancer for an incremental migration plan, streams each move's rows
// from source to destination while both keep serving, swaps the engine's
// routing, and finally installs forwards at the sources so requests
// compiled against the old plan stay correct. Because every step is a
// wire call, the same driver reshards an in-process cluster and a fleet
// of standalone drmserve processes.
type Migrator struct {
	// Engine is the main shard's engine, rerouted at cutover.
	Engine *Engine
	// Shards maps 1-based shard numbers to their primary endpoints.
	Shards map[int]ShardEndpoint
	// Rec allocates call ids and records LayerMigration spans.
	Rec *trace.Recorder
	// ChunkRows bounds rows per streamed chunk (default 4096).
	ChunkRows int
}

// ShardEndpoint addresses one sparse shard's primary server.
type ShardEndpoint struct {
	// Service is the registry name ("sparse3").
	Service string
	// Addr is the server's dialable address, handed to sources so they
	// can forward straggler lookups to destinations.
	Addr string
	// Caller issues control-plane RPCs to the shard.
	Caller rpc.Caller
}

// RebalanceReport summarizes one rebalance pass.
type RebalanceReport struct {
	// Load is the merged measured summary the plan was computed from.
	Load *sharding.LoadSummary
	// Plan is the migration decision, including Current and Target.
	Plan *sharding.MigrationPlan
	// BytesMoved is the row data streamed across shards.
	BytesMoved int64
	// Duration covers collection through final forward installation.
	Duration time.Duration
}

// Moved reports whether the pass migrated anything.
func (r *RebalanceReport) Moved() bool { return len(r.Plan.Moves) > 0 }

// String renders the report for logs.
func (r *RebalanceReport) String() string {
	if !r.Moved() {
		return fmt.Sprintf("rebalance: no-op (max shard load %.3g) in %v",
			r.Plan.MaxLoadBefore, r.Duration.Round(time.Millisecond))
	}
	return fmt.Sprintf("rebalance: %d moves, %.1f KiB streamed, max shard load %.3g -> %.3g, in %v",
		len(r.Plan.Moves), float64(r.BytesMoved)/1024,
		r.Plan.MaxLoadBefore, r.Plan.MaxLoadAfter, r.Duration.Round(time.Millisecond))
}

func (mg *Migrator) call(ep ShardEndpoint, method string, body []byte) ([]byte, error) {
	resp, err := rpc.SyncCall(ep.Caller, &rpc.Request{
		Method: method, CallID: mg.Rec.NextID(), Body: body,
	})
	if err != nil {
		return nil, fmt.Errorf("core: %s %s: %w", ep.Service, method, err)
	}
	return resp.Body, nil
}

// CollectLoad fetches and merges every shard's load summary; reset
// clears the shards' accumulators so the next window starts fresh.
func (mg *Migrator) CollectLoad(reset bool) (*sharding.LoadSummary, error) {
	merged := sharding.NewLoadSummary()
	body := EncodeLoadRequest(&LoadRequest{Reset: reset})
	for _, shard := range sortedShardNums(mg.Shards) {
		out, err := mg.call(mg.Shards[shard], MethodSparseLoad, body)
		if err != nil {
			return nil, err
		}
		s, err := DecodeLoadSummary(out)
		if err != nil {
			return nil, fmt.Errorf("core: sparse%d load summary: %w", shard, err)
		}
		merged.Merge(s)
	}
	return merged, nil
}

// Rebalance runs one full observe→plan→migrate→cutover pass and reports
// what it did. A pass that plans no moves touches nothing.
func (mg *Migrator) Rebalance(opts sharding.RebalanceOptions) (*RebalanceReport, error) {
	start := time.Now() //lint:allow determinism rebalance wall time is operator telemetry, not planner input
	load, err := mg.CollectLoad(true)
	if err != nil {
		return nil, err
	}
	cur := mg.Engine.Plan()
	mp, err := sharding.Rebalance(mg.Engine.Config(), cur, load, opts)
	if err != nil {
		return nil, err
	}
	report := &RebalanceReport{Load: load, Plan: mp}
	if len(mp.Moves) == 0 {
		report.Duration = time.Since(start) //lint:allow determinism report duration is operator telemetry
		return report, nil
	}

	// Phase 1: stream every move's rows into destination staging while
	// both shards keep serving under the current plan. On failure,
	// best-effort abort the failed move's staging so the destination
	// does not strand a table-sized buffer (committed moves stay: they
	// are live tables the next pass can plan around).
	for _, mv := range mp.Moves {
		n, err := mg.streamMove(mv)
		report.BytesMoved += n
		if err != nil {
			if dst, ok := mg.Shards[mv.To]; ok {
				abort := EncodeMigrateCommit(&MigrateCommit{TableID: int32(mv.TableID), PartIndex: int32(mv.PartIndex)})
				_, _ = mg.call(dst, MethodMigrateAbort, abort)
			}
			return nil, err
		}
	}

	// Phase 2: cutover. The engine swaps routing first — new requests go
	// to the destinations, which are live as of commit. Then sources
	// install forwards (releasing their copies) so requests still
	// executing under the old program are answered by forwarding; the
	// window between commit and forward is covered by the source's
	// retained copy, which is byte-identical because storage is
	// immutable.
	if err := mg.Engine.Reroute(mp.Target); err != nil {
		return nil, err
	}
	for _, mv := range mp.Moves {
		src, dst := mg.Shards[mv.From], mg.Shards[mv.To]
		fwd := &MigrateForward{
			TableID: int32(mv.TableID), PartIndex: int32(mv.PartIndex),
			Service: dst.Service, Addr: dst.Addr, Release: true,
		}
		if _, err := mg.call(src, MethodMigrateForward, EncodeMigrateForward(fwd)); err != nil {
			return nil, err
		}
	}
	report.Duration = time.Since(start) //lint:allow determinism report duration is operator telemetry
	return report, nil
}

// streamMove copies one placement unit source→destination: probe shape,
// allocate staging, stream row ranges, commit. Returns bytes streamed.
func (mg *Migrator) streamMove(mv sharding.Move) (int64, error) {
	src, ok := mg.Shards[mv.From]
	if !ok {
		return 0, fmt.Errorf("core: move %v: no endpoint for source shard %d", mv, mv.From)
	}
	dst, ok := mg.Shards[mv.To]
	if !ok {
		return 0, fmt.Errorf("core: move %v: no endpoint for destination shard %d", mv, mv.To)
	}
	chunkRows := mg.ChunkRows
	if chunkRows <= 0 {
		chunkRows = 4096
	}
	tid, part := int32(mv.TableID), int32(mv.PartIndex)
	migStart := mg.Rec.Now()

	// Probe the source for the unit's actual shape (partition row counts
	// depend on the modulus split; the source knows).
	out, err := mg.call(src, MethodMigrateRead, EncodeMigrateRead(&MigrateRead{TableID: tid, PartIndex: part}))
	if err != nil {
		return 0, err
	}
	shape, err := DecodeMigrateReadResponse(out)
	if err != nil {
		return 0, err
	}

	begin := &MigrateBegin{
		TableID: tid, PartIndex: part, NumParts: int32(mv.NumParts),
		Rows: shape.Rows, Dim: shape.Dim, Enc: shape.Enc,
	}
	if _, err := mg.call(dst, MethodMigrateBegin, EncodeMigrateBegin(begin)); err != nil {
		return 0, err
	}
	rawStride := 0
	if shape.Enc != TierEncFP32 {
		if rawStride, err = tierEncStride(shape.Enc, shape.Dim); err != nil {
			return 0, fmt.Errorf("core: move %v: %w", mv, err)
		}
	}

	var moved int64
	for row := int32(0); row < shape.Rows; row += int32(chunkRows) {
		count := int32(chunkRows)
		if row+count > shape.Rows {
			count = shape.Rows - row
		}
		out, err := mg.call(src, MethodMigrateRead, EncodeMigrateRead(&MigrateRead{
			TableID: tid, PartIndex: part, RowStart: row, RowCount: count,
		}))
		if err != nil {
			return moved, err
		}
		chunk, err := DecodeMigrateReadResponse(out)
		if err != nil {
			return moved, err
		}
		if chunk.Enc != shape.Enc {
			return moved, fmt.Errorf("core: move %v: encoding changed %d -> %d mid-stream", mv, shape.Enc, chunk.Enc)
		}
		if shape.Enc == TierEncFP32 {
			if int32(len(chunk.Data)) != count*shape.Dim {
				return moved, fmt.Errorf("core: move %v: read %d values for %d rows", mv, len(chunk.Data), count)
			}
			moved += int64(len(chunk.Data)) * 4
		} else {
			if len(chunk.Raw) != int(count)*rawStride {
				return moved, fmt.Errorf("core: move %v: read %d raw bytes for %d rows", mv, len(chunk.Raw), count)
			}
			moved += int64(len(chunk.Raw))
		}
		push := &MigrateChunk{
			TableID: tid, PartIndex: part, RowStart: row,
			Dim: shape.Dim, Enc: shape.Enc, Data: chunk.Data, Raw: chunk.Raw,
		}
		if _, err := mg.call(dst, MethodMigrateChunk, EncodeMigrateChunk(push)); err != nil {
			return moved, err
		}
	}

	if _, err := mg.call(dst, MethodMigrateCommit, EncodeMigrateCommit(&MigrateCommit{TableID: tid, PartIndex: part})); err != nil {
		return moved, err
	}
	mg.Rec.Record(trace.Span{
		Layer: trace.LayerMigration,
		Name:  fmt.Sprintf("migrate/move/t%d.%d/%s->%s", mv.TableID, mv.PartIndex, src.Service, dst.Service),
		Start: migStart, Dur: mg.Rec.Now().Sub(migStart),
	})
	return moved, nil
}

func sortedShardNums(m map[int]ShardEndpoint) []int {
	out := make([]int, 0, len(m))
	for n := range m {
		out = append(out, n)
	}
	sort.Ints(out)
	return out
}
