package core

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"path/filepath"

	"repro/internal/embedding"
	"repro/internal/mmapfile"
	"repro/internal/model"
	"repro/internal/quant"
	"repro/internal/sharding"
	"repro/internal/trace"
)

// Version-2 shard files: the persistent-table half of the model-freshness
// refactor. Where v1 is a plain fp32 row stream a shard must copy into
// heap tables at boot, v2 lays every table section out page-aligned with
// a per-section CRC, in the table's *serving* encoding (fp32, fp16, or
// int8 via the quant codecs) — so a booting shard memory-maps the file
// and serves lookups straight from the page cache. Boot becomes
// mmap-and-serve instead of regenerate-everything, and the bytes on disk
// are bit-identical to what MaterializeShardsTiered would have built.
//
// Layout (all integers little-endian):
//
//	magic "DRSH" | u32 version=2 | u32 shard | u32 entry count
//	directory: 64-byte entries of
//	    u32 tableID, partIndex, numParts, rows, dim, enc
//	    u64 hdrOff, u64 dataOff, u64 hdrLen, u64 dataLen
//	    u32 hdrCRC, u32 dataCRC
//	sections, each aligned to 4096 bytes:
//	    fp32: data = rows×dim float32 bits          (no hdr)
//	    fp16: data = rows×dim binary16 values       (no hdr)
//	    int8: hdr  = rows fp16 scales ++ rows fp16 biases
//	          data = rows×stride packed codes
const (
	shardVersion2     = 2
	shardAlign        = 4096
	shardDirEntrySize = 64
)

// alignUp rounds off up to the next section boundary.
func alignUp(off int64) int64 { return (off + shardAlign - 1) &^ int64(shardAlign-1) }

// ShardFilePath names shard `shard` of a model inside dir — the layout
// convention shardtool export-v2 writes and drmserve -shard-dir reads.
func ShardFilePath(dir, modelName string, shard int) string {
	return filepath.Join(dir, fmt.Sprintf("%s.shard%d", modelName, shard))
}

// shardUnit is one table (or row-partition) headed for a shard file.
type shardUnit struct {
	tableID, partIndex, numParts int
	dense                        *embedding.Dense
}

// planUnits lists the placement units shard `shard` serves, with their
// fp32 source rows, in plan order (whole tables then partitions).
func planUnits(m *model.Model, plan *sharding.Plan, shard int) ([]shardUnit, error) {
	if !plan.IsDistributed() {
		return nil, fmt.Errorf("core: singular plans have no shards to export")
	}
	if shard < 1 || shard > plan.NumShards {
		return nil, fmt.Errorf("core: shard %d outside [1, %d]", shard, plan.NumShards)
	}
	a := &plan.Shards[shard-1]
	units := make([]shardUnit, 0, len(a.Tables)+len(a.Parts))
	for _, id := range a.Tables {
		dense, ok := m.Tables[id].(*embedding.Dense)
		if !ok {
			return nil, fmt.Errorf("core: table %d is not fp32 dense; export quantized models whole", id)
		}
		units = append(units, shardUnit{tableID: id, partIndex: 0, numParts: 1, dense: dense})
	}
	for _, pr := range a.Parts {
		dense, ok := m.Tables[pr.TableID].(*embedding.Dense)
		if !ok {
			return nil, fmt.Errorf("core: table %d is not fp32 dense; cannot partition", pr.TableID)
		}
		parts := embedding.PartitionRows(dense, pr.NumParts)
		units = append(units, shardUnit{
			tableID: pr.TableID, partIndex: pr.PartIndex, numParts: pr.NumParts,
			dense: parts[pr.PartIndex].Local,
		})
	}
	return units, nil
}

// encodeUnit serializes one unit's rows in the encoding a tier plan
// assigns its table — the same ToFP16/Quantize transforms tierWrap
// applies at install time, so file bytes match in-memory serving bytes.
func encodeUnit(u shardUnit, tier *sharding.TierPlan) (enc int32, hdr, data []byte) {
	enc = TierEncFP32
	if tier != nil {
		switch tier.Precision(u.tableID) {
		case sharding.PrecisionFP16:
			enc = TierEncFP16
		case sharding.PrecisionInt8:
			enc = TierEncInt8
		}
	}
	d := u.dense
	switch enc {
	case TierEncFP16:
		e := quant.EncodeFP16Rows(d.Data, d.RowsN, d.DimN)
		data = make([]byte, 2*len(e.Data))
		for i, v := range e.Data {
			binary.LittleEndian.PutUint16(data[2*i:], v)
		}
	case TierEncInt8:
		q := quant.QuantizeRows(d.Data, d.RowsN, d.DimN, quant.Bits8)
		hdr = make([]byte, 4*q.Rows)
		for i, v := range q.Scales {
			binary.LittleEndian.PutUint16(hdr[2*i:], v)
		}
		for i, v := range q.Biases {
			binary.LittleEndian.PutUint16(hdr[2*q.Rows+2*i:], v)
		}
		data = q.Packed
	default:
		data = make([]byte, 4*len(d.Data))
		for i, v := range d.Data {
			binary.LittleEndian.PutUint32(data[4*i:], math.Float32bits(v))
		}
	}
	return enc, hdr, data
}

// ExportShardV2 writes shard number `shard` (1-based) of the plan to w in
// the version-2 mmap-able format. A nil tier keeps every table fp32; with
// one, each table section is stored in its planned cold-tier precision.
func ExportShardV2(m *model.Model, plan *sharding.Plan, shard int, w io.Writer, tier *sharding.TierPlan) error {
	units, err := planUnits(m, plan, shard)
	if err != nil {
		return err
	}
	return writeShardV2(shard, units, w, tier)
}

// WriteShardFileV2 re-serializes a parsed shard file in the v2 format —
// the shardtool convert path that upgrades v1 exports in place. Source
// tables must hold fp32 rows (v1 files always do); already-encoded
// tables should be re-exported from the model instead.
func WriteShardFileV2(sf *ShardFileData, w io.Writer, tier *sharding.TierPlan) error {
	units := make([]shardUnit, 0, len(sf.Tables))
	for _, t := range sf.Tables {
		dense, ok := t.Table.(*embedding.Dense)
		if !ok {
			return fmt.Errorf("core: table %d part %d is %T, not fp32; re-export from the model", t.TableID, t.PartIndex, t.Table)
		}
		units = append(units, shardUnit{
			tableID: t.TableID, partIndex: t.PartIndex, numParts: t.NumParts, dense: dense,
		})
	}
	return writeShardV2(sf.Shard, units, w, tier)
}

// writeShardV2 lays the units out and writes the complete v2 image.
func writeShardV2(shard int, units []shardUnit, w io.Writer, tier *sharding.TierPlan) error {
	type section struct {
		u               shardUnit
		enc             int32
		hdr, data       []byte
		hdrOff, dataOff int64
		hdrCRC, dataCRC uint32
	}
	secs := make([]section, len(units))
	off := alignUp(int64(16 + shardDirEntrySize*len(units)))
	for i, u := range units {
		s := &secs[i]
		s.u = u
		s.enc, s.hdr, s.data = encodeUnit(u, tier)
		if len(s.hdr) > 0 {
			s.hdrOff = off
			s.hdrCRC = crc32.ChecksumIEEE(s.hdr)
			off = alignUp(off + int64(len(s.hdr)))
		}
		s.dataOff = off
		s.dataCRC = crc32.ChecksumIEEE(s.data)
		off = alignUp(off + int64(len(s.data)))
	}

	bw := bufio.NewWriterSize(w, 1<<20)
	hdr := make([]byte, 16)
	copy(hdr, shardMagic)
	binary.LittleEndian.PutUint32(hdr[4:], shardVersion2)
	binary.LittleEndian.PutUint32(hdr[8:], uint32(shard))
	binary.LittleEndian.PutUint32(hdr[12:], uint32(len(units)))
	if _, err := bw.Write(hdr); err != nil {
		return err
	}
	ent := make([]byte, shardDirEntrySize)
	for i := range secs {
		s := &secs[i]
		binary.LittleEndian.PutUint32(ent[0:], uint32(s.u.tableID))
		binary.LittleEndian.PutUint32(ent[4:], uint32(s.u.partIndex))
		binary.LittleEndian.PutUint32(ent[8:], uint32(s.u.numParts))
		binary.LittleEndian.PutUint32(ent[12:], uint32(s.u.dense.RowsN))
		binary.LittleEndian.PutUint32(ent[16:], uint32(s.u.dense.DimN))
		binary.LittleEndian.PutUint32(ent[20:], uint32(s.enc))
		binary.LittleEndian.PutUint64(ent[24:], uint64(s.hdrOff))
		binary.LittleEndian.PutUint64(ent[32:], uint64(s.dataOff))
		binary.LittleEndian.PutUint64(ent[40:], uint64(len(s.hdr)))
		binary.LittleEndian.PutUint64(ent[48:], uint64(len(s.data)))
		binary.LittleEndian.PutUint32(ent[56:], s.hdrCRC)
		binary.LittleEndian.PutUint32(ent[60:], s.dataCRC)
		if _, err := bw.Write(ent); err != nil {
			return err
		}
	}
	// Sections in offset order, zero-padded to their aligned starts. The
	// exporter tracks the written offset instead of seeking, so any
	// io.Writer (pipes included) can receive a shard file.
	pos := int64(16 + shardDirEntrySize*len(units))
	pad := func(to int64) error {
		for pos < to {
			n := to - pos
			if n > int64(len(zeroPage)) {
				n = int64(len(zeroPage))
			}
			if _, err := bw.Write(zeroPage[:n]); err != nil {
				return err
			}
			pos += n
		}
		return nil
	}
	for i := range secs {
		s := &secs[i]
		if len(s.hdr) > 0 {
			if err := pad(s.hdrOff); err != nil {
				return err
			}
			if _, err := bw.Write(s.hdr); err != nil {
				return err
			}
			pos += int64(len(s.hdr))
		}
		if err := pad(s.dataOff); err != nil {
			return err
		}
		if _, err := bw.Write(s.data); err != nil {
			return err
		}
		pos += int64(len(s.data))
	}
	return bw.Flush()
}

var zeroPage [shardAlign]byte

// ShardTable is one parsed shard-file table: placement metadata plus a
// serving-ready embedding table (possibly backed by mapped file bytes).
type ShardTable struct {
	TableID, PartIndex, NumParts int
	Rows, Dim                    int
	Enc                          int32
	Table                        embedding.Table
}

// ShardFileData is a fully parsed shard file.
type ShardFileData struct {
	Shard  int
	Tables []ShardTable
}

// NewShard installs the parsed tables into a fresh serving shard
// recording to rec.
func (sf *ShardFileData) NewShard(rec *trace.Recorder) *SparseShard {
	sh := NewSparseShard(ServiceName(sf.Shard), rec)
	for _, t := range sf.Tables {
		if t.NumParts == 1 {
			sh.AddTable(t.TableID, t.Table)
		} else {
			sh.AddPart(t.TableID, t.PartIndex, t.Table)
		}
	}
	return sh
}

// parseShardV2 parses a complete v2 shard file image. With views set,
// table storage aliases data's bytes (the zero-copy mmap path: data must
// outlive the returned tables); otherwise rows are decoded into fresh
// heap storage. Every section's CRC is verified either way.
func parseShardV2(data []byte, views bool) (*ShardFileData, error) {
	if len(data) < 16 || string(data[:4]) != shardMagic {
		return nil, fmt.Errorf("%w: bad magic", errBadShardFile)
	}
	if v := binary.LittleEndian.Uint32(data[4:]); v != shardVersion2 {
		return nil, fmt.Errorf("%w: version %d, want %d", errBadShardFile, v, shardVersion2)
	}
	shard := int(binary.LittleEndian.Uint32(data[8:]))
	count := int(binary.LittleEndian.Uint32(data[12:]))
	if shard < 1 || count < 0 || count > 1<<16 {
		return nil, fmt.Errorf("%w: shard %d, %d entries", errBadShardFile, shard, count)
	}
	if int64(len(data)) < 16+int64(shardDirEntrySize)*int64(count) {
		return nil, fmt.Errorf("%w: truncated directory", errBadShardFile)
	}
	out := &ShardFileData{Shard: shard, Tables: make([]ShardTable, 0, count)}
	for i := 0; i < count; i++ {
		ent := data[16+shardDirEntrySize*i:]
		t := ShardTable{
			TableID:   int(binary.LittleEndian.Uint32(ent[0:])),
			PartIndex: int(binary.LittleEndian.Uint32(ent[4:])),
			NumParts:  int(binary.LittleEndian.Uint32(ent[8:])),
			Rows:      int(binary.LittleEndian.Uint32(ent[12:])),
			Dim:       int(binary.LittleEndian.Uint32(ent[16:])),
			Enc:       int32(binary.LittleEndian.Uint32(ent[20:])),
		}
		hdrOff := int64(binary.LittleEndian.Uint64(ent[24:]))
		dataOff := int64(binary.LittleEndian.Uint64(ent[32:]))
		hdrLen := int64(binary.LittleEndian.Uint64(ent[40:]))
		dataLen := int64(binary.LittleEndian.Uint64(ent[48:]))
		hdrCRC := binary.LittleEndian.Uint32(ent[56:])
		dataCRC := binary.LittleEndian.Uint32(ent[60:])
		if t.Rows <= 0 || t.Dim <= 0 || t.Rows > 1<<28 || t.Dim > 1<<12 ||
			t.NumParts < 1 || t.PartIndex < 0 || t.PartIndex >= t.NumParts {
			return nil, fmt.Errorf("%w: entry %d shape %dx%d part %d/%d", errBadShardFile, i, t.Rows, t.Dim, t.PartIndex, t.NumParts)
		}
		wantHdr, wantData, err := sectionSizes(t.Enc, t.Rows, t.Dim)
		if err != nil {
			return nil, fmt.Errorf("%w: entry %d: %v", errBadShardFile, i, err)
		}
		if hdrLen != wantHdr || dataLen != wantData {
			return nil, fmt.Errorf("%w: entry %d section sizes %d/%d, want %d/%d", errBadShardFile, i, hdrLen, dataLen, wantHdr, wantData)
		}
		hdrSec, err := fileSection(data, hdrOff, hdrLen, hdrCRC)
		if err != nil {
			return nil, fmt.Errorf("%w: entry %d hdr: %v", errBadShardFile, i, err)
		}
		dataSec, err := fileSection(data, dataOff, dataLen, dataCRC)
		if err != nil {
			return nil, fmt.Errorf("%w: entry %d data: %v", errBadShardFile, i, err)
		}
		if t.Table, err = buildTable(t, hdrSec, dataSec, views); err != nil {
			return nil, fmt.Errorf("%w: entry %d: %v", errBadShardFile, i, err)
		}
		out.Tables = append(out.Tables, t)
	}
	return out, nil
}

// sectionSizes returns the exact hdr/data byte lengths an encoding
// requires at the given shape.
func sectionSizes(enc int32, rows, dim int) (hdr, data int64, err error) {
	switch enc {
	case TierEncFP32:
		return 0, 4 * int64(rows) * int64(dim), nil
	case TierEncFP16:
		return 0, 2 * int64(rows) * int64(dim), nil
	case TierEncInt8:
		return 4 * int64(rows), int64(rows) * int64(dim), nil
	case TierEncInt4:
		return 4 * int64(rows), int64(rows) * int64((dim+1)/2), nil
	}
	return 0, 0, fmt.Errorf("unknown encoding %d", enc)
}

// fileSection bounds-checks, alignment-checks, and CRC-verifies one
// section of the file image.
func fileSection(data []byte, off, n int64, sum uint32) ([]byte, error) {
	if n == 0 {
		return nil, nil
	}
	if off < 16 || off%shardAlign != 0 || off+n > int64(len(data)) {
		return nil, fmt.Errorf("section [%d, %d) outside file of %d bytes", off, off+n, len(data))
	}
	sec := data[off : off+n]
	if got := crc32.ChecksumIEEE(sec); got != sum {
		return nil, fmt.Errorf("checksum mismatch: file says %08x, content is %08x", sum, got)
	}
	return sec, nil
}

// buildTable materializes one parsed section pair as a serving table:
// zero-copy views over the file bytes when views is set (mmap serving),
// heap decodes otherwise.
func buildTable(t ShardTable, hdr, data []byte, views bool) (embedding.Table, error) {
	views = views && mmapfile.ViewsUsable()
	switch t.Enc {
	case TierEncFP32:
		if views {
			return &embedding.Dense{RowsN: t.Rows, DimN: t.Dim, Data: mmapfile.Float32s(data)}, nil
		}
		return &embedding.Dense{RowsN: t.Rows, DimN: t.Dim, Data: mmapfile.DecodeF32(data)}, nil
	case TierEncFP16:
		vals := mmapfile.DecodeU16(data)
		if views {
			vals = mmapfile.Uint16s(data)
		}
		enc, err := quant.FP16FromParts(t.Rows, t.Dim, vals)
		if err != nil {
			return nil, err
		}
		return embedding.FP16FromEncoding(enc), nil
	case TierEncInt8, TierEncInt4:
		bits := 8
		if t.Enc == TierEncInt4 {
			bits = 4
		}
		scales := mmapfile.DecodeU16(hdr[:2*t.Rows])
		biases := mmapfile.DecodeU16(hdr[2*t.Rows:])
		packed := append([]byte(nil), data...)
		if views {
			scales = mmapfile.Uint16s(hdr[:2*t.Rows])
			biases = mmapfile.Uint16s(hdr[2*t.Rows:])
			packed = data
		}
		return embedding.QuantizedFromEncoding(t.Rows, t.Dim, bits, scales, biases, packed)
	}
	return nil, fmt.Errorf("unknown encoding %d", t.Enc)
}

// parseShardV1 parses a complete v1 file image into the structured form,
// so tooling (convert, delta-diff) treats both versions uniformly. v1
// stores only fp32 dense rows.
func parseShardV1(data []byte) (*ShardFileData, error) {
	if len(data) < 16 || string(data[:4]) != shardMagic {
		return nil, fmt.Errorf("%w: bad magic", errBadShardFile)
	}
	if v := binary.LittleEndian.Uint32(data[4:]); v != shardVersion {
		return nil, fmt.Errorf("%w: version %d, want %d", errBadShardFile, v, shardVersion)
	}
	shard := int(binary.LittleEndian.Uint32(data[8:]))
	count := int(binary.LittleEndian.Uint32(data[12:]))
	if shard < 1 || count < 0 || count > 1<<16 {
		return nil, fmt.Errorf("%w: shard %d, %d entries", errBadShardFile, shard, count)
	}
	out := &ShardFileData{Shard: shard, Tables: make([]ShardTable, 0, count)}
	off := 16
	for i := 0; i < count; i++ {
		if len(data)-off < 20 {
			return nil, fmt.Errorf("%w: entry %d meta truncated", errBadShardFile, i)
		}
		t := ShardTable{
			TableID:   int(binary.LittleEndian.Uint32(data[off:])),
			PartIndex: int(binary.LittleEndian.Uint32(data[off+4:])),
			NumParts:  int(binary.LittleEndian.Uint32(data[off+8:])),
			Rows:      int(binary.LittleEndian.Uint32(data[off+12:])),
			Dim:       int(binary.LittleEndian.Uint32(data[off+16:])),
			Enc:       TierEncFP32,
		}
		off += 20
		if t.Rows <= 0 || t.Dim <= 0 || t.Rows > 1<<28 || t.Dim > 1<<12 ||
			t.NumParts < 1 || t.PartIndex < 0 || t.PartIndex >= t.NumParts {
			return nil, fmt.Errorf("%w: entry %d shape %dx%d part %d/%d", errBadShardFile, i, t.Rows, t.Dim, t.PartIndex, t.NumParts)
		}
		n := 4 * t.Rows * t.Dim
		if len(data)-off < n {
			return nil, fmt.Errorf("%w: entry %d data truncated", errBadShardFile, i)
		}
		t.Table = &embedding.Dense{RowsN: t.Rows, DimN: t.Dim, Data: mmapfile.DecodeF32(data[off : off+n])}
		off += n
		out.Tables = append(out.Tables, t)
	}
	return out, nil
}

// LoadShardFile parses a shard file (v1 or v2) entirely into the heap —
// the tooling path (convert, delta-diff, fuzzing) where table storage
// must not alias a short-lived mapping.
func LoadShardFile(data []byte) (*ShardFileData, error) {
	if len(data) < 16 || string(data[:4]) != shardMagic {
		return nil, fmt.Errorf("%w: bad magic", errBadShardFile)
	}
	switch v := binary.LittleEndian.Uint32(data[4:]); v {
	case shardVersion:
		return parseShardV1(data)
	case shardVersion2:
		return parseShardV2(data, false)
	default:
		return nil, fmt.Errorf("%w: unsupported version %d", errBadShardFile, v)
	}
}

// nopCloser is the closer OpenShardFile returns when the shard's tables
// own their storage (heap decode or v1 import).
type nopCloser struct{}

func (nopCloser) Close() error { return nil }

// OpenShardFile boots a serving shard from a shard file, memory-mapping
// v2 files so table storage is served from the page cache (v1 files and
// big-endian hosts decode into the heap). The returned closer owns the
// mapping and must be closed only after the shard stops serving.
func OpenShardFile(path string, rec *trace.Recorder) (sh *SparseShard, shard int, closer io.Closer, err error) {
	mf, err := mmapfile.Open(path)
	if err != nil {
		return nil, 0, nil, err
	}
	data := mf.Bytes()
	if len(data) < 16 || string(data[:4]) != shardMagic {
		mf.Close()
		return nil, 0, nil, fmt.Errorf("%w: bad magic", errBadShardFile)
	}
	if v := binary.LittleEndian.Uint32(data[4:]); v != shardVersion2 {
		// v1 (or future versions ImportShard learns first): decode into
		// the heap; the mapping is not needed after import.
		defer mf.Close()
		sh, shard, err = ImportShard(bytes.NewReader(data), rec)
		if err != nil {
			return nil, 0, nil, err
		}
		return sh, shard, nopCloser{}, nil
	}
	views := mmapfile.ViewsUsable()
	sf, err := parseShardV2(data, views)
	if err != nil {
		mf.Close()
		return nil, 0, nil, err
	}
	sh = sf.NewShard(rec)
	if !views {
		mf.Close()
		return sh, sf.Shard, nopCloser{}, nil
	}
	return sh, sf.Shard, mf, nil
}
