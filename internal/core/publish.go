package core

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/quant"
	"repro/internal/rpc"
	"repro/internal/sharding"
	"repro/internal/trace"
)

// Publisher streams versioned model deltas to a serving deployment — the
// online continuation of the paper's publishing flow (Section III-A1:
// parameters "serialized from parameter servers to the respective
// inference shard"). Embedding row deltas route through the current
// sharding plan to every endpoint of every affected shard over the
// sparse.update.* protocol; dense-weight swaps go to the co-located
// engine. Delta rows travel as fp32 and are re-encoded per-row into each
// table's cold-tier precision — row-wise quantization is independent per
// row, so a republished row is bit-identical to the same row in a full
// export.
type Publisher struct {
	// Engine is the main shard's engine: its live plan routes deltas and
	// its dense parameters are swapped in-process.
	Engine *Engine
	// Shards maps 1-based shard numbers to every endpoint that must
	// receive deltas (every replica store's server). Endpoints must be
	// plain control-plane connections, never hedged: hedging an
	// update.commit would re-issue it against a store that already
	// consumed the version.
	Shards map[int][]ShardEndpoint
	// Rec allocates call IDs for the control-plane RPCs.
	Rec *trace.Recorder
	// ChunkRows bounds rows per update.rows call (default 4096).
	ChunkRows int
	// Obs, when non-nil, receives publish gauges: publish.version (high
	// water), publish.count, publish.rows, publish.bytes.
	Obs *obs.Registry
}

// TableDelta carries fresh fp32 values for a set of logical rows of one
// embedding table.
type TableDelta struct {
	TableID int
	// Rows lists logical row indices (whole-table coordinates; the
	// publisher maps them onto row partitions). Data holds len(Rows)×dim
	// values in the same order.
	Rows []int32
	Data []float32
}

// DeltaSet is one atomic publish: embedding row deltas plus an optional
// dense-parameter swap, all activating at Version.
type DeltaSet struct {
	Version uint64
	Tables  []TableDelta
	// Dense, when non-nil, replaces the engine's dense-layer parameters
	// (shape-checked) after the embedding deltas commit.
	Dense []model.NetParams
}

// PublishEvent is one endpoint's slice of a publish — the freshness
// timeline, mirroring the migration MoveEvent style.
type PublishEvent struct {
	Version  uint64
	Shard    int
	Service  string
	Addr     string
	Tables   int
	RowsSent int
	Bytes    int64
	Epoch    uint64
	Duration time.Duration
}

// PublishReport summarizes one Publish call.
type PublishReport struct {
	Version  uint64
	Events   []PublishEvent
	RowsSent int
	Bytes    int64
	// DenseSwapped reports whether the delta set replaced dense weights.
	DenseSwapped bool
	Duration     time.Duration
}

// String renders the report for logs.
func (r *PublishReport) String() string {
	dense := ""
	if r.DenseSwapped {
		dense = " + dense swap"
	}
	return fmt.Sprintf("publish v%d: %d endpoints, %d rows, %.1f KiB%s in %v",
		r.Version, len(r.Events), r.RowsSent, float64(r.Bytes)/1024, dense,
		r.Duration.Round(time.Millisecond))
}

// deltaUnit is one placement unit's share of a table delta: the local
// staging rows it must overwrite, paired with offsets into the delta's
// fp32 payload.
type deltaUnit struct {
	tableID, partIndex, numParts int
	localRows                    []int32 // sorted local row indices
	srcRows                      []int32 // delta payload row offsets, aligned with localRows
	dim                          int
	data                         []float32 // the delta's full payload
}

// planUnitsFor maps each table delta onto the plan's placement units,
// returning per-shard work lists. Modulus partitioning puts logical row
// r at (part r%numParts, local row r/numParts) — the same mapping
// embedding.PartitionRows uses.
func planUnitsFor(plan *sharding.Plan, deltas []TableDelta) (map[int][]*deltaUnit, error) {
	if !plan.IsDistributed() {
		return nil, fmt.Errorf("core: publish: singular plans hold no sparse shards")
	}
	type placement struct {
		shard, partIndex, numParts int
	}
	where := make(map[int][]placement)
	for si := range plan.Shards {
		a := &plan.Shards[si]
		for _, id := range a.Tables {
			where[id] = append(where[id], placement{shard: a.Shard, partIndex: 0, numParts: 1})
		}
		for _, pr := range a.Parts {
			where[pr.TableID] = append(where[pr.TableID], placement{shard: a.Shard, partIndex: pr.PartIndex, numParts: pr.NumParts})
		}
	}
	out := make(map[int][]*deltaUnit)
	for di := range deltas {
		d := &deltas[di]
		if len(d.Rows) == 0 {
			continue
		}
		if len(d.Data)%len(d.Rows) != 0 {
			return nil, fmt.Errorf("core: publish: table %d delta has %d values for %d rows", d.TableID, len(d.Data), len(d.Rows))
		}
		dim := len(d.Data) / len(d.Rows)
		places, ok := where[d.TableID]
		if !ok {
			return nil, fmt.Errorf("core: publish: table %d is not placed by the current plan", d.TableID)
		}
		for _, pl := range places {
			u := &deltaUnit{
				tableID: d.TableID, partIndex: pl.partIndex, numParts: pl.numParts,
				dim: dim, data: d.Data,
			}
			for i, r := range d.Rows {
				if pl.numParts > 1 && int(r)%pl.numParts != pl.partIndex {
					continue
				}
				u.localRows = append(u.localRows, r/int32(pl.numParts))
				u.srcRows = append(u.srcRows, int32(i))
			}
			if len(u.localRows) == 0 {
				continue
			}
			sort.Sort(byLocalRow{u})
			out[pl.shard] = append(out[pl.shard], u)
		}
	}
	for _, units := range out {
		sort.Slice(units, func(i, j int) bool {
			if units[i].tableID != units[j].tableID {
				return units[i].tableID < units[j].tableID
			}
			return units[i].partIndex < units[j].partIndex
		})
	}
	return out, nil
}

// byLocalRow co-sorts a unit's local rows and payload offsets.
type byLocalRow struct{ u *deltaUnit }

func (s byLocalRow) Len() int { return len(s.u.localRows) }
func (s byLocalRow) Less(i, j int) bool {
	return s.u.localRows[i] < s.u.localRows[j]
}
func (s byLocalRow) Swap(i, j int) {
	s.u.localRows[i], s.u.localRows[j] = s.u.localRows[j], s.u.localRows[i]
	s.u.srcRows[i], s.u.srcRows[j] = s.u.srcRows[j], s.u.srcRows[i]
}

// encodeDeltaRows re-encodes a contiguous run of fp32 rows into a
// table's cold-tier wire encoding. Row-wise codecs are independent per
// row, so the bytes match a full-table encode of the same values.
func encodeDeltaRows(enc int32, rows []float32, n, dim int) (data []float32, raw []byte, err error) {
	switch enc {
	case TierEncFP32:
		return rows, nil, nil
	case TierEncFP16:
		return nil, quant.EncodeFP16Rows(rows, n, dim).AppendRowRange(nil, 0, n), nil
	case TierEncInt8:
		return nil, quant.QuantizeRows(rows, n, dim, quant.Bits8).AppendRowRange(nil, 0, n), nil
	case TierEncInt4:
		return nil, quant.QuantizeRows(rows, n, dim, quant.Bits4).AppendRowRange(nil, 0, n), nil
	}
	return nil, nil, fmt.Errorf("core: publish: unknown encoding %d", enc)
}

func (p *Publisher) call(ep ShardEndpoint, method string, body []byte) ([]byte, error) {
	resp, err := rpc.SyncCall(ep.Caller, &rpc.Request{
		Method: method, CallID: p.Rec.NextID(), Body: body,
	})
	if err != nil {
		return nil, fmt.Errorf("core: publish %s %s: %w", ep.Service, method, err)
	}
	return resp.Body, nil
}

// Publish streams one delta set to every endpoint of every affected
// shard, committing per endpoint, then swaps dense weights. On a stream
// error the failed endpoint's staging is aborted (best effort) and the
// error returned; endpoints already committed stay fresh — the publisher
// retries the version against the rest, and commit is idempotent in
// effect because republished rows are value-identical.
func (p *Publisher) Publish(ds *DeltaSet) (*PublishReport, error) {
	start := time.Now() //lint:allow determinism publish wall time is operator telemetry, not model input
	report := &PublishReport{Version: ds.Version}
	byShard, err := p.unitsForCurrentPlan(ds)
	if err != nil {
		return nil, err
	}
	shards := make([]int, 0, len(byShard))
	for shard := range byShard {
		shards = append(shards, shard)
	}
	sort.Ints(shards)
	for _, shard := range shards {
		eps := p.Shards[shard]
		if len(eps) == 0 {
			return nil, fmt.Errorf("core: publish: no endpoints for shard %d", shard)
		}
		for _, ep := range eps {
			ev, err := p.publishToEndpoint(ep, shard, ds.Version, byShard[shard])
			if err != nil {
				abort := EncodeUpdateCommit(&UpdateCommit{Version: ds.Version})
				_, _ = p.call(ep, MethodUpdateAbort, abort)
				return nil, err
			}
			report.Events = append(report.Events, *ev)
			report.RowsSent += ev.RowsSent
			report.Bytes += ev.Bytes
		}
	}
	if ds.Dense != nil {
		if err := p.Engine.SwapDense(ds.Dense); err != nil {
			return nil, err
		}
		report.DenseSwapped = true
	}
	report.Duration = time.Since(start) //lint:allow determinism report duration is operator telemetry
	if p.Obs != nil {
		p.Obs.Gauge("publish.version").SetMax(int64(ds.Version))
		p.Obs.Counter("publish.count").Inc()
		p.Obs.Counter("publish.rows").Add(int64(report.RowsSent))
		p.Obs.Counter("publish.bytes").Add(report.Bytes)
	}
	return report, nil
}

// unitsForCurrentPlan routes the delta set through the engine's live
// plan. Dense-only delta sets produce an empty routing.
func (p *Publisher) unitsForCurrentPlan(ds *DeltaSet) (map[int][]*deltaUnit, error) {
	if len(ds.Tables) == 0 {
		return nil, nil
	}
	return planUnitsFor(p.Engine.Plan(), ds.Tables)
}

// publishToEndpoint streams every unit's delta rows into one endpoint's
// version staging and commits.
func (p *Publisher) publishToEndpoint(ep ShardEndpoint, shard int, version uint64, units []*deltaUnit) (*PublishEvent, error) {
	evStart := time.Now() //lint:allow determinism event duration is freshness-timeline telemetry
	ev := &PublishEvent{Version: version, Shard: shard, Service: ep.Service, Addr: ep.Addr}
	chunkRows := p.ChunkRows
	if chunkRows <= 0 {
		chunkRows = 4096
	}
	for _, u := range units {
		// Probe the endpoint's actual shape and encoding: replicas may
		// serve rebuilt stores, so trust each endpoint's own report.
		out, err := p.call(ep, MethodMigrateRead, EncodeMigrateRead(&MigrateRead{
			TableID: int32(u.tableID), PartIndex: int32(u.partIndex),
		}))
		if err != nil {
			return nil, err
		}
		shape, err := DecodeMigrateReadResponse(out)
		if err != nil {
			return nil, err
		}
		if int(shape.Dim) != u.dim {
			return nil, fmt.Errorf("core: publish: table %d part %d dim %d at %s, delta has %d",
				u.tableID, u.partIndex, shape.Dim, ep.Service, u.dim)
		}
		if last := u.localRows[len(u.localRows)-1]; last >= shape.Rows {
			return nil, fmt.Errorf("core: publish: table %d part %d row %d outside %d rows at %s",
				u.tableID, u.partIndex, last, shape.Rows, ep.Service)
		}
		begin := &UpdateBegin{
			Version: version, TableID: int32(u.tableID), PartIndex: int32(u.partIndex),
			Rows: shape.Rows, Dim: shape.Dim, Enc: shape.Enc,
		}
		if _, err := p.call(ep, MethodUpdateBegin, EncodeUpdateBegin(begin)); err != nil {
			return nil, err
		}
		if err := p.streamUnit(ep, version, u, shape.Enc, chunkRows, ev); err != nil {
			return nil, err
		}
		ev.Tables++
	}
	out, err := p.call(ep, MethodUpdateCommit, EncodeUpdateCommit(&UpdateCommit{Version: version}))
	if err != nil {
		return nil, err
	}
	ack, err := DecodeUpdateCommitResponse(out)
	if err != nil {
		return nil, err
	}
	ev.Epoch = ack.Epoch
	ev.Duration = time.Since(evStart) //lint:allow determinism event duration is freshness-timeline telemetry
	return ev, nil
}

// streamUnit sends one unit's delta rows as runs of consecutive local
// rows, re-encoded into the endpoint's cold-tier encoding.
func (p *Publisher) streamUnit(ep ShardEndpoint, version uint64, u *deltaUnit, enc int32, chunkRows int, ev *PublishEvent) error {
	i := 0
	for i < len(u.localRows) {
		// Extend the run while local rows stay consecutive.
		j := i + 1
		for j < len(u.localRows) && j-i < chunkRows && u.localRows[j] == u.localRows[j-1]+1 {
			j++
		}
		n := j - i
		buf := make([]float32, n*u.dim)
		for k := 0; k < n; k++ {
			src := int(u.srcRows[i+k]) * u.dim
			copy(buf[k*u.dim:(k+1)*u.dim], u.data[src:src+u.dim])
		}
		data, raw, err := encodeDeltaRows(enc, buf, n, u.dim)
		if err != nil {
			return err
		}
		chunk := &UpdateRows{
			Version: version,
			Chunk: MigrateChunk{
				TableID: int32(u.tableID), PartIndex: int32(u.partIndex),
				RowStart: u.localRows[i], Dim: int32(u.dim), Enc: enc,
				Data: data, Raw: raw,
			},
		}
		if _, err := p.call(ep, MethodUpdateRows, EncodeUpdateRows(chunk)); err != nil {
			return err
		}
		ev.RowsSent += n
		ev.Bytes += int64(4*len(data) + len(raw))
		i = j
	}
	return nil
}
