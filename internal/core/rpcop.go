package core

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/embedding"
	"repro/internal/nn"
	"repro/internal/obs"
	"repro/internal/rpc"
	"repro/internal/tensor"
	"repro/internal/trace"
)

// embAssembler completes one batch's fused embedding matrix (the
// bags×ΣDim concatenation the dense layers consume): each table's
// collector writes its pooled columns in, and the matrix's future
// resolves when every table has delivered.
type embAssembler struct {
	future  *nn.Future
	emb     *tensor.Matrix
	mu      sync.Mutex
	pending int
	failed  bool
}

func newEmbAssembler(rows, cols, tables int) *embAssembler {
	return &embAssembler{future: nn.NewFuture(), emb: tensor.New(rows, cols), pending: tables}
}

// tableDone marks one table's columns written; the last one completes
// the future.
func (a *embAssembler) tableDone() {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.failed {
		return
	}
	a.pending--
	if a.pending == 0 {
		a.future.Complete(a.emb, nil)
	}
}

// fail resolves the future with the first error.
func (a *embAssembler) fail(err error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.failed {
		return
	}
	a.failed = true
	a.future.Complete(nil, err)
}

// collector merges pooled contributions for one table. Whole tables have
// one source; row-partitioned tables have one source per part, and the
// partial pools are summed (sum pooling distributes over row partitions,
// so the merge is exact). When the last source delivers, the collector
// writes its columns into the batch's fused embedding matrix and, for
// interaction features, completes the table's standalone pooled future.
type collector struct {
	rows, cols int
	asm        *embAssembler
	colOff     int
	// interact is the per-table pooled blob future; nil unless the table
	// joins the pairwise interaction.
	interact *nn.Future

	mu      sync.Mutex
	pending int
	acc     *tensor.Matrix
	failed  bool
}

func newCollector(sources, rows, cols int, asm *embAssembler, colOff int, interact *nn.Future) *collector {
	return &collector{
		rows: rows, cols: cols, asm: asm, colOff: colOff, interact: interact,
		pending: sources,
	}
}

// deliver merges one contribution; a nil matrix with nil error means "no
// hits on this source" (skipped empty call) and contributes zeros.
func (c *collector) deliver(m *tensor.Matrix, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.failed {
		return
	}
	if err != nil {
		c.failed = true
		c.asm.fail(err)
		if c.interact != nil {
			c.interact.Complete(nil, err)
		}
		return
	}
	if m != nil {
		if m.Rows != c.rows || m.Cols != c.cols {
			c.deliverErrLocked(fmt.Errorf("core: partial pool shape %dx%d, want %dx%d", m.Rows, m.Cols, c.rows, c.cols))
			return
		}
		if c.acc == nil {
			c.acc = m
		} else {
			for i, v := range m.Data {
				c.acc.Data[i] += v
			}
		}
	}
	c.pending--
	if c.pending > 0 {
		return
	}
	if c.acc == nil {
		// Every source was skipped (no hits): the pooled result is a
		// zero matrix, exactly what in-line SLS of empty bags yields.
		c.acc = tensor.New(c.rows, c.cols)
	}
	// Column ranges are disjoint across collectors, so writing without
	// the assembler's lock is safe; completion ordering is serialized by
	// tableDone.
	for b := 0; b < c.rows; b++ {
		copy(c.asm.emb.Row(b)[c.colOff:c.colOff+c.cols], c.acc.Row(b))
	}
	if c.interact != nil {
		c.interact.Complete(c.acc, nil)
	}
	c.asm.tableDone()
}

func (c *collector) deliverErrLocked(err error) {
	c.failed = true
	c.asm.fail(err)
	if c.interact != nil {
		c.interact.Complete(nil, err)
	}
}

// groupEntry is one (table, part) a remote group covers.
type groupEntry struct {
	tableID   int
	partIndex int
	numParts  int
	rows      int // bucket count for zero-fill shapes
	dim       int
}

// rpcOp is the asynchronous RPC operator that replaces a net's sparse
// operators for one sparse shard (paper Section III-A2). Run serializes
// the shard's table groups and issues the call synchronously — as
// Caffe2's sequentially-scheduled async ops do — then hands response
// waiting, deserialization, and pooled-result delivery to a goroutine,
// giving the asynchronous fan-out the paper's Fig. 3 trace shows. The
// operator's own span is therefore dominated by request serialization,
// which the analyzer attributes to the RPC Ser/De category.
type rpcOp struct {
	name    string
	net     string
	service string
	client  rpc.Caller
	entries []groupEntry
	// collectors are shared across the net's rpc ops; keyed by table ID.
	collectors map[int]*collector
	rec        *trace.Recorder
	ctx        trace.Context
	batchItems int
	// hashedNames maps table ID to its hashed-bags blob name.
	hashedNames []string
	// calls/outNs are the engine's sparse-RPC metric handles (nil no-ops
	// without a registry).
	calls *obs.Counter
	outNs *obs.Histogram
}

// Name implements nn.Op.
func (o *rpcOp) Name() string { return o.name }

// Kind implements nn.Op.
func (o *rpcOp) Kind() nn.OpKind { return nn.KindRPC }

// Run implements nn.Op. It gathers this shard's bags from the workspace
// synchronously (cheap slice bookkeeping), then does serialization,
// network, and merge work asynchronously.
func (o *rpcOp) Run(ws *nn.Workspace) error {
	type entryBags struct {
		e    groupEntry
		bags []embedding.Bag
	}
	work := make([]entryBags, 0, len(o.entries))
	anyHits := false
	for _, e := range o.entries {
		bags, err := ws.Bags(o.hashedNames[e.tableID])
		if err != nil {
			return fmt.Errorf("%s: %w", o.name, err)
		}
		if e.numParts > 1 {
			bags = localizeBags(bags, e.partIndex, e.numParts)
		}
		if embedding.TotalLookups(bags) > 0 {
			anyHits = true
		}
		work = append(work, entryBags{e: e, bags: bags})
	}

	if !anyHits {
		// No lookups route to this shard (e.g. DRM3's partitioned user
		// table: only one part matches the request's user). Skip the call
		// entirely — the paper's "only two shards would be accessed" —
		// and satisfy collectors with zero contributions.
		for _, wk := range work {
			o.collectors[wk.e.tableID].deliver(nil, nil)
		}
		return nil
	}

	// Serialize on the scheduling thread (counted in this op's span,
	// which the analyzer books as RPC Ser/De), then issue.
	sreq := &SparseRequest{Net: o.net}
	for _, wk := range work {
		sreq.Entries = append(sreq.Entries, SparseEntry{
			TableID:   int32(wk.e.tableID),
			PartIndex: int32(wk.e.partIndex),
			NumParts:  int32(wk.e.numParts),
			Bags:      wk.bags,
		})
	}
	body := EncodeSparseRequest(sreq)
	callID := o.rec.NextID()
	issue := o.rec.Now()
	call := o.client.Go(&rpc.Request{
		Method: "sparse.run", TraceID: o.ctx.TraceID, CallID: callID, Body: body,
	})

	o.calls.Inc()
	go func() {
		<-call.Done
		outstanding := o.rec.Now().Sub(issue)
		o.outNs.Observe(int64(outstanding))
		o.rec.Record(trace.Span{
			TraceID: o.ctx.TraceID, CallID: callID, Layer: trace.LayerRPCCall,
			Net: o.net, Name: o.name, Start: issue, Dur: outstanding,
		})
		if call.Err != nil {
			err := fmt.Errorf("core: %s → %s: %w", o.name, o.service, call.Err)
			for _, wk := range work {
				o.collectors[wk.e.tableID].deliver(nil, err)
			}
			return
		}

		// Deserialize (RPC Ser/De at the main shard).
		decStart := o.rec.Now()
		resp, err := DecodeSparseResponse(call.Resp.Body)
		o.rec.Record(trace.Span{
			TraceID: o.ctx.TraceID, CallID: callID, Layer: trace.LayerSerDe, Net: o.net,
			Name: o.name + "/decode", Start: decStart, Dur: o.rec.Now().Sub(decStart),
		})
		if err == nil && len(resp.Entries) != len(work) {
			err = fmt.Errorf("core: %s returned %d entries for %d requested", o.service, len(resp.Entries), len(work))
		}
		if err != nil {
			for _, wk := range work {
				o.collectors[wk.e.tableID].deliver(nil, err)
			}
			return
		}
		for i, pe := range resp.Entries {
			e := work[i].e
			if int(pe.TableID) != e.tableID || int(pe.Rows) != o.batchItems || int(pe.Cols) != e.dim {
				o.collectors[e.tableID].deliver(nil, fmt.Errorf(
					"core: %s entry %d mismatched (table %d rows %d cols %d; want %d/%d/%d)",
					o.service, i, pe.TableID, pe.Rows, pe.Cols, e.tableID, o.batchItems, e.dim))
				continue
			}
			o.collectors[e.tableID].deliver(tensor.FromSlice(int(pe.Rows), int(pe.Cols), pe.Data), nil)
		}
	}()
	return nil
}

// localizeBags filters bag indices to one modulus partition and rebases
// them to the partition's local row space.
func localizeBags(bags []embedding.Bag, part, numParts int) []embedding.Bag {
	out := make([]embedding.Bag, len(bags))
	for b, bag := range bags {
		for _, idx := range bag.Indices {
			if int(idx)%numParts == part {
				out[b].Indices = append(out[b].Indices, idx/int32(numParts))
			}
		}
	}
	return out
}

// waitOp blocks on the net's asynchronous pooled results. The engine
// inserts it between the RPC fan-out and the first dense consumer so the
// wait time lands in a dedicated KindWait span instead of silently
// inflating the consumer operator's span — the analyzer attributes the
// wait through the LayerRPCCall outstanding spans (the paper's embedded
// portion) and must not double-count it as operator compute.
type waitOp struct {
	name  string
	blobs []string
}

// Name implements nn.Op.
func (o *waitOp) Name() string { return o.name }

// Kind implements nn.Op.
func (o *waitOp) Kind() nn.OpKind { return nn.KindWait }

// Run implements nn.Op.
func (o *waitOp) Run(ws *nn.Workspace) error {
	for _, b := range o.blobs {
		if _, err := ws.WaitBlob(b); err != nil {
			return fmt.Errorf("%s: %w", o.name, err)
		}
	}
	return nil
}

// burnFor spins the CPU for d; used to model platform compute scaling.
func burnFor(d time.Duration) {
	if d <= 0 {
		return
	}
	end := time.Now().Add(d) //lint:allow determinism busy-wait models a slower platform; burns wall time, returns nothing
	for time.Now().Before(end) {
	}
}
