package core

import (
	"fmt"

	"repro/internal/embedding"
	"repro/internal/tensor"
	"repro/internal/trace"
)

// BatchItem pairs one request with its own trace context inside a
// coalesced engine execution. The serving frontend collects concurrent
// requests into a []BatchItem; the engine runs them as one execution and
// demuxes outputs and spans back per request.
type BatchItem struct {
	Ctx trace.Context
	Req *RankingRequest
}

// ExecuteBatch runs several ranking requests as one coalesced engine
// execution: the requests' items are concatenated into a single combined
// request, executed through the normal batch-parallel path, and the
// scores are demuxed back per request. Per-item scores are independent of
// how items are grouped into executions (every operator is row- or
// bag-local until the final per-item head), so outputs are identical to
// running each request through Execute alone.
//
// All requests are validated before any work runs, and an error —
// validation or execution — fails the whole batch: the requests shared
// the execution. Callers that need per-request fault isolation (the
// serving frontend) must Validate each request before coalescing it.
func (e *Engine) ExecuteBatch(items []BatchItem) ([][]float32, error) {
	if len(items) == 0 {
		return nil, nil
	}
	if len(items) == 1 {
		out, err := e.Execute(items[0].Ctx, items[0].Req)
		if err != nil {
			return nil, err
		}
		return [][]float32{out}, nil
	}
	total := 0
	for _, it := range items {
		if err := e.Validate(it.Req); err != nil {
			return nil, err
		}
		total += int(it.Req.Items)
	}
	e.met.batchRequests.Observe(int64(len(items)))
	e.met.batchItems.Observe(int64(total))

	coalesceStart := e.cfg.Recorder.Now()
	combined, bufs := e.coalesce(items, total)
	start := e.cfg.Recorder.Now()
	e.met.coalesceNs.Observe(int64(start.Sub(coalesceStart)))
	scores, err := e.executeValidated(items[0].Ctx, combined)
	dur := e.cfg.Recorder.Now().Sub(start)
	e.met.executeNs.Observe(int64(dur))
	// The execution is over and nothing below retains the combined
	// request's tensors or bag slices, so its buffers can back the next
	// coalesced batch.
	defer e.putCombined(bufs)
	// Demux the execution span per request: every coalesced request rode
	// the same engine execution, so each one's trace shows the full
	// coalesced service time under its own trace id.
	for _, it := range items {
		e.cfg.Recorder.Record(trace.Span{
			TraceID: it.Ctx.TraceID, CallID: it.Ctx.CallID,
			Layer: trace.LayerRequest, Name: "rank/coalesced",
			Start: start, Dur: dur,
		})
	}
	if err != nil {
		return nil, fmt.Errorf("core: coalesced batch of %d: %w", len(items), err)
	}

	demuxStart := e.cfg.Recorder.Now()
	out := make([][]float32, len(items))
	off := 0
	for i, it := range items {
		n := int(it.Req.Items)
		// Copy per request: a full-capacity subslice would alias every
		// response to one backing array, so a caller retaining one
		// response would pin the whole coalesced batch's scores (and a
		// caller growing one could reach its neighbors').
		out[i] = append(make([]float32, 0, n), scores[off:off+n]...)
		off += n
	}
	e.met.demuxNs.Observe(int64(e.cfg.Recorder.Now().Sub(demuxStart)))
	return out, nil
}

// combinedBufs holds one recyclable coalesced request: the request
// struct itself (with its maps and matrix headers) plus the dense slabs
// backing its tensors. Only the capacities and map keys matter across
// uses; contents are rewritten every batch.
type combinedBufs struct {
	req   RankingRequest
	dense map[string][]float32
}

// putCombined parks bufs for reuse, first dropping the Bag structs so a
// parked pool entry does not pin the previous batch's requests (their
// Indices arrays) until the next burst. The dense slabs are pool-owned
// floats with no outside references and are kept as-is.
func (e *Engine) putCombined(bufs *combinedBufs) {
	for tid, bags := range bufs.req.Bags {
		clear(bags[:cap(bags)])
		bufs.req.Bags[tid] = bags[:0]
	}
	e.combined.Put(bufs)
}

// coalesce concatenates the items' validated requests into one combined
// request of `total` items, in item order, drawing the request, its
// maps and headers, and its backing buffers from the engine's pool so
// steady-state batching does not reallocate the combined tensors. The
// caller returns bufs to the pool once the execution has fully
// completed.
func (e *Engine) coalesce(items []BatchItem, total int) (*RankingRequest, *combinedBufs) {
	bufs, _ := e.combined.Get().(*combinedBufs)
	if bufs == nil {
		bufs = &combinedBufs{
			req: RankingRequest{
				Dense: make(map[string]*tensor.Matrix, len(e.model.Config.Nets)),
				Bags:  make(map[int32][]embedding.Bag, len(e.model.Config.Tables)),
			},
			dense: make(map[string][]float32, len(e.model.Config.Nets)),
		}
	}
	combined := &bufs.req
	combined.ID = items[0].Req.ID
	combined.Items = int32(total)
	for _, ns := range e.model.Config.Nets {
		need := total * ns.DenseDim
		buf := bufs.dense[ns.Name]
		if cap(buf) < need {
			buf = make([]float32, need)
		}
		buf = buf[:need]
		bufs.dense[ns.Name] = buf
		off := 0
		for _, it := range items {
			src := it.Req.Dense[ns.Name]
			copy(buf[off:off+len(src.Data)], src.Data)
			off += len(src.Data)
		}
		m := combined.Dense[ns.Name]
		if m == nil {
			m = &tensor.Matrix{}
			combined.Dense[ns.Name] = m
		}
		m.Rows, m.Cols, m.Data = total, ns.DenseDim, buf
	}
	for _, t := range e.model.Config.Tables {
		tid := int32(t.ID)
		bags := combined.Bags[tid][:0]
		for _, it := range items {
			bags = append(bags, it.Req.Bags[tid]...)
		}
		combined.Bags[tid] = bags
	}
	return combined, bufs
}
