package core

import (
	"fmt"

	"repro/internal/embedding"
	"repro/internal/tensor"
	"repro/internal/trace"
)

// BatchItem pairs one request with its own trace context inside a
// coalesced engine execution. The serving frontend collects concurrent
// requests into a []BatchItem; the engine runs them as one execution and
// demuxes outputs and spans back per request.
type BatchItem struct {
	Ctx trace.Context
	Req *RankingRequest
}

// ExecuteBatch runs several ranking requests as one coalesced engine
// execution: the requests' items are concatenated into a single combined
// request, executed through the normal batch-parallel path, and the
// scores are demuxed back per request. Per-item scores are independent of
// how items are grouped into executions (every operator is row- or
// bag-local until the final per-item head), so outputs are identical to
// running each request through Execute alone.
//
// All requests are validated before any work runs, and an error —
// validation or execution — fails the whole batch: the requests shared
// the execution. Callers that need per-request fault isolation (the
// serving frontend) must Validate each request before coalescing it.
func (e *Engine) ExecuteBatch(items []BatchItem) ([][]float32, error) {
	if len(items) == 0 {
		return nil, nil
	}
	if len(items) == 1 {
		out, err := e.Execute(items[0].Ctx, items[0].Req)
		if err != nil {
			return nil, err
		}
		return [][]float32{out}, nil
	}
	total := 0
	for _, it := range items {
		if err := e.Validate(it.Req); err != nil {
			return nil, err
		}
		total += int(it.Req.Items)
	}

	combined := e.coalesce(items, total)
	start := e.cfg.Recorder.Now()
	scores, err := e.executeValidated(items[0].Ctx, combined)
	dur := e.cfg.Recorder.Now().Sub(start)
	// Demux the execution span per request: every coalesced request rode
	// the same engine execution, so each one's trace shows the full
	// coalesced service time under its own trace id.
	for _, it := range items {
		e.cfg.Recorder.Record(trace.Span{
			TraceID: it.Ctx.TraceID, CallID: it.Ctx.CallID,
			Layer: trace.LayerRequest, Name: "rank/coalesced",
			Start: start, Dur: dur,
		})
	}
	if err != nil {
		return nil, fmt.Errorf("core: coalesced batch of %d: %w", len(items), err)
	}

	out := make([][]float32, len(items))
	off := 0
	for i, it := range items {
		n := int(it.Req.Items)
		out[i] = scores[off : off+n : off+n]
		off += n
	}
	return out, nil
}

// coalesce concatenates the items' validated requests into one combined
// request of `total` items, in item order.
func (e *Engine) coalesce(items []BatchItem, total int) *RankingRequest {
	combined := &RankingRequest{
		ID:    items[0].Req.ID,
		Items: int32(total),
		Dense: make(map[string]*tensor.Matrix, len(e.model.Config.Nets)),
		Bags:  make(map[int32][]embedding.Bag, len(e.model.Config.Tables)),
	}
	for _, ns := range e.model.Config.Nets {
		m := tensor.New(total, ns.DenseDim)
		off := 0
		for _, it := range items {
			src := it.Req.Dense[ns.Name]
			copy(m.Data[off:off+len(src.Data)], src.Data)
			off += len(src.Data)
		}
		combined.Dense[ns.Name] = m
	}
	for _, t := range e.model.Config.Tables {
		tid := int32(t.ID)
		bags := make([]embedding.Bag, 0, total)
		for _, it := range items {
			bags = append(bags, it.Req.Bags[tid]...)
		}
		combined.Bags[tid] = bags
	}
	return combined
}
