package core
