package core

import "fmt"

// Wire codecs for the online model-freshness protocol: a publisher
// streams versioned row deltas into per-version staging at each shard,
// then commits the whole delta set in one atomic cutover. The row
// payloads reuse the migration chunk codec (same encoding-aware layout),
// so a delta lands bit-identically to a full republish of the table.

// Freshness control-plane methods served by SparseShard.Handle.
const (
	MethodUpdateBegin  = "sparse.update.begin"
	MethodUpdateRows   = "sparse.update.rows"
	MethodUpdateCommit = "sparse.update.commit"
	MethodUpdateAbort  = "sparse.update.abort"
)

// UpdateBegin opens version-scoped staging for one held table: the shard
// clones its current cold tier so untouched rows carry over verbatim and
// delta rows overwrite in place. The shape/encoding fields are a
// cross-check against the shard's copy — a publisher working from a
// stale view of the table set must fail loudly, not corrupt staging.
type UpdateBegin struct {
	Version   uint64
	TableID   int32
	PartIndex int32
	Rows      int32
	Dim       int32
	Enc       int32
}

// UpdateRows delivers one row range of a versioned delta, in the table's
// cold-tier encoding (the MigrateChunk payload contract).
type UpdateRows struct {
	Version uint64
	Chunk   MigrateChunk
}

// UpdateCommit atomically activates every staged table of the version;
// the same body addresses sparse.update.abort, which discards them.
type UpdateCommit struct {
	Version uint64
}

// UpdateCommitResponse reports the cutover: the shard's new forwarding
// epoch, its model version after the commit, and how many staged tables
// were installed (tables migrated away mid-update are skipped — their
// new holder receives the delta from the publisher directly).
type UpdateCommitResponse struct {
	Epoch   uint64
	Version uint64
	Tables  int32
}

// EncodeUpdateBegin serializes a version-staging request.
func EncodeUpdateBegin(m *UpdateBegin) []byte {
	var w buffer
	w.u64(m.Version)
	for _, v := range []int32{m.TableID, m.PartIndex, m.Rows, m.Dim, m.Enc} {
		w.u32(uint32(v))
	}
	return w.b
}

// DecodeUpdateBegin parses a version-staging request.
func DecodeUpdateBegin(b []byte) (*UpdateBegin, error) {
	r := reader{b: b}
	out := &UpdateBegin{}
	var err error
	if out.Version, err = r.u64(); err != nil {
		return nil, err
	}
	for _, dst := range []*int32{&out.TableID, &out.PartIndex, &out.Rows, &out.Dim, &out.Enc} {
		v, err := r.u32()
		if err != nil {
			return nil, err
		}
		*dst = int32(v)
	}
	return out, nil
}

// EncodeUpdateRows serializes a versioned delta row range.
func EncodeUpdateRows(m *UpdateRows) []byte {
	var w buffer
	w.u64(m.Version)
	w.b = append(w.b, EncodeMigrateChunk(&m.Chunk)...)
	return w.b
}

// DecodeUpdateRows parses a versioned delta row range.
func DecodeUpdateRows(b []byte) (*UpdateRows, error) {
	r := reader{b: b}
	v, err := r.u64()
	if err != nil {
		return nil, err
	}
	chunk, err := DecodeMigrateChunk(r.b)
	if err != nil {
		return nil, fmt.Errorf("core: update rows: %w", err)
	}
	return &UpdateRows{Version: v, Chunk: *chunk}, nil
}

// EncodeUpdateCommit serializes a commit (or abort) request.
func EncodeUpdateCommit(m *UpdateCommit) []byte {
	var w buffer
	w.u64(m.Version)
	return w.b
}

// DecodeUpdateCommit parses a commit (or abort) request.
func DecodeUpdateCommit(b []byte) (*UpdateCommit, error) {
	r := reader{b: b}
	v, err := r.u64()
	if err != nil {
		return nil, err
	}
	return &UpdateCommit{Version: v}, nil
}

// EncodeUpdateCommitResponse serializes a commit acknowledgement.
func EncodeUpdateCommitResponse(m *UpdateCommitResponse) []byte {
	var w buffer
	w.u64(m.Epoch)
	w.u64(m.Version)
	w.u32(uint32(m.Tables))
	return w.b
}

// DecodeUpdateCommitResponse parses a commit acknowledgement.
func DecodeUpdateCommitResponse(b []byte) (*UpdateCommitResponse, error) {
	r := reader{b: b}
	out := &UpdateCommitResponse{}
	var err error
	if out.Epoch, err = r.u64(); err != nil {
		return nil, err
	}
	if out.Version, err = r.u64(); err != nil {
		return nil, err
	}
	n, err := r.u32()
	if err != nil {
		return nil, err
	}
	out.Tables = int32(n)
	return out, nil
}
