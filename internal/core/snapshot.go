package core

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/embedding"
	"repro/internal/rpc"
	"repro/internal/trace"
)

// Sparse-shard snapshot/rebuild: the fault-tolerance counterpart of the
// live-migration protocol. A replacement replica (fresh process, empty
// table store) rebuilds its entire table set from any healthy peer of
// the same shard — sparse-shard storage is immutable (Section III-A1),
// so every replica's copy is byte-identical and any of them can seed a
// rebuild. The row stream reuses the encoding-aware migration codecs:
// fp16/int8 cold tiers travel as verbatim encoded bytes, fp32 as float
// payloads, and the rebuilt tables are bit-identical to the peer's. The
// rebuilt copies install through the same tierWrap path as a migration
// commit, so they rejoin the rotation cold-cached — nothing of the
// peer's hot-row cache leaks into the replacement.
const (
	MethodSnapshotList = "sparse.snapshot.list"
	// MethodSnapshotRead shares the MigrateRead/MigrateReadResponse
	// codecs (and the handler) with the migration protocol: a snapshot
	// read is a migration read that happens to span the whole table set.
	MethodSnapshotRead = "sparse.snapshot.read"
)

// SnapshotEntry describes one table (or row-partition) a shard holds:
// enough for a peer to allocate matching staging and size the stream.
type SnapshotEntry struct {
	TableID   int32
	PartIndex int32
	Rows      int32
	Dim       int32
	Enc       int32
}

// SnapshotList is the shard's table-set manifest, in deterministic
// (TableID, PartIndex) order.
type SnapshotList struct {
	Entries []SnapshotEntry
}

// EncodeSnapshotList serializes a table-set manifest.
func EncodeSnapshotList(l *SnapshotList) []byte {
	var w buffer
	w.u32(uint32(len(l.Entries)))
	for _, e := range l.Entries {
		w.u32(uint32(e.TableID))
		w.u32(uint32(e.PartIndex))
		w.u32(uint32(e.Rows))
		w.u32(uint32(e.Dim))
		w.u32(uint32(e.Enc))
	}
	return w.b
}

// DecodeSnapshotList parses a table-set manifest.
func DecodeSnapshotList(b []byte) (*SnapshotList, error) {
	r := reader{b: b}
	n, err := r.u32()
	if err != nil {
		return nil, err
	}
	out := &SnapshotList{}
	for i := uint32(0); i < n; i++ {
		var e SnapshotEntry
		for _, dst := range []*int32{&e.TableID, &e.PartIndex, &e.Rows, &e.Dim, &e.Enc} {
			v, err := r.u32()
			if err != nil {
				return nil, err
			}
			*dst = int32(v)
		}
		out.Entries = append(out.Entries, e)
	}
	return out, nil
}

// handleSnapshotList reports every table/part the shard currently holds,
// with shapes and cold-tier encodings: one consistent snapshot of the
// table set (table storage itself is immutable, so the references stay
// valid after the lock drops).
func (s *SparseShard) handleSnapshotList(body []byte) ([]byte, error) {
	type manifestEntry struct {
		key tableKey
		tab embedding.Table
	}
	s.mu.RLock()
	tabs := make([]manifestEntry, 0, len(s.tables))
	for key, tab := range s.tables {
		tabs = append(tabs, manifestEntry{key: key, tab: tab})
	}
	s.mu.RUnlock()
	sort.Slice(tabs, func(i, j int) bool {
		if tabs[i].key.id != tabs[j].key.id {
			return tabs[i].key.id < tabs[j].key.id
		}
		return tabs[i].key.part < tabs[j].key.part
	})
	out := &SnapshotList{Entries: make([]SnapshotEntry, 0, len(tabs))}
	for _, e := range tabs {
		cold := coldOf(e.tab)
		enc, err := tableEnc(e.tab)
		if err != nil {
			return nil, fmt.Errorf("core: %s: table %d part %d: %w", s.ShardName, e.key.id, e.key.part, err)
		}
		out.Entries = append(out.Entries, SnapshotEntry{
			TableID: int32(e.key.id), PartIndex: int32(e.key.part),
			Rows: int32(cold.NumRows()), Dim: int32(cold.Dim()), Enc: enc,
		})
	}
	return EncodeSnapshotList(out), nil
}

// RebuildStats summarizes one replica rebuild.
type RebuildStats struct {
	// Tables is how many tables/parts were rebuilt.
	Tables int
	// Bytes is the row data streamed from the peer.
	Bytes int64
	// Duration covers manifest fetch through final install.
	Duration time.Duration
}

// String renders the stats for logs.
func (st RebuildStats) String() string {
	return fmt.Sprintf("rebuilt %d tables, %.1f KiB streamed, in %v",
		st.Tables, float64(st.Bytes)/1024, st.Duration.Round(time.Millisecond))
}

// RebuildFromPeer streams every table a healthy peer holds into this
// shard: fetch the manifest, stage each table in the peer's native
// encoding, and install — the replacement-replica recovery path. The
// shard may be serving while it rebuilds (tables become visible one by
// one, each bumping the epoch), though the expected caller holds the
// replica out of rotation until the rebuild returns.
func (s *SparseShard) RebuildFromPeer(peer rpc.Caller, chunkRows int) (RebuildStats, error) {
	start := time.Now() //lint:allow determinism rebuild wall time is operator telemetry
	if chunkRows <= 0 {
		chunkRows = 4096
	}
	var st RebuildStats
	resp, err := rpc.SyncCall(peer, &rpc.Request{Method: MethodSnapshotList, CallID: s.rec.NextID()})
	if err != nil {
		return st, fmt.Errorf("core: %s: snapshot list: %w", s.ShardName, err)
	}
	list, err := DecodeSnapshotList(resp.Body)
	if err != nil {
		return st, fmt.Errorf("core: %s: snapshot list: %w", s.ShardName, err)
	}
	rebuildStart := s.rec.Now()
	for _, e := range list.Entries {
		n, err := s.rebuildTable(peer, e, chunkRows)
		st.Bytes += n
		if err != nil {
			return st, err
		}
		st.Tables++
	}
	s.rec.Record(trace.Span{
		Layer: trace.LayerMigration,
		Name:  fmt.Sprintf("snapshot/rebuild/%s", s.ShardName),
		Start: rebuildStart, Dur: s.rec.Now().Sub(rebuildStart),
	})
	st.Duration = time.Since(start) //lint:allow determinism rebuild wall time is operator telemetry
	return st, nil
}

// rebuildTable streams one manifest entry from the peer into local
// staging and installs it, returning bytes streamed.
func (s *SparseShard) rebuildTable(peer rpc.Caller, e SnapshotEntry, chunkRows int) (int64, error) {
	stage, err := newStaged(e.Enc, e.Rows, e.Dim)
	if err != nil {
		return 0, fmt.Errorf("core: %s: rebuild table %d part %d: %w", s.ShardName, e.TableID, e.PartIndex, err)
	}
	rawStride := 0
	if e.Enc != TierEncFP32 {
		if rawStride, err = tierEncStride(e.Enc, e.Dim); err != nil {
			return 0, fmt.Errorf("core: %s: rebuild table %d part %d: %w", s.ShardName, e.TableID, e.PartIndex, err)
		}
	}
	var moved int64
	for row := int32(0); row < e.Rows; row += int32(chunkRows) {
		count := int32(chunkRows)
		if row+count > e.Rows {
			count = e.Rows - row
		}
		resp, err := rpc.SyncCall(peer, &rpc.Request{
			Method: MethodSnapshotRead, CallID: s.rec.NextID(),
			Body: EncodeMigrateRead(&MigrateRead{
				TableID: e.TableID, PartIndex: e.PartIndex, RowStart: row, RowCount: count,
			}),
		})
		if err != nil {
			return moved, fmt.Errorf("core: %s: snapshot read table %d part %d: %w", s.ShardName, e.TableID, e.PartIndex, err)
		}
		chunk, err := DecodeMigrateReadResponse(resp.Body)
		if err != nil {
			return moved, fmt.Errorf("core: %s: snapshot read table %d part %d: %w", s.ShardName, e.TableID, e.PartIndex, err)
		}
		if chunk.Enc != e.Enc {
			return moved, fmt.Errorf("core: %s: rebuild table %d part %d: encoding changed %d -> %d mid-stream",
				s.ShardName, e.TableID, e.PartIndex, e.Enc, chunk.Enc)
		}
		if e.Enc == TierEncFP32 {
			if int32(len(chunk.Data)) != count*e.Dim {
				return moved, fmt.Errorf("core: %s: rebuild table %d part %d: read %d values for %d rows",
					s.ShardName, e.TableID, e.PartIndex, len(chunk.Data), count)
			}
			if err := stage.writeF32(int(row), chunk.Data); err != nil {
				return moved, fmt.Errorf("core: %s: %w", s.ShardName, err)
			}
			moved += int64(len(chunk.Data)) * 4
		} else {
			if len(chunk.Raw) != int(count)*rawStride {
				return moved, fmt.Errorf("core: %s: rebuild table %d part %d: read %d raw bytes for %d rows",
					s.ShardName, e.TableID, e.PartIndex, len(chunk.Raw), count)
			}
			if _, err := stage.writeRaw(int(row), chunk.Raw); err != nil {
				return moved, fmt.Errorf("core: %s: %w", s.ShardName, err)
			}
			moved += int64(len(chunk.Raw))
		}
	}
	tab, err := stage.table()
	if err != nil {
		return moved, fmt.Errorf("core: %s: rebuild table %d part %d: %w", s.ShardName, e.TableID, e.PartIndex, err)
	}
	// InstallTable runs the same tierWrap as a migration commit: an
	// already-encoded table keeps its encoding, and any hot-row cache
	// starts empty — the replacement rejoins cold-cached.
	s.InstallTable(int(e.TableID), int(e.PartIndex), tab)
	return moved, nil
}
