package core

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"repro/internal/embedding"
	"repro/internal/model"
	"repro/internal/sharding"
	"repro/internal/trace"
)

// Per-shard model files — the publishing flow of Section III-A1: "After
// training, during model publishing, parameters are resharded and
// serialized from parameter servers to the respective inference shard
// based on a prior partitioning phase." ExportShard writes exactly the
// tables (and row-partitions) one sparse shard serves, so a shard process
// loads megabytes instead of the whole model; ImportShard reconstitutes a
// ready-to-serve SparseShard.
//
// Layout: magic "DRSH" | u32 version | shard number | entry count |
// entries of (tableID, partIndex, numParts, rows, dim, row data).

const (
	shardMagic   = "DRSH"
	shardVersion = 1
)

var errBadShardFile = errors.New("core: malformed shard file")

// ExportShard writes shard number `shard` (1-based) of the plan to w.
// Only fp32 dense tables are supported (the serving path for quantized
// models keeps tables whole; see MaterializeShards).
func ExportShard(m *model.Model, plan *sharding.Plan, shard int, w io.Writer) error {
	if !plan.IsDistributed() {
		return fmt.Errorf("core: singular plans have no shards to export")
	}
	if shard < 1 || shard > plan.NumShards {
		return fmt.Errorf("core: shard %d outside [1, %d]", shard, plan.NumShards)
	}
	a := &plan.Shards[shard-1]

	bw := bufio.NewWriterSize(w, 1<<20)
	hdr := make([]byte, 4+4+4+4)
	copy(hdr, shardMagic)
	binary.LittleEndian.PutUint32(hdr[4:], shardVersion)
	binary.LittleEndian.PutUint32(hdr[8:], uint32(shard))
	binary.LittleEndian.PutUint32(hdr[12:], uint32(len(a.Tables)+len(a.Parts)))
	if _, err := bw.Write(hdr); err != nil {
		return err
	}

	writeRows := func(tableID, partIndex, numParts int, rows *embedding.Dense) error {
		meta := make([]byte, 5*4)
		binary.LittleEndian.PutUint32(meta[0:], uint32(tableID))
		binary.LittleEndian.PutUint32(meta[4:], uint32(partIndex))
		binary.LittleEndian.PutUint32(meta[8:], uint32(numParts))
		binary.LittleEndian.PutUint32(meta[12:], uint32(rows.RowsN))
		binary.LittleEndian.PutUint32(meta[16:], uint32(rows.DimN))
		if _, err := bw.Write(meta); err != nil {
			return err
		}
		buf := make([]byte, 4*len(rows.Data))
		for i, v := range rows.Data {
			binary.LittleEndian.PutUint32(buf[4*i:], math.Float32bits(v))
		}
		_, err := bw.Write(buf)
		return err
	}

	for _, id := range a.Tables {
		dense, ok := m.Tables[id].(*embedding.Dense)
		if !ok {
			return fmt.Errorf("core: table %d is not fp32 dense; export quantized models whole", id)
		}
		if err := writeRows(id, 0, 1, dense); err != nil {
			return err
		}
	}
	for _, pr := range a.Parts {
		dense, ok := m.Tables[pr.TableID].(*embedding.Dense)
		if !ok {
			return fmt.Errorf("core: table %d is not fp32 dense; cannot partition", pr.TableID)
		}
		parts := embedding.PartitionRows(dense, pr.NumParts)
		if err := writeRows(pr.TableID, pr.PartIndex, pr.NumParts, parts[pr.PartIndex].Local); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ImportShard reads a shard file and returns a serving-ready SparseShard
// recording to rec. The returned shard number comes from the file header.
func ImportShard(r io.Reader, rec *trace.Recorder) (*SparseShard, int, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	hdr := make([]byte, 16)
	if _, err := io.ReadFull(br, hdr); err != nil {
		return nil, 0, fmt.Errorf("%w: header: %v", errBadShardFile, err)
	}
	if string(hdr[:4]) != shardMagic {
		return nil, 0, fmt.Errorf("%w: bad magic", errBadShardFile)
	}
	switch v := binary.LittleEndian.Uint32(hdr[4:]); v {
	case shardVersion:
	case shardVersion2:
		// v2 is offset-addressed, so pull the remaining stream into one
		// image and hand it to the structured parser (heap tables; the
		// zero-copy path is OpenShardFile).
		rest, err := io.ReadAll(br)
		if err != nil {
			return nil, 0, fmt.Errorf("%w: %v", errBadShardFile, err)
		}
		sf, err := parseShardV2(append(hdr, rest...), false)
		if err != nil {
			return nil, 0, err
		}
		return sf.NewShard(rec), sf.Shard, nil
	default:
		return nil, 0, fmt.Errorf("%w: unsupported version %d", errBadShardFile, v)
	}
	shard := int(binary.LittleEndian.Uint32(hdr[8:]))
	count := int(binary.LittleEndian.Uint32(hdr[12:]))
	if shard < 1 || count < 0 || count > 1<<16 {
		return nil, 0, fmt.Errorf("%w: shard %d, %d entries", errBadShardFile, shard, count)
	}

	sh := NewSparseShard(ServiceName(shard), rec)
	meta := make([]byte, 5*4)
	for i := 0; i < count; i++ {
		if _, err := io.ReadFull(br, meta); err != nil {
			return nil, 0, fmt.Errorf("%w: entry %d meta: %v", errBadShardFile, i, err)
		}
		tableID := int(binary.LittleEndian.Uint32(meta[0:]))
		partIndex := int(binary.LittleEndian.Uint32(meta[4:]))
		numParts := int(binary.LittleEndian.Uint32(meta[8:]))
		rows := int(binary.LittleEndian.Uint32(meta[12:]))
		dim := int(binary.LittleEndian.Uint32(meta[16:]))
		if rows <= 0 || dim <= 0 || rows > 1<<28 || dim > 1<<12 || numParts < 1 || partIndex < 0 || partIndex >= numParts {
			return nil, 0, fmt.Errorf("%w: entry %d shape %dx%d part %d/%d", errBadShardFile, i, rows, dim, partIndex, numParts)
		}
		buf := make([]byte, 4*rows*dim)
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, 0, fmt.Errorf("%w: entry %d data: %v", errBadShardFile, i, err)
		}
		tab := embedding.NewDense(rows, dim)
		for j := range tab.Data {
			tab.Data[j] = math.Float32frombits(binary.LittleEndian.Uint32(buf[4*j:]))
		}
		if numParts == 1 {
			sh.AddTable(tableID, tab)
		} else {
			sh.AddPart(tableID, partIndex, tab)
		}
	}
	return sh, shard, nil
}
