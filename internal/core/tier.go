package core

import (
	"fmt"
	"sort"

	"repro/internal/embedding"
	"repro/internal/quant"
	"repro/internal/sharding"
)

// Tiered embedding storage inside the sparse serving path: each shard can
// keep a bounded hot-row cache in front of a quantized cold tier. The
// capacity planner (sharding.PlanTiers) decides per-table precision; the
// shard-side controller here owns the cache byte budget, apportioning it
// across the shard's tables by their *measured* load share — the same
// LoadSummary accounting the online rebalancer plans from — and
// re-apportioning whenever the table set changes (install, migration
// commit, forward, release).
//
// Coherence rules under live migration: a hot-row cache belongs to one
// table *copy* and dies with it. A table committed from migration staging
// starts with a cold cache (nothing stale can survive the transfer); a
// source that releases its copy drops the cache with it; the double-read
// grace window keeps serving from the retained copy's cache, which stays
// valid because table storage is immutable. Encoded (fp16/int8) tables
// stream their cold-tier bytes verbatim through sparse.migrate.*, so a
// moved table is bit-identical to the source's — the PR-2 double-read
// identity guarantee holds with tiering enabled.

// TierConfig enables tiered storage on a sparse shard.
type TierConfig struct {
	// CacheMB is the shard-wide hot-row cache byte budget (0 disables
	// caching; cold-tier encoding still applies).
	CacheMB float64
	// Plan assigns per-table cold precisions; nil keeps every table fp32
	// (cache-only tiering).
	Plan *sharding.TierPlan
}

// Cold-tier encodings on the migration wire (MigrateBegin.Enc et al).
const (
	TierEncFP32 int32 = 0
	TierEncFP16 int32 = 1
	TierEncInt8 int32 = 2
	TierEncInt4 int32 = 3
)

// coldOf unwraps a tiered table to its cold-tier backend.
func coldOf(t embedding.Table) embedding.Table {
	if tt, ok := t.(*embedding.TieredTable); ok {
		return tt.Cold()
	}
	return t
}

// tableEnc classifies a table's cold-tier encoding for the wire.
func tableEnc(t embedding.Table) (int32, error) {
	switch cold := coldOf(t).(type) {
	case *embedding.Dense:
		return TierEncFP32, nil
	case *embedding.FP16:
		return TierEncFP16, nil
	case *embedding.Quantized:
		if cold.Encoding().Bits == quant.Bits4 {
			return TierEncInt4, nil
		}
		return TierEncInt8, nil
	default:
		return 0, fmt.Errorf("core: cannot stream rows of %T", t)
	}
}

// tierEncStride returns the wire bytes per row of an encoded (non-fp32)
// tier at the given dim.
func tierEncStride(enc, dim int32) (int, error) {
	switch enc {
	case TierEncFP16:
		return 2 * int(dim), nil
	case TierEncInt8:
		return 4 + int(dim), nil
	case TierEncInt4:
		return 4 + (int(dim)+1)/2, nil
	}
	return 0, fmt.Errorf("core: no raw row stride for encoding %d", enc)
}

// stagedTable is migration staging storage in the destination's native
// cold-tier encoding: chunks land as verbatim encoded bytes, so the
// committed table is bit-identical to the source's.
type stagedTable struct {
	enc   int32
	dense *embedding.Dense
	fp16  *quant.FP16Rows
	q     *quant.RowQuantized
}

func newStaged(enc, rows, dim int32) (*stagedTable, error) {
	st := &stagedTable{enc: enc}
	switch enc {
	case TierEncFP32:
		st.dense = embedding.NewDense(int(rows), int(dim))
	case TierEncFP16:
		st.fp16 = quant.NewFP16Rows(int(rows), int(dim))
	case TierEncInt8:
		st.q = quant.NewRowQuantizedEmpty(int(rows), int(dim), quant.Bits8)
	case TierEncInt4:
		st.q = quant.NewRowQuantizedEmpty(int(rows), int(dim), quant.Bits4)
	default:
		return nil, fmt.Errorf("core: migrate begin with unknown encoding %d", enc)
	}
	return st, nil
}

func (st *stagedTable) dim() int {
	switch st.enc {
	case TierEncFP32:
		return st.dense.Dim()
	case TierEncFP16:
		return st.fp16.Cols
	default:
		return st.q.Cols
	}
}

// writeF32 lands an fp32 chunk (the original protocol's payload).
func (st *stagedTable) writeF32(lo int, data []float32) error {
	if st.enc != TierEncFP32 {
		return fmt.Errorf("core: fp32 chunk for encoding %d staging", st.enc)
	}
	d := st.dense.Dim()
	rows := len(data) / d
	if lo < 0 || lo+rows > st.dense.NumRows() {
		return fmt.Errorf("core: migrate chunk rows [%d, %d) of %d", lo, lo+rows, st.dense.NumRows())
	}
	copy(st.dense.Data[lo*d:(lo+rows)*d], data)
	return nil
}

// writeRaw lands an encoded chunk, returning the rows written.
func (st *stagedTable) writeRaw(lo int, raw []byte) (int, error) {
	switch st.enc {
	case TierEncFP16:
		return st.fp16.SetRowRange(lo, raw)
	case TierEncInt8, TierEncInt4:
		return st.q.SetRowRange(lo, raw)
	}
	return 0, fmt.Errorf("core: raw chunk for encoding %d staging", st.enc)
}

// table materializes the staged storage as a serving table.
func (st *stagedTable) table() (embedding.Table, error) {
	switch st.enc {
	case TierEncFP32:
		return st.dense, nil
	case TierEncFP16:
		return embedding.FP16FromEncoding(st.fp16), nil
	default:
		return embedding.QuantizedFromEncoding(st.q.Rows, st.q.Cols, int(st.q.Bits), st.q.Scales, st.q.Biases, st.q.Packed)
	}
}

// SetTier enables tiered storage, re-wrapping any already-installed
// tables (drmserve's shard-file path imports first, tiers second) and
// apportioning the cache budget.
func (s *SparseShard) SetTier(cfg *TierConfig) {
	s.mu.Lock()
	s.tier = cfg
	for key, tab := range s.tables {
		s.tables[key] = s.tierWrap(key.id, tab)
	}
	s.mu.Unlock()
	s.retier()
}

// tierWrap applies the shard's tier config to a table about to be
// installed: encode a dense cold tier to the planned precision, then
// front it with a (initially empty) hot-row cache when a budget exists.
// Already-encoded tables (migration staging output) keep their encoding.
func (s *SparseShard) tierWrap(id int, t embedding.Table) embedding.Table {
	if s.tier == nil {
		return t
	}
	cold := coldOf(t)
	if d, ok := cold.(*embedding.Dense); ok {
		switch s.tier.Plan.Precision(id) {
		case sharding.PrecisionFP16:
			cold = d.ToFP16()
		case sharding.PrecisionInt8:
			cold = d.Quantize(quant.Bits8)
		}
	}
	if s.tier.CacheMB <= 0 {
		return cold
	}
	return embedding.NewTiered(cold, 0)
}

// retier re-apportions the shard's cache byte budget across its tiered
// tables by measured load share (LoadSummary weight: service seconds, or
// lookups when timing is absent), falling back to cold-byte share before
// any load is observed. Called whenever the table set changes; resizing
// caches never changes results (see embedding.TieredTable), only where
// the byte budget does the most good.
func (s *SparseShard) retier() {
	s.mu.RLock()
	tier := s.tier
	s.mu.RUnlock()
	if tier == nil || tier.CacheMB <= 0 {
		return
	}
	// Apportion from the live accumulator merged with the last collected
	// window: a rebalance pass resets the accumulator (CollectLoad(true))
	// right before the migration installs that trigger retiering, and
	// budgeting from the near-empty residue would shrink exactly the hot
	// caches the measured window had earned.
	s.loadMu.Lock()
	load := s.load.Clone()
	load.Merge(s.lastLoad)
	s.loadMu.Unlock()

	type cacheTab struct {
		key    sharding.TableLoadKey
		tt     *embedding.TieredTable
		weight float64
		bytes  float64
	}
	var tabs []cacheTab
	s.mu.RLock()
	for key, tab := range s.tables {
		tt, ok := tab.(*embedding.TieredTable)
		if !ok {
			continue
		}
		lk := key.loadKey()
		tabs = append(tabs, cacheTab{key: lk, tt: tt, weight: load.Weight(lk), bytes: float64(tt.Cold().Bytes())})
	}
	s.mu.RUnlock()
	// The budget split below is float arithmetic: apportion in table-key
	// order so every run of the same table set computes identical sizes
	// regardless of map iteration order.
	sort.Slice(tabs, func(i, j int) bool {
		if tabs[i].key.TableID != tabs[j].key.TableID {
			return tabs[i].key.TableID < tabs[j].key.TableID
		}
		return tabs[i].key.PartIndex < tabs[j].key.PartIndex
	})
	var total, totalBytes float64
	for _, ct := range tabs {
		total += ct.weight
		totalBytes += ct.bytes
	}
	if len(tabs) == 0 || totalBytes <= 0 {
		return
	}
	if total <= 0 {
		// No load observed yet: split by cold-tier bytes.
		for i := range tabs {
			tabs[i].weight = tabs[i].bytes
		}
		total = totalBytes
	} else {
		// Bytes-proportional floor on top of measured load: a table that
		// just migrated in has zero measured load *here* — it moved
		// because it was hot at the source — and a pure load split would
		// leave it cacheless until the next table-set change. The floor
		// seeds every table with a slice of ~10% of the budget; the next
		// load window earns it a real share.
		const floorFrac = 0.1
		for i := range tabs {
			tabs[i].weight += floorFrac * total * tabs[i].bytes / totalBytes
		}
		total *= 1 + floorFrac
	}
	budget := tier.CacheMB * float64(1<<20)
	for _, ct := range tabs {
		rowBytes := float64(ct.tt.Dim() * 4)
		rows := int(budget * ct.weight / total / rowBytes)
		if n := ct.tt.NumRows(); rows > n {
			rows = n
		}
		ct.tt.SetCapacity(rows)
	}
}

// TierStats aggregates a shard's tiered-storage behavior.
type TierStats struct {
	// Tables counts installed tables/parts; FP32/FP16/Int8 split them by
	// cold-tier encoding (Int8 includes int4).
	Tables, FP32, FP16, Int8 int
	// ColdBytes is the encoded cold-tier footprint; CacheBytes the live
	// cached-row bytes; CacheCapBytes the apportioned budget ceiling.
	ColdBytes, CacheBytes, CacheCapBytes int64
	// Hits/Misses/Admits sum the hot-row caches' counters.
	Hits, Misses, Admits int64
}

// HitRate returns the aggregate cache hit rate (0 when unused).
func (ts TierStats) HitRate() float64 {
	if ts.Hits+ts.Misses == 0 {
		return 0
	}
	return float64(ts.Hits) / float64(ts.Hits+ts.Misses)
}

// TierSnapshot reports the shard's current tiered-storage state.
func (s *SparseShard) TierSnapshot() TierStats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out TierStats
	for _, tab := range s.tables {
		out.Tables++
		cold := coldOf(tab)
		switch cold.(type) {
		case *embedding.FP16:
			out.FP16++
		case *embedding.Quantized:
			out.Int8++
		default:
			out.FP32++
		}
		out.ColdBytes += cold.Bytes()
		if tt, ok := tab.(*embedding.TieredTable); ok {
			st := tt.Stats()
			out.CacheBytes += int64(st.CachedRows) * int64(tt.Dim()) * 4
			out.CacheCapBytes += int64(st.Capacity) * int64(tt.Dim()) * 4
			out.Hits += st.Hits
			out.Misses += st.Misses
			out.Admits += st.Admits
		}
	}
	return out
}
