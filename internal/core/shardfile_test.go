package core

import (
	"bytes"
	"testing"

	"repro/internal/embedding"
	"repro/internal/model"
	"repro/internal/sharding"
	"repro/internal/trace"
)

func TestExportImportShardRoundTrip(t *testing.T) {
	cfg := tinyConfig()
	m := model.Build(cfg)
	plan, err := sharding.CapacityBalanced(&cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	for shard := 1; shard <= plan.NumShards; shard++ {
		var buf bytes.Buffer
		if err := ExportShard(m, plan, shard, &buf); err != nil {
			t.Fatal(err)
		}
		sh, gotShard, err := ImportShard(&buf, trace.NewRecorder("x", 64))
		if err != nil {
			t.Fatal(err)
		}
		if gotShard != shard {
			t.Fatalf("imported shard %d, want %d", gotShard, shard)
		}
		a := &plan.Shards[shard-1]
		if sh.NumTables() != sharding.ShardTableCount(a) {
			t.Fatalf("shard %d holds %d tables, want %d", shard, sh.NumTables(), sharding.ShardTableCount(a))
		}
		// Every table answers lookups identically to the model's copy.
		for _, id := range a.Tables {
			src := m.Tables[id]
			req := &SparseRequest{Net: cfg.Tables[id].Net, Entries: []SparseEntry{{
				TableID: int32(id), NumParts: 1,
				Bags: []embedding.Bag{{Indices: []int32{0, int32(src.NumRows() - 1)}}},
			}}}
			out, err := sh.Handle(trace.Context{TraceID: 1, CallID: 1}, "sparse.run", EncodeSparseRequest(req))
			if err != nil {
				t.Fatalf("shard %d table %d: %v", shard, id, err)
			}
			resp, err := DecodeSparseResponse(out)
			if err != nil {
				t.Fatal(err)
			}
			want := make([]float32, src.Dim())
			src.AccumulateRow(want, 0)
			src.AccumulateRow(want, src.NumRows()-1)
			for c, w := range want {
				if resp.Entries[0].Data[c] != w {
					t.Fatalf("shard %d table %d: lookup differs at col %d", shard, id, c)
				}
			}
		}
	}
}

func TestExportImportPartitionedShard(t *testing.T) {
	cfg := model.DRM3()
	cfg.Tables[0].Rows = 512
	for i := 1; i < len(cfg.Tables); i++ {
		cfg.Tables[i].Rows = 16
	}
	m := model.Build(cfg)
	plan, err := sharding.NSBP(&cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Find a partition shard.
	for shard := 1; shard <= plan.NumShards; shard++ {
		a := &plan.Shards[shard-1]
		if len(a.Parts) == 0 {
			continue
		}
		var buf bytes.Buffer
		if err := ExportShard(m, plan, shard, &buf); err != nil {
			t.Fatal(err)
		}
		sh, _, err := ImportShard(&buf, trace.NewRecorder("x", 64))
		if err != nil {
			t.Fatal(err)
		}
		pr := a.Parts[0]
		// A lookup of logical row pr.PartIndex (local row 0) must match
		// the source table's row.
		src := m.Tables[pr.TableID]
		req := &SparseRequest{Net: "net1", Entries: []SparseEntry{{
			TableID: int32(pr.TableID), PartIndex: int32(pr.PartIndex), NumParts: int32(pr.NumParts),
			Bags: []embedding.Bag{{Indices: []int32{0}}}, // local row 0
		}}}
		out, err := sh.Handle(trace.Context{TraceID: 1, CallID: 1}, "sparse.run", EncodeSparseRequest(req))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := DecodeSparseResponse(out)
		if err != nil {
			t.Fatal(err)
		}
		want := make([]float32, src.Dim())
		src.AccumulateRow(want, pr.PartIndex) // logical row of local 0
		for c, w := range want {
			if resp.Entries[0].Data[c] != w {
				t.Fatalf("partition lookup differs at col %d", c)
			}
		}
		return
	}
	t.Fatal("no partition shard found")
}

func TestImportShardRejectsCorruption(t *testing.T) {
	cfg := tinyConfig()
	m := model.Build(cfg)
	plan, err := sharding.CapacityBalanced(&cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ExportShard(m, plan, 1, &buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()

	rec := trace.NewRecorder("x", 4)
	bad := append([]byte(nil), full...)
	bad[0] = 'X'
	if _, _, err := ImportShard(bytes.NewReader(bad), rec); err == nil {
		t.Error("bad magic accepted")
	}
	for _, cut := range []int{4, 15, 40, len(full) - 7} {
		if _, _, err := ImportShard(bytes.NewReader(full[:cut]), rec); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
}

func TestExportShardErrors(t *testing.T) {
	cfg := tinyConfig()
	m := model.Build(cfg)
	plan, err := sharding.CapacityBalanced(&cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ExportShard(m, sharding.Singular(&cfg), 1, &buf); err == nil {
		t.Error("singular export should fail")
	}
	if err := ExportShard(m, plan, 0, &buf); err == nil {
		t.Error("shard 0 should fail")
	}
	if err := ExportShard(m, plan, 3, &buf); err == nil {
		t.Error("out-of-range shard should fail")
	}
}
