package core

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/embedding"
	"repro/internal/model"
	"repro/internal/nn"
	"repro/internal/obs"
	"repro/internal/rpc"
	"repro/internal/sharding"
	"repro/internal/trace"
	"repro/internal/workload"
)

// ServiceName returns the registry name for a sparse shard number.
func ServiceName(shard int) string { return fmt.Sprintf("sparse%d", shard) }

// EngineConfig configures a main-shard engine.
type EngineConfig struct {
	// BatchSize overrides the model's production-default batch size; 0
	// keeps the default. Section VI-F's single-batch experiments set this
	// to a value at or above the largest request.
	BatchSize int
	// Recorder receives main-shard spans; required.
	Recorder *trace.Recorder
	// ClientFor resolves a sparse shard service name to a connected RPC
	// caller (a plain client, or a hedged replica set). Required for
	// distributed plans.
	ClientFor func(service string) (rpc.Caller, error)
	// Obs receives the engine's live metrics (engine.* namespace). Nil or
	// obs.Discard() turns instrumentation into no-op nil handles.
	Obs *obs.Registry
}

// engineMetrics is the engine's live-telemetry handle set. All handles
// are nil (free no-ops) when the engine runs without a registry.
type engineMetrics struct {
	requests *obs.Counter // engine executions (a coalesced batch counts once)
	batches  *obs.Counter // sub-batch executions (runBatch calls)

	coalesceNs    *obs.Histogram // assembling the combined request
	executeNs     *obs.Histogram // coalesced engine execution
	demuxNs       *obs.Histogram // splitting scores back per request
	batchRequests *obs.Histogram // requests per coalesced execution
	batchItems    *obs.Histogram // items per coalesced execution

	rpcCalls         *obs.Counter   // sparse RPC calls issued
	rpcOutstandingNs *obs.Histogram // per-call outstanding time at the main shard
}

func newEngineMetrics(r *obs.Registry) engineMetrics {
	return engineMetrics{
		requests:         r.Counter("engine.requests"),
		batches:          r.Counter("engine.batches"),
		coalesceNs:       r.Histogram("engine.coalesce_ns"),
		executeNs:        r.Histogram("engine.execute_ns"),
		demuxNs:          r.Histogram("engine.demux_ns"),
		batchRequests:    r.Histogram("engine.batch_requests"),
		batchItems:       r.Histogram("engine.batch_items"),
		rpcCalls:         r.Counter("engine.rpc.calls"),
		rpcOutstandingNs: r.Histogram("engine.rpc.outstanding_ns"),
	}
}

// Engine executes ranking requests for one model under one sharding plan.
// It is the main shard: dense layers run locally; sparse operators either
// run in-line (singular) or fan out through asynchronous RPC operators.
// Engines are safe for concurrent Execute calls, and the plan can be
// swapped live via Reroute: each request reads the program pointer once,
// so a rebalance cutover flips routing between requests, never within
// one.
type Engine struct {
	model *model.Model
	cfg   EngineConfig
	// params holds the dense-layer parameters compiled into programs —
	// initially the model's, replaced as a unit by SwapDense. Guarded by
	// rerouteMu for writers; compile reads it under the same lock.
	params []model.NetParams
	// prog holds the compiled (plan, nets) program; Reroute swaps it
	// atomically under rerouteMu.
	prog      atomic.Pointer[engineProgram]
	rerouteMu sync.Mutex
	// rawNames[tid] / hashedNames[tid] are the workspace bag blob names,
	// precomputed so per-batch op assembly does no string formatting.
	rawNames    []string
	hashedNames []string
	// combined recycles the coalesced-request buffers ExecuteBatch
	// assembles (batch.go); shapes depend only on the model, so the pool
	// survives reroutes.
	combined sync.Pool
	// met holds the engine's metric handles (nil no-ops without a
	// registry).
	met engineMetrics
}

// engineProgram is one compiled routing generation: the plan and its
// per-net programs, swapped as a unit, plus the workspace-arena pool
// built from the program's dense-blob liveness (schedule.go) — batches
// executing under this generation draw their dense output blobs from
// recycled slabs instead of allocating.
type engineProgram struct {
	plan   *sharding.Plan
	nets   []*netProgram
	arenas *nn.ArenaPool
}

// netProgram is the compiled form of one net under the plan. Static
// operators (dense layers, hashing, in-line SLS) are built once and
// shared across batches — they are stateless against the workspace; only
// the asynchronous RPC operators are constructed per batch because they
// carry the batch's trace context and collectors.
type netProgram struct {
	spec   model.NetSpec
	params model.NetParams
	tables []model.TableSpec // this net's tables, ID order
	// embCols and colOff lay the tables out in the fused embedding
	// matrix.
	embCols int
	colOff  map[int]int
	// interactSet marks tables joining the pairwise interaction.
	interactSet map[int]bool
	// pooledNames[tid] names the standalone pooled blob of an
	// interaction table.
	pooledNames map[int]string
	// remote groups tables by serving shard for distributed plans.
	remote []remoteGroupSpec
	// sources counts pooling contributors per table ID (1 for whole
	// tables, NumParts for partitioned ones).
	sources map[int]int
	// preOps run before embedding access; postOps after. Both are shared
	// across batches. slsOp is the singular in-line fused op (nil when
	// distributed).
	preOps  []nn.Op
	slsOp   nn.Op
	postOps []nn.Op
	embBlob string
	outBlob string
	lastNet bool
}

type remoteGroupSpec struct {
	service string
	client  rpc.Caller
	entries []groupEntry
}

// NewEngine compiles a model + plan into an executable engine, resolving
// sparse shard clients eagerly so wiring failures surface at startup.
func NewEngine(m *model.Model, plan *sharding.Plan, cfg EngineConfig) (*Engine, error) {
	if cfg.Recorder == nil {
		return nil, fmt.Errorf("core: engine requires a recorder")
	}
	e := &Engine{model: m, cfg: cfg, params: m.NetParams, met: newEngineMetrics(cfg.Obs)}
	e.rawNames = make([]string, len(m.Config.Tables))
	e.hashedNames = make([]string, len(m.Config.Tables))
	for i := range m.Config.Tables {
		e.rawNames[i] = fmt.Sprintf("raw_%d", i)
		e.hashedNames[i] = fmt.Sprintf("hashed_%d", i)
	}
	prog, err := e.compile(plan)
	if err != nil {
		return nil, err
	}
	e.prog.Store(prog)
	return e, nil
}

// Reroute recompiles the engine against a new sharding plan and swaps it
// in atomically — the main-shard half of an online-resharding cutover.
// Requests already executing keep the old routing; the shards they hit
// double-read or forward during the migration grace window, so no
// request observes a torn placement.
func (e *Engine) Reroute(plan *sharding.Plan) error {
	e.rerouteMu.Lock()
	defer e.rerouteMu.Unlock()
	prog, err := e.compile(plan)
	if err != nil {
		return fmt.Errorf("core: reroute: %w", err)
	}
	e.prog.Store(prog)
	return nil
}

// SwapDense atomically replaces the dense-layer parameters (bottom/top
// MLPs and projection) with a freshly published set of identical shapes,
// recompiling the current plan — the dense-weight half of a model
// freshness publish. Requests already executing finish on the old
// program; the next request sees the new weights. Embedding deltas
// travel separately through sparse.update.*.
func (e *Engine) SwapDense(params []model.NetParams) error {
	e.rerouteMu.Lock()
	defer e.rerouteMu.Unlock()
	if len(params) != len(e.params) {
		return fmt.Errorf("core: swap dense: %d nets, engine has %d", len(params), len(e.params))
	}
	for i := range params {
		if err := sameDenseShapes(&e.params[i], &params[i]); err != nil {
			return fmt.Errorf("core: swap dense: net %d: %w", i, err)
		}
	}
	old := e.params
	e.params = params
	prog, err := e.compile(e.prog.Load().plan)
	if err != nil {
		e.params = old
		return fmt.Errorf("core: swap dense: %w", err)
	}
	e.prog.Store(prog)
	return nil
}

// sameDenseShapes checks a replacement net-parameter set is layer-for-
// layer shape-identical to the current one.
func sameDenseShapes(cur, next *model.NetParams) error {
	checkFC := func(what string, a, b model.FCParams) error {
		if a.W.Rows != b.W.Rows || a.W.Cols != b.W.Cols || len(a.B) != len(b.B) {
			return fmt.Errorf("%s shape %dx%d+%d, want %dx%d+%d",
				what, b.W.Rows, b.W.Cols, len(b.B), a.W.Rows, a.W.Cols, len(a.B))
		}
		return nil
	}
	if len(cur.Bottom) != len(next.Bottom) || len(cur.Top) != len(next.Top) {
		return fmt.Errorf("layer counts %d/%d, want %d/%d", len(next.Bottom), len(next.Top), len(cur.Bottom), len(cur.Top))
	}
	for i := range cur.Bottom {
		if err := checkFC(fmt.Sprintf("bottom[%d]", i), cur.Bottom[i], next.Bottom[i]); err != nil {
			return err
		}
	}
	if err := checkFC("proj", cur.Proj, next.Proj); err != nil {
		return err
	}
	for i := range cur.Top {
		if err := checkFC(fmt.Sprintf("top[%d]", i), cur.Top[i], next.Top[i]); err != nil {
			return err
		}
	}
	return nil
}

// compile builds one routing generation for a plan.
func (e *Engine) compile(plan *sharding.Plan) (*engineProgram, error) {
	m := e.model
	if err := plan.Validate(&m.Config); err != nil {
		return nil, fmt.Errorf("core: invalid plan: %w", err)
	}
	prog := &engineProgram{plan: plan}
	prevOut := ""
	for i, ns := range m.Config.Nets {
		np := &netProgram{
			spec:        ns,
			params:      e.params[i],
			tables:      m.Config.NetTables(ns.Name),
			sources:     make(map[int]int),
			colOff:      make(map[int]int),
			interactSet: make(map[int]bool),
			pooledNames: make(map[int]string),
			embBlob:     "emb_" + ns.Name,
			outBlob:     "out_" + ns.Name,
			lastNet:     i == len(m.Config.Nets)-1,
		}
		off := 0
		for _, t := range np.tables {
			np.colOff[t.ID] = off
			off += t.Dim
		}
		np.embCols = off
		for _, id := range pickInteract(np.tables, ns.InteractFeatures) {
			np.interactSet[id] = true
			np.pooledNames[id] = fmt.Sprintf("pooled_%s_%d", ns.Name, id)
		}
		if plan.IsDistributed() {
			if e.cfg.ClientFor == nil {
				return nil, fmt.Errorf("core: distributed plan requires ClientFor")
			}
			if err := compileRemote(np, plan, e.cfg.ClientFor); err != nil {
				return nil, err
			}
		} else {
			for _, t := range np.tables {
				np.sources[t.ID] = 1
			}
		}
		e.compileOps(plan, np, prevOut)
		prevOut = np.outBlob
		prog.nets = append(prog.nets, np)
	}
	sched, err := buildSchedule(prog)
	if err != nil {
		return nil, fmt.Errorf("core: blob schedule: %w", err)
	}
	prog.arenas = nn.NewArenaPool(sched)
	return prog, nil
}

// pickInteract chooses the first k tables sharing the net's tail-table
// dimension (pairwise dots need equal dims; mixed-dim nets like DRM3
// exclude the odd-sized dominating table).
func pickInteract(tables []model.TableSpec, k int) []int {
	if len(tables) == 0 || k <= 0 {
		return nil
	}
	dim := tables[len(tables)-1].Dim
	var out []int
	for _, t := range tables {
		if t.Dim == dim {
			out = append(out, t.ID)
			if len(out) == k {
				break
			}
		}
	}
	return out
}

func compileRemote(np *netProgram, plan *sharding.Plan, clientFor func(string) (rpc.Caller, error)) error {
	inNet := make(map[int]model.TableSpec, len(np.tables))
	for _, t := range np.tables {
		inNet[t.ID] = t
	}
	for i := range plan.Shards {
		a := &plan.Shards[i]
		var entries []groupEntry
		for _, id := range a.Tables {
			if t, ok := inNet[id]; ok {
				entries = append(entries, groupEntry{tableID: id, partIndex: 0, numParts: 1, rows: t.Rows, dim: t.Dim})
				np.sources[id]++
			}
		}
		for _, pr := range a.Parts {
			if t, ok := inNet[pr.TableID]; ok {
				entries = append(entries, groupEntry{
					tableID: pr.TableID, partIndex: pr.PartIndex, numParts: pr.NumParts,
					rows: t.Rows, dim: t.Dim,
				})
				np.sources[pr.TableID]++
			}
		}
		if len(entries) == 0 {
			continue // shard holds no tables of this net
		}
		svc := ServiceName(a.Shard)
		client, err := clientFor(svc)
		if err != nil {
			return fmt.Errorf("core: resolving %s: %w", svc, err)
		}
		np.remote = append(np.remote, remoteGroupSpec{service: svc, client: client, entries: entries})
	}
	for _, t := range np.tables {
		if np.sources[t.ID] == 0 {
			return fmt.Errorf("core: table %d of %s unserved by plan", t.ID, np.spec.Name)
		}
	}
	return nil
}

// compileOps builds the static (batch-shareable) operator lists.
func (e *Engine) compileOps(plan *sharding.Plan, np *netProgram, prevOut string) {
	netName := np.spec.Name

	// --- preOps: dense preprocessing, bottom MLP, hashing. ---
	var pre []nn.Op
	pre = append(pre, &nn.ScaleClip{
		OpName: "scaleclip_" + netName, Scale: 1.0 / 8, Lo: -4, Hi: 4, Blob: "dense_" + netName,
	})
	in := "dense_" + netName
	if prevOut != "" {
		pre = append(pre, &nn.ConcatOp{
			OpName: "concat_in_" + netName, Inputs: []string{in, prevOut}, Output: "in_" + netName,
		})
		in = "in_" + netName
	}
	cur := in
	for li, fc := range np.params.Bottom {
		out := fmt.Sprintf("bot%d_%s", li, netName)
		pre = append(pre, &nn.FusedFC{
			OpName: fmt.Sprintf("fc_bot%d_%s", li, netName),
			W:      fc.W, B: fc.B, Act: nn.ActReLU, Input: cur, Output: out,
		})
		cur = out
	}
	bottom := cur
	hash := &nn.HashAllBags{OpName: "hash_" + netName}
	for _, t := range np.tables {
		hash.Entries = append(hash.Entries, nn.HashEntry{
			Buckets: int32(t.Rows),
			Input:   e.rawNames[t.ID],
			Output:  e.hashedNames[t.ID],
		})
	}
	pre = append(pre, hash)
	np.preOps = pre

	// --- in-line fused SLS for the singular configuration. The output
	// blob is materialized by a separate Fill operator, as Caffe2 does,
	// so storage cost attributes to Fill rather than Sparse. ---
	if !plan.IsDistributed() {
		np.preOps = append(np.preOps, &nn.AllocEmb{
			OpName: "fill_emb_" + netName, RowsFrom: e.rawNames[np.tables[0].ID],
			Cols: np.embCols, Output: np.embBlob,
		})
		sls := &nn.FusedSLS{OpName: "sls_" + netName, Output: np.embBlob, Cols: np.embCols}
		for _, t := range np.tables {
			entry := nn.FusedSLSEntry{
				Table:     e.model.Tables[t.ID],
				InputBags: e.hashedNames[t.ID],
				ColOffset: np.colOff[t.ID],
			}
			if np.interactSet[t.ID] {
				entry.CopyOut = np.pooledNames[t.ID]
			}
			sls.Entries = append(sls.Entries, entry)
		}
		np.slsOp = sls
	}

	// --- postOps: projection, interaction, top MLP, output head. The FC
	// stacks compile to FusedFC: bias and activation run inside the GEMM
	// workers' tile epilogues (bitwise identical to the FC → Activation
	// pairs they replace), and outputs draw from the workspace arena. ---
	var post []nn.Op
	post = append(post, &nn.FusedFC{OpName: "fc_proj_" + netName, W: np.params.Proj.W, B: np.params.Proj.B, Input: np.embBlob, Output: "proj_" + netName})
	inter := &nn.Interaction{OpName: "interact_" + netName, Passthrough: bottom, Output: "int_" + netName}
	for _, t := range np.tables {
		if np.interactSet[t.ID] {
			inter.Features = append(inter.Features, np.pooledNames[t.ID])
		}
	}
	post = append(post, inter)
	post = append(post, &nn.ConcatOp{
		OpName: "concat_top_" + netName, Inputs: []string{"proj_" + netName, "int_" + netName}, Output: "top0_" + netName,
	})
	cur = "top0_" + netName
	for li, fc := range np.params.Top {
		out := fmt.Sprintf("top%d_%s", li+1, netName)
		act := nn.ActNone
		switch {
		case li < len(np.params.Top)-1:
			act = nn.ActReLU
		case np.lastNet:
			// The output head: the final FC fuses the sigmoid directly.
			act = nn.ActSigmoid
		}
		post = append(post, &nn.FusedFC{
			OpName: fmt.Sprintf("fc_top%d_%s", li, netName),
			W:      fc.W, B: fc.B, Act: act, Input: cur, Output: out,
		})
		cur = out
	}
	if np.lastNet && len(np.params.Top) == 0 {
		// Degenerate top stack: nothing to fuse the head into.
		post = append(post, &nn.Activation{OpName: "sigmoid_" + netName, Func: nn.ActSigmoid, Blob: cur})
	}
	post = append(post, &renameOp{name: "output_" + netName, from: cur, to: np.outBlob})
	np.postOps = post
}

// FromWorkload converts a generated workload request to its wire form.
func FromWorkload(req *workload.Request) *RankingRequest {
	out := &RankingRequest{
		ID: req.ID, Items: int32(req.Items),
		Dense: req.Dense,
		Bags:  make(map[int32][]embedding.Bag, len(req.Bags)),
	}
	for tid, bags := range req.Bags {
		out.Bags[int32(tid)] = bags
	}
	return out
}

// BatchSize returns the effective items-per-batch.
func (e *Engine) BatchSize() int {
	if e.cfg.BatchSize > 0 {
		return e.cfg.BatchSize
	}
	return e.model.Config.DefaultBatch
}

// Plan returns the engine's current sharding plan.
func (e *Engine) Plan() *sharding.Plan { return e.prog.Load().plan }

// Config returns the engine's model configuration.
func (e *Engine) Config() *model.Config { return &e.model.Config }

// Validate checks a request's shape against the model without running it.
func (e *Engine) Validate(req *RankingRequest) error {
	items := int(req.Items)
	if items <= 0 {
		return fmt.Errorf("core: request %d has no items", req.ID)
	}
	for _, ns := range e.model.Config.Nets {
		m := req.Dense[ns.Name]
		if m == nil || m.Rows != items || m.Cols != ns.DenseDim {
			return fmt.Errorf("core: request %d dense input for %s malformed", req.ID, ns.Name)
		}
	}
	for _, t := range e.model.Config.Tables {
		if bags := req.Bags[int32(t.ID)]; len(bags) != items {
			return fmt.Errorf("core: request %d has %d bags for table %d (want %d)", req.ID, len(bags), t.ID, items)
		}
	}
	return nil
}

// Execute runs one ranking request: the request is split into
// ⌈items/batch⌉ batches executed in parallel (the paper's batch-level
// parallelism), each batch running the model's nets sequentially. It
// returns one score per item.
func (e *Engine) Execute(ctx trace.Context, req *RankingRequest) ([]float32, error) {
	if err := e.Validate(req); err != nil {
		return nil, err
	}
	return e.executeValidated(ctx, req)
}

// executeValidated is Execute after shape validation: batch-level
// parallel execution of one (possibly coalesced) request.
func (e *Engine) executeValidated(ctx trace.Context, req *RankingRequest) ([]float32, error) {
	e.met.requests.Inc()
	// One program load per request: every batch of this request routes
	// under the same plan generation even if Reroute lands mid-flight.
	prog := e.prog.Load()
	items := int(req.Items)
	b := e.BatchSize()
	nb := (items + b - 1) / b
	scores := make([]float32, items)
	errs := make([]error, nb)
	var wg sync.WaitGroup
	for bi := 0; bi < nb; bi++ {
		start, end := bi*b, (bi+1)*b
		if end > items {
			end = items
		}
		wg.Add(1)
		go func(bi, start, end int) {
			defer wg.Done()
			e.met.batches.Inc()
			out, err := e.runBatch(prog, ctx, req, start, end)
			if err != nil {
				errs[bi] = err
				return
			}
			copy(scores[start:end], out)
		}(bi, start, end)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return scores, nil
}

// runBatch executes one batch (items [start, end) of the request) through
// all nets sequentially, under one routing generation.
func (e *Engine) runBatch(prog *engineProgram, ctx trace.Context, req *RankingRequest, start, end int) ([]float32, error) {
	ws := nn.NewWorkspace()
	obs := &trace.NetObserver{R: e.cfg.Recorder, Ctx: ctx}
	batchItems := end - start

	// One pooled arena per batch backs every scheduled dense blob; it is
	// recycled after the scores are copied out, so steady-state dense
	// execution allocates nothing. Nothing drawn from the arena may
	// escape this function.
	if arena := prog.arenas.Get(batchItems); arena != nil {
		ws.SetArena(arena)
		defer prog.arenas.Put(arena)
	}

	for _, ns := range e.model.Config.Nets {
		m := req.Dense[ns.Name]
		// ScaleClip mutates in place; copy this batch's rows (into the
		// arena when scheduled) so concurrent batches do not stomp the
		// shared request tensor.
		dst := ws.AllocBlob("dense_"+ns.Name, batchItems, m.Cols)
		copy(dst.Data, m.Data[start*m.Cols:end*m.Cols])
		ws.SetBlob("dense_"+ns.Name, dst)
	}
	for _, t := range e.model.Config.Tables {
		ws.SetBags(e.rawNames[t.ID], req.Bags[int32(t.ID)][start:end])
	}

	var finalOut string
	for _, np := range prog.nets {
		ops := make([]nn.Op, 0, len(np.preOps)+len(np.remote)+1+len(np.postOps))
		ops = append(ops, np.preOps...)
		if np.slsOp != nil {
			ops = append(ops, np.slsOp)
		} else {
			ops = append(ops, e.buildRPCOps(ws, np, ctx, batchItems)...)
			blobs := []string{np.embBlob}
			for _, t := range np.tables {
				if np.interactSet[t.ID] {
					blobs = append(blobs, np.pooledNames[t.ID])
				}
			}
			ops = append(ops, &waitOp{name: "wait_" + np.spec.Name, blobs: blobs})
		}
		ops = append(ops, np.postOps...)
		net := &nn.Net{NetName: np.spec.Name, Ops: ops}
		if err := net.Run(ws, obs); err != nil {
			return nil, fmt.Errorf("core: request %d %s: %w", req.ID, np.spec.Name, err)
		}
		finalOut = np.outBlob
	}

	final, err := ws.Blob(finalOut)
	if err != nil {
		return nil, err
	}
	if final.Cols != 1 || final.Rows != batchItems {
		return nil, fmt.Errorf("core: final output is %dx%d, want %dx1", final.Rows, final.Cols, batchItems)
	}
	out := make([]float32, batchItems)
	for r := 0; r < batchItems; r++ {
		out[r] = final.At(r, 0)
	}
	return out, nil
}

// buildRPCOps constructs the per-batch asynchronous RPC operators plus
// the collectors that assemble the fused embedding matrix, registering
// its future (and per-interaction-table futures) on the workspace.
func (e *Engine) buildRPCOps(ws *nn.Workspace, np *netProgram, ctx trace.Context, batchItems int) []nn.Op {
	asm := newEmbAssembler(batchItems, np.embCols, len(np.tables))
	ws.RegisterFuture(np.embBlob, asm.future)
	collectors := make(map[int]*collector, len(np.tables))
	for _, t := range np.tables {
		var interact *nn.Future
		if np.interactSet[t.ID] {
			interact = nn.NewFuture()
			ws.RegisterFuture(np.pooledNames[t.ID], interact)
		}
		collectors[t.ID] = newCollector(np.sources[t.ID], batchItems, t.Dim, asm, np.colOff[t.ID], interact)
	}
	ops := make([]nn.Op, 0, len(np.remote))
	for _, g := range np.remote {
		ops = append(ops, &rpcOp{
			name:        "rpc_" + np.spec.Name + "_" + g.service,
			net:         np.spec.Name,
			service:     g.service,
			client:      g.client,
			entries:     g.entries,
			collectors:  collectors,
			rec:         e.cfg.Recorder,
			ctx:         ctx,
			batchItems:  batchItems,
			hashedNames: e.hashedNames,
			calls:       e.met.rpcCalls,
			outNs:       e.met.rpcOutstandingNs,
		})
	}
	return ops
}

// renameOp aliases a blob under the net's canonical output name.
type renameOp struct {
	name     string
	from, to string
}

// Name implements nn.Op.
func (o *renameOp) Name() string { return o.name }

// Kind implements nn.Op.
func (o *renameOp) Kind() nn.OpKind { return nn.KindMemoryTransform }

// Run implements nn.Op.
func (o *renameOp) Run(ws *nn.Workspace) error {
	m, err := ws.WaitBlob(o.from)
	if err != nil {
		return fmt.Errorf("%s: %w", o.name, err)
	}
	ws.SetBlob(o.to, m)
	return nil
}
