package core

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/model"
	"repro/internal/sharding"
	"repro/internal/tensor"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Engine-level closure of the kernel-dispatch identity contract: the
// micro-benchmarks and kerneltest sweeps prove each kernel in
// isolation; these tests prove the property survives composition — a
// full DRM scoring run (hashing, SLS pooling over quantized tiered
// tables, dense MLP stacks, feature interaction, migration streaming)
// is byte-identical whichever kernel family executed it.

// TestEngineScoresKernelIdentity scores the same workload draw with the
// generic and the vectorized kernels on a singular (unsharded) engine
// and requires bitwise-equal scores.
func TestEngineScoresKernelIdentity(t *testing.T) {
	defer tensor.SetKernel(tensor.KernelAuto)
	cfg := tinyConfig()
	m := model.Build(cfg)
	req := FromWorkload(workload.NewGenerator(cfg, 17).Next())

	run := func(k tensor.Kernel) []float32 {
		tensor.SetKernel(k)
		rec := trace.NewRecorder("main", 1<<16)
		eng, err := NewEngine(m, sharding.Singular(&cfg), EngineConfig{Recorder: rec})
		if err != nil {
			t.Fatal(err)
		}
		scores, err := eng.Execute(trace.Context{TraceID: 1}, req)
		if err != nil {
			t.Fatal(err)
		}
		return scores
	}
	want := run(tensor.KernelGeneric)
	got := run(tensor.KernelVector)
	if len(got) != len(want) || len(want) == 0 {
		t.Fatalf("score counts differ: %d vs %d", len(got), len(want))
	}
	for i := range want {
		if math.Float32bits(got[i]) != math.Float32bits(want[i]) {
			t.Fatalf("score %d: generic %08x, vector %08x",
				i, math.Float32bits(want[i]), math.Float32bits(got[i]))
		}
	}
}

// TestTieredMigrationKernelIdentity reuses the tiered-migration fixture
// (int8 cold tier + hot-row cache) and interleaves kernel switches with
// a mid-flight table migration: the cache is warmed under one kernel,
// rows stream under the other, and every replay — before, during, and
// after cutover, under either kernel — must serve byte-identical
// responses. This is the strongest end-to-end statement the harness
// makes: dispatch changes wall clock only, never a served byte.
func TestTieredMigrationKernelIdentity(t *testing.T) {
	defer tensor.SetKernel(tensor.KernelAuto)
	for _, prec := range []sharding.Precision{sharding.PrecisionInt8, sharding.PrecisionFP16} {
		t.Run(string(prec), func(t *testing.T) {
			f := newTieredMigrationFixture(t, prec, 1)
			src, dst := f.shards[0], f.shards[1]
			id := f.plan.Shards[0].Tables[0]
			ctx := trace.Context{TraceID: 23}
			body := f.runRequest(t, 91)

			// Baseline and cache warm-up under the generic kernels.
			tensor.SetKernel(tensor.KernelGeneric)
			want, err := src.Handle(ctx, MethodSparseRun, body)
			if err != nil {
				t.Fatal(err)
			}

			// Replay with the vector kernels against the (generic-warmed)
			// cache: hits decode nothing, misses decode vectorized — both
			// must contribute the exact bytes the generic run produced.
			tensor.SetKernel(tensor.KernelVector)
			if got, err := src.Handle(ctx, MethodSparseRun, body); err != nil || !bytes.Equal(want, got) {
				t.Fatalf("vector replay diverged from generic baseline (err %v)", err)
			}

			// Migrate the table while the vector kernels are active: the
			// wire stream carries encoded rows verbatim, so the committed
			// copy must be kernel-independent too.
			f.migrateTableEnc(t, id)
			if got, err := src.Handle(ctx, MethodSparseRun, body); err != nil || !bytes.Equal(want, got) {
				t.Fatalf("vector double-read during cutover diverged (err %v)", err)
			}

			// Forwarded reads hit the destination's freshly-committed
			// copy; flip kernels once more so the destination decodes
			// generic against a migration performed under vector.
			caller := &localCaller{h: dst}
			src.BeginForward(id, 0, "sparse2", caller, true)
			tensor.SetKernel(tensor.KernelGeneric)
			if got, err := src.Handle(ctx, MethodSparseRun, body); err != nil || !bytes.Equal(want, got) {
				t.Fatalf("generic forwarded read diverged after vector migration (err %v)", err)
			}
			tensor.SetKernel(tensor.KernelVector)
			if got, err := src.Handle(ctx, MethodSparseRun, body); err != nil || !bytes.Equal(want, got) {
				t.Fatalf("vector forwarded read diverged (err %v)", err)
			}
		})
	}
}
