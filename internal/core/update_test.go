package core

import (
	"testing"

	"repro/internal/model"
	"repro/internal/sharding"
	"repro/internal/tensor"
	"repro/internal/trace"
	"repro/internal/workload"
)

// readTableRows probes a held table's shape and reads all its rows in
// the cold tier's native encoding — the material for identity deltas.
func readTableRows(t *testing.T, sh *SparseShard, id, part int) *MigrateReadResponse {
	t.Helper()
	ctx := trace.Context{}
	probe, err := sh.Handle(ctx, MethodMigrateRead, EncodeMigrateRead(&MigrateRead{TableID: int32(id), PartIndex: int32(part)}))
	if err != nil {
		t.Fatal(err)
	}
	shape, err := DecodeMigrateReadResponse(probe)
	if err != nil {
		t.Fatal(err)
	}
	out, err := sh.Handle(ctx, MethodMigrateRead, EncodeMigrateRead(&MigrateRead{
		TableID: int32(id), PartIndex: int32(part), RowCount: shape.Rows,
	}))
	if err != nil {
		t.Fatal(err)
	}
	full, err := DecodeMigrateReadResponse(out)
	if err != nil {
		t.Fatal(err)
	}
	return full
}

// applyUpdate drives the full begin → rows → commit protocol for one
// table with the given payload (rows in the table's encoding).
func applyUpdate(t *testing.T, sh *SparseShard, version uint64, id, part int, rows *MigrateReadResponse) *UpdateCommitResponse {
	t.Helper()
	ctx := trace.Context{}
	if _, err := sh.Handle(ctx, MethodUpdateBegin, EncodeUpdateBegin(&UpdateBegin{
		Version: version, TableID: int32(id), PartIndex: int32(part),
		Rows: rows.Rows, Dim: rows.Dim, Enc: rows.Enc,
	})); err != nil {
		t.Fatal(err)
	}
	if _, err := sh.Handle(ctx, MethodUpdateRows, EncodeUpdateRows(&UpdateRows{
		Version: version,
		Chunk: MigrateChunk{
			TableID: int32(id), PartIndex: int32(part), RowStart: 0,
			Dim: rows.Dim, Enc: rows.Enc, Data: rows.Data, Raw: rows.Raw,
		},
	})); err != nil {
		t.Fatal(err)
	}
	out, err := sh.Handle(ctx, MethodUpdateCommit, EncodeUpdateCommit(&UpdateCommit{Version: version}))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := DecodeUpdateCommitResponse(out)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestUpdateIdentityDelta proves an identity delta (current rows
// republished) leaves every lookup bitwise unchanged across the epoch
// cutover, at every cold precision, with and without hot-row caches.
func TestUpdateIdentityDelta(t *testing.T) {
	cfg := tinyConfig()
	m := model.Build(cfg)
	plan, err := sharding.CapacityBalanced(&cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name    string
		prec    sharding.Precision
		cacheMB float64
	}{
		{"fp32", sharding.PrecisionFP32, 0},
		{"fp16", sharding.PrecisionFP16, 0},
		{"int8", sharding.PrecisionInt8, 0},
		{"int8-cached", sharding.PrecisionInt8, 1},
	} {
		t.Run(tc.name, func(t *testing.T) {
			recs := []*trace.Recorder{trace.NewRecorder("sparse1", 64), trace.NewRecorder("sparse2", 64)}
			shards, err := MaterializeShardsTiered(m, plan, recs, tierConfigFor(&cfg, tc.prec, tc.cacheMB))
			if err != nil {
				t.Fatal(err)
			}
			sh := shards[0]
			a := &plan.Shards[0]
			if len(a.Tables) == 0 {
				t.Fatal("shard 1 holds no whole tables")
			}
			id := a.Tables[0]
			idx := []int32{0, int32(cfg.Tables[id].Rows - 1)}
			before := shardLookup(t, sh, cfg.Tables[id].Net, id, 0, 1, idx)
			epochBefore := sh.Epoch()

			rows := readTableRows(t, sh, id, 0)
			resp := applyUpdate(t, sh, 7, id, 0, rows)
			if resp.Version != 7 || resp.Tables != 1 {
				t.Fatalf("commit response %+v, want version 7, 1 table", resp)
			}
			if sh.Epoch() <= epochBefore {
				t.Fatalf("epoch did not advance: %d -> %d", epochBefore, sh.Epoch())
			}
			if sh.ModelVersion() != 7 {
				t.Fatalf("model version %d, want 7", sh.ModelVersion())
			}
			after := shardLookup(t, sh, cfg.Tables[id].Net, id, 0, 1, idx)
			if !bitsEqual(before, after) {
				t.Fatal("identity delta changed lookup bytes")
			}
		})
	}
}

// TestUpdateMutatesRows proves a real delta lands exactly: the touched
// row serves the new values, untouched rows serve old bytes.
func TestUpdateMutatesRows(t *testing.T) {
	cfg := tinyConfig()
	m := model.Build(cfg)
	plan, err := sharding.CapacityBalanced(&cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	recs := []*trace.Recorder{trace.NewRecorder("sparse1", 64), trace.NewRecorder("sparse2", 64)}
	shards, err := MaterializeShards(m, plan, recs)
	if err != nil {
		t.Fatal(err)
	}
	sh := shards[0]
	id := plan.Shards[0].Tables[0]
	dim := cfg.Tables[id].Dim
	lastRow := int32(cfg.Tables[id].Rows - 1)
	untouchedBefore := shardLookup(t, sh, cfg.Tables[id].Net, id, 0, 1, []int32{lastRow})

	// Publish new values for row 0 only.
	newRow := make([]float32, dim)
	for i := range newRow {
		newRow[i] = float32(i) + 0.5
	}
	ctx := trace.Context{}
	if _, err := sh.Handle(ctx, MethodUpdateBegin, EncodeUpdateBegin(&UpdateBegin{
		Version: 3, TableID: int32(id), Rows: int32(cfg.Tables[id].Rows), Dim: int32(dim), Enc: TierEncFP32,
	})); err != nil {
		t.Fatal(err)
	}
	if _, err := sh.Handle(ctx, MethodUpdateRows, EncodeUpdateRows(&UpdateRows{
		Version: 3,
		Chunk:   MigrateChunk{TableID: int32(id), RowStart: 0, Dim: int32(dim), Enc: TierEncFP32, Data: newRow},
	})); err != nil {
		t.Fatal(err)
	}
	if _, err := sh.Handle(ctx, MethodUpdateCommit, EncodeUpdateCommit(&UpdateCommit{Version: 3})); err != nil {
		t.Fatal(err)
	}

	got := shardLookup(t, sh, cfg.Tables[id].Net, id, 0, 1, []int32{0})
	if !bitsEqual(got, newRow) {
		t.Fatalf("row 0 after update = %v, want %v", got, newRow)
	}
	untouchedAfter := shardLookup(t, sh, cfg.Tables[id].Net, id, 0, 1, []int32{lastRow})
	if !bitsEqual(untouchedBefore, untouchedAfter) {
		t.Fatal("untouched row changed bytes")
	}
}

// TestUpdateErrors covers the protocol's refusal paths: rows/commit
// without begin, shape/encoding mismatches at begin, and abort dropping
// staged state.
func TestUpdateErrors(t *testing.T) {
	cfg := tinyConfig()
	m := model.Build(cfg)
	plan, err := sharding.CapacityBalanced(&cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	recs := []*trace.Recorder{trace.NewRecorder("sparse1", 64), trace.NewRecorder("sparse2", 64)}
	shards, err := MaterializeShards(m, plan, recs)
	if err != nil {
		t.Fatal(err)
	}
	sh := shards[0]
	id := plan.Shards[0].Tables[0]
	dim := int32(cfg.Tables[id].Dim)
	rowsN := int32(cfg.Tables[id].Rows)
	ctx := trace.Context{}

	if _, err := sh.Handle(ctx, MethodUpdateRows, EncodeUpdateRows(&UpdateRows{
		Version: 1, Chunk: MigrateChunk{TableID: int32(id), Dim: dim, Enc: TierEncFP32, Data: make([]float32, dim)},
	})); err == nil {
		t.Error("rows without begin accepted")
	}
	if _, err := sh.Handle(ctx, MethodUpdateCommit, EncodeUpdateCommit(&UpdateCommit{Version: 1})); err == nil {
		t.Error("commit without begin accepted")
	}
	if _, err := sh.Handle(ctx, MethodUpdateBegin, EncodeUpdateBegin(&UpdateBegin{
		Version: 1, TableID: int32(id), Rows: rowsN + 1, Dim: dim, Enc: TierEncFP32,
	})); err == nil {
		t.Error("begin with wrong row count accepted")
	}
	if _, err := sh.Handle(ctx, MethodUpdateBegin, EncodeUpdateBegin(&UpdateBegin{
		Version: 1, TableID: int32(id), Rows: rowsN, Dim: dim, Enc: TierEncFP16,
	})); err == nil {
		t.Error("begin with wrong encoding accepted")
	}
	if _, err := sh.Handle(ctx, MethodUpdateBegin, EncodeUpdateBegin(&UpdateBegin{
		Version: 1, TableID: 9999, Rows: rowsN, Dim: dim, Enc: TierEncFP32,
	})); err == nil {
		t.Error("begin for unheld table accepted")
	}

	// A begun-then-aborted version refuses rows and commit.
	if _, err := sh.Handle(ctx, MethodUpdateBegin, EncodeUpdateBegin(&UpdateBegin{
		Version: 2, TableID: int32(id), Rows: rowsN, Dim: dim, Enc: TierEncFP32,
	})); err != nil {
		t.Fatal(err)
	}
	if _, err := sh.Handle(ctx, MethodUpdateAbort, EncodeUpdateCommit(&UpdateCommit{Version: 2})); err != nil {
		t.Fatal(err)
	}
	if _, err := sh.Handle(ctx, MethodUpdateCommit, EncodeUpdateCommit(&UpdateCommit{Version: 2})); err == nil {
		t.Error("commit after abort accepted")
	}
	if sh.ModelVersion() != 0 {
		t.Fatalf("model version %d after aborted update, want 0", sh.ModelVersion())
	}
}

// TestUpdateSkipsReleasedTable: a table migrated away between begin and
// commit must not be resurrected by the commit.
func TestUpdateSkipsReleasedTable(t *testing.T) {
	cfg := tinyConfig()
	m := model.Build(cfg)
	plan, err := sharding.CapacityBalanced(&cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	recs := []*trace.Recorder{trace.NewRecorder("sparse1", 64), trace.NewRecorder("sparse2", 64)}
	shards, err := MaterializeShards(m, plan, recs)
	if err != nil {
		t.Fatal(err)
	}
	sh := shards[0]
	id := plan.Shards[0].Tables[0]
	ctx := trace.Context{}
	rows := readTableRows(t, sh, id, 0)
	if _, err := sh.Handle(ctx, MethodUpdateBegin, EncodeUpdateBegin(&UpdateBegin{
		Version: 5, TableID: int32(id), Rows: rows.Rows, Dim: rows.Dim, Enc: rows.Enc,
	})); err != nil {
		t.Fatal(err)
	}
	held := sh.NumTables()
	sh.ReleaseTable(id, 0)
	out, err := sh.Handle(ctx, MethodUpdateCommit, EncodeUpdateCommit(&UpdateCommit{Version: 5}))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := DecodeUpdateCommitResponse(out)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Tables != 0 {
		t.Fatalf("commit installed %d tables after release, want 0", resp.Tables)
	}
	if sh.NumTables() != held-1 {
		t.Fatalf("released table resurrected: %d tables, want %d", sh.NumTables(), held-1)
	}
	if sh.ModelVersion() != 5 {
		t.Fatalf("model version %d, want 5 (commit still acknowledges)", sh.ModelVersion())
	}
}

// cloneNetParams deep-copies dense parameters so a swap test can mutate
// them independently of the model's originals.
func cloneNetParams(src []model.NetParams) []model.NetParams {
	out := make([]model.NetParams, len(src))
	cloneFC := func(p model.FCParams) model.FCParams {
		w := &tensor.Matrix{Rows: p.W.Rows, Cols: p.W.Cols, Data: append([]float32(nil), p.W.Data...)}
		return model.FCParams{W: w, B: append([]float32(nil), p.B...)}
	}
	for i, np := range src {
		out[i].Bottom = make([]model.FCParams, len(np.Bottom))
		for j, p := range np.Bottom {
			out[i].Bottom[j] = cloneFC(p)
		}
		out[i].Proj = cloneFC(np.Proj)
		out[i].Top = make([]model.FCParams, len(np.Top))
		for j, p := range np.Top {
			out[i].Top[j] = cloneFC(p)
		}
	}
	return out
}

// TestEngineSwapDense: an identical parameter set scores bitwise the
// same, a perturbed set changes scores, and a mis-shaped set is refused
// without disturbing the serving program.
func TestEngineSwapDense(t *testing.T) {
	cfg := tinyConfig()
	m := model.Build(cfg)
	rec := trace.NewRecorder("main", 1<<16)
	eng, err := NewEngine(m, sharding.Singular(&cfg), EngineConfig{Recorder: rec})
	if err != nil {
		t.Fatal(err)
	}
	req := FromWorkload(workload.NewGenerator(cfg, 2).Next())
	before, err := eng.Execute(trace.Context{TraceID: 1}, req)
	if err != nil {
		t.Fatal(err)
	}

	if err := eng.SwapDense(cloneNetParams(m.NetParams)); err != nil {
		t.Fatal(err)
	}
	same, err := eng.Execute(trace.Context{TraceID: 2}, req)
	if err != nil {
		t.Fatal(err)
	}
	if !bitsEqual(before, same) {
		t.Fatal("identical dense swap changed scores")
	}

	perturbed := cloneNetParams(m.NetParams)
	perturbed[0].Proj.W.Data[0] += 1
	if err := eng.SwapDense(perturbed); err != nil {
		t.Fatal(err)
	}
	changed, err := eng.Execute(trace.Context{TraceID: 3}, req)
	if err != nil {
		t.Fatal(err)
	}
	if bitsEqual(before, changed) {
		t.Fatal("perturbed dense swap left scores unchanged")
	}

	bad := cloneNetParams(m.NetParams)
	bad[0].Bottom = bad[0].Bottom[:len(bad[0].Bottom)-1]
	if err := eng.SwapDense(bad); err == nil {
		t.Fatal("mis-shaped dense swap accepted")
	}
	still, err := eng.Execute(trace.Context{TraceID: 4}, req)
	if err != nil {
		t.Fatal(err)
	}
	if !bitsEqual(changed, still) {
		t.Fatal("failed swap disturbed the serving program")
	}
}
