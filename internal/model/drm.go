package model

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Scale notes: the paper's models were themselves scaled down to fit a
// 256 GB server (DRM1: 194 GiB / 257 tables, DRM2: 138 GB / 133 tables,
// DRM3: 200 GB / 39 tables). We apply a further uniform ~1024× so the
// full suite runs in memory on a developer machine: 1 GiB in the paper
// maps to 1 MiB here. All size *ratios* — the long tail of DRM1/DRM2,
// DRM3's single dominating table at ~89% of capacity, the dominant
// sparse share of capacity — are preserved, and those ratios are what
// the paper's findings key on.

// perRequestTables records, per model name, table IDs whose sparse
// feature is shared across all items of a ranking request (e.g. the
// requesting user's ID — one lookup per request, replicated per item).
// DRM3's dominating table has pooling factor 1 with this property, which
// is why "only one of the shards spanning the table will be accessed" per
// inference (Section V-A).
var perRequestTables = map[string]map[int]bool{
	"DRM3": {0: true},
}

// IsPerRequestTable reports whether the table's sparse feature is shared
// by all items in a request (single lookup per request).
func IsPerRequestTable(modelName string, tableID int) bool {
	return perRequestTables[modelName][tableID]
}

// gibScaled maps a size reported in GiB by the paper to this
// reproduction's ~1024×-scaled byte count (1 GiB → 1 MiB).
func gibScaled(gib float64) int64 { return int64(gib * 1024 * 1024) }

// genTables draws per-table sizes from a lognormal distribution (the long
// tail of Fig. 5), scales them to hit totalBytes exactly, and assigns
// pooling factors from a second lognormal scaled to poolingPerItem.
func genTables(rng *rand.Rand, net string, startID, count int, dim int,
	totalBytes int64, sizeSigma float64, poolingPerItem, poolingSigma float64) []TableSpec {

	rawSize := make([]float64, count)
	rawPool := make([]float64, count)
	var sizeSum, poolSum float64
	for i := range rawSize {
		rawSize[i] = math.Exp(rng.NormFloat64() * sizeSigma)
		sizeSum += rawSize[i]
		rawPool[i] = math.Exp(rng.NormFloat64() * poolingSigma)
		poolSum += rawPool[i]
	}
	tables := make([]TableSpec, count)
	for i := range tables {
		bytes := float64(totalBytes) * rawSize[i] / sizeSum
		rows := int(bytes / float64(dim*4))
		if rows < 8 {
			rows = 8
		}
		tables[i] = TableSpec{
			ID:            startID + i,
			Name:          fmt.Sprintf("%s_t%03d", net, startID+i),
			Net:           net,
			Rows:          rows,
			Dim:           dim,
			PoolingFactor: poolingPerItem * rawPool[i] / poolSum,
		}
	}
	// Sort tables within the net by descending size so "largest table"
	// statistics are stable and interaction features pick big tables.
	sort.Slice(tables, func(i, j int) bool { return tables[i].Rows > tables[j].Rows })
	for i := range tables {
		tables[i].ID = startID + i
		tables[i].Name = fmt.Sprintf("%s_t%03d", net, startID+i)
	}
	return tables
}

// DRM1 mirrors the paper's most compute-intensive model: 257 tables in
// two nets with a long-tailed size distribution; net1 holds 72 small
// tables doing ~94% of the pooling work, net2 holds 185 large tables with
// low pooling (Table II's NSBP column: net1 33.58 GiB / 126652 pooling,
// net2 160 GiB / 8010 pooling). Requests are large (more batches than
// DRM2, Section VI-F).
func DRM1() Config {
	rng := rand.New(rand.NewSource(101))
	// 194 GiB / 1024 ≈ 194 MiB total sparse; net1:net2 ≈ 33.58:160.
	// net1's high-pooling tables use dim 8; net2's capacity-heavy tables
	// use dim 16, mirroring the paper's varying embedding dimensions.
	net1Bytes := gibScaled(33.58) // ≈ 33.6 MiB
	net2Bytes := gibScaled(160.0) // ≈ 160 MiB
	t1 := genTables(rng, "net1", 0, 72, 8, net1Bytes, 1.0, 200, 0.9)
	t2 := genTables(rng, "net2", 72, 185, 16, net2Bytes, 1.1, 16, 1.0)
	cfg := Config{
		Name: "DRM1",
		Nets: []NetSpec{
			{Name: "net1", DenseDim: 13, BottomMLP: []int{192, 96}, EmbProj: 256,
				TopMLP: []int{256, 96}, InteractFeatures: 12},
			{Name: "net2", DenseDim: 13, BottomMLP: []int{192, 96}, EmbProj: 256,
				TopMLP: []int{256, 1}, InteractFeatures: 12},
		},
		Tables:       append(t1, t2...),
		MeanItems:    32,
		ItemsSigma:   0.45,
		DefaultBatch: 16,
		Seed:         101,
	}
	return cfg
}

// DRM2 is architecturally similar to DRM1 ("DRM1 and DRM2 are the most
// similar architectures") with 133 tables, proportionally 138 GB of
// capacity, and smaller requests.
func DRM2() Config {
	rng := rand.New(rand.NewSource(202))
	// 138 GB / 1024 ≈ 138 MiB; net split chosen with the same
	// high-pooling-small-net1 shape as DRM1.
	net1Bytes := gibScaled(24.0)
	net2Bytes := gibScaled(114.0)
	t1 := genTables(rng, "net1", 0, 40, 8, net1Bytes, 1.0, 180, 0.9)
	t2 := genTables(rng, "net2", 40, 93, 16, net2Bytes, 1.1, 16, 1.0)
	return Config{
		Name: "DRM2",
		Nets: []NetSpec{
			{Name: "net1", DenseDim: 13, BottomMLP: []int{192, 96}, EmbProj: 256,
				TopMLP: []int{256, 96}, InteractFeatures: 12},
			{Name: "net2", DenseDim: 13, BottomMLP: []int{192, 96}, EmbProj: 256,
				TopMLP: []int{256, 1}, InteractFeatures: 12},
		},
		Tables:       append(t1, t2...),
		MeanItems:    20,
		ItemsSigma:   0.4,
		DefaultBatch: 16,
		Seed:         202,
	}
}

// DRM3 has a single net whose capacity is dominated by one huge table
// (178.8 GB of 200 GB in the paper — ~89%) with pooling factor 1 shared
// across the request's items (a per-user feature), and markedly lower
// sparse compute (3.1% of operator time). Its requests are small enough
// for a single batch at the default batch size.
func DRM3() Config {
	rng := rand.New(rand.NewSource(303))
	// 200 GB total, 178.8 GB dominating table, 21.2 GB over 38 tables.
	// The dominating table (a per-user feature) uses dim 16.
	bigRows := int(gibScaled(178.8) / (16 * 4))
	rest := genTables(rng, "net1", 1, 38, 8, gibScaled(21.2), 0.9, 5, 1.0)
	big := TableSpec{
		ID: 0, Name: "net1_t000", Net: "net1",
		Rows: bigRows, Dim: 16, PoolingFactor: 1,
	}
	tables := append([]TableSpec{big}, rest...)
	return Config{
		Name: "DRM3",
		Nets: []NetSpec{
			{Name: "net1", DenseDim: 13, BottomMLP: []int{256, 128}, EmbProj: 256,
				TopMLP: []int{256, 128, 1}, InteractFeatures: 10},
		},
		Tables:       tables,
		MeanItems:    16,
		ItemsSigma:   0.3,
		DefaultBatch: 24,
		Seed:         303,
	}
}

// ByName returns the named model config; it panics on unknown names,
// which is a CLI-input error callers should pre-validate with Names.
func ByName(name string) Config {
	switch name {
	case "DRM1", "drm1":
		return DRM1()
	case "DRM2", "drm2":
		return DRM2()
	case "DRM3", "drm3":
		return DRM3()
	}
	panic(fmt.Sprintf("model: unknown model %q (want DRM1, DRM2, or DRM3)", name))
}

// Names lists the available model names.
func Names() []string { return []string{"DRM1", "DRM2", "DRM3"} }
