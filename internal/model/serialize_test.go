package model

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/embedding"
)

func smallTestModel() *Model {
	cfg := DRM3()
	for i := range cfg.Tables {
		cfg.Tables[i].Rows = 32
	}
	return Build(cfg)
}

func TestSaveLoadRoundTrip(t *testing.T) {
	m := smallTestModel()
	var buf bytes.Buffer
	if err := Save(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}

	// Config identity.
	if got.Config.Name != m.Config.Name || got.Config.Seed != m.Config.Seed ||
		got.Config.MeanItems != m.Config.MeanItems || got.Config.DefaultBatch != m.Config.DefaultBatch {
		t.Fatalf("config mismatch: %+v vs %+v", got.Config, m.Config)
	}
	if len(got.Config.Nets) != len(m.Config.Nets) || len(got.Config.Tables) != len(m.Config.Tables) {
		t.Fatal("structure mismatch")
	}
	for i := range m.Config.Nets {
		a, b := got.Config.Nets[i], m.Config.Nets[i]
		if a.Name != b.Name || a.DenseDim != b.DenseDim || a.EmbProj != b.EmbProj || len(a.BottomMLP) != len(b.BottomMLP) || len(a.TopMLP) != len(b.TopMLP) {
			t.Fatalf("net %d mismatch: %+v vs %+v", i, a, b)
		}
	}
	for i := range m.Config.Tables {
		if got.Config.Tables[i] != m.Config.Tables[i] {
			t.Fatalf("table spec %d mismatch", i)
		}
	}

	// Dense parameters bit-identical.
	for n := range m.NetParams {
		a, b := got.NetParams[n], m.NetParams[n]
		for i := range b.Proj.W.Data {
			if a.Proj.W.Data[i] != b.Proj.W.Data[i] {
				t.Fatal("projection weights differ")
			}
		}
		for l := range b.Bottom {
			for i := range b.Bottom[l].B {
				if a.Bottom[l].B[i] != b.Bottom[l].B[i] {
					t.Fatal("bottom bias differs")
				}
			}
		}
	}

	// Table data bit-identical.
	for i := range m.Tables {
		a := got.Tables[i].(*embedding.Dense)
		b := m.Tables[i].(*embedding.Dense)
		for j := range b.Data {
			if a.Data[j] != b.Data[j] {
				t.Fatalf("table %d data differs at %d", i, j)
			}
		}
	}
}

func TestSaveLoadQuantizedTables(t *testing.T) {
	m := smallTestModel().Compress(1, 0.001) // everything 4-bit (threshold 1 byte)
	var buf bytes.Buffer
	if err := Save(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.SparseTableBytes() != m.SparseTableBytes() {
		t.Fatalf("quantized bytes differ: %d vs %d", got.SparseTableBytes(), m.SparseTableBytes())
	}
	// Lookups identical through the round trip.
	accA := make([]float32, m.Tables[1].Dim())
	accB := make([]float32, m.Tables[1].Dim())
	m.Tables[1].AccumulateRow(accA, 3)
	got.Tables[1].AccumulateRow(accB, 3)
	for i := range accA {
		if accA[i] != accB[i] {
			t.Fatal("quantized lookup differs after round trip")
		}
	}
}

func TestLoadRejectsCorruption(t *testing.T) {
	m := smallTestModel()
	var buf bytes.Buffer
	if err := Save(&buf, m); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()

	// Bad magic.
	bad := append([]byte(nil), full...)
	bad[4] = 'X'
	if _, err := Load(bytes.NewReader(bad)); err == nil {
		t.Error("bad magic accepted")
	}
	// Bad version.
	bad = append([]byte(nil), full...)
	bad[8] = 99
	if _, err := Load(bytes.NewReader(bad)); err == nil {
		t.Error("bad version accepted")
	}
	// Truncations at assorted depths.
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 25; i++ {
		cut := 9 + rng.Intn(len(full)-10)
		if _, err := Load(bytes.NewReader(full[:cut])); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
	// Empty input.
	if _, err := Load(bytes.NewReader(nil)); err == nil {
		t.Error("empty input accepted")
	}
}

func TestSaveLoadBuildEquivalence(t *testing.T) {
	// A loaded model must behave identically to the built one: verify by
	// pooling a few rows from every table backend type.
	m := smallTestModel()
	var buf bytes.Buffer
	if err := Save(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range m.Tables {
		a := make([]float32, m.Tables[i].Dim())
		b := make([]float32, m.Tables[i].Dim())
		m.Tables[i].AccumulateRow(a, i%m.Tables[i].NumRows())
		got.Tables[i].AccumulateRow(b, i%m.Tables[i].NumRows())
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("table %d lookup differs", i)
			}
		}
	}
}
