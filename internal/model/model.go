// Package model defines the recommendation-model intermediate
// representation used throughout the system — embedding-table specs, net
// specs, and built models with materialized parameters — plus synthetic
// builders for the paper's three workloads DRM1, DRM2, and DRM3.
//
// The paper's models are production models scaled down to fit a 256 GB
// server ("Embedding tables larger than a given threshold were scaled
// down by a proportional factor", Section V-A). We scale a further ~4096×
// so experiments run on laptop-class machines, preserving the attributes
// the paper identifies as governing distributed-inference behavior:
//
//   - table count and size distribution (DRM1: 257 tables, long tail,
//     largest 3.6/194 of capacity; DRM2: 133 tables, long tail; DRM3: 39
//     tables with one table holding ~89% of capacity),
//   - net structure (DRM1/DRM2: two sequential nets; DRM3: one net),
//   - pooling-factor distribution (DRM1/DRM2 net1: high pooling on small
//     tables; net2: low pooling on large tables; DRM3's dominating table
//     has pooling factor 1),
//   - the sparse/dense operator compute split (sparse ≈ 10%/10%/3% of
//     operator time for DRM1/2/3, Fig. 4) and the >97% share of capacity
//     held by embedding tables.
package model

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/embedding"
	"repro/internal/quant"
	"repro/internal/tensor"
)

// TableSpec describes one embedding table.
type TableSpec struct {
	// ID is the table's stable index across the model.
	ID int
	// Name is a human-readable identifier ("t042").
	Name string
	// Net names the ML net whose sparse features use this table.
	Net string
	// Rows and Dim give the table shape.
	Rows, Dim int
	// PoolingFactor is the mean number of lookups per inference item for
	// this table's feature (the quantity the load-balanced strategy
	// budgets and Table II reports).
	PoolingFactor float64
}

// Bytes returns the uncompressed fp32 size of the table.
func (t TableSpec) Bytes() int64 { return int64(t.Rows) * int64(t.Dim) * 4 }

// NetSpec describes one net's dense architecture.
type NetSpec struct {
	// Name identifies the net ("net1", "net2").
	Name string
	// DenseDim is the width of the net's dense input features.
	DenseDim int
	// BottomMLP lists hidden widths of the dense-feature MLP.
	BottomMLP []int
	// EmbProj is the output width of the FC layer that consumes the
	// concatenation of all pooled embeddings.
	EmbProj int
	// TopMLP lists hidden widths of the post-interaction MLP.
	TopMLP []int
	// InteractFeatures is how many leading tables of this net join the
	// pairwise-dot feature interaction.
	InteractFeatures int
}

// Config is a complete model description, sufficient to deterministically
// materialize parameters and generate workload.
type Config struct {
	// Name is the model name ("DRM1").
	Name string
	// Nets execute sequentially; each net's output feeds the next.
	Nets []NetSpec
	// Tables lists every embedding table with its owning net.
	Tables []TableSpec
	// MeanItems is the mean ranking-request size (items to score).
	MeanItems int
	// ItemsSigma shapes the lognormal request-size tail.
	ItemsSigma float64
	// DefaultBatch is the production default batch size (items per
	// execution batch); a request of R items runs ⌈R/DefaultBatch⌉
	// batches in parallel (Section VI-F).
	DefaultBatch int
	// Seed makes parameter materialization and workload deterministic.
	Seed int64
}

// NetTables returns the specs of tables owned by the named net, in ID
// order.
func (c *Config) NetTables(net string) []TableSpec {
	var out []TableSpec
	for _, t := range c.Tables {
		if t.Net == net {
			out = append(out, t)
		}
	}
	return out
}

// SparseBytes sums all embedding-table bytes.
func (c *Config) SparseBytes() int64 {
	var n int64
	for _, t := range c.Tables {
		n += t.Bytes()
	}
	return n
}

// TotalPoolingPerItem sums mean pooling factors across tables — the
// expected embedding lookups per inference item.
func (c *Config) TotalPoolingPerItem() float64 {
	var p float64
	for _, t := range c.Tables {
		p += t.PoolingFactor
	}
	return p
}

// Model is a Config with materialized parameters.
type Model struct {
	Config
	// Tables holds one backend per TableSpec, indexed by TableSpec.ID.
	Tables []embedding.Table
	// NetParams holds per-net dense parameters, parallel to Config.Nets.
	NetParams []NetParams
}

// NetParams are the dense parameters of one net.
type NetParams struct {
	// Bottom holds the bottom-MLP weight/bias pairs.
	Bottom []FCParams
	// Proj consumes the pooled-embedding concatenation.
	Proj FCParams
	// Top holds the post-interaction MLP parameters; the final layer is
	// width 1 for the last net (the click-probability head).
	Top []FCParams
}

// FCParams is one fully-connected layer's parameters.
type FCParams struct {
	W *tensor.Matrix
	B []float32
}

// DenseBytes sums dense (non-embedding) parameter bytes.
func (m *Model) DenseBytes() int64 {
	var n int64
	for _, np := range m.NetParams {
		for _, fc := range np.Bottom {
			n += fc.W.Bytes() + int64(len(fc.B))*4
		}
		n += np.Proj.W.Bytes() + int64(len(np.Proj.B))*4
		for _, fc := range np.Top {
			n += fc.W.Bytes() + int64(len(fc.B))*4
		}
	}
	return n
}

// TotalBytes is the full model footprint.
func (m *Model) TotalBytes() int64 { return m.DenseBytes() + m.SparseTableBytes() }

// SparseTableBytes sums the materialized table backends (which may be
// quantized, unlike Config.SparseBytes which reports fp32 spec size).
func (m *Model) SparseTableBytes() int64 {
	var n int64
	for _, t := range m.Tables {
		n += t.Bytes()
	}
	return n
}

// Build materializes a model from a config with deterministic parameters.
func Build(cfg Config) *Model {
	rng := rand.New(rand.NewSource(cfg.Seed))
	m := &Model{Config: cfg}
	m.Tables = make([]embedding.Table, len(cfg.Tables))
	for i, ts := range cfg.Tables {
		if ts.ID != i {
			panic(fmt.Sprintf("model: table %d has ID %d; IDs must be dense and ordered", i, ts.ID))
		}
		m.Tables[i] = embedding.NewDenseRandom(rng, ts.Rows, ts.Dim, 0.1)
	}
	prevOut := 0
	for i, ns := range cfg.Nets {
		inDim := ns.DenseDim + prevOut // later nets consume the prior net's output
		var np NetParams
		w := inDim
		for _, h := range ns.BottomMLP {
			np.Bottom = append(np.Bottom, newFC(rng, w, h))
			w = h
		}
		bottomOut := w
		embCols := 0
		for _, ts := range cfg.NetTables(ns.Name) {
			embCols += ts.Dim
		}
		np.Proj = newFC(rng, embCols, ns.EmbProj)
		// Top input: bottom output + proj + pairwise dots.
		nInter := ns.InteractFeatures
		topIn := bottomOut + ns.EmbProj + nInter*(nInter-1)/2
		w = topIn
		for _, h := range ns.TopMLP {
			np.Top = append(np.Top, newFC(rng, w, h))
			w = h
		}
		m.NetParams = append(m.NetParams, np)
		prevOut = w
		_ = i
	}
	return m
}

func newFC(rng *rand.Rand, in, out int) FCParams {
	w := tensor.New(in, out)
	scale := float32(1 / math.Sqrt(float64(in)))
	for i := range w.Data {
		w.Data[i] = (rng.Float32()*2 - 1) * scale
	}
	b := make([]float32, out)
	for i := range b {
		b[i] = (rng.Float32()*2 - 1) * 0.01
	}
	return FCParams{W: w, B: b}
}

// Compress returns a copy of the model with all embedding tables
// quantized (8-bit, or 4-bit for tables at or above bigTableBytes) after
// magnitude pruning, reproducing the production compression recipe of
// Section VII-D. Dense parameters are left uncompressed, as in the paper.
func (m *Model) Compress(bigTableBytes int64, pruneThreshold float32) *Model {
	out := &Model{Config: m.Config, NetParams: m.NetParams}
	out.Tables = make([]embedding.Table, len(m.Tables))
	for i, t := range m.Tables {
		dense, ok := t.(*embedding.Dense)
		if !ok {
			out.Tables[i] = t // already compressed
			continue
		}
		clone := &embedding.Dense{RowsN: dense.RowsN, DimN: dense.DimN, Data: append([]float32(nil), dense.Data...)}
		quant.PruneMagnitude(clone.Data, pruneThreshold)
		bits := quant.Bits8
		if m.Config.Tables[i].Bytes() >= bigTableBytes {
			bits = quant.Bits4
		}
		out.Tables[i] = clone.Quantize(bits)
	}
	return out
}
