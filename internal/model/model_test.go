package model

import (
	"math"
	"testing"

	"repro/internal/embedding"
)

func TestDRMConfigsBasicShape(t *testing.T) {
	cases := []struct {
		cfg        Config
		tables     int
		nets       int
		sparseFrac float64 // minimum sparse share of capacity
	}{
		{DRM1(), 257, 2, 0.95},
		{DRM2(), 133, 2, 0.95},
		{DRM3(), 39, 1, 0.98},
	}
	for _, c := range cases {
		if len(c.cfg.Tables) != c.tables {
			t.Errorf("%s: %d tables, want %d", c.cfg.Name, len(c.cfg.Tables), c.tables)
		}
		if len(c.cfg.Nets) != c.nets {
			t.Errorf("%s: %d nets, want %d", c.cfg.Name, len(c.cfg.Nets), c.nets)
		}
		m := Build(c.cfg)
		frac := float64(m.SparseTableBytes()) / float64(m.TotalBytes())
		if frac < c.sparseFrac {
			// Paper: >97% for DRM1/2, >99.9% for DRM3. Dense parameters do
			// not scale down with the 4096x table scaling (the same MLPs
			// serve both), so the scaled-down bounds relax slightly; at
			// paper scale these dense sizes give >99.99% sparse share.
			t.Errorf("%s: sparse capacity share %.4f < %.4f", c.cfg.Name, frac, c.sparseFrac)
		}
	}
}

func TestTableIDsAreDense(t *testing.T) {
	for _, name := range Names() {
		cfg := ByName(name)
		for i, ts := range cfg.Tables {
			if ts.ID != i {
				t.Fatalf("%s: table %d has ID %d", name, i, ts.ID)
			}
			if ts.Rows <= 0 || ts.Dim <= 0 {
				t.Fatalf("%s: table %d has bad shape %dx%d", name, i, ts.Rows, ts.Dim)
			}
			if ts.PoolingFactor <= 0 {
				t.Fatalf("%s: table %d has non-positive pooling", name, i)
			}
		}
	}
}

func TestDRM3DominatedBySingleTable(t *testing.T) {
	cfg := DRM3()
	total := cfg.SparseBytes()
	big := cfg.Tables[0].Bytes()
	if frac := float64(big) / float64(total); frac < 0.85 {
		t.Errorf("DRM3 largest table holds %.3f of capacity, want ≥0.85 (paper: 178.8/200)", frac)
	}
	if cfg.Tables[0].PoolingFactor != 1 {
		t.Errorf("DRM3 dominating table pooling = %v, want 1", cfg.Tables[0].PoolingFactor)
	}
	if !IsPerRequestTable("DRM3", 0) {
		t.Error("DRM3 table 0 should be a per-request feature")
	}
	if IsPerRequestTable("DRM1", 0) {
		t.Error("DRM1 has no per-request tables")
	}
}

func TestDRM1NetPoolingSplit(t *testing.T) {
	cfg := DRM1()
	var p1, p2, b1, b2 float64
	for _, ts := range cfg.Tables {
		if ts.Net == "net1" {
			p1 += ts.PoolingFactor
			b1 += float64(ts.Bytes())
		} else {
			p2 += ts.PoolingFactor
			b2 += float64(ts.Bytes())
		}
	}
	// Paper (Table II NSBP-2): net1 does ~94% of pooling with ~17% of
	// capacity; net2 the inverse.
	if frac := p1 / (p1 + p2); frac < 0.85 {
		t.Errorf("net1 pooling share %.3f, want ≥0.85", frac)
	}
	if frac := b2 / (b1 + b2); frac < 0.75 {
		t.Errorf("net2 capacity share %.3f, want ≥0.75", frac)
	}
}

func TestDRMLongTailDistribution(t *testing.T) {
	// DRM1/DRM2 have long-tailed size distributions: the largest table is
	// a small fraction of total, unlike DRM3.
	for _, cfg := range []Config{DRM1(), DRM2()} {
		var largest, total int64
		for _, ts := range cfg.Tables {
			if ts.Bytes() > largest {
				largest = ts.Bytes()
			}
			total += ts.Bytes()
		}
		if frac := float64(largest) / float64(total); frac > 0.25 {
			t.Errorf("%s: largest table holds %.3f of capacity — should be long-tailed", cfg.Name, frac)
		}
	}
}

func TestConfigDeterminism(t *testing.T) {
	a, b := DRM1(), DRM1()
	if len(a.Tables) != len(b.Tables) {
		t.Fatal("table counts differ")
	}
	for i := range a.Tables {
		if a.Tables[i] != b.Tables[i] {
			t.Fatalf("table %d differs across builds: %+v vs %+v", i, a.Tables[i], b.Tables[i])
		}
	}
}

func TestBuildDeterminism(t *testing.T) {
	m1, m2 := Build(DRM2()), Build(DRM2())
	t1 := m1.Tables[5].(*embedding.Dense)
	t2 := m2.Tables[5].(*embedding.Dense)
	for i := range t1.Data {
		if t1.Data[i] != t2.Data[i] {
			t.Fatal("model parameters must be deterministic")
		}
	}
	if m1.NetParams[0].Proj.W.Data[0] != m2.NetParams[0].Proj.W.Data[0] {
		t.Fatal("dense parameters must be deterministic")
	}
}

func TestNetTables(t *testing.T) {
	cfg := DRM1()
	n1 := cfg.NetTables("net1")
	n2 := cfg.NetTables("net2")
	if len(n1) != 72 || len(n2) != 185 {
		t.Errorf("net splits = %d/%d, want 72/185", len(n1), len(n2))
	}
	if len(cfg.NetTables("missing")) != 0 {
		t.Error("unknown net should have no tables")
	}
}

func TestTotalPooling(t *testing.T) {
	cfg := DRM1()
	p := cfg.TotalPoolingPerItem()
	if p < 80 || p > 300 {
		t.Errorf("DRM1 pooling per item = %v, want on the order of 100", p)
	}
	cfg3 := DRM3()
	if p3 := cfg3.TotalPoolingPerItem(); p3 > p/3 {
		t.Errorf("DRM3 pooling (%v) should be far below DRM1 (%v)", p3, p)
	}
}

func TestByNameAndNames(t *testing.T) {
	for _, n := range Names() {
		if got := ByName(n).Name; got != n {
			t.Errorf("ByName(%q).Name = %q", n, got)
		}
	}
	if ByName("drm1").Name != "DRM1" {
		t.Error("lowercase alias should work")
	}
	defer func() {
		if recover() == nil {
			t.Error("unknown model should panic")
		}
	}()
	ByName("nope")
}

func TestBuildPanicsOnBadIDs(t *testing.T) {
	cfg := DRM3()
	cfg.Tables[3].ID = 99
	defer func() {
		if recover() == nil {
			t.Error("expected panic on non-dense IDs")
		}
	}()
	Build(cfg)
}

func TestCompressShrinksTables(t *testing.T) {
	cfg := DRM3()
	m := Build(cfg)
	// Big-table threshold chosen so the dominating table gets 4-bit.
	compressed := m.Compress(1<<20, 0.002)
	if compressed.SparseTableBytes() >= m.SparseTableBytes() {
		t.Fatal("compression should shrink sparse bytes")
	}
	ratio := float64(m.SparseTableBytes()) / float64(compressed.SparseTableBytes())
	// Paper Table III reports 5.56× total; with the dominating table at
	// 4-bit (≈8×) and the tail at 8-bit (≈4×) we should land well above 4×.
	if ratio < 4 {
		t.Errorf("compression ratio %.2f, want ≥4", ratio)
	}
	// Dense params shared, not duplicated.
	if compressed.DenseBytes() != m.DenseBytes() {
		t.Error("dense bytes should be unchanged")
	}
	// Compressing twice is a no-op for already-quantized tables.
	again := compressed.Compress(1<<20, 0.002)
	if again.SparseTableBytes() != compressed.SparseTableBytes() {
		t.Error("re-compression should be idempotent")
	}
}

func TestCompressPreservesLookupSemantics(t *testing.T) {
	m := Build(DRM2())
	c := m.Compress(1<<40, 0) // no pruning, all 8-bit
	tab := m.Tables[3].(*embedding.Dense)
	acc1 := make([]float32, tab.Dim())
	acc2 := make([]float32, tab.Dim())
	m.Tables[3].AccumulateRow(acc1, 5)
	c.Tables[3].AccumulateRow(acc2, 5)
	for i := range acc1 {
		if math.Abs(float64(acc1[i]-acc2[i])) > 0.01 {
			t.Fatalf("quantized lookup diverges: %v vs %v", acc2[i], acc1[i])
		}
	}
}
