package model

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"repro/internal/embedding"
	"repro/internal/tensor"
)

// Binary model serialization — the publishing step of Section III-C:
// "A custom partitioning tool employs a user-supplied configuration to
// group embedding tables and their operators, insert RPC operators,
// generate new Caffe2 nets, and then serialize the model to storage."
// The format is versioned, little-endian, and self-describing enough for
// Load to validate shape consistency while reading.
//
// Layout:
//
//	magic "DRMS" | u32 version | config | dense params | tables
//
// Quantized tables round-trip through their packed representation.

const (
	serializeMagic   = "DRMS"
	serializeVersion = 1

	tableKindDense uint32 = 0
	tableKindQuant uint32 = 1
)

var errBadFormat = errors.New("model: malformed serialized model")

type binWriter struct {
	w   *bufio.Writer
	err error
}

func (b *binWriter) u32(v uint32) {
	if b.err != nil {
		return
	}
	var tmp [4]byte
	binary.LittleEndian.PutUint32(tmp[:], v)
	_, b.err = b.w.Write(tmp[:])
}

func (b *binWriter) u64(v uint64) {
	if b.err != nil {
		return
	}
	var tmp [8]byte
	binary.LittleEndian.PutUint64(tmp[:], v)
	_, b.err = b.w.Write(tmp[:])
}

func (b *binWriter) f64(v float64) { b.u64(math.Float64bits(v)) }

func (b *binWriter) str(s string) {
	b.u32(uint32(len(s)))
	if b.err != nil {
		return
	}
	_, b.err = b.w.WriteString(s)
}

func (b *binWriter) bytes(p []byte) {
	b.u32(uint32(len(p)))
	if b.err != nil {
		return
	}
	_, b.err = b.w.Write(p)
}

func (b *binWriter) f32s(xs []float32) {
	b.u32(uint32(len(xs)))
	if b.err != nil {
		return
	}
	buf := make([]byte, 4*len(xs))
	for i, x := range xs {
		binary.LittleEndian.PutUint32(buf[4*i:], math.Float32bits(x))
	}
	_, b.err = b.w.Write(buf)
}

func (b *binWriter) u16s(xs []uint16) {
	b.u32(uint32(len(xs)))
	if b.err != nil {
		return
	}
	buf := make([]byte, 2*len(xs))
	for i, x := range xs {
		binary.LittleEndian.PutUint16(buf[2*i:], x)
	}
	_, b.err = b.w.Write(buf)
}

type binReader struct {
	r   *bufio.Reader
	err error
}

func (b *binReader) u32() uint32 {
	if b.err != nil {
		return 0
	}
	var tmp [4]byte
	if _, err := io.ReadFull(b.r, tmp[:]); err != nil {
		b.err = err
		return 0
	}
	return binary.LittleEndian.Uint32(tmp[:])
}

func (b *binReader) u64() uint64 {
	if b.err != nil {
		return 0
	}
	var tmp [8]byte
	if _, err := io.ReadFull(b.r, tmp[:]); err != nil {
		b.err = err
		return 0
	}
	return binary.LittleEndian.Uint64(tmp[:])
}

func (b *binReader) f64() float64 { return math.Float64frombits(b.u64()) }

// cap reads a length prefix, rejecting absurd values so corrupt files
// fail cleanly instead of attempting huge allocations.
func (b *binReader) length(max uint32) int {
	n := b.u32()
	if b.err == nil && n > max {
		b.err = fmt.Errorf("%w: length %d exceeds limit %d", errBadFormat, n, max)
	}
	return int(n)
}

func (b *binReader) str() string {
	n := b.length(1 << 20)
	if b.err != nil {
		return ""
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(b.r, buf); err != nil {
		b.err = err
		return ""
	}
	return string(buf)
}

func (b *binReader) bytes() []byte {
	n := b.length(1 << 30)
	if b.err != nil {
		return nil
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(b.r, buf); err != nil {
		b.err = err
		return nil
	}
	return buf
}

func (b *binReader) f32s() []float32 {
	n := b.length(1 << 28)
	if b.err != nil {
		return nil
	}
	buf := make([]byte, 4*n)
	if _, err := io.ReadFull(b.r, buf); err != nil {
		b.err = err
		return nil
	}
	out := make([]float32, n)
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[4*i:]))
	}
	return out
}

func (b *binReader) u16s() []uint16 {
	n := b.length(1 << 28)
	if b.err != nil {
		return nil
	}
	buf := make([]byte, 2*n)
	if _, err := io.ReadFull(b.r, buf); err != nil {
		b.err = err
		return nil
	}
	out := make([]uint16, n)
	for i := range out {
		out[i] = binary.LittleEndian.Uint16(buf[2*i:])
	}
	return out
}

// Save writes the model (config, dense parameters, tables) to w.
func Save(w io.Writer, m *Model) error {
	bw := &binWriter{w: bufio.NewWriterSize(w, 1<<20)}
	bw.str(serializeMagic)
	bw.u32(serializeVersion)

	// Config.
	bw.str(m.Config.Name)
	bw.u64(uint64(m.Config.Seed))
	bw.u32(uint32(m.Config.MeanItems))
	bw.f64(m.Config.ItemsSigma)
	bw.u32(uint32(m.Config.DefaultBatch))
	bw.u32(uint32(len(m.Config.Nets)))
	for _, ns := range m.Config.Nets {
		bw.str(ns.Name)
		bw.u32(uint32(ns.DenseDim))
		bw.u32(uint32(ns.EmbProj))
		bw.u32(uint32(ns.InteractFeatures))
		bw.u32(uint32(len(ns.BottomMLP)))
		for _, h := range ns.BottomMLP {
			bw.u32(uint32(h))
		}
		bw.u32(uint32(len(ns.TopMLP)))
		for _, h := range ns.TopMLP {
			bw.u32(uint32(h))
		}
	}
	bw.u32(uint32(len(m.Config.Tables)))
	for _, ts := range m.Config.Tables {
		bw.u32(uint32(ts.ID))
		bw.str(ts.Name)
		bw.str(ts.Net)
		bw.u32(uint32(ts.Rows))
		bw.u32(uint32(ts.Dim))
		bw.f64(ts.PoolingFactor)
	}

	// Dense parameters.
	bw.u32(uint32(len(m.NetParams)))
	for _, np := range m.NetParams {
		writeFCs := func(fcs []FCParams) {
			bw.u32(uint32(len(fcs)))
			for _, fc := range fcs {
				bw.u32(uint32(fc.W.Rows))
				bw.u32(uint32(fc.W.Cols))
				bw.f32s(fc.W.Data)
				bw.f32s(fc.B)
			}
		}
		writeFCs(np.Bottom)
		writeFCs([]FCParams{np.Proj})
		writeFCs(np.Top)
	}

	// Tables.
	bw.u32(uint32(len(m.Tables)))
	for i, t := range m.Tables {
		switch tt := t.(type) {
		case *embedding.Dense:
			bw.u32(tableKindDense)
			bw.u32(uint32(tt.RowsN))
			bw.u32(uint32(tt.DimN))
			bw.f32s(tt.Data)
		case *embedding.Quantized:
			enc := tt.Encoding()
			bw.u32(tableKindQuant)
			bw.u32(uint32(enc.Rows))
			bw.u32(uint32(enc.Cols))
			bw.u32(uint32(enc.Bits))
			bw.u16s(enc.Scales)
			bw.u16s(enc.Biases)
			bw.bytes(enc.Packed)
		default:
			return fmt.Errorf("model: table %d has unserializable backend %T", i, t)
		}
	}
	if bw.err != nil {
		return bw.err
	}
	return bw.w.Flush()
}

// Load reads a model written by Save, validating structure as it goes.
func Load(r io.Reader) (*Model, error) {
	br := &binReader{r: bufio.NewReaderSize(r, 1<<20)}
	if magic := br.str(); br.err != nil || magic != serializeMagic {
		return nil, fmt.Errorf("%w: bad magic", errBadFormat)
	}
	if v := br.u32(); br.err != nil || v != serializeVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", errBadFormat, v)
	}

	var cfg Config
	cfg.Name = br.str()
	cfg.Seed = int64(br.u64())
	cfg.MeanItems = int(br.u32())
	cfg.ItemsSigma = br.f64()
	cfg.DefaultBatch = int(br.u32())
	nNets := br.length(64)
	for i := 0; i < nNets && br.err == nil; i++ {
		var ns NetSpec
		ns.Name = br.str()
		ns.DenseDim = int(br.u32())
		ns.EmbProj = int(br.u32())
		ns.InteractFeatures = int(br.u32())
		for j, n := 0, br.length(64); j < n && br.err == nil; j++ {
			ns.BottomMLP = append(ns.BottomMLP, int(br.u32()))
		}
		for j, n := 0, br.length(64); j < n && br.err == nil; j++ {
			ns.TopMLP = append(ns.TopMLP, int(br.u32()))
		}
		cfg.Nets = append(cfg.Nets, ns)
	}
	nTables := br.length(1 << 16)
	for i := 0; i < nTables && br.err == nil; i++ {
		var ts TableSpec
		ts.ID = int(br.u32())
		ts.Name = br.str()
		ts.Net = br.str()
		ts.Rows = int(br.u32())
		ts.Dim = int(br.u32())
		ts.PoolingFactor = br.f64()
		if br.err == nil && ts.ID != i {
			return nil, fmt.Errorf("%w: table %d has ID %d", errBadFormat, i, ts.ID)
		}
		cfg.Tables = append(cfg.Tables, ts)
	}

	m := &Model{Config: cfg}
	nParams := br.length(64)
	readFCs := func() []FCParams {
		n := br.length(64)
		var out []FCParams
		for i := 0; i < n && br.err == nil; i++ {
			rows, cols := int(br.u32()), int(br.u32())
			data := br.f32s()
			bias := br.f32s()
			if br.err != nil {
				return nil
			}
			if len(data) != rows*cols || len(bias) != cols {
				br.err = fmt.Errorf("%w: FC shape mismatch %dx%d", errBadFormat, rows, cols)
				return nil
			}
			out = append(out, FCParams{W: tensor.FromSlice(rows, cols, data), B: bias})
		}
		return out
	}
	for i := 0; i < nParams && br.err == nil; i++ {
		var np NetParams
		np.Bottom = readFCs()
		proj := readFCs()
		if br.err == nil && len(proj) != 1 {
			return nil, fmt.Errorf("%w: expected one projection layer", errBadFormat)
		}
		if br.err == nil {
			np.Proj = proj[0]
		}
		np.Top = readFCs()
		m.NetParams = append(m.NetParams, np)
	}

	nBackends := br.length(1 << 16)
	if br.err == nil && nBackends != len(cfg.Tables) {
		return nil, fmt.Errorf("%w: %d table backends for %d specs", errBadFormat, nBackends, len(cfg.Tables))
	}
	for i := 0; i < nBackends && br.err == nil; i++ {
		kind := br.u32()
		switch kind {
		case tableKindDense:
			rows, dim := int(br.u32()), int(br.u32())
			data := br.f32s()
			if br.err != nil {
				break
			}
			if len(data) != rows*dim {
				return nil, fmt.Errorf("%w: table %d data mismatch", errBadFormat, i)
			}
			m.Tables = append(m.Tables, &embedding.Dense{RowsN: rows, DimN: dim, Data: data})
		case tableKindQuant:
			rows, cols, bits := int(br.u32()), int(br.u32()), int(br.u32())
			scales := br.u16s()
			biases := br.u16s()
			packed := br.bytes()
			if br.err != nil {
				break
			}
			qt, err := embedding.QuantizedFromEncoding(rows, cols, bits, scales, biases, packed)
			if err != nil {
				return nil, err
			}
			m.Tables = append(m.Tables, qt)
		default:
			return nil, fmt.Errorf("%w: unknown table kind %d", errBadFormat, kind)
		}
	}
	if br.err != nil {
		return nil, br.err
	}
	return m, nil
}
