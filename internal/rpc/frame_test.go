package rpc

import (
	"bytes"
	"io"
	"net"
	"strings"
	"testing"
	"time"
)

// TestClientCorruptResponseFailsDeterministically regresses the bug
// where a response frame that framed correctly but failed to decode was
// silently skipped, leaving its call hanging until the client was
// closed. A corrupt frame must instead fail every pending call on that
// connection promptly, with a cause, and be counted.
func TestClientCorruptResponseFailsDeterministically(t *testing.T) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	go func() {
		conn, err := lis.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		// Consume the request frame, then answer with a frame whose
		// payload is garbage: valid length prefix, undecodable body.
		hdr := make([]byte, 4)
		if _, err := io.ReadFull(conn, hdr); err != nil {
			return
		}
		n := int(hdr[0])<<24 | int(hdr[1])<<16 | int(hdr[2])<<8 | int(hdr[3])
		if _, err := io.CopyN(io.Discard, conn, int64(n)); err != nil {
			return
		}
		garbage := []byte{0xff, 0xde, 0xad}
		if err := writeFrame(conn, garbage); err != nil {
			return
		}
		// Hold the connection open: the *client* must decide the stream
		// is dead, not a server-side hangup.
		time.Sleep(5 * time.Second)
	}()

	before := CorruptResponses()
	c, err := DialPool(lis.Addr().String(), nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	call := c.Go(&Request{Method: "run", CallID: 1, Body: []byte("x")})
	select {
	case <-call.Done:
	case <-time.After(2 * time.Second):
		t.Fatal("call hung after corrupt response frame; want deterministic failure")
	}
	if call.Err == nil || !strings.Contains(call.Err.Error(), "corrupt response frame") {
		t.Fatalf("call.Err = %v, want corrupt response frame error", call.Err)
	}
	if got := CorruptResponses(); got != before+1 {
		t.Errorf("CorruptResponses() = %d, want %d", got, before+1)
	}
	// The connection is dead; later calls on it must fail fast too.
	call = c.Go(&Request{Method: "run", CallID: 2, Body: []byte("y")})
	select {
	case <-call.Done:
	case <-time.After(2 * time.Second):
		t.Fatal("follow-up call hung on corrupted connection")
	}
	if call.Err == nil {
		t.Error("follow-up call on corrupted connection succeeded")
	}
}

// BenchmarkFrameWrite measures the per-frame cost of the framing layer
// alone. With pooled scratch buffers this is 0 allocs/op steady state
// (it was 1 alloc/op — the header+payload copy — before pooling).
func BenchmarkFrameWrite(b *testing.B) {
	payload := bytes.Repeat([]byte{0xab}, 512)
	b.ReportAllocs()
	b.SetBytes(int64(len(payload) + frameHeader))
	for i := 0; i < b.N; i++ {
		if err := writeFrame(io.Discard, payload); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkClientRoundTrip measures allocations across a full
// client→server echo round trip, the number the request-path pooling
// (encodeRequestInto + writeFrame reuse) actually moves.
func BenchmarkClientRoundTrip(b *testing.B) {
	s, err := NewServer("127.0.0.1:0", HandlerFunc(echoHandler), ServerConfig{})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	c, err := DialPool(s.Addr(), nil, 1)
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	body := bytes.Repeat([]byte{0x42}, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.CallSync(&Request{Method: "run", CallID: uint64(i + 1), Body: body}); err != nil {
			b.Fatal(err)
		}
	}
}
