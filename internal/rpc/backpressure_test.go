package rpc

import (
	"sync"
	"testing"
	"time"

	"repro/internal/trace"
)

func TestServerShedsBeyondMaxInFlight(t *testing.T) {
	release := make(chan struct{})
	slow := HandlerFunc(func(ctx trace.Context, method string, body []byte) ([]byte, error) {
		<-release
		return []byte("ok"), nil
	})
	srv, err := NewServer("127.0.0.1:0", slow, ServerConfig{MaxInFlight: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client, err := Dial(srv.Addr(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	const n = 4
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = client.CallSync(&Request{Method: "m", CallID: uint64(i + 1)})
		}(i)
	}
	// Let the flood land, then release the one admitted handler.
	deadline := time.Now().Add(time.Second)
	for srv.Stats().Overloads < n-1 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	var ok, shed int
	for _, err := range errs {
		switch {
		case err == nil:
			ok++
		case IsOverload(err):
			shed++
		default:
			t.Errorf("unexpected error: %v", err)
		}
	}
	if ok != 1 || shed != n-1 {
		t.Fatalf("ok=%d shed=%d, want 1/%d", ok, shed, n-1)
	}
	st := srv.Stats()
	if st.Overloads != n-1 || st.PeakInFlight != 1 || st.InFlight != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestServerUnboundedByDefault(t *testing.T) {
	block := make(chan struct{})
	slow := HandlerFunc(func(ctx trace.Context, method string, body []byte) ([]byte, error) {
		<-block
		return nil, nil
	})
	srv, err := NewServer("127.0.0.1:0", slow, ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client, err := Dial(srv.Addr(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	const n = 8
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := client.CallSync(&Request{Method: "m", CallID: uint64(i + 1)}); err != nil {
				t.Errorf("call %d: %v", i, err)
			}
		}(i)
	}
	deadline := time.Now().Add(time.Second)
	for srv.Stats().InFlight < n && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := srv.Stats().InFlight; got != n {
		t.Fatalf("in-flight = %d, want %d", got, n)
	}
	close(block)
	wg.Wait()
	if st := srv.Stats(); st.Overloads != 0 || st.PeakInFlight != n {
		t.Errorf("stats = %+v", st)
	}
}

func TestIsOverload(t *testing.T) {
	if !IsOverload(&RemoteError{Msg: OverloadMsgPrefix + " busy"}) {
		t.Error("overload remote error not recognized")
	}
	if IsOverload(&RemoteError{Msg: "shed: budget"}) || IsOverload(ErrClientClosed) {
		t.Error("non-overload errors must not match")
	}
}
