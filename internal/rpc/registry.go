package rpc

import (
	"fmt"
	"sort"
	"sync"
)

// Registry is the in-process stand-in for the paper's "universal service
// discovery protocol": shards register their serving addresses under
// stable names ("sparse1", "sparse2", ...) and the main shard's RPC
// operators resolve names at call-issue time, so replicas can come and go
// without re-serializing the model.
type Registry struct {
	mu    sync.RWMutex
	addrs map[string]string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{addrs: make(map[string]string)}
}

// Register binds a service name to an address, replacing any previous
// binding (a restarted shard re-registers).
func (r *Registry) Register(name, addr string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.addrs[name] = addr
}

// Deregister removes a binding, if present.
func (r *Registry) Deregister(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.addrs, name)
}

// Lookup resolves a service name.
func (r *Registry) Lookup(name string) (string, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	addr, ok := r.addrs[name]
	if !ok {
		return "", fmt.Errorf("rpc: service %q not registered", name)
	}
	return addr, nil
}

// Services lists registered names in sorted order.
func (r *Registry) Services() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.addrs))
	for name := range r.addrs {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
