package rpc

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/trace"
)

// Ablation: raw RPC round-trip cost with and without injected link
// latency — the per-call floor the fig6 overheads rest on (and the
// RPCLatency constant in sharding.DefaultCostModel).
func BenchmarkRoundTrip(b *testing.B) {
	for _, tc := range []struct {
		name string
		prof func() (reqLink, respLink *netsim.Link)
	}{
		{"loopback-only", func() (*netsim.Link, *netsim.Link) { return nil, nil }},
		{"datacenter-links", func() (*netsim.Link, *netsim.Link) {
			p := netsim.DataCenter(1)
			return p.Request, p.Response
		}},
	} {
		b.Run(tc.name, func(b *testing.B) {
			reqLink, respLink := tc.prof()
			srv, err := NewServer("127.0.0.1:0", HandlerFunc(func(ctx trace.Context, m string, body []byte) ([]byte, error) {
				return body, nil
			}), ServerConfig{ResponseLink: respLink, BoilerplateCost: 8 * time.Microsecond})
			if err != nil {
				b.Fatal(err)
			}
			defer srv.Close()
			c, err := Dial(srv.Addr(), reqLink)
			if err != nil {
				b.Fatal(err)
			}
			defer c.Close()
			body := make([]byte, 8192)
			var id atomic.Uint64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := c.CallSync(&Request{Method: "x", CallID: id.Add(1), Body: body}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Ablation: connection-pool width under concurrent fan-out (the queuing
// the pooled client exists to relieve).
func BenchmarkPoolWidthFanOut(b *testing.B) {
	srv, err := NewServer("127.0.0.1:0", HandlerFunc(func(ctx trace.Context, m string, body []byte) ([]byte, error) {
		return body, nil
	}), ServerConfig{})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	body := make([]byte, 16384)
	for _, width := range []int{1, 4} {
		b.Run(fmt.Sprintf("pool-%d", width), func(b *testing.B) {
			c, err := DialPool(srv.Addr(), nil, width)
			if err != nil {
				b.Fatal(err)
			}
			defer c.Close()
			var id atomic.Uint64
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					if _, err := c.CallSync(&Request{Method: "x", CallID: id.Add(1), Body: body}); err != nil {
						b.Fatal(err)
					}
				}
			})
		})
	}
}

// Ablation: codec throughput (request encode/decode round trip).
func BenchmarkRequestCodec(b *testing.B) {
	req := &Request{Method: "sparse.run", TraceID: 1, CallID: 2, Body: make([]byte, 32768)}
	b.SetBytes(int64(len(req.Body)))
	for i := 0; i < b.N; i++ {
		buf, err := EncodeRequest(req)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := DecodeRequest(buf); err != nil {
			b.Fatal(err)
		}
	}
}
