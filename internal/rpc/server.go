package rpc

import (
	"bufio"
	"errors"
	"fmt"
	"log"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/netsim"
	"repro/internal/trace"
)

// Handler processes one decoded request body and returns a response body.
// The handler owns application-level serialization so serde time is
// measured at the layer where it actually occurs.
type Handler interface {
	Handle(ctx trace.Context, method string, body []byte) ([]byte, error)
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(ctx trace.Context, method string, body []byte) ([]byte, error)

// Handle implements Handler.
func (f HandlerFunc) Handle(ctx trace.Context, method string, body []byte) ([]byte, error) {
	return f(ctx, method, body)
}

// ServerConfig tunes a Server.
type ServerConfig struct {
	// Recorder receives LayerRequest/LayerService spans; nil disables
	// server-side tracing.
	Recorder *trace.Recorder
	// ResponseLink injects latency on callee→caller frames.
	ResponseLink *netsim.Link
	// BoilerplateCost is busy-work per request modeling the full Thrift
	// service stack cost each shard pays ("each shard invokes a full
	// Thrift service", Section VI-C1). It burns CPU, not just wall time.
	BoilerplateCost time.Duration
	// ComputeScale stretches BoilerplateCost (and is the hook the slower
	// SC-Small platform uses); 0 means 1.0.
	ComputeScale float64
	// MaxInFlight bounds concurrently dispatched requests; excess
	// requests are answered immediately with an overload error rather
	// than queued — the transport-level backpressure signal an SLA-aware
	// caller books as a fallback. 0 means unbounded.
	MaxInFlight int
}

// OverloadMsgPrefix starts every overload rejection's wire message;
// remote errors travel as strings, so the prefix is the contract
// IsOverload (and serve's fallback accounting) keys on.
const OverloadMsgPrefix = "overloaded:"

// ShedMsgPrefix starts every application-level load-shed rejection's
// wire message (the serving frontend's SLA drops). It lives here, next
// to OverloadMsgPrefix, because both are wire contracts of this RPC
// error channel: frontend builds its errors from it and serve's
// fallback accounting keys on it — one definition, no drift.
const ShedMsgPrefix = "shed:"

// IsShed reports whether err is an application-level load-shed
// rejection relayed by a remote handler.
func IsShed(err error) bool {
	var re *RemoteError
	return errors.As(err, &re) && strings.HasPrefix(re.Msg, ShedMsgPrefix)
}

// IsOverload reports whether err is a server-side overload rejection.
func IsOverload(err error) bool {
	var re *RemoteError
	return errors.As(err, &re) && strings.HasPrefix(re.Msg, OverloadMsgPrefix)
}

// ServerStats exposes the server's load gauges.
type ServerStats struct {
	// InFlight is the number of requests currently dispatched.
	InFlight int64
	// PeakInFlight is the high-water mark since start.
	PeakInFlight int64
	// Overloads counts requests rejected by the MaxInFlight bound.
	Overloads int64
}

// Server accepts framed RPC connections and dispatches requests to a
// Handler, one goroutine per in-flight request (requests on a connection
// are pipelined).
type Server struct {
	cfg     ServerConfig
	handler Handler
	lis     net.Listener

	inFlight  atomic.Int64
	peak      atomic.Int64
	overloads atomic.Int64

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// NewServer starts a server listening on addr (e.g. "127.0.0.1:0").
func NewServer(addr string, h Handler, cfg ServerConfig) (*Server, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("rpc: listen %s: %w", addr, err)
	}
	s := &Server{cfg: cfg, handler: h, lis: lis, conns: make(map[net.Conn]struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the server's bound address.
func (s *Server) Addr() string { return s.lis.Addr().String() }

// Stats snapshots the server's load gauges.
func (s *Server) Stats() ServerStats {
	return ServerStats{
		InFlight:     s.inFlight.Load(),
		PeakInFlight: s.peak.Load(),
		Overloads:    s.overloads.Load(),
	}
}

// Close stops accepting, closes all connections, and waits for in-flight
// handlers to drain.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	err := s.lis.Close()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.lis.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	var writeMu sync.Mutex
	br := bufio.NewReaderSize(conn, 64<<10)
	for {
		payload, err := readFrame(br)
		if err != nil {
			return // connection closed or corrupt
		}
		s.wg.Add(1)
		go func(payload []byte) {
			defer s.wg.Done()
			s.dispatch(conn, &writeMu, payload)
		}(payload)
	}
}

// dispatch decodes, handles, and answers one request, recording the
// paper's service-layer spans around the application handler.
func (s *Server) dispatch(conn net.Conn, writeMu *sync.Mutex, payload []byte) {
	rec := s.cfg.Recorder
	var reqStart time.Time
	if rec != nil {
		reqStart = rec.Now()
	}
	svcStart := time.Now()

	req, err := DecodeRequest(payload)
	if err != nil {
		log.Printf("rpc: dropping malformed request: %v", err)
		return
	}
	ctx := trace.Context{TraceID: req.TraceID, CallID: req.CallID}

	// Admission at the transport: beyond MaxInFlight the server sheds
	// instead of queueing, so overload surfaces to the caller while its
	// SLA budget can still buy a fallback elsewhere.
	n := s.inFlight.Add(1)
	if max := int64(s.cfg.MaxInFlight); max > 0 && n > max {
		// Release the slot before writing the rejection: a rejected
		// request must not occupy a phantom slot while its answer is
		// encoded and written, or a rejection storm sheds requests that
		// are actually within the bound.
		s.inFlight.Add(-1)
		s.overloads.Add(1)
		s.answer(conn, writeMu, &Response{
			CallID: req.CallID,
			Err:    fmt.Sprintf("%s %d requests in flight (max %d)", OverloadMsgPrefix, n, max),
		})
		return
	}
	defer s.inFlight.Add(-1)
	for peak := s.peak.Load(); n > peak && !s.peak.CompareAndSwap(peak, n); peak = s.peak.Load() {
	}

	// Service boilerplate: context setup plus the modeled Thrift stack
	// cost. Burned as real CPU so compute accounting sees it.
	burn(s.scaledBoilerplate())
	preDur := time.Since(svcStart)

	body, herr := s.handler.Handle(ctx, req.Method, req.Body)

	postStart := time.Now()
	resp := &Response{CallID: req.CallID, Body: body}
	if herr != nil {
		resp.Err = herr.Error()
		resp.Body = nil
	}
	out, err := EncodeResponse(resp)
	if err != nil {
		log.Printf("rpc: encode response: %v", err)
		return
	}
	postDur := time.Since(postStart)

	if rec != nil {
		rec.Record(trace.Span{
			TraceID: req.TraceID, CallID: req.CallID,
			Layer: trace.LayerService, Name: req.Method,
			Start: reqStart, Dur: preDur + postDur,
		})
		// The shard-side E2E span ends when the response is handed to the
		// network; transit time back to the caller is, by construction,
		// part of the caller-observed outstanding time and falls out as
		// network latency in the analyzer's subtraction.
		rec.Record(trace.Span{
			TraceID: req.TraceID, CallID: req.CallID,
			Layer: trace.LayerRequest, Name: req.Method,
			Start: reqStart, Dur: rec.Now().Sub(reqStart),
		})
	}

	s.writeOut(conn, writeMu, out)
}

// answer encodes and writes one response frame directly, bypassing the
// handler path — the overload rejection's exit. The response link's
// delay still applies: a shed answer rides the same wire home.
func (s *Server) answer(conn net.Conn, writeMu *sync.Mutex, resp *Response) {
	out, err := EncodeResponse(resp)
	if err != nil {
		log.Printf("rpc: encode response: %v", err)
		return
	}
	s.writeOut(conn, writeMu, out)
}

// writeOut writes one encoded response frame, applying the response
// link's delay when configured — the single exit path for normal and
// shed answers alike.
func (s *Server) writeOut(conn net.Conn, writeMu *sync.Mutex, out []byte) {
	write := func() {
		writeMu.Lock()
		err := writeFrame(conn, out)
		writeMu.Unlock()
		if err != nil {
			log.Printf("rpc: write response: %v", err)
		}
	}
	if s.cfg.ResponseLink == nil {
		write()
		return
	}
	netsim.AfterFunc(s.cfg.ResponseLink.Delay(len(out)), write)
}

func (s *Server) scaledBoilerplate() time.Duration {
	d := s.cfg.BoilerplateCost
	if s.cfg.ComputeScale > 0 {
		d = time.Duration(float64(d) * s.cfg.ComputeScale)
	}
	return d
}

// burn spins for roughly d, consuming CPU — unlike time.Sleep, this models
// boilerplate that costs compute, which is the paper's point about RPC
// service overhead being a resource cost and not just latency.
func burn(d time.Duration) {
	if d <= 0 {
		return
	}
	end := time.Now().Add(d)
	for time.Now().Before(end) {
	}
}

// ErrServerClosed reports use of a closed server (exported for tests).
var ErrServerClosed = errors.New("rpc: server closed")
