package rpc

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"

	"repro/internal/netsim"
)

// Call is one in-flight asynchronous RPC. Done is closed when the reply
// (or a transport failure) arrives.
type Call struct {
	Req  *Request
	Resp *Response
	Err  error
	Done chan struct{}
}

func (c *Call) finish(resp *Response, err error) {
	c.Resp, c.Err = resp, err
	close(c.Done)
}

// RemoteError is a failure returned by the remote handler (as opposed to a
// transport failure).
type RemoteError struct{ Msg string }

// Error implements error.
func (e *RemoteError) Error() string { return "rpc: remote error: " + e.Msg }

// ErrClientClosed reports use of a closed client.
var ErrClientClosed = errors.New("rpc: client closed")

// corruptResponses counts response frames that framed correctly but
// failed to decode, each of which tears down its connection. Process
// wide because corruption is a wire-integrity event, not a per-client
// property.
var corruptResponses atomic.Uint64

// CorruptResponses reports how many corrupt response frames clients in
// this process have seen. Each one killed a pooled connection.
func CorruptResponses() uint64 { return corruptResponses.Load() }

// Caller issues asynchronous RPCs. *Client is the plain implementation;
// replication.Hedged layers tail-latency hedging over a set of replica
// Callers without the call sites knowing.
type Caller interface {
	// Go issues req asynchronously; the returned Call's Done channel
	// closes on completion.
	Go(req *Request) *Call
	// Close releases the caller's connections.
	Close() error
}

// DefaultPoolSize is the number of TCP connections a client multiplexes
// over. One connection serializes frame writes and response reads; a
// small pool keeps high fan-out configurations (8 shards × several
// batches) from queuing on a single socket.
const DefaultPoolSize = 4

// Client is a pooled, multiplexing RPC client. Concurrent Go/Call
// invocations are spread round-robin across the pool's connections and
// matched to responses by call id, which the caller supplies (call ids
// also key distributed-trace spans, so the caller owns their allocation
// and must keep them unique among its in-flight calls).
type Client struct {
	subs []*clientConn
	next atomic.Uint64

	mu     sync.Mutex
	closed bool
}

// clientConn is one pooled connection.
type clientConn struct {
	conn        net.Conn
	requestLink *netsim.Link

	writeMu sync.Mutex

	mu      sync.Mutex
	pending map[uint64]*Call
	closed  bool
}

// Dial connects a pooled client to an RPC server. requestLink, when
// non-nil, injects latency on each outgoing frame.
func Dial(addr string, requestLink *netsim.Link) (*Client, error) {
	return DialPool(addr, requestLink, DefaultPoolSize)
}

// DialPool connects with an explicit pool size (≥1).
func DialPool(addr string, requestLink *netsim.Link, size int) (*Client, error) {
	if size < 1 {
		size = 1
	}
	c := &Client{}
	for i := 0; i < size; i++ {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("rpc: dial %s: %w", addr, err)
		}
		sub := &clientConn{conn: conn, requestLink: requestLink, pending: make(map[uint64]*Call)}
		go sub.readLoop()
		c.subs = append(c.subs, sub)
	}
	return c, nil
}

// Close tears down all connections and fails all pending calls.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	var firstErr error
	for _, sub := range c.subs {
		if err := sub.close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Go issues req asynchronously on the next pooled connection. The
// returned Call's Done channel closes on completion.
func (c *Client) Go(req *Request) *Call {
	c.mu.Lock()
	closed := c.closed
	c.mu.Unlock()
	if closed || len(c.subs) == 0 {
		call := &Call{Req: req, Done: make(chan struct{})}
		call.finish(nil, ErrClientClosed)
		return call
	}
	sub := c.subs[c.next.Add(1)%uint64(len(c.subs))]
	return sub.issue(req)
}

// CallSync issues req and blocks for the response.
func (c *Client) CallSync(req *Request) (*Response, error) {
	call := c.Go(req)
	<-call.Done
	return call.Resp, call.Err
}

// SyncCall issues req on any Caller and blocks for the response — the
// synchronous convenience control-plane callers (migration, load
// collection) use over plain and hedged callers alike.
func SyncCall(c Caller, req *Request) (*Response, error) {
	call := c.Go(req)
	<-call.Done
	return call.Resp, call.Err
}

func (s *clientConn) close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	err := s.conn.Close()
	s.failPending(ErrClientClosed)
	return err
}

func (s *clientConn) failPending(err error) {
	s.mu.Lock()
	calls := s.pending
	s.pending = make(map[uint64]*Call)
	s.mu.Unlock()
	for _, call := range calls {
		call.finish(nil, err)
	}
}

func (s *clientConn) readLoop() {
	br := bufio.NewReaderSize(s.conn, 64<<10)
	for {
		payload, err := readFrame(br)
		if err != nil {
			// Mark closed before failing pending calls so a racing issue()
			// cannot register a call that nothing will ever complete.
			s.mu.Lock()
			s.closed = true
			s.mu.Unlock()
			s.failPending(fmt.Errorf("rpc: connection lost: %w", err))
			return
		}
		resp, err := DecodeResponse(payload)
		if err != nil {
			// A frame that framed correctly but does not decode means the
			// stream is corrupt; its call id is unrecoverable, so skipping
			// would leave that call hanging until Close. Tear the
			// connection down instead: every pending call fails now, with
			// a cause, and the next dial starts from a clean stream.
			corruptResponses.Add(1)
			s.mu.Lock()
			s.closed = true
			s.mu.Unlock()
			s.conn.Close()
			s.failPending(fmt.Errorf("rpc: corrupt response frame: %w", err))
			return
		}
		s.mu.Lock()
		call, ok := s.pending[resp.CallID]
		delete(s.pending, resp.CallID)
		s.mu.Unlock()
		if !ok {
			continue // stale or duplicate response
		}
		if resp.Err != "" {
			call.finish(resp, &RemoteError{Msg: resp.Err})
		} else {
			call.finish(resp, nil)
		}
	}
}

func (s *clientConn) issue(req *Request) *Call {
	call := &Call{Req: req, Done: make(chan struct{})}
	size, err := requestWireSize(req)
	if err != nil {
		call.finish(nil, err)
		return call
	}
	// Encode into a pooled buffer; it is returned once the frame write
	// runs (write() executes exactly once, inline or on the timer
	// wheel) or on the paths below where the write never happens.
	bp := getFrameBuf(size)
	payload := encodeRequestInto(*bp, req)
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		putFrameBuf(bp)
		call.finish(nil, ErrClientClosed)
		return call
	}
	if _, dup := s.pending[req.CallID]; dup {
		s.mu.Unlock()
		putFrameBuf(bp)
		call.finish(nil, fmt.Errorf("rpc: duplicate call id %d", req.CallID))
		return call
	}
	s.pending[req.CallID] = call
	s.mu.Unlock()

	// Write the frame after the request link's delay. Without a link the
	// write happens inline (its cost is the op's real issue cost); with
	// one, the timer wheel performs the delayed write, modeling the NIC
	// transmit without parking an extra goroutine per message.
	write := func() {
		s.writeMu.Lock()
		err := writeFrame(s.conn, payload)
		s.writeMu.Unlock()
		putFrameBuf(bp)
		if err != nil {
			s.mu.Lock()
			_, stillPending := s.pending[req.CallID]
			delete(s.pending, req.CallID)
			s.mu.Unlock()
			if stillPending {
				call.finish(nil, fmt.Errorf("rpc: write: %w", err))
			}
		}
	}
	if s.requestLink == nil {
		write()
	} else {
		netsim.AfterFunc(s.requestLink.Delay(len(payload)), write)
	}
	return call
}
