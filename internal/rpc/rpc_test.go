package rpc

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/netsim"
	"repro/internal/trace"
)

func TestRequestCodecRoundTrip(t *testing.T) {
	req := &Request{Method: "sparse.run", TraceID: 42, CallID: 7, Body: []byte("payload")}
	buf, err := EncodeRequest(req)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeRequest(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Method != req.Method || got.TraceID != req.TraceID || got.CallID != req.CallID || !bytes.Equal(got.Body, req.Body) {
		t.Errorf("round trip mismatch: %+v vs %+v", got, req)
	}
}

func TestRequestCodecRoundTripProperty(t *testing.T) {
	f := func(method string, traceID, callID uint64, body []byte) bool {
		if len(method) > 0xffff {
			method = method[:0xffff]
		}
		req := &Request{Method: method, TraceID: traceID, CallID: callID, Body: body}
		buf, err := EncodeRequest(req)
		if err != nil {
			return false
		}
		got, err := DecodeRequest(buf)
		if err != nil {
			return false
		}
		return got.Method == method && got.TraceID == traceID && got.CallID == callID && bytes.Equal(got.Body, body)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestResponseCodecRoundTripProperty(t *testing.T) {
	f := func(callID uint64, errMsg string, body []byte) bool {
		if len(errMsg) > 0xffff {
			errMsg = errMsg[:0xffff]
		}
		resp := &Response{CallID: callID, Err: errMsg, Body: body}
		buf, err := EncodeResponse(resp)
		if err != nil {
			return false
		}
		got, err := DecodeResponse(buf)
		if err != nil {
			return false
		}
		return got.CallID == callID && got.Err == errMsg && bytes.Equal(got.Body, body)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := DecodeRequest([]byte{1, 2, 3}); err == nil {
		t.Error("short request should fail")
	}
	if _, err := DecodeResponse([]byte{0}); err == nil {
		t.Error("short response should fail")
	}
	// Valid header but truncated body length.
	req := &Request{Method: "m", Body: []byte("xxxx")}
	buf, _ := EncodeRequest(req)
	if _, err := DecodeRequest(buf[:len(buf)-1]); err == nil {
		t.Error("truncated request should fail")
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := writeFrame(&buf, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	got, err := readFrame(&buf)
	if err != nil || string(got) != "hello" {
		t.Fatalf("frame round trip: %q, %v", got, err)
	}
}

func TestFrameTooLarge(t *testing.T) {
	var buf bytes.Buffer
	// Forged oversized length prefix.
	buf.Write([]byte{0xff, 0xff, 0xff, 0xff})
	if _, err := readFrame(&buf); err != ErrFrameTooLarge {
		t.Errorf("err = %v, want ErrFrameTooLarge", err)
	}
}

// echoHandler returns the body, uppercased method prepended.
func echoHandler(ctx trace.Context, method string, body []byte) ([]byte, error) {
	if method == "fail" {
		return nil, fmt.Errorf("handler refused trace=%d", ctx.TraceID)
	}
	return append([]byte(method+":"), body...), nil
}

func startTestServer(t *testing.T, cfg ServerConfig) *Server {
	t.Helper()
	s, err := NewServer("127.0.0.1:0", HandlerFunc(echoHandler), cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestClientServerRoundTrip(t *testing.T) {
	s := startTestServer(t, ServerConfig{})
	c, err := Dial(s.Addr(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	resp, err := c.CallSync(&Request{Method: "run", TraceID: 1, CallID: 1, Body: []byte("abc")})
	if err != nil {
		t.Fatal(err)
	}
	if string(resp.Body) != "run:abc" {
		t.Errorf("resp = %q", resp.Body)
	}
}

func TestClientRemoteError(t *testing.T) {
	s := startTestServer(t, ServerConfig{})
	c, err := Dial(s.Addr(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, err = c.CallSync(&Request{Method: "fail", TraceID: 9, CallID: 1})
	var remote *RemoteError
	if err == nil || !strings.Contains(err.Error(), "handler refused trace=9") {
		t.Fatalf("err = %v", err)
	}
	if !errorsAs(err, &remote) {
		t.Errorf("error should be RemoteError, got %T", err)
	}
}

func errorsAs(err error, target **RemoteError) bool {
	re, ok := err.(*RemoteError)
	if ok {
		*target = re
	}
	return ok
}

func TestClientConcurrentCalls(t *testing.T) {
	s := startTestServer(t, ServerConfig{})
	c, err := Dial(s.Addr(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	const n = 50
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := c.CallSync(&Request{
				Method: "run", TraceID: uint64(i), CallID: uint64(i + 1),
				Body: []byte(fmt.Sprintf("m%d", i)),
			})
			if err != nil {
				errs[i] = err
				return
			}
			if want := fmt.Sprintf("run:m%d", i); string(resp.Body) != want {
				errs[i] = fmt.Errorf("got %q want %q", resp.Body, want)
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("call %d: %v", i, err)
		}
	}
}

func TestClientDuplicateCallID(t *testing.T) {
	s := startTestServer(t, ServerConfig{BoilerplateCost: 5 * time.Millisecond})
	// Pool size 1 so both calls share a connection and the duplicate is
	// detectable.
	c, err := DialPool(s.Addr(), nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c1 := c.Go(&Request{Method: "run", CallID: 1})
	c2 := c.Go(&Request{Method: "run", CallID: 1})
	<-c2.Done
	if c2.Err == nil || !strings.Contains(c2.Err.Error(), "duplicate") {
		t.Errorf("duplicate call id should fail fast: %v", c2.Err)
	}
	<-c1.Done
	if c1.Err != nil {
		t.Errorf("original call should succeed: %v", c1.Err)
	}
}

func TestClientCloseFailsPending(t *testing.T) {
	s := startTestServer(t, ServerConfig{BoilerplateCost: 50 * time.Millisecond})
	c, err := Dial(s.Addr(), nil)
	if err != nil {
		t.Fatal(err)
	}
	call := c.Go(&Request{Method: "run", CallID: 1})
	c.Close()
	<-call.Done
	if call.Err == nil {
		t.Error("pending call should fail on Close")
	}
	// Calls after close fail immediately.
	after := c.Go(&Request{Method: "run", CallID: 2})
	<-after.Done
	if after.Err != ErrClientClosed {
		t.Errorf("post-close call err = %v", after.Err)
	}
}

func TestServerShutdownFailsInflight(t *testing.T) {
	s := startTestServer(t, ServerConfig{BoilerplateCost: 20 * time.Millisecond})
	c, err := Dial(s.Addr(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	call := c.Go(&Request{Method: "run", CallID: 1})
	time.Sleep(2 * time.Millisecond) // let the request reach the server
	s.Close()
	<-call.Done
	// Either the response raced the close and succeeded, or the
	// connection drop surfaced an error; both are acceptable — what must
	// not happen is a hang (covered by reaching this line).
}

func TestServerRecordsSpans(t *testing.T) {
	rec := trace.NewRecorder("sparse1", 128)
	s := startTestServer(t, ServerConfig{Recorder: rec})
	c, err := Dial(s.Addr(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.CallSync(&Request{Method: "run", TraceID: 3, CallID: 21, Body: []byte("x")}); err != nil {
		t.Fatal(err)
	}
	var haveReq, haveSvc bool
	for _, sp := range rec.Spans() {
		if sp.TraceID != 3 || sp.CallID != 21 {
			t.Errorf("span has wrong trace context: %+v", sp)
		}
		switch sp.Layer {
		case trace.LayerRequest:
			haveReq = true
		case trace.LayerService:
			haveSvc = true
		}
	}
	if !haveReq || !haveSvc {
		t.Errorf("missing spans: req=%v svc=%v (%d spans)", haveReq, haveSvc, rec.Len())
	}
}

func TestNetsimLatencyInjection(t *testing.T) {
	s := startTestServer(t, ServerConfig{})
	link := netsim.NewLink(3*time.Millisecond, 0, 0, 1)
	c, err := Dial(s.Addr(), link)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	start := time.Now()
	if _, err := c.CallSync(&Request{Method: "run", CallID: 1}); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 3*time.Millisecond {
		t.Errorf("injected latency missing: call took %v", elapsed)
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	if _, err := r.Lookup("a"); err == nil {
		t.Error("lookup of missing service should fail")
	}
	r.Register("b", "addr2")
	r.Register("a", "addr1")
	addr, err := r.Lookup("a")
	if err != nil || addr != "addr1" {
		t.Errorf("Lookup = %q, %v", addr, err)
	}
	if got := r.Services(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Errorf("Services = %v", got)
	}
	r.Register("a", "addr3") // re-register replaces
	addr, _ = r.Lookup("a")
	if addr != "addr3" {
		t.Errorf("re-register should replace: %q", addr)
	}
	r.Deregister("a")
	if _, err := r.Lookup("a"); err == nil {
		t.Error("deregistered service should be gone")
	}
}

func TestNetsimLinkDeterministic(t *testing.T) {
	l1 := netsim.NewLink(time.Millisecond, time.Millisecond, 1e9, 7)
	l2 := netsim.NewLink(time.Millisecond, time.Millisecond, 1e9, 7)
	for i := 0; i < 20; i++ {
		if d1, d2 := l1.Delay(100), l2.Delay(100); d1 != d2 {
			t.Fatalf("same-seed links diverge at %d: %v vs %v", i, d1, d2)
		}
	}
}

func TestNetsimNilLink(t *testing.T) {
	var l *netsim.Link
	if l.Delay(100) != 0 {
		t.Error("nil link should have zero delay")
	}
	l.Apply(100) // must not panic
}

func TestNetsimBandwidthTerm(t *testing.T) {
	l := netsim.NewLink(0, 0, 1000, 1) // 1000 B/s
	if d := l.Delay(500); d != 500*time.Millisecond {
		t.Errorf("Delay(500B @ 1kB/s) = %v, want 500ms", d)
	}
}

func TestNetsimProfiles(t *testing.T) {
	dc := netsim.DataCenter(1)
	slow := netsim.Slow(1)
	if dc.Request == nil || dc.Response == nil {
		t.Fatal("DataCenter profile incomplete")
	}
	if slow.Request.Base <= dc.Request.Base {
		t.Error("Slow profile should have higher base latency")
	}
}
