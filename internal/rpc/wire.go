// Package rpc is the Thrift-like remote procedure call framework the
// distributed inference runtime is built on: a length-framed binary
// protocol over TCP, a multiplexing client with synchronous and
// asynchronous calls, a concurrent server, and an in-process service
// registry standing in for the paper's "universal service discovery
// protocol" (Section III-C).
//
// Trace metadata (trace id, call id) rides in every request header, the
// analogue of propagating Thrift's RequestContext for distributed tracing
// (Section IV-A).
package rpc

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"
)

// Frame and message size limits. Requests carry embedding indices and
// responses carry pooled vectors; both are bounded in practice, and the
// cap turns a corrupted length prefix into an error instead of an OOM.
const (
	// MaxFrameSize bounds one framed message.
	MaxFrameSize = 64 << 20
	frameHeader  = 4
)

// Message type tags.
const (
	msgRequest  byte = 0
	msgResponse byte = 1
)

// Request is one RPC invocation: the method selects the handler routine,
// the trace/call ids propagate tracing context, and Body is an opaque
// payload serialized by the application layer (so serde cost is measured
// where it occurs).
type Request struct {
	Method  string
	TraceID uint64
	CallID  uint64
	Body    []byte
}

// Response answers one Request, matched by CallID. A non-empty Err carries
// a remote failure.
type Response struct {
	CallID uint64
	Err    string
	Body   []byte
}

// ErrFrameTooLarge reports a frame exceeding MaxFrameSize.
var ErrFrameTooLarge = errors.New("rpc: frame exceeds maximum size")

// frameBufPool recycles the header+payload scratch buffers writeFrame
// assembles. At serving rates every request and response frame used to
// allocate one; the pool drops that to zero steady-state allocations
// (see BenchmarkFrameRoundTrip).
var frameBufPool = sync.Pool{New: func() any { return new([]byte) }}

// getFrameBuf returns a pooled buffer of length n. The capacity grows
// monotonically per pooled entry, so steady-state traffic with bounded
// frame sizes stops allocating entirely.
func getFrameBuf(n int) *[]byte {
	bp := frameBufPool.Get().(*[]byte)
	if cap(*bp) < n {
		*bp = make([]byte, n)
	}
	*bp = (*bp)[:n]
	return bp
}

func putFrameBuf(bp *[]byte) { frameBufPool.Put(bp) }

// writeFrame writes a 4-byte big-endian length prefix followed by
// payload as a single Write: syscalls dominate small-message cost on
// sandboxed kernels, so the header is never written separately. The
// scratch buffer is pooled; net.Conn.Write has fully consumed it by the
// time it returns, so returning it immediately is safe.
func writeFrame(w io.Writer, payload []byte) error {
	if len(payload) > MaxFrameSize {
		return ErrFrameTooLarge
	}
	bp := getFrameBuf(frameHeader + len(payload))
	buf := *bp
	binary.BigEndian.PutUint32(buf, uint32(len(payload)))
	copy(buf[frameHeader:], payload)
	_, err := w.Write(buf)
	putFrameBuf(bp)
	return err
}

// readFrame reads one length-prefixed payload from a buffered reader.
func readFrame(r io.Reader) ([]byte, error) {
	var hdr [frameHeader]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrameSize {
		return nil, ErrFrameTooLarge
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	return payload, nil
}

// EncodeRequest serializes a request into a frame payload.
func EncodeRequest(req *Request) ([]byte, error) {
	n, err := requestWireSize(req)
	if err != nil {
		return nil, err
	}
	return encodeRequestInto(make([]byte, n), req), nil
}

// requestWireSize returns the encoded size of req, validating bounds.
func requestWireSize(req *Request) (int, error) {
	if len(req.Method) > 0xffff {
		return 0, fmt.Errorf("rpc: method name too long (%d bytes)", len(req.Method))
	}
	return 1 + 8 + 8 + 2 + len(req.Method) + 4 + len(req.Body), nil
}

// encodeRequestInto serializes req into buf, which must be exactly
// requestWireSize bytes — the pooled-buffer path the client's issue()
// uses to avoid a per-call allocation.
func encodeRequestInto(buf []byte, req *Request) []byte {
	buf[0] = msgRequest
	binary.LittleEndian.PutUint64(buf[1:], req.TraceID)
	binary.LittleEndian.PutUint64(buf[9:], req.CallID)
	binary.LittleEndian.PutUint16(buf[17:], uint16(len(req.Method)))
	off := 19 + copy(buf[19:], req.Method)
	binary.LittleEndian.PutUint32(buf[off:], uint32(len(req.Body)))
	copy(buf[off+4:], req.Body)
	return buf
}

// DecodeRequest parses a frame payload into a Request.
func DecodeRequest(buf []byte) (*Request, error) {
	if len(buf) < 23 || buf[0] != msgRequest {
		return nil, fmt.Errorf("rpc: malformed request frame (%d bytes)", len(buf))
	}
	req := &Request{
		TraceID: binary.LittleEndian.Uint64(buf[1:]),
		CallID:  binary.LittleEndian.Uint64(buf[9:]),
	}
	mlen := int(binary.LittleEndian.Uint16(buf[17:]))
	if len(buf) < 19+mlen+4 {
		return nil, errors.New("rpc: truncated request method")
	}
	req.Method = string(buf[19 : 19+mlen])
	off := 19 + mlen
	blen := int(binary.LittleEndian.Uint32(buf[off:]))
	if len(buf) != off+4+blen {
		return nil, errors.New("rpc: truncated request body")
	}
	req.Body = buf[off+4 : off+4+blen]
	return req, nil
}

// EncodeResponse serializes a response into a frame payload.
func EncodeResponse(resp *Response) ([]byte, error) {
	if len(resp.Err) > 0xffff {
		return nil, fmt.Errorf("rpc: error message too long (%d bytes)", len(resp.Err))
	}
	n := 1 + 8 + 2 + len(resp.Err) + 4 + len(resp.Body)
	buf := make([]byte, n)
	buf[0] = msgResponse
	binary.LittleEndian.PutUint64(buf[1:], resp.CallID)
	binary.LittleEndian.PutUint16(buf[9:], uint16(len(resp.Err)))
	off := 11 + copy(buf[11:], resp.Err)
	binary.LittleEndian.PutUint32(buf[off:], uint32(len(resp.Body)))
	copy(buf[off+4:], resp.Body)
	return buf, nil
}

// DecodeResponse parses a frame payload into a Response.
func DecodeResponse(buf []byte) (*Response, error) {
	if len(buf) < 15 || buf[0] != msgResponse {
		return nil, fmt.Errorf("rpc: malformed response frame (%d bytes)", len(buf))
	}
	resp := &Response{CallID: binary.LittleEndian.Uint64(buf[1:])}
	elen := int(binary.LittleEndian.Uint16(buf[9:]))
	if len(buf) < 11+elen+4 {
		return nil, errors.New("rpc: truncated response error")
	}
	resp.Err = string(buf[11 : 11+elen])
	off := 11 + elen
	blen := int(binary.LittleEndian.Uint32(buf[off:]))
	if len(buf) != off+4+blen {
		return nil, errors.New("rpc: truncated response body")
	}
	resp.Body = buf[off+4 : off+4+blen]
	return resp, nil
}
