package nn

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

func TestBlobScheduleReusesDeadLanes(t *testing.T) {
	// a dies at op 1, b is defined at op 2 with the same width: one lane.
	s, err := NewBlobSchedule([]BlobSpec{
		{Name: "a", Cols: 8, Def: 0, LastUse: 1},
		{Name: "b", Cols: 8, Def: 2, LastUse: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.TotalCols() != 8 {
		t.Errorf("TotalCols = %d, want 8 (b should reuse a's lane)", s.TotalCols())
	}
}

func TestBlobScheduleKeepsLiveBlobsApart(t *testing.T) {
	// b is defined at the op that last reads a: endpoint overlap must NOT
	// share a lane (the producing op streams from a into b).
	s, err := NewBlobSchedule([]BlobSpec{
		{Name: "a", Cols: 8, Def: 0, LastUse: 2},
		{Name: "b", Cols: 8, Def: 2, LastUse: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.TotalCols() != 16 {
		t.Errorf("TotalCols = %d, want 16 (endpoint-overlapping blobs must not share)", s.TotalCols())
	}
}

func TestBlobScheduleNoLiveOverlapProperty(t *testing.T) {
	// Random op chains: at every op index, the storage ranges of all live
	// blobs must be disjoint.
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 200; trial++ {
		var specs []BlobSpec
		nOps := 2 + rng.Intn(12)
		for i := 0; i < 4+rng.Intn(8); i++ {
			def := rng.Intn(nOps) - 1 // allow pre-net definitions
			specs = append(specs, BlobSpec{
				Name:    string(rune('a'+i%26)) + string(rune('0'+i/26)),
				Cols:    1 + rng.Intn(32),
				Def:     def,
				LastUse: def + rng.Intn(nOps-def),
			})
		}
		s, err := NewBlobSchedule(specs)
		if err != nil {
			t.Fatal(err)
		}
		for op := -1; op <= nOps; op++ {
			type rangeOf struct {
				name   string
				lo, hi int
			}
			var live []rangeOf
			for _, sp := range specs {
				if sp.Def <= op && op <= sp.LastUse {
					slot := s.slots[sp.Name]
					live = append(live, rangeOf{sp.Name, slot.off, slot.off + slot.cols})
				}
			}
			for i := 0; i < len(live); i++ {
				for j := i + 1; j < len(live); j++ {
					a, b := live[i], live[j]
					if a.lo < b.hi && b.lo < a.hi {
						t.Fatalf("trial %d op %d: live blobs %s [%d,%d) and %s [%d,%d) overlap",
							trial, op, a.name, a.lo, a.hi, b.name, b.lo, b.hi)
					}
				}
			}
		}
	}
}

func TestBlobScheduleRejectsBadSpecs(t *testing.T) {
	if _, err := NewBlobSchedule([]BlobSpec{{Name: "a", Cols: 0, Def: 0, LastUse: 1}}); err == nil {
		t.Error("zero width must be rejected")
	}
	if _, err := NewBlobSchedule([]BlobSpec{{Name: "a", Cols: 4, Def: 3, LastUse: 1}}); err == nil {
		t.Error("negative lifetime must be rejected")
	}
	if _, err := NewBlobSchedule([]BlobSpec{
		{Name: "a", Cols: 4, Def: 0, LastUse: 1},
		{Name: "a", Cols: 4, Def: 2, LastUse: 3},
	}); err == nil {
		t.Error("duplicate name must be rejected")
	}
}

func TestArenaDrawAndFallback(t *testing.T) {
	s, err := NewBlobSchedule([]BlobSpec{{Name: "x", Cols: 4, Def: 0, LastUse: 1}})
	if err != nil {
		t.Fatal(err)
	}
	pool := NewArenaPool(s)
	a := pool.Get(3)
	m := a.Blob("x", 3, 4)
	if m == nil || m.Rows != 3 || m.Cols != 4 {
		t.Fatalf("scheduled draw failed: %v", m)
	}
	if a.Blob("x", 2, 4) != nil {
		t.Error("row mismatch must miss")
	}
	if a.Blob("x", 3, 5) != nil {
		t.Error("col mismatch must miss")
	}
	if a.Blob("y", 3, 4) != nil {
		t.Error("unscheduled name must miss")
	}
	ws := NewWorkspace()
	ws.SetArena(a)
	if got := ws.AllocBlob("y", 2, 2); got == nil || got.Rows != 2 {
		t.Error("AllocBlob must fall back to a fresh matrix")
	}
	pool.Put(a)
}

func TestArenaPoolReusesSlab(t *testing.T) {
	s, err := NewBlobSchedule([]BlobSpec{{Name: "x", Cols: 4, Def: 0, LastUse: 1}})
	if err != nil {
		t.Fatal(err)
	}
	pool := NewArenaPool(s)
	a := pool.Get(8)
	a.Blob("x", 8, 4).Data[0] = 42
	pool.Put(a)
	b := pool.Get(4) // smaller: must reuse the slab, not reallocate
	if b != a {
		t.Skip("sync.Pool dropped the arena (GC); nothing to assert")
	}
	if cap(b.slab) < 8*4 {
		t.Errorf("slab shrank to %d", cap(b.slab))
	}
	if b.Rows() != 4 {
		t.Errorf("Rows = %d, want 4", b.Rows())
	}
}

func TestNilArenaAndPoolAreInert(t *testing.T) {
	var p *ArenaPool
	if p.Get(4) != nil {
		t.Error("nil pool Get must return nil")
	}
	p.Put(nil)
	ws := NewWorkspace()
	if m := ws.AllocBlob("z", 2, 3); m == nil || len(m.Data) != 6 {
		t.Error("AllocBlob without arena must allocate")
	}
	if m := ws.AllocBlobZero("z", 2, 3); m == nil || m.Data[0] != 0 {
		t.Error("AllocBlobZero without arena must allocate zeroed")
	}
	if NewArenaPool(nil) != nil {
		t.Error("nil schedule must give nil pool")
	}
}

// TestFusedFCMatchesUnfused checks the fused op against the FC →
// Activation pair bitwise, with and without bias, for both activations
// and ActNone.
func TestFusedFCMatchesUnfused(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	w := tensor.New(12, 9)
	for i := range w.Data {
		w.Data[i] = float32(rng.NormFloat64())
	}
	bias := make([]float32, 9)
	for i := range bias {
		bias[i] = float32(rng.NormFloat64())
	}
	in := tensor.New(21, 12)
	for i := range in.Data {
		in.Data[i] = float32(rng.NormFloat64())
	}

	for _, tc := range []struct {
		name string
		act  ActivationFunc
		b    []float32
	}{
		{"relu+bias", ActReLU, bias},
		{"sigmoid+bias", ActSigmoid, bias},
		{"none+bias", ActNone, bias},
		{"relu-nobias", ActReLU, nil},
	} {
		wsA := NewWorkspace()
		wsA.SetBlob("in", in.Clone())
		fc := &FC{OpName: "fc", W: w, B: tc.b, Input: "in", Output: "out"}
		if err := fc.Run(wsA); err != nil {
			t.Fatal(err)
		}
		if tc.act != ActNone {
			act := &Activation{OpName: "act", Func: tc.act, Blob: "out"}
			if err := act.Run(wsA); err != nil {
				t.Fatal(err)
			}
		}
		want, _ := wsA.Blob("out")

		wsB := NewWorkspace()
		wsB.SetBlob("in", in.Clone())
		fused := &FusedFC{OpName: "ffc", W: w, B: tc.b, Act: tc.act, Input: "in", Output: "out"}
		if err := fused.Run(wsB); err != nil {
			t.Fatal(err)
		}
		got, _ := wsB.Blob("out")
		for i := range want.Data {
			if math.Float32bits(got.Data[i]) != math.Float32bits(want.Data[i]) {
				t.Fatalf("%s: element %d differs: %v vs %v", tc.name, i, got.Data[i], want.Data[i])
			}
		}
	}
}

func TestFusedFCValidates(t *testing.T) {
	w := tensor.New(4, 3)
	ws := NewWorkspace()
	ws.SetBlob("in", tensor.New(2, 5)) // cols mismatch
	if err := (&FusedFC{OpName: "f", W: w, Input: "in", Output: "o"}).Run(ws); err == nil {
		t.Error("input/weight mismatch must error")
	}
	ws.SetBlob("in", tensor.New(2, 4))
	if err := (&FusedFC{OpName: "f", W: w, B: make([]float32, 7), Input: "in", Output: "o"}).Run(ws); err == nil {
		t.Error("bias length mismatch must error")
	}
	if err := (&FusedFC{OpName: "f", W: w, Act: ActivationFunc(99), Input: "in", Output: "o"}).Run(ws); err == nil {
		t.Error("unknown activation must error")
	}
	if err := (&FusedFC{OpName: "f", W: w, Input: "in", Output: "missing-in"}).Run(NewWorkspace()); err == nil {
		t.Error("missing input must error")
	}
}
