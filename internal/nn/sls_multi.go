package nn

import (
	"fmt"

	"repro/internal/embedding"
	"repro/internal/tensor"
)

// SLSEntry is one table's lookup inside a fused MultiSLS op.
type SLSEntry struct {
	Table     embedding.Table
	InputBags string
	Output    string
}

// MultiSLS executes SparseLengthsSum for a group of tables in one
// operator. The work is identical to a sequence of SLSOp instances (the
// tables still pool sequentially, as Caffe2 schedules them), but the
// group records a single trace span, keeping span volume proportional to
// operator *groups* rather than the 257 tables of DRM1. The singular
// configuration uses one MultiSLS per net; sparse shards use one per
// request.
type MultiSLS struct {
	OpName  string
	Entries []SLSEntry
}

// Name implements Op.
func (o *MultiSLS) Name() string { return o.OpName }

// Kind implements Op.
func (o *MultiSLS) Kind() OpKind { return KindSparse }

// Run implements Op.
func (o *MultiSLS) Run(ws *Workspace) error {
	for i := range o.Entries {
		e := &o.Entries[i]
		bags, err := ws.Bags(e.InputBags)
		if err != nil {
			return fmt.Errorf("%s[%d]: %w", o.OpName, i, err)
		}
		dim := e.Table.Dim()
		out := tensor.New(len(bags), dim)
		embedding.SLS(out.Data, e.Table, bags)
		ws.SetBlob(e.Output, out)
	}
	return nil
}

// HashAllBags hashes a group of raw-ID bag inputs into table-bucket
// index bags, one table per entry, in a single fused operator (same
// span-volume rationale as MultiSLS).
type HashAllBags struct {
	OpName  string
	Entries []HashEntry
}

// HashEntry is one feature's hashing task.
type HashEntry struct {
	Buckets       int32
	Input, Output string
}

// Name implements Op.
func (o *HashAllBags) Name() string { return o.OpName }

// Kind implements Op.
func (o *HashAllBags) Kind() OpKind { return KindHash }

// Run implements Op.
func (o *HashAllBags) Run(ws *Workspace) error {
	for i := range o.Entries {
		e := &o.Entries[i]
		if e.Buckets <= 0 {
			return fmt.Errorf("%s[%d]: buckets %d <= 0", o.OpName, i, e.Buckets)
		}
		in, err := ws.Bags(e.Input)
		if err != nil {
			return fmt.Errorf("%s[%d]: %w", o.OpName, i, err)
		}
		// One flat allocation per table, sub-sliced per bag: the hash op
		// runs for every table on every batch, so per-bag allocations
		// would dominate its cost.
		total := 0
		for _, bag := range in {
			total += len(bag.Indices)
		}
		flat := make([]int32, 0, total)
		out := make([]embedding.Bag, len(in))
		for b, bag := range in {
			if len(bag.Indices) == 0 {
				continue
			}
			lo := len(flat)
			for _, id := range bag.Indices {
				flat = append(flat, hash32(id)%e.Buckets)
			}
			out[b].Indices = flat[lo:len(flat):len(flat)]
		}
		ws.SetBags(e.Output, out)
	}
	return nil
}
