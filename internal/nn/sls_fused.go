package nn

import (
	"fmt"

	"repro/internal/embedding"
	"repro/internal/tensor"
)

// FusedSLSEntry is one table inside a FusedSLS op.
type FusedSLSEntry struct {
	Table     embedding.Table
	InputBags string
	// ColOffset is the table's column range start in the fused output.
	ColOffset int
	// CopyOut, when non-empty, additionally materializes the table's
	// pooled rows as a standalone blob (needed by the pairwise
	// interaction, which consumes per-feature matrices).
	CopyOut string
}

// FusedSLS pools every entry's lookups directly into one pre-concatenated
// bags×Cols embedding matrix, the fusion of SparseLengthsSum and the
// following Concat that optimized CPU serving stacks perform: it touches
// one output allocation instead of one per table, so its cost tracks the
// pooling work (the paper's operative quantity) rather than allocator
// overhead.
type FusedSLS struct {
	OpName string
	// Output receives the bags×Cols fused matrix.
	Output string
	// Cols is the sum of entry dims.
	Cols    int
	Entries []FusedSLSEntry
}

// Name implements Op.
func (o *FusedSLS) Name() string { return o.OpName }

// Kind implements Op.
func (o *FusedSLS) Kind() OpKind { return KindSparse }

// Run implements Op.
func (o *FusedSLS) Run(ws *Workspace) error {
	if len(o.Entries) == 0 {
		return fmt.Errorf("%s: no entries", o.OpName)
	}
	first, err := ws.Bags(o.Entries[0].InputBags)
	if err != nil {
		return fmt.Errorf("%s: %w", o.OpName, err)
	}
	rows := len(first)
	var emb *tensor.Matrix
	if ws.HasBlob(o.Output) {
		// Output blob pre-materialized by an AllocEmb (Fill) operator —
		// the Caffe2 pattern where *Fill ops create output storage and
		// SLS only pools into it.
		emb, err = ws.Blob(o.Output)
		if err != nil {
			return err
		}
		if emb.Rows != rows || emb.Cols != o.Cols {
			return fmt.Errorf("%s: preallocated output is %dx%d, want %dx%d", o.OpName, emb.Rows, emb.Cols, rows, o.Cols)
		}
	} else {
		emb = tensor.New(rows, o.Cols)
	}
	for i := range o.Entries {
		e := &o.Entries[i]
		bags, err := ws.Bags(e.InputBags)
		if err != nil {
			return fmt.Errorf("%s[%d]: %w", o.OpName, i, err)
		}
		if len(bags) != rows {
			return fmt.Errorf("%s[%d]: %d bags, want %d", o.OpName, i, len(bags), rows)
		}
		dim := e.Table.Dim()
		if e.ColOffset < 0 || e.ColOffset+dim > o.Cols {
			return fmt.Errorf("%s[%d]: column range [%d, %d) outside %d", o.OpName, i, e.ColOffset, e.ColOffset+dim, o.Cols)
		}
		nRows := e.Table.NumRows()
		for b := range bags {
			if len(bags[b].Indices) == 0 {
				continue
			}
			acc := emb.Row(b)[e.ColOffset : e.ColOffset+dim]
			for _, idx := range bags[b].Indices {
				if idx < 0 || int(idx) >= nRows {
					return fmt.Errorf("%s[%d]: index %d out of range [0,%d)", o.OpName, i, idx, nRows)
				}
				e.Table.AccumulateRow(acc, int(idx))
			}
		}
		if e.CopyOut != "" {
			small := ws.AllocBlob(e.CopyOut, rows, dim)
			for b := 0; b < rows; b++ {
				copy(small.Row(b), emb.Row(b)[e.ColOffset:e.ColOffset+dim])
			}
			ws.SetBlob(e.CopyOut, small)
		}
	}
	ws.SetBlob(o.Output, emb)
	return nil
}

// AllocEmb materializes a zeroed rows×Cols matrix whose row count tracks
// a bag input's length — the fused embedding output blob. It is a Fill
// operator (Fig. 4's "Fill" group): output-storage materialization is
// framework work, not pooling work.
type AllocEmb struct {
	OpName string
	// RowsFrom names a bag input whose length gives the row count.
	RowsFrom string
	Cols     int
	Output   string
}

// Name implements Op.
func (o *AllocEmb) Name() string { return o.OpName }

// Kind implements Op.
func (o *AllocEmb) Kind() OpKind { return KindFill }

// Run implements Op.
func (o *AllocEmb) Run(ws *Workspace) error {
	bags, err := ws.Bags(o.RowsFrom)
	if err != nil {
		return fmt.Errorf("%s: %w", o.OpName, err)
	}
	// The SLS pools += into this blob, so it must start zeroed even when
	// drawn from a dirty arena slab.
	ws.SetBlob(o.Output, ws.AllocBlobZero(o.Output, len(bags), o.Cols))
	return nil
}
