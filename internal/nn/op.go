package nn

import (
	"fmt"
	"time"
)

// OpKind groups operators into the attribution classes of the paper's
// Fig. 4 ("Hash, Fill, Scale/Clip, Activations, Sparse, Feature
// Transforms, Memory Transformations, Dense") plus the RPC class
// introduced by distributed inference.
type OpKind int

// Operator attribution classes.
const (
	KindDense OpKind = iota
	KindSparse
	KindActivation
	KindScaleClip
	KindHash
	KindFill
	KindFeatureTransform
	KindMemoryTransform
	KindRPC
	// KindWait marks synchronization points that block on asynchronous
	// results: their duration is the embedded-portion wait, already
	// attributed through RPC-call spans, so analyzers must not count it
	// as operator compute.
	KindWait
)

var kindNames = [...]string{
	KindDense:            "Dense",
	KindSparse:           "Sparse",
	KindActivation:       "Activations",
	KindScaleClip:        "Scale/Clip",
	KindHash:             "Hash",
	KindFill:             "Fill",
	KindFeatureTransform: "Feature Transforms",
	KindMemoryTransform:  "Memory Transformations",
	KindRPC:              "RPC",
	KindWait:             "Wait",
}

// String returns the paper's legend label for the kind.
func (k OpKind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "Unknown"
}

// Op is one operator in a net. Run executes synchronously against the
// workspace; asynchronous operators (the RPC op) launch work inside Run
// and register a Future for their output blob instead of blocking.
type Op interface {
	// Name identifies the operator instance for traces.
	Name() string
	// Kind is the attribution class.
	Kind() OpKind
	// Run executes (or launches) the operator.
	Run(ws *Workspace) error
}

// Observer receives per-operator timing during a net run. The cross-layer
// tracer implements this; a nil observer disables instrumentation with no
// overhead beyond a branch.
type Observer interface {
	// OpExecuted reports that op ran (synchronously) for dur.
	OpExecuted(netName string, op Op, start time.Time, dur time.Duration)
	// NetFinished reports total wall time and the portion not spent inside
	// synchronous operator Run calls (the paper's "Caffe2 Net Overhead").
	NetFinished(netName string, start time.Time, total, opTime time.Duration)
}

// Net is an ordered operator list, the unit of scheduling. The models in
// the paper have one or two nets (user net and content/product net) that
// must execute sequentially.
type Net struct {
	// NetName identifies the net ("net1", "net2").
	NetName string
	// Ops execute in order.
	Ops []Op
}

// Run executes all operators in order against ws, then resolves any
// outstanding asynchronous futures. Per-op wall time is reported to obs
// when non-nil; the residual (total − Σop) is the net scheduling overhead
// the paper attributes to the ML framework layer.
//
// Operator panics (index corruption, storage faults) are converted to
// errors: one bad request must fail its own RPC, not take down a serving
// shard.
func (n *Net) Run(ws *Workspace, obs Observer) error {
	netStart := time.Now()
	var opTime time.Duration
	for _, op := range n.Ops {
		start := time.Now()
		err := runOp(op, ws)
		dur := time.Since(start)
		opTime += dur
		if obs != nil {
			obs.OpExecuted(n.NetName, op, start, dur)
		}
		if err != nil {
			// Drain async work before surfacing the failure so no
			// goroutine outlives the run.
			_ = ws.WaitAll()
			return err
		}
	}
	if err := ws.WaitAll(); err != nil {
		return err
	}
	if obs != nil {
		obs.NetFinished(n.NetName, netStart, time.Since(netStart), opTime)
	}
	return nil
}

// runOp invokes one operator, converting panics into errors.
func runOp(op Op, ws *Workspace) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("nn: operator %s panicked: %v", op.Name(), r)
		}
	}()
	return op.Run(ws)
}
