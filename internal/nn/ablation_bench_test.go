package nn

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/embedding"
	"repro/internal/tensor"
)

// Ablation: fused SLS-into-concat (production-style) vs per-table SLS
// followed by Concat (the naive operator graph). DESIGN.md calls out the
// fusion as a deliberate design choice; this bench quantifies it.
func BenchmarkSLSFusedVsPerTable(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	const nTables, rows, dim, bags = 64, 2048, 16, 8
	tables := make([]embedding.Table, nTables)
	for i := range tables {
		tables[i] = embedding.NewDenseRandom(rng, rows, dim, 1)
	}
	mkWS := func() *Workspace {
		ws := NewWorkspace()
		for ti := 0; ti < nTables; ti++ {
			bagSet := make([]embedding.Bag, bags)
			for bi := range bagSet {
				for k := 0; k < 3; k++ {
					bagSet[bi].Indices = append(bagSet[bi].Indices, int32(rng.Intn(rows)))
				}
			}
			ws.SetBags(fmt.Sprintf("bags_%d", ti), bagSet)
		}
		return ws
	}

	b.Run("fused", func(b *testing.B) {
		ws := mkWS()
		op := &FusedSLS{OpName: "fused", Output: "emb", Cols: nTables * dim}
		for ti := 0; ti < nTables; ti++ {
			op.Entries = append(op.Entries, FusedSLSEntry{
				Table: tables[ti], InputBags: fmt.Sprintf("bags_%d", ti), ColOffset: ti * dim,
			})
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := op.Run(ws); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("per-table+concat", func(b *testing.B) {
		ws := mkWS()
		sls := &MultiSLS{OpName: "multi"}
		concat := &ConcatOp{OpName: "concat", Output: "emb"}
		for ti := 0; ti < nTables; ti++ {
			out := fmt.Sprintf("pooled_%d", ti)
			sls.Entries = append(sls.Entries, SLSEntry{
				Table: tables[ti], InputBags: fmt.Sprintf("bags_%d", ti), Output: out,
			})
			concat.Inputs = append(concat.Inputs, out)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := sls.Run(ws); err != nil {
				b.Fatal(err)
			}
			if err := concat.Run(ws); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// Ablation: the dense substrate's GEMM at the model's operating shapes
// (the projection layer dominates Fig. 4's dense share).
func BenchmarkFCProjectionShapes(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	for _, shape := range []struct{ batch, in, out int }{
		{8, 3536, 256}, // DRM1 net2 projection
		{16, 896, 256}, // DRM1 net1 projection
		{8, 416, 256},  // DRM3 projection
	} {
		b.Run(fmt.Sprintf("%dx%d->%d", shape.batch, shape.in, shape.out), func(b *testing.B) {
			ws := NewWorkspace()
			in := make([]float32, shape.batch*shape.in)
			for i := range in {
				in[i] = rng.Float32()
			}
			w := make([]float32, shape.in*shape.out)
			for i := range w {
				w[i] = rng.Float32()
			}
			op := &FC{
				OpName: "fc",
				W:      tensor.FromSlice(shape.in, shape.out, w),
				Input:  "in", Output: "out",
			}
			ws.SetBlob("in", tensor.FromSlice(shape.batch, shape.in, in))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := op.Run(ws); err != nil {
					b.Fatal(err)
				}
			}
			flops := 2 * int64(shape.batch) * int64(shape.in) * int64(shape.out)
			b.SetBytes(flops) // MB/s column ≈ MFLOP/s
		})
	}
}
