package nn

import (
	"fmt"

	"repro/internal/embedding"
	"repro/internal/tensor"
)

// FC is a fully-connected layer: Output = Input·W + B. The dense stacks of
// the recommendation models (bottom MLP over dense features, top MLP over
// interactions) are chains of FC + activation operators, and per Fig. 4
// they dominate per-request compute.
type FC struct {
	OpName        string
	W             *tensor.Matrix // In×Out
	B             []float32      // len Out
	Input, Output string
}

// Name implements Op.
func (o *FC) Name() string { return o.OpName }

// Kind implements Op.
func (o *FC) Kind() OpKind { return KindDense }

// Run implements Op.
func (o *FC) Run(ws *Workspace) error {
	in, err := ws.WaitBlob(o.Input)
	if err != nil {
		return fmt.Errorf("%s: %w", o.OpName, err)
	}
	if in.Cols != o.W.Rows {
		return fmt.Errorf("%s: input cols %d != weight rows %d", o.OpName, in.Cols, o.W.Rows)
	}
	out := ws.AllocBlob(o.Output, in.Rows, o.W.Cols)
	tensor.MatMul(out, in, o.W)
	if o.B != nil {
		tensor.AddBiasRows(out, o.B)
	}
	ws.SetBlob(o.Output, out)
	return nil
}

// ActivationFunc selects the nonlinearity applied by an Activation op or
// fused into a FusedFC.
type ActivationFunc int

// Supported activations. ActNone (the zero value) is only meaningful on
// FusedFC, where it selects the plain affine layer.
const (
	ActNone ActivationFunc = iota
	ActReLU
	ActSigmoid
)

// valid reports whether f names a known activation (ActNone included).
func (f ActivationFunc) valid() bool { return f >= ActNone && f <= ActSigmoid }

// applyAct runs f elementwise in place; ActNone is a no-op.
func applyAct(f ActivationFunc, xs []float32) error {
	switch f {
	case ActNone:
	case ActReLU:
		tensor.ReLUSlice(xs)
	case ActSigmoid:
		tensor.SigmoidSlice(xs)
	default:
		return fmt.Errorf("unknown activation %d", f)
	}
	return nil
}

// FusedFC is a fully-connected layer with the bias addition and
// activation fused into the GEMM epilogue: Output = act(Input·W + B),
// computed tile by tile inside the parallel GEMM workers with no extra
// pass over the output and no intermediate blob. Results are bitwise
// identical to the FC → Activation pair it replaces (the epilogue applies
// the same elementwise ops to each finished row). Output storage draws
// from the workspace arena when scheduled.
type FusedFC struct {
	OpName        string
	W             *tensor.Matrix // In×Out
	B             []float32      // len Out, nil for no bias
	Act           ActivationFunc // ActNone for the plain affine layer
	Input, Output string
}

// Name implements Op.
func (o *FusedFC) Name() string { return o.OpName }

// Kind implements Op.
func (o *FusedFC) Kind() OpKind { return KindDense }

// Run implements Op.
func (o *FusedFC) Run(ws *Workspace) error {
	in, err := ws.WaitBlob(o.Input)
	if err != nil {
		return fmt.Errorf("%s: %w", o.OpName, err)
	}
	if in.Cols != o.W.Rows {
		return fmt.Errorf("%s: input cols %d != weight rows %d", o.OpName, in.Cols, o.W.Rows)
	}
	if o.B != nil && len(o.B) != o.W.Cols {
		return fmt.Errorf("%s: bias length %d != output cols %d", o.OpName, len(o.B), o.W.Cols)
	}
	// Reject an invalid Act up front: the epilogue below discards
	// applyAct's error (workers have nowhere to report it), so it must
	// be impossible by the time tiles run.
	if !o.Act.valid() {
		return fmt.Errorf("%s: unknown activation %d", o.OpName, o.Act)
	}
	out := ws.AllocBlob(o.Output, in.Rows, o.W.Cols)
	tensor.MatMulEpilogue(out, in, o.W, func(i0, i1 int) {
		for r := i0; r < i1; r++ {
			row := out.Row(r)
			if o.B != nil {
				for c := range row {
					row[c] += o.B[c]
				}
			}
			_ = applyAct(o.Act, row)
		}
	})
	ws.SetBlob(o.Output, out)
	return nil
}

// Activation applies a nonlinearity in place on a blob.
type Activation struct {
	OpName string
	Func   ActivationFunc
	Blob   string
}

// Name implements Op.
func (o *Activation) Name() string { return o.OpName }

// Kind implements Op.
func (o *Activation) Kind() OpKind { return KindActivation }

// Run implements Op.
func (o *Activation) Run(ws *Workspace) error {
	m, err := ws.WaitBlob(o.Blob)
	if err != nil {
		return fmt.Errorf("%s: %w", o.OpName, err)
	}
	if o.Func == ActNone {
		// A standalone activation op exists to activate; ActNone here is
		// a wiring bug (likely an unset field), not a request for a no-op.
		return fmt.Errorf("%s: unknown activation %d", o.OpName, o.Func)
	}
	if err := applyAct(o.Func, m.Data); err != nil {
		return fmt.Errorf("%s: %w", o.OpName, err)
	}
	return nil
}

// ScaleClip scales then clamps a blob in place, modeling the
// preprocessing operators in Fig. 4's "Scale/Clip" group.
type ScaleClip struct {
	OpName string
	Scale  float32
	Lo, Hi float32
	Blob   string
}

// Name implements Op.
func (o *ScaleClip) Name() string { return o.OpName }

// Kind implements Op.
func (o *ScaleClip) Kind() OpKind { return KindScaleClip }

// Run implements Op.
func (o *ScaleClip) Run(ws *Workspace) error {
	m, err := ws.WaitBlob(o.Blob)
	if err != nil {
		return fmt.Errorf("%s: %w", o.OpName, err)
	}
	tensor.Scale(m, o.Scale)
	tensor.Clip(m, o.Lo, o.Hi)
	return nil
}

// HashBags transforms raw sparse-feature IDs into embedding-table indices
// by hashing them into [0, Buckets) — the "sparse inputs are transformed
// into a list of access IDs, or hash indices" step of Section II-1 and the
// "Hash" group of Fig. 4.
type HashBags struct {
	OpName        string
	Buckets       int32
	Input, Output string
}

// Name implements Op.
func (o *HashBags) Name() string { return o.OpName }

// Kind implements Op.
func (o *HashBags) Kind() OpKind { return KindHash }

// Run implements Op.
func (o *HashBags) Run(ws *Workspace) error {
	in, err := ws.Bags(o.Input)
	if err != nil {
		return fmt.Errorf("%s: %w", o.OpName, err)
	}
	if o.Buckets <= 0 {
		return fmt.Errorf("%s: buckets %d <= 0", o.OpName, o.Buckets)
	}
	out := make([]embedding.Bag, len(in))
	for b, bag := range in {
		out[b].Indices = make([]int32, len(bag.Indices))
		for i, id := range bag.Indices {
			out[b].Indices[i] = hash32(id) % o.Buckets
		}
	}
	ws.SetBags(o.Output, out)
	return nil
}

// hash32 is a Murmur-style finalizer: cheap, deterministic, well mixed.
func hash32(x int32) int32 {
	h := uint32(x)
	h ^= h >> 16
	h *= 0x85ebca6b
	h ^= h >> 13
	h *= 0xc2b2ae35
	h ^= h >> 16
	return int32(h & 0x7fffffff)
}

// Fill creates a constant-valued blob, mirroring Caffe2's *Fill operators
// (Fig. 4's "Fill" group) used to materialize defaults for absent features.
type Fill struct {
	OpName     string
	Rows, Cols int
	Value      float32
	Output     string
}

// Name implements Op.
func (o *Fill) Name() string { return o.OpName }

// Kind implements Op.
func (o *Fill) Kind() OpKind { return KindFill }

// Run implements Op.
func (o *Fill) Run(ws *Workspace) error {
	m := tensor.New(o.Rows, o.Cols)
	if o.Value != 0 {
		for i := range m.Data {
			m.Data[i] = o.Value
		}
	}
	ws.SetBlob(o.Output, m)
	return nil
}

// SLSOp executes SparseLengthsSum: pooled embedding lookup of one sparse
// feature against one table. In the singular model these ops run in-line
// on the main shard; sharding moves them to sparse shards behind RPC ops.
type SLSOp struct {
	OpName string
	Table  embedding.Table
	// InputBags names the hashed index bags; Output receives a
	// len(bags)×dim pooled matrix.
	InputBags, Output string
}

// Name implements Op.
func (o *SLSOp) Name() string { return o.OpName }

// Kind implements Op.
func (o *SLSOp) Kind() OpKind { return KindSparse }

// Run implements Op.
func (o *SLSOp) Run(ws *Workspace) error {
	bags, err := ws.Bags(o.InputBags)
	if err != nil {
		return fmt.Errorf("%s: %w", o.OpName, err)
	}
	dim := o.Table.Dim()
	out := tensor.New(len(bags), dim)
	embedding.SLS(out.Data, o.Table, bags)
	ws.SetBlob(o.Output, out)
	return nil
}

// ConcatOp concatenates blobs horizontally into Output (Fig. 4's "Memory
// Transformations" group).
type ConcatOp struct {
	OpName string
	Inputs []string
	Output string
}

// Name implements Op.
func (o *ConcatOp) Name() string { return o.OpName }

// Kind implements Op.
func (o *ConcatOp) Kind() OpKind { return KindMemoryTransform }

// Run implements Op.
func (o *ConcatOp) Run(ws *Workspace) error {
	ms := make([]*tensor.Matrix, len(o.Inputs))
	rows, cols := 0, 0
	for i, name := range o.Inputs {
		m, err := ws.WaitBlob(name)
		if err != nil {
			return fmt.Errorf("%s: %w", o.OpName, err)
		}
		ms[i] = m
		rows = m.Rows
		cols += m.Cols
	}
	if len(ms) == 0 {
		ws.SetBlob(o.Output, tensor.New(0, 0))
		return nil
	}
	out := ws.AllocBlob(o.Output, rows, cols)
	tensor.ConcatInto(out, ms...)
	ws.SetBlob(o.Output, out)
	return nil
}

// Interaction computes the DLRM pairwise-dot feature interaction over a
// set of equal-shaped feature blobs and concatenates the result with the
// Passthrough blob (the bottom-MLP output), producing the top-MLP input.
type Interaction struct {
	OpName      string
	Features    []string
	Passthrough string
	Output      string
}

// Name implements Op.
func (o *Interaction) Name() string { return o.OpName }

// Kind implements Op.
func (o *Interaction) Kind() OpKind { return KindFeatureTransform }

// Run implements Op.
func (o *Interaction) Run(ws *Workspace) error {
	feats := make([]*tensor.Matrix, len(o.Features))
	for i, name := range o.Features {
		m, err := ws.WaitBlob(name)
		if err != nil {
			return fmt.Errorf("%s: %w", o.OpName, err)
		}
		feats[i] = m
	}
	pass, err := ws.WaitBlob(o.Passthrough)
	if err != nil {
		return fmt.Errorf("%s: %w", o.OpName, err)
	}
	// Write the passthrough columns and the pairwise dots straight into
	// the output (arena-drawn when scheduled) — no intermediate dots or
	// concat blob. The dots share tensor.PairwiseDotRow with PairwiseDot,
	// so results are bitwise identical to the unfused Dot+Concat form.
	f := len(feats)
	dotCols := f * (f - 1) / 2
	for _, m := range feats {
		if m.Rows != pass.Rows || m.Cols != feats[0].Cols {
			return fmt.Errorf("%s: feature shape %dx%d inconsistent", o.OpName, m.Rows, m.Cols)
		}
	}
	out := ws.AllocBlob(o.Output, pass.Rows, pass.Cols+dotCols)
	for r := 0; r < pass.Rows; r++ {
		row := out.Row(r)
		copy(row[:pass.Cols], pass.Row(r))
		tensor.PairwiseDotRow(row[pass.Cols:], feats, r)
	}
	ws.SetBlob(o.Output, out)
	return nil
}

// SplitBlob slices a blob's columns into Output, modeling tensor reshape
// and split traffic ("Memory Transformations").
type SplitBlob struct {
	OpName         string
	Input          string
	FromCol, ToCol int
	Output         string
}

// Name implements Op.
func (o *SplitBlob) Name() string { return o.OpName }

// Kind implements Op.
func (o *SplitBlob) Kind() OpKind { return KindMemoryTransform }

// Run implements Op.
func (o *SplitBlob) Run(ws *Workspace) error {
	in, err := ws.WaitBlob(o.Input)
	if err != nil {
		return fmt.Errorf("%s: %w", o.OpName, err)
	}
	if o.FromCol < 0 || o.ToCol > in.Cols || o.FromCol >= o.ToCol {
		return fmt.Errorf("%s: bad column range [%d, %d) for %d cols", o.OpName, o.FromCol, o.ToCol, in.Cols)
	}
	out := ws.AllocBlob(o.Output, in.Rows, o.ToCol-o.FromCol)
	for r := 0; r < in.Rows; r++ {
		copy(out.Row(r), in.Row(r)[o.FromCol:o.ToCol])
	}
	ws.SetBlob(o.Output, out)
	return nil
}
