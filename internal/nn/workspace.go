// Package nn implements the neural-network execution substrate: a named
// blob workspace, the operator inventory of the recommendation models
// (fully-connected stacks, activations, scale/clip, hashing, embedding
// lookups, memory transforms, feature interaction), and a sequential net
// scheduler with support for asynchronous operators.
//
// The design follows the Caffe2 execution model the paper builds on:
// operators read and write named blobs in a workspace; a net is an ordered
// operator list; "operators are scheduled to execute sequentially — unless
// specifically asynchronous like the RPC ops — because other cores are
// utilized via request- and batch-level parallelism" (Section IV-A).
package nn

import (
	"fmt"

	"repro/internal/embedding"
	"repro/internal/tensor"
)

// Workspace holds the named state one net execution operates on: dense
// blobs (matrices), sparse inputs (bags of embedding indices per feature),
// and in-flight futures registered by asynchronous operators. A Workspace
// is not safe for concurrent mutation; each inference batch gets its own.
type Workspace struct {
	blobs   map[string]*tensor.Matrix
	bags    map[string][]embedding.Bag
	futures map[string]*Future
	// arena, when set, backs scheduled output blobs so steady-state
	// execution allocates nothing; see AllocBlob.
	arena *Arena
}

// NewWorkspace returns an empty workspace.
func NewWorkspace() *Workspace {
	return &Workspace{
		blobs:   make(map[string]*tensor.Matrix),
		bags:    make(map[string][]embedding.Bag),
		futures: make(map[string]*Future),
	}
}

// SetBlob stores a dense blob under name, replacing any previous value.
func (ws *Workspace) SetBlob(name string, m *tensor.Matrix) { ws.blobs[name] = m }

// SetArena attaches a buffer arena for the run. Matrices drawn from it
// are valid only until the arena returns to its pool; the engine owns
// that lifecycle.
func (ws *Workspace) SetArena(a *Arena) { ws.arena = a }

// AllocBlob returns writable rows×cols output storage for name: from the
// arena's blob schedule when one covers the name at this shape, else a
// fresh zeroed allocation. Arena storage is dirty — the caller must
// fully overwrite it. The blob is NOT yet registered; call SetBlob once
// it is filled.
func (ws *Workspace) AllocBlob(name string, rows, cols int) *tensor.Matrix {
	if m := ws.arena.Blob(name, rows, cols); m != nil {
		return m
	}
	return tensor.New(rows, cols)
}

// AllocBlobZero is AllocBlob for producers that accumulate instead of
// overwrite: arena storage is cleared before return, fresh allocations
// are already zero.
func (ws *Workspace) AllocBlobZero(name string, rows, cols int) *tensor.Matrix {
	if m := ws.arena.Blob(name, rows, cols); m != nil {
		clear(m.Data)
		return m
	}
	return tensor.New(rows, cols)
}

// Blob fetches a dense blob; it returns an error naming the blob if absent
// so operator failures identify the broken wiring.
func (ws *Workspace) Blob(name string) (*tensor.Matrix, error) {
	m, ok := ws.blobs[name]
	if !ok {
		return nil, fmt.Errorf("nn: blob %q not found", name)
	}
	return m, nil
}

// HasBlob reports whether a dense blob exists.
func (ws *Workspace) HasBlob(name string) bool { _, ok := ws.blobs[name]; return ok }

// SetBags stores sparse input bags under name.
func (ws *Workspace) SetBags(name string, bags []embedding.Bag) { ws.bags[name] = bags }

// Bags fetches sparse input bags by name.
func (ws *Workspace) Bags(name string) ([]embedding.Bag, error) {
	b, ok := ws.bags[name]
	if !ok {
		return nil, fmt.Errorf("nn: bags %q not found", name)
	}
	return b, nil
}

// RegisterFuture records an in-flight asynchronous result that will
// eventually produce the named blob. Registering a second future for the
// same blob is a wiring bug and panics.
func (ws *Workspace) RegisterFuture(blob string, f *Future) {
	if _, dup := ws.futures[blob]; dup {
		panic(fmt.Sprintf("nn: duplicate future for blob %q", blob))
	}
	ws.futures[blob] = f
}

// WaitBlob resolves the named blob: if a future is registered it blocks
// until completion, installs the result, and returns it; otherwise it
// behaves like Blob.
func (ws *Workspace) WaitBlob(name string) (*tensor.Matrix, error) {
	if f, ok := ws.futures[name]; ok {
		delete(ws.futures, name)
		m, err := f.Wait()
		if err != nil {
			return nil, fmt.Errorf("nn: async producer of %q failed: %w", name, err)
		}
		ws.blobs[name] = m
		return m, nil
	}
	return ws.Blob(name)
}

// WaitAll resolves every outstanding future, returning the first error.
// The scheduler calls this at net exit so no goroutine leaks past a run.
func (ws *Workspace) WaitAll() error {
	var firstErr error
	for name, f := range ws.futures {
		m, err := f.Wait()
		delete(ws.futures, name)
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("nn: async producer of %q failed: %w", name, err)
			}
			continue
		}
		ws.blobs[name] = m
	}
	return firstErr
}

// Pending returns the number of unresolved futures (for tests).
func (ws *Workspace) Pending() int { return len(ws.futures) }

// Future is a single-assignment asynchronous result produced by an async
// operator (the RPC op). The producing goroutine calls Complete exactly
// once; consumers call Wait.
type Future struct {
	done chan struct{}
	m    *tensor.Matrix
	err  error
}

// NewFuture returns an unresolved future.
func NewFuture() *Future { return &Future{done: make(chan struct{})} }

// Complete resolves the future with a result or error. Calling it twice
// panics (by closing a closed channel), which is the desired loud failure
// for a protocol bug.
func (f *Future) Complete(m *tensor.Matrix, err error) {
	f.m, f.err = m, err
	close(f.done)
}

// Wait blocks until the future resolves.
func (f *Future) Wait() (*tensor.Matrix, error) {
	<-f.done
	return f.m, f.err
}
