package nn

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/embedding"
	"repro/internal/tensor"
)

func TestWorkspaceBlobLifecycle(t *testing.T) {
	ws := NewWorkspace()
	if ws.HasBlob("x") {
		t.Error("fresh workspace should be empty")
	}
	if _, err := ws.Blob("x"); err == nil || !strings.Contains(err.Error(), `"x"`) {
		t.Errorf("missing blob error should name the blob, got %v", err)
	}
	m := tensor.New(1, 1)
	ws.SetBlob("x", m)
	got, err := ws.Blob("x")
	if err != nil || got != m {
		t.Errorf("Blob returned %v, %v", got, err)
	}
}

func TestWorkspaceBags(t *testing.T) {
	ws := NewWorkspace()
	if _, err := ws.Bags("f"); err == nil {
		t.Error("missing bags should error")
	}
	ws.SetBags("f", []embedding.Bag{{Indices: []int32{1}}})
	b, err := ws.Bags("f")
	if err != nil || len(b) != 1 {
		t.Errorf("Bags = %v, %v", b, err)
	}
}

func TestFutureResolution(t *testing.T) {
	ws := NewWorkspace()
	f := NewFuture()
	ws.RegisterFuture("out", f)
	if ws.Pending() != 1 {
		t.Fatalf("Pending = %d", ws.Pending())
	}
	want := tensor.New(2, 2)
	go f.Complete(want, nil)
	got, err := ws.WaitBlob("out")
	if err != nil || got != want {
		t.Fatalf("WaitBlob = %v, %v", got, err)
	}
	if ws.Pending() != 0 {
		t.Errorf("future should be consumed")
	}
	// Resolved blob is now a plain blob.
	if _, err := ws.Blob("out"); err != nil {
		t.Errorf("resolved blob should be readable: %v", err)
	}
}

func TestFutureError(t *testing.T) {
	ws := NewWorkspace()
	f := NewFuture()
	ws.RegisterFuture("out", f)
	f.Complete(nil, errors.New("boom"))
	if _, err := ws.WaitBlob("out"); err == nil || !strings.Contains(err.Error(), "boom") {
		t.Errorf("error should propagate, got %v", err)
	}
}

func TestDuplicateFuturePanics(t *testing.T) {
	ws := NewWorkspace()
	ws.RegisterFuture("out", NewFuture())
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	ws.RegisterFuture("out", NewFuture())
}

func TestWaitAllCollectsErrors(t *testing.T) {
	ws := NewWorkspace()
	f1, f2 := NewFuture(), NewFuture()
	ws.RegisterFuture("a", f1)
	ws.RegisterFuture("b", f2)
	f1.Complete(tensor.New(1, 1), nil)
	f2.Complete(nil, errors.New("late failure"))
	if err := ws.WaitAll(); err == nil {
		t.Error("WaitAll should surface the failure")
	}
	if ws.Pending() != 0 {
		t.Error("WaitAll should drain all futures")
	}
}

func TestFCKnownValues(t *testing.T) {
	ws := NewWorkspace()
	ws.SetBlob("in", tensor.FromSlice(1, 2, []float32{1, 2}))
	op := &FC{
		OpName: "fc1",
		W:      tensor.FromSlice(2, 2, []float32{1, 0, 0, 1}),
		B:      []float32{10, 20},
		Input:  "in", Output: "out",
	}
	if err := op.Run(ws); err != nil {
		t.Fatal(err)
	}
	out, _ := ws.Blob("out")
	if out.Data[0] != 11 || out.Data[1] != 22 {
		t.Errorf("FC out = %v", out.Data)
	}
	if op.Kind() != KindDense || op.Name() != "fc1" {
		t.Error("FC metadata wrong")
	}
}

func TestFCShapeError(t *testing.T) {
	ws := NewWorkspace()
	ws.SetBlob("in", tensor.New(1, 3))
	op := &FC{OpName: "fc", W: tensor.New(2, 2), Input: "in", Output: "out"}
	if err := op.Run(ws); err == nil {
		t.Error("expected shape error")
	}
}

func TestFCMissingInput(t *testing.T) {
	op := &FC{OpName: "fc", W: tensor.New(2, 2), Input: "nope", Output: "out"}
	if err := op.Run(NewWorkspace()); err == nil || !strings.Contains(err.Error(), "nope") {
		t.Errorf("error should name missing blob: %v", err)
	}
}

func TestActivations(t *testing.T) {
	ws := NewWorkspace()
	ws.SetBlob("x", tensor.FromSlice(1, 2, []float32{-1, 1}))
	relu := &Activation{OpName: "relu", Func: ActReLU, Blob: "x"}
	if err := relu.Run(ws); err != nil {
		t.Fatal(err)
	}
	m, _ := ws.Blob("x")
	if m.Data[0] != 0 || m.Data[1] != 1 {
		t.Errorf("ReLU = %v", m.Data)
	}
	sig := &Activation{OpName: "sig", Func: ActSigmoid, Blob: "x"}
	if err := sig.Run(ws); err != nil {
		t.Fatal(err)
	}
	if m.Data[0] != 0.5 {
		t.Errorf("Sigmoid(0) = %v", m.Data[0])
	}
	bad := &Activation{OpName: "bad", Func: ActivationFunc(99), Blob: "x"}
	if err := bad.Run(ws); err == nil {
		t.Error("unknown activation should error")
	}
}

func TestScaleClip(t *testing.T) {
	ws := NewWorkspace()
	ws.SetBlob("x", tensor.FromSlice(1, 3, []float32{-4, 1, 4}))
	op := &ScaleClip{OpName: "sc", Scale: 2, Lo: -3, Hi: 5, Blob: "x"}
	if err := op.Run(ws); err != nil {
		t.Fatal(err)
	}
	m, _ := ws.Blob("x")
	want := []float32{-3, 2, 5}
	for i, w := range want {
		if m.Data[i] != w {
			t.Errorf("data[%d] = %v, want %v", i, m.Data[i], w)
		}
	}
	if op.Kind() != KindScaleClip {
		t.Error("kind wrong")
	}
}

func TestHashBagsDeterministicAndInRange(t *testing.T) {
	ws := NewWorkspace()
	ws.SetBags("raw", []embedding.Bag{{Indices: []int32{12345, 67890, -5}}})
	op := &HashBags{OpName: "hash", Buckets: 100, Input: "raw", Output: "hashed"}
	if err := op.Run(ws); err != nil {
		t.Fatal(err)
	}
	got, _ := ws.Bags("hashed")
	for _, idx := range got[0].Indices {
		if idx < 0 || idx >= 100 {
			t.Errorf("hashed index %d out of range", idx)
		}
	}
	// Determinism.
	if err := op.Run(ws); err != nil {
		t.Fatal(err)
	}
	again, _ := ws.Bags("hashed")
	for i := range got[0].Indices {
		if got[0].Indices[i] != again[0].Indices[i] {
			t.Error("hashing should be deterministic")
		}
	}
}

func TestHashBagsValidation(t *testing.T) {
	ws := NewWorkspace()
	ws.SetBags("raw", []embedding.Bag{})
	op := &HashBags{OpName: "hash", Buckets: 0, Input: "raw", Output: "h"}
	if err := op.Run(ws); err == nil {
		t.Error("zero buckets should error")
	}
	op2 := &HashBags{OpName: "hash", Buckets: 10, Input: "missing", Output: "h"}
	if err := op2.Run(ws); err == nil {
		t.Error("missing input should error")
	}
}

func TestFill(t *testing.T) {
	ws := NewWorkspace()
	op := &Fill{OpName: "fill", Rows: 2, Cols: 3, Value: 7, Output: "f"}
	if err := op.Run(ws); err != nil {
		t.Fatal(err)
	}
	m, _ := ws.Blob("f")
	if m.Rows != 2 || m.Cols != 3 || m.Data[5] != 7 {
		t.Errorf("Fill = %v", m)
	}
}

func TestSLSOp(t *testing.T) {
	tab := embedding.NewDense(4, 2)
	copy(tab.Data, []float32{1, 1, 2, 2, 3, 3, 4, 4})
	ws := NewWorkspace()
	ws.SetBags("f", []embedding.Bag{{Indices: []int32{0, 3}}, {Indices: []int32{2}}})
	op := &SLSOp{OpName: "sls", Table: tab, InputBags: "f", Output: "pooled"}
	if err := op.Run(ws); err != nil {
		t.Fatal(err)
	}
	m, _ := ws.Blob("pooled")
	if m.Rows != 2 || m.Cols != 2 {
		t.Fatalf("pooled shape %dx%d", m.Rows, m.Cols)
	}
	if m.At(0, 0) != 5 || m.At(1, 0) != 3 {
		t.Errorf("pooled = %v", m.Data)
	}
	if op.Kind() != KindSparse {
		t.Error("SLS kind should be Sparse")
	}
}

func TestConcatOp(t *testing.T) {
	ws := NewWorkspace()
	ws.SetBlob("a", tensor.FromSlice(1, 1, []float32{1}))
	ws.SetBlob("b", tensor.FromSlice(1, 2, []float32{2, 3}))
	op := &ConcatOp{OpName: "cat", Inputs: []string{"a", "b"}, Output: "out"}
	if err := op.Run(ws); err != nil {
		t.Fatal(err)
	}
	m, _ := ws.Blob("out")
	if m.Cols != 3 || m.Data[2] != 3 {
		t.Errorf("concat = %v", m.Data)
	}
}

func TestInteraction(t *testing.T) {
	ws := NewWorkspace()
	ws.SetBlob("e1", tensor.FromSlice(1, 2, []float32{1, 0}))
	ws.SetBlob("e2", tensor.FromSlice(1, 2, []float32{0, 1}))
	ws.SetBlob("bottom", tensor.FromSlice(1, 2, []float32{5, 6}))
	op := &Interaction{OpName: "int", Features: []string{"e1", "e2"}, Passthrough: "bottom", Output: "top_in"}
	if err := op.Run(ws); err != nil {
		t.Fatal(err)
	}
	m, _ := ws.Blob("top_in")
	// bottom (2 cols) + 1 pairwise dot = 3 cols; dot(e1,e2)=0.
	if m.Cols != 3 || m.Data[0] != 5 || m.Data[2] != 0 {
		t.Errorf("interaction out = %v", m.Data)
	}
}

func TestSplitBlob(t *testing.T) {
	ws := NewWorkspace()
	ws.SetBlob("x", tensor.FromSlice(2, 3, []float32{1, 2, 3, 4, 5, 6}))
	op := &SplitBlob{OpName: "split", Input: "x", FromCol: 1, ToCol: 3, Output: "y"}
	if err := op.Run(ws); err != nil {
		t.Fatal(err)
	}
	m, _ := ws.Blob("y")
	if m.Cols != 2 || m.At(0, 0) != 2 || m.At(1, 1) != 6 {
		t.Errorf("split = %v", m.Data)
	}
	bad := &SplitBlob{OpName: "split", Input: "x", FromCol: 2, ToCol: 1, Output: "y"}
	if err := bad.Run(ws); err == nil {
		t.Error("bad range should error")
	}
}

// recordingObserver captures scheduler callbacks for assertions.
type recordingObserver struct {
	ops      []string
	netName  string
	total    time.Duration
	opTime   time.Duration
	finished bool
}

func (r *recordingObserver) OpExecuted(net string, op Op, start time.Time, dur time.Duration) {
	r.ops = append(r.ops, op.Name())
}

func (r *recordingObserver) NetFinished(net string, start time.Time, total, opTime time.Duration) {
	r.netName, r.total, r.opTime, r.finished = net, total, opTime, true
}

func TestNetRunSequentialWithObserver(t *testing.T) {
	ws := NewWorkspace()
	ws.SetBlob("in", tensor.FromSlice(1, 2, []float32{1, 2}))
	net := &Net{NetName: "n", Ops: []Op{
		&FC{OpName: "fc1", W: tensor.FromSlice(2, 2, []float32{1, 0, 0, 1}), Input: "in", Output: "h"},
		&Activation{OpName: "relu", Func: ActReLU, Blob: "h"},
	}}
	obs := &recordingObserver{}
	if err := net.Run(ws, obs); err != nil {
		t.Fatal(err)
	}
	if len(obs.ops) != 2 || obs.ops[0] != "fc1" || obs.ops[1] != "relu" {
		t.Errorf("observed ops = %v", obs.ops)
	}
	if !obs.finished || obs.netName != "n" || obs.total < obs.opTime {
		t.Errorf("NetFinished wrong: %+v", obs)
	}
}

func TestNetRunStopsOnError(t *testing.T) {
	ws := NewWorkspace()
	net := &Net{NetName: "n", Ops: []Op{
		&FC{OpName: "fc1", W: tensor.New(2, 2), Input: "missing", Output: "h"},
		&Fill{OpName: "fill", Rows: 1, Cols: 1, Output: "should-not-run"},
	}}
	if err := net.Run(ws, nil); err == nil {
		t.Fatal("expected error")
	}
	if ws.HasBlob("should-not-run") {
		t.Error("ops after a failure must not run")
	}
}

// asyncOp is a test double for the RPC op: it launches a goroutine and
// registers a future.
type asyncOp struct {
	name  string
	out   string
	delay time.Duration
	fail  bool
}

func (a *asyncOp) Name() string { return a.name }
func (a *asyncOp) Kind() OpKind { return KindRPC }
func (a *asyncOp) Run(ws *Workspace) error {
	f := NewFuture()
	ws.RegisterFuture(a.out, f)
	go func() {
		time.Sleep(a.delay)
		if a.fail {
			f.Complete(nil, fmt.Errorf("%s: remote failure", a.name))
			return
		}
		f.Complete(tensor.FromSlice(1, 1, []float32{42}), nil)
	}()
	return nil
}

func TestNetRunAsyncOpResolvedByConsumer(t *testing.T) {
	ws := NewWorkspace()
	net := &Net{NetName: "n", Ops: []Op{
		&asyncOp{name: "rpc1", out: "remote", delay: time.Millisecond},
		&FC{OpName: "fc", W: tensor.FromSlice(1, 1, []float32{2}), Input: "remote", Output: "out"},
	}}
	if err := net.Run(ws, nil); err != nil {
		t.Fatal(err)
	}
	m, _ := ws.Blob("out")
	if m.Data[0] != 84 {
		t.Errorf("async consumer got %v, want 84", m.Data[0])
	}
}

func TestNetRunAsyncFailurePropagates(t *testing.T) {
	ws := NewWorkspace()
	net := &Net{NetName: "n", Ops: []Op{
		&asyncOp{name: "rpc1", out: "remote", fail: true},
	}}
	if err := net.Run(ws, nil); err == nil || !strings.Contains(err.Error(), "remote failure") {
		t.Errorf("async failure should propagate: %v", err)
	}
	if ws.Pending() != 0 {
		t.Error("futures must be drained after failure")
	}
}

func TestNetRunDrainsAsyncOnSyncError(t *testing.T) {
	ws := NewWorkspace()
	net := &Net{NetName: "n", Ops: []Op{
		&asyncOp{name: "rpc1", out: "remote", delay: 5 * time.Millisecond},
		&FC{OpName: "fc", W: tensor.New(2, 2), Input: "missing", Output: "out"},
	}}
	if err := net.Run(ws, nil); err == nil {
		t.Fatal("expected error")
	}
	if ws.Pending() != 0 {
		t.Error("async futures must be drained on sync failure")
	}
}

func TestOpKindString(t *testing.T) {
	if KindDense.String() != "Dense" || KindRPC.String() != "RPC" {
		t.Error("kind names wrong")
	}
	if OpKind(99).String() != "Unknown" {
		t.Error("unknown kind should render Unknown")
	}
}

// panicOp fails by panicking, as a corrupted-index or storage-fault path
// would.
type panicOp struct{}

func (p *panicOp) Name() string { return "boom" }
func (p *panicOp) Kind() OpKind { return KindSparse }
func (p *panicOp) Run(ws *Workspace) error {
	panic("storage fault")
}

func TestNetRunConvertsPanicsToErrors(t *testing.T) {
	ws := NewWorkspace()
	net := &Net{NetName: "n", Ops: []Op{&panicOp{}}}
	err := net.Run(ws, nil)
	if err == nil || !strings.Contains(err.Error(), "boom") || !strings.Contains(err.Error(), "storage fault") {
		t.Fatalf("panic should surface as an error naming the op: %v", err)
	}
}
