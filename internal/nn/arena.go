package nn

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/tensor"
)

// Workspace arenas give the dense execution path allocation-free steady
// state. A model's compiled op sequence is scanned once for the dense
// blobs whose shapes are statically known up to the batch row count
// (every dense blob in a net shares rows = batch items); each blob gets a
// liveness interval [def op, last use op], and interval-graph coloring
// packs non-overlapping blobs into shared column lanes. At execution an
// Arena backs the whole schedule with one pooled float32 slab: drawing a
// blob is a slice expression, and a batch's entire dense traffic reuses
// the slab of an earlier batch via a sync.Pool.

// BlobSpec declares one schedulable blob: its width and the op-index
// interval during which its storage must stay intact. Def is the index
// of the op that produces it (-1 for blobs materialized before the net
// runs); LastUse is the index of the last op that reads it (use a
// past-the-end index for blobs read after the net finishes).
type BlobSpec struct {
	Name         string
	Cols         int
	Def, LastUse int
}

// lane is one column band of the slab shared by non-overlapping blobs.
type lane struct {
	off, cols int // column offset and width
	freeAt    int // op index after which the lane is free again
}

// BlobSchedule maps blob names to slab placements. Immutable once built;
// shared by every Arena drawn from one pool.
type BlobSchedule struct {
	slots     map[string]laneSlot
	totalCols int
}

type laneSlot struct {
	off, cols int
}

// NewBlobSchedule packs specs into lanes. Two blobs share a lane only
// when their liveness intervals are disjoint even at the endpoints: a
// blob defined at op i never reuses storage still readable at op i, so
// an op can stream from its inputs into its output without aliasing.
// Duplicate names or non-positive widths are rejected as compile bugs.
func NewBlobSchedule(specs []BlobSpec) (*BlobSchedule, error) {
	sorted := make([]BlobSpec, len(specs))
	copy(sorted, specs)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Def < sorted[j].Def })

	s := &BlobSchedule{slots: make(map[string]laneSlot, len(specs))}
	var lanes []*lane
	for _, sp := range sorted {
		if sp.Cols <= 0 {
			return nil, fmt.Errorf("nn: blob %q has width %d", sp.Name, sp.Cols)
		}
		if sp.LastUse < sp.Def {
			return nil, fmt.Errorf("nn: blob %q dies (%d) before it is defined (%d)", sp.Name, sp.LastUse, sp.Def)
		}
		if _, dup := s.slots[sp.Name]; dup {
			return nil, fmt.Errorf("nn: duplicate schedule entry for blob %q", sp.Name)
		}
		// Best fit among free lanes wide enough, else open a new lane;
		// offsets are fixed at creation so earlier placements never move.
		var best *lane
		for _, ln := range lanes {
			if ln.freeAt >= sp.Def || ln.cols < sp.Cols {
				continue
			}
			if best == nil || ln.cols < best.cols {
				best = ln
			}
		}
		if best == nil {
			best = &lane{off: s.totalCols, cols: sp.Cols, freeAt: -1}
			lanes = append(lanes, best)
			s.totalCols += sp.Cols
		}
		best.freeAt = sp.LastUse
		s.slots[sp.Name] = laneSlot{off: best.off, cols: sp.Cols}
	}
	return s, nil
}

// Slots reports how many blobs the schedule manages (for tests).
func (s *BlobSchedule) Slots() int { return len(s.slots) }

// TotalCols reports the packed slab width in columns — the arena
// footprint is TotalCols × rows floats, versus Σ blob widths × rows
// without liveness reuse.
func (s *BlobSchedule) TotalCols() int { return s.totalCols }

// Arena backs one batch execution's scheduled blobs with a single slab.
// Not safe for concurrent use; each batch draws its own from the pool.
type Arena struct {
	sched *BlobSchedule
	rows  int
	slab  []float32
}

// Blob returns the scheduled backing matrix for name, or nil when the
// name is unscheduled or the requested shape disagrees with the schedule
// — callers fall back to a fresh allocation, so a shape drift degrades
// to the unpooled path instead of corrupting a neighbor. The returned
// matrix holds stale bytes from prior draws; every scheduled producer
// fully overwrites its output.
func (a *Arena) Blob(name string, rows, cols int) *tensor.Matrix {
	if a == nil {
		return nil
	}
	slot, ok := a.sched.slots[name]
	if !ok || rows != a.rows || cols != slot.cols {
		return nil
	}
	base := slot.off * a.rows
	return tensor.FromSlice(rows, cols, a.slab[base:base+rows*cols])
}

// Rows reports the batch row count the arena is sized for.
func (a *Arena) Rows() int { return a.rows }

// ArenaPool recycles arenas for one compiled program. Get sizes (or
// grows) a pooled slab for the batch's row count; Put returns it. After
// warmup every batch size seen in steady state executes without dense
// allocations.
type ArenaPool struct {
	sched *BlobSchedule
	pool  sync.Pool
}

// NewArenaPool builds a pool over a schedule; nil schedule gives a nil
// pool, and every method on a nil pool is a safe no-op returning nil —
// the engine runs unpooled.
func NewArenaPool(sched *BlobSchedule) *ArenaPool {
	if sched == nil {
		return nil
	}
	return &ArenaPool{sched: sched}
}

// Get returns an arena sized for rows, reusing a pooled slab when large
// enough.
func (p *ArenaPool) Get(rows int) *Arena {
	if p == nil {
		return nil
	}
	need := rows * p.sched.totalCols
	a, _ := p.pool.Get().(*Arena)
	if a == nil {
		a = &Arena{sched: p.sched}
	}
	if cap(a.slab) < need {
		a.slab = make([]float32, need)
	}
	a.slab = a.slab[:need]
	a.rows = rows
	return a
}

// Put recycles an arena. The caller must not retain any matrix drawn
// from it past Put.
func (p *ArenaPool) Put(a *Arena) {
	if p == nil || a == nil {
		return
	}
	p.pool.Put(a)
}
