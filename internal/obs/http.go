package obs

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Handler serves a registry (and optional tracer) over HTTP:
//
//	/metrics       text snapshot, one metric per line
//	/metrics.json  JSON snapshot (schema validated by cmd/metricscheck)
//	/traces        live-trace summaries (404 when tracing is disabled)
//	/debug/pprof/  the standard runtime profiles
func Handler(reg *Registry, tr *Tracer) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_ = reg.Snapshot().WriteText(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		b, err := reg.Snapshot().MarshalJSON()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Write(b)
	})
	mux.HandleFunc("/traces", func(w http.ResponseWriter, r *http.Request) {
		if tr == nil {
			http.Error(w, "tracing disabled (-trace-sample 0)", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_ = tr.WriteText(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve starts the telemetry HTTP endpoint on addr, returning the bound
// address and a shutdown func.
func Serve(addr string, reg *Registry, tr *Tracer) (string, func(), error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: Handler(reg, tr)}
	go srv.Serve(ln)
	return ln.Addr().String(), func() { srv.Close() }, nil
}

// StartLogger emits a snapshot diff to w every interval until the
// returned stop func is called — the flight-recorder view for long
// drmserve runs.
func StartLogger(reg *Registry, w io.Writer, every time.Duration) (stop func()) {
	done := make(chan struct{})
	go func() {
		tick := time.NewTicker(every)
		defer tick.Stop()
		prev := reg.Snapshot()
		for {
			select {
			case <-done:
				return
			case <-tick.C:
				cur := reg.Snapshot()
				d := cur.Diff(prev)
				fmt.Fprintf(w, "obs snapshot %s (window %v)\n",
					cur.At.Format(time.RFC3339), cur.At.Sub(prev.At).Round(time.Millisecond))
				_ = d.WriteText(w)
				prev = cur
			}
		}
	}()
	return func() { close(done) }
}
