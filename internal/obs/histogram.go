package obs

import (
	"math/bits"
	"sync/atomic"
)

// Histogram is a streaming log-bucketed histogram for latency-like
// non-negative integer values (nanoseconds by convention; metric names
// carry a _ns suffix). Observe is a single atomic add into a bucket
// picked from the value's bit length: four sub-buckets per octave, so
// any reconstructed quantile is within 1/8 relative error of the true
// value — tighter than the run-to-run noise of anything it measures.
//
// Buckets are plain atomics with no locks; snapshots (HistSnapshot) are
// mergeable and subtractable, sharing quantile semantics with the
// offline internal/stats.Histogram.
type Histogram struct {
	buckets [histBuckets]atomic.Int64
	sum     atomic.Int64
}

// histBuckets covers values 0..2^63-1 at four buckets per octave:
// values 0..3 map to buckets 0..3, and a value with bit length l ≥ 3
// maps to bucket 4*(l-2) + (two bits below the leading bit). Bit length
// 63 tops out at bucket 247.
const histBuckets = 248

// histBucket returns the bucket index for v (negatives clamp to 0).
func histBucket(v int64) int {
	if v < 4 {
		if v < 0 {
			return 0
		}
		return int(v)
	}
	l := bits.Len64(uint64(v))
	return 4*(l-2) + int((uint64(v)>>(l-3))&3)
}

// histBucketBounds returns bucket i's value range [lo, hi).
func histBucketBounds(i int) (lo, hi int64) {
	if i < 4 {
		return int64(i), int64(i) + 1
	}
	l := i/4 + 2
	f := int64(i % 4)
	width := int64(1) << (l - 3)
	lo = (4 + f) << (l - 3)
	return lo, lo + width
}

// Observe folds one value in. Safe on a nil receiver (no-op).
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.buckets[histBucket(v)].Add(1)
	h.sum.Add(v)
}

// Snapshot copies the histogram's current state. Concurrent Observes
// may straddle the copy; each one lands wholly in this snapshot or the
// next.
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	if h == nil {
		return s
	}
	s.Counts = make([]int64, histBuckets)
	for i := range h.buckets {
		n := h.buckets[i].Load()
		s.Counts[i] = n
		s.Count += n
	}
	s.Sum = h.sum.Load()
	return s
}

// HistSnapshot is a point-in-time copy of a Histogram, mergeable across
// shards and subtractable across time.
type HistSnapshot struct {
	Counts []int64
	Count  int64
	Sum    int64
}

// Merge folds another snapshot in (e.g. the same metric across
// replicas).
func (s *HistSnapshot) Merge(o HistSnapshot) {
	if len(o.Counts) == 0 {
		return
	}
	if len(s.Counts) == 0 {
		s.Counts = make([]int64, histBuckets)
	}
	for i := range o.Counts {
		s.Counts[i] += o.Counts[i]
	}
	s.Count += o.Count
	s.Sum += o.Sum
}

// Sub subtracts an earlier snapshot of the same metric, leaving the
// window between the two. Negative residues (impossible for a monotonic
// source) clamp to zero.
func (s *HistSnapshot) Sub(prev HistSnapshot) {
	for i := range s.Counts {
		var p int64
		if i < len(prev.Counts) {
			p = prev.Counts[i]
		}
		s.Counts[i] -= p
		if s.Counts[i] < 0 {
			s.Counts[i] = 0
		}
	}
	s.Count -= prev.Count
	if s.Count < 0 {
		s.Count = 0
	}
	s.Sum -= prev.Sum
	if s.Sum < 0 {
		s.Sum = 0
	}
}

// Mean returns the average observed value (0 when empty).
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Quantile reconstructs the q-quantile (q in [0,1]) by walking the
// cumulative bucket counts and interpolating linearly inside the
// landing bucket. Returns 0 when the snapshot is empty.
func (s HistSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Counts) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var cum float64
	for i, n := range s.Counts {
		if n == 0 {
			continue
		}
		lo, hi := histBucketBounds(i)
		next := cum + float64(n)
		if rank <= next {
			frac := 0.0
			if n > 0 {
				frac = (rank - cum) / float64(n)
			}
			return float64(lo) + frac*float64(hi-lo)
		}
		cum = next
	}
	// Ran off the end (q == 1): the upper bound of the last occupied
	// bucket is the max estimate.
	return s.Max()
}

// Max returns the upper bound of the highest occupied bucket — an
// estimate of the largest observed value, within one sub-bucket width.
func (s HistSnapshot) Max() float64 {
	for i := len(s.Counts) - 1; i >= 0; i-- {
		if s.Counts[i] > 0 {
			_, hi := histBucketBounds(i)
			return float64(hi)
		}
	}
	return 0
}
