// Package obs is the unified live-telemetry surface for the serving
// stack: a lock-cheap metrics registry (sharded atomic counters, gauges,
// and streaming log-bucketed latency histograms), snapshot/diff
// extraction with p50/p95/p99 quantiles, and sampled live request
// tracing over the cross-layer span recorder (tracer.go).
//
// The paper's entire argument rests on latency-stack attribution
// (Figs. 8–9); obs makes that attribution available while the system
// runs instead of only from offline span dumps. Design constraints:
//
//   - Hot-path writes are a single atomic add (counters stripe across
//     cache lines to dodge contention; histograms index a bucket from
//     the value's bit length — no floating point, no locks).
//   - Every deployment gets its own Registry: experiments boot many
//     clusters per process, and their metrics must not bleed together.
//   - Reads (Snapshot) are rare and may be mildly inconsistent across
//     metrics — this is telemetry, not accounting.
//
// All metric handles are nil-safe: a nil *Counter/*Gauge/*Histogram
// no-ops on write, and a nil (or Discard()) *Registry hands out nil
// handles — so instrumented code needs no "is telemetry on?" branches
// beyond the nil check the method receiver itself performs.
package obs

import (
	"math/rand/v2"
	"sort"
	"sync"
	"sync/atomic"
)

// counterStripes is the number of cache-line-padded cells a Counter
// spreads adds across. Power of two so the stripe pick is a mask.
const counterStripes = 8

// counterCell is one padded stripe: 8 bytes of counter plus padding to
// keep neighboring stripes off the same cache line.
type counterCell struct {
	n atomic.Int64
	_ [56]byte
}

// Counter is a monotonic counter. Adds stripe across cells keyed by a
// per-thread fast random so concurrent writers rarely share a line.
type Counter struct {
	cells [counterStripes]counterCell
}

// Add increments the counter by n. Safe on a nil receiver (no-op).
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.cells[rand.Uint32()&(counterStripes-1)].n.Add(n)
}

// Inc increments the counter by one. Safe on a nil receiver.
func (c *Counter) Inc() { c.Add(1) }

// Load sums the stripes. Safe on a nil receiver (returns 0).
func (c *Counter) Load() int64 {
	if c == nil {
		return 0
	}
	var n int64
	for i := range c.cells {
		n += c.cells[i].n.Load()
	}
	return n
}

// Gauge is a last-value (or running-maximum) metric.
type Gauge struct {
	v atomic.Int64
}

// Set stores v. Safe on a nil receiver.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adjusts the gauge by delta. Safe on a nil receiver.
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// SetMax raises the gauge to v if v is larger (CAS loop). Safe on a nil
// receiver.
func (g *Gauge) SetMax(v int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Load returns the current value. Safe on a nil receiver (returns 0).
func (g *Gauge) Load() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Registry owns one deployment's metrics, keyed by dotted names
// ("frontend.batches", "sparse1.tier.hits"). Handles are created on
// first reference and live for the registry's lifetime; probes are
// evaluated only at Snapshot time, so pull-style sources (health
// snapshots, tier stats) cost nothing on the serving path.
type Registry struct {
	discard bool

	// root/labels make this a labeled view (see Labeled): every handle
	// and probe registration is delegated to root with "{labels}"
	// appended to the metric name. A plain registry has root == nil.
	root   *Registry
	labels string

	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	probes   []probeEntry
	groups   []func(emit func(name string, v int64))
}

type probeEntry struct {
	name string
	fn   func() int64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

var discardRegistry = &Registry{discard: true}

// Discard returns a registry that hands out nil handles and drops
// probes: the explicit "telemetry off" registry the overhead benchmark's
// baseline arm uses.
func Discard() *Registry { return discardRegistry }

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry, for callers with no
// deployment registry in hand. Library code should prefer an injected
// registry — experiments boot many deployments per process.
func Default() *Registry { return defaultRegistry }

// Discarding reports whether this registry drops everything.
func (r *Registry) Discarding() bool { return r == nil || r.discard }

// Labeled returns a view of this registry that appends "{labels}" to
// every metric name it hands out ("engine.requests" becomes
// "engine.requests{model=DRM1}"), so co-located deployments — the
// multi-model fleet hosts one cluster per tenant in one process — share
// one exported endpoint without their metrics bleeding together.
// Handles and probes live in the underlying registry; nesting composes
// ("a=1" then "b=2" yields "{a=1,b=2}"). Snapshot on a view captures
// the whole underlying registry. A nil or Discard registry returns
// itself, preserving the nil-handle contract.
func (r *Registry) Labeled(labels string) *Registry {
	if r.Discarding() || labels == "" {
		return r
	}
	root := r
	if r.root != nil {
		root = r.root
		labels = r.labels + "," + labels
	}
	return &Registry{root: root, labels: labels}
}

// base resolves the registry that owns the metric maps.
func (r *Registry) base() *Registry {
	if r.root != nil {
		return r.root
	}
	return r
}

// scope rewrites name with this view's labels, if any.
func (r *Registry) scope(name string) string {
	if r.root == nil {
		return name
	}
	return name + "{" + r.labels + "}"
}

// Counter returns the named counter, creating it on first use. Returns
// nil (a no-op handle) on a nil or Discard registry.
func (r *Registry) Counter(name string) *Counter {
	if r.Discarding() {
		return nil
	}
	b, name := r.base(), r.scope(name)
	b.mu.Lock()
	defer b.mu.Unlock()
	c := b.counters[name]
	if c == nil {
		c = &Counter{}
		b.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. Returns nil
// (a no-op handle) on a nil or Discard registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r.Discarding() {
		return nil
	}
	b, name := r.base(), r.scope(name)
	b.mu.Lock()
	defer b.mu.Unlock()
	g := b.gauges[name]
	if g == nil {
		g = &Gauge{}
		b.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
// Returns nil (a no-op handle) on a nil or Discard registry.
func (r *Registry) Histogram(name string) *Histogram {
	if r.Discarding() {
		return nil
	}
	b, name := r.base(), r.scope(name)
	b.mu.Lock()
	defer b.mu.Unlock()
	h := b.hists[name]
	if h == nil {
		h = &Histogram{}
		b.hists[name] = h
	}
	return h
}

// RegisterProbe adds a pull-style gauge evaluated at Snapshot time.
// No-op on a nil or Discard registry.
func (r *Registry) RegisterProbe(name string, fn func() int64) {
	if r.Discarding() || fn == nil {
		return
	}
	b, name := r.base(), r.scope(name)
	b.mu.Lock()
	defer b.mu.Unlock()
	b.probes = append(b.probes, probeEntry{name: name, fn: fn})
}

// RegisterProbeGroup adds a pull-style source that emits several gauges
// per Snapshot from one underlying read (one mutex acquisition for a
// whole health or tier snapshot instead of one per metric). No-op on a
// nil or Discard registry.
func (r *Registry) RegisterProbeGroup(fn func(emit func(name string, v int64))) {
	if r.Discarding() || fn == nil {
		return
	}
	b := r.base()
	if b != r {
		// Rewrite every name the group emits with this view's labels.
		view, inner := r, fn
		fn = func(emit func(name string, v int64)) {
			inner(func(name string, v int64) { emit(view.scope(name), v) })
		}
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.groups = append(b.groups, fn)
}

// sortedNames returns map keys in deterministic order.
func sortedNames[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
