package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// Snapshot is a point-in-time copy of a registry: counters, gauges
// (probes included), and histogram states. Diff turns two snapshots
// into a window; the text and JSON renderings feed the /metrics
// endpoint, the periodic logger, and the experiment reports.
type Snapshot struct {
	At       time.Time
	Counters map[string]int64
	Gauges   map[string]int64
	Hists    map[string]HistSnapshot
}

// Snapshot captures the registry's current state. Probes and probe
// groups are evaluated here — outside the registry lock, so a probe may
// itself take locks (health trackers, tier stores) without ordering
// hazards against metric creation.
func (r *Registry) Snapshot() Snapshot {
	if r != nil && r.root != nil {
		// A labeled view owns no metrics; snapshot the registry under it.
		return r.root.Snapshot()
	}
	s := Snapshot{
		At:       time.Now(),
		Counters: make(map[string]int64),
		Gauges:   make(map[string]int64),
		Hists:    make(map[string]HistSnapshot),
	}
	if r.Discarding() {
		return s
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	probes := append([]probeEntry(nil), r.probes...)
	groups := make([]func(func(string, int64)), len(r.groups))
	copy(groups, r.groups)
	r.mu.Unlock()

	for k, c := range counters {
		s.Counters[k] = c.Load()
	}
	for k, g := range gauges {
		s.Gauges[k] = g.Load()
	}
	for k, h := range hists {
		s.Hists[k] = h.Snapshot()
	}
	for _, p := range probes {
		s.Gauges[p.name] = p.fn()
	}
	emit := func(name string, v int64) { s.Gauges[name] = v }
	for _, g := range groups {
		g(emit)
	}
	return s
}

// Diff returns the window between prev and s: counters and histograms
// subtract (clamped at zero), gauges keep their current values — a
// gauge is a level, not a flow.
func (s Snapshot) Diff(prev Snapshot) Snapshot {
	out := Snapshot{
		At:       s.At,
		Counters: make(map[string]int64, len(s.Counters)),
		Gauges:   make(map[string]int64, len(s.Gauges)),
		Hists:    make(map[string]HistSnapshot, len(s.Hists)),
	}
	for k, v := range s.Counters {
		d := v - prev.Counters[k]
		if d < 0 {
			d = 0
		}
		out.Counters[k] = d
	}
	for k, v := range s.Gauges {
		out.Gauges[k] = v
	}
	for k, h := range s.Hists {
		cp := HistSnapshot{Counts: append([]int64(nil), h.Counts...), Count: h.Count, Sum: h.Sum}
		if p, ok := prev.Hists[k]; ok {
			cp.Sub(p)
		}
		out.Hists[k] = cp
	}
	return out
}

// Counter returns a counter's value (0 when absent).
func (s Snapshot) Counter(name string) int64 { return s.Counters[name] }

// Gauge returns a gauge or probe value (0 when absent).
func (s Snapshot) Gauge(name string) int64 { return s.Gauges[name] }

// Hist returns a histogram's snapshot.
func (s Snapshot) Hist(name string) (HistSnapshot, bool) {
	h, ok := s.Hists[name]
	return h, ok
}

// Quantile returns a histogram's q-quantile (0 when absent or empty).
func (s Snapshot) Quantile(name string, q float64) float64 {
	return s.Hists[name].Quantile(q)
}

// WriteText renders the snapshot as sorted plain text, one metric per
// line — the /metrics endpoint and the periodic logger's format.
func (s Snapshot) WriteText(w io.Writer) error {
	for _, k := range sortedNames(s.Counters) {
		if _, err := fmt.Fprintf(w, "counter %s %d\n", k, s.Counters[k]); err != nil {
			return err
		}
	}
	for _, k := range sortedNames(s.Gauges) {
		if _, err := fmt.Fprintf(w, "gauge %s %d\n", k, s.Gauges[k]); err != nil {
			return err
		}
	}
	for _, k := range sortedNames(s.Hists) {
		h := s.Hists[k]
		if _, err := fmt.Fprintf(w, "hist %s count=%d mean=%.0f p50=%.0f p95=%.0f p99=%.0f max=%.0f\n",
			k, h.Count, h.Mean(), h.Quantile(0.50), h.Quantile(0.95), h.Quantile(0.99), h.Max()); err != nil {
			return err
		}
	}
	return nil
}

// histJSON is the wire form of one histogram in the JSON snapshot.
type histJSON struct {
	Count int64   `json:"count"`
	Sum   int64   `json:"sum"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
	Max   float64 `json:"max"`
}

// snapshotJSON is the schema of /metrics.json, validated by
// cmd/metricscheck in CI.
type snapshotJSON struct {
	At         string              `json:"at"`
	Counters   map[string]int64    `json:"counters"`
	Gauges     map[string]int64    `json:"gauges"`
	Histograms map[string]histJSON `json:"histograms"`
}

// MarshalJSON implements json.Marshaler with the documented schema:
// {"at": ..., "counters": {...}, "gauges": {...}, "histograms":
// {name: {count, sum, mean, p50, p95, p99, max}}}.
func (s Snapshot) MarshalJSON() ([]byte, error) {
	out := snapshotJSON{
		At:         s.At.Format(time.RFC3339Nano),
		Counters:   s.Counters,
		Gauges:     s.Gauges,
		Histograms: make(map[string]histJSON, len(s.Hists)),
	}
	if out.Counters == nil {
		out.Counters = map[string]int64{}
	}
	if out.Gauges == nil {
		out.Gauges = map[string]int64{}
	}
	for k, h := range s.Hists {
		out.Histograms[k] = histJSON{
			Count: h.Count, Sum: h.Sum, Mean: h.Mean(),
			P50: h.Quantile(0.50), P95: h.Quantile(0.95), P99: h.Quantile(0.99), Max: h.Max(),
		}
	}
	return json.Marshal(out)
}
