package obs

import (
	"encoding/json"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/trace"
)

func TestHistBucketRoundTrip(t *testing.T) {
	// Every representable value must land in a bucket whose bounds
	// contain it, and bucket indices must be monotone in the value.
	vals := []int64{0, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 100, 1023, 1024,
		1 << 20, (1 << 20) + 12345, 1 << 40, 1<<62 + 17}
	prev := -1
	for _, v := range vals {
		i := histBucket(v)
		if i < 0 || i >= histBuckets {
			t.Fatalf("histBucket(%d) = %d out of range", v, i)
		}
		if i < prev {
			t.Errorf("histBucket not monotone at %d: %d < %d", v, i, prev)
		}
		prev = i
		lo, hi := histBucketBounds(i)
		if v < lo || v >= hi {
			t.Errorf("value %d landed in bucket %d [%d,%d)", v, i, lo, hi)
		}
	}
	if histBucket(-5) != 0 {
		t.Error("negative values must clamp to bucket 0")
	}
	if b := histBucket(1<<63 - 1); b >= histBuckets {
		t.Errorf("max int64 bucket %d exceeds table", b)
	}
}

func TestHistBucketBoundsContiguous(t *testing.T) {
	for i := 0; i < histBuckets-1; i++ {
		_, hi := histBucketBounds(i)
		lo, _ := histBucketBounds(i + 1)
		if hi != lo {
			t.Fatalf("gap between bucket %d (hi=%d) and %d (lo=%d)", i, hi, i+1, lo)
		}
	}
}

func TestHistogramRelativeError(t *testing.T) {
	// The reconstruction contract: any quantile lands inside the value's
	// bucket, whose width is at most 1/4 of the value (for v ≥ 4; below
	// that buckets have width 1) — so the midpoint is within 1/8 relative
	// error of any value in the bucket.
	for _, v := range []int64{1, 9, 137, 4096, 99999, 1 << 30} {
		var h Histogram
		h.Observe(v)
		got := h.Snapshot().Quantile(0.5)
		lo, hi := histBucketBounds(histBucket(v))
		if got < float64(lo) || got > float64(hi) {
			t.Errorf("Quantile after Observe(%d) = %.1f outside bucket [%d,%d]", v, got, lo, hi)
		}
		if width := hi - lo; v >= 4 && width > v/4 {
			t.Errorf("bucket width %d for value %d exceeds v/4", width, v)
		}
	}
}

func TestHistQuantileMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var h Histogram
	for i := 0; i < 5000; i++ {
		h.Observe(rng.Int63n(1_000_000))
	}
	s := h.Snapshot()
	prev := -1.0
	for q := 0.0; q <= 1.0; q += 0.01 {
		v := s.Quantile(q)
		if v < prev {
			t.Fatalf("quantile not monotone: q=%.2f gives %f < %f", q, v, prev)
		}
		prev = v
	}
	if s.Quantile(1) > s.Max() {
		t.Error("q=1 exceeds Max")
	}
}

func TestHistSnapshotMergeSub(t *testing.T) {
	var a, b Histogram
	for i := int64(1); i <= 100; i++ {
		a.Observe(i * 10)
		b.Observe(i * 1000)
	}
	sa, sb := a.Snapshot(), b.Snapshot()
	merged := sa
	merged.Counts = append([]int64(nil), sa.Counts...)
	merged.Merge(sb)
	if merged.Count != 200 || merged.Sum != sa.Sum+sb.Sum {
		t.Fatalf("merge count=%d sum=%d", merged.Count, merged.Sum)
	}

	// A combined histogram fed both streams must agree exactly: the
	// bucket layout is deterministic, so merge ≡ combined.
	var c Histogram
	for i := int64(1); i <= 100; i++ {
		c.Observe(i * 10)
		c.Observe(i * 1000)
	}
	sc := c.Snapshot()
	for i := range sc.Counts {
		if sc.Counts[i] != merged.Counts[i] {
			t.Fatalf("bucket %d: merged=%d combined=%d", i, merged.Counts[i], sc.Counts[i])
		}
	}

	// Sub recovers the second stream's window.
	win := merged
	win.Counts = append([]int64(nil), merged.Counts...)
	win.Sub(sa)
	if win.Count != sb.Count || win.Sum != sb.Sum {
		t.Errorf("sub window count=%d sum=%d, want %d/%d", win.Count, win.Sum, sb.Count, sb.Sum)
	}
}

func TestCounterConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Load(); got != 8000 {
		t.Errorf("counter = %d, want 8000", got)
	}
	if r.Counter("x") != c {
		t.Error("same name must return same handle")
	}
}

func TestGaugeSetMax(t *testing.T) {
	var g Gauge
	g.SetMax(5)
	g.SetMax(3)
	g.SetMax(9)
	if g.Load() != 9 {
		t.Errorf("gauge = %d, want 9", g.Load())
	}
}

func TestDiscardRegistryHandsOutNilHandles(t *testing.T) {
	for _, r := range []*Registry{nil, Discard()} {
		if !r.Discarding() {
			t.Fatal("registry should be discarding")
		}
		// All of these must be no-ops, not panics.
		r.Counter("a").Add(1)
		r.Gauge("b").Set(2)
		r.Histogram("c").Observe(3)
		r.RegisterProbe("d", func() int64 { return 4 })
		r.RegisterProbeGroup(func(emit func(string, int64)) { emit("e", 5) })
		s := r.Snapshot()
		if len(s.Counters)+len(s.Gauges)+len(s.Hists) != 0 {
			t.Error("discard registry produced a non-empty snapshot")
		}
	}
}

func TestSnapshotDiffAndProbes(t *testing.T) {
	r := NewRegistry()
	r.Counter("reqs").Add(10)
	r.Gauge("depth").Set(3)
	r.Histogram("lat_ns").Observe(1000)
	r.RegisterProbe("probe.v", func() int64 { return 42 })
	r.RegisterProbeGroup(func(emit func(string, int64)) {
		emit("grp.a", 1)
		emit("grp.b", 2)
	})

	s1 := r.Snapshot()
	if s1.Counter("reqs") != 10 || s1.Gauge("depth") != 3 ||
		s1.Gauge("probe.v") != 42 || s1.Gauge("grp.a") != 1 || s1.Gauge("grp.b") != 2 {
		t.Fatalf("snapshot values wrong: %+v", s1)
	}
	r.Counter("reqs").Add(5)
	r.Histogram("lat_ns").Observe(2000)
	s2 := r.Snapshot()
	d := s2.Diff(s1)
	if d.Counter("reqs") != 5 {
		t.Errorf("diff counter = %d, want 5", d.Counter("reqs"))
	}
	if h, _ := d.Hist("lat_ns"); h.Count != 1 {
		t.Errorf("diff hist count = %d, want 1", h.Count)
	}
	if d.Gauge("depth") != 3 {
		t.Error("gauges must keep current value in a diff")
	}
}

func TestSnapshotJSONSchema(t *testing.T) {
	r := NewRegistry()
	r.Counter("a.b").Add(7)
	r.Gauge("g").Set(-2)
	r.Histogram("h_ns").Observe(123456)
	b, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		At         string           `json:"at"`
		Counters   map[string]int64 `json:"counters"`
		Gauges     map[string]int64 `json:"gauges"`
		Histograms map[string]struct {
			Count int64   `json:"count"`
			Sum   int64   `json:"sum"`
			Mean  float64 `json:"mean"`
			P50   float64 `json:"p50"`
			P95   float64 `json:"p95"`
			P99   float64 `json:"p99"`
			Max   float64 `json:"max"`
		} `json:"histograms"`
	}
	if err := json.Unmarshal(b, &decoded); err != nil {
		t.Fatalf("schema mismatch: %v\n%s", err, b)
	}
	if _, err := time.Parse(time.RFC3339Nano, decoded.At); err != nil {
		t.Errorf("at field not RFC3339Nano: %v", err)
	}
	if decoded.Counters["a.b"] != 7 || decoded.Gauges["g"] != -2 {
		t.Errorf("decoded values wrong: %+v", decoded)
	}
	h := decoded.Histograms["h_ns"]
	if h.Count != 1 || h.Sum != 123456 || h.P50 <= 0 || h.P99 < h.P50 || h.Max < h.P99 {
		t.Errorf("histogram stats wrong: %+v", h)
	}
}

func TestSnapshotWriteText(t *testing.T) {
	r := NewRegistry()
	r.Counter("z").Inc()
	r.Counter("a").Inc()
	r.Gauge("g").Set(1)
	r.Histogram("h").Observe(5)
	var sb strings.Builder
	if err := r.Snapshot().WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "counter a 1") || !strings.Contains(out, "gauge g 1") ||
		!strings.Contains(out, "hist h count=1") {
		t.Errorf("text rendering wrong:\n%s", out)
	}
	if strings.Index(out, "counter a") > strings.Index(out, "counter z") {
		t.Error("counters not sorted")
	}
}

func TestTracerSampling(t *testing.T) {
	r := NewRegistry()
	tr := NewTracer(r, TracerConfig{SampleEvery: 16})
	if tr.Sampled(0) {
		t.Error("trace id 0 must never sample")
	}
	if !tr.Sampled(1) || !tr.Sampled(17) {
		t.Error("ids 1 and 17 should sample at every=16")
	}
	if tr.Sampled(2) || tr.Sampled(16) {
		t.Error("ids 2 and 16 should not sample at every=16")
	}
	all := NewTracer(r, TracerConfig{SampleEvery: 1})
	for id := uint64(1); id < 10; id++ {
		if !all.Sampled(id) {
			t.Errorf("every=1 must sample id %d", id)
		}
	}
	off := NewTracer(r, TracerConfig{SampleEvery: 0})
	if off.Sampled(1) {
		t.Error("every=0 must disable sampling")
	}
}

// TestNilTracerSafe pins the handle contract: a nil *Tracer (tracing
// disabled) must absorb every exported call without panicking, the same
// way nil Counter/Gauge handles do.
func TestNilTracerSafe(t *testing.T) {
	var tr *Tracer
	if tr.Sampled(1) {
		t.Error("nil tracer must not sample")
	}
	tr.ConsumeSpan(trace.Span{TraceID: 1})
	tr.Finish(1, time.Millisecond, true)
	if s := tr.Summaries(); s != nil {
		t.Errorf("nil tracer Summaries = %v, want nil", s)
	}
	var sb strings.Builder
	if err := tr.WriteText(&sb); err != nil || sb.Len() != 0 {
		t.Errorf("nil tracer WriteText = %v, wrote %q", err, sb.String())
	}
}

func TestTracerFinishProducesBreakdown(t *testing.T) {
	r := NewRegistry()
	tr := NewTracer(r, TracerConfig{SampleEvery: 1})
	rec := trace.NewRecorder("main", 64)
	rec.SetSink(tr)
	ms := func(d int) time.Duration { return time.Duration(d) * time.Millisecond }
	rec.Record(trace.Span{TraceID: 1, Layer: trace.LayerOp, Kind: "Dense", Net: "net1", Dur: ms(8)})
	rec.Record(trace.Span{TraceID: 1, Layer: trace.LayerSerDe, Dur: ms(2)})
	// No main request span recorded: Finish must synthesize it from e2e.
	tr.Finish(1, ms(15), false)

	sums := tr.Summaries()
	if len(sums) != 1 {
		t.Fatalf("got %d summaries", len(sums))
	}
	s := sums[0]
	if !s.HasBreakdown || s.E2E != ms(15) || s.Spans != 2 {
		t.Fatalf("summary = %+v", s)
	}
	if s.Breakdown.DenseOps != ms(8) || s.Breakdown.MainSerDe != ms(2) || s.Breakdown.E2E != ms(15) {
		t.Errorf("breakdown = %+v", s.Breakdown)
	}
	snap := r.Snapshot()
	if snap.Counter("trace.sampled") != 1 || snap.Counter("trace.finished") != 1 {
		t.Errorf("tracer counters: %+v", snap.Counters)
	}
}

func TestTracerDeadlineMissOnly(t *testing.T) {
	r := NewRegistry()
	tr := NewTracer(r, TracerConfig{SampleEvery: 1000, OnDeadlineMiss: true})
	tr.Finish(2, time.Millisecond, true)  // unsampled, missed → summary
	tr.Finish(3, time.Millisecond, false) // unsampled, ok → dropped
	sums := tr.Summaries()
	if len(sums) != 1 || sums[0].TraceID != 2 || !sums[0].DeadlineMiss {
		t.Fatalf("summaries = %+v", sums)
	}
	if r.Snapshot().Counter("trace.missed") != 1 {
		t.Error("trace.missed not counted")
	}
}

func TestTracerEviction(t *testing.T) {
	r := NewRegistry()
	tr := NewTracer(r, TracerConfig{SampleEvery: 1, MaxPending: 2})
	for id := uint64(1); id <= 4; id++ {
		tr.ConsumeSpan(trace.Span{TraceID: id, Layer: trace.LayerOp})
	}
	// ids 1 and 2 must have been evicted to admit 3 and 4.
	if got := r.Snapshot().Counter("trace.evicted"); got != 2 {
		t.Fatalf("evicted = %d, want 2", got)
	}
	var evicted []uint64
	for _, s := range tr.Summaries() {
		if s.Evicted {
			evicted = append(evicted, s.TraceID)
		}
	}
	if len(evicted) != 2 || evicted[0] != 1 || evicted[1] != 2 {
		t.Errorf("evicted ids = %v, want [1 2]", evicted)
	}
	// The still-pending traces finish normally.
	tr.Finish(3, time.Millisecond, false)
	if got := r.Snapshot().Counter("trace.finished"); got != 1 {
		t.Errorf("finished = %d", got)
	}
}

func TestTracerSpanOverflow(t *testing.T) {
	r := NewRegistry()
	tr := NewTracer(r, TracerConfig{SampleEvery: 1, MaxSpans: 3})
	for i := 0; i < 10; i++ {
		tr.ConsumeSpan(trace.Span{TraceID: 1, Layer: trace.LayerOp})
	}
	if got := r.Snapshot().Counter("trace.span_overflow"); got != 7 {
		t.Errorf("overflow = %d, want 7", got)
	}
	tr.Finish(1, time.Millisecond, false)
	if s := tr.Summaries()[0]; s.Spans != 3 {
		t.Errorf("buffered spans = %d, want 3", s.Spans)
	}
}

func TestTracerNilSafe(t *testing.T) {
	var tr *Tracer
	tr.Finish(1, time.Millisecond, true) // must not panic
}

func TestSummariesRingOrder(t *testing.T) {
	r := NewRegistry()
	tr := NewTracer(r, TracerConfig{SampleEvery: 1000, OnDeadlineMiss: true, MaxSummaries: 3})
	for id := uint64(2); id <= 6; id++ { // ids chosen unsampled (every=1000)
		tr.Finish(id, time.Duration(id), true)
	}
	sums := tr.Summaries()
	if len(sums) != 3 {
		t.Fatalf("ring holds %d, want 3", len(sums))
	}
	for i, want := range []uint64{4, 5, 6} {
		if sums[i].TraceID != want {
			t.Errorf("ring[%d] = %d, want %d (oldest first)", i, sums[i].TraceID, want)
		}
	}
}

func BenchmarkCounterAdd(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("bench")
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

func BenchmarkCounterAddDiscard(b *testing.B) {
	c := Discard().Counter("bench")
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

func BenchmarkHistogramObserve(b *testing.B) {
	r := NewRegistry()
	h := r.Histogram("bench_ns")
	b.RunParallel(func(pb *testing.PB) {
		v := int64(1)
		for pb.Next() {
			h.Observe(v)
			v = v*1664525 + 1013904223
			if v < 0 {
				v = -v
			}
		}
	})
}

func BenchmarkTracerConsumeUnsampled(b *testing.B) {
	r := NewRegistry()
	tr := NewTracer(r, TracerConfig{SampleEvery: 1024})
	s := trace.Span{TraceID: 2, Layer: trace.LayerOp} // 2%1024 != 1 → unsampled
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			tr.ConsumeSpan(s)
		}
	})
}

func TestLabeledRegistryScopesNames(t *testing.T) {
	r := NewRegistry()
	a := r.Labeled("model=a")
	b := r.Labeled("model=b")

	r.Counter("reqs").Add(1)
	a.Counter("reqs").Add(2)
	b.Counter("reqs").Add(3)
	a.Gauge("depth").Set(7)
	a.Histogram("lat").Observe(100)
	a.RegisterProbe("probe", func() int64 { return 11 })
	b.RegisterProbeGroup(func(emit func(name string, v int64)) {
		emit("group.x", 13)
	})

	// Views write into the underlying registry under rewritten names;
	// snapshotting a view sees the whole registry.
	for _, s := range []Snapshot{r.Snapshot(), a.Snapshot()} {
		if got := s.Counters["reqs"]; got != 1 {
			t.Errorf("reqs = %d, want 1", got)
		}
		if got := s.Counters["reqs{model=a}"]; got != 2 {
			t.Errorf("reqs{model=a} = %d, want 2", got)
		}
		if got := s.Counters["reqs{model=b}"]; got != 3 {
			t.Errorf("reqs{model=b} = %d, want 3", got)
		}
		if got := s.Gauges["depth{model=a}"]; got != 7 {
			t.Errorf("depth{model=a} = %d, want 7", got)
		}
		if got := s.Gauges["probe{model=a}"]; got != 11 {
			t.Errorf("probe{model=a} = %d, want 11", got)
		}
		if got := s.Gauges["group.x{model=b}"]; got != 13 {
			t.Errorf("group.x{model=b} = %d, want 13", got)
		}
		if got := s.Hists["lat{model=a}"].Count; got != 1 {
			t.Errorf("lat{model=a} count = %d, want 1", got)
		}
	}

	// Same name through the same view resolves to the same handle.
	if a.Counter("reqs") != a.Counter("reqs") {
		t.Error("labeled view did not memoize the handle")
	}

	// Nested labels compose.
	if got := a.Labeled("tier=hot").Counter("hits"); got == nil {
		t.Fatal("nested labeled counter is nil")
	}
	a.Labeled("tier=hot").Counter("hits").Add(1)
	if got := r.Snapshot().Counters["hits{model=a,tier=hot}"]; got != 1 {
		t.Errorf("hits{model=a,tier=hot} = %d, want 1", got)
	}
}

func TestLabeledRegistryDiscardAndNil(t *testing.T) {
	if got := Discard().Labeled("model=a"); !got.Discarding() {
		t.Error("Labeled on Discard lost the discard property")
	}
	var nilReg *Registry
	if got := nilReg.Labeled("model=a"); got != nil {
		t.Error("Labeled on nil registry should stay nil")
	}
	if Discard().Labeled("model=a").Counter("x") != nil {
		t.Error("discard labeled view handed out a live handle")
	}
}
