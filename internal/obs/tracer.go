package obs

import (
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/trace"
)

// TracerConfig tunes sampled live request tracing.
type TracerConfig struct {
	// SampleEvery samples one trace in every SampleEvery by trace ID
	// (deterministic modulo, so every shard samples the same traces
	// without coordination — trace IDs propagate on the wire). 1 samples
	// everything; 0 disables periodic sampling.
	SampleEvery int
	// OnDeadlineMiss also records a (spanless, unless sampled) summary
	// for every request that missed its deadline or was shed.
	OnDeadlineMiss bool
	// MainShard names the shard whose clock anchors breakdowns
	// (default "main").
	MainShard string
	// MaxPending bounds in-flight sampled traces; the oldest is evicted
	// unfinished when a new one would exceed it (default 64).
	MaxPending int
	// MaxSpans bounds spans buffered per sampled trace; excess spans are
	// dropped and counted (default 512).
	MaxSpans int
	// MaxSummaries bounds the finished-trace ring (default 256).
	MaxSummaries int
}

func (c TracerConfig) withDefaults() TracerConfig {
	if c.MainShard == "" {
		c.MainShard = "main"
	}
	if c.MaxPending <= 0 {
		c.MaxPending = 64
	}
	if c.MaxSpans <= 0 {
		c.MaxSpans = 512
	}
	if c.MaxSummaries <= 0 {
		c.MaxSummaries = 256
	}
	return c
}

// TraceSummary is one finished (or evicted) live-traced request.
type TraceSummary struct {
	TraceID      uint64
	When         time.Time
	E2E          time.Duration
	DeadlineMiss bool
	// Spans is how many spans the tracer buffered for this trace (0 for
	// deadline-miss-only summaries of unsampled traces).
	Spans int
	// Evicted marks a trace that never saw Finish (buffer pressure).
	Evicted bool
	// Breakdown is the per-request attribution, when the spans allowed
	// one to be reconstructed.
	Breakdown    trace.RequestBreakdown
	HasBreakdown bool
}

// Tracer implements trace.SpanSink: it tees sampled traces' spans out
// of the shard recorders as they are recorded, and on Finish folds them
// into a RequestBreakdown via the offline analyzer — live per-request
// attribution with bounded buffers. Attach with Recorder.SetSink; one
// Tracer serves all of a deployment's recorders.
type Tracer struct {
	cfg TracerConfig

	sampled  *Counter // traces that buffered at least one span
	finished *Counter // summaries recorded via Finish
	missed   *Counter // deadline-miss summaries recorded
	evicted  *Counter // pending traces evicted unfinished
	overflow *Counter // spans dropped by the per-trace cap

	mu      sync.Mutex
	pending map[uint64]*pendingTrace
	order   []uint64 // insertion order of pending trace IDs (may hold stale entries)
	ring    []TraceSummary
	next    int
	filled  bool
}

type pendingTrace struct {
	spans []trace.Span
}

// NewTracer builds a tracer and registers its own health counters
// (trace.sampled, trace.finished, trace.missed, trace.evicted,
// trace.span_overflow) on reg.
func NewTracer(reg *Registry, cfg TracerConfig) *Tracer {
	t := &Tracer{
		cfg:      cfg.withDefaults(),
		sampled:  reg.Counter("trace.sampled"),
		finished: reg.Counter("trace.finished"),
		missed:   reg.Counter("trace.missed"),
		evicted:  reg.Counter("trace.evicted"),
		overflow: reg.Counter("trace.span_overflow"),
		pending:  make(map[uint64]*pendingTrace),
	}
	return t
}

// Sampled reports whether traceID is in the deterministic sample.
func (t *Tracer) Sampled(traceID uint64) bool {
	if t == nil {
		return false
	}
	e := t.cfg.SampleEvery
	if e <= 0 || traceID == 0 {
		return false
	}
	if e == 1 {
		return true
	}
	// ID allocators start at 1, so %e == 1 samples the first request.
	return traceID%uint64(e) == 1
}

// ConsumeSpan implements trace.SpanSink. The unsampled path is one
// modulo and a compare — cheap enough to sit inside Recorder.Record.
func (t *Tracer) ConsumeSpan(s trace.Span) {
	if t == nil || !t.Sampled(s.TraceID) {
		return
	}
	t.mu.Lock()
	p := t.pending[s.TraceID]
	if p == nil {
		if len(t.pending) >= t.cfg.MaxPending {
			t.evictOldestLocked()
		}
		p = &pendingTrace{}
		t.pending[s.TraceID] = p
		t.order = append(t.order, s.TraceID)
	}
	if len(p.spans) < t.cfg.MaxSpans {
		p.spans = append(p.spans, s)
	} else {
		t.mu.Unlock()
		t.overflow.Inc()
		return
	}
	t.mu.Unlock()
}

// evictOldestLocked pushes the oldest pending trace into the ring as
// unfinished. Caller holds t.mu.
func (t *Tracer) evictOldestLocked() {
	for len(t.order) > 0 {
		id := t.order[0]
		t.order = t.order[1:]
		p, ok := t.pending[id]
		if !ok {
			continue // finished already; stale order entry
		}
		delete(t.pending, id)
		t.pushLocked(TraceSummary{
			TraceID: id, When: time.Now(), Spans: len(p.spans), Evicted: true,
		})
		t.evicted.Inc()
		return
	}
}

// pushLocked appends a summary to the bounded ring. Caller holds t.mu.
func (t *Tracer) pushLocked(s TraceSummary) {
	if len(t.ring) < t.cfg.MaxSummaries {
		t.ring = append(t.ring, s)
		return
	}
	t.ring[t.next] = s
	t.next = (t.next + 1) % t.cfg.MaxSummaries
	t.filled = true
}

// Finish completes a request's live trace: the serving entry point
// calls it with the request's end-to-end latency and whether its
// deadline was missed (shed or served late). Sampled traces get a full
// breakdown from their buffered spans; unsampled deadline misses are
// recorded as spanless summaries when the policy asks for them.
func (t *Tracer) Finish(traceID uint64, e2e time.Duration, deadlineMiss bool) {
	if t == nil {
		return
	}
	sampled := t.Sampled(traceID)
	if !sampled && !(deadlineMiss && t.cfg.OnDeadlineMiss) {
		return
	}
	var spans []trace.Span
	if sampled {
		t.mu.Lock()
		if p, ok := t.pending[traceID]; ok {
			delete(t.pending, traceID)
			spans = p.spans
		}
		// The order slice accumulates stale entries as traces finish;
		// compact it once it outgrows the pending set by enough to matter.
		if len(t.order) > 4*t.cfg.MaxPending {
			live := t.order[:0]
			for _, id := range t.order {
				if _, ok := t.pending[id]; ok {
					live = append(live, id)
				}
			}
			t.order = live
		}
		t.mu.Unlock()
	}

	sum := TraceSummary{
		TraceID: traceID, When: time.Now(), E2E: e2e,
		DeadlineMiss: deadlineMiss, Spans: len(spans),
	}
	if len(spans) > 0 {
		// The serving entry finishes before the RPC server records the
		// main-shard request span, so synthesize one from the measured
		// e2e when it is missing — the analyzer needs it as the anchor.
		hasMain := false
		for _, s := range spans {
			if s.Layer == trace.LayerRequest && s.Shard == t.cfg.MainShard {
				hasMain = true
				break
			}
		}
		if !hasMain {
			spans = append(spans, trace.Span{
				TraceID: traceID, Shard: t.cfg.MainShard,
				Layer: trace.LayerRequest, Name: "request", Dur: e2e,
			})
		}
		if b, ok := trace.AnalyzeOne(spans, t.cfg.MainShard); ok {
			sum.Breakdown = b
			sum.HasBreakdown = true
		}
	}

	t.mu.Lock()
	t.pushLocked(sum)
	t.mu.Unlock()

	if sampled && sum.Spans > 0 {
		t.sampled.Inc()
	}
	t.finished.Inc()
	if deadlineMiss {
		t.missed.Inc()
	}
}

// Summaries returns the ring's contents, oldest first.
func (t *Tracer) Summaries() []TraceSummary {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.filled {
		return append([]TraceSummary(nil), t.ring...)
	}
	out := make([]TraceSummary, 0, len(t.ring))
	out = append(out, t.ring[t.next:]...)
	out = append(out, t.ring[:t.next]...)
	return out
}

// WriteText renders the summaries for the /traces endpoint, oldest
// first.
func (t *Tracer) WriteText(w io.Writer) error {
	if t == nil {
		return nil
	}
	for _, s := range t.Summaries() {
		status := "ok"
		switch {
		case s.Evicted:
			status = "evicted"
		case s.DeadlineMiss:
			status = "miss"
		}
		if _, err := fmt.Fprintf(w, "trace %d %s e2e=%v spans=%d", s.TraceID, status, s.E2E.Round(time.Microsecond), s.Spans); err != nil {
			return err
		}
		if s.HasBreakdown {
			b := s.Breakdown
			if _, err := fmt.Fprintf(w, " dense=%v embedded=%v serde=%v service=%v netoh=%v rpc=%d",
				b.DenseOps.Round(time.Microsecond), b.EmbeddedPortion.Round(time.Microsecond),
				b.MainSerDe.Round(time.Microsecond), b.MainService.Round(time.Microsecond),
				b.MainNetOverhead.Round(time.Microsecond), b.RPCCalls); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}

var _ trace.SpanSink = (*Tracer)(nil)
