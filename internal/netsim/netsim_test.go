package netsim

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestLinkDelayComposition(t *testing.T) {
	l := NewLink(100*time.Microsecond, 0, 1000, 1) // 1000 B/s
	if d := l.Delay(500); d != 100*time.Microsecond+500*time.Millisecond {
		t.Errorf("Delay = %v", d)
	}
}

func TestLinkJitterBoundedAndDeterministic(t *testing.T) {
	l1 := NewLink(0, 50*time.Microsecond, 0, 9)
	l2 := NewLink(0, 50*time.Microsecond, 0, 9)
	for i := 0; i < 100; i++ {
		d1, d2 := l1.Delay(0), l2.Delay(0)
		if d1 != d2 {
			t.Fatal("same seed must give same jitter stream")
		}
		if d1 < 0 || d1 > 50*time.Microsecond {
			t.Fatalf("jitter %v outside [0, 50µs]", d1)
		}
	}
}

func TestNilLink(t *testing.T) {
	var l *Link
	if l.Delay(100) != 0 {
		t.Error("nil link should have zero delay")
	}
	l.Apply(100) // must not panic
}

func TestWheelWaitAccuracy(t *testing.T) {
	// Precision well under the kernel's ~1.5ms sleep granularity is the
	// wheel's reason to exist.
	for _, d := range []time.Duration{100 * time.Microsecond, 500 * time.Microsecond} {
		start := time.Now()
		Wait(d)
		elapsed := time.Since(start)
		if elapsed < d {
			t.Errorf("Wait(%v) returned early after %v", d, elapsed)
		}
		if elapsed > d+800*time.Microsecond {
			t.Errorf("Wait(%v) overshot to %v", d, elapsed)
		}
	}
}

func TestWheelZeroAndNegative(t *testing.T) {
	Wait(0)
	Wait(-time.Second)
	done := make(chan struct{})
	AfterFunc(0, func() { close(done) })
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("AfterFunc(0) should run immediately")
	}
}

func TestWheelOrdering(t *testing.T) {
	// Later-scheduled but earlier-deadline events must fire first.
	var order []int
	var mu sync.Mutex
	var wg sync.WaitGroup
	wg.Add(2)
	AfterFunc(2*time.Millisecond, func() {
		mu.Lock()
		order = append(order, 2)
		mu.Unlock()
		wg.Done()
	})
	AfterFunc(500*time.Microsecond, func() {
		mu.Lock()
		order = append(order, 1)
		mu.Unlock()
		wg.Done()
	})
	wg.Wait()
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Errorf("firing order = %v, want [1 2]", order)
	}
}

func TestWheelConcurrentLoad(t *testing.T) {
	const n = 500
	var fired atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			Wait(time.Duration(50+i%200) * time.Microsecond)
			fired.Add(1)
		}(i)
	}
	wg.Wait()
	if fired.Load() != n {
		t.Fatalf("fired %d of %d", fired.Load(), n)
	}
}

func TestProfiles(t *testing.T) {
	dc := DataCenter(1)
	slow := Slow(1)
	if dc.Request == nil || dc.Response == nil {
		t.Fatal("DataCenter profile incomplete")
	}
	if slow.Request.Base <= dc.Request.Base {
		t.Error("Slow should have higher base latency than DataCenter")
	}
	if slow.Request.BytesPerSec >= dc.Request.BytesPerSec {
		t.Error("Slow should have less bandwidth")
	}
}
