// Package netsim injects synthetic network latency into the RPC transport.
//
// The characterization in the paper runs on servers "located in the same
// data centers as production recommendation ranking" over the standard
// TCP/IP stack; intra-data-center one-way latencies are in the tens to
// hundreds of microseconds and, per Section VI-B2, "for all distributed
// inference configurations, network latency was greater than operator
// latency". A loopback socket alone is too fast to reproduce that regime,
// so each link adds a deterministic (seeded) delay composed of a base
// propagation/switching term, bounded jitter, and a bytes/bandwidth
// serialization term. Sender-side injection before the frame write models
// the in-kernel packet processing and forwarding time the paper includes
// in its network attribution.
package netsim

import (
	"math/rand"
	"sync"
	"time"
)

// Link models one direction of a network path.
type Link struct {
	// Base is the fixed one-way latency.
	Base time.Duration
	// Jitter is the maximum additional uniform random delay.
	Jitter time.Duration
	// BytesPerSec is the serialization bandwidth; zero disables the term.
	BytesPerSec float64

	mu  sync.Mutex
	rng *rand.Rand
}

// NewLink builds a link with a deterministic jitter stream.
func NewLink(base, jitter time.Duration, bytesPerSec float64, seed int64) *Link {
	return &Link{
		Base:        base,
		Jitter:      jitter,
		BytesPerSec: bytesPerSec,
		rng:         rand.New(rand.NewSource(seed)),
	}
}

// Delay computes the injected latency for a message of n bytes.
func (l *Link) Delay(n int) time.Duration {
	if l == nil {
		return 0
	}
	d := l.Base
	if l.Jitter > 0 {
		l.mu.Lock()
		d += time.Duration(l.rng.Int63n(int64(l.Jitter) + 1))
		l.mu.Unlock()
	}
	if l.BytesPerSec > 0 {
		d += time.Duration(float64(n) / l.BytesPerSec * float64(time.Second))
	}
	return d
}

// Apply delays the caller for the link's latency for a message of n
// bytes, standing in for the time the packet would spend in the NIC,
// switches, and the kernel stack. A nil link applies nothing, so
// unconfigured paths run at raw loopback speed. Delays are delivered by
// the process-wide timer wheel (see wheel.go): kernel timer granularity
// makes time.Sleep overshoot by a millisecond or more, which would swamp
// the tens-to-hundreds of microseconds an intra-DC hop takes.
func (l *Link) Apply(n int) {
	if l == nil {
		return
	}
	Wait(l.Delay(n))
}

// Profile bundles the per-direction links of one shard-to-shard path.
type Profile struct {
	// Request is applied to caller→callee frames.
	Request *Link
	// Response is applied to callee→caller frames.
	Response *Link
}

// DataCenter returns a latency profile for an intra-DC hop. The host's
// real (sandboxed) TCP stack already contributes a few hundred
// microseconds per round trip — which plays the role of in-kernel packet
// processing the paper includes in its network attribution — so the
// injected component is a modest base plus jitter plus a 10 Gb/s
// serialization term, seeded deterministically per link.
func DataCenter(seed int64) Profile {
	const gbps10 = 10e9 / 8
	return Profile{
		Request:  NewLink(80*time.Microsecond, 40*time.Microsecond, gbps10, seed),
		Response: NewLink(80*time.Microsecond, 40*time.Microsecond, gbps10, seed+1),
	}
}

// Slow returns a profile with ~2.5× the data-center base latency and less
// bandwidth, used for the SC-Small platform which the paper notes has
// "less network bandwidth than SC-Large".
func Slow(seed int64) Profile {
	const gbps25 = 2.5e9 / 8
	return Profile{
		Request:  NewLink(200*time.Microsecond, 100*time.Microsecond, gbps25, seed),
		Response: NewLink(200*time.Microsecond, 100*time.Microsecond, gbps25, seed+1),
	}
}
