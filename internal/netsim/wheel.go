package netsim

import (
	"container/heap"
	"runtime"
	"sync"
	"time"
)

// Wheel delivers microsecond-precision delays with a single dedicated
// dispatcher goroutine. Naive per-message busy-waiting oversubscribes the
// host when dozens of messages are in flight (8 shards × several batches
// × 2 directions), which inflates the simulated latency exactly when the
// experiment sweeps to higher shard counts — the wheel burns at most one
// core regardless of in-flight count. Kernel timer granularity on this
// class of host is ~1.5ms, so the dispatcher sleeps only while the next
// deadline is comfortably far and spins the final stretch.
type Wheel struct {
	mu     sync.Mutex
	events eventHeap
	seq    uint64
	wake   chan struct{}
	fire   chan event
	once   sync.Once
}

type event struct {
	at time.Time
	// seq totally orders events sharing a deadline: the heap alone
	// treats equal-time events as interchangeable, and simulated NIC
	// completions scheduled for the same instant must fire in the order
	// they were scheduled (FIFO), not in heap-pop order.
	seq uint64
	ch  chan struct{}
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if !h[i].at.Equal(h[j].at) {
		return h[i].at.Before(h[j].at)
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

var defaultWheel = &Wheel{wake: make(chan struct{}, 1)}

// After returns a channel closed once d has elapsed, scheduled on the
// process-wide wheel.
func After(d time.Duration) <-chan struct{} { return defaultWheel.After(d) }

// AfterFunc runs fn once d has elapsed, inline on the process-wide
// wheel's dispatcher. fn must be short (a frame write, a channel send):
// long callbacks delay every later event. Compared with waking a parked
// goroutine, the inline call avoids a scheduler handoff — worth hundreds
// of microseconds under sandboxed kernels — which is exactly the path a
// simulated NIC's transmit completion takes.
func AfterFunc(d time.Duration, fn func()) { defaultWheel.AfterFunc(d, fn) }

// Wait blocks for d with microsecond precision.
func Wait(d time.Duration) {
	if d <= 0 {
		return
	}
	<-After(d)
}

// After schedules a delay on this wheel.
func (w *Wheel) After(d time.Duration) <-chan struct{} {
	ch := make(chan struct{})
	if d <= 0 {
		close(ch)
		return ch
	}
	w.schedule(event{at: time.Now().Add(d), ch: ch})
	return ch
}

// AfterFunc schedules fn to run inline on this wheel's dispatcher.
func (w *Wheel) AfterFunc(d time.Duration, fn func()) {
	if d <= 0 {
		fn()
		return
	}
	w.schedule(event{at: time.Now().Add(d), fn: fn})
}

func (w *Wheel) schedule(e event) {
	w.once.Do(func() {
		w.fire = make(chan event, 1024)
		go w.runFired()
		go w.loop()
	})
	w.mu.Lock()
	w.seq++
	e.seq = w.seq
	heap.Push(&w.events, e)
	w.mu.Unlock()
	select {
	case w.wake <- struct{}{}:
	default:
	}
}

// sleepSlack is how much earlier than a deadline the dispatcher stops
// sleeping and starts spinning, covering worst-case sleep overshoot.
const sleepSlack = 2 * time.Millisecond

func (w *Wheel) loop() {
	for {
		w.mu.Lock()
		if len(w.events) == 0 {
			w.mu.Unlock()
			<-w.wake
			continue
		}
		next := w.events[0].at
		now := time.Now()
		if !next.After(now) {
			// Fire everything due. Callback events run inline (outside
			// the lock) so a frame write cannot deadlock against a
			// scheduler that inserts new events.
			var due []event
			for len(w.events) > 0 && !w.events[0].at.After(now) {
				due = append(due, heap.Pop(&w.events).(event))
			}
			w.mu.Unlock()
			// Hand the burst to the single ordered worker. Spawning a
			// goroutine per event (or per burst) would give ordering to the
			// Go scheduler, which runs the most recent spawn first — and on
			// a single-P host the spawns starve behind the spin loop below,
			// firing out of order and late. The trade-off is deliberate:
			// deadline ordering is the simulation's contract, and it costs
			// serializing callbacks through one worker. A callback that
			// blocks (a frame write to a full socket) delays later timer
			// events — tolerable here because every peer in this system
			// keeps a draining read loop — and the dispatcher itself only
			// stalls if the worker wedges past the fire buffer's slack.
			for _, e := range due {
				w.fire <- e
			}
			continue
		}
		w.mu.Unlock()

		if wait := next.Sub(now); wait > sleepSlack {
			// Far out: sleep coarsely, but wake early for new events.
			t := time.NewTimer(wait - sleepSlack)
			select {
			case <-t.C:
			case <-w.wake:
				t.Stop()
			}
			continue
		}
		// Close in: spin, still noticing earlier insertions. Yield each
		// pass so the spin cannot starve runnable goroutines (the request
		// path itself) when GOMAXPROCS is small.
		for time.Now().Before(next) {
			select {
			case <-w.wake:
				// A new event may now be earliest; recompute.
				next = w.earliest(next)
			default:
				runtime.Gosched()
			}
		}
	}
}

// runFired executes fired events in FIFO (deadline) order. fn must be
// short (a frame write, a channel send); long callbacks delay later
// events, not the dispatcher.
func (w *Wheel) runFired() {
	for e := range w.fire {
		if e.fn != nil {
			e.fn()
		} else {
			close(e.ch)
		}
	}
}

// earliest returns the sooner of cur and the heap head.
func (w *Wheel) earliest(cur time.Time) time.Time {
	w.mu.Lock()
	defer w.mu.Unlock()
	if len(w.events) > 0 && w.events[0].at.Before(cur) {
		return w.events[0].at
	}
	return cur
}
