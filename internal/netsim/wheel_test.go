package netsim

import (
	"sync"
	"testing"
	"time"
)

// TestWheelSameDeadlineFIFO pins the wheel's ordering contract for
// timer callbacks scheduled for the *same* deadline: they must fire in
// scheduling (FIFO) order. The public API stamps each event's deadline
// from time.Now, so same-deadline events can only be built against the
// internal schedule hook — which is exactly where the contract lives:
// the heap's tie-break plus the single ordered fire worker. Run under
// -race this also exercises the dispatcher/worker synchronization.
func TestWheelSameDeadlineFIFO(t *testing.T) {
	const n = 200
	w := &Wheel{wake: make(chan struct{}, 1)}
	at := time.Now().Add(3 * time.Millisecond)

	var mu sync.Mutex
	var order []int
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		i := i
		w.schedule(event{at: at, fn: func() {
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
			wg.Done()
		}})
	}
	wg.Wait()

	mu.Lock()
	defer mu.Unlock()
	if len(order) != n {
		t.Fatalf("fired %d of %d callbacks", len(order), n)
	}
	for i, got := range order {
		if got != i {
			t.Fatalf("callback %d fired at position %d; same-deadline events must fire FIFO (order %v...)", got, i, order[:min(i+3, n)])
		}
	}
}

// TestWheelSameDeadlineConcurrentSchedulers hammers one shared deadline
// from many goroutines: every callback must fire exactly once. Under
// -race this exercises the seq counter, heap, and fire-worker handoff
// against concurrent schedule calls.
func TestWheelSameDeadlineConcurrentSchedulers(t *testing.T) {
	const n = 100
	w := &Wheel{wake: make(chan struct{}, 1)}
	at := time.Now().Add(2 * time.Millisecond)

	var fired sync.WaitGroup
	fired.Add(n)
	for i := 0; i < n; i++ {
		go w.schedule(event{at: at, fn: fired.Done})
	}
	fired.Wait()
}
