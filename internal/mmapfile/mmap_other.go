//go:build !linux && !darwin

package mmapfile

import "os"

// Open reads path into the heap — the portable fallback where mmap is
// unavailable. The File behaves identically apart from Mapped().
func Open(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return &File{data: data}, nil
}

// Close releases the heap copy.
func (f *File) Close() error {
	f.data = nil
	return nil
}
