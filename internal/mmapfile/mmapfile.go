// Package mmapfile provides read-only memory-mapped file access for the
// persistent shard-table format: a shard process serves embedding rows
// directly from file-backed byte slices instead of regenerating (or
// heap-copying) its tables at boot. On platforms without mmap — or when
// the host byte order does not match the little-endian file format — Open
// transparently falls back to reading the file into the heap, so callers
// never branch on platform.
package mmapfile

import (
	"encoding/binary"
	"unsafe"
)

// File is an open, read-only view of a file's contents: either a live
// memory mapping or a heap copy (the fallback). Close releases the
// mapping; any slices derived from Bytes (including the typed views
// below) are invalid afterwards.
type File struct {
	data   []byte
	mapped bool
}

// Bytes returns the file contents. For a mapped file the slice is backed
// by the page cache and must not be written to (the mapping is
// PROT_READ; writes fault).
func (f *File) Bytes() []byte { return f.data }

// Mapped reports whether the contents are served from a memory mapping
// (false: heap fallback).
func (f *File) Mapped() bool { return f.mapped }

// hostLittleEndian reports whether the host stores multi-byte integers
// little-endian — the precondition for viewing file bytes as typed
// slices without decoding.
func hostLittleEndian() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}

// ViewsUsable reports whether Float32s/Uint16s views over file bytes
// decode correctly on this host (little-endian file format).
func ViewsUsable() bool { return hostLittleEndian() }

// Float32s views b as a []float32 without copying. The caller must
// ensure len(b) is a multiple of 4, b is 4-byte aligned (page-aligned
// file sections are), and ViewsUsable() holds; otherwise use DecodeF32.
func Float32s(b []byte) []float32 {
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*float32)(unsafe.Pointer(&b[0])), len(b)/4)
}

// Uint16s views b as a []uint16 without copying, under the same
// preconditions as Float32s (2-byte alignment).
func Uint16s(b []byte) []uint16 {
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*uint16)(unsafe.Pointer(&b[0])), len(b)/2)
}

// DecodeF32 decodes little-endian float32s into a fresh heap slice — the
// portable path for hosts where views are unusable, and for staging
// copies that must not alias the mapping.
func DecodeF32(b []byte) []float32 {
	out := make([]float32, len(b)/4)
	for i := range out {
		out[i] = float32frombits(binary.LittleEndian.Uint32(b[4*i:]))
	}
	return out
}

// DecodeU16 decodes little-endian uint16s into a fresh heap slice.
func DecodeU16(b []byte) []uint16 {
	out := make([]uint16, len(b)/2)
	for i := range out {
		out[i] = binary.LittleEndian.Uint16(b[2*i:])
	}
	return out
}

func float32frombits(u uint32) float32 { return *(*float32)(unsafe.Pointer(&u)) }
