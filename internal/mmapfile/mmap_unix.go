//go:build linux || darwin

package mmapfile

import (
	"fmt"
	"os"
	"syscall"
)

// Open maps path read-only. Empty files yield a File with no data (there
// is nothing to map). Errors from the mmap syscall fall back to a heap
// read rather than failing the boot.
func Open(path string) (*File, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := st.Size()
	if size == 0 {
		return &File{}, nil
	}
	if size != int64(int(size)) {
		return nil, fmt.Errorf("mmapfile: %s: size %d overflows int", path, size)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		// Filesystems without mmap support (or exhausted map counts):
		// serve from the heap instead of failing the boot.
		heap, rerr := os.ReadFile(path)
		if rerr != nil {
			return nil, rerr
		}
		return &File{data: heap}, nil
	}
	return &File{data: data, mapped: true}, nil
}

// Close unmaps the file (no-op for heap fallbacks).
func (f *File) Close() error {
	if !f.mapped || f.data == nil {
		f.data = nil
		return nil
	}
	data := f.data
	f.data = nil
	f.mapped = false
	return syscall.Munmap(data)
}
