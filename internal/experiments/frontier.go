package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/cluster"
	"repro/internal/frontend"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/sharding"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Frontier sweeps the serving frontend's dynamic-batching window against
// offered open-loop load and reports the throughput/P99/fallback
// frontier — the system-level consequence of the paper's SLA framing:
// under heavy traffic a deployment either batches aggressively enough to
// keep up or sheds the excess into fallbacks; it must not collapse into
// unbounded queueing. Offered load is expressed in multiples of the
// deployment's measured serial capacity so the sweep lands in the same
// regimes (under-, at-, and over-capacity) on any host.
func (r *Runner) Frontier(w io.Writer) error {
	writeHeader(w, "SLA serving frontier: batch window x offered QPS (DRM1 singular, frontend)")
	m := r.Model("DRM1")
	cfg := m.Config
	plan := sharding.Singular(&cfg)
	n := r.P.Requests

	// Calibrate: serial capacity and latency through an unwindowed
	// frontend (each request its own batch — the unbatched baseline).
	calCl, err := cluster.Boot(m, plan, cluster.Options{Seed: r.P.Seed, Frontend: &frontend.Config{}})
	if err != nil {
		return err
	}
	calClient, err := calCl.DialMain()
	if err != nil {
		calCl.Close()
		return err
	}
	gen := workload.NewGenerator(cfg, r.P.Seed)
	rep := serve.NewReplayer(calClient)
	if warm := rep.RunSerial(gen.GenerateBatch(r.P.Warmup)); warm.Failed() > 0 {
		calClient.Close()
		calCl.Close()
		return fmt.Errorf("frontier warmup: %v", warm.Errors[0])
	}
	t0 := time.Now()
	cal := rep.RunSerial(gen.GenerateBatch(n))
	calElapsed := time.Since(t0)
	calClient.Close()
	calCl.Close()
	if cal.Failed() > 0 {
		return fmt.Errorf("frontier calibration: %v", cal.Errors[0])
	}
	capacity := float64(cal.Sent) / calElapsed.Seconds()
	meanLat := time.Duration(stats.NewDurationSample(cal.ClientE2E).Mean() * float64(time.Second))
	budget := 8 * meanLat
	sla := serve.SLA{Budget: budget, TargetQuantile: 0.99}
	fmt.Fprintf(w, "serial capacity %.0f QPS, mean latency %v -> SLA budget %v @ p99\n\n",
		capacity, meanLat.Round(time.Microsecond), budget.Round(time.Millisecond))

	fmt.Fprintf(w, "%-10s %-8s %-10s %-10s %-10s %-10s %-10s %-11s %s\n",
		"window", "load", "offered", "achieved", "p50(ms)", "p99(ms)", "fallback%", "reqs/batch", "shed(obs)")
	for _, window := range []time.Duration{0, 2 * time.Millisecond, 8 * time.Millisecond} {
		cl, err := cluster.Boot(m, plan, cluster.Options{
			Seed: r.P.Seed,
			Obs:  obs.NewRegistry(),
			Frontend: &frontend.Config{
				BatchWait: window,
				MaxQueue:  2 * n,
				Budget:    budget,
			},
		})
		if err != nil {
			return err
		}
		client, err := cl.DialMain()
		if err != nil {
			cl.Close()
			return err
		}
		rep := serve.NewReplayer(client)
		if warm := rep.RunSerial(workload.NewGenerator(cfg, r.P.Seed+1).GenerateBatch(r.P.Warmup)); warm.Failed() > 0 {
			client.Close()
			cl.Close()
			return fmt.Errorf("frontier warmup (window %v): %v", window, warm.Errors[0])
		}
		// Batch and shed accounting comes from the cluster's obs registry
		// — the same export the live -metrics-addr endpoint serves — so
		// the experiment doubles as an end-to-end check of the frontend's
		// probe-group wiring.
		prev := cl.Obs.Snapshot()
		for _, mult := range []float64{0.5, 1.0, 2.0} {
			// Every cell replays the identical request stream, the
			// paper's fixed-trace methodology.
			reqs := workload.NewGenerator(cfg, r.P.Seed+99).GenerateBatch(n)
			t0 := time.Now()
			res := rep.RunOpenLoop(reqs, capacity*mult)
			elapsed := time.Since(t0)
			if res.Failed() > 0 {
				client.Close()
				cl.Close()
				return fmt.Errorf("frontier window %v x%.1f: %d hard failures: %v",
					window, mult, res.Failed(), res.Errors[0])
			}
			st := cl.Obs.Snapshot()
			batches := st.Gauge("frontend.batches") - prev.Gauge("frontend.batches")
			perBatch := 0.0
			if batches > 0 {
				perBatch = float64(st.Gauge("frontend.batched_requests")-prev.Gauge("frontend.batched_requests")) / float64(batches)
			}
			shed := st.Gauge("frontend.shed_budget") + st.Gauge("frontend.shed_queue_full") + st.Gauge("frontend.shed_deadline") -
				prev.Gauge("frontend.shed_budget") - prev.Gauge("frontend.shed_queue_full") - prev.Gauge("frontend.shed_deadline")
			prev = st
			sample := stats.NewDurationSample(res.ClientE2E)
			rep := sla.Evaluate(res)
			fmt.Fprintf(w, "%-10v %-8s %-10.0f %-10.0f %-10.2f %-10.2f %-10.1f %-11.2f %d\n",
				window, fmt.Sprintf("%.1fx", mult), capacity*mult,
				float64(len(res.ClientE2E))/elapsed.Seconds(),
				sample.P50()*1e3, sample.P99()*1e3, 100*rep.FallbackRate, perBatch, shed)
		}
		client.Close()
		cl.Close()
	}
	fmt.Fprintln(w, "\nReading: a wider window trades added latency at low load for\ncoalescing (reqs/batch) at high load; past capacity the frontend sheds\ninto fallbacks instead of queueing without bound.")
	return nil
}
