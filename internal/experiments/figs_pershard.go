package experiments

import (
	"fmt"
	"io"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/sharding"
	"repro/internal/stats"
	"repro/internal/trace"
)

// perShardOpLatency reduces a run to mean operator time per shard (and
// optionally per net), normalized to the largest shard — the layout of
// Figs. 10, 11a, 12, and 15.
func perShardOpLatency(res *runResult, byNet bool) *stats.StackGroup {
	n := res.plan.NumShards
	title := fmt.Sprintf("%s — per-shard operator latency (normalized)", res.plan.Name())
	g := stats.NewStackGroup(title)
	for shard := 1; shard <= n; shard++ {
		svc := core.ServiceName(shard)
		st := stats.NewStack(fmt.Sprintf("shard %d", shard))
		var total, net1, net2 time.Duration
		for i := range res.breakdowns {
			b := &res.breakdowns[i]
			total += b.PerShardOpTime[svc]
			if nets := b.PerShardNetOpTime[svc]; nets != nil {
				net1 += nets["net1"]
				net2 += nets["net2"]
			}
		}
		nreq := time.Duration(len(res.breakdowns))
		if byNet {
			st.Set("Net 1", float64(net1/nreq)/float64(time.Millisecond))
			st.Set("Net 2", float64(net2/nreq)/float64(time.Millisecond))
		} else {
			st.Set("ops", float64(total/nreq)/float64(time.Millisecond))
		}
		g.Append(st)
	}
	return g
}

// findPlan locates a plan by strategy and shard count.
func findPlan(plans []*sharding.Plan, strategy string, n int) *sharding.Plan {
	for _, p := range plans {
		if p.Strategy == strategy && p.NumShards == n {
			return p
		}
	}
	return nil
}

// Fig10 shows DRM1 per-shard operator latencies by net at 8 shards,
// load-balanced vs NSBP: only NSBP confines each net's pooling to its
// own shards, producing the strongly unbalanced profile the paper uses
// to explain NSBP's latency/compute trade-off.
func (r *Runner) Fig10(w io.Writer) error {
	writeHeader(w, "Fig. 10 — DRM1 per-shard operator latency by net (8 shards)")
	plans, err := r.Plans("DRM1")
	if err != nil {
		return err
	}
	for _, strategy := range []string{sharding.StrategyLoad, sharding.StrategyNSBP} {
		p := findPlan(plans, strategy, 8)
		res, err := r.Run("DRM1", p, runMode{})
		if err != nil {
			return err
		}
		fmt.Fprint(w, perShardOpLatency(res, true).Render())
		fmt.Fprintln(w)
	}
	return nil
}

// Fig11 shows DRM3 per-shard operator latencies (NSBP 8) and the
// embedded-portion stacks: shard 1 (the grouped small tables) does the
// work; the partition shards see at most one lookup; extra shards do not
// reduce latency.
func (r *Runner) Fig11(w io.Writer) error {
	writeHeader(w, "Fig. 11 — DRM3 per-shard operator latency and embedded stacks")
	plans, err := r.Plans("DRM3")
	if err != nil {
		return err
	}
	p8 := findPlan(plans, sharding.StrategyNSBP, 8)
	res, err := r.Run("DRM3", p8, runMode{})
	if err != nil {
		return err
	}
	fmt.Fprint(w, perShardOpLatency(res, false).Render())
	fmt.Fprintln(w)

	emb := stats.NewStackGroup("DRM3 — embedded-portion stacks (normalized)")
	for _, p := range plans {
		if p.Strategy == sharding.StrategyNSBP && p.NumShards == 2 {
			continue // paper presents singular, 1-shard, NSBP 4/8
		}
		res, err := r.Run("DRM3", p, runMode{})
		if err != nil {
			return err
		}
		emb.Append(embeddedStack(p.Name(), res.breakdowns))
	}
	fmt.Fprint(w, emb.Render())
	return nil
}

// Fig12 compares DRM1 per-shard operator latencies across all three
// strategies at 8 shards: load- and capacity-balanced profiles are
// similar; NSBP is unbalanced by design.
func (r *Runner) Fig12(w io.Writer) error {
	writeHeader(w, "Fig. 12 — DRM1 per-shard operator latency by strategy (8 shards)")
	plans, err := r.Plans("DRM1")
	if err != nil {
		return err
	}
	for _, strategy := range []string{sharding.StrategyLoad, sharding.StrategyCapacity, sharding.StrategyNSBP} {
		p := findPlan(plans, strategy, 8)
		res, err := r.Run("DRM1", p, runMode{})
		if err != nil {
			return err
		}
		fmt.Fprint(w, perShardOpLatency(res, false).Render())
		fmt.Fprintln(w)
	}
	return nil
}

// Fig15 re-runs DRM1 load-balanced 8-shard on the SC-Small platform:
// per-shard operator latencies are nearly identical to SC-Large because
// sparse-shard work is memory-bound and tiny — the basis for serving
// sparse shards from cheaper machines (Section VII-B).
func (r *Runner) Fig15(w io.Writer) error {
	writeHeader(w, "Fig. 15 — DRM1 per-shard operator latency by platform (load-bal 8 shards)")
	plans, err := r.Plans("DRM1")
	if err != nil {
		return err
	}
	p := findPlan(plans, sharding.StrategyLoad, 8)
	large, err := r.Run("DRM1", p, runMode{})
	if err != nil {
		return err
	}
	small, err := r.Run("DRM1", p, runMode{smallPlatform: true})
	if err != nil {
		return err
	}
	g := stats.NewStackGroup("mean per-shard operator time, ms (absolute, NOT normalized)")
	for shard := 1; shard <= p.NumShards; shard++ {
		svc := core.ServiceName(shard)
		st := stats.NewStack(fmt.Sprintf("shard %d", shard))
		st.Set("SC-Large", meanShardOpMs(large.breakdowns, svc))
		st.Set("SC-Small", meanShardOpMs(small.breakdowns, svc))
		g.Append(st)
	}
	fmt.Fprint(w, renderAbsolute(g))
	return nil
}

func meanShardOpMs(bs []trace.RequestBreakdown, svc string) float64 {
	var total time.Duration
	for i := range bs {
		total += bs[i].PerShardOpTime[svc]
	}
	return float64(total) / float64(len(bs)) / float64(time.Millisecond)
}

// renderAbsolute prints a stack group without normalization (Fig. 15
// compares absolute per-platform latencies).
func renderAbsolute(g *stats.StackGroup) string {
	out := g.Title + "\n"
	var comps []string
	seen := map[string]bool{}
	for _, s := range g.Stacks {
		for _, c := range s.Components() {
			if !seen[c] {
				seen[c] = true
				comps = append(comps, c)
			}
		}
	}
	sort.Strings(comps)
	out += fmt.Sprintf("%-12s", "shard")
	for _, c := range comps {
		out += fmt.Sprintf(" %12s", c)
	}
	out += "\n"
	for _, s := range g.Stacks {
		out += fmt.Sprintf("%-12s", s.Label)
		for _, c := range comps {
			out += fmt.Sprintf(" %12.5f", s.Get(c))
		}
		out += "\n"
	}
	return out
}
