package experiments

import (
	"fmt"
	"io"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/serve"
	"repro/internal/sharding"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Tiered evaluates the tiered embedding store in the sparse serving
// path: a DRM1 load-balanced deployment sweeps hot-row cache budget ×
// cold-tier precision × row-popularity skew, replaying the identical
// request stream in every cell (equal offered load), and reports the
// sparse serving cost, the shards' measured resident bytes, and the
// aggregate cache hit rate. Latency is judged on the trace-derived
// bounding-shard sparse-op time — the component tiering touches — whose
// per-request attribution cancels the host noise that dominates a small
// sample's client-side P99 (same methodology as the reshard experiment).
// The capacity argument is the paper's: scale-out is driven by resident
// bytes, so an int8 cold tier that holds the sparse tail buys shard
// count directly. A final check replays one stream *through* a live
// rebalance with the tiered store enabled and verifies scores stay
// byte-identical to a non-migrating tiered control — the cache-coherence
// contract.
func (r *Runner) Tiered(w io.Writer) error {
	writeHeader(w, "Tiered embedding storage: cache budget x cold precision x row skew (DRM1, load-bal 4 shards)")
	m := r.Model("DRM1")
	cfg := m.Config
	pooling := r.Pooling("DRM1")
	plan, err := sharding.LoadBalanced(&cfg, 4, pooling)
	if err != nil {
		return err
	}
	n := r.P.Requests

	// The planner's byte-aware view of the placement, before any serving.
	int8Plan := sharding.PlanTiers(&cfg, sharding.TierOptions{ColdPrecision: sharding.PrecisionInt8})
	fmt.Fprint(w, sharding.TieredReport(&cfg, plan, int8Plan))
	fmt.Fprintln(w)

	type cellKey struct {
		prec    sharding.Precision
		cacheMB float64
		skew    float64 // 0 = uniform row popularity
	}
	type cellRow struct {
		sparseP99 float64 // bounding-shard sparse-op P99, seconds
		e2eP50    float64 // client E2E P50, seconds
		resident  int64   // measured shard bytes (cold + cache)
		hitRate   float64
	}
	// cell measures one configuration: warmup (which also warms the
	// caches and the load accounting the tier controller apportions
	// budgets from), then one measured replay of n requests. Sweep cells
	// are indicative; the headline claim comes from tieredVerdict's
	// paired design, which is robust to this host's scheduler noise.
	cell := func(k cellKey) (*cellRow, error) {
		opts := cluster.Options{Seed: r.P.Seed}
		if k.prec != sharding.PrecisionFP32 || k.cacheMB > 0 {
			opts.Tier = &core.TierConfig{
				CacheMB: k.cacheMB,
				Plan:    sharding.PlanTiers(&cfg, sharding.TierOptions{ColdPrecision: k.prec}),
			}
		}
		cl, err := cluster.Boot(m, clonePlan(plan), opts)
		if err != nil {
			return nil, err
		}
		defer cl.Close()
		client, err := cl.DialMain()
		if err != nil {
			return nil, err
		}
		defer client.Close()
		gen := workload.NewGenerator(cfg, r.P.Seed)
		if k.skew > 0 {
			gen.EnableRowSkew(k.skew)
		}
		rep := serve.NewReplayer(client)
		if warm := rep.RunSerial(gen.GenerateBatch(r.P.Warmup)); warm.Failed() > 0 {
			return nil, fmt.Errorf("warmup: %v", warm.Errors[0])
		}
		cl.ResetTraces()
		res := rep.RunSerial(gen.GenerateBatch(n))
		if res.Failed() > 0 {
			return nil, res.Errors[0]
		}
		row := &cellRow{
			sparseP99: sparseOpP99(trace.Analyze(cl.Collector.Gather(), "main")),
			e2eP50:    stats.NewDurationSample(res.ClientE2E).P50(),
			resident:  cl.ResidentBytes(),
		}
		var hits, misses int64
		for _, ts := range cl.TierStats() {
			hits += ts.Hits
			misses += ts.Misses
		}
		if hits+misses > 0 {
			row.hitRate = float64(hits) / float64(hits+misses)
		}
		return row, nil
	}

	fmt.Fprintf(w, "%-9s %-10s %-9s %-12s %-11s %-11s %-9s\n",
		"skew", "precision", "cache", "sparse p99", "e2e p50", "resident", "hit rate")
	for _, skew := range []float64{0, 1.2, 1.5} {
		for _, prec := range []sharding.Precision{sharding.PrecisionFP32, sharding.PrecisionFP16, sharding.PrecisionInt8} {
			for _, cacheMB := range []float64{0, 4, 16} {
				k := cellKey{prec: prec, cacheMB: cacheMB, skew: skew}
				row, err := cell(k)
				if err != nil {
					return fmt.Errorf("tiered %s cache %g skew %g: %w", prec, cacheMB, skew, err)
				}
				skewLabel := "uniform"
				if skew > 0 {
					skewLabel = fmt.Sprintf("zipf %.1f", skew)
				}
				fmt.Fprintf(w, "%-9s %-10s %-9s %-12s %-11s %-11s %-9s\n",
					skewLabel, prec, fmt.Sprintf("%.0fMiB", cacheMB),
					fmt.Sprintf("%.2fms", row.sparseP99*1e3),
					fmt.Sprintf("%.2fms", row.e2eP50*1e3),
					fmt.Sprintf("%.1fMiB", float64(row.resident)/(1<<20)),
					fmt.Sprintf("%.0f%%", 100*row.hitRate))
			}
		}
	}

	// Headline comparison, paired: the fp32 baseline and the int8+cache
	// deployment boot side by side and measurement phases alternate
	// between them, so a shared host's scheduler noise lands on both.
	// The verdict is the median of per-pair P99 ratios — the robust
	// estimate an unpaired comparison of two max-ish statistics cannot
	// give on a timeshared machine.
	reduction, e2eRatio, opRatio, err := r.tieredVerdict(m, plan, &cfg, n)
	if err != nil {
		return fmt.Errorf("tiered verdict: %w", err)
	}
	verdict := "PASS"
	if reduction < 30 || e2eRatio > 1.15 {
		verdict = "CHECK"
	}
	fmt.Fprintf(w, "\nint8 + 16MiB cache vs fp32 baseline (zipf 1.5, equal 25 QPS, paired phases, median ratios): resident bytes -%.0f%%, client e2e p99 ratio %.2f, sparse-op p99 ratio %.2f [%s]\n",
		reduction, e2eRatio, opRatio, verdict)

	// Cache coherence under live migration: drift the skewed stream onto
	// shard 1's tables, rebalance mid-replay with the tiered store
	// enabled, and require scores byte-identical to a tiered control that
	// never migrates. Encoded cold-tier rows stream verbatim and a
	// committed copy starts with a cold cache, so a cutover must be
	// invisible bit for bit.
	drift := driftSkew(&cfg, plan, pooling, 2)
	tierOpts := cluster.Options{Seed: r.P.Seed, Tier: &core.TierConfig{
		CacheMB: 4,
		Plan:    sharding.PlanTiers(&cfg, sharding.TierOptions{ColdPrecision: sharding.PrecisionInt8}),
	}}
	identical, total, duringMig, err := r.reshardIdentity(m, plan, drift, n, tierOpts)
	if err != nil {
		return fmt.Errorf("tiered identity: %w", err)
	}
	idVerdict := "byte-identical"
	if !identical {
		idVerdict = "MISMATCH"
	}
	fmt.Fprintf(w, "\nmigration identity (int8 cold tier + 4 MiB cache): %d requests replayed, %d completed while rows streamed: scores %s vs tiered control\n",
		total, duringMig, idVerdict)
	fmt.Fprintln(w, "\nReading: the int8 cold tier cuts resident bytes ~72% (dim+4 bytes/row\nvs 4*dim) — in a capacity-driven deployment that is shard count, not\njust memory. Under skewed row popularity the hot-row cache absorbs most\nlookups, hiding dequantization from the tail; the cache budget follows\nmeasured per-table load, so a rebalance re-apportions it. Quantized\nrows migrate as verbatim encoded bytes and committed copies start with\ncold caches, keeping mid-migration scores bit-identical.")
	return nil
}

// sparseOpP99 samples every (request, sparse shard) op time — not just
// each request's bounding shard — so the P99 is an estimable quantile
// over 4× the samples rather than a max statistic.
func sparseOpP99(bs []trace.RequestBreakdown) float64 {
	var ops []float64
	for i := range bs {
		for shard, d := range bs[i].PerShardOpTime {
			if shard != "main" {
				ops = append(ops, d.Seconds())
			}
		}
	}
	return stats.NewSample(ops).P99()
}

// tieredVerdict runs the paired headline comparison: fp32 baseline vs
// int8 cold tier + 16 MiB/shard cache under zipf-1.5 row skew, replayed
// open-loop at the same fixed QPS, alternating phases over the *same*
// request stream so workload variance cancels in the ratios. It returns
// the resident-byte reduction (percent), the median per-pair client E2E
// P99 ratio (the acceptance metric — what the SLA sees), and the median
// per-pair sparse-op P99 ratio (the strict component-level metric).
func (r *Runner) tieredVerdict(m *model.Model, plan *sharding.Plan, cfg *model.Config, n int) (reduction, e2eRatio, opRatio float64, err error) {
	type deployment struct {
		cl     *cluster.Cluster
		rep    *serve.Replayer
		gen    *workload.Generator
		closes []func()
	}
	boot := func(tier *core.TierConfig) (*deployment, error) {
		d := &deployment{}
		cl, err := cluster.Boot(m, clonePlan(plan), cluster.Options{Seed: r.P.Seed, Tier: tier})
		if err != nil {
			return nil, err
		}
		d.cl = cl
		d.closes = append(d.closes, cl.Close)
		client, err := cl.DialMain()
		if err != nil {
			cl.Close()
			return nil, err
		}
		d.closes = append(d.closes, func() { client.Close() })
		d.rep = serve.NewReplayer(client)
		d.gen = workload.NewGenerator(*cfg, r.P.Seed)
		d.gen.EnableRowSkew(1.5)
		return d, nil
	}
	base, err := boot(nil)
	if err != nil {
		return 0, 0, 0, err
	}
	defer func() {
		for _, c := range base.closes {
			c()
		}
	}()
	tiered, err := boot(&core.TierConfig{
		CacheMB: 16,
		Plan:    sharding.PlanTiers(cfg, sharding.TierOptions{ColdPrecision: sharding.PrecisionInt8}),
	})
	if err != nil {
		return 0, 0, 0, err
	}
	defer func() {
		for _, c := range tiered.closes {
			c()
		}
	}()

	const qps = 25
	phase := func(d *deployment, reqs []*workload.Request) (e2eP99, opP99 float64, err error) {
		d.cl.ResetTraces()
		res := d.rep.RunOpenLoop(reqs, qps)
		if res.Failed() > 0 {
			return 0, 0, res.Errors[0]
		}
		bs := trace.Analyze(d.cl.Collector.Gather(), "main")
		return stats.NewDurationSample(res.ClientE2E).P99(), sparseOpP99(bs), nil
	}

	// Warmup both (also steadies caches, load accounting, admissions).
	for _, d := range []*deployment{base, tiered} {
		if warm := d.rep.RunSerial(d.gen.GenerateBatch(n)); warm.Failed() > 0 {
			return 0, 0, 0, warm.Errors[0]
		}
	}
	var e2eRatios, opRatios []float64
	for pair := 0; pair < 5; pair++ {
		// Both deployments replay the identical phase stream (the two
		// generators share a seed and advance in lockstep).
		baseReqs := base.gen.GenerateBatch(n)
		tierReqs := tiered.gen.GenerateBatch(n)
		be2e, bop, err := phase(base, baseReqs)
		if err != nil {
			return 0, 0, 0, err
		}
		te2e, top, err := phase(tiered, tierReqs)
		if err != nil {
			return 0, 0, 0, err
		}
		if be2e > 0 {
			e2eRatios = append(e2eRatios, te2e/be2e)
		}
		if bop > 0 {
			opRatios = append(opRatios, top/bop)
		}
	}
	if len(e2eRatios) == 0 || len(opRatios) == 0 {
		return 0, 0, 0, fmt.Errorf("no valid phase pairs")
	}
	e2eRatio = stats.NewSample(e2eRatios).P50()
	opRatio = stats.NewSample(opRatios).P50()
	reduction = 100 * (1 - float64(tiered.cl.ResidentBytes())/float64(base.cl.ResidentBytes()))
	return reduction, e2eRatio, opRatio, nil
}
