package experiments

import (
	"fmt"
	"io"

	"repro/internal/cluster"
	"repro/internal/model"
	"repro/internal/serve"
	"repro/internal/sharding"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Table3 reproduces the compression experiment (Section VII-D): DRM1
// with production-style quantization (8-bit row-wise everywhere, 4-bit
// for sufficiently large tables) plus magnitude pruning, served singular,
// compared on total size, CPU time, and E2E latency quantiles normalized
// to the uncompressed P50.
//
// Paper shapes: ~5.56× smaller; latency and CPU within a few percent of
// uncompressed. The exact ratio here is bounded by the per-row fp16
// header at this reproduction's small embedding dimensions (see
// EXPERIMENTS.md).
func (r *Runner) Table3(w io.Writer) error {
	writeHeader(w, "Table III — Quantization and pruning on DRM1 (singular)")
	m := r.Model("DRM1")
	// "Sufficiently large tables were quantized to 4 bits": threshold at
	// the paper-scale 1 GiB equivalent.
	compressed := m.Compress(1024*1024, 0.001)

	fmt.Fprintf(w, "%-18s %12s %12s\n", "", "Uncompressed", "Quant+Pruned")
	ratio := float64(m.TotalBytes()) / float64(compressed.TotalBytes())
	fmt.Fprintf(w, "%-18s %10.2fMB %10.2fMB  (%.2fx; paper: 5.56x)\n", "Total size",
		float64(m.TotalBytes())/(1<<20), float64(compressed.TotalBytes())/(1<<20), ratio)

	base, err := r.runCompressed(m, "uncompressed")
	if err != nil {
		return err
	}
	comp, err := r.runCompressed(compressed, "compressed")
	if err != nil {
		return err
	}
	baseCPU := quantilesOf(base, trace.CompTotalCPU)
	compCPU := quantilesOf(comp, trace.CompTotalCPU)
	baseE2E := quantilesOf(base, trace.CompE2E)
	compE2E := quantilesOf(comp, trace.CompE2E)
	// Normalize everything to the respective uncompressed P50 (the
	// paper's presentation).
	fmt.Fprintf(w, "%-18s %12s %12s\n", "CPU time", "", "")
	fmt.Fprintf(w, "  %-16s %11.2fx %11.2fx\n", "P50", 1.0, compCPU.P50/baseCPU.P50)
	fmt.Fprintf(w, "  %-16s %11.2fx %11.2fx\n", "P90", baseCPU.P90/baseCPU.P50, compCPU.P90/baseCPU.P50)
	fmt.Fprintf(w, "  %-16s %11.2fx %11.2fx\n", "P99", baseCPU.P99/baseCPU.P50, compCPU.P99/baseCPU.P50)
	fmt.Fprintf(w, "%-18s %12s %12s\n", "E2E latency", "", "")
	fmt.Fprintf(w, "  %-16s %11.2fx %11.2fx\n", "P50", 1.0, compE2E.P50/baseE2E.P50)
	fmt.Fprintf(w, "  %-16s %11.2fx %11.2fx\n", "P90", baseE2E.P90/baseE2E.P50, compE2E.P90/baseE2E.P50)
	fmt.Fprintf(w, "  %-16s %11.2fx %11.2fx\n", "P99", baseE2E.P99/baseE2E.P50, compE2E.P99/baseE2E.P50)
	fmt.Fprintln(w, "\npaper: compression alone cannot fit emerging models on 1-4 commodity servers;")
	fmt.Fprintf(w, "here: compressed sparse bytes %.1fMB vs ~50MB usable DRAM per commodity server (1024x-scaled ~50GB)\n",
		float64(compressed.SparseTableBytes())/(1<<20))
	return nil
}

// runCompressed measures a singular deployment of the given model
// build; unlike Runner.Run it does not memoize (the compressed model is
// not part of the standard sweep).
func (r *Runner) runCompressed(m *model.Model, label string) ([]trace.RequestBreakdown, error) {
	plan := sharding.Singular(&m.Config)
	cl, err := cluster.Boot(m, plan, cluster.Options{Seed: r.P.Seed})
	if err != nil {
		return nil, fmt.Errorf("experiments: table3 %s: %w", label, err)
	}
	defer cl.Close()
	client, err := cl.DialMain()
	if err != nil {
		return nil, err
	}
	defer client.Close()
	gen := workload.NewGenerator(m.Config, r.P.Seed)
	rep := serve.NewReplayer(client)
	if warm := rep.RunSerial(gen.GenerateBatch(r.P.Warmup)); warm.Failed() > 0 {
		return nil, warm.Errors[0]
	}
	cl.ResetTraces()
	if res := rep.RunSerial(gen.GenerateBatch(r.P.Requests)); res.Failed() > 0 {
		return nil, res.Errors[0]
	}
	return trace.Analyze(cl.Collector.Gather(), "main"), nil
}
