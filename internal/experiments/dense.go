package experiments

import (
	"fmt"
	"io"
	"math"
	"math/rand"
	"runtime"
	"time"

	"repro/internal/cluster"
	"repro/internal/serve"
	"repro/internal/sharding"
	"repro/internal/stats"
	"repro/internal/tensor"
	"repro/internal/workload"
)

// Dense characterizes the dense execution engine, the tier the paper's
// Fig. 4 shows dominating per-request compute once sparse capacity is
// scaled out. Part one is a GEMM sweep — coalesced-batch row count ×
// worker parallelism × MLP layer shape (DRM1's bottom, projection, and
// top layers) — reporting GFLOP/s and the parallel speedup over the
// serial baseline, with a bitwise identity check between the two paths.
// Part two replays the deterministic DRM1 request stream end to end at
// both parallelism settings and compares client P50/P99 plus per-item
// scores (which must be identical: the engine's determinism contract).
func (r *Runner) Dense(w io.Writer) error {
	writeHeader(w, "Dense engine: blocked GEMM throughput and e2e latency, serial vs parallel")
	defer tensor.SetParallelism(0)
	defer tensor.SetBlockRows(0)

	maxPar := runtime.GOMAXPROCS(0)
	pars := []int{1}
	if maxPar > 1 {
		pars = append(pars, maxPar)
	}
	fmt.Fprintf(w, "host: GOMAXPROCS=%d, gemm block rows=%d\n\n", maxPar, tensor.BlockRows())

	// DRM1's dense layers: bottom MLP input, embedding projection, top
	// MLP input (bottom 96 + proj 256 + 12·11/2 pairwise dots).
	shapes := []struct {
		name string
		k, n int
	}{
		{"bottom 13->192", 13, 192},
		{"proj 896->256", 896, 256},
		{"top 418->256", 418, 256},
	}
	batches := []int{8, 64, 256}

	fmt.Fprintf(w, "%-16s %-7s", "shape", "batch")
	for _, p := range pars {
		fmt.Fprintf(w, " par=%-2d GF/s ", p)
	}
	fmt.Fprintf(w, " %-8s %s\n", "speedup", "bitwise")
	atLeastTwoX := true
	for _, s := range shapes {
		for _, m := range batches {
			rng := rand.New(rand.NewSource(int64(7*s.k + m)))
			a := tensor.New(m, s.k)
			b := tensor.New(s.k, s.n)
			for i := range a.Data {
				a.Data[i] = rng.Float32()*2 - 1
			}
			for i := range b.Data {
				b.Data[i] = rng.Float32()*2 - 1
			}
			flops := 2 * float64(m) * float64(s.k) * float64(s.n)
			reps := int(100e6/flops) + 1

			var ref *tensor.Matrix
			gflops := make([]float64, len(pars))
			identical := true
			for pi, par := range pars {
				tensor.SetParallelism(par)
				out := tensor.New(m, s.n)
				tensor.MatMul(out, a, b) // warm the worker pool and caches
				t0 := time.Now()
				for i := 0; i < reps; i++ {
					tensor.MatMul(out, a, b)
				}
				gflops[pi] = flops * float64(reps) / time.Since(t0).Seconds() / 1e9
				if ref == nil {
					ref = out
				} else {
					for i := range ref.Data {
						if math.Float32bits(out.Data[i]) != math.Float32bits(ref.Data[i]) {
							identical = false
							break
						}
					}
				}
			}
			fmt.Fprintf(w, "%-16s %-7d", s.name, m)
			for _, g := range gflops {
				fmt.Fprintf(w, " %-11.2f ", g)
			}
			speedup := gflops[len(gflops)-1] / gflops[0]
			if m >= 64 && len(pars) > 1 && speedup < 2 {
				atLeastTwoX = false
			}
			fmt.Fprintf(w, " %-8s %v\n", fmt.Sprintf("%.2fx", speedup), identical)
			if !identical {
				return fmt.Errorf("dense: parallel GEMM diverged from serial at %s batch %d", s.name, m)
			}
		}
	}
	switch {
	case len(pars) == 1:
		fmt.Fprintln(w, "\nsingle-core host: parallel speedup not measurable (outputs still bitwise stable)")
	case atLeastTwoX:
		fmt.Fprintf(w, "\nparallel GEMM >= 2x serial at batch >= 64 across all MLP shapes (%d workers)\n", maxPar)
	default:
		fmt.Fprintf(w, "\nWARNING: parallel GEMM below 2x serial at batch >= 64 on this host (%d workers)\n", maxPar)
	}

	// --- End to end: the deterministic DRM1 stream through a singular
	// deployment at both settings. Scores must match bitwise; latency
	// quantiles show what the dense tier contributes on this host. ---
	fmt.Fprintf(w, "\n%-8s %-10s %-10s %s\n", "par", "p50(ms)", "p99(ms)", "scores")
	n := r.P.Requests
	var refScores [][]float32
	for _, par := range pars {
		tensor.SetParallelism(par)
		m := r.Model("DRM1")
		cfg := m.Config
		cl, err := cluster.Boot(m, sharding.Singular(&cfg), cluster.Options{Seed: r.P.Seed, BatchSize: 64})
		if err != nil {
			return err
		}
		client, err := cl.DialMain()
		if err != nil {
			cl.Close()
			return err
		}
		rep := serve.NewReplayer(client)
		gen := workload.NewGenerator(cfg, r.P.Seed+4242)
		if warm := rep.RunSerial(gen.GenerateBatch(r.P.Warmup)); warm.Failed() > 0 {
			client.Close()
			cl.Close()
			return fmt.Errorf("dense warmup: %v", warm.Errors[0])
		}
		var e2e []time.Duration
		scores := make([][]float32, 0, n)
		verdict := "reference"
		match := true
		for _, req := range gen.GenerateBatch(n) {
			out, elapsed, err := rep.Send(req)
			if err != nil {
				client.Close()
				cl.Close()
				return fmt.Errorf("dense e2e par=%d: %w", par, err)
			}
			e2e = append(e2e, elapsed)
			scores = append(scores, out)
		}
		client.Close()
		cl.Close()
		if refScores == nil {
			refScores = scores
		} else {
			for i := range scores {
				for j := range scores[i] {
					if math.Float32bits(scores[i][j]) != math.Float32bits(refScores[i][j]) {
						match = false
					}
				}
			}
			verdict = fmt.Sprintf("identical=%v", match)
		}
		sample := stats.NewDurationSample(e2e)
		fmt.Fprintf(w, "%-8d %-10.2f %-10.2f %s\n", par, sample.P50()*1e3, sample.P99()*1e3, verdict)
		if !match {
			return fmt.Errorf("dense: e2e scores diverged between serial and parallel GEMM")
		}
	}
	fmt.Fprintln(w, "\nReading: row-tiled GEMM spreads a coalesced batch across cores with\nbitwise-identical outputs; batch >= 64 amortizes dispatch so throughput\nscales with workers, while sub-threshold matrices stay on the serial path.")
	return nil
}
