package experiments

import (
	"fmt"
	"io"
	"math"
	"sort"
	"time"

	"repro/internal/model"
	"repro/internal/sharding"
	"repro/internal/stats"
)

// Fig1 renders the paper's motivation figure: historical recommendation
// model growth. The paper's series is proprietary production data ("both
// number of features and embeddings have grown an order of magnitude in
// only three years"); we emit a synthetic series with exactly that
// property — 10× growth in features and embedding capacity over three
// years on an exponential trend — as the substitution note in DESIGN.md
// records.
func (r *Runner) Fig1(w io.Writer) error {
	writeHeader(w, "Fig. 1 — Historical model growth (synthetic trend: 10x over 3 years)")
	quarters := 13 // 3 years, quarterly
	var x, feats, embs []float64
	for i := 0; i < quarters; i++ {
		t := float64(i) / float64(quarters-1) // 0..1 over 3 years
		x = append(x, 2017+3*t)
		// 10^t growth, normalized to 1.0 at the start.
		feats = append(feats, pow10(t))
		embs = append(embs, pow10(t*1.05)) // embeddings grow slightly faster
	}
	fmt.Fprint(w, stats.RenderSeries("normalized growth (features, embedding capacity)",
		stats.Series{Label: "features", X: x, Y: feats},
		stats.Series{Label: "embeddings", X: x, Y: embs},
	))
	g := (embs[len(embs)-1] / embs[0])
	fmt.Fprintf(w, "growth over 3 years: features %.1fx, embeddings %.1fx (paper: ~10x each)\n",
		feats[len(feats)-1]/feats[0], g)
	return nil
}

func pow10(t float64) float64 { return math.Pow(10, t) }

// Fig4 reproduces the operator compute attribution of the three models
// (singular, serial requests, mean across requests): the paper's key
// observations are that dense operators dominate and sparse operators
// contribute ≈9.7%/9.6%/3.1% for DRM1/DRM2/DRM3 despite holding >97% of
// capacity.
func (r *Runner) Fig4(w io.Writer) error {
	writeHeader(w, "Fig. 4 — Operator compute attribution (singular, normalized)")
	group := stats.NewStackGroup("share of operator time by kind")
	for _, name := range model.Names() {
		cfg := model.ByName(name)
		res, err := r.Run(name, sharding.Singular(&cfg), runMode{})
		if err != nil {
			return err
		}
		st := stats.NewStack(name)
		var total time.Duration
		for _, d := range res.kindOpTime {
			total += d
		}
		kinds := make([]string, 0, len(res.kindOpTime))
		for k := range res.kindOpTime {
			kinds = append(kinds, k)
		}
		sort.Strings(kinds)
		for _, k := range kinds {
			st.Set(k, float64(res.kindOpTime[k])/float64(total))
		}
		group.Append(st)
		fmt.Fprintf(w, "%s: sparse operators %.1f%% of operator time (paper: %.1f%%)\n",
			name, 100*st.Get("Sparse"), map[string]float64{"DRM1": 9.7, "DRM2": 9.6, "DRM3": 3.1}[name])
	}
	fmt.Fprint(w, group.Render())
	return nil
}

// Fig5 renders the embedding-table size distributions: DRM1/DRM2 show a
// long tail; DRM3 is dominated by a single large table.
func (r *Runner) Fig5(w io.Writer) error {
	writeHeader(w, "Fig. 5 — Embedding table size distribution")
	for _, name := range model.Names() {
		cfg := model.ByName(name)
		var sizes []float64
		var largest, total int64
		for _, t := range cfg.Tables {
			b := t.Bytes()
			sizes = append(sizes, float64(b)/1024) // KiB
			if b > largest {
				largest = b
			}
			total += b
		}
		fmt.Fprintf(w, "\n%s: %d tables, %.1f MiB total, largest %.1f MiB (%.1f%% of capacity)\n",
			name, len(cfg.Tables), float64(total)/(1<<20), float64(largest)/(1<<20),
			100*float64(largest)/float64(total))
		h := stats.NewLogHistogram(1, float64(largest)/1024*1.01, 12)
		h.AddAll(sizes)
		fmt.Fprint(w, h.Render(40))
	}
	return nil
}

// Table2 reproduces the sharding-results table for DRM1: per-shard
// capacity, table count, and estimated pooling factor under every
// configuration, plus the balance statistics Section V-A quotes.
func (r *Runner) Table2(w io.Writer) error {
	writeHeader(w, "Table II — Sharding results for DRM1")
	cfg := model.ByName("DRM1")
	pooling := r.Pooling("DRM1")
	plans, err := r.Plans("DRM1")
	if err != nil {
		return err
	}
	fmt.Fprint(w, sharding.Report(&cfg, plans, pooling))
	for _, p := range plans {
		if !p.IsDistributed() || p.NumShards < 2 {
			continue
		}
		st := sharding.Balance(&cfg, p, pooling)
		fmt.Fprintf(w, "%-22s capacity spread %.2fx, pooling spread %.2fx\n",
			p.Name(), st.CapacitySpread, st.PoolingSpread)
	}
	fmt.Fprintln(w, "\npaper: load-balanced capacities vary up to 50%; capacity-balanced pooling varies up to 4.7x;")
	fmt.Fprintln(w, "NSBP-2 puts each net on its own shard with net2 holding ~4.75x net1's bytes at ~6% of its work")
	return nil
}
