package experiments

import (
	"bytes"
	"fmt"
	"io"
	"math"
	"time"

	"repro/internal/cluster"
	"repro/internal/model"
	"repro/internal/serve"
	"repro/internal/sharding"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Reshard evaluates online resharding under load drift: a DRM1
// load-balanced deployment is driven with its design workload, then the
// hot-feature distribution drifts onto one shard's tables (total pooling
// held constant, so a perfect rebalance can fully recover), and a
// live rebalance pass — bounded by a move budget — migrates tables
// between serving shards. The sweep reports P99 before drift, during
// drift, and after rebalance for each (skew, budget) cell, then replays
// one stream *through* a migration and checks the scores are
// byte-identical to a non-migrating control deployment.
func (r *Runner) Reshard(w io.Writer) error {
	writeHeader(w, "Online resharding: load drift x move budget (DRM1, load-bal 4 shards)")
	m := r.Model("DRM1")
	cfg := m.Config
	pooling := r.Pooling("DRM1")
	basePlan, err := sharding.LoadBalanced(&cfg, 4, pooling)
	if err != nil {
		return err
	}
	n := r.P.Requests

	// Drift concentrates heat on the tables the plan placed on one shard,
	// scaling the remaining tables down so total pooling stays constant:
	// the workload's *distribution* drifts, not its volume, and the
	// pre-drift P99 is the recovery target.
	hotShard := &basePlan.Shards[0]
	var hotPool, totalPool float64
	for _, id := range hotShard.Tables {
		hotPool += pooling[id]
	}
	for _, p := range pooling {
		totalPool += p
	}
	hotShare := hotPool / totalPool
	// The strongest feasible drift leaves cold tables a sliver of their
	// pooling (cold scale ≥ 0: skew ≤ 1/hotShare).
	maxSkew := 0.95 / hotShare
	skews := []float64{2}
	if maxSkew > 3.5 {
		skews = append(skews, 3.5)
	} else if maxSkew > 2.4 {
		skews = append(skews, maxSkew)
	}
	fmt.Fprintf(w, "hot shard 1 holds %d tables, %.0f%% of pooling; drift scales them x{%.3g} with cold tables compensating\n\n",
		len(hotShard.Tables), 100*hotShare, skews)

	// Two trace-derived views of every phase: the bounding shard's
	// sparse-op time (the absolute quantity a balanced placement
	// minimizes) and the shard imbalance ratio — per-request max/mean of
	// sparse-shard op time, which cancels host noise shared across shards
	// and reads 1.0 at perfect balance. Client E2E P50 is shown for
	// scale; with tens of requests per phase its P99 is a max statistic
	// that one scheduler hiccup on a shared host dominates.
	fmt.Fprintf(w, "%-6s %-8s %-7s %-11s %-11s %-11s %-10s %-11s %-9s %s\n",
		"skew", "budget", "moves", "imb pre", "imb drift", "imb post", "bound p/p", "e2e p50", "KiB", "")
	for _, skew := range skews {
		drift := driftSkew(&cfg, basePlan, pooling, skew)
		for _, budget := range []int{0, 2, 8} {
			row, err := r.reshardCell(m, basePlan, drift, budget, n)
			if err != nil {
				return fmt.Errorf("reshard skew %.3g budget %d: %w", skew, budget, err)
			}
			note := ""
			if row.moves == 0 {
				note = "(no moves)"
			}
			fmt.Fprintf(w, "%-6.3g %-8d %-7d %-11.2f %-11.2f %-11.2f %-10.2f %-11s %-9.0f %s\n",
				skew, budget, row.moves,
				row.preImb, row.duringImb, row.postImb,
				row.post/row.pre,
				fmt.Sprintf("%.2fms", row.e2eP50*1e3),
				float64(row.bytes)/1024, note)
		}
	}

	// Correctness under live migration: replay one deterministic stream
	// while a rebalance runs mid-stream, against a control deployment
	// that never migrates. Scores must match bit for bit.
	drift := driftSkew(&cfg, basePlan, pooling, skews[len(skews)-1])
	identical, total, duringMig, err := r.reshardIdentity(m, basePlan, drift, n, cluster.Options{Seed: r.P.Seed})
	if err != nil {
		return fmt.Errorf("reshard identity: %w", err)
	}
	verdict := "byte-identical"
	if !identical {
		verdict = "MISMATCH"
	}
	fmt.Fprintf(w, "\nmigration identity: %d requests replayed, %d completed while rows streamed: scores %s vs control\n",
		total, duringMig, verdict)
	fmt.Fprintln(w, "\nReading: budget 0 is the knob's off position — the drifted imbalance\npersists untouched. A small budget moves the few hottest tables and\nbuys most of the recovery; larger budgets walk the imbalance back\ntoward the pre-drift ~1.1 and the bounding shard's op time back to\nwithin ~15% of its pre-drift baseline (bound p/p ≈ 1) — all while\nserving, with mid-migration lookups byte-identical to the control.")
	return nil
}

// boundShardOps extracts one request's bounding sparse-shard operator
// time — the quantity a balanced placement minimizes.
func boundShardOps(b *trace.RequestBreakdown) time.Duration {
	var bound time.Duration
	for shard, d := range b.PerShardOpTime {
		if shard != "main" && d > bound {
			bound = d
		}
	}
	return bound
}

// shardImbalance extracts one request's max/mean ratio of sparse-shard
// operator time (1.0 = perfectly balanced).
func shardImbalance(b *trace.RequestBreakdown) float64 {
	var bound, sum time.Duration
	count := 0
	for shard, d := range b.PerShardOpTime {
		if shard == "main" {
			continue
		}
		sum += d
		count++
		if d > bound {
			bound = d
		}
	}
	if count == 0 || sum == 0 {
		return 1
	}
	return float64(bound) * float64(count) / float64(sum)
}

type reshardRow struct {
	moves              int
	bytes              int64
	pre                float64 // bounding-shard op-time P50, seconds
	during             float64
	post               float64
	preImb             float64 // shard imbalance ratio P50 per phase
	duringImb, postImb float64
	e2eP50             float64 // post-phase client E2E P50, seconds
}

// reshardCell measures one (drift, budget) cell: baseline replay, drift
// replay, live rebalance, post replay — one cluster, no restarts.
func (r *Runner) reshardCell(m *model.Model, plan *sharding.Plan, drift map[int]float64, budget, n int) (*reshardRow, error) {
	cl, err := cluster.Boot(m, clonePlan(plan), cluster.Options{Seed: r.P.Seed})
	if err != nil {
		return nil, err
	}
	defer cl.Close()
	client, err := cl.DialMain()
	if err != nil {
		return nil, err
	}
	defer client.Close()
	rep := serve.NewReplayer(client)
	gen := workload.NewGenerator(m.Config, r.P.Seed)
	if warm := rep.RunSerial(gen.GenerateBatch(r.P.Warmup)); warm.Failed() > 0 {
		return nil, fmt.Errorf("warmup: %v", warm.Errors[0])
	}

	// One fixed trace per cell: the drift phases replay the *same*
	// requests with bags reshaped, so phase-to-phase P99 deltas come from
	// placement, not from fresh draws of the lognormal size tail.
	base := gen.GenerateBatch(n)
	skewed := workload.ApplySkew(base, drift)

	// phase replays one stream with fresh traces and returns the
	// bounding-shard op-time P50, the imbalance-ratio P50, and the
	// client E2E P50.
	phase := func(reqs []*workload.Request) (float64, float64, float64, error) {
		cl.ResetTraces()
		res := rep.RunSerial(reqs)
		if res.Failed() > 0 {
			return 0, 0, 0, res.Errors[0]
		}
		bs := trace.Analyze(cl.Collector.Gather(), "main")
		bound := componentQuantile(bs, boundShardOps, 0.50)
		imbs := make([]float64, len(bs))
		for i := range bs {
			imbs[i] = shardImbalance(&bs[i])
		}
		imb := stats.NewSample(imbs).Quantile(0.50)
		e2eP50 := stats.NewDurationSample(res.ClientE2E).P50()
		return bound, imb, e2eP50, nil
	}

	row := &reshardRow{}
	if row.pre, row.preImb, _, err = phase(base); err != nil {
		return nil, err
	}

	// Drift starts; the accounting window resets with it so the
	// rebalancer plans from drifted load only.
	mg, err := cl.Migrator()
	if err != nil {
		return nil, err
	}
	if _, err := mg.CollectLoad(true); err != nil {
		return nil, err
	}
	if row.during, row.duringImb, _, err = phase(skewed); err != nil {
		return nil, err
	}

	report, err := cl.Rebalance(sharding.RebalanceOptions{MoveBudget: budget})
	if err != nil {
		return nil, err
	}
	row.moves = len(report.Plan.Moves)
	row.bytes = report.BytesMoved

	if row.post, row.postImb, row.e2eP50, err = phase(skewed); err != nil {
		return nil, err
	}
	return row, nil
}

// reshardIdentity replays the same drifted stream through a migrating
// deployment and a static control, with the rebalance racing the middle
// of the replay, and compares scores bitwise. Both deployments boot with
// the same options, so the check also covers tiered configurations (the
// tiered experiment passes a Tier config to prove cache coherence across
// a cutover).
func (r *Runner) reshardIdentity(m *model.Model, plan *sharding.Plan, drift map[int]float64, n int, opts cluster.Options) (identical bool, total, duringMig int, err error) {
	stream := func() []*workload.Request {
		gen := workload.NewGenerator(m.Config, r.P.Seed+42)
		return workload.ApplySkew(gen.GenerateBatch(2*n), drift)
	}

	replay := func(migrate bool) ([][]float32, int, error) {
		cl, err := cluster.Boot(m, clonePlan(plan), opts)
		if err != nil {
			return nil, 0, err
		}
		defer cl.Close()
		client, err := cl.DialMain()
		if err != nil {
			return nil, 0, err
		}
		defer client.Close()
		rep := serve.NewReplayer(client)
		reqs := stream()
		// First half builds the measured load the rebalancer will act on.
		half := reqs[:n]
		scores, res := rep.RunSerialScored(half)
		if res.Failed() > 0 {
			return nil, 0, res.Errors[0]
		}
		rebalDone := make(chan error, 1)
		if migrate {
			go func() {
				_, err := cl.Rebalance(sharding.RebalanceOptions{MoveBudget: 8})
				rebalDone <- err
			}()
		} else {
			rebalDone <- nil
		}
		overlapped := 0
		migrating := migrate
		for _, req := range reqs[n:] {
			s, _, err := rep.Send(req)
			if err != nil {
				return nil, 0, err
			}
			scores = append(scores, s)
			if migrating {
				select {
				case err := <-rebalDone:
					if err != nil {
						return nil, 0, err
					}
					migrating = false
				default:
					overlapped++
				}
			}
		}
		if migrating {
			if err := <-rebalDone; err != nil {
				return nil, 0, err
			}
		}
		return scores, overlapped, nil
	}

	control, _, err := replay(false)
	if err != nil {
		return false, 0, 0, err
	}
	migrated, overlapped, err := replay(true)
	if err != nil {
		return false, 0, 0, err
	}
	identical = len(control) == len(migrated)
	if identical {
		for i := range control {
			if !bytes.Equal(float32Bytes(control[i]), float32Bytes(migrated[i])) {
				identical = false
				break
			}
		}
	}
	return identical, len(migrated), overlapped, nil
}

// driftSkew builds the per-table pooling multipliers: shard 1's tables
// get the skew factor, every other table a compensating factor chosen so
// total expected pooling is unchanged.
func driftSkew(cfg *model.Config, plan *sharding.Plan, pooling map[int]float64, skew float64) map[int]float64 {
	hot := make(map[int]bool)
	var hotPool, totalPool float64
	for _, id := range plan.Shards[0].Tables {
		hot[id] = true
		hotPool += pooling[id]
	}
	for _, p := range pooling {
		totalPool += p
	}
	cold := (totalPool - skew*hotPool) / (totalPool - hotPool)
	if cold < 0 {
		cold = 0
	}
	out := make(map[int]float64, len(cfg.Tables))
	for _, t := range cfg.Tables {
		if hot[t.ID] {
			out[t.ID] = skew
		} else {
			out[t.ID] = cold
		}
	}
	return out
}

// clonePlan deep-copies a plan so a rebalanced cluster cannot alias the
// caller's (shared, memoized) plan value.
func clonePlan(p *sharding.Plan) *sharding.Plan {
	out := &sharding.Plan{ModelName: p.ModelName, Strategy: p.Strategy, NumShards: p.NumShards}
	out.Shards = make([]sharding.Assignment, len(p.Shards))
	for i, a := range p.Shards {
		out.Shards[i] = sharding.Assignment{
			Shard:  a.Shard,
			Tables: append([]int(nil), a.Tables...),
			Parts:  append([]sharding.PartRef(nil), a.Parts...),
		}
	}
	return out
}

func float32Bytes(xs []float32) []byte {
	out := make([]byte, 0, 4*len(xs))
	for _, x := range xs {
		b := math.Float32bits(x)
		out = append(out, byte(b), byte(b>>8), byte(b>>16), byte(b>>24))
	}
	return out
}
