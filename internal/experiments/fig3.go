package experiments

import (
	"fmt"
	"io"

	"repro/internal/cluster"
	"repro/internal/serve"
	"repro/internal/sharding"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Fig3 reproduces the paper's example distributed trace: one request
// against a 2-shard load-balanced DRM1 deployment, rendered as the
// shard-sliced timeline of Fig. 3. "All inference requests are forwarded
// to the main shard, which then invokes sparse shards when an RPC
// operator is encountered" — the asynchronous calls are visible as
// windows under the main shard's dense operators, and the sparse shards'
// spans sit inside those windows after skew realignment.
func (r *Runner) Fig3(w io.Writer) error {
	writeHeader(w, "Fig. 3 — Example trace of distributed inference (DRM1, load-bal 2 shards)")
	m := r.Model("DRM1")
	plan, err := sharding.LoadBalanced(&m.Config, 2, r.Pooling("DRM1"))
	if err != nil {
		return err
	}
	// Deliberate clock skew proves the visualizer's realignment.
	cl, err := cluster.Boot(m, plan, cluster.Options{Seed: r.P.Seed, ClockSkew: true})
	if err != nil {
		return err
	}
	defer cl.Close()
	client, err := cl.DialMain()
	if err != nil {
		return err
	}
	defer client.Close()

	gen := workload.NewGenerator(m.Config, r.P.Seed)
	rep := serve.NewReplayer(client)
	if res := rep.RunSerial(gen.GenerateBatch(3)); res.Failed() > 0 {
		return res.Errors[0]
	}
	cl.ResetTraces()
	if res := rep.RunSerial(gen.GenerateBatch(1)); res.Failed() > 0 {
		return res.Errors[0]
	}

	spans := cl.Collector.Gather()
	// The replayer allocates trace ids from 1; after reset the measured
	// request is the highest id present.
	var traceID uint64
	for _, s := range spans {
		if s.TraceID > traceID {
			traceID = s.TraceID
		}
	}
	tl, err := trace.BuildTimeline(spans, traceID, "main")
	if err != nil {
		return err
	}
	fmt.Fprint(w, tl.Render(96))
	fmt.Fprintln(w, "\nlegend: = operator   ~ ser/de   > RPC outstanding window   - request/service   . net overhead")
	fmt.Fprintln(w, "(export the same trace as Chrome trace-event JSON via trace.Timeline.ExportChromeTrace)")
	return nil
}
