package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/platform"
	"repro/internal/replication"
	"repro/internal/sharding"
	"repro/internal/trace"
)

// Replication quantifies the Section VII-C discussion with measured
// numbers: at a common target QPS, how many servers and how much fleet
// model memory do the singular and 8-shard load-balanced deployments of
// DRM1 need? Singular replication duplicates every embedding table with
// each compute-driven replica; distributed replication buys dense compute
// with dense-only replicas.
func (r *Runner) Replication(w io.Writer) error {
	writeHeader(w, "§VII-C — Replication economics (measured loads, DRM1)")
	plans, err := r.Plans("DRM1")
	if err != nil {
		return err
	}
	m := r.Model("DRM1")

	singularPlan := plans[0]
	distPlan := findPlan(plans, sharding.StrategyLoad, 8)
	sres, err := r.Run("DRM1", singularPlan, runMode{})
	if err != nil {
		return err
	}
	dres, err := r.Run("DRM1", distPlan, runMode{})
	if err != nil {
		return err
	}

	singularLoad := replication.Load{MainCPUPerRequest: mainCPU(sres.breakdowns)}
	distLoad := replication.Load{MainCPUPerRequest: mainCPU(dres.breakdowns)}
	for shard := 1; shard <= distPlan.NumShards; shard++ {
		distLoad.SparseCPUPerRequest = append(distLoad.SparseCPUPerRequest,
			shardCPU(dres.breakdowns, core.ServiceName(shard)))
	}

	plat := platform.SCLarge()
	spec := replication.ServerSpec{
		Name: plat.Name, Cores: 40, TargetUtilization: 0.5,
		MemoryBytes: plat.MemoryBytes * 4, // headroom so singular stays feasible at this scale
	}
	// A data-center tier: 1024×-scaled stand-in for tens of thousands of QPS.
	const targetQPS = 20000
	sAdv, err := replication.Advise(m, singularPlan, singularLoad, spec, targetQPS)
	if err != nil {
		return err
	}
	dAdv, err := replication.Advise(m, distPlan, distLoad, spec, targetQPS)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "measured main CPU/request: singular %v, distributed %v\n",
		singularLoad.MainCPUPerRequest.Round(time.Microsecond),
		distLoad.MainCPUPerRequest.Round(time.Microsecond))
	fmt.Fprint(w, replication.Compare(sAdv, dAdv))
	fmt.Fprintln(w, "\npaper: \"the memory requirements of replication are reduced\" by decoupling")
	fmt.Fprintln(w, "dense (compute-bound) from sparse (memory-bound) resources (Section VII-C)")
	return nil
}

// mainCPU averages per-request main-shard CPU (ops + serde + service that
// the main shard performs).
func mainCPU(bs []trace.RequestBreakdown) time.Duration {
	var total time.Duration
	for i := range bs {
		b := &bs[i]
		total += b.PerShardOpTime["main"] + b.MainSerDe + b.MainService + b.MainNetOverhead
	}
	return total / time.Duration(len(bs))
}

// shardCPU averages one sparse shard's per-request CPU.
func shardCPU(bs []trace.RequestBreakdown, svc string) time.Duration {
	var total time.Duration
	for i := range bs {
		total += bs[i].PerShardOpTime[svc]
	}
	// Shard-side serde/service is not split per shard in the breakdown;
	// operator time dominates and underestimates uniformly, which leaves
	// replica ratios intact.
	return total / time.Duration(len(bs))
}
