package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/stats"
	"repro/internal/trace"
)

// latencyStack builds the Fig. 8a-style E2E latency stack for one run:
// P50 of each main-shard component across requests, normalized later by
// the group.
func latencyStack(label string, bs []trace.RequestBreakdown) *stats.Stack {
	st := stats.NewStack(label)
	st.Set("Dense Ops", componentQuantile(bs, trace.CompDenseOps, 0.5))
	st.Set("Embedded Portion", componentQuantile(bs, trace.CompEmbedded, 0.5))
	st.Set("RPC Ser/De", componentQuantile(bs, trace.CompMainSerDe, 0.5))
	st.Set("RPC Service Function", componentQuantile(bs, trace.CompMainService, 0.5))
	st.Set("Net Overhead", componentQuantile(bs, trace.CompMainNetOverhead, 0.5))
	return st
}

// embeddedStack builds the Fig. 8b-style embedded-portion stack: the
// attribution inside the bounding sparse shard request. Singular runs
// have only local sparse op time.
func embeddedStack(label string, bs []trace.RequestBreakdown) *stats.Stack {
	st := stats.NewStack(label)
	distributed := false
	for i := range bs {
		if bs[i].RPCCalls > 0 {
			distributed = true
			break
		}
	}
	if !distributed {
		st.Set("Sparse Ops", componentQuantile(bs, trace.CompEmbedded, 0.5))
		return st
	}
	st.Set("Sparse Ops", componentQuantile(bs, trace.CompBoundSparseOps, 0.5))
	st.Set("RPC Ser/De", componentQuantile(bs, trace.CompBoundSerDe, 0.5))
	st.Set("RPC Service Function", componentQuantile(bs, trace.CompBoundService, 0.5))
	st.Set("Net Overhead", componentQuantile(bs, trace.CompBoundNetOh, 0.5))
	st.Set("Network Latency", componentQuantile(bs, trace.CompBoundNetwork, 0.5))
	return st
}

// cpuStack builds the Fig. 9-style aggregate CPU stack (all shards).
func cpuStack(label string, bs []trace.RequestBreakdown) *stats.Stack {
	st := stats.NewStack(label)
	st.Set("Caffe2 Ops", componentQuantile(bs, func(b *trace.RequestBreakdown) time.Duration { return b.CPUOps }, 0.5))
	st.Set("RPC Ser/De", componentQuantile(bs, func(b *trace.RequestBreakdown) time.Duration { return b.CPUSerDe }, 0.5))
	st.Set("Service Overhead", componentQuantile(bs, func(b *trace.RequestBreakdown) time.Duration { return b.CPUService }, 0.5))
	return st
}

// Fig8 renders the P50 latency attribution by sharding strategy for all
// three models: the full E2E stack (8a) and the embedded-portion stack of
// the bounding shard (8b).
//
// Paper shapes: only the embedded portion changes materially across
// configurations; network latency exceeds sparse-operator time on every
// distributed config; DRM1's embedded portion is ~10% of E2E singular
// and ~32% at 1-shard.
func (r *Runner) Fig8(w io.Writer) error {
	writeHeader(w, "Fig. 8 — P50 latency attribution by sharding configuration")
	for _, name := range []string{"DRM1", "DRM2", "DRM3"} {
		plans, err := r.Plans(name)
		if err != nil {
			return err
		}
		e2e := stats.NewStackGroup(fmt.Sprintf("%s — 8a: E2E latency stack (normalized)", name))
		emb := stats.NewStackGroup(fmt.Sprintf("%s — 8b: embedded-portion stack (normalized)", name))
		for _, p := range plans {
			res, err := r.Run(name, p, runMode{})
			if err != nil {
				return err
			}
			e2e.Append(latencyStack(p.Name(), res.breakdowns))
			emb.Append(embeddedStack(p.Name(), res.breakdowns))
		}
		fmt.Fprint(w, e2e.Render())
		fmt.Fprintln(w)
		fmt.Fprint(w, emb.Render())
		fmt.Fprintln(w)
	}
	return nil
}

// Fig9 renders the P50 aggregate CPU time stack (all shards) per
// configuration: compute overhead is proportional to RPC ops issued, and
// NSBP has the least because each shard serves one net.
func (r *Runner) Fig9(w io.Writer) error {
	writeHeader(w, "Fig. 9 — P50 aggregate CPU time by sharding configuration")
	for _, name := range []string{"DRM1", "DRM2", "DRM3"} {
		plans, err := r.Plans(name)
		if err != nil {
			return err
		}
		g := stats.NewStackGroup(fmt.Sprintf("%s — CPU time stack (normalized, all shards)", name))
		for _, p := range plans {
			res, err := r.Run(name, p, runMode{})
			if err != nil {
				return err
			}
			g.Append(cpuStack(p.Name(), res.breakdowns))
		}
		fmt.Fprint(w, g.Render())
		fmt.Fprintln(w)
	}
	return nil
}

// Fig13 contrasts default-batch and single-batch latency stacks for DRM1
// and DRM2 (Section VI-F): with the whole request in one batch, sparse
// operators have enough work for 8-shard configurations to beat singular.
func (r *Runner) Fig13(w io.Writer) error {
	writeHeader(w, "Fig. 13 — Latency stacks: default vs single batch (DRM1, DRM2)")
	const singleBatch = 1 << 20
	for _, name := range []string{"DRM1", "DRM2"} {
		plans, err := r.Plans(name)
		if err != nil {
			return err
		}
		e2e := stats.NewStackGroup(fmt.Sprintf("%s — E2E latency stacks", name))
		emb := stats.NewStackGroup(fmt.Sprintf("%s — embedded-portion stacks", name))
		for _, p := range plans {
			def, err := r.Run(name, p, runMode{})
			if err != nil {
				return err
			}
			single, err := r.Run(name, p, runMode{batchOverride: singleBatch})
			if err != nil {
				return err
			}
			e2e.Append(latencyStack(p.Name(), def.breakdowns))
			e2e.Append(latencyStack(p.Name()+" [1batch]", single.breakdowns))
			emb.Append(embeddedStack(p.Name(), def.breakdowns))
			emb.Append(embeddedStack(p.Name()+" [1batch]", single.breakdowns))
		}
		fmt.Fprint(w, e2e.Render())
		fmt.Fprintln(w)
		fmt.Fprint(w, emb.Render())
		fmt.Fprintln(w)
	}
	return nil
}

// Fig14 contrasts default-batch and single-batch CPU stacks: each batch
// issues its own RPC ops, so compute overhead is multiplicative in batch
// count and single-batch shrinks the marginal cost of sharding.
func (r *Runner) Fig14(w io.Writer) error {
	writeHeader(w, "Fig. 14 — CPU stacks: default vs single batch (DRM1, DRM2)")
	const singleBatch = 1 << 20
	for _, name := range []string{"DRM1", "DRM2"} {
		plans, err := r.Plans(name)
		if err != nil {
			return err
		}
		g := stats.NewStackGroup(fmt.Sprintf("%s — CPU stacks (all shards)", name))
		for _, p := range plans {
			def, err := r.Run(name, p, runMode{})
			if err != nil {
				return err
			}
			single, err := r.Run(name, p, runMode{batchOverride: singleBatch})
			if err != nil {
				return err
			}
			g.Append(cpuStack(p.Name(), def.breakdowns))
			g.Append(cpuStack(p.Name()+" [1batch]", single.breakdowns))
		}
		fmt.Fprint(w, g.Render())
		fmt.Fprintln(w)
	}
	return nil
}
