package experiments

import (
	"bytes"
	"fmt"
	"io"
	"runtime"
	"time"

	"repro/internal/cluster"
	"repro/internal/frontend"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/sharding"
	"repro/internal/stats"
	"repro/internal/workload"
)

// CoServe evaluates multi-model co-serving: two DRM1 tenant copies
// share one fleet of six server units (three replica steps of a
// two-shard plan) through a single front door, and traffic reverses
// between two phases — tenant A hot then tenant B hot, each hot rate
// sized at ~1.4x what one replica step sustains and ~0.7x what two do.
// Three deployments spend the identical hardware: a static split
// favoring A (2+1 steps), a static split favoring B (1+2), and an
// elastic fleet that starts balanced (1+1 plus a free step) and lets
// the capacity planner move steps as phases shift — scale-up streams a
// snapshot rebuild into a parked slot, scale-down drains and returns
// the servers. A static fleet must pick a winner, so whichever tenant
// it shorts blows its SLA in the phase where that tenant is hot; the
// elastic fleet re-allocates and meets every per-model SLA. Every
// scored response in every deployment is compared bitwise against a
// dedicated single-tenant control: consolidation and live reallocation
// may change latency, never scores.
func (r *Runner) CoServe(w io.Writer) error {
	writeHeader(w, "Multi-model co-serving: elastic vs static at equal hardware (2x DRM1 tenants, 6 units)")
	m := r.Model("DRM1")
	cfg := m.Config
	basePlan, err := sharding.LoadBalanced(&cfg, 2, r.Pooling("DRM1"))
	if err != nil {
		return err
	}

	n := r.P.Requests
	genA := workload.NewGenerator(cfg, r.P.Seed+11)
	genB := workload.NewGenerator(cfg, r.P.Seed+13)
	warm := genA.GenerateBatch(r.P.Warmup)
	streamA := genA.GenerateBatch(n)
	streamB := genB.GenerateBatch(n)

	// Dedicated control: one single-tenant cluster replays both scored
	// streams — the identity baseline for every deployment, and the
	// latency calibration for the shared SLA budget.
	wantA, wantB, budget, p50, err := r.coserveControl(m, basePlan, warm, streamA, streamB)
	if err != nil {
		return fmt.Errorf("coserve control: %w", err)
	}
	sla := serve.SLA{Budget: budget, TargetQuantile: 0.9}

	// Calibrate the phase rates from the drain gate's capacity model: a
	// tenant holding two of the three replica steps owns 4/6 units of
	// execution credit, so it sustains (2/3)/p50 req/s; the hot rate is
	// 0.7x that — 1.4x what a single step's entitlement drains, while
	// fitting two steps with room. The cold tenant idles at a trickle.
	c2 := (2.0 / 3.0) / p50.Seconds()
	hotQPS, coldQPS := 0.7*c2, 0.06*c2
	if coldQPS < 4 {
		coldQPS = 4
	}

	type deployment struct {
		name             string
		initialA, slotsA int
		initialB, slotsB int
		elastic          bool
	}
	deployments := []deployment{
		// Calibration runs against static-A's two-step tenant, so it boots first.
		{name: "static-A", initialA: 2, slotsA: 2, initialB: 1, slotsB: 1},
		{name: "static-B", initialA: 1, slotsA: 1, initialB: 2, slotsB: 2},
		{name: "elastic", initialA: 1, slotsA: 2, initialB: 1, slotsB: 2, elastic: true},
	}

	fmt.Fprintf(w, "per-tenant SLA: p90 within %s (calibrated at the dedicated control); hardware fixed at 6 units everywhere\n", fmtMS(budget))
	fmt.Fprintf(w, "calibration: control p50 %s -> two replica steps sustain %.0f req/s -> hot %.0f q/s, cold %.0f q/s\n\n", fmtMS(p50), c2, hotQPS, coldQPS)
	fmt.Fprintf(w, "%-9s %-7s %-7s %-6s %-6s %-7s %-7s %-9s %-10s %s\n",
		"deploy", "phase", "tenant", "steps", "sent", "shed%", "late%", "p90", "SLA", "identity")

	elasticMet, allIdentical := true, true
	staticViolated := map[string]bool{}
	var elasticTimeline []cluster.MoveEvent
	var elasticStart time.Time

	for _, d := range deployments {
		fl, err := cluster.BootFleet([]cluster.TenantSpec{
			{
				Name: "drm1a", Model: m, Plan: clonePlan(basePlan),
				Frontend:        frontend.Config{Budget: budget, MaxQueue: 256},
				InitialReplicas: d.initialA, SlotReplicas: d.slotsA, MaxReplicas: 2,
			},
			{
				Name: "drm1b", Model: m, Plan: clonePlan(basePlan),
				Frontend:        frontend.Config{Budget: budget, MaxQueue: 256},
				InitialReplicas: d.initialB, SlotReplicas: d.slotsB, MaxReplicas: 2,
			},
		}, cluster.FleetOptions{
			Capacity:   6,
			Seed:       r.P.Seed,
			HedgeDelay: 25 * time.Millisecond,
			Obs:        obs.NewRegistry(),
		})
		if err != nil {
			return fmt.Errorf("coserve %s: boot: %w", d.name, err)
		}
		bootT := time.Now()
		reps := map[string]*serve.Replayer{}
		for _, tenant := range []string{"drm1a", "drm1b"} {
			client, err := fl.DialFront()
			if err != nil {
				fl.Close()
				return err
			}
			defer client.Close()
			reps[tenant] = serve.NewReplayerFor(client, tenant)
			if res := reps[tenant].RunSerial(warm); res.Failed() > 0 {
				fl.Close()
				return fmt.Errorf("coserve %s: %s warmup: %w", d.name, tenant, res.Errors[0])
			}
		}

		for phase, hot := range []string{"drm1a", "drm1b"} {
			cold := "drm1b"
			if hot == "drm1b" {
				cold = "drm1a"
			}
			if d.elastic {
				// Flush the planner's shed/busy cursors of the previous
				// phase, then drive bursts until it has re-homed capacity
				// onto the newly hot tenant.
				fl.Step()
				if err := r.coservePressure(fl, reps[hot], genA, hot, hotQPS); err != nil {
					fl.Close()
					return fmt.Errorf("coserve elastic phase %d: %w", phase+1, err)
				}
			}
			// Settle before measuring. Each fleet carries ~800MB of
			// embedding tables and a scale-up copies another replica
			// step's worth, so collect that garbage at the boundary
			// rather than mid-flood, where a GC stretch reads as
			// serving-path latency; then the paced settle rounds reset
			// the admission estimator's median and the drain gate's
			// debt, so the measured flood sees only this phase's
			// contention.
			runtime.GC()
			if !coserveSettle(reps["drm1a"], reps["drm1b"], genA, genB, p50) {
				fmt.Fprintf(w, "# %s phase %d: settle never certified clean; measurements may carry overload hangover\n", d.name, phase+1)
			}

			hotRes, coldRes := r.coserveFlood(reps[hot], reps[cold], genA, genB, hotQPS, coldQPS)
			for _, cell := range []struct {
				tenant string
				res    *serve.Result
			}{{hot, hotRes}, {cold, coldRes}} {
				rep := sla.Evaluate(cell.res)
				verdict := "MET"
				if !rep.Met {
					verdict = "VIOLATED"
				}
				want, stream := wantA, streamA
				if cell.tenant == "drm1b" {
					want, stream = wantB, streamB
				}
				served, mismatched := scoredIdentity(reps[cell.tenant], stream, want)
				identity := fmt.Sprintf("%d/%d identical", served-mismatched, served)
				if mismatched > 0 {
					allIdentical = false
					identity = "MISMATCH"
				}
				if d.elastic {
					elasticMet = elasticMet && rep.Met
				} else if !rep.Met {
					staticViolated[d.name] = true
				}
				steps := fl.TenantCluster(cell.tenant).ActiveReplicas()
				fmt.Fprintf(w, "%-9s %-7d %-7s %-6d %-6d %-7.1f %-7.1f %-9s %-10s %s\n",
					d.name, phase+1, cell.tenant, steps, rep.Total,
					100*rep.FallbackRate, 100*rep.LateRate,
					fmtMS(rep.AchievedQuantileLatency), verdict, identity)
			}
		}
		if d.elastic {
			elasticTimeline, elasticStart = fl.Timeline(), bootT
		}
		fl.Close()
		runtime.GC() // reclaim this fleet's tables before the next boots
	}

	fmt.Fprintf(w, "\nreallocation timeline (elastic):\n")
	for _, ev := range elasticTimeline {
		fmt.Fprintf(w, "  +%-8s %s %d->%d  %-34s rebuild %6.1f KiB in %s\n",
			ev.At.Sub(elasticStart).Round(time.Millisecond), ev.Model, ev.From, ev.To,
			"("+ev.Reason+")", float64(ev.RebuildBytes)/1024, ev.Took.Round(time.Millisecond))
	}
	fmt.Fprintf(w, "\nelastic met every per-model SLA: %v; static-A violated an SLA: %v; static-B violated an SLA: %v\n",
		elasticMet, staticViolated["static-A"], staticViolated["static-B"])
	fmt.Fprintf(w, "all scored responses byte-identical to dedicated controls: %v\n", allIdentical)
	fmt.Fprintln(w, "\nReading: six units cannot statically satisfy both phases — whichever\ntenant the split shorts is pinned at one replica step of entitlement\nwhile its load wants two, and its shed rate blows the SLA allowance.\nThe elastic fleet watches queue occupancy, executor busy time, and\nsheds; when the phases flip it reclaims the idle tenant's step and\nstreams the hot tenant's tables into a parked slot from a healthy\npeer. Capacity follows the load, every SLA holds, and scores stay\nbitwise identical to dedicated fleets throughout.")
	return nil
}

// coserveControl replays both tenants' scored streams against one
// dedicated single-tenant cluster: the byte-identity baselines, plus a
// latency sample that calibrates the shared SLA budget (generous over
// the un-contended p50, so only queueing from under-entitlement — not
// host noise — can violate it) and the p50 itself, which anchors the
// phase-rate calibration.
func (r *Runner) coserveControl(m *model.Model, plan *sharding.Plan, warm, streamA, streamB []*workload.Request) ([][]float32, [][]float32, time.Duration, time.Duration, error) {
	cl, err := cluster.Boot(m, clonePlan(plan), cluster.Options{Seed: r.P.Seed})
	if err != nil {
		return nil, nil, 0, 0, err
	}
	defer cl.Close()
	client, err := cl.DialMain()
	if err != nil {
		return nil, nil, 0, 0, err
	}
	defer client.Close()
	rep := serve.NewReplayer(client)
	if res := rep.RunSerial(warm); res.Failed() > 0 {
		return nil, nil, 0, 0, res.Errors[0]
	}
	wantA, resA := rep.RunSerialScored(streamA)
	if resA.Failed() > 0 {
		return nil, nil, 0, 0, resA.Errors[0]
	}
	wantB, resB := rep.RunSerialScored(streamB)
	if resB.Failed() > 0 {
		return nil, nil, 0, 0, resB.Errors[0]
	}
	sample := stats.NewDurationSample(append(append([]time.Duration(nil), resA.ClientE2E...), resB.ClientE2E...))
	p50 := time.Duration(sample.P50() * float64(time.Second))
	budget := 8 * p50
	if floor := time.Duration(2.5 * sample.P99() * float64(time.Second)); budget < floor {
		budget = floor
	}
	return wantA, wantB, budget, p50, nil
}

// coservePressure drives overload bursts at the hot tenant and runs
// planner passes until the fleet has granted it a second replica step.
func (r *Runner) coservePressure(fl *cluster.Fleet, hotRep *serve.Replayer, gen *workload.Generator, hot string, hotQPS float64) error {
	deadline := time.Now().Add(20 * time.Second)
	for fl.TenantCluster(hot).ActiveReplicas() < 2 {
		if time.Now().After(deadline) {
			return fmt.Errorf("planner never granted %s a second step: timeline %+v", hot, fl.Timeline())
		}
		burst := gen.GenerateBatch(int(hotQPS*0.4) + 8)
		hotRep.RunOpenLoop(burst, hotQPS)
		fl.Step()
	}
	return nil
}

// coserveSettle drains overload hangover before a measured flood. The
// pressure bursts and serial scored passes leave two kinds of state
// behind: drain-gate debt (bounded at 4x the burst allowance, repaid
// by the sleep at the slowest tenant's 1/3-share rate) and a
// service-time median observed under contention. When that median
// exceeds the whole budget the frontend sheds even empty-queue
// requests, and only its 1-in-16 admission probes still execute — so
// each paced round below submits enough requests to guarantee probes.
// The loop exits once a full round runs shed-free on both tenants AND
// at latencies near the dedicated control's p50: shed-free alone only
// proves the median slipped under the budget, and a still-elevated
// median resumes shedding as soon as the flood builds queue depth.
func coserveSettle(repA, repB *serve.Replayer, genA, genB *workload.Generator, p50 time.Duration) bool {
	clean := func(res *serve.Result) bool {
		if res.Fallbacks > 0 || len(res.ClientE2E) == 0 {
			return false
		}
		s := stats.NewDurationSample(res.ClientE2E)
		return s.P50() <= 2.5*p50.Seconds()
	}
	time.Sleep(600 * time.Millisecond)
	for round := 0; round < 12; round++ {
		var resB *serve.Result
		done := make(chan struct{})
		go func() {
			defer close(done)
			resB = repB.RunOpenLoop(genB.GenerateBatch(18), 16)
		}()
		resA := repA.RunOpenLoop(genA.GenerateBatch(18), 16)
		<-done
		if clean(resA) && clean(resB) {
			return true
		}
	}
	return false
}

// coserveFlood runs one phase's measured traffic: the hot tenant at
// hotQPS and the cold tenant's trickle concurrently, ~2s each.
func (r *Runner) coserveFlood(hotRep, coldRep *serve.Replayer, hotGen, coldGen *workload.Generator, hotQPS, coldQPS float64) (*serve.Result, *serve.Result) {
	hotReqs := hotGen.GenerateBatch(int(2*hotQPS) + 8)
	coldReqs := coldGen.GenerateBatch(int(2*coldQPS) + 4)
	done := make(chan *serve.Result, 1)
	go func() { done <- coldRep.RunOpenLoop(coldReqs, coldQPS) }()
	hotRes := hotRep.RunOpenLoop(hotReqs, hotQPS)
	return hotRes, <-done
}

// scoredIdentity replays a scored stream serially and compares every
// served response bitwise against the control's scores. Shed requests
// are tolerated (they received the fallback, not wrong scores); served
// and mismatched counts come back for reporting.
func scoredIdentity(rep *serve.Replayer, stream []*workload.Request, want [][]float32) (served, mismatched int) {
	scores, _ := rep.RunSerialScored(stream)
	for i, s := range scores {
		if s == nil {
			continue
		}
		served++
		if !bytes.Equal(float32Bytes(s), float32Bytes(want[i])) {
			mismatched++
		}
	}
	return served, mismatched
}
