// Package experiments reproduces every table and figure of the paper's
// evaluation (Sections V–VII) on the scaled synthetic models: each
// experiment boots the relevant cluster configurations, replays the
// model's deterministic request stream, analyzes the cross-layer traces,
// and renders the same rows/series the paper reports. See DESIGN.md for
// the experiment index and EXPERIMENTS.md for measured-vs-paper results.
package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/cluster"
	"repro/internal/model"
	"repro/internal/platform"
	"repro/internal/serve"
	"repro/internal/sharding"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Params control experiment scale. Defaults reproduce the paper's shapes
// in tens of seconds; raise Requests for tighter quantiles.
type Params struct {
	// Requests per configuration (after warmup).
	Requests int
	// Warmup requests discarded before measurement.
	Warmup int
	// Seed drives workload generation and network jitter.
	Seed int64
	// QPS for the high-rate experiment (Fig. 16); 0 derives a rate that
	// loads the server to ~60% utilization, the scaled analogue of the
	// paper's 25 QPS.
	QPS float64
}

// DefaultParams are tuned for a laptop-class full-suite run.
func DefaultParams() Params {
	return Params{Requests: 60, Warmup: 6, Seed: 12345}
}

// runMode distinguishes cached measurement runs.
type runMode struct {
	batchOverride int
	qps           float64
	smallPlatform bool
}

// runResult holds everything the figures need from one configuration run.
type runResult struct {
	plan       *sharding.Plan
	breakdowns []trace.RequestBreakdown
	// kindOpTime sums main+sparse operator time by attribution kind
	// across all measured requests (Fig. 4's categories).
	kindOpTime map[string]time.Duration
}

// Runner memoizes models, plans, and measurement runs so figures that
// share configurations (6/8/9/10/12) reuse one replay.
type Runner struct {
	P       Params
	models  map[string]*model.Model
	pooling map[string]map[int]float64
	runs    map[string]*runResult
}

// NewRunner returns a runner with the given params.
func NewRunner(p Params) *Runner {
	if p.Requests <= 0 {
		p.Requests = DefaultParams().Requests
	}
	if p.Warmup <= 0 {
		p.Warmup = DefaultParams().Warmup
	}
	if p.Seed == 0 {
		p.Seed = DefaultParams().Seed
	}
	return &Runner{
		P:       p,
		models:  make(map[string]*model.Model),
		pooling: make(map[string]map[int]float64),
		runs:    make(map[string]*runResult),
	}
}

// Model returns the built (and cached) model.
func (r *Runner) Model(name string) *model.Model {
	if m, ok := r.models[name]; ok {
		return m
	}
	cfg := model.ByName(name)
	m := model.Build(cfg)
	r.models[name] = m
	return m
}

// Pooling returns cached per-table pooling estimates (lookups per
// request), sampled the way Section III-B2 describes.
func (r *Runner) Pooling(name string) map[int]float64 {
	if p, ok := r.pooling[name]; ok {
		return p
	}
	cfg := model.ByName(name)
	p := workload.EstimatePooling(workload.NewGenerator(cfg, r.P.Seed+777), 200)
	r.pooling[name] = p
	return p
}

// Plans returns the paper's configuration sweep for a model.
func (r *Runner) Plans(name string) ([]*sharding.Plan, error) {
	cfg := model.ByName(name)
	return sharding.AllConfigurations(&cfg, r.Pooling(name), false)
}

// Run measures one (model, plan, mode) configuration, memoized.
func (r *Runner) Run(name string, plan *sharding.Plan, mode runMode) (*runResult, error) {
	key := fmt.Sprintf("%s|%s|b%d|q%g|s%v", name, plan.Name(), mode.batchOverride, mode.qps, mode.smallPlatform)
	if res, ok := r.runs[key]; ok {
		return res, nil
	}
	res, err := r.measure(name, plan, mode)
	if err != nil {
		return nil, fmt.Errorf("experiments: %s %s: %w", name, plan.Name(), err)
	}
	r.runs[key] = res
	return res, nil
}

func (r *Runner) measure(name string, plan *sharding.Plan, mode runMode) (*runResult, error) {
	m := r.Model(name)
	opts := cluster.Options{
		BatchSize: mode.batchOverride,
		Seed:      r.P.Seed,
		ClockSkew: true,
	}
	if mode.smallPlatform {
		p := platform.SCSmall()
		opts.SparsePlatform = &p
	}
	cl, err := cluster.Boot(m, plan, opts)
	if err != nil {
		return nil, err
	}
	defer cl.Close()
	client, err := cl.DialMain()
	if err != nil {
		return nil, err
	}
	defer client.Close()

	// One deterministic request stream per model: every configuration
	// replays the identical trace, as the paper's replayer does.
	gen := workload.NewGenerator(m.Config, r.P.Seed)
	rep := serve.NewReplayer(client)
	if warm := rep.RunSerial(gen.GenerateBatch(r.P.Warmup)); warm.Failed() > 0 {
		return nil, fmt.Errorf("warmup failed: %v", warm.Errors[0])
	}
	cl.ResetTraces()

	reqs := gen.GenerateBatch(r.P.Requests)
	var result *serve.Result
	if mode.qps > 0 {
		result = rep.RunOpenLoop(reqs, mode.qps)
	} else {
		result = rep.RunSerial(reqs)
	}
	if result.Failed() > 0 {
		return nil, fmt.Errorf("%d/%d requests failed: %v", result.Failed(), result.Sent, result.Errors[0])
	}

	spans := cl.Collector.Gather()
	if drops := cl.Collector.TotalDrops(); drops > 0 {
		return nil, fmt.Errorf("%d spans dropped; raise SpanCapacity", drops)
	}
	res := &runResult{
		plan:       plan,
		breakdowns: trace.Analyze(spans, "main"),
		kindOpTime: make(map[string]time.Duration),
	}
	for _, s := range spans {
		if s.Layer == trace.LayerOp && s.Kind != "Wait" {
			res.kindOpTime[s.Kind] += s.Dur
		}
	}
	if len(res.breakdowns) != r.P.Requests {
		return nil, fmt.Errorf("analyzed %d of %d requests", len(res.breakdowns), r.P.Requests)
	}
	return res, nil
}

// componentQuantile reduces a component across a run's requests.
func componentQuantile(bs []trace.RequestBreakdown, c trace.Component, q float64) float64 {
	return stats.NewSample(trace.ComponentSeconds(bs, c)).Quantile(q)
}

// quantilesOf extracts the paper's P50/P90/P99 triple for a component.
func quantilesOf(bs []trace.RequestBreakdown, c trace.Component) stats.Quantiles {
	s := stats.NewSample(trace.ComponentSeconds(bs, c))
	return s.QuantileTriple()
}

// writeHeader prints a figure banner.
func writeHeader(w io.Writer, title string) {
	fmt.Fprintf(w, "\n================================================================\n%s\n================================================================\n", title)
}
