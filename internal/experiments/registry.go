package experiments

import (
	"fmt"
	"io"
	"sort"
)

// Experiment is one reproducible table or figure.
type Experiment struct {
	// ID is the CLI name ("fig6", "tab2").
	ID string
	// Title describes the artifact.
	Title string
	// Run renders the experiment to w.
	Run func(r *Runner, w io.Writer) error
}

// All returns every experiment in paper order.
func All() []Experiment {
	return []Experiment{
		{"fig1", "Historical model growth", func(r *Runner, w io.Writer) error { return r.Fig1(w) }},
		{"fig3", "Example distributed trace", func(r *Runner, w io.Writer) error { return r.Fig3(w) }},
		{"fig4", "Operator compute attribution", func(r *Runner, w io.Writer) error { return r.Fig4(w) }},
		{"fig5", "Embedding table size distribution", func(r *Runner, w io.Writer) error { return r.Fig5(w) }},
		{"tab2", "Sharding results for DRM1", func(r *Runner, w io.Writer) error { return r.Table2(w) }},
		{"fig6", "Latency/compute overheads, DRM1+DRM2", func(r *Runner, w io.Writer) error { return r.Fig6(w) }},
		{"fig7", "Latency/compute overheads, DRM3", func(r *Runner, w io.Writer) error { return r.Fig7(w) }},
		{"fig8", "P50 latency attribution stacks", func(r *Runner, w io.Writer) error { return r.Fig8(w) }},
		{"fig9", "P50 aggregate CPU stacks", func(r *Runner, w io.Writer) error { return r.Fig9(w) }},
		{"fig10", "DRM1 per-shard latency by net", func(r *Runner, w io.Writer) error { return r.Fig10(w) }},
		{"fig11", "DRM3 per-shard latency + embedded stacks", func(r *Runner, w io.Writer) error { return r.Fig11(w) }},
		{"fig12", "DRM1 per-shard latency by strategy", func(r *Runner, w io.Writer) error { return r.Fig12(w) }},
		{"fig13", "Batching latency stacks", func(r *Runner, w io.Writer) error { return r.Fig13(w) }},
		{"fig14", "Batching CPU stacks", func(r *Runner, w io.Writer) error { return r.Fig14(w) }},
		{"fig15", "Platform efficiency (SC-Small vs SC-Large)", func(r *Runner, w io.Writer) error { return r.Fig15(w) }},
		{"fig16", "High-QPS overheads, DRM1", func(r *Runner, w io.Writer) error { return r.Fig16(w) }},
		{"tab3", "Quantization and pruning on DRM1", func(r *Runner, w io.Writer) error { return r.Table3(w) }},
		{"repl", "Replication economics (§VII-C)", func(r *Runner, w io.Writer) error { return r.Replication(w) }},
		{"front", "SLA serving frontier (batch window × QPS)", func(r *Runner, w io.Writer) error { return r.Frontier(w) }},
		{"reshard", "Online resharding under load drift (skew × move budget)", func(r *Runner, w io.Writer) error { return r.Reshard(w) }},
		{"tiered", "Tiered embedding storage (cache × precision × skew)", func(r *Runner, w io.Writer) error { return r.Tiered(w) }},
		{"dense", "Dense engine (batch × parallelism × MLP shape, GEMM GFLOP/s + e2e)", func(r *Runner, w io.Writer) error { return r.Dense(w) }},
		{"fault", "Fault tolerance (replica kills × count × hedge delay, SLA + rebuild)", func(r *Runner, w io.Writer) error { return r.Fault(w) }},
		{"coserve", "Multi-model co-serving (elastic vs static capacity at equal hardware)", func(r *Runner, w io.Writer) error { return r.CoServe(w) }},
		{"fresh", "Online model freshness (update rate × QPS, mmap boot, byte identity)", func(r *Runner, w io.Writer) error { return r.Fresh(w) }},
	}
}

// ByID returns the named experiment.
func ByID(id string) (Experiment, error) {
	for _, e := range All() {
		if e.ID == id {
			return e, nil
		}
	}
	var ids []string
	for _, e := range All() {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return Experiment{}, fmt.Errorf("experiments: unknown id %q (want one of %v)", id, ids)
}

// RunAll executes every experiment against one shared runner (so
// configuration runs are reused across figures) and writes all output
// to w, stopping at the first failure.
func RunAll(r *Runner, w io.Writer) error {
	for _, e := range All() {
		if err := e.Run(r, w); err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
	}
	return nil
}
