package experiments

import (
	"fmt"
	"io"

	"repro/internal/model"
	"repro/internal/sharding"
	"repro/internal/stats"
	"repro/internal/trace"
)

// overheadTable prints, per configuration, the "change vs singular" in
// latency (main-shard E2E) and compute (aggregate CPU time, all shards)
// at P50/P90/P99 — the layout of Figs. 6, 7, and 16.
func (r *Runner) overheadTable(w io.Writer, name string, mode runMode) error {
	plans, err := r.Plans(name)
	if err != nil {
		return err
	}
	var base *runResult
	for _, p := range plans {
		if !p.IsDistributed() {
			base, err = r.Run(name, p, mode)
			if err != nil {
				return err
			}
		}
	}
	baseLat := quantilesOf(base.breakdowns, trace.CompE2E)
	baseCPU := quantilesOf(base.breakdowns, trace.CompTotalCPU)
	fmt.Fprintf(w, "%s  (singular E2E p50=%.3fms p99=%.3fms; CPU p50=%.3fms)\n",
		name, baseLat.P50*1e3, baseLat.P99*1e3, baseCPU.P50*1e3)
	fmt.Fprintf(w, "%-22s %28s %28s %10s\n", "config", "latency overhead p50/p90/p99", "compute overhead p50/p90/p99", "rpc/req")

	for _, p := range plans {
		res, err := r.Run(name, p, mode)
		if err != nil {
			return err
		}
		lat := stats.Overhead(quantilesOf(res.breakdowns, trace.CompE2E), baseLat)
		cpu := stats.Overhead(quantilesOf(res.breakdowns, trace.CompTotalCPU), baseCPU)
		rpcs := 0.0
		for i := range res.breakdowns {
			rpcs += float64(res.breakdowns[i].RPCCalls)
		}
		rpcs /= float64(len(res.breakdowns))
		fmt.Fprintf(w, "%-22s %8.3f %8.3f %8.3f   %8.3f %8.3f %8.3f %10.1f\n",
			p.Name(), lat.P50, lat.P90, lat.P99, cpu.P50, cpu.P90, cpu.P99, rpcs)
	}
	return nil
}

// Fig6 reproduces the serial-request latency/compute overhead sweep for
// DRM1 and DRM2 across all ten distributed configurations.
//
// Paper shapes to check: every distributed config is slower than
// singular under serial requests; 1-shard is the latency worst case;
// overhead shrinks as shards increase; NSBP-2 is at or near the P99
// worst; compute overhead moves inversely to latency and grows with the
// RPC count.
func (r *Runner) Fig6(w io.Writer) error {
	writeHeader(w, "Fig. 6 — Latency & compute overheads vs singular (serial requests)")
	for _, name := range []string{"DRM1", "DRM2"} {
		if err := r.overheadTable(w, name, runMode{}); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	return nil
}

// Fig7 is the DRM3 overhead sweep (singular, 1-shard, NSBP 2/4/8):
// increasing shards does not help, because only the dominating table is
// further partitioned and its pooling factor is 1.
func (r *Runner) Fig7(w io.Writer) error {
	writeHeader(w, "Fig. 7 — DRM3 latency & compute overheads (serial requests)")
	return r.overheadTable(w, "DRM3", runMode{})
}

// Fig16 is the high-QPS experiment on DRM1 (paper Section VII-A, 25 QPS
// on production-scale requests): open-loop arrivals at a rate that keeps
// the server busy. P99 latency improves over serial for nearly every
// configuration due to improved resource availability — warm caches and
// overlap absorbing the network wait.
func (r *Runner) Fig16(w io.Writer) error {
	qps := r.P.QPS
	if qps == 0 {
		// Derive the scaled analogue of the paper's 25 QPS: the paper's
		// rate loads its servers well below saturation; target ~60% of
		// the singular serial service rate.
		cfg := model.ByName("DRM1")
		base, err := r.Run("DRM1", sharding.Singular(&cfg), runMode{})
		if err != nil {
			return err
		}
		p50 := componentQuantile(base.breakdowns, trace.CompE2E, 0.5)
		qps = 0.6 / p50
	}
	writeHeader(w, fmt.Sprintf("Fig. 16 — DRM1 overheads at high QPS (open loop, %.0f QPS; paper: 25 QPS at production scale)", qps))
	return r.overheadTable(w, "DRM1", runMode{qps: qps})
}
