package experiments

import (
	"fmt"
	"io"
	"math"
	"os"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/embedding"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/sharding"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Fresh evaluates the model-freshness machinery end to end: a DRM1
// deployment boots from persistent v2 shard files (mmap-backed tables,
// no regeneration) and then takes versioned row-delta publishes while
// serving. Part one compares the two boot paths for time and score
// identity; part two sweeps publish rate against request rate, reporting
// the latency impact, the freshness lag, and — because the published
// deltas are identity rows — byte-identity of every score across update
// epochs.
func (r *Runner) Fresh(w io.Writer) error {
	writeHeader(w, "Model freshness: persistent shard tables + delta publishing (DRM1, load-bal 4 shards, int8 cold tier)")
	m := r.Model("DRM1")
	cfg := m.Config
	plan, err := sharding.LoadBalanced(&cfg, 4, r.Pooling("DRM1"))
	if err != nil {
		return err
	}
	tier := &core.TierConfig{
		Plan: sharding.PlanTiers(&cfg, sharding.TierOptions{ColdPrecision: sharding.PrecisionInt8}),
	}
	n := r.P.Requests

	// ---- Part 1: boot from persistent shard files vs regeneration ----
	dir, err := os.MkdirTemp("", "fresh-shards-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	exportStart := time.Now()
	var fileBytes int64
	for shard := 1; shard <= plan.NumShards; shard++ {
		path := core.ShardFilePath(dir, cfg.Name, shard)
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := core.ExportShardV2(m, plan, shard, f, tier.Plan); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		st, err := os.Stat(path)
		if err != nil {
			return err
		}
		fileBytes += st.Size()
	}
	exportDur := time.Since(exportStart)

	boot := func(shardDir string, reg *obs.Registry) (*cluster.Cluster, *serve.Replayer, func(), time.Duration, error) {
		t0 := time.Now()
		cl, err := cluster.Boot(m, plan, cluster.Options{Seed: r.P.Seed, Tier: tier, ShardDir: shardDir, Obs: reg})
		bootDur := time.Since(t0)
		if err != nil {
			return nil, nil, nil, 0, err
		}
		client, err := cl.DialMain()
		if err != nil {
			cl.Close()
			return nil, nil, nil, 0, err
		}
		stop := func() { client.Close(); cl.Close() }
		return cl, serve.NewReplayer(client), stop, bootDur, nil
	}

	stream := workload.NewGenerator(cfg, r.P.Seed+31).GenerateBatch(n)
	_, repRegen, stopRegen, regenDur, err := boot("", nil)
	if err != nil {
		return err
	}
	wantScores, res := repRegen.RunSerialScored(stream)
	stopRegen()
	if res.Failed() > 0 {
		return fmt.Errorf("fresh regen replay: %v", res.Errors[0])
	}
	_, repMmap, stopMmap, mmapDur, err := boot(dir, nil)
	if err != nil {
		return err
	}
	gotScores, res := repMmap.RunSerialScored(stream)
	stopMmap()
	if res.Failed() > 0 {
		return fmt.Errorf("fresh mmap replay: %v", res.Errors[0])
	}
	bootVerdict := "byte-identical"
	if !scoresEqual(wantScores, gotScores) {
		bootVerdict = "MISMATCH"
	}
	fmt.Fprintf(w, "shard files: %d files, %.1f MiB, exported in %v\n",
		plan.NumShards, float64(fileBytes)/(1<<20), exportDur.Round(time.Millisecond))
	fmt.Fprintf(w, "boot: regenerate %v  vs  shard-file mmap %v  (%.1fx)\n",
		regenDur.Round(time.Millisecond), mmapDur.Round(time.Millisecond),
		float64(regenDur)/float64(mmapDur))
	fmt.Fprintf(w, "scores across boot paths: %s over %d requests\n\n", bootVerdict, n)

	// ---- Part 2: publish rate x request rate ----
	// Identity deltas republish currently-served rows, so any score drift
	// across the version cutovers is a bug; the interesting outputs are
	// the serving-latency impact and the freshness cadence sustained.
	fmt.Fprintf(w, "%-12s %-8s %-9s %-9s %-10s %-10s %-10s %-6s %s\n",
		"publish", "qps", "e2e p50", "e2e p99", "versions", "rows/pub", "pub mean", "lag", "scores")
	intervals := []time.Duration{0, 20 * time.Millisecond, 5 * time.Millisecond}
	for _, qps := range []float64{100, 400} {
		for _, every := range intervals {
			cell, err := r.freshCell(m, plan, tier, dir, stream, wantScores, every, qps)
			if err != nil {
				return fmt.Errorf("fresh publish %v qps %g: %w", every, qps, err)
			}
			label := "off"
			if every > 0 {
				label = every.String()
			}
			fmt.Fprintf(w, "%-12s %-8g %-9s %-9s %-10d %-10d %-10s %-6d %s\n",
				label, qps,
				fmt.Sprintf("%.2fms", cell.p50*1e3), fmt.Sprintf("%.2fms", cell.p99*1e3),
				cell.versions, cell.rowsPerPub,
				fmt.Sprintf("%.2fms", cell.pubMeanMs), cell.lag, cell.verdict)
		}
	}
	fmt.Fprintln(w, "\nReading: the mmap boot serves the same bytes the regenerating boot\nencodes, in a fraction of the time — the encode cost was paid once at\nexport. Publishing rides the serving path: row deltas stage on table\nclones and cut over atomically, so even a publish every few\nmilliseconds leaves every score byte-identical while the deployment's\nmodel version climbs; the latency tax shows up in the p99 column and\nthe freshness lag stays zero once the last publish commits.")
	return nil
}

type freshCell struct {
	p50, p99   float64
	versions   uint64
	rowsPerPub int
	pubMeanMs  float64
	lag        int64
	verdict    string
}

// freshCell measures one (publish interval, qps) cell: an open-loop
// replay against a shard-file-booted deployment while a publisher
// goroutine streams identity deltas at the given cadence.
func (r *Runner) freshCell(m *model.Model, plan *sharding.Plan, tier *core.TierConfig, dir string, stream []*workload.Request, want [][]float32, every time.Duration, qps float64) (*freshCell, error) {
	reg := obs.NewRegistry()
	cl, err := cluster.Boot(m, plan, cluster.Options{Seed: r.P.Seed, Tier: tier, ShardDir: dir, Obs: reg})
	if err != nil {
		return nil, err
	}
	defer cl.Close()
	client, err := cl.DialMain()
	if err != nil {
		return nil, err
	}
	defer client.Close()
	rep := serve.NewReplayer(client)
	if warm := rep.RunSerial(stream[:r.P.Warmup]); warm.Failed() > 0 {
		return nil, warm.Errors[0]
	}

	const rowsPer = 64
	cell := &freshCell{rowsPerPub: rowsPer * len(deltaTables(plan))}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var pubDur time.Duration
	var pubErr error
	if every > 0 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ticker := time.NewTicker(every)
			defer ticker.Stop()
			version := uint64(0)
			for {
				select {
				case <-stop:
					return
				case <-ticker.C:
					version++
					t0 := time.Now()
					if _, err := cl.Publish(freshDelta(m, plan, version, rowsPer)); err != nil {
						pubErr = err
						return
					}
					pubDur += time.Since(t0)
					cell.versions = version
				}
			}
		}()
	}
	res := rep.RunOpenLoop(stream, qps)
	close(stop)
	wg.Wait()
	if pubErr != nil {
		return nil, pubErr
	}
	if res.Failed() > 0 {
		return nil, res.Errors[0]
	}
	sample := stats.NewDurationSample(res.ClientE2E)
	cell.p50, cell.p99 = sample.P50(), sample.Quantile(0.99)
	if cell.versions > 0 {
		cell.pubMeanMs = pubDur.Seconds() * 1e3 / float64(cell.versions)
	}
	cell.lag = reg.Snapshot().Gauge("publish.lag")

	// Inter-epoch byte identity: the post-sweep deployment, having cut
	// over up to `versions` epochs, must still score the stream exactly
	// as the never-published control did.
	got, sres := rep.RunSerialScored(stream)
	if sres.Failed() > 0 {
		return nil, sres.Errors[0]
	}
	cell.verdict = "identical"
	if !scoresEqual(want, got) {
		cell.verdict = "MISMATCH"
	}
	return cell, nil
}

// deltaTables picks one table per shard — enough to touch every shard's
// update path without flooding the control plane.
func deltaTables(plan *sharding.Plan) []int {
	var ids []int
	for si := range plan.Shards {
		a := &plan.Shards[si]
		if len(a.Tables) > 0 {
			ids = append(ids, a.Tables[0])
		} else if len(a.Parts) > 0 {
			ids = append(ids, a.Parts[0].TableID)
		}
	}
	return ids
}

// freshDelta republishes a sliding window of currently-served rows from
// one table per shard: real update traffic with provably no score
// effect.
func freshDelta(m *model.Model, plan *sharding.Plan, version uint64, rowsPer int) *core.DeltaSet {
	ds := &core.DeltaSet{Version: version}
	for _, id := range deltaTables(plan) {
		dense, ok := m.Tables[id].(*embedding.Dense)
		if !ok {
			continue
		}
		n := rowsPer
		if n > dense.RowsN {
			n = dense.RowsN
		}
		start := int(version*2654435761) % dense.RowsN
		rows := make([]int32, 0, n)
		data := make([]float32, 0, n*dense.DimN)
		for k := 0; k < n; k++ {
			row := (start + k) % dense.RowsN
			rows = append(rows, int32(row))
			data = append(data, dense.Data[row*dense.DimN:(row+1)*dense.DimN]...)
		}
		ds.Tables = append(ds.Tables, core.TableDelta{TableID: id, Rows: rows, Data: data})
	}
	return ds
}

// scoresEqual compares two score sets bitwise.
func scoresEqual(want, got [][]float32) bool {
	if len(want) != len(got) {
		return false
	}
	for i := range want {
		if len(want[i]) != len(got[i]) {
			return false
		}
		for j := range want[i] {
			if math.Float32bits(want[i][j]) != math.Float32bits(got[i][j]) {
				return false
			}
		}
	}
	return true
}
