package experiments

import (
	"bytes"
	"fmt"
	"io"
	"time"

	"repro/internal/cluster"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/sharding"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Fault evaluates serving through replica failures: a DRM1 deployment
// with replicated sparse shards replays a fixed scored stream while one
// (or more) of shard 1's replicas is killed mid-run — server torn down,
// connection gone silent — and later replaced by a fresh replica that
// rebuilds its table set from the surviving peer over sparse.snapshot.*.
// The sweep crosses failure size (replicas killed) × replica count ×
// hedge delay, with health ejection on and off, and reports the SLA
// verdict, fallback and late rates, time to eject, rebuild cost, and
// time to rejoin. Every cell's scores are compared bitwise against an
// unfailed control: a degraded fleet may get slower, never wrong.
func (r *Runner) Fault(w io.Writer) error {
	writeHeader(w, "Fault tolerance: replica failure x health ejection (DRM1, load-bal 2 shards)")
	m := r.Model("DRM1")
	cfg := m.Config
	plan, err := sharding.LoadBalanced(&cfg, 2, r.Pooling("DRM1"))
	if err != nil {
		return err
	}
	n := r.P.Requests
	gen := workload.NewGenerator(cfg, r.P.Seed+7)
	warm := gen.GenerateBatch(r.P.Warmup)
	stream := gen.GenerateBatch(n)

	// One unfailed control per replica count: its scores are the identity
	// baseline and its latencies calibrate the SLA budget and the hedge
	// delay, so the sweep is meaningful on fast and slow hosts alike.
	type control struct {
		scores [][]float32
		budget time.Duration
	}
	controls := map[int]*control{}
	controlFor := func(replicas int) (*control, error) {
		if c, ok := controls[replicas]; ok {
			return c, nil
		}
		cl, err := cluster.Boot(m, clonePlan(plan), cluster.Options{
			Seed: r.P.Seed, SparseReplicas: replicas, HedgeDelay: time.Second,
		})
		if err != nil {
			return nil, err
		}
		defer cl.Close()
		client, err := cl.DialMain()
		if err != nil {
			return nil, err
		}
		defer client.Close()
		rep := serve.NewReplayer(client)
		if res := rep.RunSerial(warm); res.Failed() > 0 {
			return nil, res.Errors[0]
		}
		scores, res := rep.RunSerialScored(stream)
		if res.Failed() > 0 {
			return nil, res.Errors[0]
		}
		sample := stats.NewDurationSample(res.ClientE2E)
		budget := time.Duration(3 * sample.P50() * float64(time.Second))
		if floor := time.Duration(1.3 * sample.P99() * float64(time.Second)); budget < floor {
			budget = floor
		}
		c := &control{scores: scores, budget: budget}
		controls[replicas] = c
		return c, nil
	}

	const quantile = 0.9
	fmt.Fprintf(w, "kill at n/3, replace (snapshot rebuild from peer) at 2n/3, n=%d; SLA p%.0f at 3x healthy P50\n\n", n, 100*quantile)
	fmt.Fprintf(w, "%-5s %-6s %-7s %-6s %-9s %-9s %-10s %-7s %-7s %-9s %-10s %-9s %-9s %-7s %-7s %s\n",
		"repl", "kills", "delay", "eject", "p50", "p99", "SLA", "fall%", "late%", "eject", "rebuild", "rejoin", "KiB", "hedges", "ejects", "identity")

	cells := []struct {
		replicas, kills int
		delayMult       float64
		eject           bool
	}{
		{2, 1, 1, false},
		{2, 1, 1, true},
		{3, 1, 1, false},
		{3, 1, 1, true},
		{3, 2, 1, true},
		{2, 1, 2, false},
		{2, 1, 2, true},
	}
	ejectMet, noEjectViolated, allIdentical := true, true, true
	for _, c := range cells {
		ctl, err := controlFor(c.replicas)
		if err != nil {
			return fmt.Errorf("fault control x%d: %w", c.replicas, err)
		}
		delay := time.Duration(c.delayMult * float64(ctl.budget))
		row, err := r.faultCell(m, plan, warm, stream, faultCellOpts{
			replicas: c.replicas, kills: c.kills, delay: delay, eject: c.eject,
			budget: ctl.budget, quantile: quantile,
		}, ctl.scores)
		if err != nil {
			return fmt.Errorf("fault repl=%d kills=%d eject=%v: %w", c.replicas, c.kills, c.eject, err)
		}
		verdict := "MET"
		if !row.rep.Met {
			verdict = "VIOLATED"
		}
		identity := "byte-identical"
		if !row.identical {
			identity, allIdentical = "MISMATCH", false
		}
		if c.eject {
			ejectMet = ejectMet && row.rep.Met
		} else {
			noEjectViolated = noEjectViolated && !row.rep.Met
		}
		fmt.Fprintf(w, "%-5d %-6d %-7s %-6v %-9s %-9s %-10s %-7.1f %-7.1f %-9s %-10s %-9s %-9.0f %-7d %-7d %s\n",
			c.replicas, c.kills, fmtMS(delay), c.eject,
			fmtMS(time.Duration(row.p50*float64(time.Second))),
			fmtMS(time.Duration(row.p99*float64(time.Second))),
			verdict, 100*row.rep.FallbackRate, 100*row.rep.LateRate,
			fmtMS(row.ejectAfter), fmtMS(row.rebuildDur), fmtMS(row.rejoin),
			float64(row.rebuildBytes)/1024, row.hedges, row.ejections, identity)
	}

	fmt.Fprintf(w, "\nhealth ejection kept the SLA met in every ejection cell: %v; ejection-off cells violated: %v; all cells byte-identical to control: %v\n",
		ejectMet, noEjectViolated, allIdentical)
	fmt.Fprintln(w, "\nReading: with ejection off, every request whose primary died pays the\nfull hedge delay until the replica is replaced — a third of the run —\nand the SLA quantile blows. With ejection on, the breaker pays that\ndelay only for the strike calls and the occasional probation probe,\nthe fleet serves on the survivors, and the replacement rebuilds its\ntables byte-identically from a peer and rejoins cold-cached. Failures\nnever change scores — only latency.")
	return nil
}

// fmtMS renders a duration in milliseconds (\"-\" for zero/unset).
func fmtMS(d time.Duration) string {
	if d <= 0 {
		return "-"
	}
	return fmt.Sprintf("%.1fms", float64(d)/float64(time.Millisecond))
}

type faultCellOpts struct {
	replicas, kills int
	delay           time.Duration
	eject           bool
	budget          time.Duration
	quantile        float64
}

type faultRow struct {
	rep          serve.Report
	p50, p99     float64
	ejectAfter   time.Duration // kill → every killed replica out of rotation
	rebuildDur   time.Duration
	rebuildBytes int64
	rejoin       time.Duration // replace → back in rotation
	// hedges and ejections come from the deployment's obs registry
	// (replication.sparse1.*), exercising the same export the live
	// -metrics-addr endpoint serves.
	hedges    int64
	ejections int64
	identical bool
}

// faultCell boots one deployment, replays the scored stream with a
// kill-then-replace injected at the third marks, and evaluates the SLA
// and score identity.
func (r *Runner) faultCell(m *model.Model, plan *sharding.Plan, warm, stream []*workload.Request, o faultCellOpts, want [][]float32) (*faultRow, error) {
	opts := cluster.Options{
		Seed: r.P.Seed, SparseReplicas: o.replicas, HedgeDelay: o.delay,
		Obs: obs.NewRegistry(),
	}
	if o.eject {
		opts.HealthFails = 2
		opts.HealthProbe = 4 * o.delay
	}
	cl, err := cluster.Boot(m, clonePlan(plan), opts)
	if err != nil {
		return nil, err
	}
	defer cl.Close()
	client, err := cl.DialMain()
	if err != nil {
		return nil, err
	}
	defer client.Close()
	rep := serve.NewReplayer(client)
	if res := rep.RunSerial(warm); res.Failed() > 0 {
		return nil, res.Errors[0]
	}

	killAt, replaceAt := len(stream)/3, 2*len(stream)/3
	var killT, replaceT time.Time
	row := &faultRow{identical: true}
	res := &serve.Result{}
	ejected := func() int { return cl.HealthSnapshots()["sparse1"].Ejected }
	for i, req := range stream {
		if i == killAt {
			for k := 0; k < o.kills; k++ {
				if err := cl.KillReplica(0, k); err != nil {
					return nil, err
				}
			}
			killT = time.Now()
		}
		if i == replaceAt {
			for k := 0; k < o.kills; k++ {
				st, err := cl.ReplaceReplica(0, k)
				if err != nil {
					return nil, err
				}
				row.rebuildBytes += st.Bytes
				if st.Duration > row.rebuildDur {
					row.rebuildDur = st.Duration
				}
			}
			replaceT = time.Now()
		}
		scores, d, err := rep.Send(req)
		res.Sent++
		switch {
		case err == nil:
			res.ClientE2E = append(res.ClientE2E, d)
			if want != nil && !bytes.Equal(float32Bytes(scores), float32Bytes(want[i])) {
				row.identical = false
			}
		case serve.IsFallback(err):
			res.Fallbacks++
		default:
			res.Errors = append(res.Errors, err)
		}
		if o.eject && row.ejectAfter == 0 && !killT.IsZero() && replaceT.IsZero() && ejected() >= o.kills {
			row.ejectAfter = time.Since(killT)
		}
	}

	// Drive light unmeasured traffic until the prober re-admits the
	// replacements (ejection mode only), bounding the wait.
	if o.eject {
		deadline := time.Now().Add(5 * time.Second)
		for ejected() > 0 && time.Now().Before(deadline) {
			if _, _, err := rep.Send(stream[0]); err != nil {
				return nil, fmt.Errorf("rejoin probe traffic: %w", err)
			}
			time.Sleep(o.delay / 4)
		}
		if ejected() == 0 {
			row.rejoin = time.Since(replaceT)
		}
	}

	sla := serve.SLA{Budget: o.budget, TargetQuantile: o.quantile}
	row.rep = sla.Evaluate(res)
	sample := stats.NewDurationSample(res.ClientE2E)
	row.p50, row.p99 = sample.P50(), sample.P99()
	snap := cl.Obs.Snapshot()
	row.hedges = snap.Gauge("replication.sparse1.hedges")
	row.ejections = snap.Gauge("replication.sparse1.ejections")
	return row, nil
}
