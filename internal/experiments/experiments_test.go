package experiments

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/sharding"
)

// testRunner uses a tiny request budget: these tests validate the
// experiment plumbing end to end, not the statistics.
func testRunner() *Runner {
	return NewRunner(Params{Requests: 6, Warmup: 2, Seed: 5})
}

func TestFig1RendersGrowth(t *testing.T) {
	var buf bytes.Buffer
	if err := testRunner().Fig1(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Fig. 1", "features", "embeddings", "10.0x"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestFig5RendersDistributions(t *testing.T) {
	var buf bytes.Buffer
	if err := testRunner().Fig5(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"DRM1", "DRM2", "DRM3", "257 tables", "largest"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q", want)
		}
	}
}

func TestTable2RendersShardingSweep(t *testing.T) {
	var buf bytes.Buffer
	if err := testRunner().Table2(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Table II", "load-bal 8 shards", "NSBP 2 shards", "capacity spread"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q", want)
		}
	}
}

func TestMeasurePipelineSingularDRM3(t *testing.T) {
	if testing.Short() {
		t.Skip("boots a live cluster")
	}
	r := testRunner()
	cfg := r.Model("DRM3").Config
	res, err := r.Run("DRM3", sharding.Singular(&cfg), runMode{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.breakdowns) != r.P.Requests {
		t.Fatalf("got %d breakdowns, want %d", len(res.breakdowns), r.P.Requests)
	}
	for _, b := range res.breakdowns {
		if b.E2E <= 0 || b.DenseOps <= 0 || b.EmbeddedPortion <= 0 {
			t.Errorf("degenerate breakdown: %+v", b)
		}
		if b.RPCCalls != 0 {
			t.Errorf("singular run recorded %d RPC calls", b.RPCCalls)
		}
	}
	if res.kindOpTime["Dense"] <= res.kindOpTime["Sparse"] {
		t.Errorf("dense op time (%v) should dominate sparse (%v)",
			res.kindOpTime["Dense"], res.kindOpTime["Sparse"])
	}
	// Memoization: the same run must come back cached.
	again, err := r.Run("DRM3", sharding.Singular(&cfg), runMode{})
	if err != nil {
		t.Fatal(err)
	}
	if &again.breakdowns[0] != &res.breakdowns[0] {
		t.Error("second Run should be memoized")
	}
}

func TestRegistryRoundTrip(t *testing.T) {
	for _, e := range All() {
		got, err := ByID(e.ID)
		if err != nil || got.ID != e.ID {
			t.Errorf("ByID(%s) = %v, %v", e.ID, got.ID, err)
		}
	}
}
