// Package quant implements the model-compression techniques the paper
// evaluates in Section VII-D / Table III: row-wise linear quantization of
// embedding tables to 8 or 4 bits, and magnitude-based pruning.
//
// The paper reports a 5.56× total size reduction for DRM1 when "all tables
// were row-wise linear quantized to at least 8-bits, and sufficiently large
// tables were quantized to 4-bits", with tables "manually pruned ... based
// on a threshold magnitude". Latency and CPU were marginally affected. The
// encodings here reproduce those storage ratios (plus an fp16 scale/bias
// header per row, as production embedding quantization uses) and are
// exercised on the lookup path so the latency effect is measured, not
// assumed.
package quant

import (
	"fmt"
	"math"
)

// Bits is the quantization width of an encoded table.
type Bits int

// Supported quantization widths. The production deployment in the paper
// uses 8-bit for all tables and 4-bit for sufficiently large ones.
const (
	Bits8 Bits = 8
	Bits4 Bits = 4
)

// RowQuantized is an embedding table encoded with row-wise linear
// quantization: each row stores packed unsigned integers plus a float16
// (scale, bias) pair such that value ≈ scale*q + bias. Headers are fp16,
// as in production embedding quantization, so they do not dominate
// small-dimension rows.
type RowQuantized struct {
	Rows, Cols int
	Bits       Bits
	// Scales and Biases hold one fp16 dequantization pair per row.
	Scales []uint16
	Biases []uint16
	// Packed holds the quantized codes, rowStride bytes per row.
	Packed    []byte
	rowStride int
}

// rowStride returns the packed bytes needed for cols codes at the width b.
func rowStrideFor(cols int, b Bits) int {
	switch b {
	case Bits8:
		return cols
	case Bits4:
		return (cols + 1) / 2
	default:
		panic(fmt.Sprintf("quant: unsupported width %d", b))
	}
}

// QuantizeRows encodes a rows×cols float32 table (row-major) with row-wise
// linear quantization at the given width.
func QuantizeRows(data []float32, rows, cols int, bits Bits) *RowQuantized {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("quant: data length %d != %dx%d", len(data), rows, cols))
	}
	stride := rowStrideFor(cols, bits)
	q := &RowQuantized{
		Rows: rows, Cols: cols, Bits: bits,
		Scales:    make([]uint16, rows),
		Biases:    make([]uint16, rows),
		Packed:    make([]byte, rows*stride),
		rowStride: stride,
	}
	levels := float32(int(1)<<bits - 1)
	for r := 0; r < rows; r++ {
		row := data[r*cols : (r+1)*cols]
		lo, hi := minMax(row)
		scale := (hi - lo) / levels
		if scale == 0 {
			// Constant row: encode all-zero codes with bias = lo.
			scale = 1
		}
		// Encode against the fp16-rounded header values so decode uses
		// exactly the parameters the codes were computed with.
		q.Scales[r] = f32to16(scale)
		q.Biases[r] = f32to16(lo)
		scale = f16to32(q.Scales[r])
		if scale == 0 {
			scale = 1
			q.Scales[r] = f32to16(1)
		}
		bias := f16to32(q.Biases[r])
		dst := q.Packed[r*stride : (r+1)*stride]
		for c, v := range row {
			code := uint8(clampRound((v-bias)/scale, levels))
			switch bits {
			case Bits8:
				dst[c] = code
			case Bits4:
				if c%2 == 0 {
					dst[c/2] = code
				} else {
					dst[c/2] |= code << 4
				}
			}
		}
	}
	return q
}

func minMax(xs []float32) (lo, hi float32) {
	lo, hi = math.MaxFloat32, -math.MaxFloat32
	for _, v := range xs {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}

func clampRound(x, max float32) float32 {
	v := float32(math.Round(float64(x)))
	if v < 0 {
		return 0
	}
	if v > max {
		return max
	}
	return v
}

// NewFromParts reconstructs a RowQuantized table from its serialized
// components, validating shape consistency.
func NewFromParts(rows, cols int, bits Bits, scales, biases []uint16, packed []byte) (*RowQuantized, error) {
	if bits != Bits8 && bits != Bits4 {
		return nil, fmt.Errorf("quant: unsupported width %d", bits)
	}
	if rows < 0 || cols < 0 {
		return nil, fmt.Errorf("quant: invalid shape %dx%d", rows, cols)
	}
	stride := rowStrideFor(cols, bits)
	if len(scales) != rows || len(biases) != rows || len(packed) != rows*stride {
		return nil, fmt.Errorf("quant: component sizes (%d scales, %d biases, %d packed) do not match %dx%d @ %d bits",
			len(scales), len(biases), len(packed), rows, cols, bits)
	}
	return &RowQuantized{
		Rows: rows, Cols: cols, Bits: bits,
		Scales: scales, Biases: biases, Packed: packed, rowStride: stride,
	}, nil
}

// NewRowQuantizedEmpty allocates zeroed encoded storage of the given
// shape — migration staging for an int8/int4 cold tier, filled row range
// by row range via SetRowRange.
func NewRowQuantizedEmpty(rows, cols int, bits Bits) *RowQuantized {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("quant: invalid table shape %dx%d", rows, cols))
	}
	stride := rowStrideFor(cols, bits)
	return &RowQuantized{
		Rows: rows, Cols: cols, Bits: bits,
		Scales:    make([]uint16, rows),
		Biases:    make([]uint16, rows),
		Packed:    make([]byte, rows*stride),
		rowStride: stride,
	}
}

// RowRangeStride returns the wire bytes per row when streaming row
// ranges: the fp16 (scale, bias) header plus the packed codes.
func (q *RowQuantized) RowRangeStride() int { return 4 + q.rowStride }

// AppendRowRange appends rows [lo, hi) in the wire layout (per row:
// little-endian fp16 scale, fp16 bias, then packed codes) — the encoded
// row stream the migration protocol moves so a transferred table stays
// bit-identical to the source's.
func (q *RowQuantized) AppendRowRange(dst []byte, lo, hi int) []byte {
	if lo < 0 || hi > q.Rows || lo > hi {
		panic(fmt.Sprintf("quant: row range [%d, %d) of %d", lo, hi, q.Rows))
	}
	for r := lo; r < hi; r++ {
		var hdr [4]byte
		hdr[0], hdr[1] = byte(q.Scales[r]), byte(q.Scales[r]>>8)
		hdr[2], hdr[3] = byte(q.Biases[r]), byte(q.Biases[r]>>8)
		dst = append(dst, hdr[:]...)
		dst = append(dst, q.Packed[r*q.rowStride:(r+1)*q.rowStride]...)
	}
	return dst
}

// SetRowRange writes raw wire-layout rows starting at row lo and returns
// how many rows it decoded.
func (q *RowQuantized) SetRowRange(lo int, raw []byte) (int, error) {
	stride := q.RowRangeStride()
	if len(raw)%stride != 0 {
		return 0, fmt.Errorf("quant: %d raw bytes not a multiple of row stride %d", len(raw), stride)
	}
	rows := len(raw) / stride
	if lo < 0 || lo+rows > q.Rows {
		return 0, fmt.Errorf("quant: row range [%d, %d) of %d", lo, lo+rows, q.Rows)
	}
	for i := 0; i < rows; i++ {
		r := lo + i
		src := raw[i*stride : (i+1)*stride]
		q.Scales[r] = uint16(src[0]) | uint16(src[1])<<8
		q.Biases[r] = uint16(src[2]) | uint16(src[3])<<8
		copy(q.Packed[r*q.rowStride:(r+1)*q.rowStride], src[4:])
	}
	return rows, nil
}

// DequantizeRowInto decodes row r into dst, which must have length Cols.
// This is the hot path used by quantized SLS lookups and the tiered
// store's cache fills. Dispatches between the scalar decoders below and
// the word-wide ones in decode_vector.go; both produce bitwise-identical
// values, so a cached row never depends on which kernel filled it.
func (q *RowQuantized) DequantizeRowInto(dst []float32, r int) {
	if len(dst) != q.Cols {
		panic(fmt.Sprintf("quant: dst length %d != cols %d", len(dst), q.Cols))
	}
	scale, bias := f16to32(q.Scales[r]), f16to32(q.Biases[r])
	src := q.Packed[r*q.rowStride : (r+1)*q.rowStride]
	if vectorActive() {
		switch q.Bits {
		case Bits8:
			dequantizeRow8Vec(dst, src, scale, bias, q.Cols)
		case Bits4:
			dequantizeRow4Vec(dst, src, scale, bias, q.Cols)
		}
		return
	}
	q.dequantizeRowScalar(dst, src, scale, bias)
}

// dequantizeRowScalar is the generic reference decoder.
func (q *RowQuantized) dequantizeRowScalar(dst []float32, src []byte, scale, bias float32) {
	switch q.Bits {
	case Bits8:
		for c := 0; c < q.Cols; c++ {
			dst[c] = scale*float32(src[c]) + bias
		}
	case Bits4:
		for c := 0; c < q.Cols; c++ {
			b := src[c/2]
			var code uint8
			if c%2 == 0 {
				code = b & 0x0f
			} else {
				code = b >> 4
			}
			dst[c] = scale*float32(code) + bias
		}
	}
}

// AccumulateRow adds row r (dequantized on the fly) into acc, fusing the
// dequantize with the SLS pooling sum so no temporary row is
// materialized. Kernel-dispatched like DequantizeRowInto.
func (q *RowQuantized) AccumulateRow(acc []float32, r int) {
	scale, bias := f16to32(q.Scales[r]), f16to32(q.Biases[r])
	src := q.Packed[r*q.rowStride : (r+1)*q.rowStride]
	if vectorActive() {
		q.accumulateRowVec(acc, src, scale, bias)
		return
	}
	q.accumulateRowScalar(acc, src, scale, bias)
}

// AccumulateBag adds every listed row into acc in index order — the
// whole-bag SLS pooling path. Resolving kernel dispatch once per bag
// rather than once per row keeps the dispatch load off the per-row cost;
// the accumulation order and arithmetic are exactly AccumulateRow's.
// Row indices must be in [0, Rows); like AccumulateRow, an out-of-range
// index panics.
func (q *RowQuantized) AccumulateBag(acc []float32, indices []int32) {
	vec := vectorActive()
	for _, idx := range indices {
		r := int(idx)
		scale, bias := f16to32(q.Scales[r]), f16to32(q.Biases[r])
		src := q.Packed[r*q.rowStride : (r+1)*q.rowStride]
		if vec {
			q.accumulateRowVec(acc, src, scale, bias)
		} else {
			q.accumulateRowScalar(acc, src, scale, bias)
		}
	}
}

// accumulateRowVec routes one row through the word-wide decoders.
func (q *RowQuantized) accumulateRowVec(acc []float32, src []byte, scale, bias float32) {
	switch q.Bits {
	case Bits8:
		accumulateRow8Vec(acc, src, scale, bias, q.Cols)
	case Bits4:
		accumulateRow4Vec(acc, src, scale, bias, q.Cols)
	}
}

// accumulateRowScalar is the generic reference accumulator.
func (q *RowQuantized) accumulateRowScalar(acc []float32, src []byte, scale, bias float32) {
	switch q.Bits {
	case Bits8:
		for c := 0; c < q.Cols; c++ {
			acc[c] += scale*float32(src[c]) + bias
		}
	case Bits4:
		for c := 0; c < q.Cols; c++ {
			b := src[c/2]
			var code uint8
			if c%2 == 0 {
				code = b & 0x0f
			} else {
				code = b >> 4
			}
			acc[c] += scale*float32(code) + bias
		}
	}
}

// Bytes returns the total storage footprint of the encoded table,
// including the per-row scale/bias headers.
func (q *RowQuantized) Bytes() int64 {
	return int64(len(q.Packed)) + int64(len(q.Scales))*2 + int64(len(q.Biases))*2
}

// MaxError returns the worst-case absolute reconstruction error bound for
// linear quantization of a row with range rangeWidth at the given width:
// half a quantization step.
func MaxError(rangeWidth float32, bits Bits) float32 {
	levels := float32(int(1)<<bits - 1)
	return rangeWidth / levels / 2
}

// PruneMagnitude zeroes every element of data whose absolute value is
// below threshold and returns the number of elements pruned. The paper's
// tables are "manually pruned based on a threshold magnitude"; pruned rows
// compress to nothing under the row-wise encoding (constant-zero rows).
func PruneMagnitude(data []float32, threshold float32) int {
	n := 0
	for i, v := range data {
		if v < 0 {
			v = -v
		}
		if v < threshold {
			if data[i] != 0 {
				n++
			}
			data[i] = 0
		}
	}
	return n
}

// PruneRowsByNorm zeroes entire rows whose L2 norm falls below threshold,
// modeling the paper's row-granular pruning of rarely-updated embedding
// rows. It returns the number of rows pruned.
func PruneRowsByNorm(data []float32, rows, cols int, threshold float32) int {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("quant: data length %d != %dx%d", len(data), rows, cols))
	}
	pruned := 0
	th2 := float64(threshold) * float64(threshold)
	for r := 0; r < rows; r++ {
		row := data[r*cols : (r+1)*cols]
		var ss float64
		for _, v := range row {
			ss += float64(v) * float64(v)
		}
		if ss < th2 {
			for i := range row {
				row[i] = 0
			}
			pruned++
		}
	}
	return pruned
}
