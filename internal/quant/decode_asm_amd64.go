//go:build amd64

package quant

// SIMD row decode for amd64 (decode_amd64.s): 8 int8 codes (or 16 int4
// codes) unpack from one word load through PUNPCKLBW zero-extension and
// CVTDQ2PS conversion, then vector scale*code + bias into the
// accumulator. SSE2-only — guaranteed on every amd64, so unlike the
// GEMM axpy kernels no CPUID gate is needed. Per lane the operation
// sequence (convert, multiply by scale, add bias, add into acc — with
// the same x86 first-source operands the compiled scalar kernels use,
// established empirically per width by internal/kerneltest) matches
// the scalar decoder exactly, so results are bitwise identical even
// for NaN/Inf header payloads.
//
// The assembly bodies process full 8- (int8) or 16-element (int4)
// groups; the Go wrappers in decode_vector.go run the remaining tail
// through the same scalar code the generic kernel uses.

const haveDecodeASM = true

//go:noescape
func accum8ptr(acc *float32, src *byte, n int, scale, bias float32)

//go:noescape
func dequant8ptr(dst *float32, src *byte, n int, scale, bias float32)

//go:noescape
func accum4ptr(acc *float32, src *byte, n int, scale, bias float32)

//go:noescape
func dequant4ptr(dst *float32, src *byte, n int, scale, bias float32)
