//go:build amd64

#include "textflag.h"

// SIMD quantized-row decode kernels (SSE2-only, so unconditionally
// available on amd64). Each call processes n codes, n a positive
// multiple of 8 (int8) or 16 (int4); the Go wrappers handle tails.
//
// Per lane the arithmetic is t = code*scale; t = t + bias;
// acc = acc + t, with x86 first-source operands chosen to match the
// compiled scalar kernel so NaN/Inf scale or bias headers propagate
// bitwise identically: the multiply's first source is the converted
// code (always finite) and the first add's first source is t. The
// accumulate's first source is whatever the matching scalar loop
// compiled to — acc for the int8 loop, t for the int4 loop; the
// kerneltest differential suite pins both empirically. The fuzz
// harness exercises exactly these payloads.
//
// Register plan (shared by all four kernels):
//   X0 scale ×4   X1 bias ×4   X2 nibble mask   X7 zero
//   X4/X5/X6/X8 unpack pipeline   X9 acc staging

DATA nibmask<>+0(SB)/8, $0x0f0f0f0f0f0f0f0f
DATA nibmask<>+8(SB)/8, $0x0f0f0f0f0f0f0f0f
GLOBL nibmask<>(SB), RODATA|NOPTR, $16

// func accum8ptr(acc *float32, src *byte, n int, scale, bias float32)
TEXT ·accum8ptr(SB), NOSPLIT, $0-32
	MOVQ  acc+0(FP), DI
	MOVQ  src+8(FP), SI
	MOVQ  n+16(FP), AX
	MOVSS scale+24(FP), X0
	SHUFPS $0x00, X0, X0
	MOVSS bias+28(FP), X1
	SHUFPS $0x00, X1, X1
	PXOR  X7, X7

loop8:
	MOVQ      (SI), X4     // 8 uint8 codes
	PUNPCKLBW X7, X4       // -> 8 uint16
	MOVO      X4, X5
	PUNPCKLWL X7, X4       // codes 0..3 as uint32
	PUNPCKHWL X7, X5       // codes 4..7 as uint32
	CVTPL2PS  X4, X4       // -> float32
	CVTPL2PS  X5, X5
	MULPS     X0, X4       // t = code*scale (first source: code)
	MULPS     X0, X5
	ADDPS     X1, X4       // t += bias (first source: t)
	ADDPS     X1, X5
	MOVUPS    (DI), X9
	ADDPS     X4, X9       // acc += t (first source: acc)
	MOVUPS    X9, (DI)
	MOVUPS    16(DI), X9
	ADDPS     X5, X9
	MOVUPS    X9, 16(DI)
	ADDQ      $8, SI
	ADDQ      $32, DI
	SUBQ      $8, AX
	JNZ       loop8
	RET

// func dequant8ptr(dst *float32, src *byte, n int, scale, bias float32)
TEXT ·dequant8ptr(SB), NOSPLIT, $0-32
	MOVQ  dst+0(FP), DI
	MOVQ  src+8(FP), SI
	MOVQ  n+16(FP), AX
	MOVSS scale+24(FP), X0
	SHUFPS $0x00, X0, X0
	MOVSS bias+28(FP), X1
	SHUFPS $0x00, X1, X1
	PXOR  X7, X7

dloop8:
	MOVQ      (SI), X4
	PUNPCKLBW X7, X4
	MOVO      X4, X5
	PUNPCKLWL X7, X4
	PUNPCKHWL X7, X5
	CVTPL2PS  X4, X4
	CVTPL2PS  X5, X5
	MULPS     X0, X4
	MULPS     X0, X5
	ADDPS     X1, X4
	ADDPS     X1, X5
	MOVUPS    X4, (DI)
	MOVUPS    X5, 16(DI)
	ADDQ      $8, SI
	ADDQ      $32, DI
	SUBQ      $8, AX
	JNZ       dloop8
	RET

// func accum4ptr(acc *float32, src *byte, n int, scale, bias float32)
//
// 16 int4 codes per iteration from 8 packed bytes. Low nibbles are the
// even columns: masking gives e0,e2,...; shifting each 16-bit lane
// right by 4 then masking gives e1,e3,... per byte; PUNPCKLBW
// interleaves the two back into e0,e1,e2,...,e15.
TEXT ·accum4ptr(SB), NOSPLIT, $0-32
	MOVQ  acc+0(FP), DI
	MOVQ  src+8(FP), SI
	MOVQ  n+16(FP), AX
	MOVSS scale+24(FP), X0
	SHUFPS $0x00, X0, X0
	MOVSS bias+28(FP), X1
	SHUFPS $0x00, X1, X1
	MOVOU nibmask<>(SB), X2
	PXOR  X7, X7

loop4:
	MOVQ      (SI), X4     // 8 bytes = 16 codes
	MOVO      X4, X5
	PAND      X2, X4       // low nibbles: e0,e2,...,e14
	PSRLW     $4, X5
	PAND      X2, X5       // high nibbles: e1,e3,...,e15
	PUNPCKLBW X5, X4       // e0,e1,...,e15 as uint8
	MOVO      X4, X5
	PUNPCKLBW X7, X4       // e0..e7 as uint16
	PUNPCKHBW X7, X5       // e8..e15 as uint16
	MOVO      X4, X6
	PUNPCKLWL X7, X4       // e0..e3
	PUNPCKHWL X7, X6       // e4..e7
	MOVO      X5, X8
	PUNPCKLWL X7, X5       // e8..e11
	PUNPCKHWL X7, X8       // e12..e15
	CVTPL2PS  X4, X4
	CVTPL2PS  X6, X6
	CVTPL2PS  X5, X5
	CVTPL2PS  X8, X8
	MULPS     X0, X4
	MULPS     X0, X6
	MULPS     X0, X5
	MULPS     X0, X8
	ADDPS     X1, X4
	ADDPS     X1, X6
	ADDPS     X1, X5
	ADDPS     X1, X8
	MOVUPS    (DI), X9     // acc += t with first source t: the compiled
	ADDPS     X9, X4       // int4 scalar loop orders this add opposite
	MOVUPS    X4, (DI)     // to the int8 one (kerneltest probes pin both)
	MOVUPS    16(DI), X9
	ADDPS     X9, X6
	MOVUPS    X6, 16(DI)
	MOVUPS    32(DI), X9
	ADDPS     X9, X5
	MOVUPS    X5, 32(DI)
	MOVUPS    48(DI), X9
	ADDPS     X9, X8
	MOVUPS    X8, 48(DI)
	ADDQ      $8, SI
	ADDQ      $64, DI
	SUBQ      $16, AX
	JNZ       loop4
	RET

// func dequant4ptr(dst *float32, src *byte, n int, scale, bias float32)
TEXT ·dequant4ptr(SB), NOSPLIT, $0-32
	MOVQ  dst+0(FP), DI
	MOVQ  src+8(FP), SI
	MOVQ  n+16(FP), AX
	MOVSS scale+24(FP), X0
	SHUFPS $0x00, X0, X0
	MOVSS bias+28(FP), X1
	SHUFPS $0x00, X1, X1
	MOVOU nibmask<>(SB), X2
	PXOR  X7, X7

dloop4:
	MOVQ      (SI), X4
	MOVO      X4, X5
	PAND      X2, X4
	PSRLW     $4, X5
	PAND      X2, X5
	PUNPCKLBW X5, X4
	MOVO      X4, X5
	PUNPCKLBW X7, X4
	PUNPCKHBW X7, X5
	MOVO      X4, X6
	PUNPCKLWL X7, X4
	PUNPCKHWL X7, X6
	MOVO      X5, X8
	PUNPCKLWL X7, X5
	PUNPCKHWL X7, X8
	CVTPL2PS  X4, X4
	CVTPL2PS  X6, X6
	CVTPL2PS  X5, X5
	CVTPL2PS  X8, X8
	MULPS     X0, X4
	MULPS     X0, X6
	MULPS     X0, X5
	MULPS     X0, X8
	ADDPS     X1, X4
	ADDPS     X1, X6
	ADDPS     X1, X5
	ADDPS     X1, X8
	MOVUPS    X4, (DI)
	MOVUPS    X6, 16(DI)
	MOVUPS    X5, 32(DI)
	MOVUPS    X8, 48(DI)
	ADDQ      $8, SI
	ADDQ      $64, DI
	SUBQ      $16, AX
	JNZ       dloop4
	RET
