package quant

import (
	"encoding/binary"
	"math"
	"testing"
)

// Property fuzzers for the quantization codecs: arbitrary float rows in,
// and the encode→decode round trip must stay inside the analytic error
// bound (or reject the input) — never panic, never drift unbounded. Run
// in CI as a -fuzztime smoke on top of the committed seeds.

// fuzzFloats reinterprets fuzz bytes as float32s, capping the row so the
// fuzzer explores shapes rather than allocation limits.
func fuzzFloats(b []byte, maxVals int) []float32 {
	n := len(b) / 4
	if n > maxVals {
		n = maxVals
	}
	out := make([]float32, n)
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(b[4*i:]))
	}
	return out
}

func finite(xs []float32) bool {
	for _, x := range xs {
		if math.IsNaN(float64(x)) || math.IsInf(float64(x), 0) {
			return false
		}
	}
	return true
}

func FuzzFP16RoundTrip(f *testing.F) {
	seed := func(xs ...float32) {
		b := make([]byte, 4*len(xs))
		for i, x := range xs {
			binary.LittleEndian.PutUint32(b[4*i:], math.Float32bits(x))
		}
		f.Add(b)
	}
	seed(0, 1, -1, 0.5)
	seed(65504, -65504, 70000, 1e-8)
	seed(float32(math.NaN()), float32(math.Inf(1)))
	f.Fuzz(func(t *testing.T, b []byte) {
		xs := fuzzFloats(b, 256)
		if len(xs) == 0 {
			t.Skip()
		}
		enc := EncodeFP16Rows(xs, 1, len(xs))
		dst := make([]float32, len(xs))
		enc.DequantizeRowInto(dst, 0)
		for i, want := range xs {
			got := dst[i]
			if math.IsNaN(float64(want)) {
				if !math.IsNaN(float64(got)) {
					t.Fatalf("NaN decoded to %g", got)
				}
				continue
			}
			absWant := float32(math.Abs(float64(want)))
			if math.IsInf(float64(want), 0) {
				// Saturating encode clamps infinities to the max finite.
				if math.Abs(float64(got)) != fp16MaxFinite {
					t.Fatalf("inf decoded to %g", got)
				}
				continue
			}
			bound := float64(MaxErrorFP16(absWant))
			if diff := math.Abs(float64(got - want)); diff > bound {
				t.Fatalf("val %d: %g -> %g, |err| %g > bound %g", i, want, got, diff, bound)
			}
			// Idempotence: re-encoding the decoded value is bit-stable.
			if f32to16sat(got) != enc.Data[i] {
				t.Fatalf("val %d: re-encode not idempotent", i)
			}
		}
	})
}

func FuzzQuantizeRowsErrorBound(f *testing.F) {
	seed := func(xs ...float32) {
		b := make([]byte, 4*len(xs))
		for i, x := range xs {
			binary.LittleEndian.PutUint32(b[4*i:], math.Float32bits(x))
		}
		f.Add(b, uint8(8))
		f.Add(b, uint8(4))
	}
	seed(0, 0, 0, 0)
	seed(1, -1, 0.25, 0.75)
	seed(100, -100, 1e-3, 42)
	f.Fuzz(func(t *testing.T, b []byte, bitsRaw uint8) {
		bits := Bits8
		if bitsRaw%2 == 0 {
			bits = Bits4
		}
		xs := fuzzFloats(b, 128)
		if len(xs) == 0 || !finite(xs) {
			t.Skip()
		}
		for _, x := range xs {
			// Extreme magnitudes overflow the fp16 row headers; the
			// production encoder never sees them (embedding values are
			// O(1)) and the bound below assumes finite headers.
			if math.Abs(float64(x)) > 1e4 {
				t.Skip()
			}
		}
		q := QuantizeRows(xs, 1, len(xs), bits)
		dst := make([]float32, len(xs))
		q.DequantizeRowInto(dst, 0)

		lo, hi := minMax(xs)
		scale := float64(f16to32(q.Scales[0]))
		// Bound: half a quantization step, plus what fp16-rounding the
		// scale/bias headers can displace the reconstruction grid by.
		// Header rounding is within 2^-11 relative for normal-range
		// values but only within 2^-25 absolute in the subnormal range
		// (a tiny scale underflows fp16's normal exponents), and the
		// scale's error is amplified by up to `levels` code steps.
		levels := float64(int(1)<<bits - 1)
		headerErr := func(x float64) float64 {
			return math.Max(math.Abs(x)/2048, 1.0/(1<<25))
		}
		exactScale := float64(hi-lo) / levels
		bound := scale/2 +
			headerErr(float64(lo)) + // bias rounding
			headerErr(exactScale)*levels + // scale rounding across the range
			1e-6
		for i, want := range xs {
			if diff := math.Abs(float64(dst[i] - want)); diff > bound {
				t.Fatalf("bits %d val %d: %g -> %g, |err| %g > bound %g (scale %g)",
					bits, i, want, dst[i], diff, bound, scale)
			}
		}

		// The row-range wire codec round-trips the encoding bit-exactly.
		clone := NewRowQuantizedEmpty(1, len(xs), bits)
		if _, err := clone.SetRowRange(0, q.AppendRowRange(nil, 0, 1)); err != nil {
			t.Fatal(err)
		}
		if clone.Scales[0] != q.Scales[0] || clone.Biases[0] != q.Biases[0] {
			t.Fatal("row-range codec changed headers")
		}
		for i := range q.Packed {
			if clone.Packed[i] != q.Packed[i] {
				t.Fatal("row-range codec changed codes")
			}
		}
	})
}
