package quant

import (
	"unsafe"

	"repro/internal/tensor"
)

// Word-wide quantized-row decode: the vectorized arm of the kernel
// dispatch table (tensor.SetKernel / REPRO_KERNEL). The scalar decoders
// in quant.go load one packed byte per element; these decode 8 (int8)
// or 16 (int4) codes per step. On amd64 the full-group body runs in
// SIMD assembly (decode_amd64.s) — byte unpack, integer→float convert,
// and the scale*code + bias accumulate all vector-wide; elsewhere a
// single unaligned word load unpacks the codes in integer registers,
// eliminating per-element bounds checks and loop overhead. Per element
// the arithmetic is exactly the scalar kernel's — the same
// uint8→float32 conversion feeding the same scale*code + bias
// expression — so accumulation results are bitwise identical, a
// property the differential tests and the FuzzWordWideRowDecode target
// in decode_fuzz_test.go pin down on arbitrary row bytes, lengths, and
// slice offsets.
//
// Eligibility is resolved by the tensor dispatch table: the unaligned
// word load assumes a 64-bit little-endian host (amd64/arm64), and
// tensor.ActiveKernel only returns KernelVector on one.

// load64 reads 8 little-endian bytes starting at b[off] as one word.
// The caller must guarantee off+8 <= len(b); &b[off] keeps the single
// leading bounds check, the unsafe cast removes the other seven.
func load64(b []byte, off int) uint64 {
	return *(*uint64)(unsafe.Pointer(&b[off]))
}

// vectorActive reports whether the word-wide decoders should run. A
// plain helper so every quant entry point resolves dispatch the same
// way (and exactly once per row or bag, not per element).
func vectorActive() bool { return tensor.ActiveKernel() == tensor.KernelVector }

// accumulateRow8Vec adds scale*code + bias for the n int8 codes in src
// into acc[0:n], 8 codes per step.
func accumulateRow8Vec(acc []float32, src []byte, scale, bias float32, n int) {
	c := 0
	if haveDecodeASM {
		if m := n &^ 7; m > 0 {
			a, s := acc[:m], src[:m]
			accum8ptr(&a[0], &s[0], m, scale, bias)
			c = m
		}
	} else {
		for ; c+8 <= n; c += 8 {
			w := load64(src, c)
			a := acc[c : c+8 : c+8]
			a[0] += scale*float32(uint8(w)) + bias
			a[1] += scale*float32(uint8(w>>8)) + bias
			a[2] += scale*float32(uint8(w>>16)) + bias
			a[3] += scale*float32(uint8(w>>24)) + bias
			a[4] += scale*float32(uint8(w>>32)) + bias
			a[5] += scale*float32(uint8(w>>40)) + bias
			a[6] += scale*float32(uint8(w>>48)) + bias
			a[7] += scale*float32(uint8(w>>56)) + bias
		}
	}
	for ; c < n; c++ {
		acc[c] += scale*float32(src[c]) + bias
	}
}

// dequantizeRow8Vec writes scale*code + bias for the n int8 codes in src
// into dst[0:n], 8 codes per step.
func dequantizeRow8Vec(dst []float32, src []byte, scale, bias float32, n int) {
	c := 0
	if haveDecodeASM {
		if m := n &^ 7; m > 0 {
			d, s := dst[:m], src[:m]
			dequant8ptr(&d[0], &s[0], m, scale, bias)
			c = m
		}
	} else {
		for ; c+8 <= n; c += 8 {
			w := load64(src, c)
			d := dst[c : c+8 : c+8]
			d[0] = scale*float32(uint8(w)) + bias
			d[1] = scale*float32(uint8(w>>8)) + bias
			d[2] = scale*float32(uint8(w>>16)) + bias
			d[3] = scale*float32(uint8(w>>24)) + bias
			d[4] = scale*float32(uint8(w>>32)) + bias
			d[5] = scale*float32(uint8(w>>40)) + bias
			d[6] = scale*float32(uint8(w>>48)) + bias
			d[7] = scale*float32(uint8(w>>56)) + bias
		}
	}
	for ; c < n; c++ {
		dst[c] = scale*float32(src[c]) + bias
	}
}

// accumulateRow4Vec adds scale*code + bias for the n int4 codes packed
// two per byte in src into acc[0:n], 16 codes per step. Nibble order
// matches the scalar decoder: low nibble is the even column.
func accumulateRow4Vec(acc []float32, src []byte, scale, bias float32, n int) {
	c := 0
	if haveDecodeASM {
		if m := n &^ 15; m > 0 {
			a, s := acc[:m], src[:m/2]
			accum4ptr(&a[0], &s[0], m, scale, bias)
			c = m
		}
	} else {
		for ; c+16 <= n; c += 16 {
			w := load64(src, c/2)
			a := acc[c : c+16 : c+16]
			a[0] += scale*float32(uint8(w)&0x0f) + bias
			a[1] += scale*float32(uint8(w>>4)&0x0f) + bias
			a[2] += scale*float32(uint8(w>>8)&0x0f) + bias
			a[3] += scale*float32(uint8(w>>12)&0x0f) + bias
			a[4] += scale*float32(uint8(w>>16)&0x0f) + bias
			a[5] += scale*float32(uint8(w>>20)&0x0f) + bias
			a[6] += scale*float32(uint8(w>>24)&0x0f) + bias
			a[7] += scale*float32(uint8(w>>28)&0x0f) + bias
			a[8] += scale*float32(uint8(w>>32)&0x0f) + bias
			a[9] += scale*float32(uint8(w>>36)&0x0f) + bias
			a[10] += scale*float32(uint8(w>>40)&0x0f) + bias
			a[11] += scale*float32(uint8(w>>44)&0x0f) + bias
			a[12] += scale*float32(uint8(w>>48)&0x0f) + bias
			a[13] += scale*float32(uint8(w>>52)&0x0f) + bias
			a[14] += scale*float32(uint8(w>>56)&0x0f) + bias
			a[15] += scale*float32(uint8(w>>60)&0x0f) + bias
		}
	}
	for ; c < n; c++ {
		b := src[c/2]
		var code uint8
		if c%2 == 0 {
			code = b & 0x0f
		} else {
			code = b >> 4
		}
		acc[c] += scale*float32(code) + bias
	}
}

// dequantizeRow4Vec writes scale*code + bias for the n int4 codes packed
// two per byte in src into dst[0:n], 16 codes per step.
func dequantizeRow4Vec(dst []float32, src []byte, scale, bias float32, n int) {
	c := 0
	if haveDecodeASM {
		if m := n &^ 15; m > 0 {
			d, s := dst[:m], src[:m/2]
			dequant4ptr(&d[0], &s[0], m, scale, bias)
			c = m
		}
	} else {
		for ; c+16 <= n; c += 16 {
			w := load64(src, c/2)
			d := dst[c : c+16 : c+16]
			d[0] = scale*float32(uint8(w)&0x0f) + bias
			d[1] = scale*float32(uint8(w>>4)&0x0f) + bias
			d[2] = scale*float32(uint8(w>>8)&0x0f) + bias
			d[3] = scale*float32(uint8(w>>12)&0x0f) + bias
			d[4] = scale*float32(uint8(w>>16)&0x0f) + bias
			d[5] = scale*float32(uint8(w>>20)&0x0f) + bias
			d[6] = scale*float32(uint8(w>>24)&0x0f) + bias
			d[7] = scale*float32(uint8(w>>28)&0x0f) + bias
			d[8] = scale*float32(uint8(w>>32)&0x0f) + bias
			d[9] = scale*float32(uint8(w>>36)&0x0f) + bias
			d[10] = scale*float32(uint8(w>>40)&0x0f) + bias
			d[11] = scale*float32(uint8(w>>44)&0x0f) + bias
			d[12] = scale*float32(uint8(w>>48)&0x0f) + bias
			d[13] = scale*float32(uint8(w>>52)&0x0f) + bias
			d[14] = scale*float32(uint8(w>>56)&0x0f) + bias
			d[15] = scale*float32(uint8(w>>60)&0x0f) + bias
		}
	}
	for ; c < n; c++ {
		b := src[c/2]
		var code uint8
		if c%2 == 0 {
			code = b & 0x0f
		} else {
			code = b >> 4
		}
		dst[c] = scale*float32(code) + bias
	}
}
