package quant

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// fp16Bound is the reconstruction-error bound for row-wise quantization
// with fp16 headers: the half quantization step of MaxError plus the fp16
// rounding of the scale (amplified by up to `levels` codes) and bias.
func fp16Bound(lo, hi float32, bits Bits) float64 {
	r := float64(hi - lo)
	return float64(MaxError(hi-lo, bits)) + (r+math.Abs(float64(lo)))/1024 + 1e-6
}

func TestQuantizeRoundTrip8(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	rows, cols := 16, 8
	data := make([]float32, rows*cols)
	for i := range data {
		data[i] = rng.Float32()*10 - 5
	}
	q := QuantizeRows(data, rows, cols, Bits8)
	dst := make([]float32, cols)
	for r := 0; r < rows; r++ {
		q.DequantizeRowInto(dst, r)
		row := data[r*cols : (r+1)*cols]
		lo, hi := minMax(row)
		bound := fp16Bound(lo, hi, Bits8)
		for c := range dst {
			if err := math.Abs(float64(dst[c] - row[c])); err > bound {
				t.Fatalf("row %d col %d: err %v > bound %v", r, c, err, bound)
			}
		}
	}
}

func TestQuantizeRoundTrip4(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	rows, cols := 8, 7 // odd cols exercises nibble packing tail
	data := make([]float32, rows*cols)
	for i := range data {
		data[i] = rng.Float32()*2 - 1
	}
	q := QuantizeRows(data, rows, cols, Bits4)
	dst := make([]float32, cols)
	for r := 0; r < rows; r++ {
		q.DequantizeRowInto(dst, r)
		row := data[r*cols : (r+1)*cols]
		lo, hi := minMax(row)
		bound := fp16Bound(lo, hi, Bits4)
		for c := range dst {
			if err := math.Abs(float64(dst[c] - row[c])); err > bound {
				t.Fatalf("row %d col %d: err %v > bound %v (got %v want %v)", r, c, err, bound, dst[c], row[c])
			}
		}
	}
}

func TestQuantizeConstantRow(t *testing.T) {
	data := []float32{3.5, 3.5, 3.5, 3.5}
	q := QuantizeRows(data, 1, 4, Bits8)
	dst := make([]float32, 4)
	q.DequantizeRowInto(dst, 0)
	for _, v := range dst {
		if v != 3.5 {
			t.Fatalf("constant row should reconstruct exactly, got %v", v)
		}
	}
}

func TestQuantizedBytes(t *testing.T) {
	rows, cols := 10, 16
	data := make([]float32, rows*cols)
	q8 := QuantizeRows(data, rows, cols, Bits8)
	// 8-bit: rows*cols codes + 4 bytes/row fp16 header pair.
	if want := int64(rows*cols + rows*4); q8.Bytes() != want {
		t.Errorf("8-bit Bytes = %d, want %d", q8.Bytes(), want)
	}
	q4 := QuantizeRows(data, rows, cols, Bits4)
	if want := int64(rows*cols/2 + rows*4); q4.Bytes() != want {
		t.Errorf("4-bit Bytes = %d, want %d", q4.Bytes(), want)
	}
	// Compression vs fp32 (ignoring headers): 4x and 8x respectively.
	fp32 := int64(rows * cols * 4)
	if ratio := float64(fp32) / float64(q8.Bytes()); ratio < 3 {
		t.Errorf("8-bit ratio %v too low", ratio)
	}
	if ratio := float64(fp32) / float64(q4.Bytes()); ratio < 5 {
		t.Errorf("4-bit ratio %v too low", ratio)
	}
}

func TestAccumulateRowMatchesDequant(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	cols := 12
	data := make([]float32, 4*cols)
	for i := range data {
		data[i] = rng.Float32()
	}
	for _, bits := range []Bits{Bits8, Bits4} {
		q := QuantizeRows(data, 4, cols, bits)
		acc := make([]float32, cols)
		q.AccumulateRow(acc, 1)
		q.AccumulateRow(acc, 3)
		want := make([]float32, cols)
		tmp := make([]float32, cols)
		q.DequantizeRowInto(tmp, 1)
		for i := range want {
			want[i] += tmp[i]
		}
		q.DequantizeRowInto(tmp, 3)
		for i := range want {
			want[i] += tmp[i]
		}
		for i := range want {
			if math.Abs(float64(acc[i]-want[i])) > 1e-5 {
				t.Fatalf("bits=%d: AccumulateRow diverges at %d: %v vs %v", bits, i, acc[i], want[i])
			}
		}
	}
}

func TestQuantizeErrorBoundProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cols := 1 + rng.Intn(20)
		row := make([]float32, cols)
		for i := range row {
			row[i] = rng.Float32()*200 - 100
		}
		q := QuantizeRows(row, 1, cols, Bits8)
		dst := make([]float32, cols)
		q.DequantizeRowInto(dst, 0)
		lo, hi := minMax(row)
		bound := fp16Bound(lo, hi, Bits8)
		for c := range dst {
			if math.Abs(float64(dst[c]-row[c])) > bound {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestQuantizePanics(t *testing.T) {
	cases := []func(){
		func() { QuantizeRows(make([]float32, 3), 2, 2, Bits8) },
		func() { QuantizeRows(make([]float32, 4), 2, 2, Bits(3)) },
		func() {
			q := QuantizeRows(make([]float32, 4), 2, 2, Bits8)
			q.DequantizeRowInto(make([]float32, 1), 0)
		},
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestPruneMagnitude(t *testing.T) {
	data := []float32{0.01, -0.02, 0.5, -0.6, 0}
	n := PruneMagnitude(data, 0.1)
	if n != 2 {
		t.Errorf("pruned %d, want 2", n)
	}
	want := []float32{0, 0, 0.5, -0.6, 0}
	for i, w := range want {
		if data[i] != w {
			t.Errorf("data[%d] = %v, want %v", i, data[i], w)
		}
	}
}

func TestPruneRowsByNorm(t *testing.T) {
	// Row 0 has norm 0.1, row 1 has norm 5.
	data := []float32{0.1, 0, 5, 0}
	n := PruneRowsByNorm(data, 2, 2, 1)
	if n != 1 {
		t.Errorf("pruned %d rows, want 1", n)
	}
	if data[0] != 0 || data[1] != 0 {
		t.Errorf("row 0 should be zeroed: %v", data[:2])
	}
	if data[2] != 5 {
		t.Errorf("row 1 should survive: %v", data[2:])
	}
}

func TestPruneRowsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	PruneRowsByNorm(make([]float32, 3), 2, 2, 1)
}

func TestPruneIdempotentProperty(t *testing.T) {
	f := func(xs []float32, th float32) bool {
		if math.IsNaN(float64(th)) {
			return true
		}
		for _, x := range xs {
			if math.IsNaN(float64(x)) {
				return true
			}
		}
		cp := append([]float32(nil), xs...)
		PruneMagnitude(cp, th)
		again := append([]float32(nil), cp...)
		n := PruneMagnitude(again, th)
		if n != 0 {
			return false
		}
		for i := range cp {
			if cp[i] != again[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
