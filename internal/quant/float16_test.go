package quant

import (
	"math"
	"testing"
	"testing/quick"
)

func TestFloat16ExactValues(t *testing.T) {
	cases := []struct {
		f float32
		h uint16
	}{
		{0, 0x0000},
		{1, 0x3c00},
		{-1, 0xbc00},
		{0.5, 0x3800},
		{2, 0x4000},
		{65504, 0x7bff}, // max finite half
	}
	for _, c := range cases {
		if got := f32to16(c.f); got != c.h {
			t.Errorf("f32to16(%v) = %#04x, want %#04x", c.f, got, c.h)
		}
		if got := f16to32(c.h); got != c.f {
			t.Errorf("f16to32(%#04x) = %v, want %v", c.h, got, c.f)
		}
	}
}

func TestFloat16Overflow(t *testing.T) {
	if got := f16to32(f32to16(1e10)); !math.IsInf(float64(got), 1) {
		t.Errorf("overflow should clamp to +Inf, got %v", got)
	}
	if got := f16to32(f32to16(-1e10)); !math.IsInf(float64(got), -1) {
		t.Errorf("overflow should clamp to -Inf, got %v", got)
	}
}

func TestFloat16NaN(t *testing.T) {
	nan := float32(math.NaN())
	if got := f16to32(f32to16(nan)); !math.IsNaN(float64(got)) {
		t.Errorf("NaN should round-trip as NaN, got %v", got)
	}
}

func TestFloat16Subnormals(t *testing.T) {
	// Smallest half subnormal is 2^-24 ≈ 5.96e-8.
	tiny := float32(math.Ldexp(1, -24))
	if got := f16to32(f32to16(tiny)); got != tiny {
		t.Errorf("subnormal %v round-tripped to %v", tiny, got)
	}
	// Below half subnormal range flushes to zero.
	if got := f16to32(f32to16(1e-10)); got != 0 {
		t.Errorf("underflow should flush to zero, got %v", got)
	}
}

func TestFloat16RoundTripPrecisionProperty(t *testing.T) {
	f := func(x float32) bool {
		if math.IsNaN(float64(x)) || math.IsInf(float64(x), 0) {
			return true
		}
		// Restrict to half's normal range.
		if x != 0 && (math.Abs(float64(x)) < 6.2e-5 || math.Abs(float64(x)) > 65000) {
			return true
		}
		got := f16to32(f32to16(x))
		// Half has 11 significand bits → relative error ≤ 2^-11.
		rel := math.Abs(float64(got-x)) / math.Max(math.Abs(float64(x)), 1e-30)
		return rel <= 1.0/2048+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestFloat16DecodeEncodeIdentityProperty(t *testing.T) {
	// Every finite half value must encode back to itself exactly.
	for h := 0; h < 1<<16; h++ {
		if h&0x7c00 == 0x7c00 && h&0x3ff != 0 {
			continue // NaN payloads need not round-trip bit-exactly
		}
		f := f16to32(uint16(h))
		if got := f32to16(f); got != uint16(h) {
			// -0 and +0 are distinct bit patterns but equal floats; the
			// encoder must still preserve the sign.
			t.Fatalf("f32to16(f16to32(%#04x)) = %#04x", h, got)
		}
	}
}
