package quant

import (
	"math"
	"math/rand"
	"testing"
)

func TestFP16RoundTripErrorBound(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	data := make([]float32, 64*17)
	for i := range data {
		data[i] = (rng.Float32()*2 - 1) * 10
	}
	enc := EncodeFP16Rows(data, 64, 17)
	dst := make([]float32, 17)
	for r := 0; r < 64; r++ {
		enc.DequantizeRowInto(dst, r)
		for c, got := range dst {
			want := data[r*17+c]
			bound := MaxErrorFP16(float32(math.Abs(float64(want))))
			if diff := math.Abs(float64(got - want)); diff > float64(bound) {
				t.Fatalf("row %d col %d: %g -> %g, |err| %g > bound %g", r, c, want, got, diff, bound)
			}
		}
	}
}

func TestFP16EncodeIdempotent(t *testing.T) {
	// decode(encode(x)) is exactly representable, so a second encode must
	// reproduce identical bits — the property that lets a re-encoded
	// migrated table stay byte-identical.
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 1000; i++ {
		x := (rng.Float32()*2 - 1) * 100
		h := f32to16sat(x)
		if again := f32to16sat(f16to32(h)); again != h {
			t.Fatalf("x=%g: encode %04x, re-encode %04x", x, h, again)
		}
	}
}

func TestFP16Saturation(t *testing.T) {
	for _, x := range []float32{1e10, 70000, -1e10, -70000} {
		h := f32to16sat(x)
		got := f16to32(h)
		want := float32(fp16MaxFinite)
		if x < 0 {
			want = -want
		}
		if got != want {
			t.Fatalf("f32to16sat(%g) decodes to %g, want %g", x, got, want)
		}
	}
	// NaN survives as NaN, not a saturated finite.
	nan := float32(math.NaN())
	if got := f16to32(f32to16sat(nan)); got == got {
		t.Fatalf("NaN encoded to finite %g", got)
	}
}

func TestFP16RowRangeCodec(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	data := make([]float32, 20*6)
	for i := range data {
		data[i] = rng.Float32()
	}
	src := EncodeFP16Rows(data, 20, 6)
	dst := NewFP16Rows(20, 6)
	for lo := 0; lo < 20; lo += 7 {
		hi := lo + 7
		if hi > 20 {
			hi = 20
		}
		raw := src.AppendRowRange(nil, lo, hi)
		if len(raw) != (hi-lo)*src.RowRangeStride() {
			t.Fatalf("range [%d,%d): %d bytes, want %d", lo, hi, len(raw), (hi-lo)*src.RowRangeStride())
		}
		n, err := dst.SetRowRange(lo, raw)
		if err != nil || n != hi-lo {
			t.Fatalf("SetRowRange: n=%d err=%v", n, err)
		}
	}
	for i, h := range src.Data {
		if dst.Data[i] != h {
			t.Fatalf("value %d: %04x != %04x", i, dst.Data[i], h)
		}
	}
	// Bad inputs are rejected, not panics.
	if _, err := dst.SetRowRange(0, make([]byte, 5)); err == nil {
		t.Fatal("misaligned raw accepted")
	}
	if _, err := dst.SetRowRange(19, make([]byte, 2*6*2)); err == nil {
		t.Fatal("overflowing range accepted")
	}
}

func TestFP16FromParts(t *testing.T) {
	if _, err := FP16FromParts(2, 3, make([]uint16, 6)); err != nil {
		t.Fatal(err)
	}
	if _, err := FP16FromParts(2, 3, make([]uint16, 5)); err == nil {
		t.Fatal("short data accepted")
	}
	if _, err := FP16FromParts(-1, 3, nil); err == nil {
		t.Fatal("negative shape accepted")
	}
}

func TestRowQuantizedRowRangeCodec(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, bits := range []Bits{Bits8, Bits4} {
		data := make([]float32, 33*5)
		for i := range data {
			data[i] = rng.Float32()*2 - 1
		}
		src := QuantizeRows(data, 33, 5, bits)
		dst := NewRowQuantizedEmpty(33, 5, bits)
		for lo := 0; lo < 33; lo += 8 {
			hi := lo + 8
			if hi > 33 {
				hi = 33
			}
			raw := src.AppendRowRange(nil, lo, hi)
			if len(raw) != (hi-lo)*src.RowRangeStride() {
				t.Fatalf("bits %d range [%d,%d): %d bytes, want %d", bits, lo, hi, len(raw), (hi-lo)*src.RowRangeStride())
			}
			if n, err := dst.SetRowRange(lo, raw); err != nil || n != hi-lo {
				t.Fatalf("bits %d SetRowRange: n=%d err=%v", bits, n, err)
			}
		}
		for r := 0; r < 33; r++ {
			if dst.Scales[r] != src.Scales[r] || dst.Biases[r] != src.Biases[r] {
				t.Fatalf("bits %d row %d: headers differ", bits, r)
			}
		}
		for i := range src.Packed {
			if dst.Packed[i] != src.Packed[i] {
				t.Fatalf("bits %d packed byte %d differs", bits, i)
			}
		}
		if _, err := dst.SetRowRange(0, make([]byte, 3)); err == nil {
			t.Fatal("misaligned raw accepted")
		}
	}
}
