package quant

import "math"

// Float16 helpers for the per-row (scale, bias) headers of quantized
// embedding rows. Production row-wise quantization stores fp16 headers so
// the header does not dominate small-dimension rows; we do the same.
// Only the conversions needed here are implemented: round-to-nearest-even
// float32→float16 and exact float16→float32.

// f32to16 converts a float32 to IEEE 754 binary16 with round-to-nearest-
// even, clamping overflow to ±Inf.
func f32to16(f float32) uint16 {
	b := math.Float32bits(f)
	sign := uint16(b>>16) & 0x8000
	exp := int32(b>>23&0xff) - 127 + 15
	mant := b & 0x7fffff

	switch {
	case exp >= 0x1f:
		// Overflow (or Inf/NaN input): keep NaN payloads, clamp to Inf.
		if int32(b>>23&0xff) == 0xff && mant != 0 {
			return sign | 0x7e00 // quiet NaN
		}
		return sign | 0x7c00
	case exp <= 0:
		// Subnormal or underflow to zero.
		if exp < -10 {
			return sign
		}
		mant |= 0x800000
		shift := uint32(14 - exp)
		half := uint32(1) << (shift - 1)
		rounded := (mant + half - 1 + (mant>>shift)&1) >> shift
		return sign | uint16(rounded)
	default:
		// Normal: round mantissa from 23 to 10 bits, nearest-even.
		rounded := mant + 0xfff + (mant>>13)&1
		if rounded&0x800000 != 0 {
			rounded = 0
			exp++
			if exp >= 0x1f {
				return sign | 0x7c00
			}
		}
		return sign | uint16(exp)<<10 | uint16(rounded>>13)
	}
}

// f16to32 converts IEEE 754 binary16 to float32 exactly.
func f16to32(h uint16) float32 {
	sign := uint32(h&0x8000) << 16
	exp := uint32(h >> 10 & 0x1f)
	mant := uint32(h & 0x3ff)
	switch exp {
	case 0:
		if mant == 0 {
			return math.Float32frombits(sign)
		}
		// Subnormal: normalize.
		e := uint32(127 - 15 + 1)
		for mant&0x400 == 0 {
			mant <<= 1
			e--
		}
		mant &= 0x3ff
		return math.Float32frombits(sign | e<<23 | mant<<13)
	case 0x1f:
		return math.Float32frombits(sign | 0xff<<23 | mant<<13)
	default:
		return math.Float32frombits(sign | (exp-15+127)<<23 | mant<<13)
	}
}
