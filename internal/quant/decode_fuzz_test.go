package quant

import (
	"math"
	"testing"

	"repro/internal/tensor"
)

// Differential fuzzers for the vectorized row decoders: arbitrary
// packed bytes, arbitrary fp16 headers (including NaN/Inf/subnormal
// bit patterns), arbitrary widths and column counts — the word-wide /
// SIMD kernels must match the scalar reference bitwise on every input,
// and the unsafe word loads must never read out of bounds (the fuzzer
// runs with the race detector and bounds checks in CI's smoke leg).
// Complements the fixed adversarial sweeps in internal/kerneltest with
// coverage-guided search.

// fuzzQuantized builds a RowQuantized directly from fuzzer-controlled
// headers and packed bytes — unlike QuantizeRows this reaches encodings
// no encoder produces (NaN scales, Inf biases), which the decoders must
// still handle deterministically. Returns nil if the fuzz inputs don't
// describe a well-formed table.
func fuzzQuantized(packed []byte, scale, bias uint16, cols int, bits Bits) *RowQuantized {
	if cols <= 0 || cols > 512 {
		return nil
	}
	stride := rowStrideFor(cols, bits)
	if len(packed) < stride {
		return nil
	}
	q, err := NewFromParts(1, cols, bits, []uint16{scale}, []uint16{bias}, packed[:stride])
	if err != nil {
		return nil
	}
	return q
}

// FuzzWordWideRowDecode drives AccumulateRow and DequantizeRowInto
// through both dispatch settings on fuzzer-shaped rows and asserts
// bitwise-identical outputs, with the accumulator pre-seeded from fuzz
// bytes so the acc-add sees arbitrary prior values (NaNs included).
func FuzzWordWideRowDecode(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8}, uint16(0x3c00), uint16(0x0000), 8, true, uint32(0))
	f.Add([]byte{0xff, 0xee, 0xdd, 0xcc, 0xbb, 0xaa, 0x99, 0x88}, uint16(0x7e01), uint16(0x7e02), 16, false, uint32(0x7fc00003))
	f.Add([]byte{1, 2, 3}, uint16(0x7c00), uint16(0x8000), 5, false, uint32(0xff800000))
	f.Add([]byte{0x55, 0xaa, 0x55, 0xaa, 0x55, 0xaa, 0x55, 0xaa, 0x55}, uint16(0x0001), uint16(0xfc00), 17, true, uint32(1))
	f.Fuzz(func(t *testing.T, packed []byte, scale, bias uint16, cols int, wide bool, accSeed uint32) {
		bits := Bits8
		if !wide {
			bits = Bits4
		}
		q := fuzzQuantized(packed, scale, bias, cols, bits)
		if q == nil {
			t.Skip()
		}
		defer tensor.SetKernel(tensor.KernelAuto)

		seed := math.Float32frombits(accSeed)
		run := func(k tensor.Kernel) ([]float32, []float32) {
			tensor.SetKernel(k)
			acc := make([]float32, cols)
			for i := range acc {
				acc[i] = seed
			}
			q.AccumulateRow(acc, 0)
			dst := make([]float32, cols)
			q.DequantizeRowInto(dst, 0)
			return acc, dst
		}
		accG, dstG := run(tensor.KernelGeneric)
		accV, dstV := run(tensor.KernelVector)
		for i := 0; i < cols; i++ {
			if math.Float32bits(accG[i]) != math.Float32bits(accV[i]) {
				t.Fatalf("bits=%d cols=%d acc[%d]: generic %08x, vector %08x",
					bits, cols, i, math.Float32bits(accG[i]), math.Float32bits(accV[i]))
			}
			if math.Float32bits(dstG[i]) != math.Float32bits(dstV[i]) {
				t.Fatalf("bits=%d cols=%d dst[%d]: generic %08x, vector %08x",
					bits, cols, i, math.Float32bits(dstG[i]), math.Float32bits(dstV[i]))
			}
		}
	})
}

// FuzzWordWideDecodeOffsets targets the unsafe 8-byte loads at hostile
// offsets: the packed row is a sub-slice of a larger fuzz buffer at an
// arbitrary byte offset, so a decoder reading one byte past its row —
// invisible when the row owns the whole allocation — produces a visible
// cross-kernel mismatch here.
func FuzzWordWideDecodeOffsets(f *testing.F) {
	f.Add(make([]byte, 64), 3, 13, true)
	f.Add([]byte{9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9}, 1, 16, false)
	f.Add([]byte{0x80, 0x7f, 0, 0xff, 1, 2, 3, 4, 5, 6}, 2, 8, true)
	f.Fuzz(func(t *testing.T, buf []byte, off, cols int, wide bool) {
		bits := Bits8
		if !wide {
			bits = Bits4
		}
		if cols <= 0 || cols > 256 || off < 0 || off > len(buf) {
			t.Skip()
		}
		q := fuzzQuantized(buf[off:], 0x3c01, 0xbc01, cols, bits)
		if q == nil {
			t.Skip()
		}
		defer tensor.SetKernel(tensor.KernelAuto)
		tensor.SetKernel(tensor.KernelGeneric)
		want := make([]float32, cols)
		q.AccumulateRow(want, 0)
		tensor.SetKernel(tensor.KernelVector)
		got := make([]float32, cols)
		q.AccumulateRow(got, 0)
		for i := range want {
			if math.Float32bits(got[i]) != math.Float32bits(want[i]) {
				t.Fatalf("off=%d cols=%d bits=%d: element %d: generic %08x, vector %08x",
					off, cols, bits, i, math.Float32bits(want[i]), math.Float32bits(got[i]))
			}
		}
	})
}
