//go:build !amd64

package quant

// Stubs for architectures without the SIMD decode assembly: the
// word-wide pure-Go paths in decode_vector.go carry the vector kernel
// alone. The stubs are never called — haveDecodeASM is a compile-time
// constant, so the calls are dead-code-eliminated — but must exist to
// typecheck.

const haveDecodeASM = false

func accum8ptr(acc *float32, src *byte, n int, scale, bias float32)   { panic("no decode asm") }
func dequant8ptr(dst *float32, src *byte, n int, scale, bias float32) { panic("no decode asm") }
func accum4ptr(acc *float32, src *byte, n int, scale, bias float32)   { panic("no decode asm") }
func dequant4ptr(dst *float32, src *byte, n int, scale, bias float32) { panic("no decode asm") }
