package quant

import (
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

// Ablation: lookup-path cost of quantization widths. Table III's finding
// that compression barely moves latency rests on the dequantize-fused
// pooling staying close to raw fp32 accumulation. The plain int8/int4
// arms force the generic (scalar) kernel — the committed pre-dispatch
// baseline — and the -vector arms force the word-wide decoders, so the
// benchcheck faster-than assertion can compare the two within one run.
func BenchmarkAccumulateRowByWidth(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	const rows, cols = 65536, 16
	data := make([]float32, rows*cols)
	for i := range data {
		data[i] = rng.Float32()*2 - 1
	}
	idx := make([]int, 4096)
	for i := range idx {
		idx[i] = rng.Intn(rows)
	}

	b.Run("fp32", func(b *testing.B) {
		acc := make([]float32, cols)
		for i := 0; i < b.N; i++ {
			row := data[idx[i%len(idx)]*cols:]
			for c := 0; c < cols; c++ {
				acc[c] += row[c]
			}
		}
	})
	for _, tc := range []struct {
		name string
		kern tensor.Kernel
	}{
		{"int8", tensor.KernelGeneric},
		{"int4", tensor.KernelGeneric},
		{"int8-vector", tensor.KernelVector},
		{"int4-vector", tensor.KernelVector},
	} {
		bits := Bits8
		if tc.name[:4] == "int4" {
			bits = Bits4
		}
		q := QuantizeRows(data, rows, cols, bits)
		b.Run(tc.name, func(b *testing.B) {
			tensor.SetKernel(tc.kern)
			defer tensor.SetKernel(tensor.KernelAuto)
			acc := make([]float32, cols)
			for i := 0; i < b.N; i++ {
				q.AccumulateRow(acc, idx[i%len(idx)])
			}
		})
	}
}

// BenchmarkAccumulateBagByKernel measures the whole-bag pooling path —
// dispatch resolved once per bag, the word-wide decode per row — at a
// production-shaped pooling factor, per kernel.
func BenchmarkAccumulateBagByKernel(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	const rows, cols, bag = 65536, 32, 64
	data := make([]float32, rows*cols)
	for i := range data {
		data[i] = rng.Float32()*2 - 1
	}
	q := QuantizeRows(data, rows, cols, Bits8)
	indices := make([]int32, bag)
	for i := range indices {
		indices[i] = int32(rng.Intn(rows))
	}
	for _, tc := range []struct {
		name string
		kern tensor.Kernel
	}{{"generic", tensor.KernelGeneric}, {"vector", tensor.KernelVector}} {
		b.Run(tc.name, func(b *testing.B) {
			tensor.SetKernel(tc.kern)
			defer tensor.SetKernel(tensor.KernelAuto)
			acc := make([]float32, cols)
			for i := 0; i < b.N; i++ {
				q.AccumulateBag(acc, indices)
			}
		})
	}
}

// Ablation: encode throughput by width (the model-publishing cost).
func BenchmarkQuantizeRowsByWidth(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	const rows, cols = 4096, 16
	data := make([]float32, rows*cols)
	for i := range data {
		data[i] = rng.Float32()
	}
	for _, bits := range []Bits{Bits8, Bits4} {
		name := "int8"
		if bits == Bits4 {
			name = "int4"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				QuantizeRows(data, rows, cols, bits)
			}
			b.SetBytes(int64(len(data)) * 4)
		})
	}
}
