package quant

import (
	"math/rand"
	"testing"
)

// Ablation: lookup-path cost of quantization widths. Table III's finding
// that compression barely moves latency rests on the dequantize-fused
// pooling staying close to raw fp32 accumulation.
func BenchmarkAccumulateRowByWidth(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	const rows, cols = 65536, 16
	data := make([]float32, rows*cols)
	for i := range data {
		data[i] = rng.Float32()*2 - 1
	}
	idx := make([]int, 4096)
	for i := range idx {
		idx[i] = rng.Intn(rows)
	}

	b.Run("fp32", func(b *testing.B) {
		acc := make([]float32, cols)
		for i := 0; i < b.N; i++ {
			row := data[idx[i%len(idx)]*cols:]
			for c := 0; c < cols; c++ {
				acc[c] += row[c]
			}
		}
	})
	for _, bits := range []Bits{Bits8, Bits4} {
		q := QuantizeRows(data, rows, cols, bits)
		name := "int8"
		if bits == Bits4 {
			name = "int4"
		}
		b.Run(name, func(b *testing.B) {
			acc := make([]float32, cols)
			for i := 0; i < b.N; i++ {
				q.AccumulateRow(acc, idx[i%len(idx)])
			}
		})
	}
}

// Ablation: encode throughput by width (the model-publishing cost).
func BenchmarkQuantizeRowsByWidth(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	const rows, cols = 4096, 16
	data := make([]float32, rows*cols)
	for i := range data {
		data[i] = rng.Float32()
	}
	for _, bits := range []Bits{Bits8, Bits4} {
		name := "int8"
		if bits == Bits4 {
			name = "int4"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				QuantizeRows(data, rows, cols, bits)
			}
			b.SetBytes(int64(len(data)) * 4)
		})
	}
}
