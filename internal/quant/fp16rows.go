package quant

import (
	"encoding/binary"
	"fmt"
)

// FP16Rows is an embedding table stored as IEEE 754 binary16 values —
// the half-precision cold tier of the serving path's tiered store. Unlike
// the row-wise linear encodings (RowQuantized), fp16 needs no per-row
// header and its reconstruction error is relative (≤ 2^-11 of the value
// magnitude for normal-range values), so it is the conservative choice
// when a table's quantization error budget rules int8 out.
type FP16Rows struct {
	Rows, Cols int
	// Data holds Rows×Cols binary16 values, row-major.
	Data []uint16
}

// fp16MaxFinite is the largest finite binary16 magnitude (65504). Encoding
// saturates to it instead of overflowing to Inf: an infinite embedding
// value would poison every pooled sum it joins.
const fp16MaxFinite = 65504.0

// f32to16sat converts with round-to-nearest-even, saturating overflow to
// ±fp16MaxFinite (NaN stays NaN).
func f32to16sat(f float32) uint16 {
	h := f32to16(f)
	if h&0x7fff == 0x7c00 && !(f != f) { // ±Inf from a finite (or infinite) input
		return h&0x8000 | 0x7bff
	}
	return h
}

// EncodeFP16Rows encodes a rows×cols float32 table (row-major) to fp16
// with saturation.
func EncodeFP16Rows(data []float32, rows, cols int) *FP16Rows {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("quant: data length %d != %dx%d", len(data), rows, cols))
	}
	out := &FP16Rows{Rows: rows, Cols: cols, Data: make([]uint16, rows*cols)}
	for i, v := range data {
		out.Data[i] = f32to16sat(v)
	}
	return out
}

// FP16FromParts reconstructs an FP16Rows table from serialized components,
// validating shape consistency.
func FP16FromParts(rows, cols int, data []uint16) (*FP16Rows, error) {
	if rows < 0 || cols < 0 {
		return nil, fmt.Errorf("quant: invalid shape %dx%d", rows, cols)
	}
	if len(data) != rows*cols {
		return nil, fmt.Errorf("quant: %d fp16 values do not match %dx%d", len(data), rows, cols)
	}
	return &FP16Rows{Rows: rows, Cols: cols, Data: data}, nil
}

// NewFP16Rows allocates a zeroed table — migration staging storage.
func NewFP16Rows(rows, cols int) *FP16Rows {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("quant: invalid table shape %dx%d", rows, cols))
	}
	return &FP16Rows{Rows: rows, Cols: cols, Data: make([]uint16, rows*cols)}
}

// DequantizeRowInto decodes row r into dst, which must have length Cols.
func (f *FP16Rows) DequantizeRowInto(dst []float32, r int) {
	if len(dst) != f.Cols {
		panic(fmt.Sprintf("quant: dst length %d != cols %d", len(dst), f.Cols))
	}
	src := f.Data[r*f.Cols : (r+1)*f.Cols]
	for c, h := range src {
		dst[c] = f16to32(h)
	}
}

// AccumulateRow adds row r (decoded on the fly) into acc.
func (f *FP16Rows) AccumulateRow(acc []float32, r int) {
	src := f.Data[r*f.Cols : (r+1)*f.Cols]
	for c, h := range src {
		acc[c] += f16to32(h)
	}
}

// Bytes returns the storage footprint.
func (f *FP16Rows) Bytes() int64 { return int64(len(f.Data)) * 2 }

// RowRangeStride returns the wire bytes per row when streaming row ranges.
func (f *FP16Rows) RowRangeStride() int { return 2 * f.Cols }

// AppendRowRange appends rows [lo, hi) in the wire layout (little-endian
// binary16 per value) — the migration protocol's encoded row stream.
func (f *FP16Rows) AppendRowRange(dst []byte, lo, hi int) []byte {
	if lo < 0 || hi > f.Rows || lo > hi {
		panic(fmt.Sprintf("quant: row range [%d, %d) of %d", lo, hi, f.Rows))
	}
	off := len(dst)
	dst = append(dst, make([]byte, (hi-lo)*f.RowRangeStride())...)
	for i, h := range f.Data[lo*f.Cols : hi*f.Cols] {
		binary.LittleEndian.PutUint16(dst[off+2*i:], h)
	}
	return dst
}

// SetRowRange writes raw wire-layout rows starting at row lo and returns
// how many rows it decoded.
func (f *FP16Rows) SetRowRange(lo int, raw []byte) (int, error) {
	stride := f.RowRangeStride()
	if len(raw)%stride != 0 {
		return 0, fmt.Errorf("quant: %d raw bytes not a multiple of row stride %d", len(raw), stride)
	}
	rows := len(raw) / stride
	if lo < 0 || lo+rows > f.Rows {
		return 0, fmt.Errorf("quant: row range [%d, %d) of %d", lo, lo+rows, f.Rows)
	}
	for i := range rows * f.Cols {
		f.Data[lo*f.Cols+i] = binary.LittleEndian.Uint16(raw[2*i:])
	}
	return rows, nil
}

// MaxErrorFP16 bounds the absolute reconstruction error of encoding a
// finite value of magnitude ≤ maxAbs: half a ulp at that magnitude for
// normal-range values, the subnormal half-step floor below, and the
// saturation gap above the finite range.
func MaxErrorFP16(maxAbs float32) float32 {
	if maxAbs > fp16MaxFinite {
		return maxAbs - fp16MaxFinite + fp16MaxFinite/2048
	}
	err := maxAbs / 2048 // 2^-11 relative
	if floor := float32(1.0 / (1 << 25)); err < floor {
		err = floor
	}
	return err
}
