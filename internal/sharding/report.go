package sharding

import (
	"fmt"
	"strings"

	"repro/internal/model"
)

// Report renders a Table II-style summary for a set of plans: per shard,
// the capacity, table count, and estimated pooling factor under each
// configuration. pooling maps table ID to estimated lookups per request
// (from workload sampling).
func Report(cfg *model.Config, plans []*Plan, pooling map[int]float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Sharding results for %s (capacity MiB / tables / est. pooling per request)\n", cfg.Name)
	for _, p := range plans {
		if !p.IsDistributed() {
			fmt.Fprintf(&b, "%-22s entire model on one server\n", p.Name())
			continue
		}
		fmt.Fprintf(&b, "%-22s", p.Name())
		for i := range p.Shards {
			a := &p.Shards[i]
			mib := float64(ShardCapacityBytes(cfg, a)) / (1 << 20)
			fmt.Fprintf(&b, " [%d]: %.2f/%d/%.1f", a.Shard, mib, ShardTableCount(a), ShardPooling(a, pooling))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// BalanceStats summarizes a plan's spread: max/min ratios of capacity and
// pooling across shards, the quantities Section V-A quotes ("per-shard
// capacities varied up to 50%", "per-shard estimated load varied up to
// 371%").
type BalanceStats struct {
	CapacitySpread float64 // max/min shard capacity
	PoolingSpread  float64 // max/min shard pooling
}

// Balance computes spread statistics for a distributed plan.
func Balance(cfg *model.Config, p *Plan, pooling map[int]float64) BalanceStats {
	var st BalanceStats
	if !p.IsDistributed() {
		return st
	}
	minC, maxC := int64(1)<<62, int64(0)
	minP, maxP := 1e18, 0.0
	for i := range p.Shards {
		c := ShardCapacityBytes(cfg, &p.Shards[i])
		if c < minC {
			minC = c
		}
		if c > maxC {
			maxC = c
		}
		pl := ShardPooling(&p.Shards[i], pooling)
		if pl < minP {
			minP = pl
		}
		if pl > maxP {
			maxP = pl
		}
	}
	if minC > 0 {
		st.CapacitySpread = float64(maxC) / float64(minC)
	}
	if minP > 0 {
		st.PoolingSpread = maxP / minP
	}
	return st
}
