package sharding

import (
	"strings"
	"testing"
	"time"

	"repro/internal/model"
	"repro/internal/workload"
)

func autoInputs(t *testing.T) (model.Config, map[int]float64) {
	t.Helper()
	cfg := model.DRM1()
	pooling := workload.EstimatePooling(workload.NewGenerator(cfg, 991), 150)
	return cfg, pooling
}

func TestAutoShardRanksCandidates(t *testing.T) {
	cfg, pooling := autoInputs(t)
	cs, err := AutoShard(&cfg, pooling, DefaultCostModel(), Constraints{MaxShards: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(cs) < 10 {
		t.Fatalf("only %d candidates", len(cs))
	}
	// Sorted by score among feasible.
	for i := 1; i < len(cs); i++ {
		if cs[i-1].Feasible == cs[i].Feasible && cs[i-1].Score > cs[i].Score {
			t.Fatalf("candidates not sorted at %d", i)
		}
	}
	// Every candidate's plan must validate.
	for _, c := range cs {
		if err := c.Plan.Validate(&cfg); err != nil {
			t.Errorf("%s: %v", c.Plan.Name(), err)
		}
	}
	// With no compute weight, higher shard counts should win (less
	// bounding pooling): the best plan should not be 1-shard.
	if cs[0].Plan.NumShards == 1 {
		t.Errorf("latency-only objective picked 1-shard: %s", cs[0].Plan.Name())
	}
}

func TestAutoShardComputeWeightFavorsNSBP(t *testing.T) {
	cfg, pooling := autoInputs(t)
	// Heavy compute weight: the advisor should prefer plans issuing fewer
	// RPCs per request — NSBP's defining property.
	cs, err := AutoShard(&cfg, pooling, DefaultCostModel(), Constraints{MaxShards: 8, ComputeWeight: 50})
	if err != nil {
		t.Fatal(err)
	}
	best := cs[0]
	if best.Plan.Strategy != StrategyNSBP && best.Plan.NumShards > 2 {
		t.Errorf("compute-weighted objective picked %s (compute %v)", best.Plan.Name(), best.EstComputeOverhead)
	}
	// And the chosen plan's compute estimate must be at or below the same
	// shard count's load-balanced plan.
	for _, c := range cs {
		if c.Plan.Strategy == StrategyLoad && c.Plan.NumShards == best.Plan.NumShards {
			if best.EstComputeOverhead > c.EstComputeOverhead {
				t.Errorf("winner has higher compute than load-bal at same count")
			}
		}
	}
}

func TestAutoShardCapacityConstraint(t *testing.T) {
	cfg, pooling := autoInputs(t)
	// Cap below the 2-shard size: small shard counts become infeasible.
	total := cfg.SparseBytes()
	cs, err := AutoShard(&cfg, pooling, DefaultCostModel(), Constraints{
		MaxShards: 8, MaxShardBytes: total / 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cs {
		if c.Plan.NumShards <= 2 && c.Feasible {
			t.Errorf("%s should be memory-infeasible", c.Plan.Name())
		}
		if !c.Feasible && c.Reason == "" {
			t.Errorf("%s infeasible without reason", c.Plan.Name())
		}
	}
	if !cs[0].Feasible {
		t.Error("best candidate should be feasible when any is")
	}
}

func TestAutoShardLatencyBudget(t *testing.T) {
	cfg, pooling := autoInputs(t)
	cs, err := AutoShard(&cfg, pooling, DefaultCostModel(), Constraints{
		MaxShards: 4, LatencyBudget: time.Nanosecond, // nothing passes
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cs {
		if c.Feasible {
			t.Errorf("%s should violate a 1ns budget", c.Plan.Name())
		}
	}
}

func TestAutoShardDRM3PrefersFewShards(t *testing.T) {
	cfg := model.DRM3()
	pooling := workload.EstimatePooling(workload.NewGenerator(cfg, 991), 150)
	cs, err := AutoShard(&cfg, pooling, DefaultCostModel(), Constraints{MaxShards: 8, ComputeWeight: 1})
	if err != nil {
		t.Fatal(err)
	}
	// DRM3's pooling is tiny and dominated by one table: extra shards buy
	// nothing, so the advisor should not pick a high shard count.
	if best := cs[0]; best.Plan.NumShards > 4 {
		t.Errorf("DRM3 advisor picked %s; extra shards buy nothing", best.Plan.Name())
	}
}

// TestAutoShardScoresDeterministic pins the advisor's float arithmetic
// to shard order: the per-net pooling sum must not vary with map
// iteration, so repeated runs over identical inputs score (and rank)
// identically.
func TestAutoShardScoresDeterministic(t *testing.T) {
	cfg, pooling := autoInputs(t)
	base, err := AutoShard(&cfg, pooling, DefaultCostModel(), Constraints{MaxShards: 6})
	if err != nil {
		t.Fatal(err)
	}
	for run := 0; run < 8; run++ {
		cs, err := AutoShard(&cfg, pooling, DefaultCostModel(), Constraints{MaxShards: 6})
		if err != nil {
			t.Fatal(err)
		}
		if len(cs) != len(base) {
			t.Fatalf("run %d: %d candidates vs %d", run, len(cs), len(base))
		}
		for i := range cs {
			if cs[i].Plan.Name() != base[i].Plan.Name() || cs[i].Score != base[i].Score {
				t.Fatalf("run %d: candidate %d is %s score %v, first run had %s score %v",
					run, i, cs[i].Plan.Name(), cs[i].Score, base[i].Plan.Name(), base[i].Score)
			}
		}
	}
}

func TestRenderCandidates(t *testing.T) {
	cfg, pooling := autoInputs(t)
	cs, err := AutoShard(&cfg, pooling, DefaultCostModel(), Constraints{MaxShards: 2})
	if err != nil {
		t.Fatal(err)
	}
	out := RenderCandidates(cs, 3)
	if !strings.Contains(out, "est. +latency") || !strings.Contains(out, "shard") {
		t.Errorf("render missing columns:\n%s", out)
	}
	if lines := strings.Count(out, "\n"); lines != 4 { // header + 3
		t.Errorf("limit not honored: %d lines", lines)
	}
}
