package sharding

import (
	"fmt"
	"sort"

	"repro/internal/model"
)

// Online resharding, planning side: given the plan currently serving and
// a measured LoadSummary, compute the *incremental* migration — the
// smallest set of table moves, bounded by a move budget, that walks the
// current placement toward load balance. The paper computes plans
// offline from priors; in production the hot-row distribution drifts, so
// a static plan degrades exactly the P99 tail the serving frontend
// protects. The rebalancer never rebuilds the plan from scratch: row
// moves cost bandwidth and cutover care, so it emits the few moves that
// pay for themselves.

// Move relocates one placement unit (a whole table, or one
// row-partition) from one shard to another.
type Move struct {
	TableID   int
	PartIndex int
	// NumParts is 1 for whole tables, matching PartRef otherwise.
	NumParts int
	// From and To are 1-based shard numbers.
	From, To int
	// Weight is the measured load the move relocates (LoadSummary.Weight
	// units: service seconds, or lookups when timing is absent).
	Weight float64
}

// String renders one move for logs.
func (m Move) String() string {
	unit := fmt.Sprintf("table %d", m.TableID)
	if m.NumParts > 1 {
		unit = fmt.Sprintf("table %d part %d/%d", m.TableID, m.PartIndex, m.NumParts)
	}
	return fmt.Sprintf("%s: shard %d -> shard %d (load %.3g)", unit, m.From, m.To, m.Weight)
}

// MigrationPlan is the rebalancer's output: the ordered moves plus the
// target plan that results from applying them to Current.
type MigrationPlan struct {
	Current *Plan
	Target  *Plan
	Moves   []Move
	// MaxLoadBefore/MaxLoadAfter are the bounding shard's load before and
	// after the moves (Weight units), the quantity the migration buys down.
	MaxLoadBefore, MaxLoadAfter float64
}

// RebalanceOptions bound the migration.
type RebalanceOptions struct {
	// MoveBudget caps how many placement units may move. 0 means move
	// nothing: the plan is always a no-op (the knob's off position, not a
	// default — callers wanting "unbounded" pass a large budget).
	MoveBudget int
	// MinGain is the minimum relative reduction of the bounding shard's
	// load a single move must deliver to be worth its bandwidth
	// (default 1%). Guards against churn on an already-balanced plan.
	MinGain float64
}

// Rebalance plans an incremental migration from cur toward load balance
// under the measured summary. It is deterministic for a fixed (cfg, cur,
// load, opts): all iteration is in sorted unit order. Plans without at
// least two shards have nowhere to move load and yield an empty plan.
func Rebalance(cfg *model.Config, cur *Plan, load *LoadSummary, opts RebalanceOptions) (*MigrationPlan, error) {
	if err := cur.Validate(cfg); err != nil {
		return nil, fmt.Errorf("sharding: rebalance of invalid plan: %w", err)
	}
	if opts.MinGain <= 0 {
		opts.MinGain = 0.01
	}
	mp := &MigrationPlan{Current: cur, Target: cur}
	if cur.NumShards < 2 || load == nil {
		return mp, nil
	}

	// Working state: per-shard unit lists and loads.
	type unit struct {
		key    TableLoadKey
		parts  int
		weight float64
	}
	units := make([][]unit, cur.NumShards) // 0-based shard index
	loads := make([]float64, cur.NumShards)
	for i := range cur.Shards {
		a := &cur.Shards[i]
		for _, id := range a.Tables {
			u := unit{key: TableLoadKey{TableID: id}, parts: 1, weight: load.Weight(TableLoadKey{TableID: id})}
			units[i] = append(units[i], u)
			loads[i] += u.weight
		}
		for _, pr := range a.Parts {
			k := TableLoadKey{TableID: pr.TableID, PartIndex: pr.PartIndex}
			u := unit{key: k, parts: pr.NumParts, weight: load.Weight(k)}
			units[i] = append(units[i], u)
			loads[i] += u.weight
		}
		sort.Slice(units[i], func(a, b int) bool {
			if units[i][a].key.TableID != units[i][b].key.TableID {
				return units[i][a].key.TableID < units[i][b].key.TableID
			}
			return units[i][a].key.PartIndex < units[i][b].key.PartIndex
		})
	}
	argMax := func() int {
		best := 0
		for s := 1; s < len(loads); s++ {
			if loads[s] > loads[best] {
				best = s
			}
		}
		return best
	}
	argMin := func() int {
		best := 0
		for s := 1; s < len(loads); s++ {
			if loads[s] < loads[best] {
				best = s
			}
		}
		return best
	}

	mp.MaxLoadBefore = loads[argMax()]
	for len(mp.Moves) < opts.MoveBudget {
		hi, lo := argMax(), argMin()
		if hi == lo || len(units[hi]) < 2 {
			break // nothing to move, or the move would empty the shard
		}
		gap := loads[hi] - loads[lo]
		// The ideal move halves the gap; pick the unit closest to gap/2
		// among those that strictly reduce the pair's bounding load
		// (weight < gap). First-in-sorted-order wins ties, so the choice
		// is deterministic.
		best := -1
		for ui, u := range units[hi] {
			if u.weight <= 0 || u.weight >= gap {
				continue
			}
			if best < 0 || abs(u.weight-gap/2) < abs(units[hi][best].weight-gap/2) {
				best = ui
			}
		}
		if best < 0 {
			break
		}
		w := units[hi][best].weight
		// New bounding load of the pair after the move.
		newHi := loads[hi] - w
		if after := loads[lo] + w; after > newHi {
			newHi = after
		}
		if newHi >= loads[hi]*(1-opts.MinGain) {
			break // the move doesn't buy enough to be worth the bytes
		}
		u := units[hi][best]
		mp.Moves = append(mp.Moves, Move{
			TableID: u.key.TableID, PartIndex: u.key.PartIndex, NumParts: u.parts,
			From: hi + 1, To: lo + 1, Weight: w,
		})
		units[hi] = append(units[hi][:best:best], units[hi][best+1:]...)
		units[lo] = append(units[lo], u)
		loads[hi] -= w
		loads[lo] += w
	}
	mp.MaxLoadAfter = loads[argMax()]

	if len(mp.Moves) > 0 {
		target, err := ApplyMoves(cfg, cur, mp.Moves)
		if err != nil {
			return nil, err
		}
		mp.Target = target
	}
	return mp, nil
}

// ApplyMoves materializes the target plan a move list produces. The
// target's strategy is re-labeled load-balanced: whatever strategy built
// the original placement, the result is now shaped by measured load (and
// NSBP's no-net-mixing invariant may no longer hold after moves).
func ApplyMoves(cfg *model.Config, cur *Plan, moves []Move) (*Plan, error) {
	target := &Plan{
		ModelName: cur.ModelName,
		Strategy:  cur.Strategy,
		NumShards: cur.NumShards,
		Shards:    make([]Assignment, len(cur.Shards)),
	}
	if len(moves) > 0 && cur.Strategy == StrategyNSBP {
		target.Strategy = StrategyLoad
	}
	for i, a := range cur.Shards {
		target.Shards[i] = Assignment{
			Shard:  a.Shard,
			Tables: append([]int(nil), a.Tables...),
			Parts:  append([]PartRef(nil), a.Parts...),
		}
	}
	for _, mv := range moves {
		from, to := &target.Shards[mv.From-1], &target.Shards[mv.To-1]
		if mv.NumParts <= 1 {
			idx := -1
			for i, id := range from.Tables {
				if id == mv.TableID {
					idx = i
					break
				}
			}
			if idx < 0 {
				return nil, fmt.Errorf("sharding: move %v: table not on source shard", mv)
			}
			from.Tables = append(from.Tables[:idx], from.Tables[idx+1:]...)
			to.Tables = append(to.Tables, mv.TableID)
		} else {
			idx := -1
			for i, pr := range from.Parts {
				if pr.TableID == mv.TableID && pr.PartIndex == mv.PartIndex {
					idx = i
					break
				}
			}
			if idx < 0 {
				return nil, fmt.Errorf("sharding: move %v: part not on source shard", mv)
			}
			pr := from.Parts[idx]
			from.Parts = append(from.Parts[:idx], from.Parts[idx+1:]...)
			to.Parts = append(to.Parts, pr)
		}
	}
	// Keep membership order canonical so equal move sets yield byte-equal
	// plans regardless of move order.
	for i := range target.Shards {
		sort.Ints(target.Shards[i].Tables)
		sort.Slice(target.Shards[i].Parts, func(a, b int) bool {
			pa, pb := target.Shards[i].Parts[a], target.Shards[i].Parts[b]
			if pa.TableID != pb.TableID {
				return pa.TableID < pb.TableID
			}
			return pa.PartIndex < pb.PartIndex
		})
	}
	if err := target.Validate(cfg); err != nil {
		return nil, fmt.Errorf("sharding: migration target invalid: %w", err)
	}
	return target, nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
