package sharding

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/model"
)

// rebalanceFixture builds a 4-table, 2-shard plan with a lopsided
// measured load: tables 0,1 on shard 1 carry nearly all the heat.
func rebalanceFixture(t *testing.T) (model.Config, *Plan, *LoadSummary) {
	t.Helper()
	cfg := model.Config{Name: "toy", Nets: []model.NetSpec{{Name: "net1", DenseDim: 4}}}
	for i := 0; i < 4; i++ {
		cfg.Tables = append(cfg.Tables, model.TableSpec{
			ID: i, Name: "t", Net: "net1", Rows: 16, Dim: 4, PoolingFactor: 1,
		})
	}
	plan := &Plan{
		ModelName: "toy", Strategy: StrategyLoad, NumShards: 2,
		Shards: []Assignment{
			{Shard: 1, Tables: []int{0, 1}},
			{Shard: 2, Tables: []int{2, 3}},
		},
	}
	if err := plan.Validate(&cfg); err != nil {
		t.Fatal(err)
	}
	load := NewLoadSummary()
	load.Add(TableLoadKey{TableID: 0}, TableLoad{Lookups: 1000, ServiceTime: 10 * time.Millisecond, Calls: 10})
	load.Add(TableLoadKey{TableID: 1}, TableLoad{Lookups: 800, ServiceTime: 8 * time.Millisecond, Calls: 10})
	load.Add(TableLoadKey{TableID: 2}, TableLoad{Lookups: 100, ServiceTime: time.Millisecond, Calls: 10})
	load.Add(TableLoadKey{TableID: 3}, TableLoad{Lookups: 100, ServiceTime: time.Millisecond, Calls: 10})
	return cfg, plan, load
}

func TestRebalanceMovesHotTable(t *testing.T) {
	cfg, plan, load := rebalanceFixture(t)
	mp, err := Rebalance(&cfg, plan, load, RebalanceOptions{MoveBudget: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(mp.Moves) != 1 {
		t.Fatalf("moves = %v, want exactly 1", mp.Moves)
	}
	mv := mp.Moves[0]
	// Shard 1 holds 18ms, shard 2 holds 2ms; moving table 1 (8ms) lands
	// closest to halving the 16ms gap.
	if mv.TableID != 1 || mv.From != 1 || mv.To != 2 {
		t.Fatalf("move = %v, want table 1 shard 1 -> 2", mv)
	}
	if err := mp.Target.Validate(&cfg); err != nil {
		t.Fatal(err)
	}
	if mp.MaxLoadAfter >= mp.MaxLoadBefore {
		t.Fatalf("max load %v -> %v did not improve", mp.MaxLoadBefore, mp.MaxLoadAfter)
	}
}

func TestRebalanceMoveBudgetZeroIsNoOp(t *testing.T) {
	cfg, plan, load := rebalanceFixture(t)
	mp, err := Rebalance(&cfg, plan, load, RebalanceOptions{MoveBudget: 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(mp.Moves) != 0 {
		t.Fatalf("budget 0 produced moves: %v", mp.Moves)
	}
	if mp.Target != plan {
		t.Fatal("budget 0 must leave the target aliased to the current plan")
	}
	if mp.MaxLoadAfter != mp.MaxLoadBefore {
		t.Fatalf("no-op changed max load %v -> %v", mp.MaxLoadBefore, mp.MaxLoadAfter)
	}
}

func TestRebalanceDeterministic(t *testing.T) {
	cfg, plan, load := rebalanceFixture(t)
	first, err := Rebalance(&cfg, plan, load, RebalanceOptions{MoveBudget: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		again, err := Rebalance(&cfg, plan, load.Clone(), RebalanceOptions{MoveBudget: 8})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(first.Moves, again.Moves) {
			t.Fatalf("run %d moves %v != %v", i, again.Moves, first.Moves)
		}
		if !reflect.DeepEqual(first.Target, again.Target) {
			t.Fatalf("run %d target differs", i)
		}
	}
}

func TestRebalanceBalancedPlanIsStable(t *testing.T) {
	cfg, plan, _ := rebalanceFixture(t)
	load := NewLoadSummary()
	for i := 0; i < 4; i++ {
		load.Add(TableLoadKey{TableID: i}, TableLoad{Lookups: 500, ServiceTime: 5 * time.Millisecond})
	}
	mp, err := Rebalance(&cfg, plan, load, RebalanceOptions{MoveBudget: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(mp.Moves) != 0 {
		t.Fatalf("balanced load still produced moves: %v", mp.Moves)
	}
}

func TestRebalanceNeverEmptiesShard(t *testing.T) {
	cfg, plan, _ := rebalanceFixture(t)
	// All heat on shard 2's two tables; a naive balancer would strip
	// shard 2 bare, but plans forbid empty shards.
	load := NewLoadSummary()
	load.Add(TableLoadKey{TableID: 2}, TableLoad{ServiceTime: 50 * time.Millisecond})
	load.Add(TableLoadKey{TableID: 3}, TableLoad{ServiceTime: 40 * time.Millisecond})
	mp, err := Rebalance(&cfg, plan, load, RebalanceOptions{MoveBudget: 8})
	if err != nil {
		t.Fatal(err)
	}
	if err := mp.Target.Validate(&cfg); err != nil {
		t.Fatal(err)
	}
	for _, a := range mp.Target.Shards {
		if ShardTableCount(&a) == 0 {
			t.Fatalf("rebalance emptied shard %d", a.Shard)
		}
	}
}

func TestRebalancePartsMoveAsUnits(t *testing.T) {
	cfg := model.Config{Name: "toy", Nets: []model.NetSpec{{Name: "net1", DenseDim: 4}}}
	for i := 0; i < 3; i++ {
		cfg.Tables = append(cfg.Tables, model.TableSpec{
			ID: i, Name: "t", Net: "net1", Rows: 16, Dim: 4, PoolingFactor: 1,
		})
	}
	plan := &Plan{
		ModelName: "toy", Strategy: StrategyLoad, NumShards: 2,
		Shards: []Assignment{
			{Shard: 1, Tables: []int{1}, Parts: []PartRef{{TableID: 0, PartIndex: 0, NumParts: 2}}},
			{Shard: 2, Tables: []int{2}, Parts: []PartRef{{TableID: 0, PartIndex: 1, NumParts: 2}}},
		},
	}
	if err := plan.Validate(&cfg); err != nil {
		t.Fatal(err)
	}
	load := NewLoadSummary()
	load.Add(TableLoadKey{TableID: 0, PartIndex: 0}, TableLoad{ServiceTime: 9 * time.Millisecond})
	load.Add(TableLoadKey{TableID: 1}, TableLoad{ServiceTime: 9 * time.Millisecond})
	load.Add(TableLoadKey{TableID: 0, PartIndex: 1}, TableLoad{ServiceTime: time.Millisecond})
	load.Add(TableLoadKey{TableID: 2}, TableLoad{ServiceTime: time.Millisecond})
	mp, err := Rebalance(&cfg, plan, load, RebalanceOptions{MoveBudget: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(mp.Moves) != 1 {
		t.Fatalf("moves = %v", mp.Moves)
	}
	if err := mp.Target.Validate(&cfg); err != nil {
		t.Fatal(err)
	}
	mv := mp.Moves[0]
	if mv.NumParts == 2 && mv.TableID != 0 {
		t.Fatalf("part move references table %d", mv.TableID)
	}
}

func TestLoadSummaryMergeAndCodecRoundTrip(t *testing.T) {
	a := NewLoadSummary()
	a.Add(TableLoadKey{TableID: 1}, TableLoad{Lookups: 5, ServiceTime: time.Millisecond, Calls: 1})
	b := NewLoadSummary()
	b.Add(TableLoadKey{TableID: 1}, TableLoad{Lookups: 7, ServiceTime: 2 * time.Millisecond, Calls: 2})
	b.Add(TableLoadKey{TableID: 2, PartIndex: 1}, TableLoad{Lookups: 3, Calls: 1})
	a.Merge(b)
	got := a.Tables[TableLoadKey{TableID: 1}]
	if got.Lookups != 12 || got.ServiceTime != 3*time.Millisecond || got.Calls != 3 {
		t.Fatalf("merged = %+v", got)
	}
	if a.TotalLookups() != 15 {
		t.Fatalf("total lookups = %d", a.TotalLookups())
	}
	if len(a.Keys()) != 2 {
		t.Fatalf("keys = %v", a.Keys())
	}
}
