package sharding

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/model"
)

// Auto-sharding — the workflow the paper's conclusion calls for: "Future
// work is needed to automate model sharding to target data-center
// resource efficiency and per-model SLA and QPS requirements." The
// advisor enumerates the candidate configurations (each strategy at each
// shard count that fits memory), scores each against a cost model
// calibrated from profiling data (the paper: "an automatic sharding
// methodology is feasible, but requires sufficient profiling data"), and
// returns the ranked plans.

// CostModel holds the profiling-derived constants the advisor scores
// plans with.
type CostModel struct {
	// RPCLatency is the expected outstanding time of one remote call
	// excluding pooling work (network + serde + service floor).
	RPCLatency time.Duration
	// PerLookup is the pooling cost of one embedding lookup.
	PerLookup time.Duration
	// RPCCompute is the CPU consumed per remote call across both ends
	// (issue serialization, service boilerplate, response handling).
	RPCCompute time.Duration
	// BatchesPerRequest is the mean parallel batches one request spawns
	// (each batch issues its own RPC ops, Section VI-F).
	BatchesPerRequest float64
}

// DefaultCostModel returns constants calibrated on this reproduction's
// measured traces (see EXPERIMENTS.md); replace with fresh profiling
// numbers when the serving substrate changes.
func DefaultCostModel() CostModel {
	return CostModel{
		RPCLatency:        900 * time.Microsecond,
		PerLookup:         60 * time.Nanosecond,
		RPCCompute:        45 * time.Microsecond,
		BatchesPerRequest: 2.3,
	}
}

// Constraints bound the feasible configurations.
type Constraints struct {
	// MaxShardBytes is the sparse-shard memory capacity; plans with any
	// shard above it are infeasible. Zero disables the check.
	MaxShardBytes int64
	// LatencyBudget is the additional E2E latency the SLA tolerates over
	// singular; plans estimated above it are infeasible. Zero disables.
	LatencyBudget time.Duration
	// MaxShards caps the sweep (default 8).
	MaxShards int
	// ComputeWeight trades estimated compute overhead against latency
	// overhead in the score: score = latency + ComputeWeight×compute
	// (both in seconds). Zero means latency-only.
	ComputeWeight float64
}

// Candidate is one scored configuration.
type Candidate struct {
	Plan *Plan
	// EstLatencyOverhead is the added E2E latency vs singular the cost
	// model predicts (sum over sequential nets of the bounding call).
	EstLatencyOverhead time.Duration
	// EstComputeOverhead is the added CPU per request.
	EstComputeOverhead time.Duration
	// Score is the scalarized objective (lower is better).
	Score float64
	// Feasible reports whether the candidate met all constraints.
	Feasible bool
	// Reason explains infeasibility.
	Reason string
}

// AutoShard enumerates and scores configurations for a model, returning
// candidates sorted best-first (feasible before infeasible, then by
// score). pooling maps table ID to estimated lookups per request.
func AutoShard(cfg *model.Config, pooling map[int]float64, cm CostModel, cons Constraints) ([]Candidate, error) {
	if cons.MaxShards <= 0 {
		cons.MaxShards = 8
	}
	if cm.BatchesPerRequest <= 0 {
		cm.BatchesPerRequest = 1
	}
	var out []Candidate
	for n := 1; n <= cons.MaxShards; n++ {
		for _, strategy := range []string{StrategyCapacity, StrategyLoad, StrategyNSBP} {
			plan, err := buildCandidate(cfg, strategy, n, pooling)
			if err != nil {
				continue // strategy infeasible at this count (e.g. NSBP with n < nets)
			}
			c := score(cfg, plan, pooling, cm, cons)
			out = append(out, c)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("sharding: no feasible candidates for %s", cfg.Name)
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Feasible != out[j].Feasible {
			return out[i].Feasible
		}
		return out[i].Score < out[j].Score
	})
	return out, nil
}

func buildCandidate(cfg *model.Config, strategy string, n int, pooling map[int]float64) (*Plan, error) {
	switch strategy {
	case StrategyCapacity:
		if n == 1 {
			return OneShard(cfg), nil
		}
		return CapacityBalanced(cfg, n)
	case StrategyLoad:
		if n == 1 {
			return nil, fmt.Errorf("sharding: 1-shard covered by capacity strategy")
		}
		return LoadBalanced(cfg, n, pooling)
	case StrategyNSBP:
		if n < len(cfg.Nets) {
			return nil, fmt.Errorf("sharding: NSBP needs ≥ %d shards", len(cfg.Nets))
		}
		return NSBP(cfg, n)
	}
	return nil, fmt.Errorf("sharding: unknown strategy %q", strategy)
}

// score estimates a plan's latency and compute overheads with the cost
// model:
//
//   - latency: for each net (sequential), the bounding shard's call is
//     RPCLatency + its pooling share × PerLookup; singular in-line pooling
//     is credited back.
//   - compute: RPCCompute × calls per request, where calls = batches ×
//     Σ_nets (shards holding that net's tables).
func score(cfg *model.Config, plan *Plan, pooling map[int]float64, cm CostModel, cons Constraints) Candidate {
	c := Candidate{Plan: plan, Feasible: true}
	var maxShardBytes int64
	totalCalls := 0.0
	var latency float64

	perNetShardPooling := make(map[string]map[int]float64)
	for i := range plan.Shards {
		a := &plan.Shards[i]
		if b := ShardCapacityBytes(cfg, a); b > maxShardBytes {
			maxShardBytes = b
		}
		for _, net := range ShardNets(cfg, a) {
			if perNetShardPooling[net] == nil {
				perNetShardPooling[net] = make(map[int]float64)
			}
			perNetShardPooling[net][a.Shard] += shardNetPooling(cfg, a, net, pooling)
		}
	}
	for _, ns := range cfg.Nets {
		shards := perNetShardPooling[ns.Name]
		if len(shards) == 0 {
			continue
		}
		totalCalls += float64(len(shards)) * cm.BatchesPerRequest
		// The bounding shard dominates the net's embedded wait; in-line
		// pooling of the same lookups is what singular would have paid.
		// Sum in shard order: candidate scores are compared against each
		// other, so the float accumulation must not vary with map order.
		ids := make([]int, 0, len(shards))
		for id := range shards {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		var bounding, total float64
		for _, id := range ids {
			p := shards[id]
			total += p
			if p > bounding {
				bounding = p
			}
		}
		remote := cm.RPCLatency.Seconds() + bounding/cm.BatchesPerRequest*cm.PerLookup.Seconds()
		local := total / cm.BatchesPerRequest * cm.PerLookup.Seconds()
		if d := remote - local; d > 0 {
			latency += d
		}
	}
	c.EstLatencyOverhead = time.Duration(latency * float64(time.Second))
	c.EstComputeOverhead = time.Duration(totalCalls * cm.RPCCompute.Seconds() * float64(time.Second))
	c.Score = c.EstLatencyOverhead.Seconds() + cons.ComputeWeight*c.EstComputeOverhead.Seconds()

	if cons.MaxShardBytes > 0 && maxShardBytes > cons.MaxShardBytes {
		c.Feasible = false
		c.Reason = fmt.Sprintf("shard of %d bytes exceeds capacity %d", maxShardBytes, cons.MaxShardBytes)
	}
	if cons.LatencyBudget > 0 && c.EstLatencyOverhead > cons.LatencyBudget {
		c.Feasible = false
		if c.Reason != "" {
			c.Reason += "; "
		}
		c.Reason += fmt.Sprintf("estimated overhead %v exceeds budget %v", c.EstLatencyOverhead, cons.LatencyBudget)
	}
	return c
}

// shardNetPooling sums the shard's pooling attributable to one net.
func shardNetPooling(cfg *model.Config, a *Assignment, net string, pooling map[int]float64) float64 {
	var p float64
	for _, id := range a.Tables {
		if cfg.Tables[id].Net == net {
			p += pooling[id]
		}
	}
	for _, pr := range a.Parts {
		if cfg.Tables[pr.TableID].Net == net {
			p += pooling[pr.TableID] / float64(pr.NumParts)
		}
	}
	return p
}

// RenderCandidates prints the ranked candidates.
func RenderCandidates(cs []Candidate, limit int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-22s %14s %14s %10s %s\n", "plan", "est. +latency", "est. +compute", "score", "status")
	for i, c := range cs {
		if limit > 0 && i >= limit {
			break
		}
		status := "ok"
		if !c.Feasible {
			status = "infeasible: " + c.Reason
		}
		fmt.Fprintf(&b, "%-22s %14v %14v %10.5f %s\n",
			c.Plan.Name(), c.EstLatencyOverhead.Round(time.Microsecond),
			c.EstComputeOverhead.Round(time.Microsecond), c.Score, status)
	}
	return b.String()
}
