package sharding

import (
	"fmt"
	"sort"

	"repro/internal/model"
)

// Singular returns the non-distributed configuration: the whole model on
// one server, no sparse shards (Table I's baseline).
func Singular(cfg *model.Config) *Plan {
	return &Plan{ModelName: cfg.Name, Strategy: StrategySingular}
}

// OneShard places every table on a single sparse shard — the paper's
// "impractical worst-case, where all embedding tables are placed on one
// shard and no work is parallelized".
func OneShard(cfg *model.Config) *Plan {
	a := Assignment{Shard: 1}
	for _, t := range cfg.Tables {
		a.Tables = append(a.Tables, t.ID)
	}
	return &Plan{ModelName: cfg.Name, Strategy: StrategyOneShard, NumShards: 1, Shards: []Assignment{a}}
}

// lptPack assigns whole tables to n shards greedily: tables sorted by
// descending weight, each placed on the currently lightest shard (the
// classic longest-processing-time heuristic). Ties break on shard index
// so plans are deterministic.
func lptPack(cfg *model.Config, n int, weight func(model.TableSpec) float64) []Assignment {
	type item struct {
		id int
		w  float64
	}
	items := make([]item, len(cfg.Tables))
	for i, t := range cfg.Tables {
		items[i] = item{id: t.ID, w: weight(t)}
	}
	sort.Slice(items, func(i, j int) bool {
		if items[i].w != items[j].w {
			return items[i].w > items[j].w
		}
		return items[i].id < items[j].id
	})
	shards := make([]Assignment, n)
	load := make([]float64, n)
	for i := range shards {
		shards[i].Shard = i + 1
	}
	for _, it := range items {
		best := 0
		for s := 1; s < n; s++ {
			if load[s] < load[best] {
				best = s
			}
		}
		shards[best].Tables = append(shards[best].Tables, it.id)
		load[best] += it.w
	}
	// Zero-weight tables can leave shards empty (all ties resolve to shard
	// 0); empty shards are invalid, so steal from the most-populated one.
	for i := range shards {
		for len(shards[i].Tables) == 0 {
			donor := -1
			for j := range shards {
				if donor < 0 || len(shards[j].Tables) > len(shards[donor].Tables) {
					donor = j
				}
			}
			if len(shards[donor].Tables) < 2 {
				break // nothing to steal; Validate will reject
			}
			last := len(shards[donor].Tables) - 1
			shards[i].Tables = append(shards[i].Tables, shards[donor].Tables[last])
			shards[donor].Tables = shards[donor].Tables[:last]
		}
	}
	return shards
}

// CapacityBalanced spreads tables so every shard holds a similar number
// of bytes (Section III-B1), without splitting tables.
func CapacityBalanced(cfg *model.Config, n int) (*Plan, error) {
	if n < 1 {
		return nil, fmt.Errorf("sharding: shard count %d < 1", n)
	}
	if n > len(cfg.Tables) {
		return nil, fmt.Errorf("sharding: %d shards exceed %d tables", n, len(cfg.Tables))
	}
	p := &Plan{
		ModelName: cfg.Name, Strategy: StrategyCapacity, NumShards: n,
		Shards: lptPack(cfg, n, func(t model.TableSpec) float64 { return float64(t.Bytes()) }),
	}
	return p, p.Validate(cfg)
}

// LoadBalanced spreads tables so every shard performs similar pooling
// work, using measured per-table pooling estimates (Section III-B2). A
// nil estimate map falls back to the config's specified pooling factors.
func LoadBalanced(cfg *model.Config, n int, pooling map[int]float64) (*Plan, error) {
	if n < 1 {
		return nil, fmt.Errorf("sharding: shard count %d < 1", n)
	}
	if n > len(cfg.Tables) {
		return nil, fmt.Errorf("sharding: %d shards exceed %d tables", n, len(cfg.Tables))
	}
	weight := func(t model.TableSpec) float64 {
		if pooling != nil {
			return pooling[t.ID]
		}
		return t.PoolingFactor
	}
	p := &Plan{
		ModelName: cfg.Name, Strategy: StrategyLoad, NumShards: n,
		Shards: lptPack(cfg, n, weight),
	}
	return p, p.Validate(cfg)
}

// NSBP implements net-specific bin-packing (Section III-B3): tables are
// grouped by net and packed first-fit-decreasing into bins subject to a
// per-bin size limit; a table larger than the limit is row-partitioned
// into ⌈bytes/limit⌉ dedicated bins. The limit is binary-searched so the
// plan lands on exactly n shards where achievable.
func NSBP(cfg *model.Config, n int) (*Plan, error) {
	if n < 1 {
		return nil, fmt.Errorf("sharding: shard count %d < 1", n)
	}
	nets := netNames(cfg)
	if n < len(nets) {
		return nil, fmt.Errorf("sharding: NSBP needs at least %d shards (one per net)", len(nets))
	}
	var total int64
	maxTable := int64(0)
	for _, t := range cfg.Tables {
		total += t.Bytes()
		if t.Bytes() > maxTable {
			maxTable = t.Bytes()
		}
	}
	// Binary search the smallest limit whose packing uses ≤ n bins. bins()
	// is non-increasing in the limit, so the search is well-founded.
	lo, hi := int64(1), total
	for lo < hi {
		mid := (lo + hi) / 2
		if nsbpBins(cfg, nets, mid) <= n {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	shards := nsbpPack(cfg, nets, lo)
	// The packing may land under n (bin counts jump in steps); split the
	// largest multi-table bins until the count is met.
	for len(shards) < n {
		if !splitLargestBin(cfg, &shards) {
			return nil, fmt.Errorf("sharding: NSBP cannot reach %d shards for %s", n, cfg.Name)
		}
	}
	sort.Slice(shards, func(i, j int) bool { return shardSortKey(cfg, shards[i]) < shardSortKey(cfg, shards[j]) })
	for i := range shards {
		shards[i].Shard = i + 1
	}
	p := &Plan{ModelName: cfg.Name, Strategy: StrategyNSBP, NumShards: n, Shards: shards}
	return p, p.Validate(cfg)
}

func netNames(cfg *model.Config) []string {
	var out []string
	for _, ns := range cfg.Nets {
		out = append(out, ns.Name)
	}
	return out
}

// nsbpBins counts the bins an FFD packing at the given limit needs.
func nsbpBins(cfg *model.Config, nets []string, limit int64) int {
	bins := 0
	for _, net := range nets {
		tables := cfg.NetTables(net)
		for _, t := range tables {
			if t.Bytes() > limit {
				bins += int((t.Bytes() + limit - 1) / limit)
			}
		}
		bins += ffdBinCount(tables, limit)
	}
	return bins
}

// ffdBinCount packs the net's tables with bytes ≤ limit first-fit-
// decreasing and returns the bin count.
func ffdBinCount(tables []model.TableSpec, limit int64) int {
	var sizes []int64
	for _, t := range tables {
		if t.Bytes() <= limit {
			sizes = append(sizes, t.Bytes())
		}
	}
	if len(sizes) == 0 {
		return 0
	}
	sort.Slice(sizes, func(i, j int) bool { return sizes[i] > sizes[j] })
	var bins []int64
	for _, s := range sizes {
		placed := false
		for b := range bins {
			if bins[b]+s <= limit {
				bins[b] += s
				placed = true
				break
			}
		}
		if !placed {
			bins = append(bins, s)
		}
	}
	return len(bins)
}

// nsbpPack materializes the FFD packing at the limit into assignments.
func nsbpPack(cfg *model.Config, nets []string, limit int64) []Assignment {
	var shards []Assignment
	for _, net := range nets {
		tables := cfg.NetTables(net)
		// Oversized tables: dedicated partition shards.
		for _, t := range tables {
			if t.Bytes() > limit {
				k := int((t.Bytes() + limit - 1) / limit)
				for part := 0; part < k; part++ {
					shards = append(shards, Assignment{
						Parts: []PartRef{{TableID: t.ID, PartIndex: part, NumParts: k}},
					})
				}
			}
		}
		// Remaining tables: FFD into capacity-limited bins.
		var fit []model.TableSpec
		for _, t := range tables {
			if t.Bytes() <= limit {
				fit = append(fit, t)
			}
		}
		sort.Slice(fit, func(i, j int) bool {
			if fit[i].Bytes() != fit[j].Bytes() {
				return fit[i].Bytes() > fit[j].Bytes()
			}
			return fit[i].ID < fit[j].ID
		})
		var bins []Assignment
		var binLoad []int64
		for _, t := range fit {
			placed := false
			for b := range bins {
				if binLoad[b]+t.Bytes() <= limit {
					bins[b].Tables = append(bins[b].Tables, t.ID)
					binLoad[b] += t.Bytes()
					placed = true
					break
				}
			}
			if !placed {
				bins = append(bins, Assignment{Tables: []int{t.ID}})
				binLoad = append(binLoad, t.Bytes())
			}
		}
		shards = append(shards, bins...)
	}
	return shards
}

// splitLargestBin splits the multi-table bin with the most bytes into two
// halves (by running-byte split), returning false if no bin can split.
func splitLargestBin(cfg *model.Config, shards *[]Assignment) bool {
	best := -1
	var bestBytes int64
	for i := range *shards {
		a := &(*shards)[i]
		if len(a.Tables) < 2 {
			continue
		}
		b := ShardCapacityBytes(cfg, a)
		if b > bestBytes {
			bestBytes = b
			best = i
		}
	}
	if best < 0 {
		return false
	}
	src := (*shards)[best]
	sort.Slice(src.Tables, func(i, j int) bool {
		return cfg.Tables[src.Tables[i]].Bytes() > cfg.Tables[src.Tables[j]].Bytes()
	})
	var a, b Assignment
	var loadA, loadB int64
	for _, id := range src.Tables {
		if loadA <= loadB {
			a.Tables = append(a.Tables, id)
			loadA += cfg.Tables[id].Bytes()
		} else {
			b.Tables = append(b.Tables, id)
			loadB += cfg.Tables[id].Bytes()
		}
	}
	(*shards)[best] = a
	*shards = append(*shards, b)
	return true
}

// shardSortKey orders NSBP shards net-first, whole-table bins before
// partition bins, then by descending capacity — matching the paper's
// presentation (Table II's net1 shards first; DRM3's grouped small
// tables on shard 1 with the partitioned dominating table following).
func shardSortKey(cfg *model.Config, a Assignment) string {
	nets := ShardNets(cfg, &a)
	net := ""
	if len(nets) > 0 {
		net = nets[0]
	}
	kind := 0
	if len(a.Parts) > 0 {
		kind = 1
	}
	return fmt.Sprintf("%s-%d-%020d", net, kind, int64(1)<<62-ShardCapacityBytes(cfg, &a))
}

// AllConfigurations builds the paper's full configuration sweep for a
// model (Table I): singular, 1-shard, and {2,4,8} shards under each of
// the three strategies. Models with a single net skip strategies the
// paper couldn't apply (DRM3 is NSBP-only, Section V-A); use the
// includeAll flag to force every strategy regardless.
func AllConfigurations(cfg *model.Config, pooling map[int]float64, includeAll bool) ([]*Plan, error) {
	plans := []*Plan{Singular(cfg), OneShard(cfg)}
	nsbpOnly := cfg.Name == "DRM3" && !includeAll
	for _, n := range []int{2, 4, 8} {
		if !nsbpOnly {
			lb, err := LoadBalanced(cfg, n, pooling)
			if err != nil {
				return nil, err
			}
			plans = append(plans, lb)
			cb, err := CapacityBalanced(cfg, n)
			if err != nil {
				return nil, err
			}
			plans = append(plans, cb)
		}
		nsbp, err := NSBP(cfg, n)
		if err != nil {
			return nil, err
		}
		plans = append(plans, nsbp)
	}
	return plans, nil
}
