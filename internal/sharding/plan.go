// Package sharding implements capacity-driven model sharding (paper
// Section III-B): the plan representation mapping embedding tables (or
// row-partitions of huge tables) to sparse shards, the three placement
// strategies evaluated in the paper — capacity-balanced, load-balanced,
// and net-specific bin-packing (NSBP) — and the plan validator enforcing
// the serving constraints (stateless shards, complete and non-overlapping
// table coverage).
package sharding

import (
	"fmt"
	"sort"

	"repro/internal/model"
)

// Strategy names, matching Table I.
const (
	StrategySingular = "singular"
	StrategyOneShard = "1-shard"
	StrategyCapacity = "cap-bal"
	StrategyLoad     = "load-bal"
	StrategyNSBP     = "NSBP"
)

// PartRef places one row-partition of a table on a shard: rows r with
// r % NumParts == PartIndex live here.
type PartRef struct {
	TableID   int
	PartIndex int
	NumParts  int
}

// Assignment is the table placement of one sparse shard.
type Assignment struct {
	// Shard is the 1-based shard number (matching the paper's tables).
	Shard int
	// Tables lists IDs of whole tables placed here.
	Tables []int
	// Parts lists row-partitions of huge tables placed here.
	Parts []PartRef
}

// Plan is a complete sharding configuration for one model.
type Plan struct {
	ModelName string
	Strategy  string
	// NumShards is the sparse shard count (0 for singular).
	NumShards int
	Shards    []Assignment
}

// Name renders the configuration label used across the paper's figures
// ("singular", "1 shard", "load-bal 4 shards", ...).
func (p *Plan) Name() string {
	switch p.Strategy {
	case StrategySingular:
		return "singular"
	case StrategyOneShard:
		return "1 shard"
	default:
		return fmt.Sprintf("%s %d shards", p.Strategy, p.NumShards)
	}
}

// IsDistributed reports whether the plan has sparse shards.
func (p *Plan) IsDistributed() bool { return p.NumShards > 0 }

// ShardCapacityBytes returns the fp32 capacity the assignment holds, with
// partitioned tables contributing proportionally.
func ShardCapacityBytes(cfg *model.Config, a *Assignment) int64 {
	var n int64
	for _, id := range a.Tables {
		n += cfg.Tables[id].Bytes()
	}
	for _, pr := range a.Parts {
		n += cfg.Tables[pr.TableID].Bytes() / int64(pr.NumParts)
	}
	return n
}

// ShardTableCount counts tables (parts count as one table presence, as in
// Table II's "Embedding Tables" row).
func ShardTableCount(a *Assignment) int { return len(a.Tables) + len(a.Parts) }

// ShardPooling estimates the pooling work assigned to a shard given
// per-table pooling estimates (lookups per request), splitting partitioned
// tables' pooling evenly across parts.
func ShardPooling(a *Assignment, pooling map[int]float64) float64 {
	var p float64
	for _, id := range a.Tables {
		p += pooling[id]
	}
	for _, pr := range a.Parts {
		p += pooling[pr.TableID] / float64(pr.NumParts)
	}
	return p
}

// ShardNets returns the distinct nets whose tables the shard holds.
func ShardNets(cfg *model.Config, a *Assignment) []string {
	seen := make(map[string]bool)
	var out []string
	add := func(id int) {
		net := cfg.Tables[id].Net
		if !seen[net] {
			seen[net] = true
			out = append(out, net)
		}
	}
	for _, id := range a.Tables {
		add(id)
	}
	for _, pr := range a.Parts {
		add(pr.TableID)
	}
	sort.Strings(out)
	return out
}

// Validate checks the plan's serving invariants against the model config:
// every table covered exactly once (whole, or by a complete part set on
// distinct shards), no empty shards, shard numbering dense and 1-based.
// NSBP plans additionally must not mix nets within a shard (the property
// Section III-B3 is built on).
func (p *Plan) Validate(cfg *model.Config) error {
	if p.Strategy == StrategySingular {
		if len(p.Shards) != 0 || p.NumShards != 0 {
			return fmt.Errorf("sharding: singular plan must have no shards")
		}
		return nil
	}
	if len(p.Shards) != p.NumShards {
		return fmt.Errorf("sharding: plan has %d assignments for %d shards", len(p.Shards), p.NumShards)
	}
	whole := make(map[int]int)         // tableID → shard
	parts := make(map[int]map[int]int) // tableID → partIndex → shard
	partsN := make(map[int]int)        // tableID → NumParts
	for i, a := range p.Shards {
		if a.Shard != i+1 {
			return fmt.Errorf("sharding: shard %d numbered %d; want dense 1-based numbering", i, a.Shard)
		}
		if ShardTableCount(&a) == 0 {
			return fmt.Errorf("sharding: shard %d is empty", a.Shard)
		}
		for _, id := range a.Tables {
			if id < 0 || id >= len(cfg.Tables) {
				return fmt.Errorf("sharding: shard %d references unknown table %d", a.Shard, id)
			}
			if prev, dup := whole[id]; dup {
				return fmt.Errorf("sharding: table %d assigned to both shard %d and %d", id, prev, a.Shard)
			}
			whole[id] = a.Shard
		}
		for _, pr := range a.Parts {
			if pr.TableID < 0 || pr.TableID >= len(cfg.Tables) {
				return fmt.Errorf("sharding: shard %d references unknown table %d", a.Shard, pr.TableID)
			}
			if pr.NumParts < 2 || pr.PartIndex < 0 || pr.PartIndex >= pr.NumParts {
				return fmt.Errorf("sharding: bad part ref %+v on shard %d", pr, a.Shard)
			}
			if n, ok := partsN[pr.TableID]; ok && n != pr.NumParts {
				return fmt.Errorf("sharding: table %d has inconsistent part counts %d and %d", pr.TableID, n, pr.NumParts)
			}
			partsN[pr.TableID] = pr.NumParts
			if parts[pr.TableID] == nil {
				parts[pr.TableID] = make(map[int]int)
			}
			if prev, dup := parts[pr.TableID][pr.PartIndex]; dup {
				return fmt.Errorf("sharding: part %d of table %d on both shard %d and %d", pr.PartIndex, pr.TableID, prev, a.Shard)
			}
			parts[pr.TableID][pr.PartIndex] = a.Shard
		}
	}
	// Validate in table order so a plan with several defects reports the
	// same one every run instead of whichever the map yields first.
	partIDs := make([]int, 0, len(parts))
	for id := range parts {
		partIDs = append(partIDs, id)
	}
	sort.Ints(partIDs)
	for _, id := range partIDs {
		if _, alsoWhole := whole[id]; alsoWhole {
			return fmt.Errorf("sharding: table %d assigned both whole and partitioned", id)
		}
		if len(parts[id]) != partsN[id] {
			return fmt.Errorf("sharding: table %d has %d of %d parts placed", id, len(parts[id]), partsN[id])
		}
	}
	for id := range cfg.Tables {
		if _, ok := whole[id]; ok {
			continue
		}
		if _, ok := parts[id]; ok {
			continue
		}
		return fmt.Errorf("sharding: table %d not placed on any shard", id)
	}
	if p.Strategy == StrategyNSBP {
		for i := range p.Shards {
			if nets := ShardNets(cfg, &p.Shards[i]); len(nets) > 1 {
				return fmt.Errorf("sharding: NSBP shard %d mixes nets %v", p.Shards[i].Shard, nets)
			}
		}
	}
	return nil
}
