package sharding

import (
	"strings"
	"testing"

	"repro/internal/model"
)

func tierTestConfig() model.Config {
	cfg := model.DRM2()
	// Mix of sizes so MinTableBytes has something to exempt.
	for i := range cfg.Tables {
		if i%5 == 0 {
			cfg.Tables[i].Rows = 32 // tiny: stays fp32
		} else {
			cfg.Tables[i].Rows = 4096
		}
	}
	return cfg
}

func TestParsePrecision(t *testing.T) {
	for _, ok := range []string{"fp32", "fp16", "int8"} {
		if _, err := ParsePrecision(ok); err != nil {
			t.Fatalf("%s rejected: %v", ok, err)
		}
	}
	if _, err := ParsePrecision("int4"); err == nil {
		t.Fatal("unknown precision accepted")
	}
}

func TestPlanTiersPrecisionSelection(t *testing.T) {
	cfg := tierTestConfig()
	tp := PlanTiers(&cfg, TierOptions{ColdPrecision: PrecisionInt8})
	counts := tp.CountByPrecision(&cfg)
	if counts[PrecisionInt8] == 0 {
		t.Fatal("no tables quantized to int8 under the default budget")
	}
	if counts[PrecisionFP32] == 0 {
		t.Fatal("tiny tables should stay fp32 under MinTableBytes")
	}
	for _, ts := range cfg.Tables {
		if ts.Bytes() < (TierOptions{}).withDefaults().MinTableBytes {
			if p := tp.Precision(ts.ID); p != PrecisionFP32 {
				t.Fatalf("tiny table %d planned %s", ts.ID, p)
			}
		}
	}

	// A budget tighter than int8's error forces fp16; tighter than fp16's
	// forces fp32.
	tp16 := PlanTiers(&cfg, TierOptions{ColdPrecision: PrecisionInt8, ErrorBudget: 1.0 / 1000})
	if c := tp16.CountByPrecision(&cfg); c[PrecisionInt8] != 0 || c[PrecisionFP16] == 0 {
		t.Fatalf("error budget 1/1000 should demote int8 to fp16: %v", c)
	}
	tp32 := PlanTiers(&cfg, TierOptions{ColdPrecision: PrecisionInt8, ErrorBudget: 1.0 / 10000})
	if c := tp32.CountByPrecision(&cfg); c[PrecisionFP32] != len(cfg.Tables) {
		t.Fatalf("error budget 1/10000 should keep everything fp32: %v", c)
	}

	// The precision cap rules int8 out regardless of budget.
	capped := PlanTiers(&cfg, TierOptions{ColdPrecision: PrecisionFP16, ErrorBudget: 1})
	if c := capped.CountByPrecision(&cfg); c[PrecisionInt8] != 0 || c[PrecisionFP16] == 0 {
		t.Fatalf("fp16 cap violated: %v", c)
	}
	off := PlanTiers(&cfg, TierOptions{ColdPrecision: PrecisionFP32})
	if c := off.CountByPrecision(&cfg); c[PrecisionFP32] != len(cfg.Tables) {
		t.Fatalf("fp32 cap should disable compression: %v", c)
	}
}

func TestTierTableBytes(t *testing.T) {
	ts := model.TableSpec{Rows: 100, Dim: 16}
	if got := TierTableBytes(ts, PrecisionFP32); got != 100*16*4 {
		t.Fatalf("fp32 bytes %d", got)
	}
	if got := TierTableBytes(ts, PrecisionFP16); got != 100*16*2 {
		t.Fatalf("fp16 bytes %d", got)
	}
	if got := TierTableBytes(ts, PrecisionInt8); got != 100*(16+4) {
		t.Fatalf("int8 bytes %d", got)
	}
}

func TestShardResidentBytes(t *testing.T) {
	cfg := tierTestConfig()
	pooling := map[int]float64{}
	for _, ts := range cfg.Tables {
		pooling[ts.ID] = 1
	}
	plan, err := CapacityBalanced(&cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	tp := PlanTiers(&cfg, TierOptions{ColdPrecision: PrecisionInt8})
	var total int64
	for i := range plan.Shards {
		rb := tp.ShardResidentBytes(&cfg, &plan.Shards[i])
		fb := ShardCapacityBytes(&cfg, &plan.Shards[i])
		if rb <= 0 || rb >= fb {
			t.Fatalf("shard %d resident %d not in (0, fp32 %d)", i+1, rb, fb)
		}
		total += rb
	}
	if got := tp.ResidentBytes(&cfg); got != total {
		// Whole-table placement: per-shard resident bytes must sum to the
		// model total.
		t.Fatalf("ResidentBytes %d != shard sum %d", got, total)
	}
	// A nil plan prices everything at fp32.
	var nilPlan *TierPlan
	if got := nilPlan.ShardResidentBytes(&cfg, &plan.Shards[0]); got != ShardCapacityBytes(&cfg, &plan.Shards[0]) {
		t.Fatalf("nil tier plan resident %d != fp32 capacity", got)
	}

	report := TieredReport(&cfg, plan, tp)
	if !strings.Contains(report, "reduction") || !strings.Contains(report, "shard 1") {
		t.Fatalf("report missing expected lines:\n%s", report)
	}
}
