package sharding

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/model"
	"repro/internal/workload"
)

func poolingFor(cfg model.Config) map[int]float64 {
	return workload.EstimatePooling(workload.NewGenerator(cfg, 991), 200)
}

func TestSingularAndOneShard(t *testing.T) {
	cfg := model.DRM1()
	s := Singular(&cfg)
	if s.IsDistributed() || s.Name() != "singular" {
		t.Errorf("singular plan wrong: %+v", s)
	}
	if err := s.Validate(&cfg); err != nil {
		t.Errorf("singular should validate: %v", err)
	}
	one := OneShard(&cfg)
	if err := one.Validate(&cfg); err != nil {
		t.Fatalf("1-shard invalid: %v", err)
	}
	if one.Name() != "1 shard" || len(one.Shards[0].Tables) != len(cfg.Tables) {
		t.Errorf("1-shard should hold all tables")
	}
}

func TestCapacityBalancedSpread(t *testing.T) {
	cfg := model.DRM1()
	pooling := poolingFor(cfg)
	for _, n := range []int{2, 4, 8} {
		p, err := CapacityBalanced(&cfg, n)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		st := Balance(&cfg, p, pooling)
		// Paper: capacity-balanced shards are nearly equal in bytes.
		if st.CapacitySpread > 1.15 {
			t.Errorf("n=%d: capacity spread %.3f, want ≤1.15", n, st.CapacitySpread)
		}
		// ... but load may be wildly unbalanced (paper: up to 371% at 8).
		if n == 8 && st.PoolingSpread < 1.5 {
			t.Logf("n=8 pooling spread only %.2f (paper saw up to 4.7x); acceptable but unusual", st.PoolingSpread)
		}
	}
}

func TestLoadBalancedSpread(t *testing.T) {
	cfg := model.DRM1()
	pooling := poolingFor(cfg)
	for _, n := range []int{2, 4, 8} {
		p, err := LoadBalanced(&cfg, n, pooling)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		st := Balance(&cfg, p, pooling)
		if st.PoolingSpread > 1.2 {
			t.Errorf("n=%d: pooling spread %.3f, want ≤1.2", n, st.PoolingSpread)
		}
	}
	// Paper: load-balanced capacities varied up to 50% — i.e. they are NOT
	// capacity-balanced. Verify the strategies actually differ.
	lb, _ := LoadBalanced(&cfg, 8, pooling)
	cb, _ := CapacityBalanced(&cfg, 8)
	lbStats, cbStats := Balance(&cfg, lb, pooling), Balance(&cfg, cb, pooling)
	if lbStats.CapacitySpread <= cbStats.CapacitySpread {
		t.Logf("load-balanced capacity spread %.3f vs capacity-balanced %.3f",
			lbStats.CapacitySpread, cbStats.CapacitySpread)
	}
}

func TestLoadBalancedFallsBackToSpecPooling(t *testing.T) {
	cfg := model.DRM2()
	p, err := LoadBalanced(&cfg, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(&cfg); err != nil {
		t.Fatal(err)
	}
}

func TestNSBPSingleNetPerShard(t *testing.T) {
	for _, name := range model.Names() {
		cfg := model.ByName(name)
		for _, n := range []int{2, 4, 8} {
			if n < len(cfg.Nets) {
				continue
			}
			p, err := NSBP(&cfg, n)
			if err != nil {
				t.Fatalf("%s n=%d: %v", name, n, err)
			}
			if p.NumShards != n {
				t.Fatalf("%s n=%d: plan has %d shards", name, n, p.NumShards)
			}
			for i := range p.Shards {
				if nets := ShardNets(&cfg, &p.Shards[i]); len(nets) != 1 {
					t.Errorf("%s n=%d shard %d mixes nets: %v", name, n, i+1, nets)
				}
			}
		}
	}
}

func TestNSBP2SplitsDRM1ByNet(t *testing.T) {
	cfg := model.DRM1()
	p, err := NSBP(&cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Paper Table II: at 2 shards, each net gets its own shard; the net2
	// shard holds ~4.75× the capacity of the net1 shard.
	nets1 := ShardNets(&cfg, &p.Shards[0])
	nets2 := ShardNets(&cfg, &p.Shards[1])
	if nets1[0] == nets2[0] {
		t.Fatalf("NSBP-2 should give each net its own shard: %v %v", nets1, nets2)
	}
	var capNet1, capNet2 int64
	for i := range p.Shards {
		c := ShardCapacityBytes(&cfg, &p.Shards[i])
		if ShardNets(&cfg, &p.Shards[i])[0] == "net1" {
			capNet1 = c
		} else {
			capNet2 = c
		}
	}
	ratio := float64(capNet2) / float64(capNet1)
	if ratio < 3 || ratio > 7 {
		t.Errorf("net2/net1 capacity ratio %.2f, paper reports ≈4.75", ratio)
	}
}

func TestNSBPDRM3TwoShards(t *testing.T) {
	// At 2 shards the dominating table is not yet split: it gets a shard
	// to itself and the small tables group on the other.
	cfg := model.DRM3()
	p, err := NSBP(&cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	var bigShard *Assignment
	for i := range p.Shards {
		for _, id := range p.Shards[i].Tables {
			if id == 0 {
				bigShard = &p.Shards[i]
			}
		}
	}
	if bigShard == nil || len(bigShard.Tables) != 1 {
		t.Fatalf("dominating table should sit alone on one shard: %+v", p.Shards)
	}
}

func TestNSBPDRM3SplitsDominatingTable(t *testing.T) {
	cfg := model.DRM3()
	for _, n := range []int{4, 8} {
		p, err := NSBP(&cfg, n)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		// Paper: the largest table splits across n−1 shards; the smaller
		// tables group into one shard.
		partShards := 0
		wholeShards := 0
		for i := range p.Shards {
			if len(p.Shards[i].Parts) > 0 {
				partShards++
				if len(p.Shards[i].Tables) != 0 {
					t.Errorf("n=%d: partition shard %d also holds whole tables", n, i+1)
				}
				if p.Shards[i].Parts[0].TableID != 0 {
					t.Errorf("n=%d: partitioned table is %d, want dominating table 0", n, p.Shards[i].Parts[0].TableID)
				}
			} else {
				wholeShards++
			}
		}
		if partShards != n-1 || wholeShards != 1 {
			t.Errorf("n=%d: %d partition shards + %d whole shards, want %d + 1", n, partShards, wholeShards, n-1)
		}
	}
}

func TestValidateCatchesCorruptPlans(t *testing.T) {
	cfg := model.DRM2()
	base, err := CapacityBalanced(&cfg, 4)
	if err != nil {
		t.Fatal(err)
	}

	corrupt := func(mutate func(p *Plan)) *Plan {
		cp := &Plan{ModelName: base.ModelName, Strategy: base.Strategy, NumShards: base.NumShards}
		for _, a := range base.Shards {
			na := Assignment{Shard: a.Shard, Tables: append([]int(nil), a.Tables...)}
			na.Parts = append(na.Parts, a.Parts...)
			cp.Shards = append(cp.Shards, na)
		}
		mutate(cp)
		return cp
	}

	cases := map[string]func(p *Plan){
		"duplicate table": func(p *Plan) {
			p.Shards[0].Tables = append(p.Shards[0].Tables, p.Shards[1].Tables[0])
		},
		"missing table": func(p *Plan) {
			p.Shards[0].Tables = p.Shards[0].Tables[1:]
		},
		"unknown table": func(p *Plan) {
			p.Shards[0].Tables[0] = 9999
		},
		"bad numbering": func(p *Plan) {
			p.Shards[0].Shard = 7
		},
		"shard count mismatch": func(p *Plan) {
			p.NumShards = 5
		},
		"whole and partitioned": func(p *Plan) {
			id := p.Shards[0].Tables[0]
			p.Shards[1].Parts = append(p.Shards[1].Parts, PartRef{TableID: id, PartIndex: 0, NumParts: 2})
			p.Shards[2].Parts = append(p.Shards[2].Parts, PartRef{TableID: id, PartIndex: 1, NumParts: 2})
		},
		"incomplete parts": func(p *Plan) {
			id := p.Shards[0].Tables[0]
			p.Shards[0].Tables = p.Shards[0].Tables[1:]
			p.Shards[1].Parts = append(p.Shards[1].Parts, PartRef{TableID: id, PartIndex: 0, NumParts: 3})
			p.Shards[2].Parts = append(p.Shards[2].Parts, PartRef{TableID: id, PartIndex: 1, NumParts: 3})
		},
	}
	for name, mutate := range cases {
		if err := corrupt(mutate).Validate(&cfg); err == nil {
			t.Errorf("%s: Validate accepted a corrupt plan", name)
		}
	}
}

// TestValidateErrorDeterministic pins which defect a multi-defect plan
// reports: validation iterates tables in sorted order, so the lowest
// broken table id wins every run instead of whichever the part map
// yields first.
func TestValidateErrorDeterministic(t *testing.T) {
	cfg := model.DRM1()
	base, err := CapacityBalanced(&cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Break two tables the same way: move each to partitioned placement
	// but register only one of its declared parts.
	p := &Plan{ModelName: base.ModelName, Strategy: base.Strategy, NumShards: base.NumShards}
	for _, a := range base.Shards {
		na := Assignment{Shard: a.Shard, Tables: append([]int(nil), a.Tables...)}
		na.Parts = append(na.Parts, a.Parts...)
		p.Shards = append(p.Shards, na)
	}
	idA := p.Shards[0].Tables[0]
	idB := p.Shards[1].Tables[0]
	p.Shards[0].Tables = p.Shards[0].Tables[1:]
	p.Shards[1].Tables = p.Shards[1].Tables[1:]
	p.Shards[2].Parts = append(p.Shards[2].Parts,
		PartRef{TableID: idA, PartIndex: 0, NumParts: 2},
		PartRef{TableID: idB, PartIndex: 0, NumParts: 2})

	first := p.Validate(&cfg)
	if first == nil {
		t.Fatal("Validate accepted a plan with two incomplete tables")
	}
	low := idA
	if idB < low {
		low = idB
	}
	if want := fmt.Sprintf("table %d has 1 of 2 parts", low); !strings.Contains(first.Error(), want) {
		t.Fatalf("Validate reported %q, want the lowest table id: %q", first, want)
	}
	for i := 0; i < 32; i++ {
		if err := p.Validate(&cfg); err == nil || err.Error() != first.Error() {
			t.Fatalf("run %d: Validate error changed: %v vs %v", i, err, first)
		}
	}
}

func TestValidateRejectsMixedNetNSBP(t *testing.T) {
	cfg := model.DRM1()
	p, err := CapacityBalanced(&cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	p.Strategy = StrategyNSBP // capacity-balanced mixes nets
	if err := p.Validate(&cfg); err == nil {
		t.Error("NSBP validation should reject mixed-net shards")
	}
}

func TestStrategyErrors(t *testing.T) {
	cfg := model.DRM3()
	if _, err := CapacityBalanced(&cfg, 0); err == nil {
		t.Error("0 shards should fail")
	}
	if _, err := CapacityBalanced(&cfg, len(cfg.Tables)+1); err == nil {
		t.Error("more shards than tables should fail")
	}
	if _, err := LoadBalanced(&cfg, 0, nil); err == nil {
		t.Error("0 shards should fail")
	}
	if _, err := NSBP(&cfg, 0); err == nil {
		t.Error("0 shards should fail")
	}
	cfg1 := model.DRM1()
	if _, err := NSBP(&cfg1, 1); err == nil {
		t.Error("NSBP with fewer shards than nets should fail")
	}
}

func TestAllConfigurations(t *testing.T) {
	cfg := model.DRM1()
	pooling := poolingFor(cfg)
	plans, err := AllConfigurations(&cfg, pooling, false)
	if err != nil {
		t.Fatal(err)
	}
	// singular + 1-shard + 3 strategies × 3 counts = 11.
	if len(plans) != 11 {
		t.Fatalf("DRM1: %d plans, want 11", len(plans))
	}
	for _, p := range plans {
		if err := p.Validate(&cfg); err != nil {
			t.Errorf("%s: %v", p.Name(), err)
		}
	}
	cfg3 := model.DRM3()
	plans3, err := AllConfigurations(&cfg3, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	// DRM3 is NSBP-only: singular + 1-shard + 3 NSBP counts = 5.
	if len(plans3) != 5 {
		t.Fatalf("DRM3: %d plans, want 5", len(plans3))
	}
}

func TestPlanCoverageProperty(t *testing.T) {
	// Any valid strategy output covers each table exactly once, for any
	// shard count; verified by summing capacities.
	cfg := model.DRM2()
	total := cfg.SparseBytes()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(10)
		for _, build := range []func() (*Plan, error){
			func() (*Plan, error) { return CapacityBalanced(&cfg, n) },
			func() (*Plan, error) { return LoadBalanced(&cfg, n, nil) },
			func() (*Plan, error) { return NSBP(&cfg, n) },
		} {
			p, err := build()
			if err != nil {
				return false
			}
			if p.Validate(&cfg) != nil {
				return false
			}
			var sum int64
			for i := range p.Shards {
				sum += ShardCapacityBytes(&cfg, &p.Shards[i])
			}
			// Partition rounding can drop at most NumParts bytes per table.
			if sum < total-int64(len(cfg.Tables)*64) || sum > total {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func TestDeterministicPlans(t *testing.T) {
	cfg := model.DRM1()
	a, _ := CapacityBalanced(&cfg, 8)
	b, _ := CapacityBalanced(&cfg, 8)
	for i := range a.Shards {
		if len(a.Shards[i].Tables) != len(b.Shards[i].Tables) {
			t.Fatal("plans must be deterministic")
		}
		for j := range a.Shards[i].Tables {
			if a.Shards[i].Tables[j] != b.Shards[i].Tables[j] {
				t.Fatal("plans must be deterministic")
			}
		}
	}
}

func TestReport(t *testing.T) {
	cfg := model.DRM1()
	pooling := poolingFor(cfg)
	plans, err := AllConfigurations(&cfg, pooling, false)
	if err != nil {
		t.Fatal(err)
	}
	out := Report(&cfg, plans, pooling)
	for _, want := range []string{"singular", "1 shard", "load-bal 8 shards", "NSBP 2 shards", "[8]:"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}
