package sharding

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Load accounting for online resharding: the sparse shard service folds
// every request's per-table row-access counts and service time into a
// LoadSummary — a cheap, mergeable aggregate (a handful of counters per
// table, not a trace) that travels over one RPC and feeds the rebalancer
// with *measured* load instead of the synthetic pooling priors the
// offline strategies budget with.

// TableLoadKey addresses one load-accounting bucket: a whole table
// (PartIndex 0 of 1) or one row-partition.
type TableLoadKey struct {
	TableID   int
	PartIndex int
}

// TableLoad is the mergeable per-table aggregate.
type TableLoad struct {
	// Lookups counts embedding row accesses pooled for this table.
	Lookups int64
	// ServiceTime is the sparse-op time attributed to this table
	// (apportioned by lookup share within each call).
	ServiceTime time.Duration
	// Calls counts sparse RPCs that carried an entry for this table.
	Calls int64
}

// add folds another aggregate in.
func (l *TableLoad) add(o TableLoad) {
	l.Lookups += o.Lookups
	l.ServiceTime += o.ServiceTime
	l.Calls += o.Calls
}

// LoadSummary aggregates measured load per table/partition. The zero
// value is not usable; call NewLoadSummary. Summaries are not
// goroutine-safe — owners serialize access (the sparse shard guards its
// live summary with a mutex and hands out snapshots).
type LoadSummary struct {
	Tables map[TableLoadKey]TableLoad
}

// NewLoadSummary returns an empty summary.
func NewLoadSummary() *LoadSummary {
	return &LoadSummary{Tables: make(map[TableLoadKey]TableLoad)}
}

// Add folds one observation into the summary.
func (s *LoadSummary) Add(k TableLoadKey, l TableLoad) {
	cur := s.Tables[k]
	cur.add(l)
	s.Tables[k] = cur
}

// Merge folds another summary in (the cross-shard reduction).
func (s *LoadSummary) Merge(o *LoadSummary) {
	if o == nil {
		return
	}
	for k, l := range o.Tables {
		s.Add(k, l)
	}
}

// Clone returns an independent copy (the snapshot the shard hands out).
func (s *LoadSummary) Clone() *LoadSummary {
	out := NewLoadSummary()
	out.Merge(s)
	return out
}

// TotalLookups sums row accesses across all tables.
func (s *LoadSummary) TotalLookups() int64 {
	var n int64
	for _, l := range s.Tables {
		n += l.Lookups
	}
	return n
}

// Keys returns the summary's keys in deterministic (table, part) order.
func (s *LoadSummary) Keys() []TableLoadKey {
	out := make([]TableLoadKey, 0, len(s.Tables))
	for k := range s.Tables {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].TableID != out[j].TableID {
			return out[i].TableID < out[j].TableID
		}
		return out[i].PartIndex < out[j].PartIndex
	})
	return out
}

// Weight scalarizes one table's load for balancing: measured service
// seconds when available, otherwise lookup count (the two are
// proportional under a uniform per-lookup cost, so mixing summaries with
// and without timing stays sane within one rebalance pass).
func (s *LoadSummary) Weight(k TableLoadKey) float64 {
	l := s.Tables[k]
	if l.ServiceTime > 0 {
		return l.ServiceTime.Seconds()
	}
	return float64(l.Lookups)
}

// String renders the summary for logs, heaviest tables first.
func (s *LoadSummary) String() string {
	keys := s.Keys()
	sort.SliceStable(keys, func(i, j int) bool { return s.Weight(keys[i]) > s.Weight(keys[j]) })
	var b strings.Builder
	fmt.Fprintf(&b, "load summary: %d tables, %d lookups\n", len(keys), s.TotalLookups())
	for i, k := range keys {
		if i >= 10 {
			fmt.Fprintf(&b, "  ... %d more\n", len(keys)-i)
			break
		}
		l := s.Tables[k]
		fmt.Fprintf(&b, "  table %d/%d: %d lookups, %v service, %d calls\n",
			k.TableID, k.PartIndex, l.Lookups, l.ServiceTime.Round(time.Microsecond), l.Calls)
	}
	return b.String()
}
