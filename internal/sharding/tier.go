package sharding

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/model"
)

// Tiered-storage capacity planning: the paper's scale-out is
// capacity-driven (tables are sharded because they do not fit one node),
// so the planner's real currency is resident bytes, not row counts. A
// TierPlan assigns each table a cold-tier precision — fp32, fp16, or
// row-wise int8 — chosen by trading the table's quantization error
// budget against the bytes the cheaper encoding saves, and the plan
// reporting here surfaces the resulting per-shard resident footprints so
// placement decisions and rebalance reports speak in bytes.

// Precision names a cold-tier storage encoding.
type Precision string

// Supported cold-tier precisions, cheapest-bytes last.
const (
	PrecisionFP32 Precision = "fp32"
	PrecisionFP16 Precision = "fp16"
	PrecisionInt8 Precision = "int8"
)

// ParsePrecision validates a precision name (the drmserve flag value).
func ParsePrecision(s string) (Precision, error) {
	switch Precision(s) {
	case PrecisionFP32, PrecisionFP16, PrecisionInt8:
		return Precision(s), nil
	}
	return "", fmt.Errorf("sharding: unknown precision %q (want fp32, fp16, or int8)", s)
}

// Estimated worst-case reconstruction error of each encoding, as a
// fraction of the table's value scale. Int8 row-wise linear quantization
// of values in [-s, s] has step 2s/255, so half-step error s/255; fp16
// error is relative, ≤ 2^-11 of the magnitude.
const (
	int8RelError = 1.0 / 255
	fp16RelError = 1.0 / 2048
)

// TierOptions tune the capacity planner.
type TierOptions struct {
	// ColdPrecision caps how aggressive the planner may quantize
	// (PrecisionInt8 allows everything, PrecisionFP16 rules int8 out,
	// PrecisionFP32 disables cold-tier compression).
	ColdPrecision Precision
	// ErrorBudget is the maximum acceptable worst-case reconstruction
	// error as a fraction of the table's value scale; encodings whose
	// estimated error exceeds it are demoted to the next-safer precision.
	// 0 defaults to 1/250 — just above the int8 bound, so int8 is
	// admissible by default and a slightly tighter budget forces fp16.
	ErrorBudget float64
	// MinTableBytes keeps tables below this fp32 size at fp32: the decode
	// cost of a tiny table buys back almost no bytes (default 16 KiB).
	MinTableBytes int64
}

func (o TierOptions) withDefaults() TierOptions {
	if o.ColdPrecision == "" {
		o.ColdPrecision = PrecisionFP32
	}
	if o.ErrorBudget <= 0 {
		o.ErrorBudget = 1.0 / 250
	}
	if o.MinTableBytes <= 0 {
		o.MinTableBytes = 16 << 10
	}
	return o
}

// TierPlan maps each table to its cold-tier precision. A nil plan (or a
// table absent from it) means fp32.
type TierPlan struct {
	Precisions map[int]Precision
}

// Precision returns the planned precision for a table.
func (tp *TierPlan) Precision(id int) Precision {
	if tp == nil {
		return PrecisionFP32
	}
	if p, ok := tp.Precisions[id]; ok {
		return p
	}
	return PrecisionFP32
}

// PlanTiers assigns each table the cheapest precision the error budget
// (and the requested precision cap) admits. Deterministic for a fixed
// (cfg, opts).
func PlanTiers(cfg *model.Config, opts TierOptions) *TierPlan {
	opts = opts.withDefaults()
	tp := &TierPlan{Precisions: make(map[int]Precision, len(cfg.Tables))}
	for _, t := range cfg.Tables {
		tp.Precisions[t.ID] = pickPrecision(t, opts)
	}
	return tp
}

// pickPrecision chooses one table's encoding: candidates ordered by
// resident bytes ascending, first one whose estimated error fits.
func pickPrecision(t model.TableSpec, opts TierOptions) Precision {
	if opts.ColdPrecision == PrecisionFP32 || t.Bytes() < opts.MinTableBytes {
		return PrecisionFP32
	}
	type cand struct {
		p   Precision
		err float64
	}
	cands := []cand{{PrecisionInt8, int8RelError}, {PrecisionFP16, fp16RelError}}
	if opts.ColdPrecision == PrecisionFP16 {
		cands = cands[1:]
	}
	sort.SliceStable(cands, func(i, j int) bool {
		return TierTableBytes(t, cands[i].p) < TierTableBytes(t, cands[j].p)
	})
	for _, c := range cands {
		if c.err <= opts.ErrorBudget && TierTableBytes(t, c.p) < t.Bytes() {
			return c.p
		}
	}
	return PrecisionFP32
}

// TierTableBytes returns a table's resident cold-tier bytes under a
// precision: fp32 rows×dim×4, fp16 rows×dim×2, int8 rows×(dim + 4 bytes
// of fp16 scale/bias header).
func TierTableBytes(t model.TableSpec, p Precision) int64 {
	rows, dim := int64(t.Rows), int64(t.Dim)
	switch p {
	case PrecisionFP16:
		return rows * dim * 2
	case PrecisionInt8:
		return rows * (dim + 4)
	default:
		return rows * dim * 4
	}
}

// ShardResidentBytes returns the cold-tier bytes an assignment holds
// under the tier plan, with partitioned tables contributing
// proportionally — the byte-aware sibling of ShardCapacityBytes.
func (tp *TierPlan) ShardResidentBytes(cfg *model.Config, a *Assignment) int64 {
	var n int64
	for _, id := range a.Tables {
		n += TierTableBytes(cfg.Tables[id], tp.Precision(id))
	}
	for _, pr := range a.Parts {
		n += TierTableBytes(cfg.Tables[pr.TableID], tp.Precision(pr.TableID)) / int64(pr.NumParts)
	}
	return n
}

// ResidentBytes sums planned cold-tier bytes across all tables.
func (tp *TierPlan) ResidentBytes(cfg *model.Config) int64 {
	var n int64
	for _, t := range cfg.Tables {
		n += TierTableBytes(t, tp.Precision(t.ID))
	}
	return n
}

// CountByPrecision tallies tables per precision (for reports).
func (tp *TierPlan) CountByPrecision(cfg *model.Config) map[Precision]int {
	out := make(map[Precision]int)
	for _, t := range cfg.Tables {
		out[tp.Precision(t.ID)]++
	}
	return out
}

// TieredReport renders per-shard resident-byte footprints for a plan
// under a tier plan, against the fp32 baseline — what a capacity-driven
// deployment actually provisions for.
func TieredReport(cfg *model.Config, p *Plan, tp *TierPlan) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Resident bytes for %s under %s (fp32 MiB -> tiered MiB)\n", cfg.Name, p.Name())
	if !p.IsDistributed() {
		fmt.Fprintf(&b, "  singular: %.2f -> %.2f\n",
			float64(cfg.SparseBytes())/(1<<20), float64(tp.ResidentBytes(cfg))/(1<<20))
		return b.String()
	}
	var fp32Total, tierTotal int64
	for i := range p.Shards {
		a := &p.Shards[i]
		f, t := ShardCapacityBytes(cfg, a), tp.ShardResidentBytes(cfg, a)
		fp32Total += f
		tierTotal += t
		fmt.Fprintf(&b, "  shard %d: %.2f -> %.2f\n", a.Shard, float64(f)/(1<<20), float64(t)/(1<<20))
	}
	if fp32Total > 0 {
		fmt.Fprintf(&b, "  total: %.2f -> %.2f (%.0f%% reduction)\n",
			float64(fp32Total)/(1<<20), float64(tierTotal)/(1<<20),
			100*(1-float64(tierTotal)/float64(fp32Total)))
	}
	return b.String()
}
