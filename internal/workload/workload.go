// Package workload generates synthetic ranking requests standing in for
// the paper's "database of de-identified requests ... sampled evenly
// across a five-day time period" (Section V-B).
//
// A ranking request carries R candidate items; for each item, every sparse
// feature contributes a bag of raw IDs whose size is drawn from that
// table's pooling-factor distribution, and every net gets a dense feature
// vector per item. Request sizes are lognormal so the tail requests that
// dominate P99 (Section VI-B4: "very large inference request sizes") are
// present. Per-request features (DRM3's dominating user table) contribute
// one shared ID replicated across items. All draws are seeded, so a given
// (model, seed) pair replays the identical request stream — the analogue
// of replaying a fixed production trace.
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/embedding"
	"repro/internal/model"
	"repro/internal/tensor"
)

// Request is one ranking request.
type Request struct {
	// ID is the request's sequence number (also used as trace id).
	ID uint64
	// Items is the number of candidate items to rank.
	Items int
	// Dense maps net name to an Items×DenseDim feature matrix.
	Dense map[string]*tensor.Matrix
	// Bags maps table ID to per-item bags of *raw* sparse feature IDs
	// (hashing into table buckets happens inside the model, Fig. 4's
	// "Hash" operators).
	Bags map[int][]embedding.Bag
	// ArrivalOffset is the request's offset within the replay timeline,
	// used by the open-loop QPS replayer.
	ArrivalOffset float64
}

// TotalLookups counts embedding lookups across all tables — the
// request's pooling work.
func (r *Request) TotalLookups() int {
	n := 0
	for _, bags := range r.Bags {
		n += embedding.TotalLookups(bags)
	}
	return n
}

// Generator produces a deterministic request stream for a model config.
type Generator struct {
	cfg model.Config
	rng *rand.Rand
	seq uint64
	// diurnal enables sinusoidal request-size modulation across the
	// stream, a light-weight stand-in for the five-day diurnal sampling.
	diurnal bool
	// zipf, when non-nil, draws raw sparse IDs from a Zipf distribution
	// instead of uniform — the skewed row popularity of production sparse
	// features that makes hot-row caching pay.
	zipf *rand.Zipf
}

// NewGenerator returns a generator seeded independently of the model's
// parameter seed so workload and parameters are uncorrelated.
func NewGenerator(cfg model.Config, seed int64) *Generator {
	return &Generator{cfg: cfg, rng: rand.New(rand.NewSource(seed))}
}

// EnableDiurnal turns on request-size modulation over the stream.
func (g *Generator) EnableDiurnal() { g.diurnal = true }

// EnableRowSkew draws raw sparse IDs Zipf(s)-distributed over the ID
// space (s > 1; larger is more skewed) instead of uniform. Hot raw IDs
// hash to a stable set of hot table rows, so a fixed seed still replays
// an identical stream — only the row-popularity profile changes. It
// panics for s ≤ 1: rand.NewZipf would return nil and the stream would
// silently stay uniform while claiming skew.
func (g *Generator) EnableRowSkew(s float64) {
	z := rand.NewZipf(g.rng, s, 1, 1<<30-1)
	if z == nil {
		panic(fmt.Sprintf("workload: row skew s=%g must be > 1", s))
	}
	g.zipf = z
}

// ApplySkew returns a copy of the stream with per-table pooling scaled
// by the given factors — injected hot-feature drift on a *fixed* trace.
// A factor f rewrites each bag to round(f·len) indices by cycling the
// original list (f > 1 repeats hot rows, f < 1 keeps a prefix), so the
// transform is deterministic and phase-to-phase comparisons replay the
// identical dense features and item counts. Dense matrices are shared
// with the source requests; bags are fresh slices.
func ApplySkew(reqs []*Request, skew map[int]float64) []*Request {
	out := make([]*Request, len(reqs))
	for i, req := range reqs {
		nr := &Request{
			ID: req.ID, Items: req.Items, Dense: req.Dense,
			Bags:          make(map[int][]embedding.Bag, len(req.Bags)),
			ArrivalOffset: req.ArrivalOffset,
		}
		for tid, bags := range req.Bags {
			f, ok := skew[tid]
			if !ok {
				nr.Bags[tid] = bags
				continue
			}
			nb := make([]embedding.Bag, len(bags))
			for b, bag := range bags {
				n := len(bag.Indices)
				target := int(math.Round(float64(n) * f))
				if n == 0 || target == n {
					nb[b] = bag
					continue
				}
				idx := make([]int32, target)
				for j := range idx {
					idx[j] = bag.Indices[j%n]
				}
				nb[b].Indices = idx
			}
			nr.Bags[tid] = nb
		}
		out[i] = nr
	}
	return out
}

// Next generates the next request.
func (g *Generator) Next() *Request {
	g.seq++
	req := &Request{
		ID:    g.seq,
		Dense: make(map[string]*tensor.Matrix, len(g.cfg.Nets)),
		Bags:  make(map[int][]embedding.Bag, len(g.cfg.Tables)),
	}
	req.Items = g.drawItems()

	for _, ns := range g.cfg.Nets {
		m := tensor.New(req.Items, ns.DenseDim)
		for i := range m.Data {
			m.Data[i] = g.rng.Float32()*2 - 1
		}
		req.Dense[ns.Name] = m
	}
	for _, ts := range g.cfg.Tables {
		req.Bags[ts.ID] = g.drawBags(ts, req.Items)
	}
	return req
}

// drawItems samples the ranking-request size, lognormal around MeanItems
// with optional diurnal modulation.
func (g *Generator) drawItems() int {
	mean := float64(g.cfg.MeanItems)
	if g.diurnal {
		// One "day" per 1000 requests; ±30% swing.
		phase := 2 * math.Pi * float64(g.seq%1000) / 1000
		mean *= 1 + 0.3*math.Sin(phase)
	}
	sigma := g.cfg.ItemsSigma
	// Lognormal with median = mean (so the tail stretches upward).
	items := int(math.Round(mean * math.Exp(g.rng.NormFloat64()*sigma)))
	if items < 1 {
		items = 1
	}
	return items
}

// drawBags samples one bag of raw sparse IDs per item for table ts.
func (g *Generator) drawBags(ts model.TableSpec, items int) []embedding.Bag {
	bags := make([]embedding.Bag, items)
	if model.IsPerRequestTable(g.cfg.Name, ts.ID) {
		// Per-request feature: one shared raw ID replicated per item,
		// exactly one lookup's worth of pooling per item.
		id := g.drawID()
		for i := range bags {
			bags[i].Indices = []int32{id}
		}
		return bags
	}
	for i := range bags {
		n := g.poisson(ts.PoolingFactor)
		if n == 0 {
			continue
		}
		idx := make([]int32, n)
		for j := range idx {
			idx[j] = g.drawID()
		}
		bags[i].Indices = idx
	}
	return bags
}

// drawID samples one raw sparse ID: uniform by default, Zipf-skewed when
// EnableRowSkew is on.
func (g *Generator) drawID() int32 {
	if g.zipf != nil {
		return int32(g.zipf.Uint64())
	}
	return int32(g.rng.Intn(1 << 30))
}

// poisson draws from Poisson(mean) — Knuth's method for small means, a
// normal approximation above 30 where Knuth's loop gets slow.
func (g *Generator) poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 30 {
		n := int(math.Round(mean + math.Sqrt(mean)*g.rng.NormFloat64()))
		if n < 0 {
			n = 0
		}
		return n
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= g.rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// GenerateBatch produces n requests.
func (g *Generator) GenerateBatch(n int) []*Request {
	out := make([]*Request, n)
	for i := range out {
		out[i] = g.Next()
	}
	return out
}

// EstimatePooling samples n requests and returns the observed mean number
// of lookups per table *per request* — the paper's pooling-factor
// estimator ("estimated by sampling 1000 requests from the evaluation
// dataset and observing the number of lookups per table", Section III-B2).
// The generator is consumed; use a dedicated instance.
func EstimatePooling(g *Generator, n int) map[int]float64 {
	counts := make(map[int]float64)
	for i := 0; i < n; i++ {
		req := g.Next()
		for tid, bags := range req.Bags {
			counts[tid] += float64(embedding.TotalLookups(bags))
		}
	}
	for tid := range counts {
		counts[tid] /= float64(n)
	}
	return counts
}
