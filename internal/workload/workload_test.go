package workload

import (
	"math"
	"testing"

	"repro/internal/model"
)

func TestGeneratorDeterminism(t *testing.T) {
	cfg := model.DRM2()
	g1 := NewGenerator(cfg, 7)
	g2 := NewGenerator(cfg, 7)
	for i := 0; i < 5; i++ {
		r1, r2 := g1.Next(), g2.Next()
		if r1.ID != r2.ID || r1.Items != r2.Items {
			t.Fatalf("request %d differs: %d/%d items %d/%d", i, r1.ID, r2.ID, r1.Items, r2.Items)
		}
		if r1.TotalLookups() != r2.TotalLookups() {
			t.Fatalf("request %d lookup counts differ", i)
		}
		for tid := range r1.Bags {
			b1, b2 := r1.Bags[tid], r2.Bags[tid]
			for it := range b1 {
				for k := range b1[it].Indices {
					if b1[it].Indices[k] != b2[it].Indices[k] {
						t.Fatalf("table %d item %d idx %d differs", tid, it, k)
					}
				}
			}
		}
	}
}

func TestGeneratorSeedsDiffer(t *testing.T) {
	cfg := model.DRM2()
	r1 := NewGenerator(cfg, 1).Next()
	r2 := NewGenerator(cfg, 2).Next()
	if r1.Items == r2.Items && r1.TotalLookups() == r2.TotalLookups() {
		t.Error("different seeds should produce different requests (vanishingly unlikely collision)")
	}
}

func TestRequestShape(t *testing.T) {
	cfg := model.DRM1()
	req := NewGenerator(cfg, 3).Next()
	if req.Items < 1 {
		t.Fatalf("Items = %d", req.Items)
	}
	if len(req.Dense) != 2 {
		t.Fatalf("DRM1 should have dense inputs for 2 nets, got %d", len(req.Dense))
	}
	for _, ns := range cfg.Nets {
		m := req.Dense[ns.Name]
		if m == nil || m.Rows != req.Items || m.Cols != ns.DenseDim {
			t.Errorf("dense input for %s has shape %v", ns.Name, m)
		}
	}
	if len(req.Bags) != len(cfg.Tables) {
		t.Fatalf("bags for %d tables, want %d", len(req.Bags), len(cfg.Tables))
	}
	for tid, bags := range req.Bags {
		if len(bags) != req.Items {
			t.Errorf("table %d has %d bags, want %d", tid, len(bags), req.Items)
		}
	}
}

func TestMeanItemsApproximatelyHonored(t *testing.T) {
	cfg := model.DRM1()
	g := NewGenerator(cfg, 11)
	var sum float64
	const n = 2000
	for i := 0; i < n; i++ {
		sum += float64(g.Next().Items)
	}
	gotMean := sum / n
	// Lognormal with median=MeanItems has mean e^{σ²/2}·MeanItems ≈ 1.11×.
	want := float64(cfg.MeanItems)
	if gotMean < want*0.9 || gotMean > want*1.4 {
		t.Errorf("mean items = %.2f, want near %v", gotMean, want)
	}
}

func TestPoolingMatchesSpec(t *testing.T) {
	cfg := model.DRM1()
	g := NewGenerator(cfg, 13)
	perReq := EstimatePooling(g, 300)
	// Total per-request lookups ≈ TotalPoolingPerItem × E[items].
	var total float64
	for _, v := range perReq {
		total += v
	}
	expected := cfg.TotalPoolingPerItem() * float64(cfg.MeanItems) * 1.11
	if total < expected*0.7 || total > expected*1.4 {
		t.Errorf("estimated per-request pooling %.0f, want near %.0f", total, expected)
	}
	if len(perReq) != len(cfg.Tables) {
		t.Errorf("pooling estimates for %d tables, want %d", len(perReq), len(cfg.Tables))
	}
}

func TestPerRequestFeatureShared(t *testing.T) {
	cfg := model.DRM3()
	g := NewGenerator(cfg, 5)
	for i := 0; i < 10; i++ {
		req := g.Next()
		bags := req.Bags[0] // the dominating per-user table
		if len(bags) != req.Items {
			t.Fatalf("bags len %d != items %d", len(bags), req.Items)
		}
		first := bags[0].Indices
		if len(first) != 1 {
			t.Fatalf("per-request feature should have exactly 1 ID, got %d", len(first))
		}
		for _, b := range bags {
			if len(b.Indices) != 1 || b.Indices[0] != first[0] {
				t.Fatal("per-request feature must be shared across items")
			}
		}
	}
}

func TestPoissonMoments(t *testing.T) {
	g := NewGenerator(model.DRM3(), 17)
	for _, mean := range []float64{0.3, 2, 8, 50} {
		var sum, ss float64
		const n = 5000
		for i := 0; i < n; i++ {
			x := float64(g.poisson(mean))
			sum += x
			ss += x * x
		}
		m := sum / n
		v := ss/n - m*m
		if math.Abs(m-mean) > mean*0.15+0.1 {
			t.Errorf("poisson(%v) mean = %v", mean, m)
		}
		if math.Abs(v-mean) > mean*0.3+0.2 {
			t.Errorf("poisson(%v) variance = %v, want ≈mean", mean, v)
		}
	}
	if g.poisson(0) != 0 || g.poisson(-1) != 0 {
		t.Error("non-positive mean should yield 0")
	}
}

func TestGenerateBatch(t *testing.T) {
	g := NewGenerator(model.DRM3(), 9)
	reqs := g.GenerateBatch(5)
	if len(reqs) != 5 {
		t.Fatalf("got %d requests", len(reqs))
	}
	for i, r := range reqs {
		if r.ID != uint64(i+1) {
			t.Errorf("request %d has ID %d", i, r.ID)
		}
	}
}

func TestDiurnalModulationChangesSizes(t *testing.T) {
	cfg := model.DRM1()
	plain := NewGenerator(cfg, 21)
	diurnal := NewGenerator(cfg, 21)
	diurnal.EnableDiurnal()
	differ := false
	for i := 0; i < 600; i++ {
		if plain.Next().Items != diurnal.Next().Items {
			differ = true
			break
		}
	}
	if !differ {
		t.Error("diurnal modulation should alter the request-size stream")
	}
}
