package kerneltest

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/embedding"
	"repro/internal/nn"
	"repro/internal/quant"
	"repro/internal/tensor"
)

// TestSLSCrossKernelIdentity runs the full SLS operator (whole-bag
// fast path for quantized tables, per-row path for dense) under both
// dispatch settings and demands bitwise-identical pooled outputs — the
// operator-level closure of the per-row decode property.
func TestSLSCrossKernelIdentity(t *testing.T) {
	defer tensor.SetKernel(tensor.KernelAuto)
	rng := rand.New(rand.NewSource(21))
	const rows, dim = 500, 19
	dense := embedding.NewDenseRandom(rng, rows, dim, 1)
	tables := map[string]embedding.Table{
		"dense": dense,
		"int8":  dense.Quantize(quant.Bits8),
		"int4":  dense.Quantize(quant.Bits4),
		"fp16":  dense.ToFP16(),
	}
	bags := make([]embedding.Bag, 12)
	for b := range bags {
		idx := make([]int32, rng.Intn(40))
		for i := range idx {
			idx[i] = int32(rng.Intn(rows))
		}
		bags[b] = embedding.Bag{Indices: idx}
	}
	for name, table := range tables {
		tensor.SetKernel(tensor.KernelGeneric)
		want := make([]float32, len(bags)*dim)
		embedding.SLS(want, table, bags)
		tensor.SetKernel(tensor.KernelVector)
		got := make([]float32, len(bags)*dim)
		embedding.SLS(got, table, bags)
		if i := DiffFloat32(got, want); i >= 0 {
			t.Fatalf("%s: element %d = %08x, want %08x",
				name, i, math.Float32bits(got[i]), math.Float32bits(want[i]))
		}
	}
}

// TestFusedFCCrossKernelIdentity runs the fused FC+activation op (the
// dense-stack building block, which rides the GEMM epilogue) under both
// dispatch settings, checking layer outputs bitwise.
func TestFusedFCCrossKernelIdentity(t *testing.T) {
	defer tensor.SetKernel(tensor.KernelAuto)
	rng := rand.New(rand.NewSource(8))
	p := Payloads()[1]
	w := RandMatrix(rng, 37, 23, p)
	bias := make([]float32, 23)
	p.Fill(rng, bias)
	in := RandMatrix(rng, 41, 37, p)

	run := func(k tensor.Kernel) *tensor.Matrix {
		tensor.SetKernel(k)
		ws := nn.NewWorkspace()
		ws.SetBlob("in", in.Clone())
		op := &nn.FusedFC{OpName: "ffc", W: w, B: bias, Act: nn.ActReLU, Input: "in", Output: "out"}
		if err := op.Run(ws); err != nil {
			t.Fatal(err)
		}
		out, _ := ws.Blob("out")
		return out
	}
	want := run(tensor.KernelGeneric)
	got := run(tensor.KernelVector)
	if i := DiffFloat32(got.Data, want.Data); i >= 0 {
		t.Fatalf("element %d = %08x, want %08x",
			i, math.Float32bits(got.Data[i]), math.Float32bits(want.Data[i]))
	}
}
