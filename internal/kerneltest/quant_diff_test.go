package kerneltest

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/quant"
	"repro/internal/tensor"
)

// adversarialHeaders returns fp16 (scale, bias) pairs covering every
// propagation class the decode arithmetic can hit: NaNs with distinct
// payloads (both-NaN adds resolve by x86 first-source order), ±Inf
// (code*Inf and Inf+bias produce invalid-op NaNs for zero codes),
// subnormals, signed zeros, and ordinary values.
func adversarialHeaders() [][2]uint16 {
	return [][2]uint16{
		{0x3c00, 0x0000}, // 1.0, +0
		{0x3c00, 0x8000}, // 1.0, -0
		{0x7e01, 0x3c00}, // NaN scale
		{0x3c00, 0x7e02}, // NaN bias
		{0x7e01, 0x7e02}, // distinct NaN payloads: both-NaN add
		{0x7c00, 0x3c00}, // +Inf scale: 0*Inf -> invalid-op NaN
		{0xfc00, 0x7c00}, // -Inf scale, +Inf bias: Inf-Inf
		{0x0001, 0x0001}, // subnormal scale and bias
		{0x8001, 0x3c00}, // negative subnormal scale
		{0x5640, 0xd640}, // 100, -100
	}
}

// packedRow fills a packed byte row; every byte value is a valid code
// for both widths (int4 reads each nibble separately).
func packedRow(rng *rand.Rand, n int) []byte {
	row := make([]byte, n)
	for i := range row {
		row[i] = byte(rng.Intn(256))
	}
	return row
}

// TestQuantDecodeDifferential compares the vector decode kernels
// against the scalar reference bitwise for both widths, across column
// counts covering every vector-body/tail split, with adversarial
// scale/bias headers, on dequantize, accumulate-row, and whole-bag
// paths.
func TestQuantDecodeDifferential(t *testing.T) {
	defer tensor.SetKernel(tensor.KernelAuto)
	rng := rand.New(rand.NewSource(42))
	for _, bits := range []quant.Bits{quant.Bits8, quant.Bits4} {
		for _, cols := range []int{1, 2, 3, 5, 7, 8, 9, 15, 16, 17, 23, 31, 32, 33, 64, 67} {
			for hi, hdr := range adversarialHeaders() {
				rows := 6
				stride := cols
				if bits == quant.Bits4 {
					stride = (cols + 1) / 2
				}
				scales := make([]uint16, rows)
				biases := make([]uint16, rows)
				packed := packedRow(rng, rows*stride)
				for r := 0; r < rows; r++ {
					scales[r], biases[r] = hdr[0], hdr[1]
				}
				q, err := quant.NewFromParts(rows, cols, bits, scales, biases, packed)
				if err != nil {
					t.Fatal(err)
				}

				// Accumulators pre-seeded with special values so the
				// acc += t add sees NaN/Inf on both sides.
				seed := make([]float32, cols)
				Payloads()[2].Fill(rng, seed)

				indices := make([]int32, 10)
				for i := range indices {
					indices[i] = int32(rng.Intn(rows))
				}

				type result struct{ deq, accRow, accBag []float32 }
				run := func(k tensor.Kernel) result {
					tensor.SetKernel(k)
					var res result
					res.deq = make([]float32, cols)
					q.DequantizeRowInto(res.deq, rows-1)
					res.accRow = append([]float32(nil), seed...)
					for r := 0; r < rows; r++ {
						q.AccumulateRow(res.accRow, r)
					}
					res.accBag = append([]float32(nil), seed...)
					q.AccumulateBag(res.accBag, indices)
					return res
				}
				want := run(tensor.KernelGeneric)
				got := run(tensor.KernelVector)
				for _, cmp := range []struct {
					name      string
					got, want []float32
				}{
					{"dequantize", got.deq, want.deq},
					{"accumulate-row", got.accRow, want.accRow},
					{"accumulate-bag", got.accBag, want.accBag},
				} {
					if i := DiffFloat32(cmp.got, cmp.want); i >= 0 {
						t.Fatalf("bits=%d cols=%d hdr=%d %s: element %d = %08x, want %08x",
							bits, cols, hi, cmp.name, i,
							math.Float32bits(cmp.got[i]), math.Float32bits(cmp.want[i]))
					}
				}
			}
		}
	}
}

// TestQuantDecodeUnalignedOffsets drives the word-wide decode through
// packed storage that begins at every byte offset mod 8, so the
// unaligned 8-byte loads (and the asm kernels' unaligned vector stores
// into the accumulator) see every misalignment class.
func TestQuantDecodeUnalignedOffsets(t *testing.T) {
	defer tensor.SetKernel(tensor.KernelAuto)
	rng := rand.New(rand.NewSource(11))
	const cols = 29
	for off := 0; off < 8; off++ {
		// rowStride(int8) = 29, deliberately odd: row r begins at byte
		// off + 29r, hitting varied alignments.
		rows := 8
		backing := make([]byte, off+rows*cols)
		copy(backing[off:], packedRow(rng, rows*cols))
		packed := backing[off : off+rows*cols]
		scales := make([]uint16, rows)
		biases := make([]uint16, rows)
		for r := 0; r < rows; r++ {
			scales[r], biases[r] = 0x3c01, 0xbc00
		}
		q, err := quant.NewFromParts(rows, cols, quant.Bits8, scales, biases, packed)
		if err != nil {
			t.Fatal(err)
		}
		for r := 0; r < rows; r++ {
			tensor.SetKernel(tensor.KernelGeneric)
			want := make([]float32, cols)
			q.AccumulateRow(want, r)
			tensor.SetKernel(tensor.KernelVector)
			got := make([]float32, cols)
			q.AccumulateRow(got, r)
			if i := DiffFloat32(got, want); i >= 0 {
				t.Fatalf("off=%d row=%d: element %d = %08x, want %08x",
					off, r, i, math.Float32bits(got[i]), math.Float32bits(want[i]))
			}
		}
	}
}

// TestQuantRoundTripQuantized runs the differential on genuinely
// quantized data (QuantizeRows output rather than synthetic headers),
// the path production tables take.
func TestQuantRoundTripQuantized(t *testing.T) {
	defer tensor.SetKernel(tensor.KernelAuto)
	rng := rand.New(rand.NewSource(5))
	for _, bits := range []quant.Bits{quant.Bits8, quant.Bits4} {
		const rows, cols = 40, 21
		data := make([]float32, rows*cols)
		for i := range data {
			data[i] = float32(rng.NormFloat64())
		}
		q := quant.QuantizeRows(data, rows, cols, bits)
		for r := 0; r < rows; r++ {
			tensor.SetKernel(tensor.KernelGeneric)
			want := make([]float32, cols)
			q.AccumulateRow(want, r)
			tensor.SetKernel(tensor.KernelVector)
			got := make([]float32, cols)
			q.AccumulateRow(got, r)
			if i := DiffFloat32(got, want); i >= 0 {
				t.Fatalf("bits=%d row=%d: element %d differs", bits, r, i)
			}
		}
	}
}
