//go:build linux

package kerneltest

import (
	"math"
	"math/rand"
	"os"
	"os/exec"
	"strings"
	"testing"
	"unsafe"

	"repro/internal/quant"
	"repro/internal/tensor"
)

// guardSink defeats dead-load elimination in the crash child: the
// over-read below must survive to execution, not be optimized away.
var guardSink float32

// TestGuardPageFaultsOnOverread proves the harness can actually catch
// anything: a child process reads one element past a guarded slice and
// must die on the fault. If this test ever observes the child
// surviving, the guard pages are decorative and every GuardPaged sweep
// below is vacuous.
func TestGuardPageFaultsOnOverread(t *testing.T) {
	if os.Getenv("KERNELTEST_GUARD_CRASH") == "1" {
		g, data := GuardedFloat32(8)
		defer g.Free()
		// The same stray load a buggy kernel would issue: one element
		// past the end of the slice, which is the first byte of the
		// PROT_NONE page.
		p := (*float32)(unsafe.Add(unsafe.Pointer(&data[0]), len(data)*4))
		guardSink = *p
		os.Exit(0) // unreachable if the guard works
	}
	cmd := exec.Command(os.Args[0], "-test.run=TestGuardPageFaultsOnOverread$", "-test.v")
	cmd.Env = append(os.Environ(), "KERNELTEST_GUARD_CRASH=1")
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("over-read of a guarded slice did not fault:\n%s", out)
	}
	if s := string(out); !strings.Contains(s, "SIGSEGV") && !strings.Contains(s, "fault") {
		t.Fatalf("child died but not from the guard page: %v\n%s", err, s)
	}
}

// guardedMatrix builds a rows×cols matrix whose Data ends flush against
// a guard page.
func guardedMatrix(t *testing.T, rng *rand.Rand, rows, cols int, p Payload) *tensor.Matrix {
	t.Helper()
	g, data := GuardedFloat32(rows * cols)
	t.Cleanup(g.Free)
	p.Fill(rng, data)
	return tensor.FromSlice(rows, cols, data)
}

// TestGEMMGuardPaged runs the full adversarial shape sweep with every
// operand — a, b, and dst — flush against a guard page, under both
// kernels and both the serial and parallel paths. A vector body or tail
// that loads past a row end faults here; results are still checked
// against the oracle so short reads (not just over-reads) show up too.
func TestGEMMGuardPaged(t *testing.T) {
	defer resetDispatch()
	rng := rand.New(rand.NewSource(99))
	p := Payloads()[0]
	for _, s := range GEMMShapes() {
		a := guardedMatrix(t, rng, s.M, s.K, p)
		b := guardedMatrix(t, rng, s.K, s.N, p)
		want := tensor.New(s.M, s.N)
		RefMatMul(want, a, b)
		dst := guardedMatrix(t, rng, s.M, s.N, p)
		for _, kern := range Kernels() {
			for _, par := range []int{1, 3} {
				tensor.SetKernel(kern)
				tensor.SetParallelism(par)
				for i := range dst.Data {
					dst.Data[i] = float32(math.NaN()) // dirty dst
				}
				tensor.MatMul(dst, a, b)
				if i := DiffFloat32(dst.Data, want.Data); i >= 0 {
					t.Fatalf("shape=%dx%dx%d kern=%v par=%d: element %d = %08x, want %08x",
						s.M, s.K, s.N, kern, par, i,
						math.Float32bits(dst.Data[i]), math.Float32bits(want.Data[i]))
				}
			}
		}
	}
}

// TestQuantGuardPaged runs the decode sweep with the packed codes, the
// fp16 headers, and the caller-provided accumulator all guard-paged,
// for both widths across every vector-body/tail split. The int4 path is
// the sharpest edge: an odd column count's final nibble shares its byte
// with nothing, so a decoder that rounds the row stride up reads the
// guard.
func TestQuantGuardPaged(t *testing.T) {
	defer tensor.SetKernel(tensor.KernelAuto)
	rng := rand.New(rand.NewSource(7))
	for _, bits := range []quant.Bits{quant.Bits8, quant.Bits4} {
		for _, cols := range []int{1, 2, 3, 5, 7, 8, 9, 15, 16, 17, 23, 31, 32, 33, 64, 67} {
			rows := 6
			stride := cols
			if bits == quant.Bits4 {
				stride = (cols + 1) / 2
			}
			gp, packed := GuardedBytes(rows * stride)
			gs, scales := GuardedUint16(rows)
			gb, biases := GuardedUint16(rows)
			for i := range packed {
				packed[i] = byte(rng.Intn(256))
			}
			for r := 0; r < rows; r++ {
				scales[r], biases[r] = 0x3c00, 0x4000 // 1.0, 2.0
			}
			q, err := quant.NewFromParts(rows, cols, bits, scales, biases, packed)
			if err != nil {
				t.Fatal(err)
			}
			indices := make([]int32, 10)
			for i := range indices {
				indices[i] = int32(rng.Intn(rows))
			}

			type result struct{ deq, accRow, accBag []float32 }
			run := func(k tensor.Kernel) result {
				tensor.SetKernel(k)
				var res result
				gd, deq := GuardedFloat32(cols)
				defer gd.Free()
				q.DequantizeRowInto(deq, rows-1)
				res.deq = append([]float32(nil), deq...)
				ga, acc := GuardedFloat32(cols)
				defer ga.Free()
				for r := 0; r < rows; r++ {
					q.AccumulateRow(acc, r)
				}
				res.accRow = append([]float32(nil), acc...)
				gg, bag := GuardedFloat32(cols)
				defer gg.Free()
				q.AccumulateBag(bag, indices)
				res.accBag = append([]float32(nil), bag...)
				return res
			}
			gen := run(tensor.KernelGeneric)
			vec := run(tensor.KernelVector)
			for _, cmp := range []struct {
				name      string
				got, want []float32
			}{
				{"dequantize", vec.deq, gen.deq},
				{"accumulate-row", vec.accRow, gen.accRow},
				{"accumulate-bag", vec.accBag, gen.accBag},
			} {
				if i := DiffFloat32(cmp.got, cmp.want); i >= 0 {
					t.Fatalf("bits=%d cols=%d %s: element %d = %08x, want %08x",
						bits, cols, cmp.name, i,
						math.Float32bits(cmp.got[i]), math.Float32bits(cmp.want[i]))
				}
			}
			gp.Free()
			gs.Free()
			gb.Free()
		}
	}
}
