// Package kerneltest is the differential kernel-test harness: the
// machinery that proves the hand-vectorized kernels behind
// tensor.SetKernel are safe to dispatch to. Every dispatched hot loop
// promises bitwise-identical results to its generic reference at every
// shape and payload; this package supplies the adversarial inputs that
// make violations visible — odd and prime dimensions, sub-block tails,
// zero-size operands, unaligned slice offsets, and NaN/Inf/denormal
// payloads whose propagation depends on exact instruction operand order
// — plus independent reference implementations to compare against. The
// tests in this package sweep the full parallelism × block × dispatch
// cross-product; CI additionally re-runs the kernel-owning packages
// once per forced REPRO_KERNEL setting.
//
// The harness keeps its own GEMM oracle (RefMatMul) rather than
// importing one from internal/tensor, so a bug introduced into the
// tensor package's reference path cannot silently re-tune the
// expectation it is compared to.
package kerneltest

import (
	"math"
	"math/rand"

	"repro/internal/tensor"
)

// Shape is one GEMM problem size: dst is M×N, a is M×K, b is K×N.
type Shape struct{ M, K, N int }

// GEMMShapes returns the adversarial shape sweep. Alongside ordinary
// sizes it covers every boundary class the blocked engine has: zero
// dimensions (empty dst, and the k=0 case where dst must still be
// zeroed), single elements, primes that straddle the 4-row micro-kernel
// and 8/4-wide axpy bodies with every tail length, exact tile and panel
// boundaries, and one size large enough to take the parallel path.
func GEMMShapes() []Shape {
	return []Shape{
		{0, 4, 4}, {4, 0, 4}, {4, 4, 0}, {0, 0, 0},
		{1, 1, 1}, {1, 2, 1}, {2, 1, 2},
		{3, 5, 7}, {5, 7, 3}, {7, 3, 5},
		{4, 4, 8}, {4, 4, 9}, {5, 4, 8}, // micro-kernel row groups ± 1
		{13, 17, 11}, {17, 31, 13}, // primes, all tails
		{16, 64, 64}, {17, 64, 65}, // one tile, one tile + 1
		{8, 16, 512}, {8, 16, 513}, // column-panel boundary ± 1
		{6, 512, 16}, {6, 515, 16}, // k-panel boundary ± 3
		{64, 96, 33}, // parallel path, odd columns
	}
}

// Payload names one float32 fill strategy for differential inputs.
type Payload struct {
	Name string
	Fill func(rng *rand.Rand, dst []float32)
}

// Payloads returns the payload classes the differential tests sweep.
// The special-value class deliberately mixes distinct NaN payloads:
// x86 returns the first source operand when both inputs of a mul/add
// are NaN, so two kernels that disagree on operand order produce
// different bit patterns here and nowhere else.
func Payloads() []Payload {
	return []Payload{
		{"normal", func(rng *rand.Rand, dst []float32) {
			for i := range dst {
				dst[i] = float32(rng.NormFloat64())
			}
		}},
		{"sparse", func(rng *rand.Rand, dst []float32) {
			for i := range dst {
				if rng.Intn(3) == 0 {
					dst[i] = 0
				} else {
					dst[i] = float32(rng.NormFloat64())
				}
			}
		}},
		{"special", func(rng *rand.Rand, dst []float32) {
			for i := range dst {
				switch rng.Intn(8) {
				case 0:
					dst[i] = float32(math.NaN())
				case 1:
					// Distinct quiet-NaN payloads expose operand-order bugs.
					dst[i] = math.Float32frombits(0x7fc00000 | uint32(rng.Intn(1<<20)))
				case 2:
					dst[i] = float32(math.Inf(1))
				case 3:
					dst[i] = float32(math.Inf(-1))
				case 4:
					// Subnormals: catches kernels that flush to zero.
					dst[i] = math.Float32frombits(uint32(rng.Intn(1<<23-1) + 1))
				case 5:
					dst[i] = math.Float32frombits(0x80000000) // -0
				case 6:
					dst[i] = 0
				default:
					dst[i] = float32(rng.NormFloat64())
				}
			}
		}},
	}
}

// RandMatrix builds an M×K matrix with the payload's fill.
func RandMatrix(rng *rand.Rand, rows, cols int, p Payload) *tensor.Matrix {
	m := tensor.New(rows, cols)
	p.Fill(rng, m.Data)
	return m
}

// UnalignedMatrix builds a matrix whose Data begins at a deliberately
// odd element offset inside a larger backing array, so its base pointer
// is 4-byte but not 16/32-byte aligned — the layout the vector kernels'
// unaligned loads must handle.
func UnalignedMatrix(rng *rand.Rand, rows, cols, offset int, p Payload) *tensor.Matrix {
	backing := make([]float32, offset+rows*cols)
	data := backing[offset : offset+rows*cols]
	p.Fill(rng, data)
	return tensor.FromSlice(rows, cols, data)
}

// refMul and refAcc make the oracle's both-NaN outcomes explicit. When
// exactly one operand of an x86 mul/add is NaN the result payload is
// that NaN regardless of operand order, but when BOTH are NaN the
// first-source operand wins — and which expression operand the Go
// compiler puts in the first-source slot is a per-site, per-build-mode
// accident (the -race build of this very file flipped a plain
// `d += av*bv` loop's choice). The production kernels' behavior is
// fixed — the multiply propagates bv, the accumulate propagates the
// product — so the oracle encodes those two rules as branches instead
// of trusting its own compilation.
func refMul(av, bv float32) float32 {
	if av != av && bv != bv {
		return bv
	}
	return av * bv
}

func refAcc(d, t float32) float32 {
	if d != d && t != t {
		return t
	}
	return d + t
}

// RefMatMul is the harness's independent GEMM oracle: per dst element
// one accumulator summed over k strictly ascending, skipping a-values
// that are zero (which preserves NaN/Inf columns exactly as the engine
// contract specifies: a zero a-element contributes nothing, not 0*b).
func RefMatMul(dst, a, b *tensor.Matrix) {
	n := b.Cols
	k := a.Cols
	for i := 0; i < a.Rows; i++ {
		arow := a.Data[i*k : (i+1)*k]
		drow := dst.Data[i*n : (i+1)*n]
		for j := range drow {
			drow[j] = 0
		}
		for p := 0; p < k; p++ {
			av := arow[p]
			if av == 0 {
				continue
			}
			brow := b.Data[p*n : (p+1)*n]
			for j := range brow {
				drow[j] = refAcc(drow[j], refMul(av, brow[j]))
			}
		}
	}
}

// DiffFloat32 returns the index of the first bitwise difference between
// got and want, or -1 if they are identical. Lengths must match; a
// length mismatch reports index len(want).
func DiffFloat32(got, want []float32) int {
	if len(got) != len(want) {
		return len(want)
	}
	for i := range want {
		if math.Float32bits(got[i]) != math.Float32bits(want[i]) {
			return i
		}
	}
	return -1
}

// Kernels returns both forced dispatch settings, the axis every
// differential test sweeps.
func Kernels() []tensor.Kernel {
	return []tensor.Kernel{tensor.KernelGeneric, tensor.KernelVector}
}
