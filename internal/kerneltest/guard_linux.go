//go:build linux

package kerneltest

import (
	"syscall"
	"unsafe"
)

// Guarded is one mmap-backed allocation whose usable region ends flush
// against a PROT_NONE guard page. A kernel that loads even one byte
// past the end of a slice handed out here faults immediately and
// deterministically, instead of silently reading whatever heap object
// the Go allocator happened to place next — which is how an
// out-of-bounds vector load in the asm kernels would otherwise stay
// invisible as long as the stray values get masked or multiplied away.
type Guarded struct {
	mapping []byte
}

// newGuarded maps enough whole pages for n usable bytes plus one guard
// page, arms the guard with PROT_NONE, and returns the n bytes that end
// exactly at the guard boundary.
func newGuarded(n int) (*Guarded, []byte, error) {
	page := syscall.Getpagesize()
	pages := (n + page - 1) / page
	if pages == 0 {
		pages = 1
	}
	total := (pages + 1) * page
	m, err := syscall.Mmap(-1, 0, total,
		syscall.PROT_READ|syscall.PROT_WRITE,
		syscall.MAP_ANON|syscall.MAP_PRIVATE)
	if err != nil {
		return nil, nil, err
	}
	if err := syscall.Mprotect(m[pages*page:], syscall.PROT_NONE); err != nil {
		_ = syscall.Munmap(m)
		return nil, nil, err
	}
	return &Guarded{mapping: m}, m[pages*page-n : pages*page], nil
}

// Free unmaps the region (guard page included). The slices handed out
// by the Guarded* constructors are dead after Free.
func (g *Guarded) Free() {
	if g == nil || g.mapping == nil {
		return
	}
	_ = syscall.Munmap(g.mapping)
	g.mapping = nil
}

// GuardedOf returns an n-element slice of T whose last element ends
// flush against a PROT_NONE page. The base pointer is aligned only to
// the element size — the same 4-byte-but-not-vector alignment class
// UnalignedMatrix exercises. n must be non-negative; n == 0 returns an
// empty (but valid) slice one byte short of the guard.
func GuardedOf[T any](n int) (*Guarded, []T) {
	size := int(unsafe.Sizeof(*new(T)))
	g, raw, err := newGuarded(n * size)
	if err != nil {
		panic("kerneltest: guard mmap failed: " + err.Error())
	}
	if n == 0 {
		return g, []T{}
	}
	return g, unsafe.Slice((*T)(unsafe.Pointer(&raw[0])), n)
}

// GuardedFloat32 is GuardedOf[float32]: the operand type of the GEMM
// and decode-accumulate kernels.
func GuardedFloat32(n int) (*Guarded, []float32) { return GuardedOf[float32](n) }

// GuardedBytes is GuardedOf[byte]: packed quantized row storage.
func GuardedBytes(n int) (*Guarded, []byte) { return GuardedOf[byte](n) }

// GuardedUint16 is GuardedOf[uint16]: fp16 scale/bias headers.
func GuardedUint16(n int) (*Guarded, []uint16) { return GuardedOf[uint16](n) }
