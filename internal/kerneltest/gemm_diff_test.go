package kerneltest

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

// resetDispatch restores every tensor knob the sweeps touch.
func resetDispatch() {
	tensor.SetKernel(tensor.KernelAuto)
	tensor.SetParallelism(0)
	tensor.SetBlockRows(0)
}

// TestGEMMDifferential is the core differential property: for every
// adversarial shape × payload class, MatMul under every kernel ×
// parallelism × block-rows setting is bitwise identical to the
// harness oracle. The special payload class carries distinct-payload
// NaNs, ±Inf, subnormals, and -0, so an asm kernel whose multiply or
// add operand order differs from the generic kernel's fails here.
func TestGEMMDifferential(t *testing.T) {
	defer resetDispatch()
	rng := rand.New(rand.NewSource(1234))
	for _, p := range Payloads() {
		for _, s := range GEMMShapes() {
			a := RandMatrix(rng, s.M, s.K, p)
			b := RandMatrix(rng, s.K, s.N, p)
			want := tensor.New(s.M, s.N)
			RefMatMul(want, a, b)
			for _, kern := range Kernels() {
				for _, par := range []int{1, 3} {
					for _, block := range []int{0, 1, 7} {
						tensor.SetKernel(kern)
						tensor.SetParallelism(par)
						tensor.SetBlockRows(block)
						got := tensor.New(s.M, s.N)
						for i := range got.Data {
							got.Data[i] = float32(math.NaN()) // dirty dst
						}
						tensor.MatMul(got, a, b)
						if i := DiffFloat32(got.Data, want.Data); i >= 0 {
							t.Fatalf("payload=%s shape=%dx%dx%d kern=%v par=%d block=%d: element %d = %08x, want %08x",
								p.Name, s.M, s.K, s.N, kern, par, block, i,
								math.Float32bits(got.Data[i]), math.Float32bits(want.Data[i]))
						}
					}
				}
			}
		}
	}
}

// TestGEMMDifferentialUnaligned re-runs the differential on operands
// whose backing slices start at odd element offsets, so the vector
// kernels see base pointers with every 4-byte-aligned misalignment
// class relative to 16/32-byte vector widths.
func TestGEMMDifferentialUnaligned(t *testing.T) {
	defer resetDispatch()
	rng := rand.New(rand.NewSource(77))
	p := Payloads()[2] // special values
	for _, off := range []int{1, 2, 3, 5, 7} {
		s := Shape{M: 9, K: 23, N: 21}
		a := UnalignedMatrix(rng, s.M, s.K, off, p)
		b := UnalignedMatrix(rng, s.K, s.N, off, p)
		want := tensor.New(s.M, s.N)
		RefMatMul(want, a, b)
		for _, kern := range Kernels() {
			tensor.SetKernel(kern)
			got := UnalignedMatrix(rng, s.M, s.N, off, p) // dirty, unaligned dst
			tensor.MatMul(got, a, b)
			if i := DiffFloat32(got.Data, want.Data); i >= 0 {
				t.Fatalf("off=%d kern=%v: element %d = %08x, want %08x",
					off, kern, i, math.Float32bits(got.Data[i]), math.Float32bits(want.Data[i]))
			}
		}
	}
}

// TestGEMMEpilogueDifferential checks the fused-epilogue entry point
// under both kernels: epilogue fusion must not change the GEMM bits it
// runs on, and the epilogue must observe fully-written rows.
func TestGEMMEpilogueDifferential(t *testing.T) {
	defer resetDispatch()
	rng := rand.New(rand.NewSource(31))
	p := Payloads()[1]
	a := RandMatrix(rng, 33, 29, p)
	b := RandMatrix(rng, 29, 27, p)
	bias := make([]float32, 27)
	p.Fill(rng, bias)

	want := tensor.New(33, 27)
	RefMatMul(want, a, b)
	for r := 0; r < 33; r++ {
		row := want.Row(r)
		for c := range row {
			row[c] += bias[c]
		}
	}

	for _, kern := range Kernels() {
		for _, par := range []int{1, 4} {
			tensor.SetKernel(kern)
			tensor.SetParallelism(par)
			got := tensor.New(33, 27)
			tensor.MatMulEpilogue(got, a, b, func(i0, i1 int) {
				for r := i0; r < i1; r++ {
					row := got.Row(r)
					for c := range row {
						row[c] += bias[c]
					}
				}
			})
			if i := DiffFloat32(got.Data, want.Data); i >= 0 {
				t.Fatalf("kern=%v par=%d: element %d = %08x, want %08x",
					kern, par, i, math.Float32bits(got.Data[i]), math.Float32bits(want.Data[i]))
			}
		}
	}
}

// TestGEMMCrossKernelSweep pins generic-vs-vector identity (rather than
// oracle identity) over a dense sweep of small shapes, catching any
// tail-length regression in the micro-kernel dispatch seams.
func TestGEMMCrossKernelSweep(t *testing.T) {
	defer resetDispatch()
	rng := rand.New(rand.NewSource(6))
	p := Payloads()[2]
	for m := 1; m <= 6; m++ {
		for k := 1; k <= 6; k++ {
			for n := 1; n <= 10; n++ {
				a := RandMatrix(rng, m, k, p)
				b := RandMatrix(rng, k, n, p)
				tensor.SetKernel(tensor.KernelGeneric)
				want := tensor.New(m, n)
				tensor.MatMul(want, a, b)
				tensor.SetKernel(tensor.KernelVector)
				got := tensor.New(m, n)
				tensor.MatMul(got, a, b)
				if i := DiffFloat32(got.Data, want.Data); i >= 0 {
					t.Fatalf("%s: element %d = %08x, want %08x",
						fmt.Sprintf("%dx%dx%d", m, k, n), i,
						math.Float32bits(got.Data[i]), math.Float32bits(want.Data[i]))
				}
			}
		}
	}
}
