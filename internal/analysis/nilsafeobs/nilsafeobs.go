// Package nilsafeobs enforces the obs handle contract: a nil
// *Counter/*Gauge/*Histogram/*Registry must be a safe no-op, so
// instrumented code can run with telemetry off without branching.
//
// Handle types are discovered structurally: every exported type T that
// some exported function or method hands out as *T (NewRegistry,
// Registry.Counter, …). For each exported pointer-receiver method on a
// handle type, the analyzer proves the receiver is never dereferenced
// while possibly nil:
//
//   - a leading `if r == nil { return … }` guard (possibly combined
//     with other conditions by ||) makes the rest of the method safe;
//   - a call to a nil predicate — a method like Discarding whose body
//     is `return r == nil || …` — counts as a guard too;
//   - short-circuit forms are understood: `r == nil || X` protects X,
//     `r != nil && X` protects X, and an if-body entered under an
//     `r != nil` conjunct is protected;
//   - delegation to other nil-safe methods of the same type is safe
//     (Inc calling Add), computed to a fixed point.
//
// Anything else that touches a field, embedded lock, or value-receiver
// method before a guard is reported.
package nilsafeobs

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the nil-safe-handle checker.
var Analyzer = &analysis.Analyzer{
	Name: "nilsafeobs",
	Doc:  "exported methods on handle types handed out as pointers must be nil-receiver-safe",
	Run:  run,
}

// method pairs one pointer-receiver method's syntax with its receiver
// object and type name.
type method struct {
	decl     *ast.FuncDecl
	typeName string
	recv     types.Object // nil when the receiver is unnamed
}

func run(pass *analysis.Pass) error {
	methods := collectPointerMethods(pass)
	handles := handleTypes(pass)
	if len(handles) == 0 {
		return nil
	}

	safe := make(map[*method]bool, len(methods))
	byType := make(map[string]map[string]*method)
	for _, m := range methods {
		safe[m] = true
		tm := byType[m.typeName]
		if tm == nil {
			tm = make(map[string]*method)
			byType[m.typeName] = tm
		}
		tm[m.decl.Name.Name] = m
	}
	preds := nilPredicates(pass, methods)

	// Fixed point: assume every method safe, then strike out methods
	// that dereference an unguarded receiver — including via delegation
	// to a method that has itself been struck out.
	c := &checker{pass: pass, safe: safe, byType: byType, preds: preds}
	for changed := true; changed; {
		changed = false
		for _, m := range methods {
			if !safe[m] {
				continue
			}
			if !c.methodSafe(m) {
				safe[m] = false
				changed = true
			}
		}
	}

	for _, m := range methods {
		if safe[m] || !handles[m.typeName] || !m.decl.Name.IsExported() {
			continue
		}
		pass.Report(analysis.Diagnostic{Pos: m.decl.Name.Pos(),
			Message: "exported method (*" + m.typeName + ")." + m.decl.Name.Name +
				" on nil-safe handle type dereferences the receiver before a nil guard"})
	}
	return nil
}

// collectPointerMethods gathers every pointer-receiver method declared
// in the package.
func collectPointerMethods(pass *analysis.Pass) []*method {
	var out []*method
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || len(fd.Recv.List) != 1 || fd.Body == nil {
				continue
			}
			star, ok := fd.Recv.List[0].Type.(*ast.StarExpr)
			if !ok {
				continue
			}
			base := star.X
			if idx, ok := base.(*ast.IndexExpr); ok { // generic receiver
				base = idx.X
			}
			tn, ok := base.(*ast.Ident)
			if !ok {
				continue
			}
			m := &method{decl: fd, typeName: tn.Name}
			if names := fd.Recv.List[0].Names; len(names) == 1 && names[0].Name != "_" {
				m.recv = pass.Info.Defs[names[0]]
			}
			out = append(out, m)
		}
	}
	return out
}

// handleTypes returns the names of exported types that some exported
// function or method in the package returns as a pointer.
func handleTypes(pass *analysis.Pass) map[string]bool {
	out := make(map[string]bool)
	record := func(ft *ast.FuncType) {
		if ft.Results == nil {
			return
		}
		for _, res := range ft.Results.List {
			star, ok := res.Type.(*ast.StarExpr)
			if !ok {
				continue
			}
			if id, ok := star.X.(*ast.Ident); ok && id.IsExported() {
				if _, isType := pass.Info.Uses[id].(*types.TypeName); isType {
					out[id.Name] = true
				}
			}
		}
	}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.IsExported() {
				record(fd.Type)
			}
		}
	}
	return out
}

// nilPredicates finds methods whose body is a single
// `return r == nil || …` — callable on a nil receiver and guaranteed
// true when it is nil, so `if r.P() { return }` is a guard.
func nilPredicates(pass *analysis.Pass, methods []*method) map[types.Object]bool {
	out := make(map[types.Object]bool)
	for _, m := range methods {
		if m.recv == nil || len(m.decl.Body.List) != 1 {
			continue
		}
		ret, ok := m.decl.Body.List[0].(*ast.ReturnStmt)
		if !ok || len(ret.Results) != 1 {
			continue
		}
		if disjunctIsNilTest(pass, ret.Results[0], m.recv) {
			out[pass.Info.Defs[m.decl.Name]] = true
		}
	}
	return out
}

// disjunctIsNilTest reports whether expr, viewed as a ||-chain, begins
// with `recv == nil` (so evaluating it on a nil receiver is safe and
// yields true).
func disjunctIsNilTest(pass *analysis.Pass, e ast.Expr, recv types.Object) bool {
	e = unparen(e)
	if b, ok := e.(*ast.BinaryExpr); ok {
		switch b.Op {
		case token.LOR:
			return disjunctIsNilTest(pass, b.X, recv)
		case token.EQL:
			return isRecvNilComparison(pass, b, recv)
		}
	}
	return false
}

// checker evaluates one method's receiver-dereference safety.
type checker struct {
	pass   *analysis.Pass
	safe   map[*method]bool
	byType map[string]map[string]*method
	preds  map[types.Object]bool
}

// methodSafe reports whether the method never dereferences a
// possibly-nil receiver.
func (c *checker) methodSafe(m *method) bool {
	if m.recv == nil {
		return true
	}
	return c.scanStmts(m, m.decl.Body.List)
}

// scanStmts walks top-level statements in order until a guard ends the
// possibly-nil region, a return ends the function, or a dereference is
// found. Returns false on an unguarded dereference.
func (c *checker) scanStmts(m *method, stmts []ast.Stmt) bool {
	for _, s := range stmts {
		switch s := s.(type) {
		case *ast.IfStmt:
			if s.Init != nil && !c.stmtClean(m, s.Init, false) {
				return false
			}
			if c.isGuard(m, s) {
				return true
			}
			if !c.exprClean(m, s.Cond, false) {
				return false
			}
			protected := condHasNonNilConjunct(c.pass, s.Cond, m.recv)
			if !protected && !c.scanBlockClean(m, s.Body) {
				return false
			}
			if s.Else != nil && !c.stmtClean(m, s.Else, false) {
				return false
			}
		case *ast.ReturnStmt:
			for _, r := range s.Results {
				if !c.exprClean(m, r, false) {
					return false
				}
			}
			return true
		default:
			if !c.stmtClean(m, s, false) {
				return false
			}
		}
	}
	return true
}

// isGuard reports whether the if-statement establishes the receiver is
// non-nil afterwards: its condition is true whenever the receiver is
// nil (an `r == nil` or nil-predicate disjunct, with only deref-free
// disjuncts evaluated before it), and its body terminates without
// dereferencing.
func (c *checker) isGuard(m *method, s *ast.IfStmt) bool {
	if !c.guardCond(m, s.Cond) {
		return false
	}
	if !c.scanBlockClean(m, s.Body) {
		return false
	}
	return blockTerminates(s.Body)
}

// guardCond walks the ||-chain: true if some disjunct tests the
// receiver for nil (directly or via a nil predicate), and no disjunct
// evaluated before it dereferences.
func (c *checker) guardCond(m *method, e ast.Expr) bool {
	for _, d := range disjuncts(e) {
		if isRecvNilComparison(c.pass, unparen(d), m.recv) || c.isNilPredicateCall(m, d) {
			return true
		}
		if !c.exprClean(m, d, false) {
			return false
		}
	}
	return false
}

// isNilPredicateCall matches `r.P()` where P is a nil predicate.
func (c *checker) isNilPredicateCall(m *method, e ast.Expr) bool {
	call, ok := unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !c.isRecv(sel.X, m.recv) {
		return false
	}
	return c.preds[c.pass.Info.Uses[sel.Sel]]
}

// stmtClean checks a statement (and everything nested) for unguarded
// receiver dereferences. Function literals are skipped: a closure runs
// later, under its own reasoning.
func (c *checker) stmtClean(m *method, s ast.Stmt, protected bool) bool {
	clean := true
	ast.Inspect(s, func(n ast.Node) bool {
		if !clean {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case ast.Expr:
			if !c.exprClean(m, n, protected) {
				clean = false
			}
			return false // exprClean recursed already
		}
		return true
	})
	return clean
}

// scanBlockClean checks a block's statements for dereferences.
func (c *checker) scanBlockClean(m *method, b *ast.BlockStmt) bool {
	for _, s := range b.List {
		if !c.stmtClean(m, s, false) {
			return false
		}
	}
	return true
}

// exprClean reports whether evaluating e cannot dereference a nil
// receiver. protected means the receiver is known non-nil here.
func (c *checker) exprClean(m *method, e ast.Expr, protected bool) bool {
	if e == nil {
		return true
	}
	switch e := e.(type) {
	case *ast.ParenExpr:
		return c.exprClean(m, e.X, protected)
	case *ast.Ident, *ast.BasicLit:
		return true
	case *ast.SelectorExpr:
		if c.isRecv(e.X, m.recv) {
			return protected // bare field access or method value
		}
		return c.exprClean(m, e.X, protected)
	case *ast.StarExpr:
		if c.isRecv(e.X, m.recv) {
			return protected
		}
		return c.exprClean(m, e.X, protected)
	case *ast.CallExpr:
		if sel, ok := unparen(e.Fun).(*ast.SelectorExpr); ok && c.isRecv(sel.X, m.recv) {
			// r.M(args): safe iff M is a (currently) nil-safe
			// pointer-receiver method of the same type.
			if !protected && !c.calleeNilSafe(m, sel.Sel) {
				return false
			}
		} else if !c.exprClean(m, e.Fun, protected) {
			return false
		}
		for _, a := range e.Args {
			if !c.exprClean(m, a, protected) {
				return false
			}
		}
		return true
	case *ast.BinaryExpr:
		switch e.Op {
		case token.LOR:
			if !c.exprClean(m, e.X, protected) {
				return false
			}
			// r == nil || X: X only evaluates when r != nil.
			if disjunctIsNilTest(c.pass, e.X, m.recv) {
				protected = true
			}
			return c.exprClean(m, e.Y, protected)
		case token.LAND:
			if !c.exprClean(m, e.X, protected) {
				return false
			}
			if condHasNonNilConjunct(c.pass, e.X, m.recv) {
				protected = true
			}
			return c.exprClean(m, e.Y, protected)
		}
		return c.exprClean(m, e.X, protected) && c.exprClean(m, e.Y, protected)
	case *ast.UnaryExpr:
		return c.exprClean(m, e.X, protected)
	case *ast.IndexExpr:
		return c.exprClean(m, e.X, protected) && c.exprClean(m, e.Index, protected)
	case *ast.SliceExpr:
		return c.exprClean(m, e.X, protected) && c.exprClean(m, e.Low, protected) &&
			c.exprClean(m, e.High, protected) && c.exprClean(m, e.Max, protected)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			if !c.exprClean(m, el, protected) {
				return false
			}
		}
		return true
	case *ast.KeyValueExpr:
		return c.exprClean(m, e.Key, protected) && c.exprClean(m, e.Value, protected)
	case *ast.TypeAssertExpr:
		return c.exprClean(m, e.X, protected)
	case *ast.FuncLit:
		return true // runs later; not this method's nil region
	default:
		// Conservative fallback: any receiver mention under an unknown
		// expression kind counts as a dereference.
		clean := true
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && m.recv != nil && c.pass.Info.Uses[id] == m.recv {
				clean = protected
			}
			return clean
		})
		return clean
	}
}

// calleeNilSafe reports whether sel names a same-type pointer-receiver
// method currently considered nil-safe.
func (c *checker) calleeNilSafe(m *method, sel *ast.Ident) bool {
	callee := c.byType[m.typeName][sel.Name]
	return callee != nil && c.safe[callee]
}

func (c *checker) isRecv(e ast.Expr, recv types.Object) bool {
	id, ok := unparen(e).(*ast.Ident)
	return ok && recv != nil && c.pass.Info.Uses[id] == recv
}

// --- small syntax helpers ---

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// disjuncts flattens a ||-chain in evaluation order.
func disjuncts(e ast.Expr) []ast.Expr {
	e = unparen(e)
	if b, ok := e.(*ast.BinaryExpr); ok && b.Op == token.LOR {
		return append(disjuncts(b.X), disjuncts(b.Y)...)
	}
	return []ast.Expr{e}
}

// conjuncts flattens a &&-chain in evaluation order.
func conjuncts(e ast.Expr) []ast.Expr {
	e = unparen(e)
	if b, ok := e.(*ast.BinaryExpr); ok && b.Op == token.LAND {
		return append(conjuncts(b.X), conjuncts(b.Y)...)
	}
	return []ast.Expr{e}
}

// isRecvNilComparison matches `recv == nil` / `nil == recv`.
func isRecvNilComparison(pass *analysis.Pass, e ast.Expr, recv types.Object) bool {
	b, ok := unparen(e).(*ast.BinaryExpr)
	if !ok || b.Op != token.EQL {
		return false
	}
	return recvAndNil(pass, b.X, b.Y, recv) || recvAndNil(pass, b.Y, b.X, recv)
}

// condHasNonNilConjunct reports whether cond, viewed as a &&-chain,
// contains a `recv != nil` conjunct — entering the guarded region
// implies the receiver is non-nil.
func condHasNonNilConjunct(pass *analysis.Pass, cond ast.Expr, recv types.Object) bool {
	for _, cj := range conjuncts(cond) {
		if b, ok := unparen(cj).(*ast.BinaryExpr); ok && b.Op == token.NEQ {
			if recvAndNil(pass, b.X, b.Y, recv) || recvAndNil(pass, b.Y, b.X, recv) {
				return true
			}
		}
	}
	return false
}

func recvAndNil(pass *analysis.Pass, a, b ast.Expr, recv types.Object) bool {
	id, ok := unparen(a).(*ast.Ident)
	if !ok || recv == nil || pass.Info.Uses[id] != recv {
		return false
	}
	nid, ok := unparen(b).(*ast.Ident)
	return ok && nid.Name == "nil" && pass.Info.Uses[nid] == types.Universe.Lookup("nil")
}

// blockTerminates reports whether a guard body always leaves the
// method: its last statement is a return or a panic call.
func blockTerminates(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	switch last := b.List[len(b.List)-1].(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}
