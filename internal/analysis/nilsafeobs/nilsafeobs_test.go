package nilsafeobs_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/nilsafeobs"
)

func TestNilSafeObs(t *testing.T) {
	analysistest.Run(t, ".", "h", nilsafeobs.Analyzer)
}
