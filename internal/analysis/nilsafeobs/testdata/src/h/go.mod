module h

go 1.23
