// Package h exercises the nilsafeobs analyzer: handle types (returned
// as pointers by exported functions) whose exported pointer-receiver
// methods must tolerate a nil receiver.
package h

import "sync"

// Counter is a handle: NewCounter returns *Counter.
type Counter struct {
	mu sync.Mutex
	n  int64
}

// NewCounter makes Counter a handle type.
func NewCounter() *Counter { return &Counter{} }

// Add has the canonical leading guard. Not flagged.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.n += n
	c.mu.Unlock()
}

// Inc delegates to a nil-safe method. Not flagged.
func (c *Counter) Inc() { c.Add(1) }

// Bump dereferences before any guard.
func (c *Counter) Bump() { // want `\(\*Counter\).Bump on nil-safe handle type dereferences the receiver`
	c.n++
	if c == nil {
		return
	}
}

// Load is guarded by a combined condition. Not flagged.
func (c *Counter) Load() int64 {
	if c == nil || c.disabled() {
		return 0
	}
	return c.n
}

// disabled is unexported: it may be unsafe without being reported, but
// callers may not treat it as a guard.
func (c *Counter) disabled() bool { return c.n < 0 }

// Registry mirrors the obs registry shape: a nil predicate guards the
// other methods.
type Registry struct {
	off bool
	m   map[string]*Counter
}

// NewRegistry makes Registry a handle type.
func NewRegistry() *Registry { return &Registry{m: map[string]*Counter{}} }

// Discarding is a nil predicate: callable on nil, true when nil. Not
// flagged.
func (r *Registry) Discarding() bool { return r == nil || r.off }

// Counter is guarded by the predicate. Not flagged.
func (r *Registry) Counter(name string) *Counter {
	if r.Discarding() {
		return nil
	}
	c := r.m[name]
	if c == nil {
		c = NewCounter()
		r.m[name] = c
	}
	return c
}

// Shortcircuit uses expression-level protection only. Not flagged.
func (r *Registry) Shortcircuit() bool {
	return r != nil && !r.off
}

// Broken guards too late: the map read precedes the nil check.
func (r *Registry) Broken(name string) *Counter { // want `\(\*Registry\).Broken on nil-safe handle type dereferences the receiver`
	c := r.m[name]
	if r == nil {
		return nil
	}
	return c
}

// BadDelegate delegates to a method that is itself unsafe.
func (r *Registry) BadDelegate(name string) *Counter { // want `\(\*Registry\).BadDelegate on nil-safe handle type dereferences the receiver`
	return r.Broken(name)
}

// plain is not a handle type (nothing exported returns *plain), so its
// methods are exempt.
type plain struct{ n int }

func (p *plain) bump() { p.n++ }

// Helper is exported but no exported declaration returns *Helper, so it
// is not a handle either.
type Helper struct{ n int }

// Grow needs no guard: Helper is not handed out as a pointer.
func (h *Helper) Grow() { h.n++ }
