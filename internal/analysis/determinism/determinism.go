// Package determinism flags constructs that can make output depend on
// Go's randomized map iteration order, the wall clock, or the global
// math/rand source. It runs over the packages whose results must be
// byte-identical across runs, reshardings, and kernel switches (tensor,
// quant, embedding, sharding, core — cmd/repolint scopes it).
//
// A `for … range m` over a map is fine when the loop only performs
// order-independent work: inserting into another map, integer
// accumulation, or building a key slice that is sorted before use. It
// is flagged when iteration order can reach an ordered sink:
//
//   - a return executed mid-iteration (which entry wins depends on
//     order — classically, which validation error a caller sees);
//   - an append whose slice is never sorted afterwards in the same
//     function;
//   - an encode/write call (bytes leave in iteration order);
//   - floating-point accumulation (addition is not associative, so
//     even a commutative-looking sum is order-dependent).
//
// Wall-clock reads (time.Now and friends) and global math/rand
// functions are flagged outright; seeded *rand.Rand constructors
// (rand.New(rand.NewSource(k))) are allowed, since a fixed seed is how
// deterministic synthetic data is meant to be produced. Telemetry
// timing in scoring packages is legitimate — annotate those sites with
// //lint:allow determinism <reason>.
package determinism

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the determinism checker.
var Analyzer = &analysis.Analyzer{
	Name: "determinism",
	Doc:  "flags map-iteration-order-dependent output, wall-clock reads, and global math/rand use in deterministic packages",
	Run:  run,
}

// clockFuncs are the time-package functions that read the wall clock or
// allocate wall-clock-driven timers.
var clockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true,
	"After": true, "Tick": true, "NewTimer": true, "NewTicker": true, "AfterFunc": true,
}

// randConstructors are the math/rand functions that build an explicitly
// seeded generator — the deterministic way to use the package.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewPCG": true, "NewChaCha8": true, "NewZipf": true,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, fn := range functionBodies(file) {
			checkBody(pass, fn)
		}
	}
	return nil
}

// functionBodies returns every function body in the file: declarations
// and literals, each analyzed as its own scope (a return inside a
// closure is not a return of the enclosing function).
func functionBodies(file *ast.File) []*ast.BlockStmt {
	var out []*ast.BlockStmt
	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if n.Body != nil {
				out = append(out, n.Body)
			}
		case *ast.FuncLit:
			out = append(out, n.Body)
		}
		return true
	})
	return out
}

// checkBody inspects one function body, not descending into nested
// function literals (they appear in functionBodies on their own).
func checkBody(pass *analysis.Pass, body *ast.BlockStmt) {
	inspectShallow(body, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.RangeStmt:
			if isMapType(pass.Info.TypeOf(n.X)) {
				checkMapRange(pass, body, n)
			}
		case *ast.CallExpr:
			checkClockAndRand(pass, n)
		}
	})
}

// inspectShallow walks n calling f on every node, skipping nested
// function literals.
func inspectShallow(n ast.Node, f func(ast.Node)) {
	ast.Inspect(n, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			f(n)
		}
		return true
	})
}

func isMapType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// checkMapRange looks for ordered sinks inside a range-over-map body.
func checkMapRange(pass *analysis.Pass, fnBody *ast.BlockStmt, rng *ast.RangeStmt) {
	inspectShallow(rng.Body, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.ReturnStmt:
			pass.Report(analysis.Diagnostic{Pos: n.Pos(),
				Message: "return inside map iteration: which entry returns first depends on map order; iterate sorted keys"})
		case *ast.AssignStmt:
			checkMapRangeAssign(pass, fnBody, rng, n)
		case *ast.CallExpr:
			if name, ok := calleeName(n); ok && isEncoderName(name) {
				pass.Report(analysis.Diagnostic{Pos: n.Pos(),
					Message: "encoding/writing during map iteration emits bytes in map order; iterate sorted keys"})
			}
		}
	})
}

// checkMapRangeAssign flags order-dependent accumulation inside a
// map-range body: float op-assign, and appends never sorted afterwards.
func checkMapRangeAssign(pass *analysis.Pass, fnBody *ast.BlockStmt, rng *ast.RangeStmt, as *ast.AssignStmt) {
	switch as.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		for _, lhs := range as.Lhs {
			if isFloat(pass.Info.TypeOf(lhs)) {
				pass.Report(analysis.Diagnostic{Pos: as.Pos(),
					Message: "floating-point accumulation over map iteration is order-dependent; iterate sorted keys"})
				return
			}
		}
	case token.ASSIGN, token.DEFINE:
		for i, rhs := range as.Rhs {
			call, ok := rhs.(*ast.CallExpr)
			if !ok || !isBuiltinAppend(pass, call) || i >= len(as.Lhs) {
				continue
			}
			dst, ok := as.Lhs[i].(*ast.Ident)
			if !ok {
				pass.Report(analysis.Diagnostic{Pos: as.Pos(),
					Message: "append during map iteration builds a map-ordered slice; append to a local and sort it"})
				continue
			}
			obj := pass.Info.Uses[dst]
			if obj == nil {
				obj = pass.Info.Defs[dst]
			}
			if obj == nil || !sortedAfter(pass, fnBody, rng.End(), obj) {
				pass.Report(analysis.Diagnostic{Pos: as.Pos(),
					Message: "append during map iteration builds a map-ordered slice never sorted in this function; sort it before use"})
			}
		}
	}
}

// sortedAfter reports whether a call into package sort or slices that
// mentions obj appears after pos inside body — the sorted-keys idiom.
func sortedAfter(pass *analysis.Pass, body *ast.BlockStmt, pos token.Pos, obj types.Object) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos || found {
			return !found
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkg, ok := sel.X.(*ast.Ident)
		if !ok || !isPackageName(pass, pkg, "sort", "slices") {
			return true
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(a ast.Node) bool {
				if id, ok := a.(*ast.Ident); ok && pass.Info.Uses[id] == obj {
					found = true
				}
				return !found
			})
		}
		return !found
	})
	return found
}

// checkClockAndRand flags wall-clock reads and global math/rand use.
func checkClockAndRand(pass *analysis.Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	pkg, ok := sel.X.(*ast.Ident)
	if !ok {
		return
	}
	pn, ok := pass.Info.Uses[pkg].(*types.PkgName)
	if !ok {
		return
	}
	switch pn.Imported().Path() {
	case "time":
		if clockFuncs[sel.Sel.Name] {
			pass.Report(analysis.Diagnostic{Pos: call.Pos(),
				Message: "wall-clock read (time." + sel.Sel.Name + ") in a deterministic package"})
		}
	case "math/rand", "math/rand/v2":
		if !randConstructors[sel.Sel.Name] {
			pass.Report(analysis.Diagnostic{Pos: call.Pos(),
				Message: "global math/rand source (rand." + sel.Sel.Name + ") is schedule-dependent; use a seeded *rand.Rand"})
		}
	}
}

func calleeName(call *ast.CallExpr) (string, bool) {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name, true
	case *ast.SelectorExpr:
		return fun.Sel.Name, true
	}
	return "", false
}

// isEncoderName matches callee names that serialize or emit output.
func isEncoderName(name string) bool {
	for _, prefix := range []string{"Encode", "Marshal", "Write", "Fprint", "Print"} {
		if len(name) >= len(prefix) && name[:len(prefix)] == prefix {
			return true
		}
	}
	return false
}

func isFloat(t types.Type) bool {
	b, ok := t.(*types.Basic)
	if !ok {
		if t == nil {
			return false
		}
		b, ok = t.Underlying().(*types.Basic)
		if !ok {
			return false
		}
	}
	return b.Info()&types.IsFloat != 0
}

func isBuiltinAppend(pass *analysis.Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	_, isBuiltin := pass.Info.Uses[id].(*types.Builtin)
	return isBuiltin
}

func isPackageName(pass *analysis.Pass, id *ast.Ident, names ...string) bool {
	pn, ok := pass.Info.Uses[id].(*types.PkgName)
	if !ok {
		return false
	}
	for _, n := range names {
		if pn.Imported().Path() == n {
			return true
		}
	}
	return false
}
