// Package a exercises the determinism analyzer: ordered sinks inside
// map iteration, wall-clock reads, and global math/rand use, next to
// near-miss negatives that follow the sorted-keys idiom.
package a

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"sort"
	"time"
)

// keysUnsorted builds a map-ordered slice and never sorts it.
func keysUnsorted(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k) // want `append during map iteration builds a map-ordered slice never sorted`
	}
	return out
}

// keysSorted is the canonical idiom: collect, then sort. Not flagged.
func keysSorted(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// firstError returns whichever entry the runtime happens to visit
// first — the classic nondeterministic-validation-error bug.
func firstError(m map[string]int) error {
	for k, v := range m {
		if v < 0 {
			return fmt.Errorf("bad %s", k) // want `return inside map iteration`
		}
	}
	return nil
}

// checkedOutside hoists the return out of the loop. Not flagged.
func checkedOutside(m map[string]int) error {
	bad := false
	for _, v := range m {
		if v < 0 {
			bad = true
		}
	}
	if bad {
		return fmt.Errorf("bad entry")
	}
	return nil
}

// floatSum accumulates float32 in map order: not associative.
func floatSum(m map[string]float32) float32 {
	var s float32
	for _, v := range m {
		s += v // want `floating-point accumulation over map iteration`
	}
	return s
}

// intSum is commutative and exact. Not flagged.
func intSum(m map[string]int64) int64 {
	var s int64
	for _, v := range m {
		s += v
	}
	return s
}

// encodeInOrder serializes entries as they come.
func encodeInOrder(m map[string]int) []byte {
	var out []byte
	for k := range m {
		b, _ := json.Marshal(k) // want `encoding/writing during map iteration`
		out = append(out, b...) // want `append during map iteration`
	}
	return out
}

// reindex inserts into another map: order-independent. Not flagged.
func reindex(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

// stamp reads the wall clock.
func stamp() int64 {
	return time.Now().UnixNano() // want `wall-clock read \(time.Now\)`
}

// elapsed measures with the clock too.
func elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want `wall-clock read \(time.Since\)`
}

// durationsOnly manipulates durations without reading the clock. Not
// flagged.
func durationsOnly(d time.Duration) time.Duration {
	return d.Round(time.Millisecond)
}

// globalRand draws from the process-wide source.
func globalRand() int {
	return rand.Intn(10) // want `global math/rand source \(rand.Intn\)`
}

// seededRand builds an explicitly seeded generator. Not flagged.
func seededRand(seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	return rng.Float64()
}

// allowed documents a deliberate clock read; the driver suppresses it.
func allowed() int64 {
	//lint:allow determinism telemetry timestamp, never reaches scores
	return time.Now().UnixNano()
}

// closureReturn: a return inside a closure inside a map range is the
// closure's return, not the loop's. Not flagged.
func closureReturn(m map[string]int) []func() int {
	fns := make([]func() int, 0, len(m))
	for _, v := range m {
		v := v
		fns = append(fns, func() int { return v })
	}
	sort.Slice(fns, func(i, j int) bool { return fns[i]() < fns[j]() })
	return fns
}
