// Package goroutinelifecycle enforces goroutine ownership rules:
//
//  1. `time.After` must not be called inside a loop: every iteration
//     allocates a timer that is not collected until it fires, which
//     under steady load is an unbounded leak. Use a reusable
//     time.NewTimer with Reset — the batcher's gather timer is the
//     house idiom.
//
//  2. A goroutine spawned from a method of a long-lived type — one
//     with a Close, Stop, or Shutdown method — must be tied to that
//     lifecycle: its body (or a same-package function it calls) has to
//     receive from or range over a channel, watch a context.Context,
//     or participate in a sync.WaitGroup. A spawn whose body shows
//     none of those (or is declared in another package, where the
//     analyzer cannot look) is flagged; if the goroutine's exit is
//     guaranteed some other way — a connection read loop unblocked by
//     Close tearing the conn down, say — document it with
//     //lint:allow goroutinelifecycle <reason>.
package goroutinelifecycle

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the goroutine-lifecycle checker.
var Analyzer = &analysis.Analyzer{
	Name: "goroutinelifecycle",
	Doc:  "goroutines of closeable types must be tied to a stop channel, context, or WaitGroup; no time.After in loops",
	Run:  run,
}

// closerMethods mark a type as long-lived.
var closerMethods = map[string]bool{"Close": true, "Stop": true, "Shutdown": true}

func run(pass *analysis.Pass) error {
	funcs := packageFuncs(pass)
	for _, file := range pass.Files {
		checkTimeAfterInLoops(pass, file)
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil || fd.Recv == nil {
				continue
			}
			if !receiverIsCloser(pass, fd) {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				g, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				if !spawnOwned(pass, funcs, g.Call) {
					pass.Report(analysis.Diagnostic{Pos: g.Pos(),
						Message: "goroutine spawned by a closeable type is not tied to a stop channel, context, or WaitGroup"})
				}
				return true
			})
		}
	}
	return nil
}

// checkTimeAfterInLoops flags time.After calls lexically inside a
// for/range statement of the same function.
func checkTimeAfterInLoops(pass *analysis.Pass, file *ast.File) {
	var walk func(n ast.Node, inLoop bool)
	walk = func(n ast.Node, inLoop bool) {
		if n == nil {
			return
		}
		switch n := n.(type) {
		case *ast.ForStmt:
			walkChildren(n.Body, true, walk)
			return
		case *ast.RangeStmt:
			walkChildren(n.Body, true, walk)
			return
		case *ast.FuncDecl:
			if n.Body != nil {
				walkChildren(n.Body, false, walk)
			}
			return
		case *ast.FuncLit:
			// A literal's loop context resets: its body runs wherever
			// the closure is called, and spawning one per loop
			// iteration is fine.
			walkChildren(n.Body, false, walk)
			return
		case *ast.CallExpr:
			if inLoop && isTimeAfter(pass, n) {
				pass.Report(analysis.Diagnostic{Pos: n.Pos(),
					Message: "time.After in a loop allocates a timer per iteration (leak under load); use a reusable time.NewTimer with Reset"})
			}
		}
		walkChildren(n, inLoop, walk)
	}
	walk(file, false)
}

// walkChildren applies walk to n's immediate children with the given
// loop context.
func walkChildren(n ast.Node, inLoop bool, walk func(ast.Node, bool)) {
	first := true
	ast.Inspect(n, func(c ast.Node) bool {
		if first {
			first = false
			return true
		}
		if c != nil {
			walk(c, inLoop)
		}
		return false
	})
}

func isTimeAfter(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "After" {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := pass.Info.Uses[id].(*types.PkgName)
	return ok && pn.Imported().Path() == "time"
}

// receiverIsCloser reports whether the method's receiver type declares
// a Close/Stop/Shutdown method.
func receiverIsCloser(pass *analysis.Pass, fd *ast.FuncDecl) bool {
	if len(fd.Recv.List) != 1 {
		return false
	}
	t := pass.Info.TypeOf(fd.Recv.List[0].Type)
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	for i := 0; i < named.NumMethods(); i++ {
		if closerMethods[named.Method(i).Name()] {
			return true
		}
	}
	return false
}

// spawnOwned reports whether the spawned call's body shows lifecycle
// ownership. Cross-package callees are opaque and count as unowned.
func spawnOwned(pass *analysis.Pass, funcs map[types.Object]*ast.FuncDecl, call *ast.CallExpr) bool {
	body := calleeBody(pass, funcs, call.Fun)
	if body == nil {
		return false
	}
	return hasLifecycleEvidence(pass, funcs, body, 0)
}

func calleeBody(pass *analysis.Pass, funcs map[types.Object]*ast.FuncDecl, fn ast.Expr) *ast.BlockStmt {
	switch fn := fn.(type) {
	case *ast.FuncLit:
		return fn.Body
	case *ast.Ident:
		if fd := funcs[pass.Info.Uses[fn]]; fd != nil {
			return fd.Body
		}
	case *ast.SelectorExpr:
		if fd := funcs[pass.Info.Uses[fn.Sel]]; fd != nil {
			return fd.Body
		}
	case *ast.ParenExpr:
		return calleeBody(pass, funcs, fn.X)
	}
	return nil
}

// hasLifecycleEvidence looks for a channel receive/range, a
// context.Context use, or WaitGroup participation in body or one level
// of same-package callees.
func hasLifecycleEvidence(pass *analysis.Pass, funcs map[types.Object]*ast.FuncDecl, body *ast.BlockStmt, depth int) bool {
	if depth > 3 {
		return false
	}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" {
				found = true
			}
		case *ast.RangeStmt:
			if isChan(pass.Info.TypeOf(n.X)) {
				found = true
			}
		case *ast.Ident:
			if isContext(pass.Info.TypeOf(n)) {
				found = true
			}
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				if isWaitGroup(pass.Info.TypeOf(sel.X)) &&
					(sel.Sel.Name == "Done" || sel.Sel.Name == "Wait") {
					found = true
					return false
				}
			}
			if b := calleeBody(pass, funcs, n.Fun); b != nil && b != body {
				if hasLifecycleEvidence(pass, funcs, b, depth+1) {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

func isChan(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Chan)
	return ok
}

func isContext(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

func isWaitGroup(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "WaitGroup"
}

// packageFuncs indexes function and method declarations by object.
func packageFuncs(pass *analysis.Pass) map[types.Object]*ast.FuncDecl {
	out := make(map[types.Object]*ast.FuncDecl)
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				out[pass.Info.Defs[fd.Name]] = fd
			}
		}
	}
	return out
}
