package goroutinelifecycle_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/goroutinelifecycle"
)

func TestGoroutineLifecycle(t *testing.T) {
	analysistest.Run(t, ".", "g", goroutinelifecycle.Analyzer)
}
