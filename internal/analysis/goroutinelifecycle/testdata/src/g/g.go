// Package g exercises the goroutinelifecycle analyzer: goroutines of
// closeable types must show a stop channel, context, or WaitGroup, and
// time.After must stay out of loops.
package g

import (
	"context"
	"fmt"
	"sync"
	"time"
)

// Server is long-lived: it has a Close method, so its goroutines are
// held to the lifecycle rule.
type Server struct {
	stop chan struct{}
	work chan int
	wg   sync.WaitGroup
}

// Close tears the server down.
func (s *Server) Close() {
	close(s.stop)
	s.wg.Wait()
}

// StartSelect spawns a loop that watches the stop channel. Not flagged.
func (s *Server) StartSelect() {
	go func() {
		for {
			select {
			case <-s.stop:
				return
			case v := <-s.work:
				_ = v
			}
		}
	}()
}

// StartRange drains the work channel until it closes. Not flagged.
func (s *Server) StartRange() {
	go func() {
		for v := range s.work {
			_ = v
		}
	}()
}

// StartCtx watches a context. Not flagged.
func (s *Server) StartCtx(ctx context.Context) {
	go func() {
		<-ctx.Done()
	}()
}

// StartWG participates in the WaitGroup. Not flagged.
func (s *Server) StartWG() {
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
	}()
}

// runLoop is the named body StartNamed spawns; it receives from the
// stop channel, so the spawn is owned. Not flagged.
func (s *Server) runLoop() {
	<-s.stop
}

// StartNamed spawns a same-package method whose body is visible. Not
// flagged.
func (s *Server) StartNamed() {
	go s.runLoop()
}

// StartOrphan spawns a free-running loop with no stop signal.
func (s *Server) StartOrphan() {
	go func() { // want `goroutine spawned by a closeable type is not tied to a stop channel, context, or WaitGroup`
		for {
			fmt.Println("tick")
		}
	}()
}

// spin never consults the lifecycle.
func spin() {
	for {
	}
}

// StartOrphanNamed spawns a named function with no lifecycle evidence.
func (s *Server) StartOrphanNamed() {
	go spin() // want `goroutine spawned by a closeable type is not tied to a stop channel, context, or WaitGroup`
}

// StartOpaque spawns a cross-package callee the analyzer cannot see
// into.
func (s *Server) StartOpaque() {
	go fmt.Println("bye") // want `goroutine spawned by a closeable type is not tied to a stop channel, context, or WaitGroup`
}

// StartAllowed documents a deliberate exception: the goroutine exits
// when Close tears down the underlying resource.
func (s *Server) StartAllowed() {
	//lint:allow goroutinelifecycle exits when Close tears down the conn
	go spin()
}

// oneShot is short-lived — no Close method — so its spawns are exempt.
type oneShot struct{}

func (o oneShot) fire() {
	go spin()
}

// pollAfter allocates a timer every iteration.
func (s *Server) pollAfter() {
	for {
		select {
		case <-s.stop:
			return
		case <-time.After(time.Second): // want `time.After in a loop allocates a timer per iteration`
		}
	}
}

// pollTimer reuses one timer across iterations. Not flagged.
func (s *Server) pollTimer() {
	t := time.NewTimer(time.Second)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
			t.Reset(time.Second)
		}
	}
}

// afterOutsideLoop uses time.After once, outside any loop. Not flagged.
func afterOutsideLoop(stop chan struct{}) {
	select {
	case <-stop:
	case <-time.After(time.Second):
	}
}

// litResetsLoopContext spawns a closure per iteration; the closure body
// is not "in" the loop. Not flagged.
func litResetsLoopContext(done chan struct{}) {
	for i := 0; i < 3; i++ {
		func() {
			select {
			case <-done:
			case <-time.After(time.Millisecond):
			}
		}()
	}
}
