module g

go 1.23
