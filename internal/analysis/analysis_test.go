package analysis

import (
	"go/ast"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeModule lays out a throwaway module and returns its root.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, src := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// returnCounter flags every return statement: a trivially predictable
// analyzer for driving the runner.
var returnCounter = &Analyzer{
	Name: "returncounter",
	Doc:  "flags every return statement",
	Run: func(pass *Pass) error {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				if r, ok := n.(*ast.ReturnStmt); ok {
					pass.Report(Diagnostic{Pos: r.Pos(), Message: "return statement"})
				}
				return true
			})
		}
		return nil
	},
}

func TestLoadResolvesDepsFromExportData(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": "module m\n\ngo 1.23\n",
		"lib/lib.go": `package lib

func Double(x int) int { return 2 * x }
`,
		"main.go": `package main

import (
	"fmt"

	"m/lib"
)

func main() { fmt.Println(lib.Double(21)) }
`,
	})
	pkgs, err := Load(dir, "./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 2 {
		t.Fatalf("loaded %d packages, want 2", len(pkgs))
	}
	// Sorted by import path: "m" before "m/lib".
	if pkgs[0].PkgPath != "m" || pkgs[1].PkgPath != "m/lib" {
		t.Fatalf("got %s, %s", pkgs[0].PkgPath, pkgs[1].PkgPath)
	}
	for _, p := range pkgs {
		if p.Types == nil || p.Info == nil || len(p.Files) == 0 {
			t.Fatalf("%s: incomplete package", p.PkgPath)
		}
	}
	// Type info must be populated: the fmt.Println use in main resolves
	// through fmt's export data.
	main := pkgs[0]
	if len(main.Info.Uses) == 0 {
		t.Fatal("no Uses recorded for package main")
	}
}

func TestLoadDefaultsToAllPackages(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": "module d\n\ngo 1.23\n",
		"d.go":   "package d\n\nfunc F() int { return 1 }\n",
	})
	pkgs, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 || pkgs[0].PkgPath != "d" {
		t.Fatalf("Load() = %v", pkgs)
	}
}

func TestLoadReportsTypeErrors(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": "module t\n\ngo 1.23\n",
		"t.go":   "package t\n\nfunc F() int { return \"not an int\" }\n",
	})
	if _, err := Load(dir, "./..."); err == nil {
		t.Fatal("Load accepted a package that does not type-check")
	}
}

func TestLoadReportsParseErrors(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": "module p\n\ngo 1.23\n",
		"p.go":   "package p\n\nfunc F( {\n",
	})
	if _, err := Load(dir, "./..."); err == nil {
		t.Fatal("Load accepted a package that does not parse")
	}
}

func TestRunSuppressionAndDirectiveHygiene(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": "module s\n\ngo 1.23\n",
		"s.go": `package s

func suppressedTrailing() int {
	return 1 //lint:allow returncounter documented exception
}

func suppressedAbove() int {
	//lint:allow returncounter directive on the line above counts too
	return 2
}

func unsuppressed() int {
	return 3
}

func hygiene() {
	//lint:allow
	//lint:allow nosuchanalyzer reason for an unknown analyzer
	//lint:allow returncounter
	_ = 0
}

//lint:allow returncounter nothing on the next line returns
var x = 4
`,
	})
	pkgs, err := Load(dir, "./...")
	if err != nil {
		t.Fatal(err)
	}
	findings, err := Run(pkgs, []*Analyzer{returnCounter}, nil)
	if err != nil {
		t.Fatal(err)
	}
	var msgs []string
	for _, f := range findings {
		msgs = append(msgs, f.Analyzer+": "+f.Message)
	}
	joined := strings.Join(msgs, "\n")
	for _, want := range []string{
		"returncounter: return statement",         // the unsuppressed return
		"malformed //lint:allow directive",        // bare directive
		`names unknown analyzer "nosuchanalyzer"`, // unknown analyzer
		"has no reason",                           // reasonless
		"suppresses nothing",                      // unused
	} {
		if !strings.Contains(joined, want) {
			t.Errorf("findings missing %q:\n%s", want, joined)
		}
	}
	// Exactly one returncounter finding: both suppressed returns stayed
	// suppressed.
	count := 0
	for _, f := range findings {
		if f.Analyzer == returnCounter.Name {
			count++
		}
	}
	if count != 1 {
		t.Errorf("%d returncounter findings, want 1:\n%s", count, joined)
	}
	// Findings come back sorted by position.
	for i := 1; i < len(findings); i++ {
		a, b := findings[i-1].Pos, findings[i].Pos
		if a.Filename == b.Filename && a.Line > b.Line {
			t.Errorf("findings unsorted: line %d before %d", a.Line, b.Line)
		}
	}
}

func TestRunFilterScopesAnalyzers(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": "module f\n\ngo 1.23\n",
		"f.go":   "package f\n\nfunc F() int { return 1 }\n",
	})
	pkgs, err := Load(dir, "./...")
	if err != nil {
		t.Fatal(err)
	}
	none := func(a *Analyzer, pkgPath string) bool { return false }
	findings, err := Run(pkgs, []*Analyzer{returnCounter}, none)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 0 {
		t.Fatalf("filtered-out analyzer still reported: %v", findings)
	}
}

func TestRunPropagatesAnalyzerErrors(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": "module e\n\ngo 1.23\n",
		"e.go":   "package e\n\nfunc F() int { return 1 }\n",
	})
	pkgs, err := Load(dir, "./...")
	if err != nil {
		t.Fatal(err)
	}
	boom := &Analyzer{
		Name: "boom",
		Doc:  "always fails",
		Run:  func(pass *Pass) error { return os.ErrInvalid },
	}
	if _, err := Run(pkgs, []*Analyzer{boom}, nil); err == nil {
		t.Fatal("analyzer error did not propagate")
	}
}

func TestLoadRejectsUnknownDirectory(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "nope"), "./..."); err == nil {
		t.Fatal("Load accepted a nonexistent directory")
	}
}
