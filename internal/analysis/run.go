package analysis

import (
	"fmt"
	"sort"
)

// Run applies analyzers to packages and returns the surviving findings:
// diagnostics not covered by a valid //lint:allow directive, plus one
// finding per directive-hygiene violation (missing reason, unknown
// analyzer, suppresses nothing). filter, when non-nil, restricts which
// analyzers run on which packages (repolint scopes the determinism
// analyzer to the deterministic package set this way); directives are
// still collected from every loaded package so a stale allow in an
// out-of-scope file is reported rather than ignored.
func Run(pkgs []*Package, analyzers []*Analyzer, filter func(a *Analyzer, pkgPath string) bool) ([]Finding, error) {
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}
	allows := collectAllows(pkgs)

	var findings []Finding
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			if filter != nil && !filter(a, pkg.PkgPath) {
				continue
			}
			var diags []Diagnostic
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				Report:   func(d Diagnostic) { diags = append(diags, d) },
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analyzer %s on %s: %w", a.Name, pkg.PkgPath, err)
			}
			for _, d := range diags {
				pos := pkg.Fset.Position(d.Pos)
				suppressed := false
				for _, al := range allows {
					if al.suppresses(a.Name, pos) {
						al.used = true
						suppressed = true
					}
				}
				if !suppressed {
					findings = append(findings, Finding{Analyzer: a.Name, Pos: pos, Message: d.Message})
				}
			}
		}
	}

	for _, al := range allows {
		switch {
		case al.analyzer == "":
			findings = append(findings, Finding{
				Analyzer: AllowAnalyzerName, Pos: al.pos,
				Message: "malformed //lint:allow directive: want //lint:allow <analyzer> <reason>",
			})
		case !known[al.analyzer]:
			findings = append(findings, Finding{
				Analyzer: AllowAnalyzerName, Pos: al.pos,
				Message: fmt.Sprintf("//lint:allow names unknown analyzer %q", al.analyzer),
			})
		case al.reason == "":
			findings = append(findings, Finding{
				Analyzer: AllowAnalyzerName, Pos: al.pos,
				Message: fmt.Sprintf("//lint:allow %s has no reason: every allowlist entry must explain itself", al.analyzer),
			})
		case !al.used:
			findings = append(findings, Finding{
				Analyzer: AllowAnalyzerName, Pos: al.pos,
				Message: fmt.Sprintf("//lint:allow %s suppresses nothing: remove it or move it to the flagged line", al.analyzer),
			})
		}
	}

	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return findings, nil
}
