package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package: the unit an analyzer
// runs over.
type Package struct {
	PkgPath string
	Dir     string
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
}

// listedPkg is the subset of `go list -json` output the loader reads.
type listedPkg struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	Standard   bool
	Error      *struct{ Err string }
}

// Load resolves patterns (as `go list` understands them, e.g. "./...")
// relative to dir, parses every matched non-test source file, and
// type-checks each matched package. Dependencies — standard library and
// in-module alike — are imported from compiler export data produced by
// `go list -export`, so only the packages under analysis are checked
// from source. Results are sorted by import path.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	roots, err := goList(dir, false, patterns)
	if err != nil {
		return nil, err
	}
	deps, err := goList(dir, true, patterns)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(deps))
	for _, p := range deps {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})

	var out []*Package
	sort.Slice(roots, func(i, j int) bool { return roots[i].ImportPath < roots[j].ImportPath })
	for _, p := range roots {
		if p.Error != nil {
			return nil, fmt.Errorf("%s: %s", p.ImportPath, p.Error.Err)
		}
		if len(p.GoFiles) == 0 {
			continue
		}
		files := make([]*ast.File, 0, len(p.GoFiles))
		names := append([]string(nil), p.GoFiles...)
		sort.Strings(names)
		for _, name := range names {
			f, err := parser.ParseFile(fset, filepath.Join(p.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
		}
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Implicits:  make(map[ast.Node]types.Object),
			Scopes:     make(map[ast.Node]*types.Scope),
		}
		cfg := types.Config{
			Importer: imp,
			Sizes:    types.SizesFor("gc", runtime.GOARCH),
		}
		tpkg, err := cfg.Check(p.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("type-checking %s: %w", p.ImportPath, err)
		}
		out = append(out, &Package{
			PkgPath: p.ImportPath,
			Dir:     p.Dir,
			Fset:    fset,
			Files:   files,
			Types:   tpkg,
			Info:    info,
		})
	}
	return out, nil
}

// goList shells out to the go command: the one authoritative source for
// build-tag resolution, file lists, and (with deps=true) compiled
// export data for every dependency.
func goList(dir string, deps bool, patterns []string) ([]*listedPkg, error) {
	args := []string{"list", "-e", "-json=ImportPath,Dir,GoFiles,Export,Standard,Error"}
	if deps {
		args = append(args, "-export", "-deps")
	}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go %s: %v\n%s", strings.Join(args, " "), err, stderr.String())
	}
	var out []*listedPkg
	dec := json.NewDecoder(&stdout)
	for {
		var p listedPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %w", err)
		}
		if deps && p.Standard {
			// Standard-library deps contribute export data only.
			out = append(out, &p)
			continue
		}
		if p.Standard {
			continue
		}
		out = append(out, &p)
	}
	return out, nil
}
