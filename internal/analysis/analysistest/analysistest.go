// Package analysistest runs an analyzer over a testdata package and
// checks its diagnostics against expectations written in the source —
// the same convention as golang.org/x/tools' analysistest, implemented
// on the repo's dependency-free driver.
//
// An expectation is a comment on the flagged line:
//
//	rand.Int() // want `global math/rand`
//
// Each backquoted or double-quoted string after "want" is a regular
// expression that must match exactly one diagnostic reported on that
// line of that file. Diagnostics with no matching expectation, and
// expectations with no matching diagnostic, fail the test.
//
// Testdata packages live under testdata/src/<name>/ with their own
// go.mod (module <name>), so the loader's `go list` resolves them as a
// tiny standalone module.
package analysistest

import (
	"fmt"
	"go/ast"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// expectation is one want-pattern at a file:line.
type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

var wantRE = regexp.MustCompile("`([^`]*)`|\"([^\"]*)\"")

// Run loads the package rooted at testdata/src/<pkg> under dir, applies
// the analyzer through the shared driver (so //lint:allow directives
// and their hygiene findings behave exactly as in repolint), and
// compares diagnostics against // want comments.
func Run(t *testing.T, dir, pkg string, a *analysis.Analyzer) {
	t.Helper()
	root := filepath.Join(dir, "testdata", "src", pkg)
	pkgs, err := analysis.Load(root, "./...")
	if err != nil {
		t.Fatalf("loading %s: %v", root, err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("no packages under %s", root)
	}
	findings, err := analysis.Run(pkgs, []*analysis.Analyzer{a}, nil)
	if err != nil {
		t.Fatal(err)
	}

	var wants []*expectation
	for _, p := range pkgs {
		for _, f := range p.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					wants = append(wants, parseWants(t, p, c)...)
				}
			}
		}
	}

	for _, f := range findings {
		if !claim(wants, f) {
			t.Errorf("%s: unexpected diagnostic [%s]: %s", f.Pos, f.Analyzer, f.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.pattern)
		}
	}
}

// parseWants extracts want-expectations from one comment.
func parseWants(t *testing.T, p *analysis.Package, c *ast.Comment) []*expectation {
	text := strings.TrimPrefix(c.Text, "//")
	text = strings.TrimSpace(text)
	if !strings.HasPrefix(text, "want ") {
		return nil
	}
	pos := p.Fset.Position(c.Pos())
	var out []*expectation
	for _, m := range wantRE.FindAllStringSubmatch(text[len("want "):], -1) {
		src := m[1]
		if src == "" {
			src = m[2]
		}
		re, err := regexp.Compile(src)
		if err != nil {
			t.Fatalf("%s: bad want pattern %q: %v", pos, src, err)
		}
		out = append(out, &expectation{file: pos.Filename, line: pos.Line, pattern: re})
	}
	if len(out) == 0 {
		t.Fatalf("%s: want comment with no patterns", pos)
	}
	return out
}

// claim marks the first unmatched expectation covering the finding.
func claim(wants []*expectation, f analysis.Finding) bool {
	for _, w := range wants {
		if w.matched || w.file != f.Pos.Filename || w.line != f.Pos.Line {
			continue
		}
		if w.pattern.MatchString(f.Message) {
			w.matched = true
			return true
		}
	}
	return false
}

// Fprint is a debugging helper: it renders findings one per line in
// repolint's output format.
func Fprint(findings []analysis.Finding) string {
	var b strings.Builder
	for _, f := range findings {
		fmt.Fprintf(&b, "%s: [%s] %s\n", f.Pos, f.Analyzer, f.Message)
	}
	return b.String()
}
