// Package lockdiscipline enforces two locking rules the serving stack
// depends on:
//
//  1. Snapshot probes stay registry-lock-free. Probes registered with
//     Registry.RegisterProbe / RegisterProbeGroup are evaluated at
//     Snapshot time; a probe that calls back into a Registry method
//     that takes the registry mutex (Counter, Gauge, Histogram,
//     RegisterProbe, RegisterProbeGroup, Snapshot) re-enters the
//     registry — at best a surprise acquisition during metrics
//     collection, at worst a deadlock if snapshot internals change.
//     The analyzer walks each registered probe's body plus
//     same-package functions it calls and flags any such call.
//
//  2. Canonical acquisition order between named mutex fields. The
//     sparse shard's accounting lock precedes its table-set lock
//     (loadMu before mu: CollectLoad holds loadMu while swapping
//     table state under mu). Acquiring them in the inverted order —
//     or re-acquiring a lock already held on the same receiver,
//     directly or through a same-receiver method call — is flagged.
//     The order is the Order variable; fields not listed are ignored.
package lockdiscipline

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the lock-discipline checker.
var Analyzer = &analysis.Analyzer{
	Name: "lockdiscipline",
	Doc:  "snapshot probes must not acquire the registry lock; named mutexes acquire in canonical order without re-entry",
	Run:  run,
}

// Order lists mutex field/variable names in canonical acquisition
// order: a lock may only be taken while every held lock (on the same
// receiver) appears earlier in this list.
var Order = []string{"loadMu", "mu"}

// lockingRegistryMethods are the Registry methods that acquire the
// registry mutex (or, for Snapshot, re-enter probe evaluation).
var lockingRegistryMethods = map[string]bool{
	"Counter": true, "Gauge": true, "Histogram": true,
	"RegisterProbe": true, "RegisterProbeGroup": true, "Snapshot": true,
}

func rank(name string) int {
	for i, n := range Order {
		if n == name {
			return i
		}
	}
	return -1
}

func run(pass *analysis.Pass) error {
	checkProbes(pass)
	checkLockOrder(pass)
	return nil
}

// --- rule 1: probe lock-freedom ---

func checkProbes(pass *analysis.Pass) {
	funcs := packageFuncs(pass)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || !isRegistryRecv(pass, sel.X) {
				return true
			}
			if sel.Sel.Name != "RegisterProbe" && sel.Sel.Name != "RegisterProbeGroup" {
				return true
			}
			for _, arg := range call.Args {
				walkProbe(pass, funcs, arg, 0)
			}
			return true
		})
	}
}

// walkProbe inspects a probe function (a literal, or a reference to a
// same-package function) and everything it calls in-package, flagging
// registry-lock acquisitions.
func walkProbe(pass *analysis.Pass, funcs map[types.Object]*ast.FuncDecl, fn ast.Expr, depth int) {
	if depth > 5 {
		return
	}
	var body *ast.BlockStmt
	switch fn := fn.(type) {
	case *ast.FuncLit:
		body = fn.Body
	case *ast.Ident:
		if fd := funcs[pass.Info.Uses[fn]]; fd != nil {
			body = fd.Body
		}
	case *ast.SelectorExpr:
		if fd := funcs[pass.Info.Uses[fn.Sel]]; fd != nil {
			body = fd.Body
		}
	}
	if body == nil {
		return
	}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok && isRegistryRecv(pass, sel.X) {
			if lockingRegistryMethods[sel.Sel.Name] {
				pass.Report(analysis.Diagnostic{Pos: call.Pos(),
					Message: "snapshot probe reaches Registry." + sel.Sel.Name +
						", which acquires the registry lock; resolve handles at registration time"})
			}
			return true
		}
		// Follow same-package callees.
		walkProbe(pass, funcs, call.Fun, depth+1)
		return true
	})
}

// isRegistryRecv reports whether e's type is *Registry or Registry
// (any package — the obs one in production, a local one in testdata).
func isRegistryRecv(pass *analysis.Pass, e ast.Expr) bool {
	t := pass.Info.TypeOf(e)
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "Registry"
}

// packageFuncs indexes the package's function and method declarations
// by their object, for probe body resolution.
func packageFuncs(pass *analysis.Pass) map[types.Object]*ast.FuncDecl {
	out := make(map[types.Object]*ast.FuncDecl)
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				out[pass.Info.Defs[fd.Name]] = fd
			}
		}
	}
	return out
}

// --- rule 2: acquisition order and re-entry ---

// lockCall describes one mutex operation: s.mu.Lock() has owner "s",
// field "mu".
type lockCall struct {
	owner   string // receiver/variable expression, printed
	field   string // mutex field or variable name, must be in Order
	acquire bool
	defers  bool
}

// methodSummary maps a method object to the set of Order-listed mutex
// fields it may acquire on its own receiver, transitively through
// same-receiver calls.
type methodSummary map[types.Object]map[string]bool

func checkLockOrder(pass *analysis.Pass) {
	summaries := buildSummaries(pass)
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			held := map[string]bool{}
			scanStmts(pass, summaries, fd, fd.Body.List, held, false)
		}
	}
}

// scanStmts walks statements in order, tracking held locks. Branch
// bodies get a copy of the held set (locks taken inside a branch do
// not leak out — matching the straight-line style the repo uses).
func scanStmts(pass *analysis.Pass, sums methodSummary, fd *ast.FuncDecl, stmts []ast.Stmt, held map[string]bool, inDefer bool) {
	for _, s := range stmts {
		scanStmt(pass, sums, fd, s, held, inDefer)
	}
}

func scanStmt(pass *analysis.Pass, sums methodSummary, fd *ast.FuncDecl, s ast.Stmt, held map[string]bool, inDefer bool) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		scanExpr(pass, sums, fd, s.X, held, inDefer)
	case *ast.DeferStmt:
		scanExpr(pass, sums, fd, s.Call, held, true)
	case *ast.GoStmt:
		// The spawned function runs elsewhere with no locks held.
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			scanExpr(pass, sums, fd, e, held, inDefer)
		}
	case *ast.IfStmt:
		if s.Init != nil {
			scanStmt(pass, sums, fd, s.Init, held, inDefer)
		}
		scanExpr(pass, sums, fd, s.Cond, held, inDefer)
		scanStmts(pass, sums, fd, s.Body.List, copyHeld(held), inDefer)
		if s.Else != nil {
			scanStmt(pass, sums, fd, s.Else, copyHeld(held), inDefer)
		}
	case *ast.BlockStmt:
		scanStmts(pass, sums, fd, s.List, held, inDefer)
	case *ast.ForStmt:
		scanStmts(pass, sums, fd, s.Body.List, copyHeld(held), inDefer)
	case *ast.RangeStmt:
		scanExpr(pass, sums, fd, s.X, held, inDefer)
		scanStmts(pass, sums, fd, s.Body.List, copyHeld(held), inDefer)
	case *ast.SwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				scanStmts(pass, sums, fd, cc.Body, copyHeld(held), inDefer)
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				scanStmts(pass, sums, fd, cc.Body, copyHeld(held), inDefer)
			}
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				scanStmts(pass, sums, fd, cc.Body, copyHeld(held), inDefer)
			}
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			scanExpr(pass, sums, fd, e, held, inDefer)
		}
	}
}

// scanExpr finds mutex operations and same-receiver calls inside one
// expression, updating held in evaluation order.
func scanExpr(pass *analysis.Pass, sums methodSummary, fd *ast.FuncDecl, e ast.Expr, held map[string]bool, inDefer bool) {
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if lc, ok := mutexOp(pass, call); ok {
			applyLockOp(pass, call, lc, held, inDefer)
			return false
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			if callee := pass.Info.Uses[sel.Sel]; callee != nil {
				if fields := sums[callee]; len(fields) > 0 {
					owner := exprString(sel.X)
					for f := range fields {
						checkAcquire(pass, call, lockCall{owner: owner, field: f, acquire: true}, held,
							" (via call to "+sel.Sel.Name+")")
					}
				}
			}
		}
		return true
	})
}

func applyLockOp(pass *analysis.Pass, call *ast.CallExpr, lc lockCall, held map[string]bool, inDefer bool) {
	key := lc.owner + "." + lc.field
	if lc.acquire {
		checkAcquire(pass, call, lc, held, "")
		held[key] = true
		return
	}
	if !inDefer {
		delete(held, key)
	}
	// A deferred unlock releases at function exit: the lock stays held
	// for the rest of the scan, which is the point.
}

// checkAcquire reports re-entry and order inversions for acquiring lc
// with held locks.
func checkAcquire(pass *analysis.Pass, call *ast.CallExpr, lc lockCall, held map[string]bool, via string) {
	key := lc.owner + "." + lc.field
	if held[key] {
		pass.Report(analysis.Diagnostic{Pos: call.Pos(),
			Message: "re-entrant acquisition of " + key + via + " while already held"})
		return
	}
	r := rank(lc.field)
	for h := range held {
		howner, hfield, ok := splitKey(h)
		if !ok || howner != lc.owner {
			continue
		}
		if hr := rank(hfield); hr > r {
			pass.Report(analysis.Diagnostic{Pos: call.Pos(),
				Message: "acquiring " + key + via + " while holding " + h +
					" inverts the canonical lock order (" + orderString() + ")"})
		}
	}
}

// mutexOp decodes <owner>.<field>.Lock()/RLock()/Unlock()/RUnlock()
// where field is Order-listed and of type sync.Mutex / sync.RWMutex.
// Plain `mu.Lock()` on an Order-listed variable is owner "".
func mutexOp(pass *analysis.Pass, call *ast.CallExpr) (lockCall, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return lockCall{}, false
	}
	var acquire bool
	switch sel.Sel.Name {
	case "Lock", "RLock":
		acquire = true
	case "Unlock", "RUnlock":
	default:
		return lockCall{}, false
	}
	if !isSyncMutex(pass.Info.TypeOf(sel.X)) {
		return lockCall{}, false
	}
	switch x := sel.X.(type) {
	case *ast.Ident:
		if rank(x.Name) < 0 {
			return lockCall{}, false
		}
		return lockCall{owner: "", field: x.Name, acquire: acquire}, true
	case *ast.SelectorExpr:
		if rank(x.Sel.Name) < 0 {
			return lockCall{}, false
		}
		return lockCall{owner: exprString(x.X), field: x.Sel.Name, acquire: acquire}, true
	}
	return lockCall{}, false
}

// buildSummaries computes, to a fixed point, which Order-listed mutex
// fields each method may acquire on its own receiver.
func buildSummaries(pass *analysis.Pass) methodSummary {
	type mdecl struct {
		obj  types.Object
		fd   *ast.FuncDecl
		recv types.Object
	}
	var decls []mdecl
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil || fd.Recv == nil || len(fd.Recv.List) != 1 {
				continue
			}
			md := mdecl{obj: pass.Info.Defs[fd.Name], fd: fd}
			if names := fd.Recv.List[0].Names; len(names) == 1 {
				md.recv = pass.Info.Defs[names[0]]
			}
			decls = append(decls, md)
		}
	}
	sums := make(methodSummary, len(decls))
	for _, d := range decls {
		sums[d.obj] = map[string]bool{}
	}
	for changed := true; changed; {
		changed = false
		for _, d := range decls {
			cur := sums[d.obj]
			ast.Inspect(d.fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if lc, ok := mutexOp(pass, call); ok && lc.acquire {
					// Only receiver-owned locks enter the summary.
					if id, ok := receiverIdent(call); ok && d.recv != nil && pass.Info.Uses[id] == d.recv {
						if !cur[lc.field] {
							cur[lc.field] = true
							changed = true
						}
					}
					return false
				}
				if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
					if id, ok := sel.X.(*ast.Ident); ok && d.recv != nil && pass.Info.Uses[id] == d.recv {
						for f := range sums[pass.Info.Uses[sel.Sel]] {
							if !cur[f] {
								cur[f] = true
								changed = true
							}
						}
					}
				}
				return true
			})
		}
	}
	return sums
}

// receiverIdent extracts s from s.mu.Lock().
func receiverIdent(call *ast.CallExpr) (*ast.Ident, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, false
	}
	inner, ok := sel.X.(*ast.SelectorExpr)
	if !ok {
		return nil, false
	}
	id, ok := inner.X.(*ast.Ident)
	return id, ok
}

func isSyncMutex(t types.Type) bool {
	if t == nil {
		return false
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
		(obj.Name() == "Mutex" || obj.Name() == "RWMutex")
}

func copyHeld(held map[string]bool) map[string]bool {
	out := make(map[string]bool, len(held))
	for k, v := range held {
		out[k] = v
	}
	return out
}

func splitKey(key string) (owner, field string, ok bool) {
	for i := len(key) - 1; i >= 0; i-- {
		if key[i] == '.' {
			return key[:i], key[i+1:], true
		}
	}
	return "", "", false
}

func orderString() string {
	s := ""
	for i, n := range Order {
		if i > 0 {
			s += " before "
		}
		s += n
	}
	return s
}

// exprString renders a receiver expression for held-set keys.
func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.ParenExpr:
		return exprString(e.X)
	case *ast.StarExpr:
		return "*" + exprString(e.X)
	default:
		return "?"
	}
}
