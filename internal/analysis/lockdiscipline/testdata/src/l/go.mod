module l

go 1.23
