// Package l exercises the lockdiscipline analyzer: registry re-entry
// from snapshot probes, canonical mutex ordering (loadMu before mu),
// and re-entrant acquisition.
package l

import "sync"

// Registry mimics the obs registry surface the analyzer recognizes.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*int64
	probes   []func() int64
}

// Counter acquires the registry lock.
func (r *Registry) Counter(name string) *int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = new(int64)
		r.counters[name] = c
	}
	return c
}

// RegisterProbe registers a pull-style gauge.
func (r *Registry) RegisterProbe(name string, fn func() int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.probes = append(r.probes, fn)
}

// RegisterProbeGroup registers a multi-gauge source.
func (r *Registry) RegisterProbeGroup(fn func(emit func(string, int64))) {
	r.mu.Lock()
	defer r.mu.Unlock()
}

// Shard is the table-set-plus-accounting shape from core: loadMu is
// acquired before mu by convention.
type Shard struct {
	mu     sync.RWMutex
	loadMu sync.Mutex
	tables map[int]string
	n      int64
}

// goodProbes resolves its handle at registration time and reads only
// shard state inside the probe. Not flagged.
func goodProbes(r *Registry, s *Shard) {
	h := r.Counter("boot")
	r.RegisterProbe("shard.tables", func() int64 {
		*h = 1
		s.mu.RLock()
		defer s.mu.RUnlock()
		return int64(len(s.tables))
	})
}

// badProbe creates a handle inside the probe: registry lock re-entry.
func badProbe(r *Registry, s *Shard) {
	r.RegisterProbe("shard.n", func() int64 {
		c := r.Counter("lazy") // want `snapshot probe reaches Registry.Counter`
		_ = c
		return s.n
	})
}

// badProbeGroup reaches the registry through a helper.
func badProbeGroup(r *Registry, s *Shard) {
	r.RegisterProbeGroup(func(emit func(string, int64)) {
		emit("n", lazyCount(r))
	})
}

// lazyCount is the helper a probe calls into.
func lazyCount(r *Registry) int64 {
	return *r.Counter("lazy") // want `snapshot probe reaches Registry.Counter`
}

// canonicalOrder takes loadMu, then mu. Not flagged.
func (s *Shard) canonicalOrder() {
	s.loadMu.Lock()
	defer s.loadMu.Unlock()
	s.mu.Lock()
	s.tables[0] = "x"
	s.mu.Unlock()
}

// invertedOrder acquires loadMu while holding mu.
func (s *Shard) invertedOrder() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.loadMu.Lock() // want `acquiring s.loadMu while holding s.mu inverts the canonical lock order`
	s.loadMu.Unlock()
}

// sequential holds the locks one after another, never nested. Not
// flagged.
func (s *Shard) sequential() {
	s.mu.RLock()
	n := len(s.tables)
	s.mu.RUnlock()
	s.loadMu.Lock()
	s.n = int64(n)
	s.loadMu.Unlock()
}

// reentrant re-acquires a held lock.
func (s *Shard) reentrant() {
	s.mu.RLock()
	defer s.mu.RUnlock()
	s.mu.RLock() // want `re-entrant acquisition of s.mu`
	s.mu.RUnlock()
}

// accountLocked acquires loadMu on its receiver.
func (s *Shard) accountLocked() {
	s.loadMu.Lock()
	s.n++
	s.loadMu.Unlock()
}

// invertedViaCall reaches loadMu through a same-receiver call while mu
// is held.
func (s *Shard) invertedViaCall() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.accountLocked() // want `acquiring s.loadMu \(via call to accountLocked\) while holding s.mu`
}

// callAfterUnlock releases mu before the accounting call. Not flagged.
func (s *Shard) callAfterUnlock() {
	s.mu.Lock()
	s.tables[1] = "y"
	s.mu.Unlock()
	s.accountLocked()
}

// otherShard locks a different receiver's mu: no relation to s's
// locks. Not flagged.
func (s *Shard) otherShard(o *Shard) {
	s.mu.Lock()
	defer s.mu.Unlock()
	o.loadMu.Lock()
	o.loadMu.Unlock()
}

// branchScoped takes mu only inside a branch; the accounting call after
// the branch runs unlocked. Not flagged.
func (s *Shard) branchScoped(cond bool) {
	if cond {
		s.mu.Lock()
		s.tables[2] = "z"
		s.mu.Unlock()
	}
	s.accountLocked()
}
