package analysis

import (
	"go/token"
	"strings"
)

// allowPrefix introduces a suppression directive:
//
//	//lint:allow <analyzer> <reason>
//
// placed on the flagged line (trailing) or on the line directly above.
// The reason is mandatory — the driver turns a reasonless, unknown, or
// unused directive into a finding of its own, so every allowlist entry
// in the tree is explained and load-bearing.
const allowPrefix = "//lint:allow"

// AllowAnalyzerName tags directive-hygiene findings in driver output.
const AllowAnalyzerName = "allowdirective"

// allowDirective is one parsed //lint:allow comment.
type allowDirective struct {
	pos      token.Position // of the comment itself
	analyzer string
	reason   string
	used     bool
}

// collectAllows parses every //lint:allow directive in the package's
// files. Malformed directives (no analyzer name at all) are returned
// as-is with an empty analyzer and flagged later.
func collectAllows(pkgs []*Package) []*allowDirective {
	var out []*allowDirective
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					if !strings.HasPrefix(c.Text, allowPrefix) {
						continue
					}
					rest := strings.TrimPrefix(c.Text, allowPrefix)
					fields := strings.Fields(rest)
					d := &allowDirective{pos: pkg.Fset.Position(c.Pos())}
					if len(fields) > 0 {
						d.analyzer = fields[0]
						d.reason = strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(rest), fields[0]))
					}
					out = append(out, d)
				}
			}
		}
	}
	return out
}

// suppresses reports whether directive d covers a finding at pos from
// the named analyzer: same file, same line or the line below the
// directive.
func (d *allowDirective) suppresses(analyzer string, pos token.Position) bool {
	return d.analyzer == analyzer &&
		d.pos.Filename == pos.Filename &&
		(d.pos.Line == pos.Line || d.pos.Line+1 == pos.Line)
}
