// Package analysis is the repo's static-analysis framework: a small,
// dependency-free reimplementation of the golang.org/x/tools/go/analysis
// driver surface (Analyzer / Pass / Diagnostic) plus a package loader
// built on `go list -export` and the standard library's gc importer.
//
// The repo's correctness story — byte-identical scores across
// resharding, tiering, kernel switches, and co-serving — rests on
// conventions that reviews used to enforce by hand: no map-order-
// dependent output in deterministic packages, no wall clock or global
// rand in scoring paths, nil-receiver-safe obs handles, no registry
// re-entry from snapshot probes, lock acquisition in canonical order,
// and every spawned goroutine owned by a Close. The analyzers in the
// subpackages (determinism, nilsafeobs, lockdiscipline,
// goroutinelifecycle) mechanize those rules; cmd/repolint is the
// multichecker that runs them over the tree in CI.
//
// Why not golang.org/x/tools itself: the module deliberately has zero
// external dependencies (a floating x/tools would add the single
// largest one), and everything the analyzers need — parsed syntax,
// full type information, and a deterministic driver — is available
// from the standard library. The API mirrors x/tools' shapes closely
// enough that an analyzer written here ports to a vet-style unitchecker
// mechanically.
//
// Deliberate deviations from a rule are annotated in source:
//
//	//lint:allow <analyzer> <reason>
//
// on the flagged line or the line above. The driver rejects directives
// with an empty reason, an unknown analyzer name, or no diagnostic to
// suppress, so the allowlist cannot silently rot.
package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one invariant checker. The zero value is not
// usable; Name, Doc, and Run are required.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //lint:allow directives. Lowercase, no spaces.
	Name string

	// Doc is a one-paragraph description of the invariant enforced.
	Doc string

	// Run inspects one package and reports findings via pass.Report.
	// A non-nil error aborts the whole run (driver bugs, not findings).
	Run func(*Pass) error
}

// Pass carries one package's syntax and type information to an
// analyzer's Run.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files holds the package's parsed non-test sources, in file-name
	// order (deterministic across runs).
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
	// Report records one finding at a source position.
	Report func(Diagnostic)
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Finding is a resolved diagnostic as the driver returns it: position
// translated through the file set and tagged with the analyzer name.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}
