package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewAndAccessors(t *testing.T) {
	m := New(2, 3)
	if m.Rows != 2 || m.Cols != 3 || len(m.Data) != 6 {
		t.Fatalf("New(2,3) wrong shape: %+v", m)
	}
	m.Set(1, 2, 7)
	if m.At(1, 2) != 7 {
		t.Errorf("At(1,2) = %v, want 7", m.At(1, 2))
	}
	if m.Bytes() != 24 {
		t.Errorf("Bytes = %d, want 24", m.Bytes())
	}
	if m.String() != "Matrix(2x3)" {
		t.Errorf("String = %q", m.String())
	}
}

func TestNewPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	New(-1, 3)
}

func TestFromSlice(t *testing.T) {
	m := FromSlice(2, 2, []float32{1, 2, 3, 4})
	if m.At(1, 0) != 3 {
		t.Errorf("At(1,0) = %v, want 3", m.At(1, 0))
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic on bad length")
		}
	}()
	FromSlice(2, 2, []float32{1})
}

func TestRowIsView(t *testing.T) {
	m := New(2, 2)
	m.Row(1)[0] = 9
	if m.At(1, 0) != 9 {
		t.Error("Row should be a mutable view")
	}
}

func TestClone(t *testing.T) {
	m := FromSlice(1, 2, []float32{1, 2})
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) != 1 {
		t.Error("Clone should not share storage")
	}
}

func TestMatMulKnown(t *testing.T) {
	a := FromSlice(2, 3, []float32{1, 2, 3, 4, 5, 6})
	b := FromSlice(3, 2, []float32{7, 8, 9, 10, 11, 12})
	dst := New(2, 2)
	MatMul(dst, a, b)
	want := []float32{58, 64, 139, 154}
	for i, w := range want {
		if dst.Data[i] != w {
			t.Errorf("dst[%d] = %v, want %v", i, dst.Data[i], w)
		}
	}
}

func TestMatMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := New(4, 4)
	for i := range a.Data {
		a.Data[i] = rng.Float32()
	}
	id := New(4, 4)
	for i := 0; i < 4; i++ {
		id.Set(i, i, 1)
	}
	dst := New(4, 4)
	MatMul(dst, a, id)
	for i := range a.Data {
		if dst.Data[i] != a.Data[i] {
			t.Fatalf("A·I != A at %d: %v vs %v", i, dst.Data[i], a.Data[i])
		}
	}
}

func TestMatMulShapePanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected shape panic")
		}
	}()
	MatMul(New(2, 2), New(2, 3), New(2, 2))
}

// naiveMatMul is the reference implementation for the property test.
func naiveMatMul(a, b *Matrix) *Matrix {
	out := New(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Cols; j++ {
			var acc float32
			for p := 0; p < a.Cols; p++ {
				acc += a.At(i, p) * b.At(p, j)
			}
			out.Set(i, j, acc)
		}
	}
	return out
}

func TestMatMulMatchesNaiveProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, k, n := 1+rng.Intn(8), 1+rng.Intn(8), 1+rng.Intn(8)
		a, b := New(m, k), New(k, n)
		for i := range a.Data {
			a.Data[i] = rng.Float32()*2 - 1
		}
		for i := range b.Data {
			b.Data[i] = rng.Float32()*2 - 1
		}
		got := New(m, n)
		MatMul(got, a, b)
		want := naiveMatMul(a, b)
		for i := range got.Data {
			if diff := math.Abs(float64(got.Data[i] - want.Data[i])); diff > 1e-4 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestAddBiasRows(t *testing.T) {
	m := FromSlice(2, 2, []float32{1, 2, 3, 4})
	AddBiasRows(m, []float32{10, 20})
	want := []float32{11, 22, 13, 24}
	for i, w := range want {
		if m.Data[i] != w {
			t.Errorf("data[%d] = %v, want %v", i, m.Data[i], w)
		}
	}
}

func TestAddBiasPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	AddBiasRows(New(1, 2), []float32{1})
}

func TestReLU(t *testing.T) {
	m := FromSlice(1, 4, []float32{-1, 0, 0.5, 2})
	ReLU(m)
	want := []float32{0, 0, 0.5, 2}
	for i, w := range want {
		if m.Data[i] != w {
			t.Errorf("data[%d] = %v, want %v", i, m.Data[i], w)
		}
	}
}

func TestSigmoid(t *testing.T) {
	m := FromSlice(1, 3, []float32{0, 100, -100})
	Sigmoid(m)
	if m.Data[0] != 0.5 {
		t.Errorf("sigmoid(0) = %v, want 0.5", m.Data[0])
	}
	if m.Data[1] != 1 || m.Data[2] != 0 {
		t.Errorf("sigmoid should clamp extremes: %v", m.Data)
	}
}

func TestSigmoidMonotoneProperty(t *testing.T) {
	f := func(a, b float32) bool {
		if math.IsNaN(float64(a)) || math.IsNaN(float64(b)) {
			return true
		}
		if a > b {
			a, b = b, a
		}
		return sigmoid32(a) <= sigmoid32(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestConcat(t *testing.T) {
	a := FromSlice(2, 1, []float32{1, 2})
	b := FromSlice(2, 2, []float32{3, 4, 5, 6})
	out := Concat(a, b)
	if out.Rows != 2 || out.Cols != 3 {
		t.Fatalf("Concat shape = %dx%d", out.Rows, out.Cols)
	}
	want := []float32{1, 3, 4, 2, 5, 6}
	for i, w := range want {
		if out.Data[i] != w {
			t.Errorf("data[%d] = %v, want %v", i, out.Data[i], w)
		}
	}
}

func TestConcatEmpty(t *testing.T) {
	out := Concat()
	if out.Rows != 0 || out.Cols != 0 {
		t.Errorf("Concat() = %v", out)
	}
}

func TestConcatPanicsOnRowMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Concat(New(1, 1), New(2, 1))
}

func TestPairwiseDot(t *testing.T) {
	f1 := FromSlice(1, 2, []float32{1, 2})
	f2 := FromSlice(1, 2, []float32{3, 4})
	f3 := FromSlice(1, 2, []float32{5, 6})
	out := PairwiseDot([]*Matrix{f1, f2, f3})
	if out.Rows != 1 || out.Cols != 3 {
		t.Fatalf("shape = %dx%d, want 1x3", out.Rows, out.Cols)
	}
	want := []float32{11, 17, 39} // f1·f2, f1·f3, f2·f3
	for i, w := range want {
		if out.Data[i] != w {
			t.Errorf("dot[%d] = %v, want %v", i, out.Data[i], w)
		}
	}
}

func TestPairwiseDotEmpty(t *testing.T) {
	out := PairwiseDot(nil)
	if out.Rows != 0 {
		t.Error("empty input should produce empty output")
	}
}

func TestScaleClip(t *testing.T) {
	m := FromSlice(1, 3, []float32{-2, 1, 5})
	Scale(m, 2)
	Clip(m, -1, 8)
	want := []float32{-1, 2, 8}
	for i, w := range want {
		if m.Data[i] != w {
			t.Errorf("data[%d] = %v, want %v", i, m.Data[i], w)
		}
	}
}

func TestAXPYSumDot(t *testing.T) {
	dst := []float32{1, 1}
	AXPY(dst, 2, []float32{3, 4})
	if dst[0] != 7 || dst[1] != 9 {
		t.Errorf("AXPY = %v", dst)
	}
	Sum(dst, []float32{1, 1})
	if dst[0] != 8 || dst[1] != 10 {
		t.Errorf("Sum = %v", dst)
	}
	if d := Dot([]float32{1, 2}, []float32{3, 4}); d != 11 {
		t.Errorf("Dot = %v, want 11", d)
	}
}

func TestMaxAbs(t *testing.T) {
	if MaxAbs(nil) != 0 {
		t.Error("MaxAbs(nil) should be 0")
	}
	if MaxAbs([]float32{-5, 3}) != 5 {
		t.Error("MaxAbs should use absolute value")
	}
}
