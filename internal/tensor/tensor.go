// Package tensor implements the minimal dense linear-algebra substrate the
// recommendation models need: row-major float32 matrices, GEMM, bias
// addition, and elementwise activations.
//
// The paper's models run on Caffe2's CPU operators; float32 everywhere
// (Section V-A: "All parameters were uncompressed as single-precision
// floating point"). We match that: float32 storage, float32 accumulation
// for elementwise ops, and float32 GEMM with a small amount of register
// blocking — enough that dense-layer cost dominates the per-request compute
// profile the way Fig. 4 reports, without pulling in cgo or assembly.
package tensor

import "fmt"

// Matrix is a dense row-major float32 matrix.
type Matrix struct {
	Rows, Cols int
	// Data holds Rows*Cols values; element (r, c) is Data[r*Cols+c].
	Data []float32
}

// New allocates a zeroed rows×cols matrix. It panics if either dimension
// is negative, which is a programmer error.
func New(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: invalid shape %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float32, rows*cols)}
}

// FromSlice wraps data as a rows×cols matrix without copying. It panics if
// len(data) != rows*cols.
func FromSlice(rows, cols int, data []float32) *Matrix {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("tensor: data length %d does not match %dx%d", len(data), rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: data}
}

// At returns element (r, c).
func (m *Matrix) At(r, c int) float32 { return m.Data[r*m.Cols+c] }

// Set assigns element (r, c).
func (m *Matrix) Set(r, c int, v float32) { m.Data[r*m.Cols+c] = v }

// Row returns a view (not a copy) of row r.
func (m *Matrix) Row(r int) []float32 {
	return m.Data[r*m.Cols : (r+1)*m.Cols]
}

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	out := New(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// Bytes returns the storage footprint of the matrix payload in bytes.
func (m *Matrix) Bytes() int64 { return int64(len(m.Data)) * 4 }

// String renders a compact shape description (not the contents).
func (m *Matrix) String() string { return fmt.Sprintf("Matrix(%dx%d)", m.Rows, m.Cols) }

// MatMul computes dst = a × b for a (m×k) and b (k×n). dst must be m×n and
// may not alias a or b. It panics on shape mismatch. The kernel blocks over
// k in the inner loop with 4-wide unrolling; for the matrix sizes used by
// the recommendation MLPs (tens to a few hundred wide) this is within a
// small factor of what a tuned BLAS achieves, and more importantly its cost
// scales with m·k·n so relative compute attributions are faithful.
func MatMul(dst, a, b *Matrix) {
	if a.Cols != b.Rows || dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMul shape mismatch (%dx%d)·(%dx%d)->(%dx%d)",
			a.Rows, a.Cols, b.Rows, b.Cols, dst.Rows, dst.Cols))
	}
	n := b.Cols
	k := a.Cols
	for i := 0; i < a.Rows; i++ {
		arow := a.Data[i*k : (i+1)*k]
		drow := dst.Data[i*n : (i+1)*n]
		for j := range drow {
			drow[j] = 0
		}
		// Accumulate rank-1 updates row by row of b: cache-friendly for
		// row-major operands.
		for p := 0; p < k; p++ {
			av := arow[p]
			if av == 0 {
				continue
			}
			brow := b.Data[p*n : (p+1)*n]
			j := 0
			for ; j+4 <= n; j += 4 {
				drow[j] += av * brow[j]
				drow[j+1] += av * brow[j+1]
				drow[j+2] += av * brow[j+2]
				drow[j+3] += av * brow[j+3]
			}
			for ; j < n; j++ {
				drow[j] += av * brow[j]
			}
		}
	}
}

// AddBiasRows adds bias (length = m.Cols) to every row of m in place.
func AddBiasRows(m *Matrix, bias []float32) {
	if len(bias) != m.Cols {
		panic(fmt.Sprintf("tensor: bias length %d != cols %d", len(bias), m.Cols))
	}
	for r := 0; r < m.Rows; r++ {
		row := m.Row(r)
		for c := range row {
			row[c] += bias[c]
		}
	}
}

// ReLU applies max(0, x) elementwise in place.
func ReLU(m *Matrix) {
	for i, v := range m.Data {
		if v < 0 {
			m.Data[i] = 0
		}
	}
}

// Sigmoid applies the logistic function elementwise in place.
func Sigmoid(m *Matrix) {
	for i, v := range m.Data {
		m.Data[i] = sigmoid32(v)
	}
}

func sigmoid32(x float32) float32 {
	// Clamp to avoid overflow in exp for extreme logits.
	if x > 30 {
		return 1
	}
	if x < -30 {
		return 0
	}
	return float32(1.0 / (1.0 + exp64(-float64(x))))
}

// Concat concatenates matrices horizontally (same row count). It returns a
// new matrix with Cols = sum of inputs' Cols.
func Concat(ms ...*Matrix) *Matrix {
	if len(ms) == 0 {
		return New(0, 0)
	}
	rows := ms[0].Rows
	cols := 0
	for _, m := range ms {
		if m.Rows != rows {
			panic(fmt.Sprintf("tensor: Concat row mismatch %d != %d", m.Rows, rows))
		}
		cols += m.Cols
	}
	out := New(rows, cols)
	for r := 0; r < rows; r++ {
		off := 0
		dst := out.Row(r)
		for _, m := range ms {
			copy(dst[off:off+m.Cols], m.Row(r))
			off += m.Cols
		}
	}
	return out
}

// PairwiseDot computes the DLRM-style feature interaction: given f feature
// vectors of dimension d per example (rows of each member of feats), it
// returns a matrix with one row per example containing the f·(f−1)/2
// upper-triangular pairwise dot products. All inputs must share shape.
func PairwiseDot(feats []*Matrix) *Matrix {
	if len(feats) == 0 {
		return New(0, 0)
	}
	rows, d := feats[0].Rows, feats[0].Cols
	for _, m := range feats {
		if m.Rows != rows || m.Cols != d {
			panic(fmt.Sprintf("tensor: PairwiseDot shape mismatch %dx%d vs %dx%d", m.Rows, m.Cols, rows, d))
		}
	}
	f := len(feats)
	outCols := f * (f - 1) / 2
	out := New(rows, outCols)
	for r := 0; r < rows; r++ {
		k := 0
		dst := out.Row(r)
		for i := 0; i < f; i++ {
			ri := feats[i].Row(r)
			for j := i + 1; j < f; j++ {
				rj := feats[j].Row(r)
				var acc float32
				for c := 0; c < d; c++ {
					acc += ri[c] * rj[c]
				}
				dst[k] = acc
				k++
			}
		}
	}
	return out
}
