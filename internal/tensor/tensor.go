// Package tensor implements the minimal dense linear-algebra substrate the
// recommendation models need: row-major float32 matrices, GEMM, bias
// addition, and elementwise activations.
//
// The paper's models run on Caffe2's CPU operators; float32 everywhere
// (Section V-A: "All parameters were uncompressed as single-precision
// floating point"). We match that: float32 storage, float32 accumulation
// for elementwise ops, and float32 GEMM with a small amount of register
// blocking — enough that dense-layer cost dominates the per-request compute
// profile the way Fig. 4 reports, without pulling in cgo or assembly.
package tensor

import "fmt"

// Matrix is a dense row-major float32 matrix.
type Matrix struct {
	Rows, Cols int
	// Data holds Rows*Cols values; element (r, c) is Data[r*Cols+c].
	Data []float32
}

// New allocates a zeroed rows×cols matrix. It panics if either dimension
// is negative, which is a programmer error.
func New(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: invalid shape %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float32, rows*cols)}
}

// FromSlice wraps data as a rows×cols matrix without copying. It panics if
// len(data) != rows*cols.
func FromSlice(rows, cols int, data []float32) *Matrix {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("tensor: data length %d does not match %dx%d", len(data), rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: data}
}

// At returns element (r, c).
func (m *Matrix) At(r, c int) float32 { return m.Data[r*m.Cols+c] }

// Set assigns element (r, c).
func (m *Matrix) Set(r, c int, v float32) { m.Data[r*m.Cols+c] = v }

// Row returns a view (not a copy) of row r.
func (m *Matrix) Row(r int) []float32 {
	return m.Data[r*m.Cols : (r+1)*m.Cols]
}

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	out := New(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// Bytes returns the storage footprint of the matrix payload in bytes.
func (m *Matrix) Bytes() int64 { return int64(len(m.Data)) * 4 }

// String renders a compact shape description (not the contents).
func (m *Matrix) String() string { return fmt.Sprintf("Matrix(%dx%d)", m.Rows, m.Cols) }

// MatMul computes dst = a × b for a (m×k) and b (k×n). dst must be m×n and
// may not alias a or b. It panics on shape mismatch. The cache-blocked
// kernel (gemm.go) tiles rows of a across a GOMAXPROCS-sized worker pool
// above a size threshold and runs inline below it; per-element accumulation
// order is fixed, so results are bitwise identical at every parallelism
// and block-size setting. For the matrix sizes used by the recommendation
// MLPs this is within a small factor of what a tuned BLAS achieves, and
// more importantly its cost scales with m·k·n so relative compute
// attributions are faithful.
func MatMul(dst, a, b *Matrix) { matmul(dst, a, b, nil) }

// MatMulEpilogue is MatMul with a fused epilogue: after a row tile of dst
// is fully accumulated, epi(i0, i1) runs on it — still inside the worker
// that owns the tile, so bias addition and activations fuse into the GEMM
// without an extra pass over dst. The epilogue is called with disjoint
// row ranges covering [0, dst.Rows) exactly once and must touch only
// those rows.
func MatMulEpilogue(dst, a, b *Matrix, epi func(i0, i1 int)) { matmul(dst, a, b, epi) }

// shapeErr formats the MatMul shape-mismatch panic.
func shapeErr(op string, dst, a, b *Matrix) string {
	return fmt.Sprintf("tensor: %s shape mismatch (%dx%d)·(%dx%d)->(%dx%d)",
		op, a.Rows, a.Cols, b.Rows, b.Cols, dst.Rows, dst.Cols)
}

// AddBiasRows adds bias (length = m.Cols) to every row of m in place.
func AddBiasRows(m *Matrix, bias []float32) {
	if len(bias) != m.Cols {
		panic(fmt.Sprintf("tensor: bias length %d != cols %d", len(bias), m.Cols))
	}
	for r := 0; r < m.Rows; r++ {
		row := m.Row(r)
		for c := range row {
			row[c] += bias[c]
		}
	}
}

// ReLU applies max(0, x) elementwise in place.
func ReLU(m *Matrix) { ReLUSlice(m.Data) }

// ReLUSlice applies max(0, x) elementwise in place on a raw slice — the
// row-range form fused GEMM epilogues use.
func ReLUSlice(xs []float32) {
	for i, v := range xs {
		if v < 0 {
			xs[i] = 0
		}
	}
}

// Sigmoid applies the logistic function elementwise in place.
func Sigmoid(m *Matrix) { SigmoidSlice(m.Data) }

// SigmoidSlice applies the logistic function elementwise in place on a
// raw slice.
func SigmoidSlice(xs []float32) {
	for i, v := range xs {
		xs[i] = sigmoid32(v)
	}
}

func sigmoid32(x float32) float32 {
	// Clamp to avoid overflow in exp for extreme logits.
	if x > 30 {
		return 1
	}
	if x < -30 {
		return 0
	}
	return float32(1.0 / (1.0 + exp64(-float64(x))))
}

// Concat concatenates matrices horizontally (same row count). It returns a
// new matrix with Cols = sum of inputs' Cols.
func Concat(ms ...*Matrix) *Matrix {
	if len(ms) == 0 {
		return New(0, 0)
	}
	rows := ms[0].Rows
	cols := 0
	for _, m := range ms {
		if m.Rows != rows {
			panic(fmt.Sprintf("tensor: Concat row mismatch %d != %d", m.Rows, rows))
		}
		cols += m.Cols
	}
	out := New(rows, cols)
	ConcatInto(out, ms...)
	return out
}

// ConcatInto concatenates matrices horizontally into dst, which must be
// rows×Σcols. It panics on shape mismatch. dst may not alias an input.
func ConcatInto(dst *Matrix, ms ...*Matrix) {
	cols := 0
	for _, m := range ms {
		if m.Rows != dst.Rows {
			panic(fmt.Sprintf("tensor: ConcatInto row mismatch %d != %d", m.Rows, dst.Rows))
		}
		cols += m.Cols
	}
	if cols != dst.Cols {
		panic(fmt.Sprintf("tensor: ConcatInto dst has %d cols, inputs total %d", dst.Cols, cols))
	}
	for r := 0; r < dst.Rows; r++ {
		off := 0
		out := dst.Row(r)
		for _, m := range ms {
			copy(out[off:off+m.Cols], m.Row(r))
			off += m.Cols
		}
	}
}

// PairwiseDot computes the DLRM-style feature interaction: given f feature
// vectors of dimension d per example (rows of each member of feats), it
// returns a matrix with one row per example containing the f·(f−1)/2
// upper-triangular pairwise dot products. All inputs must share shape.
func PairwiseDot(feats []*Matrix) *Matrix {
	if len(feats) == 0 {
		return New(0, 0)
	}
	f := len(feats)
	out := New(feats[0].Rows, f*(f-1)/2)
	PairwiseDotInto(out, feats)
	return out
}

// PairwiseDotInto is PairwiseDot writing into dst, which must be
// rows × f·(f−1)/2 for f equal-shaped feature matrices. dst may not
// alias an input.
func PairwiseDotInto(dst *Matrix, feats []*Matrix) {
	if len(feats) == 0 {
		if dst.Rows != 0 || dst.Cols != 0 {
			panic("tensor: PairwiseDotInto dst not empty for zero features")
		}
		return
	}
	rows, d := feats[0].Rows, feats[0].Cols
	for _, m := range feats {
		if m.Rows != rows || m.Cols != d {
			panic(fmt.Sprintf("tensor: PairwiseDotInto shape mismatch %dx%d vs %dx%d", m.Rows, m.Cols, rows, d))
		}
	}
	f := len(feats)
	if dst.Rows != rows || dst.Cols != f*(f-1)/2 {
		panic(fmt.Sprintf("tensor: PairwiseDotInto dst %dx%d, want %dx%d", dst.Rows, dst.Cols, rows, f*(f-1)/2))
	}
	for r := 0; r < rows; r++ {
		PairwiseDotRow(dst.Row(r), feats, r)
	}
}

// PairwiseDotRow writes row r's f·(f−1)/2 upper-triangular pairwise dot
// products into dst, which may be any slice of at least that length
// (e.g. a column range of a wider row). It is the single accumulation
// loop behind PairwiseDot and the engine's fused interaction op, so the
// bitwise accumulation order cannot drift between them.
func PairwiseDotRow(dst []float32, feats []*Matrix, r int) {
	k := 0
	for i := 0; i < len(feats); i++ {
		ri := feats[i].Row(r)
		for j := i + 1; j < len(feats); j++ {
			rj := feats[j].Row(r)
			var acc float32
			for c := range ri {
				acc += ri[c] * rj[c]
			}
			dst[k] = acc
			k++
		}
	}
}
