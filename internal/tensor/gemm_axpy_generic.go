//go:build !amd64

package tensor

// Portable axpy primitives for the vector kernel on architectures
// without an assembly implementation. The micro-kernel's register
// blocking still cuts B traffic and loop overhead here; only the SIMD
// width is missing. Loop bodies keep the exact expression shape of the
// generic kernel so per-element results are bitwise identical.

// axpy4 accumulates d·[j] += a·*b[j] for four destination rows sharing
// one streamed b row. All five slices have equal length.
func axpy4(d0, d1, d2, d3, b []float32, a0, a1, a2, a3 float32) {
	for j, bv := range b {
		d0[j] += a0 * bv
		d1[j] += a1 * bv
		d2[j] += a2 * bv
		d3[j] += a3 * bv
	}
}

// axpy1 accumulates d[j] += a*b[j]. Both slices have equal length.
func axpy1(d, b []float32, a float32) {
	for j, bv := range b {
		d[j] += a * bv
	}
}
