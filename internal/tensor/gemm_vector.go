package tensor

// The hand-vectorized GEMM micro-kernel. The generic kernel streams b
// through one output row at a time, so for an m-row batch every element
// of b is loaded m times; at the serving shapes (64×418×256) that B
// traffic, not arithmetic, bounds throughput. The micro-kernel advances
// four output rows together through one streamed row of b: each loaded
// b value feeds four independent accumulators held in registers, cutting
// B traffic 4× and amortizing loop overhead across an unroll-by-4 body
// the compiler keeps branch-free.
//
// Bitwise contract (what lets dispatch swap this in for the generic
// kernel): every dst element is still one accumulator summed over k in
// strictly ascending order, and an a value of zero still contributes
// nothing (the generic kernel's zero-skip — load-bearing for -0.0 and
// NaN/Inf payloads, where adding 0*bv is not a no-op). The micro-kernel
// checks the four a values per k step: all nonzero takes the unrolled
// body, otherwise each nonzero row accumulates alone. Either way each
// element receives exactly the same float32 operations in the same order
// as the generic kernel, so results are bitwise identical — the property
// internal/kerneltest proves across adversarial shapes and payloads.

// gemmRowsVector computes rows [i0, i1) of dst = a×b with the 4-row
// micro-kernel, falling back to single-row accumulation for the ≤3-row
// tail. Shape validation happened in matmul.
func gemmRowsVector(dst, a, b *Matrix, i0, i1 int) {
	k, n := a.Cols, b.Cols
	if n <= gemmColBlock {
		// Streaming path: whole rows of b through four accumulator rows.
		i := i0
		for ; i+4 <= i1; i += 4 {
			zeroRows(dst, i, i+4, 0, n)
			gemmMicro4(dst, a, b, i, 0, n, 0, k)
		}
		for ; i < i1; i++ {
			zeroRows(dst, i, i+1, 0, n)
			gemmMicro1(dst, a, b, i, 0, n, 0, k)
		}
		return
	}
	// Wide outputs: same column/k panel blocking as the generic kernel
	// (k panels ascend, preserving per-element accumulation order), with
	// the micro-kernel walking each panel.
	for jb := 0; jb < n; jb += gemmColBlock {
		je := jb + gemmColBlock
		if je > n {
			je = n
		}
		zeroRows(dst, i0, i1, jb, je)
		for kb := 0; kb < k; kb += gemmKBlock {
			ke := kb + gemmKBlock
			if ke > k {
				ke = k
			}
			i := i0
			for ; i+4 <= i1; i += 4 {
				gemmMicro4(dst, a, b, i, jb, je, kb, ke)
			}
			for ; i < i1; i++ {
				gemmMicro1(dst, a, b, i, jb, je, kb, ke)
			}
		}
	}
}

// zeroRows clears dst columns [jb, je) of rows [r0, r1).
func zeroRows(dst *Matrix, r0, r1, jb, je int) {
	n := dst.Cols
	for r := r0; r < r1; r++ {
		drow := dst.Data[r*n+jb : r*n+je]
		for x := range drow {
			drow[x] = 0
		}
	}
}

// gemmMicro4 accumulates the 4-row micro tile: dst rows i..i+3 over
// columns [jb, je) and the k range [kb, ke). The destination rows must
// already be zeroed (or hold the lower k panels' partial sums).
func gemmMicro4(dst, a, b *Matrix, i, jb, je, kb, ke int) {
	k, n := a.Cols, b.Cols
	w := je - jb
	if w <= 0 {
		return
	}
	a0 := a.Data[i*k : (i+1)*k]
	a1 := a.Data[(i+1)*k : (i+2)*k]
	a2 := a.Data[(i+2)*k : (i+3)*k]
	a3 := a.Data[(i+3)*k : (i+4)*k]
	// Reslice all five rows to the shared width so the compiler can prove
	// d·[j] in-bounds from j < len(brow) and drop the bounds checks.
	d0 := dst.Data[i*n+jb:][:w]
	d1 := dst.Data[(i+1)*n+jb:][:w]
	d2 := dst.Data[(i+2)*n+jb:][:w]
	d3 := dst.Data[(i+3)*n+jb:][:w]
	for p := kb; p < ke; p++ {
		av0, av1, av2, av3 := a0[p], a1[p], a2[p], a3[p]
		brow := b.Data[p*n+jb:][:w]
		if av0 != 0 && av1 != 0 && av2 != 0 && av3 != 0 {
			axpy4(d0, d1, d2, d3, brow, av0, av1, av2, av3)
			continue
		}
		// Zero-skip tail: only rows with a nonzero a value accumulate,
		// exactly as the generic kernel skips them. Row order here is
		// free — the four rows are disjoint accumulators.
		if av0 != 0 {
			axpy1(d0, brow, av0)
		}
		if av1 != 0 {
			axpy1(d1, brow, av1)
		}
		if av2 != 0 {
			axpy1(d2, brow, av2)
		}
		if av3 != 0 {
			axpy1(d3, brow, av3)
		}
	}
}

// gemmMicro1 is the single-row tail of the micro-kernel — the same loop
// body as the generic kernel's panel pass, kept here so the vector path
// never calls across into the generic kernel mid-row-range.
func gemmMicro1(dst, a, b *Matrix, i, jb, je, kb, ke int) {
	k, n := a.Cols, b.Cols
	w := je - jb
	if w <= 0 {
		return
	}
	arow := a.Data[i*k : (i+1)*k]
	drow := dst.Data[i*n+jb:][:w]
	for p := kb; p < ke; p++ {
		av := arow[p]
		if av == 0 {
			continue
		}
		axpy1(drow, b.Data[p*n+jb:][:w], av)
	}
}
