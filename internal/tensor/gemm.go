package tensor

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// The GEMM engine: one cache-blocked kernel executed either inline or
// tiled across a worker pool. Parallelism never changes results — every
// dst element is owned by exactly one row tile, and inside a tile the
// k accumulation always runs in ascending order — so the parallel and
// serial paths are bitwise identical and migration/score-identity checks
// hold regardless of host core count or the knobs below.

const (
	// defaultBlockRows is the row-tile height handed to one worker: small
	// enough that a coalesced batch of 64+ items fans out across cores,
	// large enough that per-tile dispatch cost is noise next to the tile's
	// k×n accumulation work.
	defaultBlockRows = 16
	// gemmColBlock and gemmKBlock bound the B panel touched by one inner
	// block of the wide-operand path to gemmKBlock×gemmColBlock floats
	// (1 MiB). Outputs up to gemmColBlock wide — every MLP layer in the
	// models — instead take the streaming path, whose full-row inner loop
	// measures ~30% faster at those shapes. k blocks are walked in
	// ascending order so per-element accumulation order is fixed and both
	// paths produce bitwise-identical elements.
	gemmColBlock = 512
	gemmKBlock   = 512
	// gemmSerialWork is the m·k·n floor (multiply-adds) below which MatMul
	// stays inline: tiny matrices would pay more in dispatch than they
	// recover in parallelism.
	gemmSerialWork = 1 << 16
)

var (
	// denseWorkers is the per-call fan-out cap; 0 means GOMAXPROCS.
	denseWorkers atomic.Int32
	// blockRowsCfg is the configured row-tile height; 0 means default.
	blockRowsCfg atomic.Int32
)

// SetParallelism caps how many workers one MatMul fans out across.
// n <= 0 restores the default (GOMAXPROCS); 1 forces the serial path.
// Results are identical at every setting.
func SetParallelism(n int) {
	if n < 0 {
		n = 0
	}
	denseWorkers.Store(int32(n))
}

// Parallelism reports the effective per-call worker cap.
func Parallelism() int {
	if n := denseWorkers.Load(); n > 0 {
		return int(n)
	}
	return runtime.GOMAXPROCS(0)
}

// SetBlockRows sets the row-tile height one worker processes per claim.
// n <= 0 restores the default. Results are identical at every setting.
func SetBlockRows(n int) {
	if n < 0 {
		n = 0
	}
	blockRowsCfg.Store(int32(n))
}

// BlockRows reports the effective row-tile height.
func BlockRows() int {
	if n := blockRowsCfg.Load(); n > 0 {
		return int(n)
	}
	return defaultBlockRows
}

// gemmJob is one MatMul's tile queue. Workers (and the submitting
// goroutine) claim tiles from next until exhausted; wg counts tile
// completions, so Wait returns only when every tile is written.
type gemmJob struct {
	dst, a, b *Matrix
	epi       func(i0, i1 int)
	block     int
	vec       bool
	tiles     int32
	next      atomic.Int32
	wg        sync.WaitGroup
}

func (j *gemmJob) run() {
	for {
		t := j.next.Add(1) - 1
		if t >= j.tiles {
			return
		}
		i0 := int(t) * j.block
		i1 := i0 + j.block
		if i1 > j.dst.Rows {
			i1 = j.dst.Rows
		}
		gemmRows(j.dst, j.a, j.b, i0, i1, j.vec)
		if j.epi != nil {
			j.epi(i0, i1)
		}
		j.wg.Done()
	}
}

// gemmWorkers is the process-wide dense worker pool, started lazily and
// sized by GOMAXPROCS. Job handles are cheap claims on a tile queue: a
// worker that drains a stale handle (the submitter already finished the
// tiles) returns immediately, so a full channel never blocks a MatMul —
// the submitter always works its own queue too.
var gemmWorkers struct {
	once sync.Once
	jobs chan *gemmJob
}

func gemmPool() chan *gemmJob {
	gemmWorkers.once.Do(func() {
		n := runtime.GOMAXPROCS(0)
		gemmWorkers.jobs = make(chan *gemmJob, 8*n)
		for i := 0; i < n; i++ {
			go func() {
				for j := range gemmWorkers.jobs {
					j.run()
				}
			}()
		}
	})
	return gemmWorkers.jobs
}

// matmul runs the shared kernel serially or tiled, with an optional
// per-row-range epilogue (bias/activation fusion) applied by whichever
// goroutine finished the tile. The epilogue sees disjoint row ranges
// covering [0, dst.Rows) exactly once.
func matmul(dst, a, b *Matrix, epi func(i0, i1 int)) {
	if a.Cols != b.Rows || dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic(shapeErr("MatMul", dst, a, b))
	}
	block := BlockRows()
	work := int64(a.Rows) * int64(a.Cols) * int64(b.Cols)
	workers := Parallelism()
	// Resolve kernel dispatch once per MatMul so every tile of one call
	// runs the same kernel even if SetKernel races the call.
	vec := ActiveKernel() == KernelVector
	if workers <= 1 || dst.Rows <= block || work < gemmSerialWork {
		gemmRows(dst, a, b, 0, dst.Rows, vec)
		if epi != nil && dst.Rows > 0 {
			epi(0, dst.Rows)
		}
		return
	}

	job := &gemmJob{dst: dst, a: a, b: b, epi: epi, block: block, vec: vec}
	job.tiles = int32((dst.Rows + block - 1) / block)
	job.wg.Add(int(job.tiles))
	// Post at most workers-1 claim handles (the submitter is a worker
	// too); a full pool channel just means the submitter and the already
	// posted handles carry the job.
	post := workers - 1
	if t := int(job.tiles) - 1; post > t {
		post = t
	}
	jobs := gemmPool()
posting:
	for i := 0; i < post; i++ {
		select {
		case jobs <- job:
		default:
			break posting
		}
	}
	job.run()
	job.wg.Wait()
}

// gemmRows computes rows [i0, i1) of dst = a×b with the kernel selected
// at matmul entry: the register-blocked micro-kernel (gemm_vector.go) or
// the generic streaming kernel below. Per element the accumulation runs
// over k strictly ascending with the same zero-skip on every path — the
// bitwise-determinism contract — so the kernels are interchangeable
// bit for bit. (The j traversal order is free: each output element is a
// single independent accumulator.)
func gemmRows(dst, a, b *Matrix, i0, i1 int, vec bool) {
	if vec {
		gemmRowsVector(dst, a, b, i0, i1)
		return
	}
	gemmRowsGeneric(dst, a, b, i0, i1)
}

// gemmRowsGeneric is the portable reference kernel: one output row at a
// time, whole streamed rows of b through the accumulator row (or column/k
// panels for wide outputs).
func gemmRowsGeneric(dst, a, b *Matrix, i0, i1 int) {
	k, n := a.Cols, b.Cols
	if n <= gemmColBlock {
		// Streaming path: whole rows of b through the accumulator row.
		// This covers every dense layer in the models and beats the
		// panel-blocked loop there — the accumulator row lives in L1 and
		// b streams sequentially.
		for i := i0; i < i1; i++ {
			arow := a.Data[i*k : (i+1)*k]
			drow := dst.Data[i*n : (i+1)*n]
			for x := range drow {
				drow[x] = 0
			}
			for p, av := range arow {
				if av == 0 {
					continue
				}
				brow := b.Data[p*n : (p+1)*n]
				for j, bv := range brow {
					drow[j] += av * bv
				}
			}
		}
		return
	}
	// Wide outputs: panel over columns (and k) so the b block a row pass
	// touches stays cache-resident. k panels ascend, preserving the
	// per-element accumulation order of the streaming path.
	for jb := 0; jb < n; jb += gemmColBlock {
		je := jb + gemmColBlock
		if je > n {
			je = n
		}
		for i := i0; i < i1; i++ {
			drow := dst.Data[i*n+jb : i*n+je]
			for x := range drow {
				drow[x] = 0
			}
		}
		for kb := 0; kb < k; kb += gemmKBlock {
			ke := kb + gemmKBlock
			if ke > k {
				ke = k
			}
			for i := i0; i < i1; i++ {
				arow := a.Data[i*k : (i+1)*k]
				drow := dst.Data[i*n+jb : i*n+je]
				for p := kb; p < ke; p++ {
					av := arow[p]
					if av == 0 {
						continue
					}
					brow := b.Data[p*n+jb : p*n+je]
					for j, bv := range brow {
						drow[j] += av * bv
					}
				}
			}
		}
	}
}
