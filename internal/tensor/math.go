package tensor

import "math"

// exp64 is a thin indirection over math.Exp so the activation kernels keep
// a single call site; it exists to make the float64 round-trip in sigmoid
// explicit rather than incidental.
func exp64(x float64) float64 { return math.Exp(x) }

// Scale multiplies every element of m by s in place.
func Scale(m *Matrix, s float32) {
	for i := range m.Data {
		m.Data[i] *= s
	}
}

// Clip clamps every element of m into [lo, hi] in place. The production
// models in the paper include scale/clip operators in their preprocessing
// stages (Fig. 4's "Scale/Clip" group).
func Clip(m *Matrix, lo, hi float32) {
	for i, v := range m.Data {
		if v < lo {
			m.Data[i] = lo
		} else if v > hi {
			m.Data[i] = hi
		}
	}
}

// AXPY computes dst[i] += a*x[i] over float32 slices of equal length.
func AXPY(dst []float32, a float32, x []float32) {
	_ = dst[len(x)-1] // bounds-check hint
	for i, v := range x {
		dst[i] += a * v
	}
}

// Sum adds x into dst elementwise; the two slices must have equal length.
func Sum(dst, x []float32) {
	_ = dst[len(x)-1]
	for i, v := range x {
		dst[i] += v
	}
}

// Dot returns the inner product of equal-length slices.
func Dot(a, b []float32) float32 {
	var acc float32
	_ = b[len(a)-1]
	for i, v := range a {
		acc += v * b[i]
	}
	return acc
}

// MaxAbs returns the largest absolute value in xs (0 for empty input).
func MaxAbs(xs []float32) float32 {
	var m float32
	for _, v := range xs {
		if v < 0 {
			v = -v
		}
		if v > m {
			m = v
		}
	}
	return m
}
