// SIMD axpy kernels for the vectorized GEMM micro-kernel (see
// gemm_axpy_amd64.go for the dispatch contract). Operand-order note:
// per element both kernels compute t = a*b then d = d+t, with the same
// first-source operand the compiled generic kernel uses (b for the
// multiply, t for the add — verified empirically by the NaN-payload
// probes in internal/kerneltest), so even NaN-payload propagation — where x86
// returns the first source's quiet NaN when both operands are NaN —
// matches the scalar kernels bit for bit. MXCSR is left untouched:
// round-to-nearest, denormals honored, exactly as compiled Go code runs.

#include "textflag.h"

// func cpuid(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuid(SB), NOSPLIT, $0-24
	MOVL leaf+0(FP), AX
	MOVL sub+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv0() (eax, edx uint32)
TEXT ·xgetbv0(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET

// func axpy4ptr(d0, d1, d2, d3, b *float32, n int, a0, a1, a2, a3 float32)
//
// Four destination rows advance together through one streamed b row:
// d·[j] += a· * b[j] for j in [0, n). 8-wide AVX when enabled, 4-wide
// SSE2 otherwise, scalar tail; every width performs the identical
// per-element multiply-then-add.
TEXT ·axpy4ptr(SB), NOSPLIT, $0-64
	MOVQ d0+0(FP), DI
	MOVQ d1+8(FP), SI
	MOVQ d2+16(FP), DX
	MOVQ d3+24(FP), CX
	MOVQ b+32(FP), BX
	MOVQ n+40(FP), AX
	CMPB ·useAVX(SB), $1
	JNE  sse_setup
	CMPQ AX, $8
	JL   sse_setup
	VBROADCASTSS a0+48(FP), Y0
	VBROADCASTSS a1+52(FP), Y1
	VBROADCASTSS a2+56(FP), Y2
	VBROADCASTSS a3+60(FP), Y3

avx8:
	VMOVUPS (BX), Y4
	VMULPS  Y0, Y4, Y5
	VMOVUPS (DI), Y6
	VADDPS  Y6, Y5, Y5
	VMOVUPS Y5, (DI)
	VMULPS  Y1, Y4, Y5
	VMOVUPS (SI), Y6
	VADDPS  Y6, Y5, Y5
	VMOVUPS Y5, (SI)
	VMULPS  Y2, Y4, Y5
	VMOVUPS (DX), Y6
	VADDPS  Y6, Y5, Y5
	VMOVUPS Y5, (DX)
	VMULPS  Y3, Y4, Y5
	VMOVUPS (CX), Y6
	VADDPS  Y6, Y5, Y5
	VMOVUPS Y5, (CX)
	ADDQ    $32, BX
	ADDQ    $32, DI
	ADDQ    $32, SI
	ADDQ    $32, DX
	ADDQ    $32, CX
	SUBQ    $8, AX
	CMPQ    AX, $8
	JGE     avx8
	VZEROUPPER

sse_setup:
	MOVSS  a0+48(FP), X0
	SHUFPS $0, X0, X0
	MOVSS  a1+52(FP), X1
	SHUFPS $0, X1, X1
	MOVSS  a2+56(FP), X2
	SHUFPS $0, X2, X2
	MOVSS  a3+60(FP), X3
	SHUFPS $0, X3, X3

sse4:
	CMPQ   AX, $4
	JL     scalar
	MOVUPS (BX), X4
	MOVAPS X4, X5
	MULPS  X0, X5
	MOVUPS (DI), X6
	ADDPS  X6, X5
	MOVUPS X5, (DI)
	MOVAPS X4, X5
	MULPS  X1, X5
	MOVUPS (SI), X6
	ADDPS  X6, X5
	MOVUPS X5, (SI)
	MOVAPS X4, X5
	MULPS  X2, X5
	MOVUPS (DX), X6
	ADDPS  X6, X5
	MOVUPS X5, (DX)
	MOVAPS X4, X5
	MULPS  X3, X5
	MOVUPS (CX), X6
	ADDPS  X6, X5
	MOVUPS X5, (CX)
	ADDQ   $16, BX
	ADDQ   $16, DI
	ADDQ   $16, SI
	ADDQ   $16, DX
	ADDQ   $16, CX
	SUBQ   $4, AX
	JMP    sse4

scalar:
	CMPQ  AX, $0
	JLE   done
	MOVSS (BX), X4
	MOVAPS X4, X5
	MULSS X0, X5
	MOVSS (DI), X6
	ADDSS X6, X5
	MOVSS X5, (DI)
	MOVAPS X4, X5
	MULSS X1, X5
	MOVSS (SI), X6
	ADDSS X6, X5
	MOVSS X5, (SI)
	MOVAPS X4, X5
	MULSS X2, X5
	MOVSS (DX), X6
	ADDSS X6, X5
	MOVSS X5, (DX)
	MOVAPS X4, X5
	MULSS X3, X5
	MOVSS (CX), X6
	ADDSS X6, X5
	MOVSS X5, (CX)
	ADDQ  $4, BX
	ADDQ  $4, DI
	ADDQ  $4, SI
	ADDQ  $4, DX
	ADDQ  $4, CX
	DECQ  AX
	JMP   scalar

done:
	RET

// func axpy1ptr(d, b *float32, n int, a float32)
//
// Single-row axpy: d[j] += a * b[j] for j in [0, n). Used by the
// micro-kernel's zero-skip path and its ≤3-row tails.
TEXT ·axpy1ptr(SB), NOSPLIT, $0-28
	MOVQ d+0(FP), DI
	MOVQ b+8(FP), BX
	MOVQ n+16(FP), AX
	CMPB ·useAVX(SB), $1
	JNE  sse_setup1
	CMPQ AX, $8
	JL   sse_setup1
	VBROADCASTSS a+24(FP), Y0

avx8_1:
	VMOVUPS (BX), Y4
	VMULPS  Y0, Y4, Y5
	VMOVUPS (DI), Y6
	VADDPS  Y6, Y5, Y5
	VMOVUPS Y5, (DI)
	ADDQ    $32, BX
	ADDQ    $32, DI
	SUBQ    $8, AX
	CMPQ    AX, $8
	JGE     avx8_1
	VZEROUPPER

sse_setup1:
	MOVSS  a+24(FP), X0
	SHUFPS $0, X0, X0

sse4_1:
	CMPQ   AX, $4
	JL     scalar1
	MOVUPS (BX), X4
	MOVAPS X4, X5
	MULPS  X0, X5
	MOVUPS (DI), X6
	ADDPS  X6, X5
	MOVUPS X5, (DI)
	ADDQ   $16, BX
	ADDQ   $16, DI
	SUBQ   $4, AX
	JMP    sse4_1

scalar1:
	CMPQ  AX, $0
	JLE   done1
	MOVSS (BX), X4
	MOVAPS X4, X5
	MULSS X0, X5
	MOVSS (DI), X6
	ADDSS X6, X5
	MOVSS X5, (DI)
	ADDQ  $4, BX
	ADDQ  $4, DI
	DECQ  AX
	JMP   scalar1

done1:
	RET
