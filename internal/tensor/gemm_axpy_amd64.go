//go:build amd64

package tensor

// SIMD axpy primitives for the vector kernel. The assembly
// (gemm_axpy_amd64.s) processes 8 floats per step with AVX when the
// host supports it (CPUID OSXSAVE+AVX plus XCR0 confirming the OS saves
// YMM state) and falls back to 4-wide SSE2 — always present on amd64 —
// otherwise, with a scalar tail. All widths perform, per element,
// exactly the two operations the generic kernel performs (one float32
// multiply, one float32 add, in that order), so lane width never changes
// results: IEEE lanes are independent and MXCSR stays at Go's defaults
// (round-to-nearest, denormals honored).

// useAVX is read by the assembly to pick the 8-wide loop. Set once at
// init; a plain byte-sized load in the kernel, not atomic, because it
// never changes after init.
var useAVX = detectAVX()

// cpuid executes CPUID for the given leaf/subleaf.
func cpuid(leaf, sub uint32) (eax, ebx, ecx, edx uint32)

// xgetbv0 reads XCR0, the OS-enabled extended-state mask.
func xgetbv0() (eax, edx uint32)

// detectAVX reports whether AVX instructions are both implemented by the
// CPU and enabled by the OS (XCR0 must show x87+SSE+AVX state saved).
func detectAVX() bool {
	maxLeaf, _, _, _ := cpuid(0, 0)
	if maxLeaf < 1 {
		return false
	}
	const osxsave = 1 << 27
	const avx = 1 << 28
	_, _, ecx, _ := cpuid(1, 0)
	if ecx&osxsave == 0 || ecx&avx == 0 {
		return false
	}
	lo, _ := xgetbv0()
	return lo&0x6 == 0x6
}

//go:noescape
func axpy4ptr(d0, d1, d2, d3, b *float32, n int, a0, a1, a2, a3 float32)

//go:noescape
func axpy1ptr(d, b *float32, n int, a float32)

// axpy4 accumulates d·[j] += a·*b[j] for four destination rows sharing
// one streamed b row. All five slices have equal length.
func axpy4(d0, d1, d2, d3, b []float32, a0, a1, a2, a3 float32) {
	if len(b) == 0 {
		return
	}
	axpy4ptr(&d0[0], &d1[0], &d2[0], &d3[0], &b[0], len(b), a0, a1, a2, a3)
}

// axpy1 accumulates d[j] += a*b[j]. Both slices have equal length.
func axpy1(d, b []float32, a float32) {
	if len(b) == 0 {
		return
	}
	axpy1ptr(&d[0], &b[0], len(b), a)
}
