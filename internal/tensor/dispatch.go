package tensor

import (
	"fmt"
	"os"
	"runtime"
	"sync/atomic"
	"unsafe"
)

// Kernel dispatch: every hot arithmetic loop in the tree (the GEMM
// micro-kernel here, the word-wide quantized row decode in
// internal/quant) exists in two implementations — a portable generic
// kernel and a hand-vectorized one — selected through this table. The
// contract that makes swapping them safe is bitwise identity: a
// vectorized kernel keeps the generic kernel's per-element accumulation
// order and zero-skip semantics exactly, so dispatch never changes
// scores, only wall clock. The differential harness in
// internal/kerneltest (plus the in-package property tests and the quant
// fuzz targets) is what proves that, and CI runs the full kernel-package
// suite once per forced setting so neither path can rot.

// Kernel names one dispatchable implementation family.
type Kernel int32

const (
	// KernelAuto resolves to the vectorized kernels when the host
	// supports them and the generic ones otherwise. The default.
	KernelAuto Kernel = iota
	// KernelGeneric forces the portable reference kernels everywhere.
	KernelGeneric
	// KernelVector requests the hand-vectorized kernels (register-blocked
	// GEMM micro-kernel, word-wide unsafe row decode). On hosts where the
	// vector kernels are ineligible it resolves to KernelGeneric — forcing
	// a kernel never makes results wrong, at worst slower.
	KernelVector
)

// String implements fmt.Stringer for diagnostics and flag echoing.
func (k Kernel) String() string {
	switch k {
	case KernelAuto:
		return "auto"
	case KernelGeneric:
		return "generic"
	case KernelVector:
		return "vector"
	default:
		return fmt.Sprintf("Kernel(%d)", int32(k))
	}
}

// KernelFromString parses a kernel name as accepted by the REPRO_KERNEL
// environment variable and the drmserve -kernel flag.
func KernelFromString(s string) (Kernel, error) {
	switch s {
	case "", "auto":
		return KernelAuto, nil
	case "generic", "scalar":
		return KernelGeneric, nil
	case "vector":
		return KernelVector, nil
	default:
		return KernelAuto, fmt.Errorf("tensor: unknown kernel %q (want auto, generic, or vector)", s)
	}
}

// kernelCfg holds the configured (not yet resolved) kernel selection.
var kernelCfg atomic.Int32

// vectorEligible reports whether the hand-vectorized kernels may run on
// this host. They assume a 64-bit little-endian machine that tolerates
// unaligned word loads (the unsafe row decode reads 8 bytes at arbitrary
// byte offsets), which amd64 and arm64 guarantee; elsewhere dispatch
// resolves to the generic kernels.
var vectorEligible = (runtime.GOARCH == "amd64" || runtime.GOARCH == "arm64") &&
	hostLittleEndian() && unsafe.Sizeof(uintptr(0)) == 8

// hostLittleEndian probes byte order at runtime rather than trusting an
// arch list: a future port that lies about endianness fails safe here.
func hostLittleEndian() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}

// VectorSupported reports whether the vectorized kernels are eligible on
// this host (independent of the configured selection).
func VectorSupported() bool { return vectorEligible }

// SetKernel selects the kernel family for every dispatched hot loop.
// KernelAuto restores the default. The selection is process-wide and
// results are bitwise identical at every setting.
func SetKernel(k Kernel) {
	switch k {
	case KernelAuto, KernelGeneric, KernelVector:
		kernelCfg.Store(int32(k))
	default:
		kernelCfg.Store(int32(KernelAuto))
	}
}

// ConfiguredKernel reports the requested selection, before host
// eligibility resolution.
func ConfiguredKernel() Kernel { return Kernel(kernelCfg.Load()) }

// ActiveKernel resolves the configured selection against host
// eligibility: the value actually consulted by the hot loops. It only
// ever returns KernelGeneric or KernelVector.
func ActiveKernel() Kernel {
	switch Kernel(kernelCfg.Load()) {
	case KernelGeneric:
		return KernelGeneric
	case KernelVector, KernelAuto:
		if vectorEligible {
			return KernelVector
		}
		return KernelGeneric
	}
	return KernelGeneric
}

// init seeds the dispatch table from REPRO_KERNEL so any deployment (and
// the CI dispatch matrix) can force either path without code changes.
// Unknown values fall back to auto rather than failing startup: the env
// override is an operational knob, not a correctness gate.
func init() {
	if k, err := KernelFromString(os.Getenv("REPRO_KERNEL")); err == nil {
		SetKernel(k)
	}
}
