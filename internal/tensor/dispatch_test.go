package tensor

import "testing"

// TestKernelFromString pins the flag/env vocabulary: auto, generic (with
// scalar as an alias), vector, and the empty default; anything else is
// an error that names the valid values.
func TestKernelFromString(t *testing.T) {
	cases := []struct {
		in   string
		want Kernel
		ok   bool
	}{
		{"", KernelAuto, true},
		{"auto", KernelAuto, true},
		{"generic", KernelGeneric, true},
		{"scalar", KernelGeneric, true},
		{"vector", KernelVector, true},
		{"avx", KernelAuto, false},
		{"VECTOR", KernelAuto, false},
	}
	for _, c := range cases {
		got, err := KernelFromString(c.in)
		if (err == nil) != c.ok || got != c.want {
			t.Errorf("KernelFromString(%q) = %v, %v; want %v, ok=%v", c.in, got, err, c.want, c.ok)
		}
	}
}

// TestKernelDispatchResolution pins SetKernel/ActiveKernel semantics:
// forcing generic always resolves generic; vector and auto resolve to
// vector exactly when the host is eligible; invalid values reset to
// auto; and ActiveKernel never returns KernelAuto.
func TestKernelDispatchResolution(t *testing.T) {
	defer SetKernel(KernelAuto)

	SetKernel(KernelGeneric)
	if ConfiguredKernel() != KernelGeneric || ActiveKernel() != KernelGeneric {
		t.Errorf("forced generic: configured %v active %v", ConfiguredKernel(), ActiveKernel())
	}

	wantVec := KernelGeneric
	if VectorSupported() {
		wantVec = KernelVector
	}
	SetKernel(KernelVector)
	if ActiveKernel() != wantVec {
		t.Errorf("forced vector: active %v, want %v (supported=%v)", ActiveKernel(), wantVec, VectorSupported())
	}
	SetKernel(KernelAuto)
	if ActiveKernel() != wantVec {
		t.Errorf("auto: active %v, want %v", ActiveKernel(), wantVec)
	}

	SetKernel(Kernel(99))
	if ConfiguredKernel() != KernelAuto {
		t.Errorf("invalid kernel configured as %v, want auto", ConfiguredKernel())
	}
}

// TestKernelString covers the Stringer used in logs and test names.
func TestKernelString(t *testing.T) {
	for k, want := range map[Kernel]string{
		KernelAuto: "auto", KernelGeneric: "generic", KernelVector: "vector", Kernel(7): "Kernel(7)",
	} {
		if k.String() != want {
			t.Errorf("Kernel(%d).String() = %q, want %q", int32(k), k.String(), want)
		}
	}
}

// TestHostLittleEndian sanity-checks the runtime byte-order probe on
// the host the tests run on (all supported hosts are little-endian; a
// big-endian port would legitimately change this).
func TestHostLittleEndian(t *testing.T) {
	if !hostLittleEndian() {
		t.Skip("big-endian host: vector kernels ineligible by design")
	}
	if VectorSupported() != vectorEligible {
		t.Error("VectorSupported disagrees with vectorEligible")
	}
}
