package tensor

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// refMatMul is the original serial kernel, kept verbatim as the
// determinism oracle: per element it accumulates over k ascending with
// the same zero-skip, so the blocked/parallel engine must match it
// bitwise.
func refMatMul(dst, a, b *Matrix) {
	n := b.Cols
	k := a.Cols
	for i := 0; i < a.Rows; i++ {
		arow := a.Data[i*k : (i+1)*k]
		drow := dst.Data[i*n : (i+1)*n]
		for j := range drow {
			drow[j] = 0
		}
		for p := 0; p < k; p++ {
			av := arow[p]
			if av == 0 {
				continue
			}
			brow := b.Data[p*n : (p+1)*n]
			for j := range brow {
				drow[j] += av * brow[j]
			}
		}
	}
}

func randMatrix(rng *rand.Rand, rows, cols int) *Matrix {
	m := New(rows, cols)
	for i := range m.Data {
		switch rng.Intn(8) {
		case 0:
			m.Data[i] = 0 // exercise the zero-skip on every path
		case 1:
			m.Data[i] = float32(rng.NormFloat64() * 1e-4)
		default:
			m.Data[i] = float32(rng.NormFloat64())
		}
	}
	return m
}

func bitsEqual(t *testing.T, name string, got, want *Matrix) {
	t.Helper()
	if got.Rows != want.Rows || got.Cols != want.Cols {
		t.Fatalf("%s: shape %dx%d, want %dx%d", name, got.Rows, got.Cols, want.Rows, want.Cols)
	}
	for i := range want.Data {
		if math.Float32bits(got.Data[i]) != math.Float32bits(want.Data[i]) {
			t.Fatalf("%s: element %d = %x, want %x (not bitwise identical)",
				name, i, math.Float32bits(got.Data[i]), math.Float32bits(want.Data[i]))
		}
	}
}

// TestMatMulBitwiseMatchesReference sweeps odd shapes, zero-row/col
// degenerate cases, and exact tile/block boundary sizes, checking the
// engine against the reference kernel bitwise at several parallelism,
// block-row, and kernel-dispatch settings.
func TestMatMulBitwiseMatchesReference(t *testing.T) {
	defer SetParallelism(0)
	defer SetBlockRows(0)
	defer SetKernel(KernelAuto)
	shapes := []struct{ m, k, n int }{
		{1, 1, 1},
		{3, 5, 7},                      // odd everything
		{17, 31, 13},                   // odd, spans unroll tail
		{0, 8, 8},                      // zero rows
		{8, 0, 8},                      // zero inner dim: dst must zero
		{8, 8, 0},                      // zero cols
		{defaultBlockRows, 64, 64},     // exactly one tile
		{defaultBlockRows + 1, 64, 64}, // one tile + 1 row
		{4 * defaultBlockRows, gemmKBlock, gemmColBlock}, // exact block boundaries
		{64, gemmKBlock + 3, gemmColBlock + 5},           // just past block boundaries
		{129, 97, 33},                                    // enough work to go parallel
		{256, 512, 256},                                  // batch>=64 serving shape
	}
	rng := rand.New(rand.NewSource(42))
	for _, s := range shapes {
		a := randMatrix(rng, s.m, s.k)
		b := randMatrix(rng, s.k, s.n)
		want := New(s.m, s.n)
		refMatMul(want, a, b)
		for _, kern := range []Kernel{KernelGeneric, KernelVector} {
			for _, par := range []int{1, 2, 3, 8} {
				for _, block := range []int{0, 1, 5, 64} {
					SetKernel(kern)
					SetParallelism(par)
					SetBlockRows(block)
					got := New(s.m, s.n)
					// Dirty dst: the kernel must fully overwrite, not accumulate.
					for i := range got.Data {
						got.Data[i] = float32(math.NaN())
					}
					MatMul(got, a, b)
					bitsEqual(t, fmt.Sprintf("%dx%dx%d kern=%v par=%d block=%d", s.m, s.k, s.n, kern, par, block), got, want)
				}
			}
		}
	}
}

// TestMatMulEpilogueCoversAllRowsOnce checks the fused-epilogue contract:
// disjoint ranges covering every row exactly once, on both the serial and
// parallel paths.
func TestMatMulEpilogueCoversAllRowsOnce(t *testing.T) {
	defer SetParallelism(0)
	for _, par := range []int{1, 4} {
		SetParallelism(par)
		const rows = 70
		a := randMatrix(rand.New(rand.NewSource(7)), rows, 40)
		b := randMatrix(rand.New(rand.NewSource(8)), 40, 50)
		dst := New(rows, 50)
		mu := make(chan struct{}, 1)
		mu <- struct{}{}
		seen := make([]int, rows)
		MatMulEpilogue(dst, a, b, func(i0, i1 int) {
			<-mu
			for r := i0; r < i1; r++ {
				seen[r]++
			}
			mu <- struct{}{}
		})
		for r, c := range seen {
			if c != 1 {
				t.Fatalf("par=%d: row %d visited %d times", par, r, c)
			}
		}
	}
}

// TestMatMulEpilogueFusionIdentity checks that fusing bias+ReLU into the
// GEMM epilogue is bitwise identical to running them as separate passes.
func TestMatMulEpilogueFusionIdentity(t *testing.T) {
	defer SetParallelism(0)
	rng := rand.New(rand.NewSource(99))
	a := randMatrix(rng, 67, 33)
	b := randMatrix(rng, 33, 29)
	bias := make([]float32, 29)
	for i := range bias {
		bias[i] = float32(rng.NormFloat64())
	}

	SetParallelism(1)
	want := New(67, 29)
	MatMul(want, a, b)
	AddBiasRows(want, bias)
	ReLU(want)

	SetParallelism(4)
	got := New(67, 29)
	MatMulEpilogue(got, a, b, func(i0, i1 int) {
		for r := i0; r < i1; r++ {
			row := got.Row(r)
			for c := range row {
				row[c] += bias[c]
			}
			ReLUSlice(row)
		}
	})
	bitsEqual(t, "fused bias+relu", got, want)
}

// TestGEMMKnobs pins the knob semantics: zero restores defaults and the
// getters report effective values.
func TestGEMMKnobs(t *testing.T) {
	defer SetParallelism(0)
	defer SetBlockRows(0)
	SetParallelism(3)
	if Parallelism() != 3 {
		t.Errorf("Parallelism() = %d, want 3", Parallelism())
	}
	SetParallelism(0)
	if Parallelism() < 1 {
		t.Errorf("default Parallelism() = %d, want >= 1", Parallelism())
	}
	SetBlockRows(5)
	if BlockRows() != 5 {
		t.Errorf("BlockRows() = %d, want 5", BlockRows())
	}
	SetBlockRows(-2)
	if BlockRows() != defaultBlockRows {
		t.Errorf("BlockRows() = %d, want default %d", BlockRows(), defaultBlockRows)
	}
}

// TestConcatIntoAndPairwiseDotInto checks the in-place variants against
// their allocating forms.
func TestConcatIntoAndPairwiseDotInto(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := randMatrix(rng, 4, 3)
	b := randMatrix(rng, 4, 5)
	want := Concat(a, b)
	got := New(4, 8)
	ConcatInto(got, a, b)
	bitsEqual(t, "concat", got, want)

	feats := []*Matrix{randMatrix(rng, 6, 4), randMatrix(rng, 6, 4), randMatrix(rng, 6, 4)}
	wantDots := PairwiseDot(feats)
	gotDots := New(6, 3)
	PairwiseDotInto(gotDots, feats)
	bitsEqual(t, "pairwise", gotDots, wantDots)
}
