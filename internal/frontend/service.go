package frontend

import (
	"repro/internal/core"
	"repro/internal/rpc"
	"repro/internal/trace"
)

// Service adapts a Frontend to rpc.Handler for the "rank" method: the
// drop-in replacement for core.MainService when a deployment fronts the
// engine with SLA-aware scheduling. Serde spans are recorded exactly as
// the direct service records them, so trace attributions stay comparable
// between fronted and unfronted deployments.
type Service struct {
	F   *Frontend
	Rec *trace.Recorder
}

// Handle implements rpc.Handler.
func (s *Service) Handle(ctx trace.Context, method string, body []byte) ([]byte, error) {
	return core.HandleRank(s.Rec, ctx, method, body, s.F.Submit)
}

// interface check: a Service must be usable anywhere core.MainService is.
var _ rpc.Handler = (*Service)(nil)
