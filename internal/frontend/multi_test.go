package frontend

import (
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/trace"
)

func TestDrainGateCreditLedger(t *testing.T) {
	g := newDrainGate(40 * time.Millisecond)
	g.add("a", 0.5)

	// Fresh tenants start with a full burst of credit: runnable.
	if d := g.delayFor("a", time.Now()); d != 0 {
		t.Fatalf("fresh tenant delayed %v, want 0", d)
	}

	// Spend past the burst: 100ms of busy at share 0.5 leaves ~-60ms
	// credit, so the tenant must wait ~120ms of wall time.
	g.charge("a", 100*time.Millisecond)
	d := g.delayFor("a", time.Now())
	if d < 80*time.Millisecond || d > 160*time.Millisecond {
		t.Errorf("post-debt delay = %v, want ≈120ms", d)
	}

	// Doubling the share halves the remaining wait.
	g.setShare("a", 1.0)
	d2 := g.delayFor("a", time.Now())
	if d2 >= d {
		t.Errorf("delay after share increase = %v, want < %v", d2, d)
	}

	// Unknown tenants and nil gates fail open.
	if d := g.delayFor("ghost", time.Now()); d != 0 {
		t.Errorf("unknown tenant delayed %v, want 0", d)
	}
	var nilGate *drainGate
	if d := nilGate.delayFor("a", time.Now()); d != 0 {
		t.Errorf("nil gate delayed %v, want 0", d)
	}
	nilGate.wait("a")
	nilGate.charge("a", time.Second)
}

func TestDrainGateDebtIsBounded(t *testing.T) {
	g := newDrainGate(10 * time.Millisecond)
	g.add("a", 0.25)
	// One pathological execution must not stall the tenant open-endedly:
	// debt floors at 4 bursts, so the wait is at most 4*burst/share.
	g.charge("a", 10*time.Second)
	if d := g.delayFor("a", time.Now()); d > 170*time.Millisecond {
		t.Errorf("delay after giant execution = %v, want ≤ ~160ms", d)
	}
}

func TestDrainGateCreditCapsAtBurst(t *testing.T) {
	g := newDrainGate(10 * time.Millisecond)
	g.add("a", 1.0)
	gt := g.tenants["a"]
	// Pretend the tenant idled for a long time: refill must clamp.
	g.mu.Lock()
	gt.last = time.Now().Add(-10 * time.Second)
	g.refill(gt, time.Now())
	credit := gt.credit
	g.mu.Unlock()
	if credit > float64(10*time.Millisecond) {
		t.Errorf("idle credit = %v ns, want ≤ burst", credit)
	}
}

func TestMultiRoutesPerTenant(t *testing.T) {
	m := NewMulti(4, 0)
	execA, execB := &fakeExec{}, &fakeExec{}
	if _, err := m.Add("a", execA, Config{}, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Add("b", execB, Config{}, 2); err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	if _, err := m.Add("a", execA, Config{}, 1); err == nil {
		t.Error("duplicate Add must fail")
	}
	if _, err := m.Add("", execA, Config{}, 1); err == nil {
		t.Error("empty tenant name must fail")
	}

	if _, err := m.Submit("a", trace.Context{}, fakeReq(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Submit("b", trace.Context{}, fakeReq(2)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Submit("ghost", trace.Context{}, fakeReq(3)); err == nil {
		t.Error("unknown tenant must error")
	}
	if got := execA.numBatches() + execB.numBatches(); got != 2 {
		t.Errorf("executed %d batches across tenants, want 2", got)
	}
	if m.Tenant("a").Stats().Completed != 1 || m.Tenant("b").Stats().Completed != 1 {
		t.Error("per-tenant stats must book exactly their own traffic")
	}
}

func TestMultiServiceMethodRouting(t *testing.T) {
	m := NewMulti(2, 0)
	exec := &fakeExec{}
	if _, err := m.Add("drm1", exec, Config{}, 2); err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	svc := &MultiService{M: m, Rec: trace.NewRecorder("front", 64)}

	body := core.EncodeRankingRequest(fakeReq(7))
	if _, err := svc.Handle(trace.Context{}, core.RankMethodFor("drm1"), body); err != nil {
		t.Fatalf("rank@drm1: %v", err)
	}
	// Bare "rank" resolves while exactly one tenant is hosted.
	if _, err := svc.Handle(trace.Context{}, core.RankMethod, body); err != nil {
		t.Fatalf("bare rank with one tenant: %v", err)
	}
	if _, err := svc.Handle(trace.Context{}, "rank@ghost", body); err == nil ||
		!strings.Contains(err.Error(), "unknown model") {
		t.Errorf("rank@ghost err = %v, want unknown model", err)
	}
	if _, err := svc.Handle(trace.Context{}, "migrate.begin", body); err == nil {
		t.Error("non-rank method must be rejected")
	}

	exec2 := &fakeExec{}
	if _, err := m.Add("drm2", exec2, Config{}, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Handle(trace.Context{}, core.RankMethod, body); err == nil ||
		!strings.Contains(err.Error(), "ambiguous") {
		t.Errorf("bare rank with two tenants err = %v, want ambiguous", err)
	}
}

func TestSplitRankMethod(t *testing.T) {
	cases := []struct {
		method, model string
		ok            bool
	}{
		{"rank", "", true},
		{"rank@DRM1", "DRM1", true},
		{"rank@", "", false},
		{"ranked", "", false},
		{"migrate.begin", "", false},
	}
	for _, c := range cases {
		model, ok := core.SplitRankMethod(c.method)
		if model != c.model || ok != c.ok {
			t.Errorf("SplitRankMethod(%q) = (%q, %v), want (%q, %v)", c.method, model, ok, c.model, c.ok)
		}
	}
	if got := core.RankMethodFor(""); got != "rank" {
		t.Errorf("RankMethodFor(\"\") = %q", got)
	}
}

func TestMultiWeightedDrainLimitsShare(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-based entitlement ratio check")
	}
	// Two tenants with a 3:1 entitlement split, both saturating their
	// dispatchers with equal offered load: completed work must track the
	// entitlement, not the offered load — the non-work-conserving drain
	// that makes replica allocation mean something.
	m := NewMulti(4, 10*time.Millisecond)
	mk := func(name string, units float64) *fakeExec {
		exec := &fakeExec{delay: 2 * time.Millisecond}
		if _, err := m.Add(name, exec, Config{MaxBatchRequests: 1}, units); err != nil {
			t.Fatal(err)
		}
		return exec
	}
	mk("big", 3)
	mk("small", 1)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for _, name := range []string{"big", "small"} {
		wg.Add(1)
		go func(name string) {
			defer wg.Done()
			var id uint64
			for {
				select {
				case <-stop:
					return
				default:
				}
				id++
				_, _ = m.Submit(name, trace.Context{}, fakeReq(id))
			}
		}(name)
	}
	time.Sleep(700 * time.Millisecond)
	close(stop)
	wg.Wait()
	m.Close()

	big := float64(m.Tenant("big").Stats().Completed)
	small := float64(m.Tenant("small").Stats().Completed)
	if small == 0 {
		t.Fatal("small tenant starved outright")
	}
	ratio := big / small
	// Want ≈3 with wide tolerance for scheduler noise on shared runners.
	if ratio < 1.6 || ratio > 6.0 {
		t.Errorf("completed ratio big/small = %.2f (big=%v small=%v), want ≈3", ratio, big, small)
	}
}
