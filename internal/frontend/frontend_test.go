package frontend

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/sharding"
	"repro/internal/trace"
	"repro/internal/workload"
)

// fakeExec is a controllable executor: optional gate to hold batches,
// optional entry signal (fires when a batch reaches the executor, before
// the gate), optional fixed delay, and per-request scores derived from
// the request ID so demux mistakes are visible.
type fakeExec struct {
	gate    chan struct{}
	entered chan struct{}
	delay   time.Duration

	mu      sync.Mutex
	batches [][]core.BatchItem
}

func (f *fakeExec) Validate(req *core.RankingRequest) error {
	if req.Items <= 0 {
		return errors.New("fake: no items")
	}
	return nil
}

func (f *fakeExec) ExecuteBatch(items []core.BatchItem) ([][]float32, error) {
	if f.entered != nil {
		select {
		case f.entered <- struct{}{}:
		default:
		}
	}
	if f.gate != nil {
		<-f.gate
	}
	if f.delay > 0 {
		time.Sleep(f.delay)
	}
	f.mu.Lock()
	f.batches = append(f.batches, items)
	f.mu.Unlock()
	out := make([][]float32, len(items))
	for i, it := range items {
		scores := make([]float32, it.Req.Items)
		for j := range scores {
			scores[j] = float32(it.Req.ID)
		}
		out[i] = scores
	}
	return out, nil
}

func (f *fakeExec) numBatches() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.batches)
}

func fakeReq(id uint64) *core.RankingRequest {
	return &core.RankingRequest{ID: id, Items: 1}
}

func tinyConfig() model.Config {
	cfg := model.DRM2()
	for i := range cfg.Tables {
		cfg.Tables[i].Rows = 32
		cfg.Tables[i].PoolingFactor = 2
	}
	cfg.MeanItems = 4
	cfg.DefaultBatch = 8
	return cfg
}

func TestCoalescesUnderConcurrency(t *testing.T) {
	// N concurrent submits through a windowed frontend must execute in
	// fewer engine batches than requests, with each request's scores
	// routed back to it.
	exec := &fakeExec{delay: time.Millisecond}
	f := New(exec, Config{BatchWait: 5 * time.Millisecond, MaxBatchRequests: 8})
	defer f.Close()

	const n = 24
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			scores, err := f.Submit(trace.Context{TraceID: uint64(i + 1)}, fakeReq(uint64(i+1)))
			if err != nil {
				errs[i] = err
				return
			}
			if len(scores) != 1 || scores[i%1] != float32(i+1) {
				t.Errorf("request %d got scores %v", i+1, scores)
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d: %v", i+1, err)
		}
	}
	st := f.Stats()
	if exec.numBatches() >= n {
		t.Errorf("%d batches for %d requests: no coalescing", exec.numBatches(), n)
	}
	if st.BatchedRequests != n || st.Completed != n {
		t.Errorf("stats = %+v", st)
	}
	if st.RequestsPerBatch() <= 1 {
		t.Errorf("requests/batch = %v, want > 1", st.RequestsPerBatch())
	}
}

func TestEndToEndMatchesUnbatchedEngine(t *testing.T) {
	// Acceptance check: concurrent requests through the frontend score
	// identically to the unbatched engine path.
	cfg := tinyConfig()
	m := model.Build(cfg)
	rec := trace.NewRecorder("main", 1<<16)
	eng, err := core.NewEngine(m, sharding.Singular(&cfg), core.EngineConfig{Recorder: rec})
	if err != nil {
		t.Fatal(err)
	}
	gen := workload.NewGenerator(cfg, 11)
	const n = 12
	reqs := make([]*core.RankingRequest, n)
	want := make([][]float32, n)
	for i := range reqs {
		reqs[i] = core.FromWorkload(gen.Next())
		if want[i], err = eng.Execute(trace.Context{TraceID: uint64(1000 + i)}, reqs[i]); err != nil {
			t.Fatal(err)
		}
	}

	f := New(eng, Config{BatchWait: 10 * time.Millisecond, MaxBatchRequests: 6})
	defer f.Close()
	var wg sync.WaitGroup
	for i := range reqs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got, err := f.Submit(trace.Context{TraceID: uint64(i + 1)}, reqs[i])
			if err != nil {
				t.Errorf("request %d: %v", i, err)
				return
			}
			for j := range got {
				if got[j] != want[i][j] {
					t.Errorf("request %d item %d: %v != %v", i, j, got[j], want[i][j])
					return
				}
			}
		}(i)
	}
	wg.Wait()
	if st := f.Stats(); st.Batches >= n {
		t.Errorf("%d batches for %d requests: no coalescing", st.Batches, n)
	}
}

func TestQueueFullSheds(t *testing.T) {
	exec := &fakeExec{gate: make(chan struct{}), entered: make(chan struct{}, 1)}
	f := New(exec, Config{MaxQueue: 2})
	// LIFO defers: the gate must open before Close waits on the
	// dispatcher, which is blocked on it.
	defer f.Close()
	defer close(exec.gate)

	// First submit occupies the dispatcher; wait until its batch has
	// actually reached the executor (and is blocked on the gate) before
	// filling the queue, so a scheduling hiccup cannot let the batcher
	// gather the fillers into the first batch.
	results := make(chan error, 3)
	submit := func(i int) {
		go func() {
			_, err := f.Submit(trace.Context{TraceID: uint64(i + 1)}, fakeReq(uint64(i+1)))
			results <- err
		}()
	}
	submit(0)
	select {
	case <-exec.entered:
	case <-time.After(5 * time.Second):
		t.Fatal("dispatcher never reached the executor")
	}
	submit(1)
	submit(2)
	// Wait until the queue is saturated, then overflow it.
	deadline := time.Now().Add(5 * time.Second)
	for f.QueueDepth() < 2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if f.QueueDepth() != 2 {
		t.Fatalf("queue depth = %d, want 2", f.QueueDepth())
	}
	_, err := f.Submit(trace.Context{TraceID: 99}, fakeReq(99))
	if !errors.Is(err, ErrShed) {
		t.Fatalf("overflow error = %v, want ErrShed", err)
	}
	if !strings.HasPrefix(err.Error(), "shed:") {
		t.Errorf("shed error %q must carry the shed: wire prefix", err)
	}
	if st := f.Stats(); st.ShedQueueFull != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestBudgetShedsAtAdmission(t *testing.T) {
	// Once the estimator has learned a service time far beyond the
	// budget, later arrivals shed before queueing.
	exec := &fakeExec{delay: 30 * time.Millisecond}
	f := New(exec, Config{Budget: 5 * time.Millisecond})
	defer f.Close()

	if _, err := f.Submit(trace.Context{TraceID: 1}, fakeReq(1)); err != nil {
		t.Fatalf("first request (optimistic admission): %v", err)
	}
	_, err := f.Submit(trace.Context{TraceID: 2}, fakeReq(2))
	if !errors.Is(err, ErrShed) {
		t.Fatalf("post-learning submit error = %v, want ErrShed", err)
	}
	if st := f.Stats(); st.ShedBudget != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestDeadlineShedsAtDispatch(t *testing.T) {
	// A request that exhausts its whole budget waiting in the queue is
	// dropped at dispatch without touching the executor.
	exec := &fakeExec{gate: make(chan struct{})}
	f := New(exec, Config{Budget: 10 * time.Millisecond})
	defer f.Close()

	first := make(chan error, 1)
	go func() {
		_, err := f.Submit(trace.Context{TraceID: 1}, fakeReq(1))
		first <- err
	}()
	// Let the dispatcher pick up request 1 and block on the gate, then
	// queue request 2 behind it and let its budget lapse.
	time.Sleep(2 * time.Millisecond)
	second := make(chan error, 1)
	go func() {
		_, err := f.Submit(trace.Context{TraceID: 2}, fakeReq(2))
		second <- err
	}()
	time.Sleep(20 * time.Millisecond)
	close(exec.gate)
	if err := <-first; err != nil {
		t.Fatalf("first request: %v", err)
	}
	if err := <-second; !errors.Is(err, ErrShed) {
		t.Fatalf("stale request error = %v, want ErrShed", err)
	}
	if st := f.Stats(); st.ShedDeadline != 1 {
		t.Errorf("stats = %+v", st)
	}
	if exec.numBatches() != 1 {
		t.Errorf("executor ran %d batches; the stale request must not reach it", exec.numBatches())
	}
}

func TestMalformedRequestRejectedAtAdmission(t *testing.T) {
	// A bad request must fail alone at Submit — never reach the executor
	// where it would fail the whole coalesced batch.
	exec := &fakeExec{}
	f := New(exec, Config{})
	defer f.Close()
	_, err := f.Submit(trace.Context{TraceID: 1}, &core.RankingRequest{ID: 1, Items: 0})
	if err == nil || errors.Is(err, ErrShed) {
		t.Fatalf("validation error = %v, want a non-shed hard error", err)
	}
	if exec.numBatches() != 0 {
		t.Error("malformed request reached the executor")
	}
	if _, err := f.Submit(trace.Context{TraceID: 2}, fakeReq(2)); err != nil {
		t.Fatalf("healthy request after rejection: %v", err)
	}
}

func TestSubmitAfterClose(t *testing.T) {
	f := New(&fakeExec{}, Config{})
	f.Close()
	if _, err := f.Submit(trace.Context{TraceID: 1}, fakeReq(1)); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit after close = %v", err)
	}
	f.Close() // idempotent
}

func TestCloseDrainsQueue(t *testing.T) {
	exec := &fakeExec{delay: 2 * time.Millisecond}
	f := New(exec, Config{})
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = f.Submit(trace.Context{TraceID: uint64(i + 1)}, fakeReq(uint64(i+1)))
		}(i)
	}
	// Give the submits a moment to enqueue, then close: queued requests
	// must still be served, not dropped.
	time.Sleep(5 * time.Millisecond)
	f.Close()
	wg.Wait()
	for i, err := range errs {
		if err != nil && !errors.Is(err, ErrClosed) {
			t.Errorf("request %d: %v", i, err)
		}
	}
}
