package frontend

import (
	"sync"
	"time"
)

// drainGate meters each tenant's share of the fleet's execution
// bandwidth in a co-served deployment: the weighted drain that keeps one
// model's backlog from starving another. Each tenant accrues execution
// credit at its entitlement rate (share × wall time, in seconds of
// executor busy time per second); a dispatcher must wait until its
// tenant's credit is positive before executing a batch, and the batch's
// measured busy time is charged back.
//
// The gate is deliberately NOT work-conserving. A tenant's entitlement
// is its replica allocation: servers holding model A's embedding tables
// cannot answer model B's requests, so capacity idle under one model is
// not fungible to another without a scale event (a snapshot rebuild of
// the tables onto the reclaimed replica) — which is exactly the move the
// elastic scheduler performs. Letting an under-allocated tenant borrow
// idle wall-clock here would erase the very scarcity the scheduler
// exists to manage, and with it the difference between static and
// elastic fleets at equal hardware.
//
// Credit is clamped to a burst ceiling (so an idle tenant cannot bank
// unbounded catch-up time) and to a bounded debt floor (so one
// pathologically long execution cannot stall its tenant forever).
type drainGate struct {
	burst time.Duration

	mu      sync.Mutex
	tenants map[string]*gateTenant
}

// gateTenant is one tenant's credit ledger.
type gateTenant struct {
	share  float64 // entitlement: executor-seconds accrued per second
	credit float64 // nanoseconds of banked execution time (may go negative)
	last   time.Time
}

// gateDefaultBurst bounds banked credit when the caller passes zero.
const gateDefaultBurst = 50 * time.Millisecond

// gatePollCap bounds one wait's sleep so share increases (a scale-up
// mid-wait) take effect promptly instead of after a stale long sleep.
const gatePollCap = 5 * time.Millisecond

func newDrainGate(burst time.Duration) *drainGate {
	if burst <= 0 {
		burst = gateDefaultBurst
	}
	return &drainGate{burst: burst, tenants: make(map[string]*gateTenant)}
}

// add registers a tenant at the given share. Credit starts at the burst
// ceiling so a fresh tenant's first batches run unthrottled.
func (g *drainGate) add(name string, share float64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.tenants[name] = &gateTenant{share: share, credit: float64(g.burst), last: time.Now()}
}

// setShare re-prices a tenant's entitlement (a scale event). Credit
// accrued so far is settled at the old rate first.
func (g *drainGate) setShare(name string, share float64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	t := g.tenants[name]
	if t == nil {
		return
	}
	g.refill(t, time.Now())
	t.share = share
}

// refill accrues credit since the last settlement (caller holds mu).
func (g *drainGate) refill(t *gateTenant, now time.Time) {
	if elapsed := now.Sub(t.last); elapsed > 0 {
		t.credit += t.share * float64(elapsed)
		if ceil := float64(g.burst); t.credit > ceil {
			t.credit = ceil
		}
	}
	t.last = now
}

// delayFor returns how long tenant name must wait before it may execute
// (0 = runnable now), settling its credit as of now. Unknown tenants and
// non-positive shares are unthrottled — the gate fails open.
func (g *drainGate) delayFor(name string, now time.Time) time.Duration {
	if g == nil {
		return 0
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	t := g.tenants[name]
	if t == nil || t.share <= 0 {
		return 0
	}
	g.refill(t, now)
	if t.credit > 0 {
		return 0
	}
	return time.Duration(-t.credit/t.share) + 50*time.Microsecond
}

// wait blocks until tenant name is entitled to execute.
func (g *drainGate) wait(name string) {
	if g == nil {
		return
	}
	for {
		d := g.delayFor(name, time.Now())
		if d <= 0 {
			return
		}
		if d > gatePollCap {
			d = gatePollCap
		}
		time.Sleep(d)
	}
}

// charge debits one execution's busy time against tenant name. Debt is
// floored at four bursts: beyond that a single giant execution would buy
// an open-ended stall rather than fair pacing.
func (g *drainGate) charge(name string, busy time.Duration) {
	if g == nil || busy <= 0 {
		return
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	t := g.tenants[name]
	if t == nil {
		return
	}
	g.refill(t, time.Now())
	t.credit -= float64(busy)
	if floor := -4 * float64(g.burst); t.credit < floor {
		t.credit = floor
	}
}
